file(REMOVE_RECURSE
  "CMakeFiles/test_mind.dir/test_mind.cpp.o"
  "CMakeFiles/test_mind.dir/test_mind.cpp.o.d"
  "test_mind"
  "test_mind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_mind.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_debug_extensions.dir/test_debug_extensions.cpp.o"
  "CMakeFiles/test_debug_extensions.dir/test_debug_extensions.cpp.o.d"
  "test_debug_extensions"
  "test_debug_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debug_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

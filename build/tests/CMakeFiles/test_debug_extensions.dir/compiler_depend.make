# Empty compiler generated dependencies file for test_debug_extensions.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_h264_app.
# This may be replaced when dependencies are built.

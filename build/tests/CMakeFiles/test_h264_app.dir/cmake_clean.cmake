file(REMOVE_RECURSE
  "CMakeFiles/test_h264_app.dir/test_h264_app.cpp.o"
  "CMakeFiles/test_h264_app.dir/test_h264_app.cpp.o.d"
  "test_h264_app"
  "test_h264_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h264_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

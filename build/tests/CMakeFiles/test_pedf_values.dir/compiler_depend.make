# Empty compiler generated dependencies file for test_pedf_values.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_pedf_values.dir/test_pedf_values.cpp.o"
  "CMakeFiles/test_pedf_values.dir/test_pedf_values.cpp.o.d"
  "test_pedf_values"
  "test_pedf_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pedf_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sim_platform.dir/test_sim_platform.cpp.o"
  "CMakeFiles/test_sim_platform.dir/test_sim_platform.cpp.o.d"
  "test_sim_platform"
  "test_sim_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_sim_platform.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_debug_model.
# This may be replaced when dependencies are built.

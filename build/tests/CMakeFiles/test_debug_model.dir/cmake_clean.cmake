file(REMOVE_RECURSE
  "CMakeFiles/test_debug_model.dir/test_debug_model.cpp.o"
  "CMakeFiles/test_debug_model.dir/test_debug_model.cpp.o.d"
  "test_debug_model"
  "test_debug_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debug_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

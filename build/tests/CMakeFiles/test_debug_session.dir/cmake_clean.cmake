file(REMOVE_RECURSE
  "CMakeFiles/test_debug_session.dir/test_debug_session.cpp.o"
  "CMakeFiles/test_debug_session.dir/test_debug_session.cpp.o.d"
  "test_debug_session"
  "test_debug_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debug_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_debug_session.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_timetravel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_timetravel.dir/test_timetravel.cpp.o"
  "CMakeFiles/test_timetravel.dir/test_timetravel.cpp.o.d"
  "test_timetravel"
  "test_timetravel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timetravel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

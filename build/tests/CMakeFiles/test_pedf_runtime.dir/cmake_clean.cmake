file(REMOVE_RECURSE
  "CMakeFiles/test_pedf_runtime.dir/test_pedf_runtime.cpp.o"
  "CMakeFiles/test_pedf_runtime.dir/test_pedf_runtime.cpp.o.d"
  "test_pedf_runtime"
  "test_pedf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pedf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

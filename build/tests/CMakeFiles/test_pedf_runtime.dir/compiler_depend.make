# Empty compiler generated dependencies file for test_pedf_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_h264_filters.dir/test_h264_filters.cpp.o"
  "CMakeFiles/test_h264_filters.dir/test_h264_filters.cpp.o.d"
  "test_h264_filters"
  "test_h264_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h264_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_h264_filters.
# This may be replaced when dependencies are built.

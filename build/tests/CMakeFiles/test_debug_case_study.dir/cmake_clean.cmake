file(REMOVE_RECURSE
  "CMakeFiles/test_debug_case_study.dir/test_debug_case_study.cpp.o"
  "CMakeFiles/test_debug_case_study.dir/test_debug_case_study.cpp.o.d"
  "test_debug_case_study"
  "test_debug_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debug_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mindc.dir/mindc.cpp.o"
  "CMakeFiles/mindc.dir/mindc.cpp.o.d"
  "mindc"
  "mindc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

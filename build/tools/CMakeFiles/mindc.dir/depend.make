# Empty dependencies file for mindc.
# This may be replaced when dependencies are built.

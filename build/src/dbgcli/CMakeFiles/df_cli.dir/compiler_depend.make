# Empty compiler generated dependencies file for df_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/df_cli.dir/cli.cpp.o"
  "CMakeFiles/df_cli.dir/cli.cpp.o.d"
  "CMakeFiles/df_cli.dir/timetravel.cpp.o"
  "CMakeFiles/df_cli.dir/timetravel.cpp.o.d"
  "libdf_cli.a"
  "libdf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbgcli/cli.cpp" "src/dbgcli/CMakeFiles/df_cli.dir/cli.cpp.o" "gcc" "src/dbgcli/CMakeFiles/df_cli.dir/cli.cpp.o.d"
  "/root/repo/src/dbgcli/timetravel.cpp" "src/dbgcli/CMakeFiles/df_cli.dir/timetravel.cpp.o" "gcc" "src/dbgcli/CMakeFiles/df_cli.dir/timetravel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/df_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/pedf/CMakeFiles/df_pedf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

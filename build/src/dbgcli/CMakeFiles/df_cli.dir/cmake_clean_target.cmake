file(REMOVE_RECURSE
  "libdf_cli.a"
)

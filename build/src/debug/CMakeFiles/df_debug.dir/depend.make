# Empty dependencies file for df_debug.
# This may be replaced when dependencies are built.

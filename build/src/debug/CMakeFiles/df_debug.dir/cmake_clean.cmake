file(REMOVE_RECURSE
  "CMakeFiles/df_debug.dir/debuginfo.cpp.o"
  "CMakeFiles/df_debug.dir/debuginfo.cpp.o.d"
  "CMakeFiles/df_debug.dir/export.cpp.o"
  "CMakeFiles/df_debug.dir/export.cpp.o.d"
  "CMakeFiles/df_debug.dir/model.cpp.o"
  "CMakeFiles/df_debug.dir/model.cpp.o.d"
  "CMakeFiles/df_debug.dir/recording.cpp.o"
  "CMakeFiles/df_debug.dir/recording.cpp.o.d"
  "CMakeFiles/df_debug.dir/session.cpp.o"
  "CMakeFiles/df_debug.dir/session.cpp.o.d"
  "libdf_debug.a"
  "libdf_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

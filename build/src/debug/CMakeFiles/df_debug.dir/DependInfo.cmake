
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debug/debuginfo.cpp" "src/debug/CMakeFiles/df_debug.dir/debuginfo.cpp.o" "gcc" "src/debug/CMakeFiles/df_debug.dir/debuginfo.cpp.o.d"
  "/root/repo/src/debug/export.cpp" "src/debug/CMakeFiles/df_debug.dir/export.cpp.o" "gcc" "src/debug/CMakeFiles/df_debug.dir/export.cpp.o.d"
  "/root/repo/src/debug/model.cpp" "src/debug/CMakeFiles/df_debug.dir/model.cpp.o" "gcc" "src/debug/CMakeFiles/df_debug.dir/model.cpp.o.d"
  "/root/repo/src/debug/recording.cpp" "src/debug/CMakeFiles/df_debug.dir/recording.cpp.o" "gcc" "src/debug/CMakeFiles/df_debug.dir/recording.cpp.o.d"
  "/root/repo/src/debug/session.cpp" "src/debug/CMakeFiles/df_debug.dir/session.cpp.o" "gcc" "src/debug/CMakeFiles/df_debug.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pedf/CMakeFiles/df_pedf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

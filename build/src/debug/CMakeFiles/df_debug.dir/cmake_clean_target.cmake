file(REMOVE_RECURSE
  "libdf_debug.a"
)

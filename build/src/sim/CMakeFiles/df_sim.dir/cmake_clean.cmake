file(REMOVE_RECURSE
  "CMakeFiles/df_sim.dir/instrument.cpp.o"
  "CMakeFiles/df_sim.dir/instrument.cpp.o.d"
  "CMakeFiles/df_sim.dir/kernel.cpp.o"
  "CMakeFiles/df_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/df_sim.dir/platform.cpp.o"
  "CMakeFiles/df_sim.dir/platform.cpp.o.d"
  "libdf_sim.a"
  "libdf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

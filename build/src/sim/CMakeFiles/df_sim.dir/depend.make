# Empty dependencies file for df_sim.
# This may be replaced when dependencies are built.

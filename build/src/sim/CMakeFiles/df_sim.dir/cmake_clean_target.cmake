file(REMOVE_RECURSE
  "libdf_sim.a"
)

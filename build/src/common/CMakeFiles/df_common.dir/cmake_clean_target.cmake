file(REMOVE_RECURSE
  "libdf_common.a"
)

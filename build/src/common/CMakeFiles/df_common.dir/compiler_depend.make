# Empty compiler generated dependencies file for df_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/df_common.dir/log.cpp.o"
  "CMakeFiles/df_common.dir/log.cpp.o.d"
  "CMakeFiles/df_common.dir/strings.cpp.o"
  "CMakeFiles/df_common.dir/strings.cpp.o.d"
  "libdf_common.a"
  "libdf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

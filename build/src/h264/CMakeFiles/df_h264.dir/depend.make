# Empty dependencies file for df_h264.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/df_h264.dir/app.cpp.o"
  "CMakeFiles/df_h264.dir/app.cpp.o.d"
  "CMakeFiles/df_h264.dir/bitstream.cpp.o"
  "CMakeFiles/df_h264.dir/bitstream.cpp.o.d"
  "CMakeFiles/df_h264.dir/codec.cpp.o"
  "CMakeFiles/df_h264.dir/codec.cpp.o.d"
  "CMakeFiles/df_h264.dir/filters.cpp.o"
  "CMakeFiles/df_h264.dir/filters.cpp.o.d"
  "CMakeFiles/df_h264.dir/refcodec.cpp.o"
  "CMakeFiles/df_h264.dir/refcodec.cpp.o.d"
  "libdf_h264.a"
  "libdf_h264.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_h264.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/h264/app.cpp" "src/h264/CMakeFiles/df_h264.dir/app.cpp.o" "gcc" "src/h264/CMakeFiles/df_h264.dir/app.cpp.o.d"
  "/root/repo/src/h264/bitstream.cpp" "src/h264/CMakeFiles/df_h264.dir/bitstream.cpp.o" "gcc" "src/h264/CMakeFiles/df_h264.dir/bitstream.cpp.o.d"
  "/root/repo/src/h264/codec.cpp" "src/h264/CMakeFiles/df_h264.dir/codec.cpp.o" "gcc" "src/h264/CMakeFiles/df_h264.dir/codec.cpp.o.d"
  "/root/repo/src/h264/filters.cpp" "src/h264/CMakeFiles/df_h264.dir/filters.cpp.o" "gcc" "src/h264/CMakeFiles/df_h264.dir/filters.cpp.o.d"
  "/root/repo/src/h264/refcodec.cpp" "src/h264/CMakeFiles/df_h264.dir/refcodec.cpp.o" "gcc" "src/h264/CMakeFiles/df_h264.dir/refcodec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pedf/CMakeFiles/df_pedf.dir/DependInfo.cmake"
  "/root/repo/build/src/mind/CMakeFiles/df_mind.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdf_h264.a"
)

# Empty compiler generated dependencies file for df_sdf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/df_sdf.dir/sdf.cpp.o"
  "CMakeFiles/df_sdf.dir/sdf.cpp.o.d"
  "libdf_sdf.a"
  "libdf_sdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_sdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdf/sdf.cpp" "src/sdf/CMakeFiles/df_sdf.dir/sdf.cpp.o" "gcc" "src/sdf/CMakeFiles/df_sdf.dir/sdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pedf/CMakeFiles/df_pedf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

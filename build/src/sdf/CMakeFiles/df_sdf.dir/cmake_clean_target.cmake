file(REMOVE_RECURSE
  "libdf_sdf.a"
)

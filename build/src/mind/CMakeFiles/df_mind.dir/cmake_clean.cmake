file(REMOVE_RECURSE
  "CMakeFiles/df_mind.dir/analyze.cpp.o"
  "CMakeFiles/df_mind.dir/analyze.cpp.o.d"
  "CMakeFiles/df_mind.dir/dot.cpp.o"
  "CMakeFiles/df_mind.dir/dot.cpp.o.d"
  "CMakeFiles/df_mind.dir/emit.cpp.o"
  "CMakeFiles/df_mind.dir/emit.cpp.o.d"
  "CMakeFiles/df_mind.dir/instantiate.cpp.o"
  "CMakeFiles/df_mind.dir/instantiate.cpp.o.d"
  "CMakeFiles/df_mind.dir/lexer.cpp.o"
  "CMakeFiles/df_mind.dir/lexer.cpp.o.d"
  "CMakeFiles/df_mind.dir/parser.cpp.o"
  "CMakeFiles/df_mind.dir/parser.cpp.o.d"
  "libdf_mind.a"
  "libdf_mind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_mind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

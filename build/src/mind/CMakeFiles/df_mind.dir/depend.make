# Empty dependencies file for df_mind.
# This may be replaced when dependencies are built.

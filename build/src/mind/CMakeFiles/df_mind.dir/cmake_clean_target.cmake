file(REMOVE_RECURSE
  "libdf_mind.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mind/analyze.cpp" "src/mind/CMakeFiles/df_mind.dir/analyze.cpp.o" "gcc" "src/mind/CMakeFiles/df_mind.dir/analyze.cpp.o.d"
  "/root/repo/src/mind/dot.cpp" "src/mind/CMakeFiles/df_mind.dir/dot.cpp.o" "gcc" "src/mind/CMakeFiles/df_mind.dir/dot.cpp.o.d"
  "/root/repo/src/mind/emit.cpp" "src/mind/CMakeFiles/df_mind.dir/emit.cpp.o" "gcc" "src/mind/CMakeFiles/df_mind.dir/emit.cpp.o.d"
  "/root/repo/src/mind/instantiate.cpp" "src/mind/CMakeFiles/df_mind.dir/instantiate.cpp.o" "gcc" "src/mind/CMakeFiles/df_mind.dir/instantiate.cpp.o.d"
  "/root/repo/src/mind/lexer.cpp" "src/mind/CMakeFiles/df_mind.dir/lexer.cpp.o" "gcc" "src/mind/CMakeFiles/df_mind.dir/lexer.cpp.o.d"
  "/root/repo/src/mind/parser.cpp" "src/mind/CMakeFiles/df_mind.dir/parser.cpp.o" "gcc" "src/mind/CMakeFiles/df_mind.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pedf/CMakeFiles/df_pedf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

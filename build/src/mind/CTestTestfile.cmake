# CMake generated Testfile for 
# Source directory: /root/repo/src/mind
# Build directory: /root/repo/build/src/mind
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pedf/actor.cpp" "src/pedf/CMakeFiles/df_pedf.dir/actor.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/actor.cpp.o.d"
  "/root/repo/src/pedf/application.cpp" "src/pedf/CMakeFiles/df_pedf.dir/application.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/application.cpp.o.d"
  "/root/repo/src/pedf/controller.cpp" "src/pedf/CMakeFiles/df_pedf.dir/controller.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/controller.cpp.o.d"
  "/root/repo/src/pedf/filter.cpp" "src/pedf/CMakeFiles/df_pedf.dir/filter.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/filter.cpp.o.d"
  "/root/repo/src/pedf/link.cpp" "src/pedf/CMakeFiles/df_pedf.dir/link.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/link.cpp.o.d"
  "/root/repo/src/pedf/module.cpp" "src/pedf/CMakeFiles/df_pedf.dir/module.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/module.cpp.o.d"
  "/root/repo/src/pedf/value.cpp" "src/pedf/CMakeFiles/df_pedf.dir/value.cpp.o" "gcc" "src/pedf/CMakeFiles/df_pedf.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/df_pedf.dir/actor.cpp.o"
  "CMakeFiles/df_pedf.dir/actor.cpp.o.d"
  "CMakeFiles/df_pedf.dir/application.cpp.o"
  "CMakeFiles/df_pedf.dir/application.cpp.o.d"
  "CMakeFiles/df_pedf.dir/controller.cpp.o"
  "CMakeFiles/df_pedf.dir/controller.cpp.o.d"
  "CMakeFiles/df_pedf.dir/filter.cpp.o"
  "CMakeFiles/df_pedf.dir/filter.cpp.o.d"
  "CMakeFiles/df_pedf.dir/link.cpp.o"
  "CMakeFiles/df_pedf.dir/link.cpp.o.d"
  "CMakeFiles/df_pedf.dir/module.cpp.o"
  "CMakeFiles/df_pedf.dir/module.cpp.o.d"
  "CMakeFiles/df_pedf.dir/value.cpp.o"
  "CMakeFiles/df_pedf.dir/value.cpp.o.d"
  "libdf_pedf.a"
  "libdf_pedf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_pedf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

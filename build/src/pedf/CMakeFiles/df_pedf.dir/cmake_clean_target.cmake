file(REMOVE_RECURSE
  "libdf_pedf.a"
)

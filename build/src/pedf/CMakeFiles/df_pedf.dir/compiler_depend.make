# Empty compiler generated dependencies file for df_pedf.
# This may be replaced when dependencies are built.

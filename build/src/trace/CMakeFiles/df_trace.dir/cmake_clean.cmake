file(REMOVE_RECURSE
  "CMakeFiles/df_trace.dir/timeline.cpp.o"
  "CMakeFiles/df_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/df_trace.dir/trace.cpp.o"
  "CMakeFiles/df_trace.dir/trace.cpp.o.d"
  "libdf_trace.a"
  "libdf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

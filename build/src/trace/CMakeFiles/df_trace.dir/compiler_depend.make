# Empty compiler generated dependencies file for df_trace.
# This may be replaced when dependencies are built.

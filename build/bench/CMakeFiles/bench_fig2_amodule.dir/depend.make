# Empty dependencies file for bench_fig2_amodule.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_amodule.dir/bench_fig2_amodule.cpp.o"
  "CMakeFiles/bench_fig2_amodule.dir/bench_fig2_amodule.cpp.o.d"
  "bench_fig2_amodule"
  "bench_fig2_amodule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_amodule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ql1_bug_localization.dir/bench_ql1_bug_localization.cpp.o"
  "CMakeFiles/bench_ql1_bug_localization.dir/bench_ql1_bug_localization.cpp.o.d"
  "bench_ql1_bug_localization"
  "bench_ql1_bug_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ql1_bug_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ql1_bug_localization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_cs_step_both.dir/bench_cs_step_both.cpp.o"
  "CMakeFiles/bench_cs_step_both.dir/bench_cs_step_both.cpp.o.d"
  "bench_cs_step_both"
  "bench_cs_step_both.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs_step_both.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_cs_step_both.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_cs_info_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_cs_info_flow.dir/bench_cs_info_flow.cpp.o"
  "CMakeFiles/bench_cs_info_flow.dir/bench_cs_info_flow.cpp.o.d"
  "bench_cs_info_flow"
  "bench_cs_info_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs_info_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

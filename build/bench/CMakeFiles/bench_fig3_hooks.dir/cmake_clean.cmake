file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hooks.dir/bench_fig3_hooks.cpp.o"
  "CMakeFiles/bench_fig3_hooks.dir/bench_fig3_hooks.cpp.o.d"
  "bench_fig3_hooks"
  "bench_fig3_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

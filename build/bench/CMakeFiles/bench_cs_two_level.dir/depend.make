# Empty dependencies file for bench_cs_two_level.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_cs_catchpoints.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_cs_catchpoints.dir/bench_cs_catchpoints.cpp.o"
  "CMakeFiles/bench_cs_catchpoints.dir/bench_cs_catchpoints.cpp.o.d"
  "bench_cs_catchpoints"
  "bench_cs_catchpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs_catchpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

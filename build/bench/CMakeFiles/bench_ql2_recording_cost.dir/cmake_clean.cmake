file(REMOVE_RECURSE
  "CMakeFiles/bench_ql2_recording_cost.dir/bench_ql2_recording_cost.cpp.o"
  "CMakeFiles/bench_ql2_recording_cost.dir/bench_ql2_recording_cost.cpp.o.d"
  "bench_ql2_recording_cost"
  "bench_ql2_recording_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ql2_recording_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

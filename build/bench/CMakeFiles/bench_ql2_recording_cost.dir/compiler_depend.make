# Empty compiler generated dependencies file for bench_ql2_recording_cost.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ov1_intrusiveness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ov1_intrusiveness.dir/bench_ov1_intrusiveness.cpp.o"
  "CMakeFiles/bench_ov1_intrusiveness.dir/bench_ov1_intrusiveness.cpp.o.d"
  "bench_ov1_intrusiveness"
  "bench_ov1_intrusiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ov1_intrusiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/graph_export.dir/graph_export.cpp.o"
  "CMakeFiles/graph_export.dir/graph_export.cpp.o.d"
  "graph_export"
  "graph_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

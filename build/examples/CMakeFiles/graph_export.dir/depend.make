# Empty dependencies file for graph_export.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/graph_export.cpp" "examples/CMakeFiles/graph_export.dir/graph_export.cpp.o" "gcc" "examples/CMakeFiles/graph_export.dir/graph_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/df_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pedf/CMakeFiles/df_pedf.dir/DependInfo.cmake"
  "/root/repo/build/src/mind/CMakeFiles/df_mind.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/df_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/dbgcli/CMakeFiles/df_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/h264/CMakeFiles/df_h264.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/df_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/df_sdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

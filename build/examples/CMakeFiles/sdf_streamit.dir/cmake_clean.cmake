file(REMOVE_RECURSE
  "CMakeFiles/sdf_streamit.dir/sdf_streamit.cpp.o"
  "CMakeFiles/sdf_streamit.dir/sdf_streamit.cpp.o.d"
  "sdf_streamit"
  "sdf_streamit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_streamit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sdf_streamit.
# This may be replaced when dependencies are built.

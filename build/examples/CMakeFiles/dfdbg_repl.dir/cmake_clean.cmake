file(REMOVE_RECURSE
  "CMakeFiles/dfdbg_repl.dir/dfdbg_repl.cpp.o"
  "CMakeFiles/dfdbg_repl.dir/dfdbg_repl.cpp.o.d"
  "dfdbg_repl"
  "dfdbg_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdbg_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

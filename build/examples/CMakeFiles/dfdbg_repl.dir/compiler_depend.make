# Empty compiler generated dependencies file for dfdbg_repl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/h264_debug_session.dir/h264_debug_session.cpp.o"
  "CMakeFiles/h264_debug_session.dir/h264_debug_session.cpp.o.d"
  "h264_debug_session"
  "h264_debug_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h264_debug_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for h264_debug_session.
# This may be replaced when dependencies are built.

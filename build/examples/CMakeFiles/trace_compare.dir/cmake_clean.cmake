file(REMOVE_RECURSE
  "CMakeFiles/trace_compare.dir/trace_compare.cpp.o"
  "CMakeFiles/trace_compare.dir/trace_compare.cpp.o.d"
  "trace_compare"
  "trace_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for trace_compare.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deadlock_untie.dir/deadlock_untie.cpp.o"
  "CMakeFiles/deadlock_untie.dir/deadlock_untie.cpp.o.d"
  "deadlock_untie"
  "deadlock_untie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_untie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deadlock_untie.
# This may be replaced when dependencies are built.

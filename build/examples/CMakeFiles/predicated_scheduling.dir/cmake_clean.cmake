file(REMOVE_RECURSE
  "CMakeFiles/predicated_scheduling.dir/predicated_scheduling.cpp.o"
  "CMakeFiles/predicated_scheduling.dir/predicated_scheduling.cpp.o.d"
  "predicated_scheduling"
  "predicated_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicated_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for predicated_scheduling.
# This may be replaced when dependencies are built.

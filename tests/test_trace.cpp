// Tests of the offline trace collector (the non-interactive baseline the
// paper contrasts interactive debugging with).
#include <gtest/gtest.h>

#include "dfdbg/h264/app.hpp"
#include "dfdbg/trace/timeline.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg::trace {
namespace {

h264::H264AppConfig small_config() {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  return cfg;
}

TEST(Trace, CollectsEventsOfEveryKind) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), /*capacity=*/1 << 16);
  tc.attach();
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_GT(tc.total_events(), 100u);
  bool kinds[7] = {};
  for (std::size_t i = 0; i < tc.events().size(); ++i)
    kinds[static_cast<int>(tc.events().at(i).kind)] = true;
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kPush)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kPop)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kWorkEnter)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kWorkExit)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kActorStart)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kStepBegin)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceKind::kStepEnd)]);
}

TEST(Trace, LinkStatsMatchFramework) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  pedf::Link* l = (*app)->app().link_by_iface("pipe::MbType_in");
  ASSERT_NE(l, nullptr);
  auto it = tc.link_stats().find(l->id().value());
  ASSERT_NE(it, tc.link_stats().end());
  EXPECT_EQ(it->second.pushes, l->push_index());
  EXPECT_EQ(it->second.pops, l->pop_index());
  EXPECT_EQ(it->second.max_occupancy, l->high_watermark());
}

TEST(Trace, FiringsPerActor) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  int mbs = small_config().params.total_mbs();
  EXPECT_EQ(tc.firings("h264.pred.ipred") + tc.firings("h264.pred.mc"),
            static_cast<std::uint64_t>(mbs));
  EXPECT_EQ(tc.firings("h264.front.vld"), static_cast<std::uint64_t>(mbs));
}

TEST(Trace, BusiestLinkFindsTheStall) {
  // The trace-tool way of locating the Fig. 4 rate bug: post-mortem stats.
  auto cfg = small_config();
  cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;
  auto app = h264::H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  pedf::Link* stalled = (*app)->app().link_by_iface("ipf::pipe_in");
  EXPECT_EQ(tc.busiest_link(), stalled->id().value());
}

TEST(Trace, CsvDump) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 64, /*record_payloads=*/true);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  std::string csv = tc.to_csv();
  EXPECT_NE(csv.find("time,kind,actor,link,index,payload"), std::string::npos);
  EXPECT_NE(csv.find("push"), std::string::npos);
  // Bounded buffer retained at most 64 rows (plus header).
  std::size_t rows = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_LE(rows, 65u);
}

TEST(Trace, DetachStopsCollection) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  tc.detach();
  (*app)->start();
  (*app)->kernel().run();
  EXPECT_EQ(tc.total_events(), 0u);
}

TEST(Trace, PayloadRecordingOptional) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16, /*record_payloads=*/false);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  for (std::size_t i = 0; i < tc.events().size(); ++i)
    EXPECT_TRUE(tc.events().at(i).payload.empty());
}

// --- timeline rendering (§VIII visualization future work) ----------------------

TEST(Timeline, RendersActorRowsAndActivity) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  std::string svg = render_timeline_svg(tc, (*app)->app());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Every fabric filter gets a labelled row.
  for (const char* f : {"vld", "bh", "hwcfg", "pipe", "red", "ipred", "mc", "ipf"})
    EXPECT_NE(svg.find(std::string(">") + f + "<"), std::string::npos) << f;
  // Activity rectangles exist (one per completed WORK at minimum).
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1))
    rects++;
  EXPECT_GT(rects, 10u);
  // Occupancy curves for the busiest links.
  EXPECT_NE(svg.find("occ:"), std::string::npos);
  EXPECT_NE(svg.find("peak"), std::string::npos);
}

TEST(Timeline, Deterministic) {
  auto render_once = [] {
    auto app = h264::H264App::build(small_config());
    EXPECT_TRUE(app.ok());
    TraceCollector tc((*app)->app(), 1 << 16);
    tc.attach();
    (*app)->start();
    (*app)->kernel().run();
    return render_timeline_svg(tc, (*app)->app());
  };
  EXPECT_EQ(render_once(), render_once());
}

TEST(Timeline, StallVisibleInOccupancyCurve) {
  auto cfg = small_config();
  cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;
  auto app = h264::H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  std::string svg = render_timeline_svg(tc, (*app)->app());
  // The stalled control link dominates the occupancy panel.
  EXPECT_NE(svg.find("pipe_ipf_out"), std::string::npos);
}

TEST(Timeline, OptionsControlPanels) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  TimelineOptions no_occ;
  no_occ.occupancy_rows = 0;
  std::string svg = render_timeline_svg(tc, (*app)->app(), no_occ);
  EXPECT_EQ(svg.find("occ:"), std::string::npos);
  EXPECT_EQ(svg.find("bitstream_src"), std::string::npos);  // host I/O hidden
  TimelineOptions with_host;
  with_host.include_host_io = true;
  svg = render_timeline_svg(tc, (*app)->app(), with_host);
  EXPECT_NE(svg.find("bitstream_src"), std::string::npos);
}

TEST(Timeline, EmptyTraceStillValidSvg) {
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  TraceCollector tc((*app)->app(), 16);
  // Never attached: no events at all.
  std::string svg = render_timeline_svg(tc, (*app)->app());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace dfdbg::trace

// Tests of the token hot path: the contiguous {Value, uid} slot ring behind
// Link, the small-buffer-optimized Value spill boundary, the batch
// push_raw_n/pop_raw_n fast paths, and to_string goldens for every H.264
// token type (the debugger transcripts must not change when the payload
// representation does).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/pedf/module.hpp"
#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/platform.hpp"

namespace dfdbg::pedf {
namespace {

Link make_link(TypeDesc type = TypeDesc(ScalarType::kU32)) {
  return Link(LinkId(0), "t", type, nullptr, nullptr);
}

// --- ring mechanics ---------------------------------------------------------

// A capacity-bounded link cycled far past its slot count: the physical head
// must wrap while FIFO order, uids and the monotonic indexes stay exact.
// This is the paper's §VI-D stall configuration (bounded FIFOs) exercised at
// the container level.
TEST(LinkRing, WraparoundUnderBoundedCapacity) {
  Link l = make_link();
  l.set_capacity(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::vector<std::uint64_t> uids;  // uid of every still-queued token
  for (int cycle = 0; cycle < 100; ++cycle) {
    while (!l.full()) {
      EXPECT_EQ(l.push_raw(Value::u32(static_cast<std::uint32_t>(next_push))), next_push);
      uids.push_back(l.last_pushed_uid());
      next_push++;
    }
    EXPECT_EQ(l.occupancy(), 8u);
    // Pop 5, keep 3: the head creeps through the ring and wraps.
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(l.token_uid_at(0), uids.front());
      Value v = l.pop_raw();
      EXPECT_EQ(v.as_u64(), next_pop);
      EXPECT_EQ(l.last_popped_uid(), uids.front());
      uids.erase(uids.begin());
      next_pop++;
    }
  }
  // Bounded occupancy must not have grown the ring past the capacity's
  // power-of-two ceiling.
  EXPECT_LE(l.slot_count(), 8u);
  EXPECT_EQ(l.high_watermark(), 8u);
}

// Wrapped ring + the debugger's alteration surface: erase_at and poke at
// arbitrary queue positions while the head is mid-ring.
TEST(LinkRing, EraseAndPokeInterleavedWithWraparound) {
  Link l = make_link();
  l.set_capacity(8);
  // Advance the head so the queued run straddles the physical boundary.
  for (int i = 0; i < 6; ++i) l.push_raw(Value::u32(999));
  for (int i = 0; i < 6; ++i) l.pop_raw();
  for (std::uint32_t i = 0; i < 8; ++i) l.push_raw(Value::u32(i));  // 0..7 wrapped
  std::vector<std::uint64_t> uids;
  for (std::size_t i = 0; i < 8; ++i) uids.push_back(l.token_uid_at(i));

  // Erase in the middle: the shorter side shifts, order is preserved.
  Value gone = l.erase_at(3);
  EXPECT_EQ(gone.as_u64(), 3u);
  EXPECT_EQ(l.occupancy(), 7u);
  std::vector<std::uint64_t> expect_vals = {0, 1, 2, 4, 5, 6, 7};
  uids.erase(uids.begin() + 3);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(l.peek(i).as_u64(), expect_vals[i]) << i;
    EXPECT_EQ(l.token_uid_at(i), uids[i]) << i;
  }

  // Erase at the front and near the back (both shift directions).
  EXPECT_EQ(l.erase_at(0).as_u64(), 0u);
  expect_vals.erase(expect_vals.begin());
  uids.erase(uids.begin());
  EXPECT_EQ(l.erase_at(5).as_u64(), 7u);
  expect_vals.erase(expect_vals.begin() + 5);
  uids.erase(uids.begin() + 5);

  // Poke keeps the slot's token uid: an altered token keeps its identity.
  l.poke(2, Value::u32(4242));
  expect_vals[2] = 4242;
  for (std::size_t i = 0; i < expect_vals.size(); ++i) {
    EXPECT_EQ(l.peek(i).as_u64(), expect_vals[i]) << i;
    EXPECT_EQ(l.token_uid_at(i), uids[i]) << i;
  }

  // Drain: pop order must equal the surviving sequence.
  for (std::size_t i = 0; i < expect_vals.size(); ++i) {
    EXPECT_EQ(l.pop_raw().as_u64(), expect_vals[i]);
    EXPECT_EQ(l.last_popped_uid(), uids[i]);
  }
  EXPECT_TRUE(l.empty());
}

TEST(LinkRing, GrowthRelinearizesWrappedRuns) {
  Link l = make_link();
  // Wrap the head inside the initial allocation...
  for (int i = 0; i < 6; ++i) l.push_raw(Value::u32(0));
  for (int i = 0; i < 6; ++i) l.pop_raw();
  // ...then push far past it so the ring must double while wrapped.
  for (std::uint32_t i = 0; i < 100; ++i) l.push_raw(Value::u32(i));
  EXPECT_GE(l.slot_count(), 100u);
  EXPECT_EQ(l.slot_count() & (l.slot_count() - 1), 0u) << "slot count must stay a power of two";
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(l.pop_raw().as_u64(), i);
}

// --- batch fast paths -------------------------------------------------------

// push_raw_n / pop_raw_n must be observably identical to n singles: same
// indexes, same FIFO order, same provenance uid assignment.
TEST(LinkRing, BatchMatchesSingles) {
  obs::Journal::global().reset();
  Link batch = make_link();
  Link single = make_link();
  obs::Journal::global().reset();
  std::vector<Value> vs;
  for (std::uint32_t i = 0; i < 7; ++i) vs.push_back(Value::u32(i));
  const std::uint64_t idx0 = batch.push_raw_n(vs.data(), vs.size());
  const std::uint64_t batch_first_uid = batch.last_pushed_uid() - vs.size() + 1;

  obs::Journal::global().reset();
  std::uint64_t single_idx0 = 0;
  for (std::uint32_t i = 0; i < 7; ++i) {
    std::uint64_t idx = single.push_raw(vs[i]);
    if (i == 0) {
      single_idx0 = idx;
      EXPECT_EQ(single.last_pushed_uid(), batch_first_uid);
    }
  }
  EXPECT_EQ(idx0, single_idx0);
  EXPECT_EQ(batch.push_index(), single.push_index());
  EXPECT_EQ(batch.last_pushed_uid(), single.last_pushed_uid());
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(batch.peek(i), single.peek(i));
    EXPECT_EQ(batch.token_uid_at(i), single.token_uid_at(i));
  }

  std::vector<Value> out(7);
  batch.pop_raw_n(out.data(), 3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].as_u64(), i);
    EXPECT_EQ(single.pop_raw().as_u64(), i);
  }
  EXPECT_EQ(batch.last_popped_uid(), single.last_popped_uid());
  EXPECT_EQ(batch.pop_index(), single.pop_index());
  batch.pop_raw_n(out.data(), 4);
  EXPECT_EQ(out[3].as_u64(), 6u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.last_popped_uid(), batch.last_pushed_uid());
}

TEST(LinkRing, BatchAcrossWrappedHead) {
  Link l = make_link();
  for (int i = 0; i < 5; ++i) l.push_raw(Value::u32(0));
  for (int i = 0; i < 5; ++i) l.pop_raw();
  std::vector<Value> vs;
  for (std::uint32_t i = 0; i < 6; ++i) vs.push_back(Value::u32(i));
  l.push_raw_n(vs.data(), vs.size());  // straddles the physical boundary
  std::vector<Value> out(6);
  l.pop_raw_n(out.data(), 6);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].as_u64(), i);
}

// Randomized FIFO property over mixed single/batch/alteration operations
// against a reference deque (mirrors the existing FifoPropertyUnderRandomOps
// but driven through the batch APIs too).
TEST(LinkRing, FifoPropertyUnderRandomBatchOps) {
  dfdbg::Prng rng(20260806);
  Link l = make_link();
  l.set_capacity(32);
  std::vector<std::uint64_t> model;
  std::uint64_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    switch (rng.next_below(5)) {
      case 0: {  // single push
        if (l.full()) break;
        l.push_raw(Value::u32(static_cast<std::uint32_t>(next)));
        model.push_back(next++);
        break;
      }
      case 1: {  // batch push
        std::size_t room = 32 - l.occupancy();
        std::size_t n = rng.next_below(5);
        if (n == 0 || n > room) break;
        std::vector<Value> vs;
        for (std::size_t i = 0; i < n; ++i) {
          vs.push_back(Value::u32(static_cast<std::uint32_t>(next)));
          model.push_back(next++);
        }
        l.push_raw_n(vs.data(), n);
        break;
      }
      case 2: {  // single pop
        if (l.empty()) break;
        EXPECT_EQ(l.pop_raw().as_u64(), model.front());
        model.erase(model.begin());
        break;
      }
      case 3: {  // batch pop
        std::size_t n = rng.next_below(5);
        if (n == 0 || n > l.occupancy()) break;
        std::vector<Value> out(n);
        l.pop_raw_n(out.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i].as_u64(), model.front());
          model.erase(model.begin());
        }
        break;
      }
      case 4: {  // debugger erase
        if (l.empty()) break;
        std::size_t i = rng.next_below(static_cast<std::uint32_t>(l.occupancy()));
        EXPECT_EQ(l.erase_at(i).as_u64(), model[i]);
        model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    ASSERT_EQ(l.occupancy(), model.size());
  }
  while (!l.empty()) {
    EXPECT_EQ(l.pop_raw().as_u64(), model.front());
    model.erase(model.begin());
  }
}

// --- small-buffer optimization ---------------------------------------------

TEST(ValueSbo, SpillBoundaryIsFourFields) {
  TypeRegistry reg;
  const StructType* four = reg.define_struct(
      "Four_t", {{"A", ScalarType::kU32, false},
                 {"B", ScalarType::kU32, false},
                 {"C", ScalarType::kU32, false},
                 {"D", ScalarType::kU32, false}});
  const StructType* five = reg.define_struct(
      "Five_t", {{"A", ScalarType::kU32, false},
                 {"B", ScalarType::kU32, false},
                 {"C", ScalarType::kU32, false},
                 {"D", ScalarType::kU32, false},
                 {"E", ScalarType::kU32, false}});
  EXPECT_FALSE(Value::u32(7).spilled()) << "scalars are always inline";
  Value v4 = Value::make_struct(four);
  EXPECT_FALSE(v4.spilled()) << "kInlineFields-field structs stay inline";
  Value v5 = Value::make_struct(five);
  EXPECT_TRUE(v5.spilled()) << "wider structs spill to the heap";

  // Accessors behave identically on both representations.
  v4.set_field("D", 44);
  v5.set_field("E", 55);
  EXPECT_EQ(v4.field_u64("D"), 44u);
  EXPECT_EQ(v5.field_u64("E"), 55u);
  EXPECT_EQ(v5.field_u64("A"), 0u) << "spilled structs are zero-initialized";

  // Copy/move across the boundary preserve payload and representation.
  Value c4 = v4;
  Value c5 = v5;
  EXPECT_EQ(c4, v4);
  EXPECT_EQ(c5, v5);
  EXPECT_TRUE(c5.spilled());
  Value m5 = std::move(c5);
  EXPECT_EQ(m5, v5);
  EXPECT_TRUE(m5.spilled());
  // Cross-representation assignment flips the storage correctly.
  Value x = v5;
  x = v4;
  EXPECT_FALSE(x.spilled());
  EXPECT_EQ(x, v4);
  x = v5;
  EXPECT_TRUE(x.spilled());
  EXPECT_EQ(x, v5);

  EXPECT_FALSE(Value::zero_of(TypeDesc(four)).spilled());
  EXPECT_TRUE(Value::zero_of(TypeDesc(five)).spilled());
  EXPECT_EQ(Value::zero_of(TypeDesc(five)), Value::make_struct(five));
}

TEST(ValueSbo, StructFieldIndexLookup) {
  TypeRegistry reg;
  const StructType* st = reg.define_struct(
      "S", {{"alpha", ScalarType::kU32, false}, {"beta", ScalarType::kU16, false}});
  EXPECT_EQ(st->field_index("alpha"), 0);
  EXPECT_EQ(st->field_index("beta"), 1);
  EXPECT_EQ(st->field_index("gamma"), -1);
  EXPECT_EQ(st->field_index(std::string_view("beta")), 1);
}

// --- to_string goldens ------------------------------------------------------

// The exact render of every H.264 token type, pinned so the SBO rewrite (and
// any future payload representation change) cannot alter debugger
// transcripts, trace CSVs or the server protocol golden.
TEST(ValueGolden, H264TokenToStringUnchanged) {
  TypeRegistry reg;
  const StructType* mbhdr = reg.define_struct(
      "MbHdr_t", {{"Addr", ScalarType::kU32, true},
                  {"Mode", ScalarType::kU32, false},
                  {"Dx", ScalarType::kU32, false},
                  {"Dy", ScalarType::kU32, false}});
  std::vector<FieldDesc> blk_fields = {{"Addr", ScalarType::kU32, true},
                                       {"Plane", ScalarType::kU32, false},
                                       {"BlkIdx", ScalarType::kU32, false},
                                       {"Mode", ScalarType::kU32, false},
                                       {"Dx", ScalarType::kU32, false},
                                       {"Dy", ScalarType::kU32, false},
                                       {"N", ScalarType::kU32, false}};
  for (int i = 0; i < 16; ++i)
    blk_fields.push_back({"C" + std::to_string(i), ScalarType::kU32, false});
  const StructType* blk = reg.define_struct("Blk_t", blk_fields);
  const StructType* cbcr = reg.define_struct(
      "CbCrMB_t", {{"Addr", ScalarType::kU32, true},
                   {"InterNotIntra", ScalarType::kU32, false},
                   {"Izz", ScalarType::kU32, false}});
  const StructType* done = reg.define_struct(
      "MbDone_t", {{"Addr", ScalarType::kU32, true}, {"Izz", ScalarType::kU32, false}});

  // MbHdr_t: exactly at the inline boundary.
  Value h = Value::make_struct(mbhdr);
  EXPECT_FALSE(h.spilled());
  h.set_field("Addr", 0x1F);
  h.set_field("Mode", 2);
  h.set_field("Dx", 3);
  h.set_field("Dy", 1);
  EXPECT_EQ(h.to_string(), "(MbHdr_t){Addr=0x1F, Mode=2, Dx=3, Dy=1}");

  // Blk_t: 23 fields, heap-spilled.
  Value b = Value::make_struct(blk);
  EXPECT_TRUE(b.spilled());
  b.set_field("Addr", 0x145D);
  b.set_field("Plane", 1);
  b.set_field("N", 7);
  b.set_field("C0", 12);
  b.set_field("C15", 9);
  EXPECT_EQ(b.to_string(),
            "(Blk_t){Addr=0x145D, Plane=1, BlkIdx=0, Mode=0, Dx=0, Dy=0, N=7, "
            "C0=12, C1=0, C2=0, C3=0, C4=0, C5=0, C6=0, C7=0, C8=0, C9=0, "
            "C10=0, C11=0, C12=0, C13=0, C14=0, C15=9}");

  // CbCrMB_t: the paper transcript's exemplar token.
  Value c = Value::make_struct(cbcr);
  EXPECT_FALSE(c.spilled());
  c.set_field("Addr", 0x145D);
  c.set_field("InterNotIntra", 1);
  c.set_field("Izz", 168460492);
  EXPECT_EQ(c.to_string(), "(CbCrMB_t){Addr=0x145D, InterNotIntra=1, Izz=168460492}");

  Value d = Value::make_struct(done);
  d.set_field("Addr", 0x3FF);
  d.set_field("Izz", 5);
  EXPECT_EQ(d.to_string(), "(MbDone_t){Addr=0x3FF, Izz=5}");

  // Scalars (stddefs.h types the H.264 links carry).
  EXPECT_EQ(Value::u8(255).to_string(), "(U8) 255");
  EXPECT_EQ(Value::u16(5).to_string(), "(U16) 5");
  EXPECT_EQ(Value::u32(168460492).to_string(), "(U32) 168460492");
  EXPECT_EQ(Value::i32(-3).to_string(), "(I32) -3");
  EXPECT_EQ(Value::f32(1.5f).to_string(), "(F32) 1.5");
}

// --- batched firing through the full runtime --------------------------------

struct PipeWorld {
  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<Application> app;
  HostSink* sink = nullptr;
};

// source -> relay -> sink over CbCrMB_t tokens; `batch` opts every endpoint
// into the batched firing fast path.
PipeWorld build_pipe(std::size_t batch, std::size_t tokens) {
  PipeWorld w;
  w.kernel = std::make_unique<sim::Kernel>();
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  w.platform = std::make_unique<sim::Platform>(*w.kernel, pc);
  w.app = std::make_unique<Application>(*w.platform, "pipe");
  w.app->set_model_latencies(false);
  const StructType* st = w.app->types().define_struct(
      "CbCrMB_t", {{"Addr", ScalarType::kU32, true},
                   {"InterNotIntra", ScalarType::kU32, false},
                   {"Izz", ScalarType::kU32, false}});
  auto root = std::make_unique<Module>("top");
  auto* relay = new FnFilter(
      "relay", [buf = std::vector<Value>()](FilterContext& pedf) mutable {
        const std::size_t b = pedf.fire_batch();
        if (b > 1) {
          buf.resize(b);
          const std::size_t got = pedf.in("in").get_n(buf.data(), b);
          if (got > 0) pedf.out("out").put_n(buf.data(), got);
          if (got < b) pedf.stop();
        } else {
          auto v = pedf.in("in").get_opt();
          if (v.has_value()) pedf.out("out").put(*v);
        }
      });
  relay->add_port("in", PortDir::kIn, TypeDesc(st));
  relay->add_port("out", PortDir::kOut, TypeDesc(st));
  relay->set_free_running(true);
  relay->set_fire_batch(batch);
  root->add_filter(std::unique_ptr<Filter>(relay));
  root->add_port("min", PortDir::kIn, TypeDesc(st));
  root->add_port("mout", PortDir::kOut, TypeDesc(st));
  root->bind("this.min", "relay.in");
  root->bind("relay.out", "this.mout");
  std::vector<Value> stream;
  for (std::size_t i = 0; i < tokens; ++i) {
    Value v = Value::make_struct(st);
    v.set_field("Addr", 0x1000 + i);
    v.set_field("Izz", i * 3);
    stream.push_back(std::move(v));
  }
  w.app->set_root(std::move(root));
  w.app->add_host_source("src", "top.min", std::move(stream)).set_fire_batch(batch);
  w.sink = &w.app->add_host_sink("snk", "top.mout", tokens);
  w.sink->set_fire_batch(batch);
  EXPECT_TRUE(w.app->elaborate().ok());
  return w;
}

// Batched firing must deliver the same tokens in the same order as
// token-at-a-time firing, and assign the same provenance uid range (the
// batch paths allocate ids through Journal::alloc_tokens, which must be
// indistinguishable from n alloc_token calls).
TEST(BatchedFiring, MatchesTokenAtATime) {
  constexpr std::size_t kTokens = 96;  // multiple of the batch size
  obs::Journal::global().reset();
  PipeWorld one = build_pipe(1, kTokens);
  one.app->start();
  one.kernel->run();
  const std::uint64_t uid_budget_one = obs::Journal::global().last_token();
  ASSERT_EQ(one.sink->received().size(), kTokens);

  obs::Journal::global().reset();
  PipeWorld batch = build_pipe(16, kTokens);
  batch.app->start();
  batch.kernel->run();
  ASSERT_EQ(batch.sink->received().size(), kTokens);
  EXPECT_EQ(obs::Journal::global().last_token(), uid_budget_one)
      << "batched runs must allocate the identical provenance id range";
  // The two worlds own distinct TypeRegistry instances, so compare renders
  // (TypeDesc equality is registration identity, not structural).
  for (std::size_t i = 0; i < kTokens; ++i)
    EXPECT_EQ(batch.sink->received()[i].to_string(), one.sink->received()[i].to_string()) << i;
}

// A batched consumer wanting more tokens than will ever arrive must drain
// what exists and return short on I/O shutdown instead of blocking forever
// (the get_n analogue of get_opt's nullopt).
TEST(BatchedFiring, GetNReturnsShortOnIoShutdown) {
  constexpr std::size_t kTokens = 10;  // NOT a multiple of the sink's batch
  obs::Journal::global().reset();
  PipeWorld w;
  w.kernel = std::make_unique<sim::Kernel>();
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  w.platform = std::make_unique<sim::Platform>(*w.kernel, pc);
  w.app = std::make_unique<Application>(*w.platform, "pipe");
  w.app->set_model_latencies(false);
  auto root = std::make_unique<Module>("top");
  auto* relay = new FnFilter("relay", [](FilterContext& pedf) {
    auto v = pedf.in("in").get_opt();
    if (v.has_value()) pedf.out("out").put(*v);
  });
  relay->add_port("in", PortDir::kIn, TypeDesc(ScalarType::kU32));
  relay->add_port("out", PortDir::kOut, TypeDesc(ScalarType::kU32));
  relay->set_free_running(true);
  root->add_filter(std::unique_ptr<Filter>(relay));
  root->add_port("min", PortDir::kIn, TypeDesc(ScalarType::kU32));
  root->add_port("mout", PortDir::kOut, TypeDesc(ScalarType::kU32));
  root->bind("this.min", "relay.in");
  root->bind("relay.out", "this.mout");
  std::vector<Value> stream;
  for (std::size_t i = 0; i < kTokens; ++i)
    stream.push_back(Value::u32(static_cast<std::uint32_t>(i)));
  w.app->set_root(std::move(root));
  w.app->add_host_source("src", "top.min", std::move(stream));
  // Unbounded expectation: the sink's get_n(16) can never fill a burst from
  // the 10-token stream.
  w.sink = &w.app->add_host_sink("snk", "top.mout");
  w.sink->set_fire_batch(16);
  ASSERT_TRUE(w.app->elaborate().ok());
  w.app->start();
  w.kernel->run();  // drains the graph; the sink is still blocked mid-burst
  EXPECT_TRUE(w.sink->received().empty()) << "burst not delivered while incomplete";
  w.app->finish_io();
  w.kernel->run();  // get_n now returns short and the sink stops
  ASSERT_EQ(w.sink->received().size(), kTokens);
  for (std::size_t i = 0; i < kTokens; ++i) EXPECT_EQ(w.sink->received()[i].as_u64(), i);
}

}  // namespace
}  // namespace dfdbg::pedf

// Tests of the multi-session fleet host (docs/PROTOCOL.md "Sessions"):
// session lifecycle verbs, two-session isolation (private journals and
// worlds), quota enforcement (token budget, journal capacity, client and
// session ceilings), idle eviction, v1 single-session byte-compatibility
// against the pinned golden transcript, shard-pinned determinism under the
// parallel backend, and the 1024-idle-sessions-in-one-process acceptance
// criterion.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dfdbg/common/json.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/server/protocol.hpp"
#include "dfdbg/server/server.hpp"
#include "dfdbg/sim/context.hpp"

namespace dfdbg::server {
namespace {

/// In-process fleet-only rig: no default session, wide/adl rigs available.
struct FleetRig {
  dbg::SessionFactory factory;
  std::unique_ptr<DebugServer> server;

  explicit FleetRig(ServerConfig scfg = {}) {
    server = std::make_unique<DebugServer>(factory, scfg);
  }

  JsonValue parse(const std::string& frame) {
    auto v = JsonValue::parse(frame);
    EXPECT_TRUE(v.ok()) << v.status().message() << " in: " << frame;
    return v.ok() ? *v : JsonValue{};
  }

  /// handle_frame + parse; EXPECTs a "result" member and returns a copy.
  JsonValue result(const std::string& frame) {
    JsonValue doc = parse(server->handle_frame(frame));
    const JsonValue* r = doc.find("result");
    EXPECT_NE(r, nullptr) << "not a result frame: " << doc.dump();
    return r != nullptr ? *r : JsonValue{};
  }

  /// handle_frame + parse; EXPECTs an "error" member and returns its message.
  std::string error_message(const std::string& frame) {
    JsonValue doc = parse(server->handle_frame(frame));
    const JsonValue* e = doc.find("error");
    EXPECT_NE(e, nullptr) << "not an error frame: " << doc.dump();
    return e != nullptr ? e->str_or("message") : std::string();
  }

  /// session_create and return the new session's id (0 on failure).
  std::uint64_t create(const std::string& params_json) {
    JsonValue r = result(R"({"jsonrpc":"2.0","id":9000,"method":"session_create","params":)" +
                         params_json + "}");
    const JsonValue* s = r.find("session");
    EXPECT_NE(s, nullptr) << r.dump();
    return s != nullptr ? s->u64_or("id") : 0;
  }
};

/// Small wide-rig spec: 3 actors, 4 tokens — builds in well under a ms.
const char* kTinyWide =
    R"({"rig":"wide","name":"%s","pipelines":1,"stages":1,"tokens":4,"spin":1})";

std::string tiny_wide(const std::string& name) {
  std::string out = kTinyWide;
  out.replace(out.find("%s"), 2, name);
  return out;
}

// --- session lifecycle verbs -------------------------------------------------

TEST(FleetVerbs, CreateListDestroyRoundTrip) {
  FleetRig rig;
  std::uint64_t id = rig.create(tiny_wide("alpha"));
  ASSERT_NE(id, 0u);

  JsonValue list = rig.result(R"({"jsonrpc":"2.0","id":1,"method":"session_list"})");
  EXPECT_EQ(list.u64_or("count"), 1u) << list.dump();
  const JsonValue* sessions = list.find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ(sessions->at(0).str_or("name"), "alpha");
  EXPECT_EQ(sessions->at(0).str_or("rig"), "wide");
  EXPECT_EQ(sessions->at(0).u64_or("shard"), 0u);
  EXPECT_FALSE(sessions->at(0).bool_or("default"));

  // Verbs address it by name or id interchangeably.
  JsonValue by_name = rig.result(
      R"({"jsonrpc":"2.0","id":2,"method":"info_links","params":{"session":"alpha"}})");
  JsonValue by_id = rig.result(
      R"({"jsonrpc":"2.0","id":3,"method":"info_links","params":{"session":)" +
      std::to_string(id) + "}}");
  EXPECT_EQ(by_name.dump(), by_id.dump());

  JsonValue destroyed = rig.result(
      R"({"jsonrpc":"2.0","id":4,"method":"session_destroy","params":{"session":"alpha"}})");
  EXPECT_TRUE(destroyed.bool_or("ok"));
  list = rig.result(R"({"jsonrpc":"2.0","id":5,"method":"session_list"})");
  EXPECT_EQ(list.u64_or("count"), 0u);
  EXPECT_NE(rig.error_message(
                R"({"jsonrpc":"2.0","id":6,"method":"info_links","params":{"session":"alpha"}})")
                .find("no such session"),
            std::string::npos)
      << "destroyed session still resolvable";
}

TEST(FleetVerbs, CreateErrors) {
  FleetRig rig;
  EXPECT_NE(rig.error_message(
                R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":{"rig":"bogus"}})")
                .find("rig"),
            std::string::npos);
  EXPECT_NE(
      rig.error_message(
             R"({"jsonrpc":"2.0","id":2,"method":"session_create","params":{"shard":7}})")
          .find("out of range"),
      std::string::npos);
  ASSERT_NE(rig.create(tiny_wide("dup")), 0u);
  EXPECT_NE(rig.error_message(R"({"jsonrpc":"2.0","id":3,"method":"session_create","params":)" +
                              tiny_wide("dup") + "}")
                .find("dup"),
            std::string::npos)
      << "duplicate explicit name must be refused";
  // Unknown target session.
  EXPECT_NE(rig.error_message(
                R"({"jsonrpc":"2.0","id":4,"method":"run","params":{"session":"ghost"}})")
                .find("no such session"),
            std::string::npos);
  // No attachment and no default on a fleet-only host.
  EXPECT_NE(rig.error_message(R"({"jsonrpc":"2.0","id":5,"method":"info_links"})")
                .find("no default session"),
            std::string::npos);
}

TEST(FleetVerbs, CreateGateRespected) {
  ServerConfig scfg;
  scfg.allow_session_create = false;
  FleetRig rig(scfg);
  EXPECT_NE(rig.error_message(R"({"jsonrpc":"2.0","id":1,"method":"session_create"})")
                .find("disabled"),
            std::string::npos);
}

// --- isolation ---------------------------------------------------------------

TEST(FleetIsolation, RunTouchesOnlyTheTargetSession) {
  FleetRig rig;
  ASSERT_NE(rig.create(tiny_wide("a")), 0u);
  ASSERT_NE(rig.create(tiny_wide("b")), 0u);

  JsonValue run = rig.result(
      R"({"jsonrpc":"2.0","id":1,"method":"run","params":{"session":"a"}})");
  EXPECT_FALSE(run.str_or("result").empty()) << run.dump();

  // `a` recorded journal events and token uids; `b` recorded nothing.
  JsonValue list = rig.result(R"({"jsonrpc":"2.0","id":2,"method":"session_list"})");
  const JsonValue* sessions = list.find("sessions");
  ASSERT_NE(sessions, nullptr);
  std::uint64_t a_events = 0, b_events = 0, a_tok = 0, b_tok = 0;
  for (std::size_t i = 0; i < sessions->size(); ++i) {
    const JsonValue& s = sessions->at(i);
    if (s.str_or("name") == "a") {
      a_events = s.u64_or("journal_events");
      a_tok = s.u64_or("last_token");
    } else if (s.str_or("name") == "b") {
      b_events = s.u64_or("journal_events");
      b_tok = s.u64_or("last_token");
    }
  }
  EXPECT_GT(a_events, 0u);
  EXPECT_GT(a_tok, 0u);
  EXPECT_EQ(b_events, 0u) << "running `a` leaked journal events into `b`";
  EXPECT_EQ(b_tok, 0u) << "running `a` leaked token uids into `b`";

  // `b`'s links are still in their initial state.
  JsonValue b_links = rig.result(
      R"({"jsonrpc":"2.0","id":3,"method":"info_links","params":{"session":"b"}})");
  const JsonValue* links = b_links.find("links");
  ASSERT_NE(links, nullptr);
  for (std::size_t i = 0; i < links->size(); ++i)
    EXPECT_EQ(links->at(i).u64_or("pushes"), 0u) << links->at(i).dump();
}

// --- quotas ------------------------------------------------------------------

TEST(FleetQuota, TokenBudgetRefusesMutatingVerbs) {
  FleetRig rig;
  std::string spec = tiny_wide("tiny");
  spec.insert(spec.size() - 1, R"(,"quota":{"token_budget":1})");
  ASSERT_NE(rig.create(spec), 0u);

  // First run is admitted (budget not yet consumed) and exhausts the budget.
  rig.result(R"({"jsonrpc":"2.0","id":1,"method":"run","params":{"session":"tiny"}})");
  std::string msg = rig.error_message(
      R"({"jsonrpc":"2.0","id":2,"method":"run","params":{"session":"tiny"}})");
  EXPECT_NE(msg.find("token budget"), std::string::npos) << msg;
  // Read-only verbs still work on an exhausted session.
  JsonValue links = rig.result(
      R"({"jsonrpc":"2.0","id":3,"method":"info_links","params":{"session":"tiny"}})");
  EXPECT_NE(links.find("links"), nullptr);
}

TEST(FleetQuota, JournalCapacityFromQuota) {
  FleetRig rig;
  std::string spec = tiny_wide("smallring");
  spec.insert(spec.size() - 1, R"(,"quota":{"journal_capacity":64})");
  ASSERT_NE(rig.create(spec), 0u);
  auto hs = rig.server->sessions().find(std::string("smallring"));
  ASSERT_NE(hs, nullptr);
  ASSERT_NE(hs->journal, nullptr);
  EXPECT_EQ(hs->journal->capacity(), 64u);
  EXPECT_NE(hs->journal, &obs::Journal::global_base())
      << "quota-sized session journal must be private, not the process ring";
}

TEST(FleetQuota, JournalCapacityClampedToServerCeiling) {
  ServerConfig scfg;
  scfg.max_journal_capacity = 256;
  FleetRig rig(scfg);
  // A hostile client asking for a giant private ring gets the server's
  // ceiling, not a giant allocation.
  std::string spec = tiny_wide("greedy");
  spec.insert(spec.size() - 1, R"(,"quota":{"journal_capacity":1073741824})");
  ASSERT_NE(rig.create(spec), 0u);
  auto hs = rig.server->sessions().find(std::string("greedy"));
  ASSERT_NE(hs, nullptr);
  ASSERT_NE(hs->journal, nullptr);
  EXPECT_EQ(hs->journal->capacity(), 256u);
  // Requests under the ceiling are honoured unchanged.
  spec = tiny_wide("modest");
  spec.insert(spec.size() - 1, R"(,"quota":{"journal_capacity":64})");
  ASSERT_NE(rig.create(spec), 0u);
  auto modest = rig.server->sessions().find(std::string("modest"));
  ASSERT_NE(modest, nullptr);
  EXPECT_EQ(modest->journal->capacity(), 64u);
}

TEST(FleetQuota, SessionCeilingEnforced) {
  ServerConfig scfg;
  scfg.max_sessions = 2;
  FleetRig rig(scfg);
  ASSERT_NE(rig.create(tiny_wide("one")), 0u);
  ASSERT_NE(rig.create(tiny_wide("two")), 0u);
  EXPECT_NE(rig.error_message(R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":)" +
                              tiny_wide("three") + "}")
                .find("session limit reached"),
            std::string::npos);
}

// --- idle eviction -----------------------------------------------------------

TEST(FleetQuota, ConcurrentCreatesRespectCeilingAndNames) {
  // Two shards race session_create through the manager directly: the
  // capacity and name checks are re-validated after the (unlocked) factory
  // build, so neither the ceiling nor name uniqueness can be broken by the
  // check-build-insert window, and an explicit name is never silently
  // renamed.
  obs::set_enabled(true);
  dbg::SessionFactory factory;
  SessionManager mgr(&factory, 4);
  constexpr int kAttempts = 6;
  std::atomic<int> wins[kAttempts] = {};
  std::atomic<int> done{0};
  auto worker = [&](int shard) {
    for (int i = 0; i < kAttempts; ++i) {
      dbg::SessionSpec spec;
      spec.pipelines = 1;
      spec.stages = 1;
      spec.tokens = 4;
      spec.spin = 1;
      spec.name = "contested-" + std::to_string(i);
      auto r = mgr.create(spec, shard, 0);
      if (r.ok()) {
        wins[i].fetch_add(1);
        EXPECT_EQ((*r)->name, spec.name);
      } else {
        std::string msg = r.status().message();
        EXPECT_TRUE(msg.find("already in use") != std::string::npos ||
                    msg.find("limit reached") != std::string::npos)
            << msg;
      }
      EXPECT_LE(mgr.count(), 4u);
    }
    // Hold teardown until both threads stop creating, so a destroyed name
    // cannot be legitimately re-created and double-counted above.
    done.fetch_add(1);
    while (done.load() < 2) std::this_thread::yield();
    mgr.destroy_all_on_shard(shard);  // worlds unwind on their creating thread
  };
  std::thread t1(worker, 101);
  std::thread t2(worker, 102);
  t1.join();
  t2.join();
  for (int i = 0; i < kAttempts; ++i)
    EXPECT_LE(wins[i].load(), 1) << "name contested-" << i << " created twice";
  EXPECT_EQ(mgr.count(), 0u);
}

TEST(FleetEviction, IdleSessionsSwept) {
  FleetRig rig;
  std::string spec = tiny_wide("ephemeral");
  spec.insert(spec.size() - 1, R"(,"quota":{"idle_timeout_ms":5})");
  ASSERT_NE(rig.create(spec), 0u);
  ASSERT_NE(rig.create(tiny_wide("durable")), 0u);  // no timeout: never evicted

  EXPECT_EQ(rig.server->evict_idle_for_test(0), 0u) << "evicted before its timeout";
  EXPECT_EQ(rig.server->evict_idle_for_test(1000000), 1u);
  JsonValue list = rig.result(R"({"jsonrpc":"2.0","id":1,"method":"session_list"})");
  EXPECT_EQ(list.u64_or("count"), 1u) << list.dump();
  const JsonValue* sessions = list.find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->size(), 1u);
  EXPECT_EQ(sessions->at(0).str_or("name"), "durable");
}

TEST(FleetEviction, DefaultSessionNeverEvicted) {
  auto built = h264::H264App::build([] {
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    return cfg;
  }());
  ASSERT_TRUE(built.ok()) << built.status().message();
  dbg::Session session((*built)->app());
  session.attach();
  (*built)->start();
  ServerConfig scfg;
  scfg.default_quota.idle_timeout_ms = 1;  // armed, but default is exempt
  DebugServer server(session, scfg);
  EXPECT_EQ(server.evict_idle_for_test(1000000), 0u);
}

// --- v1 backward compatibility ----------------------------------------------

/// Pins the process backend (the transcript embeds backend/workers fields).
struct FibersBackendGuard {
  sim::ProcessBackend prev = sim::default_process_backend();
  FibersBackendGuard() { sim::set_default_process_backend(sim::ProcessBackend::kFibers); }
  ~FibersBackendGuard() { sim::set_default_process_backend(prev); }
};

/// A v1 client (no session params, no session verbs) against the fleet host
/// must see byte-identical responses to the pre-fleet server: the default-
/// session alias is the compatibility contract. The golden transcript was
/// captured from the single-session server before the fleet refactor.
TEST(FleetV1Compat, DefaultAliasByteIdenticalToV1Golden) {
  FibersBackendGuard backend_guard;
  auto built = h264::H264App::build([] {
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    return cfg;
  }());
  ASSERT_TRUE(built.ok()) << built.status().message();
  dbg::Session session((*built)->app());
  session.attach();
  (*built)->start();
  DebugServer server(session);

  std::string golden_path =
      std::string(DFDBG_SOURCE_DIR) + "/tests/golden/server_protocol_v1.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string golden = buf.str();

  // Replay every "--> " request line; the whole transcript must match.
  std::string transcript;
  std::istringstream lines(golden);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("--> ", 0) != 0) continue;
    std::string req = line.substr(4);
    transcript += "--> " + req + "\n<-- " + server.handle_frame(req) + "\n";
  }
  ASSERT_FALSE(transcript.empty()) << "golden has no request lines";
  EXPECT_EQ(transcript, golden)
      << "v1 single-session wire behavior diverged; the default-session alias "
         "must stay byte-compatible (tests/golden/server_protocol_v1.txt)";
}

// --- determinism under the parallel backend ----------------------------------

TEST(FleetDeterminism, ParallelBackendTwinSessionsAgree) {
  FleetRig rig;
  const char* spec =
      R"({"rig":"wide","name":"%s","backend":"parallel","workers":2,)"
      R"("pipelines":4,"stages":2,"tokens":16,"spin":4,"seed":7})";
  for (const char* name : {"t1", "t2"}) {
    std::string s = spec;
    s.replace(s.find("%s"), 2, name);
    ASSERT_NE(rig.create(s), 0u) << name;
  }
  JsonValue r1 = rig.result(
      R"({"jsonrpc":"2.0","id":1,"method":"run","params":{"session":"t1"}})");
  JsonValue r2 = rig.result(
      R"({"jsonrpc":"2.0","id":2,"method":"run","params":{"session":"t2"}})");
  EXPECT_EQ(r1.dump(), r2.dump());

  // Identical final link state and journal volume: the barrier-synced
  // parallel kernels are deterministic per session. (last_token stays 0 on
  // the base journal under multi-worker runs — shard journals allocate uids
  // from disjoint ranges — so journal cursors are the comparison here.)
  JsonValue l1 = rig.result(
      R"({"jsonrpc":"2.0","id":3,"method":"info_links","params":{"session":"t1"}})");
  JsonValue l2 = rig.result(
      R"({"jsonrpc":"2.0","id":4,"method":"info_links","params":{"session":"t2"}})");
  EXPECT_EQ(l1.dump(), l2.dump());
  auto t1 = rig.server->sessions().find(std::string("t1"));
  auto t2 = rig.server->sessions().find(std::string("t2"));
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_GT(t1->journal->cursor(), 0u);
  EXPECT_EQ(t1->journal->cursor(), t2->journal->cursor());
}

// --- scale: the 1024-idle-sessions acceptance criterion ----------------------

TEST(FleetScale, ThousandIdleSessionsUnderQuota) {
  ServerConfig scfg;
  scfg.max_sessions = 1100;
  FleetRig rig(scfg);
  constexpr int kSessions = 1024;
  for (int i = 0; i < kSessions; ++i) {
    std::string frame =
        R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":{"rig":"wide",)"
        R"("pipelines":1,"stages":1,"tokens":4,"spin":1,"quota":{"journal_capacity":256}}})";
    std::string resp = rig.server->handle_frame(frame);
    ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << "create " << i << ": " << resp;
  }
  JsonValue list = rig.result(R"({"jsonrpc":"2.0","id":2,"method":"session_list"})");
  EXPECT_EQ(list.u64_or("count"), static_cast<std::uint64_t>(kSessions));

  // Every world is live and individually addressable: spot-check a spread of
  // auto-named sessions end to end.
  for (std::uint64_t id : {1u, 500u, 1024u}) {
    JsonValue links = rig.result(
        R"({"jsonrpc":"2.0","id":3,"method":"info_links","params":{"session":)" +
        std::to_string(id) + "}}");
    EXPECT_NE(links.find("links"), nullptr) << "session " << id;
  }
  // Teardown of all 1024 worlds happens in the server dtor (shard 0 owns
  // them all in-process); reaching the end without leaks/crashes is the test.
}

// --- socket-level fleet behavior ---------------------------------------------

/// Blocking line client (same shape as test_subscribe's).
struct TestClient {
  int fd = -1;
  std::string spill;

  ~TestClient() {
    if (fd >= 0) close(fd);
  }

  bool connect_tcp(int port) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  void set_timeout_ms(int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  bool send_line(const std::string& frame) {
    std::string wire = frame + "\n";
    std::size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string read_line() {
    for (;;) {
      std::size_t nl = spill.find('\n');
      if (nl != std::string::npos) {
        std::string line = spill.substr(0, nl);
        spill.erase(0, nl + 1);
        return line;
      }
      char buf[65536];
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return "";
      spill.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Sends a request and reads frames until its response, collecting
  /// notifications seen on the way.
  std::string request(const std::string& frame, std::vector<std::string>* notifications = nullptr) {
    if (!send_line(frame)) return "";
    for (;;) {
      std::string line = read_line();
      if (line.empty()) return "";
      auto doc = JsonValue::parse(line);
      if (doc.ok() && doc->is_object() && doc->find("id") == nullptr) {
        if (notifications != nullptr) notifications->push_back(line);
        continue;
      }
      return line;
    }
  }
};

/// Fleet-only poll-loop server on a dedicated thread. The server object is
/// owned by the test thread and outlives serve(): request_shutdown() must
/// never race the destructor closing the wake pipes. Shard loops destroy
/// their own sessions on exit, so tearing the object down here (not on the
/// serving thread) is safe.
struct FleetServerThread {
  dbg::SessionFactory factory;
  std::unique_ptr<DebugServer> server;
  std::thread thread;
  int port = 0;

  explicit FleetServerThread(ServerConfig scfg = {}) {
    server = std::make_unique<DebugServer>(factory, scfg);
    auto p = server->listen_tcp();
    EXPECT_TRUE(p.ok()) << p.status().message();
    if (!p.ok()) return;
    port = *p;
    thread = std::thread([this] { EXPECT_TRUE(server->serve().ok()); });
  }

  ~FleetServerThread() {
    if (thread.joinable()) {
      server->request_shutdown();
      thread.join();
    }
  }
};

TEST(FleetSocket, NotificationsTaggedWithSessionId) {
  FleetServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(5000);

  std::string resp = tc.request(
      R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":)" + tiny_wide("live") + "}");
  auto created = JsonValue::parse(resp);
  ASSERT_TRUE(created.ok()) << resp;
  const JsonValue* result = created->find("result");
  ASSERT_NE(result, nullptr) << resp;
  EXPECT_TRUE(result->bool_or("attached")) << resp;
  const JsonValue* brief = result->find("session");
  ASSERT_NE(brief, nullptr);
  std::uint64_t sid = brief->u64_or("id");
  ASSERT_NE(sid, 0u);

  // The subscribe ack names the bound session; the attachment makes it implicit.
  resp = tc.request(R"({"jsonrpc":"2.0","id":2,"method":"subscribe","params":{"stream":"journal"}})");
  EXPECT_NE(resp.find("\"session\":" + std::to_string(sid)), std::string::npos) << resp;

  std::vector<std::string> notifications;
  resp = tc.request(R"({"jsonrpc":"2.0","id":3,"method":"run"})", &notifications);
  EXPECT_NE(resp.find("\"result\""), std::string::npos) << resp;
  // Journal deltas may trail the run response: drain until one arrives.
  for (int i = 0; i < 50 && notifications.empty(); ++i) {
    std::string line = tc.read_line();
    if (line.empty()) break;
    auto doc = JsonValue::parse(line);
    if (doc.ok() && doc->find("id") == nullptr) notifications.push_back(line);
  }
  ASSERT_FALSE(notifications.empty()) << "no journal.delta after run";
  for (const std::string& n : notifications) {
    auto doc = JsonValue::parse(n);
    ASSERT_TRUE(doc.ok()) << n;
    const JsonValue* params = doc->find("params");
    ASSERT_NE(params, nullptr) << n;
    EXPECT_EQ(params->u64_or("session"), sid) << n;
  }
}

TEST(FleetSocket, MaxClientsQuotaEnforced) {
  FleetServerThread st;
  TestClient a, b;
  ASSERT_TRUE(a.connect_tcp(st.port));
  ASSERT_TRUE(b.connect_tcp(st.port));
  a.set_timeout_ms(5000);
  b.set_timeout_ms(5000);

  std::string spec = tiny_wide("solo");
  spec.insert(spec.size() - 1, R"(,"quota":{"max_clients":1})");
  std::string resp = a.request(
      R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":)" + spec + "}");
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;

  // Creator auto-attached: the second client is over quota...
  resp = b.request(
      R"({"jsonrpc":"2.0","id":2,"method":"session_attach","params":{"session":"solo"}})");
  EXPECT_NE(resp.find("client quota"), std::string::npos) << resp;
  // ...until the creator detaches.
  resp = a.request(R"({"jsonrpc":"2.0","id":3,"method":"session_detach"})");
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  resp = b.request(
      R"({"jsonrpc":"2.0","id":4,"method":"session_attach","params":{"session":"solo"}})");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
}

TEST(FleetSocket, CrossShardCreateAttachAndRun) {
  ServerConfig scfg;
  scfg.shards = 2;
  FleetServerThread st(scfg);
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(5000);

  // Creating on shard 1 migrates the connection there transparently: the
  // response still arrives, in order, on this socket.
  std::string spec = tiny_wide("far");
  spec.insert(spec.size() - 1, R"(,"shard":1)");
  std::string resp = tc.request(
      R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":)" + spec + "}");
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"shard\":1"), std::string::npos) << resp;

  resp = tc.request(R"({"jsonrpc":"2.0","id":2,"method":"run"})");
  EXPECT_NE(resp.find("\"result\""), std::string::npos) << resp;

  // Now a session back on shard 0; session_attach migrates the client again.
  spec = tiny_wide("near");
  spec.insert(spec.size() - 1, R"(,"shard":0)");
  resp = tc.request(
      R"({"jsonrpc":"2.0","id":3,"method":"session_create","params":)" + spec + "}");
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"shard\":0"), std::string::npos) << resp;
  resp = tc.request(
      R"({"jsonrpc":"2.0","id":4,"method":"session_attach","params":{"session":"far"}})");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;

  // Both worlds are visible fleet-wide regardless of the client's shard.
  resp = tc.request(R"({"jsonrpc":"2.0","id":5,"method":"session_list"})");
  EXPECT_NE(resp.find("\"count\":2"), std::string::npos) << resp;
}

TEST(FleetSocket, AttachRefusalLeavesClientUsable) {
  ServerConfig scfg;
  scfg.shards = 2;
  FleetServerThread st(scfg);
  TestClient a, b;
  ASSERT_TRUE(a.connect_tcp(st.port));
  ASSERT_TRUE(b.connect_tcp(st.port));
  a.set_timeout_ms(5000);
  b.set_timeout_ms(5000);

  // a works against "home" on its own shard 0; b fills the 1-client quota
  // of "far" on shard 1.
  std::string resp = a.request(
      R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":)" + tiny_wide("home") + "}");
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  std::string spec = tiny_wide("far");
  spec.insert(spec.size() - 1, R"(,"shard":1,"quota":{"max_clients":1})");
  resp = b.request(
      R"({"jsonrpc":"2.0","id":2,"method":"session_create","params":)" + spec + "}");
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  ASSERT_NE(resp.find("\"shard\":1"), std::string::npos) << resp;

  // Attaching to the full session is refused *before* the cross-shard
  // migration — a must not be stranded on shard 1 with an attachment it
  // cannot use...
  resp = a.request(
      R"({"jsonrpc":"2.0","id":3,"method":"session_attach","params":{"session":"far"}})");
  EXPECT_NE(resp.find("client quota"), std::string::npos) << resp;
  // ...so its implicit session-scoped verbs keep hitting "home" unchanged.
  resp = a.request(R"({"jsonrpc":"2.0","id":4,"method":"run"})");
  EXPECT_NE(resp.find("\"result\""), std::string::npos) << resp;
  resp = a.request(R"({"jsonrpc":"2.0","id":5,"method":"session_detach"})");
  EXPECT_NE(resp.find("\"detached\""), std::string::npos) << resp;
}

}  // namespace
}  // namespace dfdbg::server

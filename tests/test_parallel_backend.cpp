// Tests of the kParallel process backend: partitioned sub-kernels with
// deterministic barrier sync (docs/KERNEL.md "Parallel backend").
//
// The determinism contract has two tiers, and the suite pins both:
//   * one worker — byte-identical to the sequential fibers backend (same
//     schedule, same trace timestamps, same provenance ids), and
//   * K workers  — per-link token order invariant (the KPN property) and
//     run-to-run byte-identical for a fixed partition map (shard-ranged
//     token ids, per-partition barrier order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dfdbg/common/strings.hpp"

#include "../bench/wide_graph.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/trace/chrome_trace.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg {
namespace {

using benchutil::WideGraphConfig;
using h264::H264App;
using h264::H264AppConfig;

/// Forces a known observability state for one test.
struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(obs::enabled()) { obs::set_enabled(on); }
  ~EnabledGuard() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

/// Restores the global journal to its default shape around a test.
struct JournalGuard {
  JournalGuard() { restore(); }
  ~JournalGuard() { restore(); }

  static void restore() {
    obs::Journal& j = obs::Journal::global();
    j.set_capacity(obs::Journal::kDefaultCapacity);
    j.set_recording(true);
    j.reset();
  }
};

/// Pins the default backend (and, for kParallel, the worker count) for one
/// test, restoring the previous default and environment on exit. H264App
/// builds its own kernel, so the default is the only steering knob.
struct BackendGuard {
  explicit BackendGuard(sim::ProcessBackend b, int workers = 0)
      : saved_(sim::default_process_backend()) {
    const char* prev = std::getenv("DFDBG_PARALLEL_WORKERS");
    if (prev != nullptr) saved_workers_ = prev;
    had_workers_ = prev != nullptr;
    sim::set_default_process_backend(b);
    if (workers > 0)
      ::setenv("DFDBG_PARALLEL_WORKERS", std::to_string(workers).c_str(), 1);
  }
  ~BackendGuard() {
    sim::set_default_process_backend(saved_);
    if (had_workers_)
      ::setenv("DFDBG_PARALLEL_WORKERS", saved_workers_.c_str(), 1);
    else
      ::unsetenv("DFDBG_PARALLEL_WORKERS");
  }

 private:
  sim::ProcessBackend saved_;
  std::string saved_workers_;
  bool had_workers_ = false;
};

H264AppConfig small_decoder() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  cfg.params.qp = 20;
  return cfg;
}

/// Decodes under the current default backend with a TraceCollector attached
/// and returns the sorted trace CSV.
std::string decode_trace_csv() {
  auto built = H264App::build(small_decoder());
  EXPECT_TRUE(built.ok()) << built.status().message();
  auto& app = **built;
  trace::TraceCollector tc(app.app(), 1 << 18);
  tc.attach();
  app.start();
  app.kernel().run();
  EXPECT_TRUE(app.decoded_matches_golden());
  EXPECT_EQ(tc.dropped(), 0u);
  return tc.to_csv();
}

// --- trace parity -----------------------------------------------------------

// Tier 1: with one worker the parallel kernel models everything the
// sequential backends model (including DMA-engine contention), so the full
// decoder trace — timestamps included — is byte-identical to fibers.
TEST(ParallelH264, TraceCsvMatchesFibersAtOneWorker) {
  std::string fibers;
  {
    BackendGuard g(sim::ProcessBackend::kFibers);
    fibers = decode_trace_csv();
  }
  std::string parallel;
  {
    BackendGuard g(sim::ProcessBackend::kParallel, 1);
    parallel = decode_trace_csv();
  }
  EXPECT_EQ(fibers, parallel);
}

// Tier 2: with K workers trace timestamps legitimately diverge from the
// sequential schedule (boundary tokens cross at barriers), but for a fixed
// partition map the whole CSV is byte-identical from run to run.
TEST(ParallelH264, TraceCsvRunToRunDeterministic) {
  for (int workers : {2, 4}) {
    BackendGuard g(sim::ProcessBackend::kParallel, workers);
    std::string first = decode_trace_csv();
    std::string second = decode_trace_csv();
    EXPECT_EQ(first, second) << "workers=" << workers;
  }
}

// --- whence parity ----------------------------------------------------------

/// Runs the decoder to the first stop on `ipf::ipf_out` and returns the
/// `whence` transcript for the newest queued token (the journal-replay
/// provenance query of paper §V).
std::string whence_at_first_ipf_send() {
  JournalGuard::restore();  // fresh token-id sequence: replay-comparable
  auto built = H264App::build(small_decoder());
  EXPECT_TRUE(built.ok()) << built.status().message();
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  EXPECT_TRUE(session.break_on_send("ipf::ipf_out").ok());
  dbg::RunOutcome out = session.run();
  EXPECT_EQ(out.result, sim::RunResult::kStopped);
  const dbg::DLink* dl = session.graph().link_by_iface("ipf::ipf_out");
  EXPECT_NE(dl, nullptr);
  if (dl == nullptr || dl->queue.empty()) return "<no data>";
  return cli::render_or_error(session.whence_chain("ipf::ipf_out", dl->queue.size() - 1, 8));
}

TEST(ParallelH264, WhenceMatchesFibersAtOneWorker) {
  EnabledGuard on(true);
  JournalGuard jg;
  std::string fibers;
  {
    BackendGuard g(sim::ProcessBackend::kFibers);
    fibers = whence_at_first_ipf_send();
  }
  std::string parallel;
  {
    BackendGuard g(sim::ProcessBackend::kParallel, 1);
    parallel = whence_at_first_ipf_send();
  }
  EXPECT_GT(fibers.size(), 0u);
  EXPECT_EQ(fibers, parallel);
}

TEST(ParallelH264, WhenceRunToRunDeterministic) {
  EnabledGuard on(true);
  JournalGuard jg;
  for (int workers : {2, 4}) {
    BackendGuard g(sim::ProcessBackend::kParallel, workers);
    std::string first = whence_at_first_ipf_send();
    std::string second = whence_at_first_ipf_send();
    EXPECT_EQ(first, second) << "workers=" << workers;
    EXPECT_NE(first.find("->"), std::string::npos) << first;
  }
}

// --- cross-partition FIFO ---------------------------------------------------

// Randomized wide graphs: every lane lives in its own partition (explicit
// fixed map), the fan-in merge in another, so every lane's last link is a
// boundary channel. The merge drains lanes round-robin with blocking reads,
// which makes the full sink sequence a closed-form function of the seeds —
// any reordering or loss across a boundary ring breaks the comparison.
TEST(ParallelWide, FifoAcrossPartitionBoundaries) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    for (int workers : {2, 4}) {
      WideGraphConfig cfg;
      cfg.pipelines = 4;
      cfg.stages = 2;
      cfg.tokens = 64;
      cfg.spin = 16;
      cfg.seed = seed;
      cfg.fixed_partitions = true;
      auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
      benchutil::run_wide_world(*w);
      std::vector<std::uint32_t> expected;
      expected.reserve(w->expected_tokens);
      std::vector<std::uint32_t> lane_state(static_cast<std::size_t>(cfg.pipelines));
      for (int p = 0; p < cfg.pipelines; ++p)
        lane_state[static_cast<std::size_t>(p)] = benchutil::wide_payload_seed(cfg, p);
      for (std::size_t j = 0; j < cfg.tokens; ++j) {
        for (int p = 0; p < cfg.pipelines; ++p) {
          std::uint32_t& x = lane_state[static_cast<std::size_t>(p)];
          x = benchutil::wide_next(x);
          std::uint32_t v = x;
          for (int s = 0; s < cfg.stages; ++s) v = benchutil::stage_transform(v, cfg.spin);
          expected.push_back(v);
        }
      }
      const auto& got = w->sink->received();
      ASSERT_EQ(got.size(), expected.size()) << "seed=" << seed << " workers=" << workers;
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(static_cast<std::uint32_t>(got[i].as_u64()), expected[i])
            << "slot " << i << " seed=" << seed << " workers=" << workers;
      EXPECT_EQ(benchutil::sink_checksum(*w), w->expected_checksum);
    }
  }
}

// --- dispatch transcript determinism ----------------------------------------

/// Runs a wide world with the journal recording and returns every journal
/// event (dispatches included) as one transcript string.
std::string wide_journal_transcript(int workers) {
  obs::Journal& j = obs::Journal::global();
  j.set_capacity(1 << 16);
  j.reset();
  WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = 16;
  cfg.spin = 8;
  cfg.fixed_partitions = true;
  auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
  benchutil::run_wide_world(*w);
  std::string out = j.format_last(j.size());
  JournalGuard::restore();
  return out;
}

// The merged journal — worker dispatch records, pushes, pops, in barrier
// merge order — is byte-identical across repeated runs under a fixed
// partition map. This is the transcript `whence` and the PR 6 subscription
// streams replay, so its stability is what makes them usable at K > 1.
TEST(ParallelWide, DispatchTranscriptRunToRunDeterministic) {
  EnabledGuard on(true);
  JournalGuard jg;
  for (int workers : {2, 4}) {
    std::string first = wide_journal_transcript(workers);
    std::string second = wide_journal_transcript(workers);
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second) << "workers=" << workers;
  }
}

// --- catchpoints: stop-the-world --------------------------------------------

// A catchpoint hit on one worker must stop every partition at a consistent
// point: the debugger's views read coherent state, and resuming completes
// the decode bit-exactly.
TEST(ParallelH264, CatchpointStopsAllPartitionsConsistently) {
  EnabledGuard on(true);
  JournalGuard jg;
  BackendGuard g(sim::ProcessBackend::kParallel, 2);
  auto built = H264App::build(small_decoder());
  ASSERT_TRUE(built.ok()) << built.status().message();
  auto& app = **built;
  ASSERT_EQ(app.kernel().backend(), sim::ProcessBackend::kParallel);
  ASSERT_EQ(app.kernel().partition_count(), 2);
  dbg::Session session(app.app());
  session.attach();
  app.start();
  auto bp = session.catch_work("mc");
  ASSERT_TRUE(bp.ok());

  int stops = 0;
  bool armed = true;
  for (;;) {
    dbg::RunOutcome out = session.run();
    if (out.result != sim::RunResult::kStopped) {
      EXPECT_EQ(out.result, sim::RunResult::kFinished);
      break;
    }
    stops++;
    // While stopped, every partition is quiescent: views are coherent.
    auto links = session.links_view();
    std::uint64_t pushes = 0, pops = 0;
    for (const dbg::LinkRow& l : links.links) {
      pushes += l.pushes;
      pops += l.pops;
      EXPECT_LE(l.occupancy, l.high_watermark);
    }
    EXPECT_GE(pushes, pops);
    // The scheduling monitor reports the active backend (satellite of the
    // same PR: `info sched` exposes backend + worker count).
    std::string sched = cli::render_or_error(session.sched_view("pred"));
    EXPECT_NE(sched.find("backend=parallel"), std::string::npos) << sched;
    EXPECT_NE(sched.find("workers=2"), std::string::npos) << sched;
    if (stops > 4 && armed) {  // enough stop/resume cycles; finish undisturbed
      ASSERT_TRUE(session.delete_breakpoint(*bp).ok());
      armed = false;
    }
  }
  EXPECT_GT(stops, 0);
  EXPECT_TRUE(app.decoded_matches_golden());
}

// --- shard time attribution ---------------------------------------------------

/// A small fixed-map wide world run to completion under kParallel.
std::unique_ptr<benchutil::WideWorld> run_attributed_wide(int workers) {
  WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = 64;
  cfg.spin = 256;
  cfg.fixed_partitions = true;
  auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
  benchutil::run_wide_world(*w);
  return w;
}

// The attribution invariant the profiler is built on: per round and per
// worker, work + barrier-wait + drain accounts for the round's wall time
// (the acceptance bar is +-5%; the construction makes it exact up to clock
// granularity). Round ids are strictly monotonic — the stream cursor.
TEST(ShardProfile, BucketsSumToRoundWall) {
  EnabledGuard on(true);
  JournalGuard jg;
  auto w = run_attributed_wide(4);
  const std::deque<sim::BarrierRoundRecord>& recs = w->kernel->round_records();
  ASSERT_FALSE(recs.empty());
  std::uint64_t prev_round = 0;
  for (const sim::BarrierRoundRecord& r : recs) {
    EXPECT_GT(r.round, prev_round);
    prev_round = r.round;
    ASSERT_EQ(r.partitions.size(), 4u);
    EXPECT_GE(r.wall_ns, r.drain_ns);
    const std::uint64_t tol = r.wall_ns / 20 + 1;  // +-5%
    for (const sim::BarrierRoundRecord::PartitionDelta& p : r.partitions) {
      const std::uint64_t sum = p.work_ns + p.wait_ns + r.drain_ns;
      EXPECT_LE(sum, r.wall_ns + tol) << "round " << r.round;
      EXPECT_GE(sum + tol, r.wall_ns) << "round " << r.round;
    }
  }
  // The cumulative totals are the ring summed (nothing evicted at this size),
  // and utilization-relevant buckets are all populated.
  for (int i = 0; i < 4; ++i) {
    sim::Kernel::ShardTotals t = w->kernel->shard_totals(i);
    std::uint64_t work = 0, wait = 0, drain = 0, dispatches = 0;
    for (const sim::BarrierRoundRecord& r : recs) {
      work += r.partitions[static_cast<std::size_t>(i)].work_ns;
      wait += r.partitions[static_cast<std::size_t>(i)].wait_ns;
      drain += r.drain_ns;
      dispatches += r.partitions[static_cast<std::size_t>(i)].dispatches;
    }
    EXPECT_EQ(t.work_ns, work) << "worker " << i;
    EXPECT_EQ(t.barrier_wait_ns, wait) << "worker " << i;
    EXPECT_EQ(t.drain_ns, drain) << "worker " << i;
    EXPECT_EQ(t.dispatches, dispatches) << "worker " << i;
  }
  // The registry mirrors the totals (interned per-worker instruments).
  auto& reg = obs::Registry::global();
  EXPECT_GT(reg.counter("sim.worker.0.work_ns").value(), 0u);
  EXPECT_GT(reg.histogram("sim.barrier.round_wall_ns").count(), 0u);
}

// The zero-cost claim: with obs disabled the profiler takes no clock reads,
// allocates no records, and accumulates nothing.
TEST(ShardProfile, ZeroCostWhenObsDisabled) {
  EnabledGuard off(false);
  auto w = run_attributed_wide(2);
  EXPECT_TRUE(w->kernel->round_records().empty());
  for (int i = 0; i < 2; ++i) {
    sim::Kernel::ShardTotals t = w->kernel->shard_totals(i);
    EXPECT_EQ(t.work_ns, 0u);
    EXPECT_EQ(t.barrier_wait_ns, 0u);
    EXPECT_EQ(t.drain_ns, 0u);
    EXPECT_EQ(t.idle_ns, 0u);
    EXPECT_EQ(t.stalled_rounds, 0u);
  }
}

TEST(ShardProfile, RoundRecordRingEvictsOldestAndCursorReads) {
  EnabledGuard on(true);
  JournalGuard jg;
  WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = 64;
  cfg.spin = 16;
  cfg.fixed_partitions = true;
  auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, 2);
  w->kernel->set_round_record_capacity(2);
  benchutil::run_wide_world(*w);
  const auto& recs = w->kernel->round_records();
  ASSERT_LE(recs.size(), 2u);
  ASSERT_FALSE(recs.empty());
  // Cursor semantics: everything after the newest round is empty; `after`
  // one before the newest returns exactly the newest.
  const std::uint64_t newest = recs.back().round;
  EXPECT_TRUE(w->kernel->round_records_after(newest, 16).empty());
  auto tail = w->kernel->round_records_after(newest - 1, 16);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].round, newest);
  EXPECT_EQ(tail[0].partitions.size(), recs.back().partitions.size());
}

// --- Perfetto shard export ----------------------------------------------------

/// Canonicalizes the shard trace for structure comparison: every ts value
/// (wall-clock measurement) is replaced by "T", everything else — track
/// names, slice nesting, rounds, dispatch counts, stall markers — is kept.
std::string strip_timestamps(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (std::size_t i = 0; i < json.size();) {
    if (json.compare(i, 5, "\"ts\":") == 0) {
      out += "\"ts\":T";
      i += 5;
      while (i < json.size() && (std::isdigit(static_cast<unsigned char>(json[i])) != 0)) i++;
      continue;
    }
    if (json.compare(i, 10, "\"wait_ns\":") == 0) {
      out += "\"wait_ns\":T";
      i += 10;
      while (i < json.size() && (std::isdigit(static_cast<unsigned char>(json[i])) != 0)) i++;
      continue;
    }
    out += json[i++];
  }
  return out;
}

// One named track per worker plus the barrier track, ROUND/BARRIER slices
// balanced per track, and — timestamps stripped — the structure is a pure
// function of the deterministic schedule, byte-identical run to run.
TEST(ShardProfile, PerfettoExportStructureIsDeterministic) {
  EnabledGuard on(true);
  JournalGuard jg;
  auto w1 = run_attributed_wide(4);
  std::string json = trace::export_shard_chrome_trace(*w1->kernel);
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(json.find(strformat("\"name\":\"worker %d\"", i)), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ROUND\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"BARRIER\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"wall-ns\""), std::string::npos);
  // B/E balance per tid.
  std::map<std::string, int> depth;
  std::stringstream ss(json);
  std::string line;
  while (std::getline(ss, line)) {
    auto tid_at = line.find("\"tid\":");
    if (tid_at == std::string::npos) continue;
    std::string tid = line.substr(tid_at + 6, line.find_first_of(",}", tid_at + 6) - tid_at - 6);
    if (line.find("\"ph\":\"B\"") != std::string::npos) depth[tid]++;
    if (line.find("\"ph\":\"E\"") != std::string::npos) {
      depth[tid]--;
      EXPECT_GE(depth[tid], 0) << line;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unbalanced tid " << tid;

  auto w2 = run_attributed_wide(4);
  std::string json2 = trace::export_shard_chrome_trace(*w2->kernel);
  EXPECT_EQ(strip_timestamps(json), strip_timestamps(json2));
}

TEST(ShardProfile, PerfettoExportEmptyRingIsMetadataOnly) {
  EnabledGuard off(false);
  auto w = run_attributed_wide(2);
  std::string json = trace::export_shard_chrome_trace(*w->kernel);
  EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"ROUND\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":0"), std::string::npos);
}

// --- relaxed synchrony: eager drains, elision, sparse wakes -------------------

/// Sums a per-shard counter over every partition of a finished wide world.
template <typename F>
std::uint64_t sum_shards(const benchutil::WideWorld& w, F get) {
  std::uint64_t total = 0;
  for (int i = 0; i < w.kernel->partition_count(); ++i) total += get(w.kernel->shard_totals(i));
  return total;
}

// The relaxed-synchrony fast paths actually fire on the scaling shape: tokens
// cross partitions through eager drains (not just barrier flushes), some
// rounds complete without any coordinator merge, and shards that cannot
// progress skip wakes instead of spinning through empty rounds. These are the
// counters the perf acceptance gate reads, so they must be live — and they
// are maintained unconditionally (scheduling state, not obs measurements).
TEST(RelaxedSync, EagerDrainElisionAndSparseWakesFire) {
  EnabledGuard on(true);
  JournalGuard jg;
  // Latency modeling gives rounds their natural granularity: most rounds are
  // pure local compute between timed wakeups, which is exactly what elision
  // exists for. (Without latencies the whole run collapses into a handful of
  // giant rounds that all carry boundary traffic — nothing to elide.)
  WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = 64;
  cfg.spin = 256;
  cfg.fixed_partitions = true;
  // The registry instruments are process-global and cumulative; snapshot
  // before the run so the checks below compare this run's deltas.
  auto& reg = obs::Registry::global();
  const std::uint64_t elided0 = reg.counter("sim.barrier.elided_rounds").value();
  std::uint64_t m_eager = 0, m_skipped = 0;
  for (int i = 0; i < 4; ++i) {
    m_eager -= reg.counter(strformat("sim.worker.%d.eager_drained", i)).value();
    m_skipped -= reg.counter(strformat("sim.worker.%d.skipped_wakes", i)).value();
  }
  auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, 4);
  w->app->set_model_latencies(true);
  w->kernel->set_round_record_capacity(1 << 15);  // keep every round: exact sums below
  benchutil::run_wide_world(*w);
  const std::uint64_t eager =
      sum_shards(*w, [](const sim::Kernel::ShardTotals& t) { return t.eager_drained; });
  const std::uint64_t skipped =
      sum_shards(*w, [](const sim::Kernel::ShardTotals& t) { return t.skipped_wakes; });
  EXPECT_GT(eager, 0u) << "no token ever crossed a boundary via an eager drain";
  EXPECT_GT(skipped, 0u) << "every shard was woken for every round";
  EXPECT_GT(w->kernel->elided_round_count(), 0u) << "every round paid a full merge";
  // The interned metrics mirror the unconditional totals when obs is on.
  EXPECT_EQ(reg.counter("sim.barrier.elided_rounds").value() - elided0,
            w->kernel->elided_round_count());
  for (int i = 0; i < 4; ++i) {
    m_eager += reg.counter(strformat("sim.worker.%d.eager_drained", i)).value();
    m_skipped += reg.counter(strformat("sim.worker.%d.skipped_wakes", i)).value();
  }
  EXPECT_EQ(m_eager, eager);
  EXPECT_EQ(m_skipped, skipped);
  // Round records carry the new per-round fields: elided rounds appear in the
  // ring (the boundary_hwm probe runs on them too), skipped partitions are
  // flagged with zeroed work, and per-partition eager counts sum to the total.
  const auto& recs = w->kernel->round_records();
  ASSERT_FALSE(recs.empty());
  bool saw_elided = false, saw_skipped = false;
  std::uint64_t rec_eager = 0;
  for (const sim::BarrierRoundRecord& r : recs) {
    saw_elided |= r.elided;
    for (const auto& p : r.partitions) {
      rec_eager += p.eager;
      if (p.skipped) {
        saw_skipped = true;
        EXPECT_EQ(p.work_ns, 0u);
        EXPECT_EQ(p.dispatches, 0u);
        EXPECT_FALSE(p.stalled);
      }
    }
  }
  EXPECT_TRUE(saw_elided);
  EXPECT_TRUE(saw_skipped);
  EXPECT_EQ(rec_eager, eager) << "record ring not evicted at this size";
}

// Relaxing the barriers must not relax correctness: the same checksum and
// ordered sink sequence as the sequential schedule, at higher worker counts
// than the FIFO suite (K=8 oversubscribes this host, the stress case).
TEST(RelaxedSync, DeterministicTranscriptAtK8) {
  EnabledGuard on(true);
  JournalGuard jg;
  std::string first = wide_journal_transcript(8);
  std::string second = wide_journal_transcript(8);
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, second);
}

// --- adaptive partitioner -----------------------------------------------------

/// Builds the skewed wide world (lane p carries 1+p stages) under kParallel.
std::unique_ptr<benchutil::WideWorld> build_skewed(int workers) {
  WideGraphConfig cfg;
  cfg.pipelines = 6;
  cfg.stages = 1;
  cfg.stage_skew = 1;
  cfg.tokens = 32;
  cfg.spin = 16;
  return benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
}

/// The post-start partition of every stage filter, as one map string.
std::string partition_map_string(const benchutil::WideWorld& w) {
  std::string out;
  for (int p = 0; p < w.cfg.pipelines; ++p)
    for (int s = 0; s < benchutil::wide_stages(w.cfg, p); ++s) {
      std::string path = "top.s" + std::to_string(p) + "_" + std::to_string(s);
      const pedf::Actor* a = w.app->actor_by_path(path);
      EXPECT_NE(a, nullptr) << path;
      out += path + "=" + std::to_string(w.app->actor_partition(*a)) + "\n";
    }
  return out;
}

// The adaptive policy is a pure function of (graph, profile, worker count):
// identical runs produce identical maps, the map differs from the skewed
// cluster-modulo default, its profile-weighted max load never exceeds the
// default's, and token order on every link survives the re-placement (the
// ordered sink sequence is the FIFO witness).
TEST(AdaptivePartition, DeterministicBalancedAndOrderPreserving) {
  EnabledGuard on(true);
  JournalGuard jg;
  const int workers = 3;
  // Profiling run under the default cluster-modulo map.
  std::map<std::string, std::uint64_t> profile;
  std::string modulo_map;
  {
    auto w = build_skewed(workers);
    benchutil::run_wide_world(*w);
    profile = w->app->dispatch_profile();
    modulo_map = partition_map_string(*w);
  }
  ASSERT_FALSE(profile.empty());

  auto run_adaptive = [&] {
    auto w = build_skewed(workers);
    w->app->set_partition_policy(pedf::Application::PartitionPolicy::kAdaptive);
    w->app->set_partition_profile(profile);
    benchutil::run_wide_world(*w);
    // Re-placement must not break per-link FIFO: the sink checksum pins
    // every token transformed exactly once, in order, end to end.
    EXPECT_EQ(benchutil::sink_checksum(*w), w->expected_checksum);
    return partition_map_string(*w);
  };
  std::string first = run_adaptive();
  std::string second = run_adaptive();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, modulo_map);

  // Profile-weighted max load: adaptive <= cluster-modulo on this skew.
  auto max_load = [&](const std::string& map) {
    std::vector<std::uint64_t> load(static_cast<std::size_t>(workers), 0);
    std::istringstream in(map);
    std::string line;
    while (std::getline(in, line)) {
      auto eq = line.rfind('=');
      std::string path = line.substr(0, eq);
      int part = std::stoi(line.substr(eq + 1));
      auto it = profile.find(path);
      load[static_cast<std::size_t>(part)] += it != profile.end() ? it->second : 1;
    }
    return *std::max_element(load.begin(), load.end());
  };
  EXPECT_LE(max_load(first), max_load(modulo_map)) << "adaptive map:\n" << first;
}

// Time-weighted adaptive placement: when a wall-time profile is installed it
// takes precedence over activation counts. Activation counts are blind to
// per-fire cost (every stage fires once per token), so a synthetic time
// profile that makes one lane's stages expensive must pull the map away from
// the activation-weighted one — deterministically, and without breaking
// token order.
TEST(AdaptivePartition, TimeProfileOverridesActivationCounts) {
  EnabledGuard on(true);
  JournalGuard jg;
  const int workers = 3;
  std::map<std::string, std::uint64_t> counts;
  {
    auto w = build_skewed(workers);
    benchutil::run_wide_world(*w);
    counts = w->app->dispatch_profile();
    // The profiling run also measures wall time per filter (obs was on):
    // the time profile exists and covers the same placement units.
    std::map<std::string, std::uint64_t> times = w->app->dispatch_time_profile();
    ASSERT_FALSE(times.empty());
    for (const auto& [path, ns] : times) {
      EXPECT_GT(ns, 0u) << path;
      EXPECT_EQ(counts.count(path), 1u) << path;
    }
  }
  // Synthetic skew: lane 0's stages dominate wall time, everything else is
  // cheap. Activation counts say the opposite (lane 0 has the fewest stages).
  std::map<std::string, std::uint64_t> synthetic;
  for (const auto& [path, n] : counts)
    synthetic[path] = path.find("top.s0_") == 0 ? 1000000 : 1;

  auto run_with = [&](const std::map<std::string, std::uint64_t>& time_profile) {
    auto w = build_skewed(workers);
    w->app->set_partition_policy(pedf::Application::PartitionPolicy::kAdaptive);
    w->app->set_partition_profile(counts);
    if (!time_profile.empty()) w->app->set_partition_time_profile(time_profile);
    benchutil::run_wide_world(*w);
    EXPECT_EQ(benchutil::sink_checksum(*w), w->expected_checksum);
    return partition_map_string(*w);
  };
  const std::string by_counts = run_with({});
  const std::string by_time = run_with(synthetic);
  EXPECT_NE(by_time, by_counts) << "time profile was ignored";
  EXPECT_EQ(by_time, run_with(synthetic)) << "time-weighted placement not deterministic";
  // Lane 0 is now the heavy unit: its first stage gets the emptiest bin
  // first under LPT, i.e. it no longer shares a worker by default weighting.
  EXPECT_NE(by_time.find("top.s0_0="), std::string::npos);
}

// An unobserved run measures nothing: the time profile is empty and the
// adaptive policy falls back to activation counts rather than treating
// every unit as zero-cost.
TEST(AdaptivePartition, NoTimeProfileWhenObsDisabled) {
  EnabledGuard off(false);
  auto w = build_skewed(2);
  benchutil::run_wide_world(*w);
  EXPECT_TRUE(w->app->dispatch_time_profile().empty());
  EXPECT_FALSE(w->app->dispatch_profile().empty());
}

// Without a profile (or with one worker) the adaptive policy degrades to the
// cluster-modulo default instead of guessing.
TEST(AdaptivePartition, EmptyProfileFallsBackToClusterModulo) {
  auto w = build_skewed(3);
  w->app->set_partition_policy(pedf::Application::PartitionPolicy::kAdaptive);
  auto base = build_skewed(3);
  benchutil::run_wide_world(*w);
  benchutil::run_wide_world(*base);
  EXPECT_EQ(partition_map_string(*w), partition_map_string(*base));
  EXPECT_EQ(benchutil::sink_checksum(*w), w->expected_checksum);
}

}  // namespace
}  // namespace dfdbg

// Tests of the kParallel process backend: partitioned sub-kernels with
// deterministic barrier sync (docs/KERNEL.md "Parallel backend").
//
// The determinism contract has two tiers, and the suite pins both:
//   * one worker — byte-identical to the sequential fibers backend (same
//     schedule, same trace timestamps, same provenance ids), and
//   * K workers  — per-link token order invariant (the KPN property) and
//     run-to-run byte-identical for a fixed partition map (shard-ranged
//     token ids, per-partition barrier order).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../bench/wide_graph.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg {
namespace {

using benchutil::WideGraphConfig;
using h264::H264App;
using h264::H264AppConfig;

/// Forces a known observability state for one test.
struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(obs::enabled()) { obs::set_enabled(on); }
  ~EnabledGuard() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

/// Restores the global journal to its default shape around a test.
struct JournalGuard {
  JournalGuard() { restore(); }
  ~JournalGuard() { restore(); }

  static void restore() {
    obs::Journal& j = obs::Journal::global();
    j.set_capacity(obs::Journal::kDefaultCapacity);
    j.set_recording(true);
    j.reset();
  }
};

/// Pins the default backend (and, for kParallel, the worker count) for one
/// test, restoring the previous default and environment on exit. H264App
/// builds its own kernel, so the default is the only steering knob.
struct BackendGuard {
  explicit BackendGuard(sim::ProcessBackend b, int workers = 0)
      : saved_(sim::default_process_backend()) {
    const char* prev = std::getenv("DFDBG_PARALLEL_WORKERS");
    if (prev != nullptr) saved_workers_ = prev;
    had_workers_ = prev != nullptr;
    sim::set_default_process_backend(b);
    if (workers > 0)
      ::setenv("DFDBG_PARALLEL_WORKERS", std::to_string(workers).c_str(), 1);
  }
  ~BackendGuard() {
    sim::set_default_process_backend(saved_);
    if (had_workers_)
      ::setenv("DFDBG_PARALLEL_WORKERS", saved_workers_.c_str(), 1);
    else
      ::unsetenv("DFDBG_PARALLEL_WORKERS");
  }

 private:
  sim::ProcessBackend saved_;
  std::string saved_workers_;
  bool had_workers_ = false;
};

H264AppConfig small_decoder() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  cfg.params.qp = 20;
  return cfg;
}

/// Decodes under the current default backend with a TraceCollector attached
/// and returns the sorted trace CSV.
std::string decode_trace_csv() {
  auto built = H264App::build(small_decoder());
  EXPECT_TRUE(built.ok()) << built.status().message();
  auto& app = **built;
  trace::TraceCollector tc(app.app(), 1 << 18);
  tc.attach();
  app.start();
  app.kernel().run();
  EXPECT_TRUE(app.decoded_matches_golden());
  EXPECT_EQ(tc.dropped(), 0u);
  return tc.to_csv();
}

// --- trace parity -----------------------------------------------------------

// Tier 1: with one worker the parallel kernel models everything the
// sequential backends model (including DMA-engine contention), so the full
// decoder trace — timestamps included — is byte-identical to fibers.
TEST(ParallelH264, TraceCsvMatchesFibersAtOneWorker) {
  std::string fibers;
  {
    BackendGuard g(sim::ProcessBackend::kFibers);
    fibers = decode_trace_csv();
  }
  std::string parallel;
  {
    BackendGuard g(sim::ProcessBackend::kParallel, 1);
    parallel = decode_trace_csv();
  }
  EXPECT_EQ(fibers, parallel);
}

// Tier 2: with K workers trace timestamps legitimately diverge from the
// sequential schedule (boundary tokens cross at barriers), but for a fixed
// partition map the whole CSV is byte-identical from run to run.
TEST(ParallelH264, TraceCsvRunToRunDeterministic) {
  for (int workers : {2, 4}) {
    BackendGuard g(sim::ProcessBackend::kParallel, workers);
    std::string first = decode_trace_csv();
    std::string second = decode_trace_csv();
    EXPECT_EQ(first, second) << "workers=" << workers;
  }
}

// --- whence parity ----------------------------------------------------------

/// Runs the decoder to the first stop on `ipf::ipf_out` and returns the
/// `whence` transcript for the newest queued token (the journal-replay
/// provenance query of paper §V).
std::string whence_at_first_ipf_send() {
  JournalGuard::restore();  // fresh token-id sequence: replay-comparable
  auto built = H264App::build(small_decoder());
  EXPECT_TRUE(built.ok()) << built.status().message();
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  EXPECT_TRUE(session.break_on_send("ipf::ipf_out").ok());
  dbg::RunOutcome out = session.run();
  EXPECT_EQ(out.result, sim::RunResult::kStopped);
  const dbg::DLink* dl = session.graph().link_by_iface("ipf::ipf_out");
  EXPECT_NE(dl, nullptr);
  if (dl == nullptr || dl->queue.empty()) return "<no data>";
  return session.whence("ipf::ipf_out", dl->queue.size() - 1, 8);
}

TEST(ParallelH264, WhenceMatchesFibersAtOneWorker) {
  EnabledGuard on(true);
  JournalGuard jg;
  std::string fibers;
  {
    BackendGuard g(sim::ProcessBackend::kFibers);
    fibers = whence_at_first_ipf_send();
  }
  std::string parallel;
  {
    BackendGuard g(sim::ProcessBackend::kParallel, 1);
    parallel = whence_at_first_ipf_send();
  }
  EXPECT_GT(fibers.size(), 0u);
  EXPECT_EQ(fibers, parallel);
}

TEST(ParallelH264, WhenceRunToRunDeterministic) {
  EnabledGuard on(true);
  JournalGuard jg;
  for (int workers : {2, 4}) {
    BackendGuard g(sim::ProcessBackend::kParallel, workers);
    std::string first = whence_at_first_ipf_send();
    std::string second = whence_at_first_ipf_send();
    EXPECT_EQ(first, second) << "workers=" << workers;
    EXPECT_NE(first.find("->"), std::string::npos) << first;
  }
}

// --- cross-partition FIFO ---------------------------------------------------

// Randomized wide graphs: every lane lives in its own partition (explicit
// fixed map), the fan-in merge in another, so every lane's last link is a
// boundary channel. The merge drains lanes round-robin with blocking reads,
// which makes the full sink sequence a closed-form function of the seeds —
// any reordering or loss across a boundary ring breaks the comparison.
TEST(ParallelWide, FifoAcrossPartitionBoundaries) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    for (int workers : {2, 4}) {
      WideGraphConfig cfg;
      cfg.pipelines = 4;
      cfg.stages = 2;
      cfg.tokens = 64;
      cfg.spin = 16;
      cfg.seed = seed;
      cfg.fixed_partitions = true;
      auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
      benchutil::run_wide_world(*w);
      std::vector<std::uint32_t> expected;
      expected.reserve(w->expected_tokens);
      std::vector<std::uint32_t> lane_state(static_cast<std::size_t>(cfg.pipelines));
      for (int p = 0; p < cfg.pipelines; ++p)
        lane_state[static_cast<std::size_t>(p)] = benchutil::wide_payload_seed(cfg, p);
      for (std::size_t j = 0; j < cfg.tokens; ++j) {
        for (int p = 0; p < cfg.pipelines; ++p) {
          std::uint32_t& x = lane_state[static_cast<std::size_t>(p)];
          x = benchutil::wide_next(x);
          std::uint32_t v = x;
          for (int s = 0; s < cfg.stages; ++s) v = benchutil::stage_transform(v, cfg.spin);
          expected.push_back(v);
        }
      }
      const auto& got = w->sink->received();
      ASSERT_EQ(got.size(), expected.size()) << "seed=" << seed << " workers=" << workers;
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(static_cast<std::uint32_t>(got[i].as_u64()), expected[i])
            << "slot " << i << " seed=" << seed << " workers=" << workers;
      EXPECT_EQ(benchutil::sink_checksum(*w), w->expected_checksum);
    }
  }
}

// --- dispatch transcript determinism ----------------------------------------

/// Runs a wide world with the journal recording and returns every journal
/// event (dispatches included) as one transcript string.
std::string wide_journal_transcript(int workers) {
  obs::Journal& j = obs::Journal::global();
  j.set_capacity(1 << 16);
  j.reset();
  WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = 16;
  cfg.spin = 8;
  cfg.fixed_partitions = true;
  auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
  benchutil::run_wide_world(*w);
  std::string out = j.format_last(j.size());
  JournalGuard::restore();
  return out;
}

// The merged journal — worker dispatch records, pushes, pops, in barrier
// merge order — is byte-identical across repeated runs under a fixed
// partition map. This is the transcript `whence` and the PR 6 subscription
// streams replay, so its stability is what makes them usable at K > 1.
TEST(ParallelWide, DispatchTranscriptRunToRunDeterministic) {
  EnabledGuard on(true);
  JournalGuard jg;
  for (int workers : {2, 4}) {
    std::string first = wide_journal_transcript(workers);
    std::string second = wide_journal_transcript(workers);
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second) << "workers=" << workers;
  }
}

// --- catchpoints: stop-the-world --------------------------------------------

// A catchpoint hit on one worker must stop every partition at a consistent
// point: the debugger's views read coherent state, and resuming completes
// the decode bit-exactly.
TEST(ParallelH264, CatchpointStopsAllPartitionsConsistently) {
  EnabledGuard on(true);
  JournalGuard jg;
  BackendGuard g(sim::ProcessBackend::kParallel, 2);
  auto built = H264App::build(small_decoder());
  ASSERT_TRUE(built.ok()) << built.status().message();
  auto& app = **built;
  ASSERT_EQ(app.kernel().backend(), sim::ProcessBackend::kParallel);
  ASSERT_EQ(app.kernel().partition_count(), 2);
  dbg::Session session(app.app());
  session.attach();
  app.start();
  auto bp = session.catch_work("mc");
  ASSERT_TRUE(bp.ok());

  int stops = 0;
  bool armed = true;
  for (;;) {
    dbg::RunOutcome out = session.run();
    if (out.result != sim::RunResult::kStopped) {
      EXPECT_EQ(out.result, sim::RunResult::kFinished);
      break;
    }
    stops++;
    // While stopped, every partition is quiescent: views are coherent.
    auto links = session.links_view();
    std::uint64_t pushes = 0, pops = 0;
    for (const dbg::LinkRow& l : links.links) {
      pushes += l.pushes;
      pops += l.pops;
      EXPECT_LE(l.occupancy, l.high_watermark);
    }
    EXPECT_GE(pushes, pops);
    // The scheduling monitor reports the active backend (satellite of the
    // same PR: `info sched` exposes backend + worker count).
    std::string sched = session.info_sched("pred");
    EXPECT_NE(sched.find("backend=parallel"), std::string::npos) << sched;
    EXPECT_NE(sched.find("workers=2"), std::string::npos) << sched;
    if (stops > 4 && armed) {  // enough stop/resume cycles; finish undisturbed
      ASSERT_TRUE(session.delete_breakpoint(*bp).ok());
      armed = false;
    }
  }
  EXPECT_GT(stops, 0);
  EXPECT_TRUE(app.decoded_matches_golden());
}

}  // namespace
}  // namespace dfdbg

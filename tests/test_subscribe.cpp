// Tests of the server push-subscription layer (docs/PROTOCOL.md
// "Subscriptions"): notification framing, per-stream NDJSON schemas pinned
// as a golden file, journal-cursor gap reporting when the ring laps a slow
// reader, the slow-consumer policy (a stalled subscriber never blocks the
// loop or other clients), unsubscribe + clean disconnect mid-stream, and
// the run.event-before-run-response ordering guarantee.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "dfdbg/common/json.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/server/protocol.hpp"
#include "dfdbg/server/server.hpp"

namespace dfdbg::server {
namespace {

using h264::H264App;
using h264::H264AppConfig;

H264AppConfig small_config() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  return cfg;
}

/// In-process rig (handle_frame only — no socket, so no subscriptions).
struct Rig {
  std::unique_ptr<H264App> app;
  std::unique_ptr<dbg::Session> session;
  std::unique_ptr<DebugServer> server;

  explicit Rig(ServerConfig scfg = {}, H264AppConfig cfg = small_config()) {
    auto built = H264App::build(cfg);
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<dbg::Session>(app->app());
    session->attach();
    app->start();
    server = std::make_unique<DebugServer>(*session, scfg);
  }
};

/// Blocking line client with an optional receive timeout.
struct TestClient {
  int fd = -1;
  std::string spill;

  ~TestClient() {
    if (fd >= 0) close(fd);
  }

  bool connect_tcp(int port) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  void set_timeout_ms(int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  bool send_line(const std::string& frame) {
    std::string wire = frame + "\n";
    std::size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one frame; "" on EOF, error or timeout.
  std::string read_line() {
    for (;;) {
      std::size_t nl = spill.find('\n');
      if (nl != std::string::npos) {
        std::string line = spill.substr(0, nl);
        spill.erase(0, nl + 1);
        return line;
      }
      char buf[65536];
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return "";
      spill.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Sends a request and reads frames until its response (id match, crude
  /// string form), collecting notifications seen on the way.
  std::string request(const std::string& frame, std::vector<std::string>* notifications = nullptr) {
    if (!send_line(frame)) return "";
    for (;;) {
      std::string line = read_line();
      if (line.empty()) return "";
      auto doc = JsonValue::parse(line);
      if (doc.ok() && doc->is_object() && doc->find("id") == nullptr) {
        if (notifications != nullptr) notifications->push_back(line);
        continue;
      }
      return line;
    }
  }
};

/// Full rig + poll-loop server on a dedicated thread.
struct ServerThread {
  std::thread thread;
  DebugServer* server = nullptr;
  int port = 0;

  explicit ServerThread(std::function<void(dbg::Session&)> setup = nullptr,
                        ServerConfig scfg = {}) {
    std::promise<int> ready;
    thread = std::thread([this, setup = std::move(setup), scfg, &ready] {
      Rig rig(scfg);
      if (setup) setup(*rig.session);
      auto p = rig.server->listen_tcp();
      EXPECT_TRUE(p.ok()) << p.status().message();
      if (!p.ok()) {
        ready.set_value(0);
        return;
      }
      server = rig.server.get();
      ready.set_value(*p);
      EXPECT_TRUE(rig.server->serve().ok());
    });
    port = ready.get_future().get();
    EXPECT_NE(port, 0);
  }

  ~ServerThread() {
    if (thread.joinable()) {
      server->request_shutdown();
      thread.join();
    }
  }
};

/// Every push frame must be a JSON-RPC notification: jsonrpc 2.0, a stream
/// method, a params object, and no id.
void check_notification_framing(const std::string& frame) {
  auto doc = JsonValue::parse(frame);
  ASSERT_TRUE(doc.ok()) << frame;
  ASSERT_TRUE(doc->is_object()) << frame;
  EXPECT_EQ(doc->str_or("jsonrpc"), "2.0") << frame;
  EXPECT_EQ(doc->find("id"), nullptr) << frame;
  std::string method = doc->str_or("method");
  EXPECT_TRUE(method == "journal.delta" || method == "flow.snapshot" ||
              method == "stats.delta" || method == "run.event" ||
              method == "shard.rounds")
      << method;
  const JsonValue* params = doc->find("params");
  ASSERT_NE(params, nullptr) << frame;
  EXPECT_TRUE(params->is_object()) << frame;
}

// --- subscribe verb basics ---------------------------------------------------

TEST(Subscribe, RequiresSocketConnection) {
  Rig rig;
  std::string resp = rig.server->handle_frame(
      R"({"id":1,"method":"subscribe","params":{"stream":"journal"}})");
  EXPECT_NE(resp.find("\"error\""), std::string::npos) << resp;
  EXPECT_NE(resp.find("socket"), std::string::npos) << resp;
}

TEST(Subscribe, UnknownStreamRejected) {
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  std::string resp =
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"bogus"}})");
  EXPECT_NE(resp.find("unknown stream"), std::string::npos) << resp;
  // The connection survives the error.
  resp = tc.request(R"({"id":2,"method":"ping"})");
  EXPECT_NE(resp.find("\"pong\":true"), std::string::npos) << resp;
}

TEST(Subscribe, JournalAckCarriesCursor) {
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  std::string resp =
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"journal"}})");
  auto doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok());
  const JsonValue* result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  EXPECT_EQ(result->str_or("stream"), "journal");
  EXPECT_NE(result->find("cursor"), nullptr) << resp;
}

// --- journal stream: deltas, cursors, gaps -----------------------------------

TEST(Subscribe, JournalDeltasStreamDuringRun) {
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(20000);
  ASSERT_FALSE(
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"journal"}})").empty());

  // One full decode; deltas arrive with zero further requests from us.
  std::vector<std::string> notifications;
  std::string run_resp = tc.request(R"({"id":2,"method":"run"})", &notifications);
  ASSERT_FALSE(run_resp.empty());

  // Keep draining until the journal stream goes quiet.
  tc.set_timeout_ms(300);
  for (;;) {
    std::string line = tc.read_line();
    if (line.empty()) break;
    notifications.push_back(line);
  }

  std::uint64_t events = 0;
  std::uint64_t expected_cursor = 0;
  bool have_cursor = false;
  for (const std::string& n : notifications) {
    check_notification_framing(n);
    auto doc = JsonValue::parse(n);
    ASSERT_TRUE(doc.ok());
    if (doc->str_or("method") != "journal.delta") continue;
    const JsonValue* p = doc->find("params");
    ASSERT_NE(p->find("from"), nullptr) << n;
    ASSERT_NE(p->find("next"), nullptr) << n;
    ASSERT_NE(p->find("gap"), nullptr) << n;
    const JsonValue* evs = p->find("events");
    ASSERT_NE(evs, nullptr) << n;
    ASSERT_TRUE(evs->is_array());
    events += evs->size();
    // Deltas are contiguous: each resumes where the previous ended.
    if (have_cursor) {
      EXPECT_EQ(p->u64_or("from", 0), expected_cursor);
    }
    expected_cursor = p->u64_or("next", 0);
    have_cursor = true;
    EXPECT_EQ(p->u64_or("next", 0), p->u64_or("from", 0) + p->u64_or("gap", 0) + evs->size());
    for (std::size_t i = 0; i < evs->size(); ++i) {
      const JsonValue& ev = evs->at(i);
      EXPECT_NE(ev.find("t"), nullptr);
      EXPECT_NE(ev.find("kind"), nullptr);
      EXPECT_NE(ev.find("index"), nullptr);
    }
  }
  EXPECT_GT(events, 100u) << "a full decode should stream its journal";
}

TEST(Subscribe, RingWrapReportsGapAndCountsDrops) {
  // A tiny ring under a full decode laps any subscriber cursor.
  ServerThread st([](dbg::Session&) { obs::Journal::global().set_capacity(64); });
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(20000);
  ASSERT_FALSE(
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"journal"}})").empty());

  std::vector<std::string> notifications;
  ASSERT_FALSE(tc.request(R"({"id":2,"method":"run"})", &notifications).empty());
  tc.set_timeout_ms(300);
  for (;;) {
    std::string line = tc.read_line();
    if (line.empty()) break;
    notifications.push_back(line);
  }

  std::uint64_t gap_total = 0;
  for (const std::string& n : notifications) {
    auto doc = JsonValue::parse(n);
    ASSERT_TRUE(doc.ok());
    if (doc->str_or("method") != "journal.delta") continue;
    gap_total += doc->find("params")->u64_or("gap", 0);
  }
  EXPECT_GT(gap_total, 0u) << "a 64-event ring must lap the paused cursor";

  // The loss is accounted: server.sub.dropped counts every lapped event.
  tc.set_timeout_ms(20000);
  std::string stats = tc.request(R"({"id":3,"method":"info_stats"})");
  auto doc = JsonValue::parse(stats);
  ASSERT_TRUE(doc.ok()) << stats;
  const JsonValue* counters = doc->find("result")->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* dropped = counters->find("server.sub.dropped");
  ASSERT_NE(dropped, nullptr) << stats;
  // >= because the registry is process-global and other tests may have
  // contributed drops of their own; every gap we saw must be accounted for.
  EXPECT_GE(dropped->as_u64(), gap_total);
}

// --- periodic streams --------------------------------------------------------

TEST(Subscribe, FlowAndStatsSnapshotsTick) {
  ServerConfig scfg;
  scfg.tick_ms = 10;
  ServerThread st(nullptr, scfg);
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(5000);
  ASSERT_FALSE(
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"info_flow"}})").empty());
  ASSERT_FALSE(
      tc.request(R"({"id":2,"method":"subscribe","params":{"stream":"stats"}})").empty());

  int flow_seen = 0;
  bool stats_seen = false;
  for (int i = 0; i < 200 && (flow_seen < 3 || !stats_seen); ++i) {
    std::string line = tc.read_line();
    ASSERT_FALSE(line.empty()) << "stream went quiet";
    check_notification_framing(line);
    auto doc = JsonValue::parse(line);
    ASSERT_TRUE(doc.ok());
    std::string method = doc->str_or("method");
    const JsonValue* p = doc->find("params");
    if (method == "flow.snapshot") {
      flow_seen++;
      const JsonValue* links = p->find("links");
      ASSERT_NE(links, nullptr);
      ASSERT_GT(links->size(), 0u) << "H.264 app has links";
      const JsonValue& row = links->at(0);
      EXPECT_NE(row.find("name"), nullptr);
      EXPECT_NE(row.find("occupancy"), nullptr);
      EXPECT_NE(row.find("d_pushes"), nullptr);
      EXPECT_NE(row.find("d_pops"), nullptr);
      ASSERT_NE(p->find("filters"), nullptr);
    } else if (method == "stats.delta") {
      stats_seen = true;
      // Only-changed-keys contract: the first delta carries the registry,
      // and every entry sits under one of the three instrument maps.
      EXPECT_NE(p->find("counters"), nullptr);
      EXPECT_NE(p->find("gauges"), nullptr);
      EXPECT_NE(p->find("histograms"), nullptr);
    }
  }
  EXPECT_GE(flow_seen, 3);
  EXPECT_TRUE(stats_seen);
}

// --- run_events --------------------------------------------------------------

TEST(Subscribe, RunEventPrecedesRunResponse) {
  ServerThread st([](dbg::Session& s) { ASSERT_TRUE(s.catch_work("pipe").ok()); });
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(20000);
  ASSERT_FALSE(
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"run_events"}})").empty());

  // Raw frame order matters here: the stop notification must hit the wire
  // before the run response that reports the same stop.
  ASSERT_TRUE(tc.send_line(R"({"id":2,"method":"run"})"));
  std::string first = tc.read_line();
  std::string second = tc.read_line();
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  auto ev = JsonValue::parse(first);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->str_or("method"), "run.event") << first;
  const JsonValue* p = ev->find("params");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->str_or("kind"), "catch-work") << first;
  EXPECT_FALSE(p->str_or("actor").empty()) << first;
  auto resp = JsonValue::parse(second);
  ASSERT_TRUE(resp.ok());
  ASSERT_NE(resp->find("id"), nullptr) << second;
  EXPECT_EQ(resp->find("id")->as_i64(), 2);
  EXPECT_NE(resp->find("result"), nullptr) << second;
}

// --- slow consumers ----------------------------------------------------------

TEST(Subscribe, SlowConsumerNeverBlocksOtherClients) {
  ServerConfig scfg;
  scfg.max_outbound_bytes = 4096;  // stall quickly
  ServerThread st(nullptr, scfg);

  TestClient slow;
  ASSERT_TRUE(slow.connect_tcp(st.port));
  slow.set_timeout_ms(20000);
  ASSERT_FALSE(
      slow.request(R"({"id":1,"method":"subscribe","params":{"stream":"journal"}})").empty());

  // A second client drives a full decode and keeps round-tripping while the
  // first never reads its stream.
  TestClient active;
  ASSERT_TRUE(active.connect_tcp(st.port));
  active.set_timeout_ms(30000);
  ASSERT_FALSE(active.request(R"({"id":1,"method":"run"})").empty());
  for (int i = 0; i < 20; ++i) {
    std::string resp = active.request(R"({"id":2,"method":"ping"})");
    ASSERT_NE(resp.find("\"pong\":true"), std::string::npos) << "round " << i;
  }

  // The stalled subscriber's stream is intact once it finally drains:
  // contiguous deltas, any loss declared as gaps.
  std::uint64_t events = 0;
  std::uint64_t gaps = 0;
  slow.set_timeout_ms(1000);
  for (;;) {
    std::string line = slow.read_line();
    if (line.empty()) break;
    auto doc = JsonValue::parse(line);
    ASSERT_TRUE(doc.ok());
    if (doc->str_or("method") != "journal.delta") continue;
    const JsonValue* p = doc->find("params");
    events += p->find("events")->size();
    gaps += p->u64_or("gap", 0);
  }
  EXPECT_GT(events + gaps, 0u) << "the subscriber was owed the decode's journal";
}

// --- unsubscribe + disconnect ------------------------------------------------

TEST(Subscribe, UnsubscribeMidStreamThenCleanDisconnect) {
  ServerConfig scfg;
  scfg.tick_ms = 10;
  ServerThread st(nullptr, scfg);
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(5000);
  ASSERT_FALSE(
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"info_flow"}})").empty());
  ASSERT_FALSE(
      tc.request(R"({"id":2,"method":"subscribe","params":{"stream":"journal"}})").empty());

  // Live stream confirmed...
  std::string line = tc.read_line();
  ASSERT_FALSE(line.empty());
  check_notification_framing(line);

  // ...then unsubscribe everything mid-stream.
  std::string resp = tc.request(R"({"id":3,"method":"unsubscribe"})");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;

  // Drain stragglers enqueued before the unsubscribe landed; then silence.
  tc.set_timeout_ms(150);
  int quiet_rounds = 0;
  for (int i = 0; i < 50 && quiet_rounds < 2; ++i) {
    if (tc.read_line().empty())
      quiet_rounds++;
    else
      quiet_rounds = 0;
  }
  EXPECT_GE(quiet_rounds, 2) << "notifications kept flowing after unsubscribe";

  // Clean disconnect mid-session; the server must stay healthy for others.
  close(tc.fd);
  tc.fd = -1;
  TestClient after;
  ASSERT_TRUE(after.connect_tcp(st.port));
  after.set_timeout_ms(5000);
  std::string pong = after.request(R"({"id":1,"method":"ping"})");
  EXPECT_NE(pong.find("\"pong\":true"), std::string::npos) << pong;
}

// --- percentile reporting (satellite) ----------------------------------------

TEST(ServerStats, HistogramsCarryPercentiles) {
  Rig rig;
  // Produce some latency observations, then read both spellings.
  rig.server->handle_frame(R"({"id":1,"method":"ping"})");
  rig.server->handle_frame(R"({"id":2,"method":"info_links"})");
  for (const char* verb : {"stats", "info_stats"}) {
    std::string frame = std::string(R"({"id":3,"method":")") + verb + R"("})";
    std::string resp = rig.server->handle_frame(frame);
    auto doc = JsonValue::parse(resp);
    ASSERT_TRUE(doc.ok()) << resp;
    const JsonValue* hists = doc->find("result")->find("histograms");
    ASSERT_NE(hists, nullptr) << resp;
    const JsonValue* req_ns = hists->find("server.request_ns");
    ASSERT_NE(req_ns, nullptr) << "server.request_ns histogram missing";
    for (const char* k : {"count", "sum", "min", "max", "p50", "p90", "p99"})
      EXPECT_NE(req_ns->find(k), nullptr) << k;
    EXPECT_GE(req_ns->u64_or("p90", 0), req_ns->u64_or("p50", 1)) << resp;
  }
}

// --- golden NDJSON schemas ---------------------------------------------------

/// Structural schema of a set of same-shaped JSON values: scalars become
/// type tags, objects merge keys across every sample (keys missing from
/// some samples are marked "?"), arrays merge all their elements into one
/// canonical element. Values and counts are erased, so the result is
/// byte-stable across runs and backends while still pinning the shape.
std::string schema_of(const std::vector<const JsonValue*>& vs) {
  if (vs.empty()) return "?";
  std::set<std::string> tags;
  bool objects = true;
  bool arrays = true;
  for (const JsonValue* v : vs) {
    switch (v->kind()) {
      case JsonValue::Kind::kNull: tags.insert("null"); break;
      case JsonValue::Kind::kBool: tags.insert("bool"); break;
      case JsonValue::Kind::kNumber: tags.insert("num"); break;
      case JsonValue::Kind::kString: tags.insert("str"); break;
      case JsonValue::Kind::kArray: tags.insert("array"); break;
      case JsonValue::Kind::kObject: tags.insert("object"); break;
    }
    objects = objects && v->is_object();
    arrays = arrays && v->is_array();
  }
  if (objects) {
    std::map<std::string, std::vector<const JsonValue*>> members;
    for (const JsonValue* v : vs)
      for (std::size_t i = 0; i < v->size(); ++i) members[v->key_at(i)].push_back(&v->at(i));
    std::string out = "{";
    bool first = true;
    for (const auto& [key, subs] : members) {
      if (!first) out += ",";
      first = false;
      out += key;
      if (subs.size() != vs.size()) out += "?";  // optional member
      out += ":" + schema_of(subs);
    }
    return out + "}";
  }
  if (arrays) {
    std::vector<const JsonValue*> elems;
    for (const JsonValue* v : vs)
      for (std::size_t i = 0; i < v->size(); ++i) elems.push_back(&v->at(i));
    return "[" + (elems.empty() ? std::string() : schema_of(elems)) + "]";
  }
  std::string out;
  for (const std::string& t : tags) out += (out.empty() ? "" : "|") + t;
  return out;
}

/// stats.delta keys are metric names (dynamic); fold each instrument map
/// into a single "*" member before schema extraction.
JsonValue wildcard_stats(const JsonValue& params) {
  JsonWriter w;
  w.begin_object();
  for (const char* map_key : {"counters", "gauges", "histograms"}) {
    // All entries of one map share a schema; keep them all under one "*"
    // array so schema_of merges across every instrument. The "*" member is
    // emitted even for empty maps so which-map-changed-this-tick timing
    // cannot perturb the golden schema.
    w.key(map_key).begin_object().key("*").begin_array();
    const JsonValue* m = params.find(map_key);
    if (m != nullptr && m->is_object())
      for (std::size_t i = 0; i < m->size(); ++i) w.raw(m->at(i).dump());
    w.end_array().end_object();
  }
  w.end_object();
  auto parsed = JsonValue::parse(w.take());
  EXPECT_TRUE(parsed.ok());
  return parsed.ok() ? *parsed : JsonValue{};
}

TEST(Subscribe, GoldenStreamSchemas) {
  ServerConfig scfg;
  scfg.tick_ms = 10;
  ServerThread st([](dbg::Session& s) { ASSERT_TRUE(s.catch_work("pipe").ok()); }, scfg);
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(20000);
  for (const char* stream : {"journal", "info_flow", "stats", "run_events"}) {
    std::string req = std::string(R"({"id":1,"method":"subscribe","params":{"stream":")") +
                      stream + R"("}})";
    ASSERT_FALSE(tc.request(req).empty());
  }

  // Run to the catchpoint, then to completion: the notification set then
  // covers every stream and every journal event kind.
  std::vector<std::string> notifications;
  ASSERT_FALSE(tc.request(R"({"id":2,"method":"run"})", &notifications).empty());
  ASSERT_FALSE(tc.request(R"({"id":3,"method":"run"})", &notifications).empty());
  // Periodic streams only tick while the server is idle in poll(); wait for
  // at least one flow.snapshot and one stats.delta before tearing down.
  bool flow_seen = false;
  bool stats_seen = false;
  for (int i = 0; i < 400 && !(flow_seen && stats_seen); ++i) {
    std::string line = tc.read_line();
    ASSERT_FALSE(line.empty()) << "periodic streams went quiet";
    notifications.push_back(line);
    auto doc = JsonValue::parse(line);
    ASSERT_TRUE(doc.ok());
    flow_seen = flow_seen || doc->str_or("method") == "flow.snapshot";
    stats_seen = stats_seen || doc->str_or("method") == "stats.delta";
  }
  // The periodic streams tick forever; unsubscribe everything, then drain
  // the stragglers until the connection goes quiet.
  ASSERT_FALSE(tc.request(R"({"id":4,"method":"unsubscribe"})", &notifications).empty());
  tc.set_timeout_ms(300);
  for (;;) {
    std::string line = tc.read_line();
    if (line.empty()) break;
    notifications.push_back(line);
  }

  // Bucket params by method; every frame must satisfy notification framing.
  std::map<std::string, std::vector<JsonValue>> params;
  std::vector<JsonValue> stats_wildcarded;
  for (const std::string& n : notifications) {
    check_notification_framing(n);
    auto doc = JsonValue::parse(n);
    ASSERT_TRUE(doc.ok());
    std::string method = doc->str_or("method");
    if (method == "stats.delta")
      stats_wildcarded.push_back(wildcard_stats(*doc->find("params")));
    else
      params[method].push_back(*doc->find("params"));
  }
  ASSERT_FALSE(params["journal.delta"].empty());
  ASSERT_FALSE(params["flow.snapshot"].empty());
  ASSERT_FALSE(params["run.event"].empty());
  ASSERT_FALSE(stats_wildcarded.empty());

  auto ptrs = [](const std::vector<JsonValue>& vs) {
    std::vector<const JsonValue*> out;
    out.reserve(vs.size());
    for (const JsonValue& v : vs) out.push_back(&v);
    return out;
  };
  std::string schema;
  schema += "journal.delta " + schema_of(ptrs(params["journal.delta"])) + "\n";
  schema += "flow.snapshot " + schema_of(ptrs(params["flow.snapshot"])) + "\n";
  schema += "stats.delta " + schema_of(ptrs(stats_wildcarded)) + "\n";
  schema += "run.event " + schema_of(ptrs(params["run.event"])) + "\n";

  std::string golden_path = std::string(DFDBG_SOURCE_DIR) + "/tests/golden/subscribe_schema.txt";
  if (std::getenv("DFDBG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << schema;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with DFDBG_REGEN_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(schema, buf.str())
      << "stream schema diverged from tests/golden/subscribe_schema.txt; if "
         "intentional, regenerate with DFDBG_REGEN_GOLDEN=1 and update docs/PROTOCOL.md";
}

// --- shard_rounds stream -----------------------------------------------------

/// Pins the process backend (and worker count) for one test, mirroring the
/// FibersBackendGuard in test_server.cpp. The shard_rounds stream only
/// carries data under the parallel backend, so its golden is generated with
/// the backend forced — the test passes identically under any
/// DFDBG_PROCESS_BACKEND sweep value.
struct BackendGuard {
  explicit BackendGuard(sim::ProcessBackend b, int workers = 0)
      : saved_(sim::default_process_backend()) {
    const char* prev = std::getenv("DFDBG_PARALLEL_WORKERS");
    if (prev != nullptr) saved_workers_ = prev;
    had_workers_ = prev != nullptr;
    sim::set_default_process_backend(b);
    if (workers > 0)
      ::setenv("DFDBG_PARALLEL_WORKERS", std::to_string(workers).c_str(), 1);
  }
  ~BackendGuard() {
    sim::set_default_process_backend(saved_);
    if (had_workers_)
      ::setenv("DFDBG_PARALLEL_WORKERS", saved_workers_.c_str(), 1);
    else
      ::unsetenv("DFDBG_PARALLEL_WORKERS");
  }

 private:
  sim::ProcessBackend saved_;
  std::string saved_workers_;
  bool had_workers_ = false;
};

TEST(Subscribe, ShardRoundsQuietOnFibersBackend) {
  BackendGuard guard(sim::ProcessBackend::kFibers);
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(20000);
  // Subscribing is always accepted — the stream is just empty off-parallel.
  std::string resp =
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"shard_rounds"}})");
  auto doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok()) << resp;
  const JsonValue* result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  EXPECT_EQ(result->str_or("stream"), "shard_rounds");
  EXPECT_NE(result->find("cursor"), nullptr) << resp;

  std::vector<std::string> notifications;
  ASSERT_FALSE(tc.request(R"({"id":2,"method":"run"})", &notifications).empty());
  tc.set_timeout_ms(300);
  for (;;) {
    std::string line = tc.read_line();
    if (line.empty()) break;
    notifications.push_back(line);
  }
  for (const std::string& n : notifications) {
    auto d = JsonValue::parse(n);
    ASSERT_TRUE(d.ok());
    EXPECT_NE(d->str_or("method"), "shard.rounds")
        << "fibers backend has no barrier rounds: " << n;
  }
}

TEST(Subscribe, ShardRoundsSchemaGoldenOnParallelBackend) {
  BackendGuard guard(sim::ProcessBackend::kParallel, 2);
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  tc.set_timeout_ms(30000);
  ASSERT_FALSE(
      tc.request(R"({"id":1,"method":"subscribe","params":{"stream":"shard_rounds"}})")
          .empty());

  std::vector<std::string> notifications;
  ASSERT_FALSE(tc.request(R"({"id":2,"method":"run"})", &notifications).empty());
  tc.set_timeout_ms(500);
  for (;;) {
    std::string line = tc.read_line();
    if (line.empty()) break;
    notifications.push_back(line);
  }

  std::vector<JsonValue> rounds_params;
  std::uint64_t last_round = 0;
  std::uint64_t total_rounds = 0;
  for (const std::string& n : notifications) {
    check_notification_framing(n);
    auto doc = JsonValue::parse(n);
    ASSERT_TRUE(doc.ok());
    if (doc->str_or("method") != "shard.rounds") continue;
    const JsonValue* p = doc->find("params");
    ASSERT_NE(p, nullptr) << n;
    const JsonValue* rounds = p->find("rounds");
    ASSERT_NE(rounds, nullptr) << n;
    for (std::size_t i = 0; i < rounds->size(); ++i) {
      const JsonValue& r = rounds->at(i);
      // Round ids are the stream cursor: strictly increasing across batches.
      EXPECT_GT(r.u64_or("round", 0), last_round) << n;
      last_round = r.u64_or("round", 0);
      const JsonValue* parts = r.find("partitions");
      ASSERT_NE(parts, nullptr) << n;
      EXPECT_EQ(parts->size(), 2u) << "one entry per worker: " << n;
      ++total_rounds;
    }
    rounds_params.push_back(*p);
  }
  ASSERT_GT(total_rounds, 0u) << "a parallel decode must stream barrier rounds";

  std::vector<const JsonValue*> ptrs;
  ptrs.reserve(rounds_params.size());
  for (const JsonValue& v : rounds_params) ptrs.push_back(&v);
  std::string schema = "shard.rounds " + schema_of(ptrs) + "\n";

  std::string golden_path =
      std::string(DFDBG_SOURCE_DIR) + "/tests/golden/subscribe_shards_schema.txt";
  if (std::getenv("DFDBG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << schema;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with DFDBG_REGEN_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(schema, buf.str())
      << "shard.rounds schema diverged from tests/golden/subscribe_shards_schema.txt; "
         "if intentional, regenerate with DFDBG_REGEN_GOLDEN=1 and update docs/PROTOCOL.md";
}

}  // namespace
}  // namespace dfdbg::server

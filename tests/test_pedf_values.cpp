// Tests of PEDF token values, types and the raw link container.
#include <gtest/gtest.h>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/pedf/value.hpp"

namespace dfdbg::pedf {
namespace {

TEST(Value, ScalarConstruction) {
  EXPECT_EQ(Value::u8(0xAB).as_u64(), 0xABu);
  EXPECT_EQ(Value::u16(0xABCD).as_u64(), 0xABCDu);
  EXPECT_EQ(Value::u32(0xDEADBEEF).as_u64(), 0xDEADBEEFu);
  EXPECT_EQ(Value::i32(-5).as_i64(), -5);
  EXPECT_FLOAT_EQ(Value::f32(1.5f).as_f32(), 1.5f);
}

TEST(Value, ScalarTruncation) {
  Value v = Value::u8(0);
  v.set_scalar_u64(0x1FF);
  EXPECT_EQ(v.as_u64(), 0xFFu);
  Value w = Value::u16(0);
  w.set_scalar_u64(0x12345);
  EXPECT_EQ(w.as_u64(), 0x2345u);
}

TEST(Value, ToStringScalar) {
  EXPECT_EQ(Value::u16(5).to_string(), "(U16) 5");
  EXPECT_EQ(Value::u32(127).to_string(), "(U32) 127");
  EXPECT_EQ(Value::i32(-3).to_string(), "(I32) -3");
}

TEST(Value, StructFields) {
  TypeRegistry reg;
  const StructType* st = reg.define_struct(
      "CbCrMB_t", {{"Addr", ScalarType::kU32, /*hex=*/true},
                   {"InterNotIntra", ScalarType::kU32, false},
                   {"Izz", ScalarType::kU32, false}});
  Value v = Value::make_struct(st);
  v.set_field("Addr", 0x145D);
  v.set_field("InterNotIntra", 1);
  v.set_field("Izz", 168460492);
  EXPECT_EQ(v.field_u64("Addr"), 0x145Du);
  EXPECT_EQ(v.field_u64_at(2), 168460492u);
  // Matches the paper's print format.
  EXPECT_EQ(v.to_string(), "(CbCrMB_t){Addr=0x145D, InterNotIntra=1, Izz=168460492}");
}

TEST(Value, Equality) {
  TypeRegistry reg;
  const StructType* st = reg.define_struct("S", {{"a", ScalarType::kU32, false}});
  Value a = Value::make_struct(st), b = Value::make_struct(st);
  EXPECT_EQ(a, b);
  b.set_field("a", 1);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(Value::u32(7), Value::u32(7));
  EXPECT_FALSE(Value::u32(7) == Value::u16(7));  // type matters
}

TEST(Value, ZeroOf) {
  TypeRegistry reg;
  const StructType* st = reg.define_struct("S", {{"a", ScalarType::kU32, false}});
  Value z = Value::zero_of(TypeDesc(st));
  EXPECT_EQ(z.field_u64("a"), 0u);
  Value s = Value::zero_of(TypeDesc(ScalarType::kU16));
  EXPECT_EQ(s.as_u64(), 0u);
}

TEST(TypeRegistry, ResolveScalarsAndStructs) {
  TypeRegistry reg;
  reg.define_struct("My_t", {{"x", ScalarType::kU8, false}});
  TypeDesc t;
  EXPECT_TRUE(reg.resolve("U32", &t));
  EXPECT_FALSE(t.is_struct());
  EXPECT_TRUE(reg.resolve("My_t", &t));
  EXPECT_TRUE(t.is_struct());
  EXPECT_EQ(t.name(), "My_t");
  EXPECT_FALSE(reg.resolve("Nope_t", &t));
}

TEST(TypeDesc, ByteSizes) {
  TypeRegistry reg;
  const StructType* st = reg.define_struct(
      "Tri", {{"a", ScalarType::kU32, false}, {"b", ScalarType::kU32, false},
              {"c", ScalarType::kU32, false}});
  EXPECT_EQ(TypeDesc(ScalarType::kU8).byte_size(), 1u);
  EXPECT_EQ(TypeDesc(ScalarType::kU16).byte_size(), 2u);
  EXPECT_EQ(TypeDesc(ScalarType::kU32).byte_size(), 4u);
  EXPECT_EQ(TypeDesc(st).byte_size(), 24u);
}

// --- raw link container -------------------------------------------------------

TEST(Link, PushPopIndexes) {
  Link l(LinkId(0), "a::x -> b::y", TypeDesc(ScalarType::kU32), nullptr, nullptr);
  EXPECT_EQ(l.push_raw(Value::u32(1)), 0u);
  EXPECT_EQ(l.push_raw(Value::u32(2)), 1u);
  EXPECT_EQ(l.occupancy(), 2u);
  EXPECT_EQ(l.pop_raw().as_u64(), 1u);
  EXPECT_EQ(l.pop_raw().as_u64(), 2u);
  EXPECT_EQ(l.push_index(), 2u);
  EXPECT_EQ(l.pop_index(), 2u);
  EXPECT_TRUE(l.empty());
}

TEST(Link, HighWatermark) {
  Link l(LinkId(0), "l", TypeDesc(), nullptr, nullptr);
  for (int i = 0; i < 5; ++i) l.push_raw(Value::u32(0));
  l.pop_raw();
  l.pop_raw();
  for (int i = 0; i < 2; ++i) l.push_raw(Value::u32(0));
  EXPECT_EQ(l.high_watermark(), 5u);
}

TEST(Link, CapacityAndFull) {
  Link l(LinkId(0), "l", TypeDesc(), nullptr, nullptr);
  l.set_capacity(2);
  l.push_raw(Value::u32(1));
  EXPECT_FALSE(l.full());
  l.push_raw(Value::u32(2));
  EXPECT_TRUE(l.full());
}

TEST(Link, PeekPokeErase) {
  Link l(LinkId(0), "l", TypeDesc(), nullptr, nullptr);
  for (std::uint32_t i = 0; i < 4; ++i) l.push_raw(Value::u32(i));
  EXPECT_EQ(l.peek(2).as_u64(), 2u);
  l.poke(2, Value::u32(99));
  EXPECT_EQ(l.peek(2).as_u64(), 99u);
  Value removed = l.erase_at(1);
  EXPECT_EQ(removed.as_u64(), 1u);
  EXPECT_EQ(l.occupancy(), 3u);
  // Erasing does not disturb the monotonic indexes.
  EXPECT_EQ(l.push_index(), 4u);
  EXPECT_EQ(l.pop_index(), 0u);
  // Remaining order: 0, 99, 3.
  EXPECT_EQ(l.pop_raw().as_u64(), 0u);
  EXPECT_EQ(l.pop_raw().as_u64(), 99u);
  EXPECT_EQ(l.pop_raw().as_u64(), 3u);
}

TEST(Link, FifoPropertyUnderRandomOps) {
  // Property: values come out in push order regardless of interleaving.
  dfdbg::Prng prng(5);
  Link l(LinkId(0), "l", TypeDesc(), nullptr, nullptr);
  std::uint32_t next_push = 0, next_pop = 0;
  for (int step = 0; step < 10000; ++step) {
    if (l.empty() || prng.next_bool(0.55)) {
      l.push_raw(Value::u32(next_push++));
    } else {
      ASSERT_EQ(l.pop_raw().as_u64(), next_pop++);
    }
  }
  while (!l.empty()) ASSERT_EQ(l.pop_raw().as_u64(), next_pop++);
  EXPECT_EQ(next_push, next_pop);
}

}  // namespace
}  // namespace dfdbg::pedf

// Unit tests for the df_common utility library.
#include <gtest/gtest.h>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/common/json.hpp"
#include "dfdbg/common/prng.hpp"
#include "dfdbg/common/ring_buffer.hpp"
#include "dfdbg/common/status.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.message(), "");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Status::error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::error("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(Ids, InvalidByDefault) {
  struct Tag {};
  Id<Tag> id;
  EXPECT_FALSE(id.valid());
  Id<Tag> a(3), b(3), c(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(rb.push(i));
  EXPECT_EQ(rb.size(), 4u);
  EXPECT_EQ(rb.front(), 0);
  EXPECT_EQ(rb.back(), 3);
}

TEST(RingBuffer, EvictsOldest) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb.total_pushed(), 4u);
}

TEST(RingBuffer, AtIndexesFromOldest) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 5; ++i) rb.push(i);
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(1), 3);
  EXPECT_EQ(rb.at(2), 4);
}

TEST(Strings, Split) {
  auto v = split("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "");
}

TEST(Strings, SplitWs) {
  auto v = split_ws("  foo   bar\tbaz ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "bar");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(Strings, MangleFilterWork) {
  // The paper's example: filter `ipf` work method -> IpfFilter_work_function.
  EXPECT_EQ(mangle_filter_work("ipf"), "IpfFilter_work_function");
  EXPECT_EQ(mangle_filter_work("my_filter"), "MyFilterFilter_work_function");
}

TEST(Strings, MangleControllerWork) {
  // The paper's example: pred module controller ->
  // _component_PredModule_anon_0_work.
  EXPECT_EQ(mangle_controller_work("pred", 0), "_component_PredModule_anon_0_work");
  EXPECT_EQ(mangle_controller_work("front", 1), "_component_FrontModule_anon_1_work");
}

TEST(Prng, Deterministic) {
  Prng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, RangeBounds) {
  Prng p(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = p.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Prng, DoubleInUnitInterval) {
  Prng p(9);
  for (int i = 0; i < 1000; ++i) {
    double d = p.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- the shared JSON layer ---------------------------------------------------

TEST(Json, QuoteEscapesControlAndSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("x\n\t\r"), "\"x\\n\\t\\r\"");
  EXPECT_EQ(json_quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, WriterPlacesCommasAndColons) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", 1).kv("b", "two");
  w.key("c").begin_array().value(true).null().value(3.5).end_array();
  w.key("d").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":[true,null,3.5],"d":{}})");
}

TEST(Json, ParseScalarsAndContainers) {
  auto v = JsonValue::parse(R"({"n":-7,"big":18446744073709551615,"f":0.25,)"
                            R"("s":"hi","t":true,"z":null,"arr":[1,2,3]})");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v->find("n")->as_i64(), -7);
  // u64 survives without a double round-trip (the provenance uid case).
  EXPECT_EQ(v->find("big")->as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v->find("f")->as_double(), 0.25);
  EXPECT_EQ(v->str_or("s"), "hi");
  EXPECT_TRUE(v->bool_or("t"));
  EXPECT_TRUE(v->find("z")->is_null());
  ASSERT_EQ(v->find("arr")->size(), 3u);
  EXPECT_EQ(v->find("arr")->at(1).as_u64(), 2u);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, ParseStringEscapes) {
  auto v = JsonValue::parse(R"(["a\"b","\u0041\u00e9","\ud83d\ude00","\n\t"])");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v->at(0).as_string(), "a\"b");
  EXPECT_EQ(v->at(1).as_string(), "A\xc3\xa9");
  EXPECT_EQ(v->at(2).as_string(), "\xf0\x9f\x98\x80");  // surrogate pair
  EXPECT_EQ(v->at(3).as_string(), "\n\t");
}

TEST(Json, ParseErrorsAreTyped) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"}) {
    auto v = JsonValue::parse(bad);
    ASSERT_FALSE(v.ok()) << "accepted: " << bad;
    EXPECT_EQ(v.status().code(), ErrCode::kParseError) << bad;
    EXPECT_NE(v.status().message().find("json:"), std::string::npos) << bad;
  }
}

TEST(Json, ParseRejectsRunawayNesting) {
  std::string deep(100, '[');
  auto v = JsonValue::parse(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrCode::kParseError);
}

TEST(Json, DumpRoundTripsThroughWriter) {
  const char* doc = R"({"a":[1,-2,true,null],"b":{"c":"x\ny"},"d":0.5})";
  auto v = JsonValue::parse(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->dump(), doc);
  auto again = JsonValue::parse(v->dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->dump(), doc);
}

TEST(Status, ErrorCodesAreStableStrings) {
  EXPECT_STREQ(to_string(ErrCode::kOk), "ok");
  EXPECT_STREQ(to_string(ErrCode::kInvalidArgument), "invalid-argument");
  EXPECT_STREQ(to_string(ErrCode::kNotFound), "not-found");
  EXPECT_STREQ(to_string(ErrCode::kFailedPrecondition), "failed-precondition");
  EXPECT_STREQ(to_string(ErrCode::kOutOfRange), "out-of-range");
  EXPECT_STREQ(to_string(ErrCode::kParseError), "parse-error");
  // Untyped errors stay kUnknown: old call sites keep compiling and map to
  // JSON-RPC internal-error on the wire.
  EXPECT_EQ(Status::error("legacy").code(), ErrCode::kUnknown);
  EXPECT_EQ(Status::error(ErrCode::kNotFound, "x").code(), ErrCode::kNotFound);
}

}  // namespace
}  // namespace dfdbg

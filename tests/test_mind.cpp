// Tests of the MIND tool-chain: lexer, parser (the paper's grammar),
// semantic analysis diagnostics, instantiation and DOT emission.
#include <gtest/gtest.h>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/emit.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/mind/dot.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/lexer.hpp"
#include "dfdbg/mind/parser.hpp"

namespace dfdbg::mind {
namespace {

// The paper's §IV-A listing (types normalized: cmd ports are U32 on both
// ends; the original listing mixes U32 and U8).
const char* kAModule = R"adl(
@Module
composite AModule {
  contains as controller {
    output U32 as cmd_out_1;
    output U32 as cmd_out_2;
    source ctrl_source.c;
  }
  // External connections
  input U32 as module_in;
  output U32 as module_out;
  // Sub-components
  contains AFilter as filter_1;
  contains AFilter as filter_2;
  // Connections
  binds controller.cmd_out_1 to filter_1.cmd_in;
  binds controller.cmd_out_2 to filter_2.cmd_in;
  binds this.module_in to filter_1.an_input;
  binds filter_1.an_output to filter_2.an_input;
  binds filter_2.an_output to this.module_out;
}

@Filter
primitive AFilter {
  data      stddefs.h:U32 a_private_data;
  attribute stddefs.h:U32 an_attribute;
  source    the_source.c;
  input stddefs.h:U32 as an_input;
  input stddefs.h:U32 as cmd_in;
  output stddefs.h:U32 as an_output;
}
)adl";

TEST(Lexer, TokenizesAnnotationsAndIdents) {
  std::string err;
  auto toks = lex("@Module composite X { }", &err);
  EXPECT_TRUE(err.empty());
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::kAnnotation);
  EXPECT_EQ(toks[0].text, "Module");
  EXPECT_EQ(toks[1].text, "composite");
  EXPECT_EQ(toks[3].kind, TokKind::kLBrace);
}

TEST(Lexer, DottedIdentifiersStayWhole) {
  std::string err;
  auto toks = lex("source ctrl_source.c ; stddefs.h : U32", &err);
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(toks[1].text, "ctrl_source.c");
  EXPECT_EQ(toks[3].text, "stddefs.h");
  EXPECT_EQ(toks[4].kind, TokKind::kColon);
}

TEST(Lexer, SkipsComments) {
  std::string err;
  auto toks = lex("a // line comment\n /* block\ncomment */ b", &err);
  EXPECT_TRUE(err.empty());
  ASSERT_EQ(toks.size(), 3u);  // a, b, END
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, ReportsBadCharacter) {
  std::string err;
  lex("composite !", &err);
  EXPECT_NE(err.find("unexpected character"), std::string::npos);
}

TEST(Lexer, ReportsUnterminatedComment) {
  std::string err;
  lex("/* never closed", &err);
  EXPECT_NE(err.find("unterminated"), std::string::npos);
}

TEST(Parser, ParsesThePaperListing) {
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  ASSERT_EQ(doc->composites.size(), 1u);
  ASSERT_EQ(doc->primitives.size(), 1u);
  const AstComposite& c = doc->composites[0];
  EXPECT_EQ(c.name, "AModule");
  ASSERT_TRUE(c.controller.has_value());
  EXPECT_EQ(c.controller->ports.size(), 2u);
  EXPECT_EQ(c.controller->source, "ctrl_source.c");
  EXPECT_EQ(c.ports.size(), 2u);
  EXPECT_EQ(c.instances.size(), 2u);
  EXPECT_EQ(c.bindings.size(), 5u);
  EXPECT_EQ(c.bindings[0].src, "controller.cmd_out_1");
  EXPECT_EQ(c.bindings[0].dst, "filter_1.cmd_in");
  const AstPrimitive& p = doc->primitives[0];
  EXPECT_EQ(p.name, "AFilter");
  EXPECT_EQ(p.data.size(), 2u);
  EXPECT_TRUE(p.data[1].is_attribute);
  EXPECT_EQ(p.data[0].type.header, "stddefs.h");
  EXPECT_EQ(p.data[0].type.type, "U32");
  EXPECT_EQ(p.source, "the_source.c");
  EXPECT_EQ(p.ports.size(), 3u);
}

TEST(Parser, ParsesStructExtension) {
  auto doc = parse("@Type struct S_t { U32 Addr hex; U16 n; }");
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  ASSERT_EQ(doc->structs.size(), 1u);
  EXPECT_EQ(doc->structs[0].name, "S_t");
  ASSERT_EQ(doc->structs[0].fields.size(), 2u);
  EXPECT_TRUE(doc->structs[0].fields[0].hex);
  EXPECT_FALSE(doc->structs[0].fields[1].hex);
}

TEST(Parser, ErrorsCarryPositions) {
  auto doc = parse("@Module composite X {\n  oops;\n}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("2:"), std::string::npos);
}

TEST(Parser, RejectsUnknownAnnotation) {
  auto doc = parse("@Nonsense primitive X {}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("unknown annotation"), std::string::npos);
}

TEST(Parser, RejectsUnterminatedComposite) {
  auto doc = parse("@Module composite X { input U32 as a;");
  EXPECT_FALSE(doc.ok());
}

TEST(Analyze, AcceptsThePaperListing) {
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "AModule");
  ASSERT_TRUE(rep.ok()) << rep.status().message();
}

TEST(Analyze, RejectsUnknownInstanceType) {
  auto doc = parse("@Module composite M { contains Ghost as g; }");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("unknown instance type"), std::string::npos);
}

TEST(Analyze, RejectsTypeMismatchedBinding) {
  auto doc = parse(R"(
@Filter primitive A { output U16 as o; }
@Filter primitive B { input U32 as i; }
@Module composite M { contains A as a; contains B as b; binds a.o to b.i; }
)");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("type mismatch"), std::string::npos);
}

TEST(Analyze, RejectsWrongDirectionBinding) {
  auto doc = parse(R"(
@Filter primitive A { input U32 as i; }
@Filter primitive B { input U32 as i; }
@Module composite M { contains A as a; contains B as b; binds a.i to b.i; }
)");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("cannot be a binding source"), std::string::npos);
}

TEST(Analyze, RejectsDoubleBinding) {
  auto doc = parse(R"(
@Filter primitive A { output U32 as o; }
@Filter primitive B { input U32 as i; }
@Filter primitive C { input U32 as i; }
@Module composite M {
  contains A as a; contains B as b; contains C as c;
  binds a.o to b.i;
  binds a.o to c.i;
}
)");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("bound twice"), std::string::npos);
}

TEST(Analyze, RejectsSelfContainment) {
  auto doc = parse("@Module composite M { contains M as m; }");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("contains itself"), std::string::npos);
}

TEST(Analyze, RejectsUnknownStructField) {
  auto doc = parse("@Type struct S { Bogus x; }\n@Module composite M { }");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("non-scalar"), std::string::npos);
}

TEST(Analyze, WarnsOnUnboundChildPort) {
  auto doc = parse(R"(
@Filter primitive A { output U32 as o; output U32 as dangling; }
@Filter primitive B { input U32 as i; }
@Module composite M { contains A as a; contains B as b; binds a.o to b.i; }
)");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "M");
  ASSERT_TRUE(rep.ok());
  ASSERT_FALSE(rep->warnings.empty());
  EXPECT_NE(rep->warnings[0].find("a.dangling"), std::string::npos);
}

TEST(Analyze, RejectsMissingTop) {
  auto doc = parse("@Module composite M { }");
  ASSERT_TRUE(doc.ok());
  auto rep = analyze(*doc, "Nope");
  ASSERT_FALSE(rep.ok());
}

TEST(Instantiate, BuildsTheModuleTree) {
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok());
  pedf::TypeRegistry types;
  FilterRegistry registry;
  auto mod = instantiate(*doc, "AModule", "amod", types, registry);
  ASSERT_TRUE(mod.ok()) << mod.status().message();
  EXPECT_EQ((*mod)->name(), "amod");
  EXPECT_EQ((*mod)->filters().size(), 2u);
  ASSERT_NE((*mod)->controller(), nullptr);
  EXPECT_EQ((*mod)->controller()->ports().size(), 2u);
  pedf::Filter* f1 = (*mod)->filter("filter_1");
  ASSERT_NE(f1, nullptr);
  EXPECT_NE(f1->port("an_input"), nullptr);
  EXPECT_NE(f1->data("a_private_data"), nullptr);
  EXPECT_NE(f1->attribute("an_attribute"), nullptr);
  EXPECT_EQ(f1->source_file(), "the_source.c");
  EXPECT_EQ((*mod)->bindings().size(), 5u);
}

TEST(Instantiate, RegistersStructTypes) {
  auto doc = parse("@Type struct S_t { U32 a; }\n@Module composite M { }");
  ASSERT_TRUE(doc.ok());
  pedf::TypeRegistry types;
  FilterRegistry registry;
  auto mod = instantiate(*doc, "M", "m", types, registry);
  ASSERT_TRUE(mod.ok());
  EXPECT_NE(types.find_struct("S_t"), nullptr);
}

TEST(Instantiate, ControllerFactoryRenamesEndpoints) {
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok());
  pedf::TypeRegistry types;
  FilterRegistry registry;
  registry.register_controller("AModule", [](const AstComposite&, const std::string&) {
    return std::unique_ptr<pedf::Controller>(
        new pedf::FnController("fancy_controller", [](pedf::ControllerContext&) {}));
  });
  auto mod = instantiate(*doc, "AModule", "amod", types, registry);
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->controller()->name(), "fancy_controller");
  // Bindings rewritten from "controller." to the factory's name.
  bool found = false;
  for (const auto& b : (*mod)->bindings())
    if (b.src == "fancy_controller.cmd_out_1") found = true;
  EXPECT_TRUE(found);
}

TEST(Instantiate, GenericFallbacksRunnable) {
  // Unregistered primitives get GenericFilter; composites with a controller
  // get DefaultController -- the parsed architecture runs as-is.
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok());
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "generic");
  FilterRegistry registry;
  registry.set_default_steps(3);
  auto mod = instantiate(*doc, "AModule", "amod", app.types(), registry);
  ASSERT_TRUE(mod.ok());
  app.set_root(std::move(*mod));
  app.add_host_source("src", "amod.module_in",
                      {pedf::Value::u32(1), pedf::Value::u32(2), pedf::Value::u32(3)});
  auto& sink = app.add_host_sink("snk", "amod.module_out", 3);
  ASSERT_TRUE(app.elaborate().ok());
  app.start();
  EXPECT_EQ(kernel.run(), sim::RunResult::kFinished);
  EXPECT_EQ(sink.received().size(), 3u);
}

TEST(Parser, SurvivesRandomInput) {
  // The front end must reject garbage gracefully: no crash, no hang, and a
  // positioned diagnostic for every failure.
  dfdbg::Prng prng(41);
  const char alphabet[] = "abc_.:;{}@ \n\t/*composite primitive binds to as input output";
  for (int trial = 0; trial < 400; ++trial) {
    std::string text;
    std::size_t len = prng.next_below(120);
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[prng.next_below(sizeof(alphabet) - 1)];
    auto doc = parse(text);
    if (!doc.ok()) {
      EXPECT_FALSE(doc.status().message().empty());
    }
  }
}

TEST(Parser, SurvivesTruncationsOfValidAdl) {
  std::string text(kAModule);
  for (std::size_t cut = 0; cut < text.size(); cut += 13) {
    auto doc = parse(text.substr(0, cut));
    // Any outcome is fine; it must simply not crash and must diagnose
    // failures with a message.
    if (!doc.ok()) {
      EXPECT_FALSE(doc.status().message().empty());
    }
  }
}

TEST(Emit, RoundTripThePaperListing) {
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok());
  std::string text = emit_adl(*doc);
  auto doc2 = parse(text);
  ASSERT_TRUE(doc2.ok()) << doc2.status().message() << "\nemitted:\n" << text;
  EXPECT_TRUE(documents_equal(*doc, *doc2)) << text;
  // Idempotence: emitting the re-parsed document gives identical text.
  EXPECT_EQ(text, emit_adl(*doc2));
}

TEST(Emit, RoundTripTheH264Architecture) {
  auto doc = parse(h264::kH264Adl);
  ASSERT_TRUE(doc.ok());
  auto doc2 = parse(emit_adl(*doc));
  ASSERT_TRUE(doc2.ok()) << doc2.status().message();
  EXPECT_TRUE(documents_equal(*doc, *doc2));
}

TEST(Emit, EqualityDetectsDifferences) {
  auto a = parse(kAModule);
  auto b = parse(kAModule);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(documents_equal(*a, *b));
  b->composites[0].bindings.pop_back();
  EXPECT_FALSE(documents_equal(*a, *b));
}

TEST(Emit, StructsWithHexFlag) {
  auto doc = parse("@Type struct S_t { U32 Addr hex; U16 n; }");
  ASSERT_TRUE(doc.ok());
  std::string text = emit_adl(*doc);
  EXPECT_NE(text.find("U32 Addr hex;"), std::string::npos);
  auto doc2 = parse(text);
  ASSERT_TRUE(doc2.ok());
  EXPECT_TRUE(documents_equal(*doc, *doc2));
}

TEST(Dot, RendersFig2Elements) {
  auto doc = parse(kAModule);
  ASSERT_TRUE(doc.ok());
  std::string dot = to_dot(*doc, "AModule");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("controller"), std::string::npos);
  EXPECT_NE(dot.find("palegreen"), std::string::npos);  // controller box
  EXPECT_NE(dot.find("filter_1"), std::string::npos);
  EXPECT_NE(dot.find("filter_2"), std::string::npos);
  EXPECT_NE(dot.find("this.module_in"), std::string::npos);
}

}  // namespace
}  // namespace dfdbg::mind

// Unit tests of the codec core: transform round-trips, quantization tables,
// zig-zag, prediction, bitstream coding, encoder/golden-decoder agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/h264/bitstream.hpp"
#include "dfdbg/h264/codec.hpp"
#include "dfdbg/h264/refcodec.hpp"

namespace dfdbg::h264 {
namespace {

TEST(Transform, DcOnly) {
  std::array<int, 16> in, out;
  in.fill(10);
  fwd4x4(in, out);
  // DC coefficient = sum of inputs; all AC zero for a flat block.
  EXPECT_EQ(out[0], 160);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 0);
}

TEST(Transform, RoundTripWithQuantIsConsistent) {
  // The decoder-side path (dequant + inverse transform) must reproduce the
  // values the encoder-side reconstruction computed — bit-exactness is
  // defined by running the same functions, so here we check the combined
  // path is a reasonable approximation of the residual at moderate QP.
  Prng prng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<int, 16> resid, coef, q, deq, rec;
    for (auto& v : resid) v = static_cast<int>(prng.next_range(-64, 64));
    fwd4x4(resid, coef);
    int qp = 4;
    for (int i = 0; i < 16; ++i) q[static_cast<std::size_t>(i)] = quantize(coef[static_cast<std::size_t>(i)], i, qp);
    for (int i = 0; i < 16; ++i) deq[static_cast<std::size_t>(i)] = dequantize(q[static_cast<std::size_t>(i)], i, qp);
    inv4x4(deq, rec);
    for (int i = 0; i < 16; ++i)
      EXPECT_NEAR(rec[static_cast<std::size_t>(i)], resid[static_cast<std::size_t>(i)], 4)
          << "trial " << trial << " pos " << i;
  }
}

TEST(Transform, HigherQpCoarser) {
  std::array<int, 16> resid, coef;
  Prng prng(9);
  for (auto& v : resid) v = static_cast<int>(prng.next_range(-50, 50));
  fwd4x4(resid, coef);
  long mag_lo = 0, mag_hi = 0;
  for (int i = 0; i < 16; ++i) {
    mag_lo += std::abs(quantize(coef[static_cast<std::size_t>(i)], i, 4));
    mag_hi += std::abs(quantize(coef[static_cast<std::size_t>(i)], i, 40));
  }
  EXPECT_GT(mag_lo, mag_hi);  // higher QP -> fewer/smaller coefficients
}

TEST(Zigzag, RoundTrip) {
  std::array<int, 16> in, scanned, back;
  for (int i = 0; i < 16; ++i) in[static_cast<std::size_t>(i)] = i * 3 - 20;
  zigzag_scan(in, scanned);
  zigzag_unscan(scanned, back);
  EXPECT_EQ(in, back);
}

TEST(Zigzag, IsPermutation) {
  std::array<bool, 16> seen{};
  for (int i : kZigzag4x4) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 16);
    EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
}

TEST(Geometry, CoversAllPlanes) {
  int y = 0, cb = 0, cr = 0;
  for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
    BlockGeom g = block_geom(1, 2, b);
    if (g.plane == Plane::kY) {
      y++;
      EXPECT_GE(g.x, 16);
      EXPECT_LT(g.x, 32);
      EXPECT_GE(g.y, 32);
      EXPECT_LT(g.y, 48);
    } else if (g.plane == Plane::kCb) {
      cb++;
    } else {
      cr++;
    }
  }
  EXPECT_EQ(y, 16);
  EXPECT_EQ(cb, 4);
  EXPECT_EQ(cr, 4);
}

TEST(Geometry, LumaBlocksDistinct) {
  std::set<std::pair<int, int>> coords;
  for (int b = 0; b < 16; ++b) {
    BlockGeom g = block_geom(0, 0, b);
    EXPECT_TRUE(coords.insert({g.x, g.y}).second);
  }
}

TEST(Prediction, DcWithoutNeighborsIs128) {
  Frame f(16, 16);
  std::array<int, 16> pred;
  intra_predict4x4(f, Plane::kY, 0, 0, MbMode::kIntraDC, pred);
  for (int v : pred) EXPECT_EQ(v, 128);
}

TEST(Prediction, HorizontalCopiesLeftColumn) {
  Frame f(16, 16);
  for (int r = 0; r < 4; ++r) f.y[static_cast<std::size_t>((4 + r) * 16 + 3)] = static_cast<std::uint8_t>(50 + r);
  std::array<int, 16> pred;
  intra_predict4x4(f, Plane::kY, 4, 4, MbMode::kIntraH, pred);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(pred[static_cast<std::size_t>(r * 4 + c)], 50 + r);
}

TEST(Prediction, VerticalCopiesTopRow) {
  Frame f(16, 16);
  for (int c = 0; c < 4; ++c) f.y[static_cast<std::size_t>(3 * 16 + 4 + c)] = static_cast<std::uint8_t>(80 + c);
  std::array<int, 16> pred;
  intra_predict4x4(f, Plane::kY, 4, 4, MbMode::kIntraV, pred);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(pred[static_cast<std::size_t>(r * 4 + c)], 80 + c);
}

TEST(Prediction, InterShiftsByMv) {
  Frame ref(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) ref.y[static_cast<std::size_t>(y * 16 + x)] = static_cast<std::uint8_t>(x + y * 16);
  std::array<int, 16> pred;
  inter_predict4x4(ref, Plane::kY, 8, 8, MotionVector{2, 1}, pred);
  EXPECT_EQ(pred[0], (8 + 2) + (8 + 1) * 16);
}

TEST(Prediction, InterClampsAtEdges) {
  Frame ref(16, 16);
  std::array<int, 16> pred;
  inter_predict4x4(ref, Plane::kY, 0, 0, MotionVector{-2, -2}, pred);  // off-frame
  for (int v : pred) EXPECT_EQ(v, 128);                                // gray init
}

// --- bitstream ---------------------------------------------------------------

TEST(Bits, PutGetBits) {
  BitWriter bw;
  bw.put_bits(0b1011, 4);
  bw.put_bits(0xFF, 8);
  bw.put_bits(0, 3);
  auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(4), 0b1011u);
  EXPECT_EQ(br.get_bits(8), 0xFFu);
  EXPECT_EQ(br.get_bits(3), 0u);
  EXPECT_FALSE(br.overrun());
}

TEST(Bits, UeRoundTrip) {
  BitWriter bw;
  for (std::uint32_t v : {0u, 1u, 2u, 7u, 255u, 100000u}) bw.put_ue(v);
  BitReader br(bw.finish());
  for (std::uint32_t v : {0u, 1u, 2u, 7u, 255u, 100000u}) EXPECT_EQ(br.get_ue(), v);
}

TEST(Bits, SeRoundTrip) {
  BitWriter bw;
  for (std::int32_t v : {0, 1, -1, 5, -5, 1000, -1000}) bw.put_se(v);
  BitReader br(bw.finish());
  for (std::int32_t v : {0, 1, -1, 5, -5, 1000, -1000}) EXPECT_EQ(br.get_se(), v);
}

TEST(Bits, OverrunFlagged) {
  BitReader br({0xAB});
  br.get_bits(8);
  EXPECT_FALSE(br.overrun());
  br.get_bits(1);
  EXPECT_TRUE(br.overrun());
}

TEST(Bits, StreamReaderMatchesBufferReader) {
  struct VecSource : ByteSource {
    std::vector<std::uint8_t> v;
    std::size_t i = 0;
    bool next(std::uint8_t* out) override {
      if (i >= v.size()) return false;
      *out = v[i++];
      return true;
    }
  };
  BitWriter bw;
  bw.put_ue(42);
  bw.put_se(-17);
  bw.put_bits(0b101, 3);
  auto bytes = bw.finish();
  VecSource src;
  src.v = bytes;
  StreamBitReader sbr(src);
  BitReader br(bytes);
  EXPECT_EQ(sbr.get_ue(), br.get_ue());
  EXPECT_EQ(sbr.get_se(), br.get_se());
  EXPECT_EQ(sbr.get_bits(3), br.get_bits(3));
}

// --- encoder / golden decoder -------------------------------------------------

class CodecRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(CodecRoundTrip, GoldenDecoderMatchesEncoderReconstruction) {
  auto [w, frames, qp, deblock] = GetParam();
  CodecParams p;
  p.width = w;
  p.height = 32;
  p.frame_count = frames;
  p.qp = qp;
  p.deblock = deblock;
  auto video = make_test_video(p.width, p.height, p.frame_count, 7);
  Encoder enc(p);
  auto bytes = enc.encode(video);
  ASSERT_FALSE(bytes.empty());
  GoldenDecoder dec;
  auto frames_out = dec.decode(bytes);
  ASSERT_TRUE(frames_out.ok()) << frames_out.status().message();
  ASSERT_EQ(frames_out->size(), enc.reconstructed().size());
  for (std::size_t i = 0; i < frames_out->size(); ++i)
    EXPECT_EQ((*frames_out)[i], enc.reconstructed()[i]) << "frame " << i;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecRoundTrip,
                         ::testing::Values(std::make_tuple(32, 1, 20, true),
                                           std::make_tuple(32, 3, 20, true),
                                           std::make_tuple(48, 2, 10, true),
                                           std::make_tuple(48, 3, 30, false),
                                           std::make_tuple(64, 2, 24, true),
                                           std::make_tuple(32, 4, 4, false)));

TEST(Encoder, ReasonableQuality) {
  CodecParams p;
  p.width = 48;
  p.height = 32;
  p.frame_count = 2;
  p.qp = 10;
  auto video = make_test_video(p.width, p.height, p.frame_count, 11);
  Encoder enc(p);
  enc.encode(video);
  // PSNR of the luma reconstruction should be decent at QP 10.
  const Frame& src = video[0];
  const Frame& rec = enc.reconstructed()[0];
  double mse = 0;
  for (std::size_t i = 0; i < src.y.size(); ++i) {
    double d = static_cast<double>(src.y[i]) - rec.y[i];
    mse += d * d;
  }
  mse /= static_cast<double>(src.y.size());
  ASSERT_GT(mse, 0.0);
  double psnr = 10.0 * std::log10(255.0 * 255.0 / mse);
  EXPECT_GT(psnr, 28.0) << "luma PSNR too low: " << psnr;
}

TEST(Encoder, PFramesUseInter) {
  CodecParams p;
  p.width = 48;
  p.height = 32;
  p.frame_count = 3;
  p.qp = 20;
  auto video = make_test_video(p.width, p.height, p.frame_count, 7);
  Encoder enc(p);
  enc.encode(video);
  int inter = 0;
  int per_frame = p.mbs_per_frame();
  for (std::size_t i = static_cast<std::size_t>(per_frame); i < enc.syntax().size(); ++i)
    if (enc.syntax()[i].mode == MbMode::kInter) inter++;
  EXPECT_GT(inter, 0) << "motion search never chose inter prediction";
  // Frame 0 must be all-intra.
  for (int i = 0; i < per_frame; ++i)
    EXPECT_NE(enc.syntax()[static_cast<std::size_t>(i)].mode, MbMode::kInter);
}

TEST(Encoder, StaticVideoChoosesSkip) {
  // Identical noise-free frames at a coarse QP: re-coding the residual
  // barely reduces distortion while costing real bits, so rate-distortion
  // optimization must pick P_Skip for most of the P frames.
  CodecParams p;
  p.width = 48;
  p.height = 32;
  p.frame_count = 3;
  p.qp = 30;
  Frame clean(p.width, p.height);
  for (int y = 0; y < p.height; ++y)
    for (int x = 0; x < p.width; ++x)
      clean.y[static_cast<std::size_t>(y * p.width + x)] =
          static_cast<std::uint8_t>(40 + ((x * 3 + y * 2) % 160));
  std::vector<Frame> video = {clean, clean, clean};
  Encoder enc(p);
  auto bytes = enc.encode(video);
  int skip = 0, total_p = 0;
  for (std::size_t i = static_cast<std::size_t>(p.mbs_per_frame()); i < enc.syntax().size();
       ++i) {
    total_p++;
    if (enc.syntax()[i].mode == MbMode::kSkip) skip++;
  }
  EXPECT_GT(skip, total_p / 2) << "static video should be mostly P_Skip";
  // Skip MBs carry zero residual bits, so the stream is much smaller than an
  // all-intra encoding of the same frames.
  GoldenDecoder dec;
  auto frames = dec.decode(bytes);
  ASSERT_TRUE(frames.ok());
  for (std::size_t i = 0; i < frames->size(); ++i)
    EXPECT_EQ((*frames)[i], enc.reconstructed()[i]) << "frame " << i;
}

TEST(Bits, SkipMbCodesOnlyTheMode) {
  MbSyntax skip;
  skip.mode = MbMode::kSkip;
  BitWriter bw;
  write_mb(bw, skip);
  auto bytes = bw.finish();
  EXPECT_LE(bytes.size(), 2u);  // ue(4) = 5 bits
  BitReader br(bytes);
  MbSyntax parsed = parse_mb(br);
  EXPECT_EQ(parsed.mode, MbMode::kSkip);
  EXPECT_EQ(parsed.mv, (MotionVector{0, 0}));
  EXPECT_FALSE(br.overrun());
}

TEST(GoldenDecoder, RejectsGarbage) {
  GoldenDecoder dec;
  auto r = dec.decode({1, 2, 3, 4});
  EXPECT_FALSE(r.ok());
}

TEST(GoldenDecoder, RejectsTruncated) {
  CodecParams p;
  p.width = 32;
  p.height = 32;
  p.frame_count = 1;
  auto video = make_test_video(p.width, p.height, 1, 3);
  Encoder enc(p);
  auto bytes = enc.encode(video);
  bytes.resize(bytes.size() / 2);
  GoldenDecoder dec;
  auto r = dec.decode(bytes);
  EXPECT_FALSE(r.ok());
}

// --- robustness fuzzing ---------------------------------------------------------

TEST(GoldenDecoder, SurvivesRandomBytes) {
  dfdbg::Prng prng(77);
  GoldenDecoder dec;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes(prng.next_below(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(prng.next_u64());
    auto r = dec.decode(bytes);  // must not crash/hang; result may be anything
    if (!r.ok()) continue;
    for (const Frame& f : *r) {
      EXPECT_GT(f.width, 0);
      EXPECT_LE(f.width, kMaxDimension);
    }
  }
}

TEST(GoldenDecoder, SurvivesTruncationsOfValidStream) {
  CodecParams p;
  p.width = 32;
  p.height = 32;
  p.frame_count = 2;
  auto video = make_test_video(p.width, p.height, p.frame_count, 5);
  Encoder enc(p);
  auto bytes = enc.encode(video);
  GoldenDecoder dec;
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    auto r = dec.decode(trunc);
    EXPECT_FALSE(r.ok()) << "truncated to " << cut << " bytes decoded successfully";
  }
}

TEST(GoldenDecoder, SurvivesBitFlips) {
  CodecParams p;
  p.width = 32;
  p.height = 32;
  p.frame_count = 1;
  auto video = make_test_video(p.width, p.height, 1, 9);
  Encoder enc(p);
  auto bytes = enc.encode(video);
  dfdbg::Prng prng(13);
  GoldenDecoder dec;
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = bytes;
    std::size_t pos = prng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << prng.next_below(8));
    auto r = dec.decode(mutated);  // any outcome, but bounded and crash-free
    if (r.ok()) {
      for (const Frame& f : *r) EXPECT_LE(f.width, kMaxDimension);
    }
  }
}

TEST(GoldenDecoder, RejectsAbsurdHeaders) {
  // Hand-craft a header announcing a gigantic stream.
  BitWriter bw;
  bw.put_bits('D', 8);
  bw.put_bits('F', 8);
  bw.put_ue(100000);  // mbs_x -> width 1.6M
  bw.put_ue(2);
  bw.put_ue(1);
  bw.put_ue(20);
  bw.put_bits(1, 1);
  GoldenDecoder dec;
  EXPECT_FALSE(dec.decode(bw.finish()).ok());
}

TEST(Deblock, PreservesFlatAreas) {
  Frame f(32, 32);
  for (auto& v : f.y) v = 77;
  Frame g = deblock_frame(f);
  for (auto v : g.y) EXPECT_EQ(v, 77);
}

TEST(Deblock, SmoothsEdges) {
  Frame f(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) f.y[static_cast<std::size_t>(y * 32 + x)] = x < 4 ? 0 : 200;
  Frame g = deblock_frame(f);
  // The pixel just left of the 4-boundary moves toward the right side.
  EXPECT_GT(static_cast<int>(g.y[3]), 0);
}

}  // namespace
}  // namespace dfdbg::h264

// Property tests of repository-wide invariants:
//
//   1. Debugging invariance — stopping, resuming, recording and inspecting
//      never changes a deterministic application's behaviour (the paper's
//      claim that "the deterministic nature of dataflow communications
//      fades away the intrusiveness brought by debugger breakpoints").
//   2. Kernel determinism — identical programs produce identical
//      interleavings, timings and event orders across runs.
//   3. Tool-chain totality — randomly generated layered architectures
//      survive the whole pipeline: ADL emit -> parse -> analyze ->
//      instantiate -> elaborate -> run -> debugger graph reconstruction.
#include <gtest/gtest.h>

#include <sstream>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"

namespace dfdbg {
namespace {

// ---------------------------------------------------------------------------
// 1. Debugging invariance on the H.264 decoder
// ---------------------------------------------------------------------------

h264::H264AppConfig decoder_config() {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  return cfg;
}

struct Baseline {
  sim::SimTime end_time;
  std::vector<h264::Frame> frames;
};

Baseline undisturbed_run() {
  auto built = h264::H264App::build(decoder_config());
  EXPECT_TRUE(built.ok());
  (*built)->start();
  EXPECT_EQ((*built)->kernel().run(), sim::RunResult::kFinished);
  return Baseline{(*built)->kernel().now(), (*built)->store().decoded};
}

class DebugInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DebugInvariance, RandomDebuggingNeverChangesTheRun) {
  Baseline base = undisturbed_run();

  Prng prng(GetParam());
  auto built = h264::H264App::build(decoder_config());
  ASSERT_TRUE(built.ok());
  auto& app = **built;
  dbg::Session s(app.app());
  s.attach();

  // Random debugger configuration.
  static const char* kFilters[] = {"vld", "bh", "hwcfg", "pipe", "red", "ipred", "ipf"};
  static const char* kIfaces[] = {"pipe::Red2PipeCbMB_in", "ipred::Pipe_in",
                                  "ipf::Add2Dblock_ipred_in", "bh::mbhdr_in"};
  for (const char* f : kFilters) {
    if (prng.next_bool(0.5)) {
      ASSERT_TRUE(s.catch_work(f).ok());
    }
  }
  for (const char* i : kIfaces) {
    if (prng.next_bool(0.5)) {
      ASSERT_TRUE(s.break_on_receive(i).ok());
    }
  }
  if (prng.next_bool(0.5)) {
    ASSERT_TRUE(s.record_iface("hwcfg::pipe_MbType_out").ok());
  }
  if (prng.next_bool(0.5)) {
    ASSERT_TRUE(s.configure_behavior("red", dbg::ActorBehavior::kSplitter).ok());
  }
  if (prng.next_bool(0.3)) {
    ASSERT_TRUE(s.break_source_line("ipred", 221).ok());
  }

  app.start();
  // Continue through every stop, randomly inspecting state and toggling
  // time-limited runs in between.
  int stops = 0;
  for (;;) {
    sim::SimTime until =
        prng.next_bool(0.3) ? app.kernel().now() + prng.next_below(5000) + 1 : sim::kMaxSimTime;
    auto out = s.run(until);
    if (out.result == sim::RunResult::kFinished) break;
    ASSERT_NE(out.result, sim::RunResult::kDeadlock);
    stops++;
    ASSERT_LT(stops, 100000);
    if (prng.next_bool(0.2)) (void)cli::render_text(s.links_view());
    if (prng.next_bool(0.2)) (void)cli::render_or_error(s.sched_view("pred"));
    if (prng.next_bool(0.2)) (void)s.graph().to_dot(true);
    if (prng.next_bool(0.2)) (void)cli::render_or_error(s.last_token_view("pipe"));
  }
  EXPECT_EQ(app.kernel().now(), base.end_time) << "debugging changed the simulated timing";
  ASSERT_EQ(app.store().decoded.size(), base.frames.size());
  for (std::size_t i = 0; i < base.frames.size(); ++i)
    EXPECT_EQ(app.store().decoded[i], base.frames[i]) << "frame " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DebugInvariance, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------------
// 1b. Scheduling-policy ablation (DESIGN.md decision #1)
// ---------------------------------------------------------------------------

TEST(SchedulingAblation, LifoDispatchStillDecodesBitExact) {
  // Dataflow on blocking FIFO links is a Kahn process network: results are
  // independent of the scheduling policy. An adversarial LIFO dispatcher
  // changes the interleaving (and usually the timing) but must produce the
  // identical decoded video — the formal basis of the paper's claim that
  // debugger-induced slowdowns do not alter the execution semantics.
  Baseline fifo = undisturbed_run();

  auto built = h264::H264App::build(decoder_config());
  ASSERT_TRUE(built.ok());
  (*built)->kernel().set_ready_policy(sim::ReadyPolicy::kLifo);
  (*built)->start();
  EXPECT_EQ((*built)->kernel().run(), sim::RunResult::kFinished);
  ASSERT_EQ((*built)->store().decoded.size(), fifo.frames.size());
  for (std::size_t i = 0; i < fifo.frames.size(); ++i)
    EXPECT_EQ((*built)->store().decoded[i], fifo.frames[i]) << "frame " << i;
  EXPECT_TRUE((*built)->decoded_matches_golden());
}

TEST(SchedulingAblation, LifoChangesTheInterleaving) {
  // Sanity: the ablation is not vacuous — LIFO really schedules differently.
  auto dispatch_trail = [](sim::ReadyPolicy policy) {
    sim::Kernel k;
    k.set_ready_policy(policy);
    std::string trail;
    for (int i = 0; i < 4; ++i) {
      k.spawn("p" + std::to_string(i), [&k, &trail, i] {
        for (int r = 0; r < 3; ++r) {
          trail += static_cast<char>('a' + i);
          k.advance(0);
        }
      });
    }
    k.run();
    return trail;
  };
  EXPECT_NE(dispatch_trail(sim::ReadyPolicy::kFifo),
            dispatch_trail(sim::ReadyPolicy::kLifo));
}

// ---------------------------------------------------------------------------
// 2. Kernel determinism stress
// ---------------------------------------------------------------------------

/// Runs a randomized-but-seeded workload of processes exchanging waits,
/// notifies and time advances; returns the full observable event log.
std::string chaotic_run(std::uint64_t seed, int processes, int rounds) {
  sim::Kernel kernel;
  std::vector<std::unique_ptr<sim::Event>> events;
  for (int e = 0; e < processes; ++e)
    events.push_back(std::make_unique<sim::Event>("e" + std::to_string(e)));
  std::ostringstream log;
  for (int p = 0; p < processes; ++p) {
    kernel.spawn("p" + std::to_string(p), [&, p] {
      Prng prng(seed * 1000 + static_cast<std::uint64_t>(p));
      for (int r = 0; r < rounds; ++r) {
        switch (prng.next_below(3)) {
          case 0:
            kernel.advance(prng.next_below(50));
            break;
          case 1:
            // Wake the next process's event; somebody may be waiting.
            kernel.notify(*events[static_cast<std::size_t>((p + 1) % processes)]);
            break;
          case 2:
            // Wait only if a later notifier is still alive to free us.
            if (p + 1 < processes && r < rounds / 2)
              kernel.wait(*events[static_cast<std::size_t>(p)]);
            break;
        }
        log << p << ":" << r << "@" << kernel.now() << ";";
      }
    });
  }
  sim::RunResult result = kernel.run();
  log << to_string(result) << "@" << kernel.now();
  return log.str();
}

class KernelDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelDeterminism, IdenticalLogsAcrossRuns) {
  std::string a = chaotic_run(GetParam(), 6, 40);
  std::string b = chaotic_run(GetParam(), 6, 40);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 100u);  // the workload actually ran
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDeterminism,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// 3. Random layered architectures through the whole tool-chain
// ---------------------------------------------------------------------------

/// Emits the ADL of a layered graph: `width` filters per layer, `layers`
/// layers, each filter consuming one token from its same-index predecessor
/// and producing one (rate-1, so GenericFilter + DefaultController run it).
std::string layered_adl(int layers, int width) {
  std::ostringstream adl;
  adl << "@Filter\nprimitive Stage {\n  input U32 as in;\n  output U32 as out;\n"
         "  data stddefs.h:U32 scratch;\n  source stage.c;\n}\n";
  adl << "@Module\ncomposite Net {\n  contains as controller { source ctl.c; }\n";
  for (int w = 0; w < width; ++w) {
    adl << "  input U32 as in" << w << ";\n";
    adl << "  output U32 as out" << w << ";\n";
  }
  for (int l = 0; l < layers; ++l)
    for (int w = 0; w < width; ++w) adl << "  contains Stage as s" << l << "_" << w << ";\n";
  for (int w = 0; w < width; ++w) {
    adl << "  binds this.in" << w << " to s0_" << w << ".in;\n";
    for (int l = 1; l < layers; ++l)
      adl << "  binds s" << (l - 1) << "_" << w << ".out to s" << l << "_" << w << ".in;\n";
    adl << "  binds s" << (layers - 1) << "_" << w << ".out to this.out" << w << ";\n";
  }
  adl << "}\n";
  return adl.str();
}

class ToolchainSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ToolchainSweep, GeneratedArchitectureRunsEndToEnd) {
  auto [layers, width, steps] = GetParam();
  std::string text = layered_adl(layers, width);
  auto doc = mind::parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  auto rep = mind::analyze(*doc, "Net");
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  EXPECT_TRUE(rep->warnings.empty());

  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 2;
  pc.pes_per_cluster = 8;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "net");
  mind::FilterRegistry registry;
  registry.set_default_steps(static_cast<std::uint64_t>(steps));
  auto root = mind::instantiate(*doc, "Net", "net", app.types(), registry);
  ASSERT_TRUE(root.ok()) << root.status().message();
  app.set_root(std::move(*root));
  std::vector<pedf::HostSink*> sinks;
  for (int w = 0; w < width; ++w) {
    std::vector<pedf::Value> stream(static_cast<std::size_t>(steps), pedf::Value::u32(1));
    app.add_host_source("src" + std::to_string(w), "net.in" + std::to_string(w),
                        std::move(stream));
    sinks.push_back(&app.add_host_sink("snk" + std::to_string(w),
                                       "net.out" + std::to_string(w),
                                       static_cast<std::size_t>(steps)));
  }
  app.set_model_latencies(false);

  dbg::Session session(app);
  session.attach();
  ASSERT_TRUE(app.elaborate().ok());
  // Debugger reconstruction matches the generated architecture.
  EXPECT_EQ(session.graph().actors().size(), app.actors().size());
  EXPECT_EQ(static_cast<int>(app.links().size()), width * (layers + 1));

  app.start();
  ASSERT_EQ(kernel.run(), sim::RunResult::kFinished);
  for (pedf::HostSink* sink : sinks)
    EXPECT_EQ(sink->received().size(), static_cast<std::size_t>(steps));
  // Every stage fired exactly `steps` times.
  for (const pedf::Actor* a : app.actors()) {
    if (a->kind() != pedf::ActorKind::kFilter) continue;
    EXPECT_EQ(static_cast<const pedf::Filter*>(a)->firings(),
              static_cast<std::uint64_t>(steps))
        << a->path();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ToolchainSweep,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(4, 2, 8),
                                           std::make_tuple(3, 5, 2),
                                           std::make_tuple(6, 1, 16),
                                           std::make_tuple(2, 8, 3)));

}  // namespace
}  // namespace dfdbg

// Integration tests of the PEDF dataflow decoder: the full graph decodes
// bit-exactly against the golden reconstruction, and every seeded fault
// manifests with its expected symptom.
#include <gtest/gtest.h>

#include <set>

#include "dfdbg/h264/app.hpp"

namespace dfdbg::h264 {
namespace {

H264AppConfig small_config() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  cfg.params.qp = 20;
  return cfg;
}

TEST(H264App, BuildsAndElaborates) {
  auto app = H264App::build(small_config());
  ASSERT_TRUE(app.ok()) << app.status().message();
  EXPECT_TRUE((*app)->app().elaborated());
  EXPECT_FALSE((*app)->bitstream().empty());
  EXPECT_EQ((*app)->golden().size(), 2u);
}

TEST(H264App, GraphHasFigure4Actors) {
  auto app = H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  for (const char* name : {"vld", "bh", "hwcfg", "pipe", "red", "ipred", "mc", "ipf"}) {
    EXPECT_NE((*app)->app().filter_by_name(name), nullptr) << name;
  }
  EXPECT_NE((*app)->app().actor_by_name("front_controller"), nullptr);
  EXPECT_NE((*app)->app().actor_by_name("pred_controller"), nullptr);
  // The paper's key interfaces exist and are bound.
  for (const char* iface :
       {"pipe::Red2PipeCbMB_in", "ipred::Add2Dblock_ipf_out", "ipf::Add2Dblock_ipred_in",
        "hwcfg::pipe_MbType_out", "ipred::Pipe_in", "ipred::Hwcfg_in", "ipf::pipe_in"}) {
    auto pos = std::string(iface).find("::");
    EXPECT_NE((*app)->app().link_by_iface(iface), nullptr) << iface;
    (void)pos;
  }
}

TEST(H264App, DecodesBitExact) {
  auto app = H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_TRUE((*app)->decoded_matches_golden())
      << "first mismatching frame: " << (*app)->first_mismatch_frame();
  EXPECT_EQ((*app)->sink().received().size(),
            static_cast<std::size_t>((*app)->config().params.total_mbs()));
}

class DecodeSweep : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(DecodeSweep, BitExactAcrossConfigs) {
  auto [w, h, frames, qp] = GetParam();
  H264AppConfig cfg;
  cfg.params.width = w;
  cfg.params.height = h;
  cfg.params.frame_count = frames;
  cfg.params.qp = qp;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok()) << app.status().message();
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_TRUE((*app)->decoded_matches_golden())
      << "first mismatching frame: " << (*app)->first_mismatch_frame();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecodeSweep,
                         ::testing::Values(std::make_tuple(32, 32, 1, 20),
                                           std::make_tuple(48, 32, 3, 20),
                                           std::make_tuple(64, 48, 2, 12),
                                           std::make_tuple(32, 48, 2, 32),
                                           std::make_tuple(48, 48, 3, 8),
                                           std::make_tuple(96, 64, 4, 24)));

TEST(H264App, LatencyModelOffStillBitExact) {
  H264AppConfig cfg = small_config();
  cfg.model_latencies = false;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_TRUE((*app)->decoded_matches_golden());
}

TEST(H264App, DeterministicAcrossRuns) {
  // Two identical builds produce the same simulated end time and output.
  sim::SimTime t1, t2;
  {
    auto app = H264App::build(small_config());
    ASSERT_TRUE(app.ok());
    (*app)->start();
    (*app)->kernel().run();
    t1 = (*app)->kernel().now();
  }
  {
    auto app = H264App::build(small_config());
    ASSERT_TRUE(app.ok());
    (*app)->start();
    (*app)->kernel().run();
    t2 = (*app)->kernel().now();
  }
  EXPECT_EQ(t1, t2);
}

// --- fault injection -----------------------------------------------------------

TEST(H264Faults, RateMismatchAccumulatesOnPipeIpfLink) {
  H264AppConfig cfg = small_config();
  cfg.fault.kind = FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;  // every MB
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  (*app)->kernel().run();
  pedf::Link* l = (*app)->app().link_by_iface("ipf::pipe_in");
  ASSERT_NE(l, nullptr);
  // 24 control tokens pushed per MB, 1 consumed: a large backlog remains.
  EXPECT_GE(l->high_watermark(), 20u);
  EXPECT_GT(l->occupancy(), 0u);
}

TEST(H264Faults, CorruptSplitterProducesWrongOutputButTerminates) {
  H264AppConfig cfg = small_config();
  cfg.fault.kind = FaultPlan::Kind::kCorruptSplitter;
  cfg.fault.trigger_mb = 2;  // an intra MB of frame 0
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_FALSE((*app)->decoded_matches_golden());
  EXPECT_EQ((*app)->first_mismatch_frame(), 0);
}

TEST(H264Faults, DropConfigDeadlocks) {
  H264AppConfig cfg = small_config();
  cfg.fault.kind = FaultPlan::Kind::kDropConfig;
  cfg.fault.trigger_mb = 2;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kDeadlock);
  // ipred is the blocked party, waiting on its Hwcfg_in link.
  pedf::Actor* ipred = (*app)->app().actor_by_name("ipred");
  ASSERT_NE(ipred, nullptr);
  EXPECT_EQ(ipred->blocked().kind, pedf::BlockInfo::Kind::kLinkEmpty);
  ASSERT_NE(ipred->blocked().link, nullptr);
  EXPECT_NE(ipred->blocked().link->name().find("Hwcfg_in"), std::string::npos);
}

TEST(H264Faults, DropConfigUntiedByInjection) {
  H264AppConfig cfg = small_config();
  cfg.fault.kind = FaultPlan::Kind::kDropConfig;
  cfg.fault.trigger_mb = 2;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  ASSERT_EQ((*app)->kernel().run(), sim::RunResult::kDeadlock);
  // The debugger's alteration path: inject the missing config token.
  pedf::Link* cfg_link = (*app)->app().link_by_iface("ipred::Hwcfg_in");
  ASSERT_NE(cfg_link, nullptr);
  (*app)->app().debug_inject(*cfg_link,
                             pedf::Value::u32(static_cast<std::uint32_t>(cfg.params.qp)));
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  // The injected token carries the correct value: decode is bit-exact.
  EXPECT_TRUE((*app)->decoded_matches_golden());
}

TEST(H264Faults, SkipIpfEndsShortOfCompletion) {
  H264AppConfig cfg = small_config();
  cfg.fault.kind = FaultPlan::Kind::kSkipIpf;
  cfg.fault.trigger_mb = 1;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kDeadlock);
  EXPECT_LT((*app)->store().info.done_mbs, cfg.params.total_mbs());
  // Leftover, never-consumed tokens sit on ipf's inputs.
  pedf::Link* ctl = (*app)->app().link_by_iface("ipf::pipe_in");
  ASSERT_NE(ctl, nullptr);
  EXPECT_GT(ctl->occupancy(), 0u);
}

TEST(H264App, SkipMbsFlowThroughTheMcPath) {
  // Forced stream: frame 0 all intra-DC, frame 1 all P_Skip. The dataflow
  // decoder must route every skip MB through mc and stay bit-exact (frame 1
  // becomes a copy of frame 0's reconstruction).
  H264AppConfig cfg = small_config();
  cfg.forced_modes.assign(static_cast<std::size_t>(cfg.params.total_mbs()),
                          MbMode::kIntraDC);
  for (int i = cfg.params.mbs_per_frame(); i < cfg.params.total_mbs(); ++i)
    cfg.forced_modes[static_cast<std::size_t>(i)] = MbMode::kSkip;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok()) << app.status().message();
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_TRUE((*app)->decoded_matches_golden());
  // All frame-1 MBs went through mc; ipred only saw frame 0.
  int per_frame = cfg.params.mbs_per_frame();
  EXPECT_EQ((*app)->app().link_by_iface("mc::pipe_in")->push_index(),
            static_cast<std::uint64_t>(per_frame) * CodecParams::kBlocksPerMb);
  EXPECT_EQ((*app)->app().link_by_iface("ipred::Pipe_in")->push_index(),
            static_cast<std::uint64_t>(per_frame) * CodecParams::kBlocksPerMb);
  // Skip = zero residual: frame 1 equals frame 0 after the deblock-free copy.
  ASSERT_EQ((*app)->store().decoded.size(), 2u);
}

TEST(H264App, MbTypeCodesMatchPaperValues) {
  // hwcfg emits 5/10/15 for the three intra modes (paper's recorded values).
  EXPECT_EQ(mbtype_code(MbMode::kIntraDC), 5);
  EXPECT_EQ(mbtype_code(MbMode::kIntraH), 10);
  EXPECT_EQ(mbtype_code(MbMode::kIntraV), 15);
  EXPECT_EQ(mbtype_code(MbMode::kInter), 20);
}

TEST(H264App, BoundedPipeIpfCapacityStallsRateBug) {
  H264AppConfig cfg = small_config();
  cfg.fault.kind = FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;
  cfg.pipe_ipf_capacity = 32;
  auto app = H264App::build(cfg);
  ASSERT_TRUE(app.ok());
  (*app)->start();
  // The bounded link fills; pipe blocks pushing; the graph deadlocks.
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kDeadlock);
  pedf::Actor* pipe = (*app)->app().actor_by_name("pipe");
  ASSERT_NE(pipe, nullptr);
  EXPECT_EQ(pipe->blocked().kind, pedf::BlockInfo::Kind::kLinkFull);
}

}  // namespace
}  // namespace dfdbg::h264

// Tests of the GDB-style command interpreter: command parsing, transcript
// output, value/expression handling, auto-completion, error reporting.
#include <gtest/gtest.h>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/h264/app.hpp"

namespace dfdbg::cli {
namespace {

using h264::H264App;
using h264::H264AppConfig;

struct CliRig {
  std::unique_ptr<H264App> app;
  std::unique_ptr<dbg::Session> session;
  std::unique_ptr<Interpreter> gdb;

  explicit CliRig(H264AppConfig cfg = make_config()) {
    auto built = H264App::build(cfg);
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<dbg::Session>(app->app());
    session->attach();
    app->start();
    gdb = std::make_unique<Interpreter>(*session);
  }

  static H264AppConfig make_config() {
    H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    return cfg;
  }

  std::string exec(const std::string& line) {
    gdb->execute(line);
    return gdb->console().take();
  }
};

TEST(Cli, EmptyAndCommentLinesAreNoOps) {
  CliRig rig;
  EXPECT_TRUE(rig.gdb->execute("").ok());
  EXPECT_TRUE(rig.gdb->execute("   ").ok());
  EXPECT_TRUE(rig.gdb->execute("# just a comment").ok());
  EXPECT_EQ(rig.gdb->console().take(), "");
}

TEST(Cli, UnknownCommandReported) {
  CliRig rig;
  EXPECT_FALSE(rig.gdb->execute("bogus").ok());
  EXPECT_NE(rig.gdb->console().take().find("unknown command"), std::string::npos);
}

TEST(Cli, CatchWorkTranscript) {
  CliRig rig;
  std::string out = rig.exec("filter pipe catch work");
  EXPECT_NE(out.find("stop when WORK of filter `pipe' is triggered"), std::string::npos);
  out = rig.exec("run");
  EXPECT_NE(out.find("[Stopped at WORK entry of filter `pipe']"), std::string::npos);
}

TEST(Cli, CatchTokensWithCommaSpace) {
  // The paper writes "catch Pipe_in=1, Hwcfg_in=1" with a space after the
  // comma; the tokenizer must fuse the condition.
  CliRig rig;
  std::string out = rig.exec("filter ipred catch Pipe_in=1, Hwcfg_in=1");
  EXPECT_NE(out.find("Catchpoint"), std::string::npos);
  out = rig.exec("run");
  EXPECT_NE(out.find("received required tokens (Pipe_in=1, Hwcfg_in=1)"), std::string::npos);
}

TEST(Cli, CatchWildcardInputs) {
  CliRig rig;
  std::string out = rig.exec("filter ipred catch *in=1");
  EXPECT_NE(out.find("Catchpoint"), std::string::npos);
  out = rig.exec("run");
  EXPECT_NE(out.find("Stopped: filter `ipred' received required tokens"), std::string::npos);
}

TEST(Cli, CatchSingleInterfaceByName) {
  CliRig rig;
  rig.exec("filter pipe catch Red2PipeCbMB_in");
  std::string out = rig.exec("run");
  EXPECT_NE(out.find("[Stopped after receiving token from `pipe::Red2PipeCbMB_in']"),
            std::string::npos);
}

TEST(Cli, FilterPrintLastTokenAndHistory) {
  CliRig rig;
  rig.exec("filter pipe catch Red2PipeCbMB_in");
  rig.exec("run");
  std::string out = rig.exec("filter print last_token");
  EXPECT_NE(out.find("$1 = (CbCrMB_t){Addr=0x1000"), std::string::npos);
  out = rig.exec("print $1");
  EXPECT_NE(out.find("$2 = (CbCrMB_t){"), std::string::npos);
  out = rig.exec("print $1.Izz");
  EXPECT_NE(out.find("$3 = (U32)"), std::string::npos);
}

TEST(Cli, PrintFilterVariables) {
  CliRig rig;
  rig.exec("filter pipe catch work");
  rig.exec("run");
  rig.exec("run");
  std::string out = rig.exec("print vld.data.mbs_parsed");
  EXPECT_NE(out.find("= (U32)"), std::string::npos);
  out = rig.exec("print vld.data.nope");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, RecordAndPrintIface) {
  CliRig rig;
  rig.exec("iface hwcfg::pipe_MbType_out record");
  rig.exec("filter ipred catch work");
  rig.exec("run");
  std::string out = rig.exec("iface hwcfg::pipe_MbType_out print");
  EXPECT_NE(out.find("#1 (U16)"), std::string::npos);
}

TEST(Cli, RecordOnInputInterface) {
  // Recording works on the receive side too (fed by the pop finish
  // breakpoint with the actually-delivered value).
  CliRig rig;
  rig.exec("iface pipe::Red2PipeCbMB_in record");
  rig.exec("filter pipe catch work");
  rig.exec("run");
  rig.exec("run");
  std::string out = rig.exec("iface pipe::Red2PipeCbMB_in print");
  EXPECT_NE(out.find("#1 (CbCrMB_t){Addr=0x1000"), std::string::npos) << out;
}

TEST(Cli, PrintRecordedUnknownIface) {
  CliRig rig;
  std::string out = rig.exec("iface ghost::port print");
  EXPECT_NE(out.find("not recorded"), std::string::npos);
}

TEST(Cli, GraphToFile) {
  CliRig rig;
  const char* path = "/tmp/dfdbg_graph_test.dot";
  std::string out = rig.exec(std::string("graph tokens > ") + path);
  EXPECT_NE(out.find("Graph written"), std::string::npos);
  FILE* f = std::fopen(path, "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof buf - 1, f), 0u);
  std::fclose(f);
  EXPECT_NE(std::string(buf).find("digraph"), std::string::npos);
  std::remove(path);
}

TEST(Cli, ConfigureSplitter) {
  CliRig rig;
  std::string out = rig.exec("filter red configure splitter");
  EXPECT_NE(out.find("configured as splitter"), std::string::npos);
  out = rig.exec("filter red configure nonsense");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, InfoLastTokenTranscript) {
  CliRig rig;
  rig.exec("filter red configure splitter");
  rig.exec("filter pipe catch Red2PipeCbMB_in");
  rig.exec("run");
  std::string out = rig.exec("filter pipe info last_token");
  EXPECT_NE(out.find("#1 red -> pipe (CbCrMB_t){"), std::string::npos);
  EXPECT_NE(out.find("#2 bh -> red (U32)"), std::string::npos);
}

TEST(Cli, StepBothWithExplicitIface) {
  CliRig rig;
  std::string out = rig.exec("step_both ipred::Add2Dblock_ipf_out");
  EXPECT_NE(out.find("Temporary breakpoint inserted after input interface"), std::string::npos);
  EXPECT_NE(out.find("Temporary breakpoint inserted after outpu"), std::string::npos);
  out = rig.exec("continue");
  EXPECT_NE(out.find("[Stopped after sending token on `ipred::Add2Dblock_ipf_out']"),
            std::string::npos);
  out = rig.exec("continue");
  EXPECT_NE(out.find("[Stopped after receiving token from `ipf::Add2Dblock_ipred_in']"),
            std::string::npos);
}

TEST(Cli, GraphCommand) {
  CliRig rig;
  std::string out = rig.exec("graph");
  EXPECT_NE(out.find("digraph app"), std::string::npos);
  out = rig.exec("graph tokens");
  EXPECT_NE(out.find("[0]"), std::string::npos);
}

TEST(Cli, InfoSubcommands) {
  CliRig rig;
  rig.exec("filter pipe catch work");
  rig.exec("run");
  EXPECT_NE(rig.exec("info links").find("pipe_MbType_out"), std::string::npos);
  EXPECT_NE(rig.exec("info sched pred").find("module `pred'"), std::string::npos);
  EXPECT_NE(rig.exec("info actors").find("h264.pred.ipred"), std::string::npos);
  EXPECT_NE(rig.exec("info breakpoints").find("catch work"), std::string::npos);
  EXPECT_NE(rig.exec("info tokens").find("retained="), std::string::npos);
  EXPECT_NE(rig.exec("info nonsense").find("error:"), std::string::npos);
}

TEST(Cli, BreakpointLifecycle) {
  CliRig rig;
  rig.exec("filter pipe catch work");
  std::string out = rig.exec("info breakpoints");
  EXPECT_NE(out.find("0"), std::string::npos);
  EXPECT_TRUE(rig.gdb->execute("disable 0").ok());
  EXPECT_TRUE(rig.gdb->execute("enable 0").ok());
  EXPECT_TRUE(rig.gdb->execute("delete 0").ok());
  rig.gdb->console().take();
  EXPECT_EQ(rig.exec("info breakpoints"), "");
}

TEST(Cli, SourceBreakAndList) {
  CliRig rig;
  std::string out = rig.exec("break ipred:221");
  EXPECT_NE(out.find("Breakpoint"), std::string::npos);
  out = rig.exec("run");
  EXPECT_NE(out.find("filter `ipred' at line 221"), std::string::npos);
  out = rig.exec("list ipred 221");
  EXPECT_NE(out.find("pedf.io.Add2Dblock_ipf_out"), std::string::npos);
  out = rig.exec("list");  // defaults to the current filter
  EXPECT_NE(out.find("ipred.c"), std::string::npos);
}

TEST(Cli, WatchCommand) {
  CliRig rig;
  std::string out = rig.exec("watch vld data mbs_parsed");
  EXPECT_NE(out.find("Watchpoint"), std::string::npos);
  out = rig.exec("run");
  EXPECT_NE(out.find("vld.data.mbs_parsed changed"), std::string::npos);
}

TEST(Cli, TokInsertDelSet) {
  CliRig rig;
  // Tokens can be staged before anything runs (simulation is stopped).
  std::string out = rig.exec("tok insert ipred::Hwcfg_in 20");
  EXPECT_NE(out.find("Token inserted"), std::string::npos);
  out = rig.exec("tok set ipred::Hwcfg_in 0 21");
  EXPECT_NE(out.find("modified"), std::string::npos);
  out = rig.exec("tok del ipred::Hwcfg_in 0");
  EXPECT_NE(out.find("deleted"), std::string::npos);
  out = rig.exec("tok del ipred::Hwcfg_in 5");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, TokInsertStructValue) {
  CliRig rig;
  std::string out = rig.exec("tok insert pipe::Red2PipeCbMB_in Addr=0x145D,InterNotIntra=1,Izz=7");
  EXPECT_NE(out.find("Token inserted"), std::string::npos);
  pedf::Link* l = rig.app->app().link_by_iface("pipe::Red2PipeCbMB_in");
  ASSERT_EQ(l->occupancy(), 1u);
  EXPECT_EQ(l->peek(0).field_u64("Addr"), 0x145Du);
  out = rig.exec("tok insert pipe::Red2PipeCbMB_in NoField=3");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, DataExchangeToggleAndFocus) {
  CliRig rig;
  std::string out = rig.exec("disable data-exchange");
  EXPECT_NE(out.find("[Data-exchange breakpoints disabled]"), std::string::npos);
  out = rig.exec("enable data-exchange");
  EXPECT_NE(out.find("[Data-exchange breakpoints enabled]"), std::string::npos);
  out = rig.exec("focus ipred::Pipe_in ipred::Hwcfg_in");
  EXPECT_NE(out.find("restricted to 2 interface(s)"), std::string::npos);
  out = rig.exec("unfocus");
  EXPECT_NE(out.find("restored"), std::string::npos);
}

TEST(Cli, ScriptRunsAndCountsFailures) {
  CliRig rig;
  int failures = rig.gdb->run_script({
      "filter pipe catch work",
      "bogus command",
      "run",
  });
  EXPECT_EQ(failures, 1);
  EXPECT_NE(rig.gdb->console().take().find("[Stopped at WORK entry"), std::string::npos);
}

TEST(Cli, HelpListsThePaperCommands) {
  CliRig rig;
  std::string out = rig.exec("help");
  for (const char* cmd : {"catch work", "step_both", "configure splitter", "last_token",
                          "record", "focus", "data-exchange"})
    EXPECT_NE(out.find(cmd), std::string::npos) << cmd;
}

TEST(Cli, SourceRunsScriptFile) {
  CliRig rig;
  const char* path = "/tmp/dfdbg_test_script.gdb";
  FILE* f = std::fopen(path, "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment line\nfilter pipe catch work\nrun\n", f);
  std::fclose(f);
  ASSERT_TRUE(rig.gdb->execute(std::string("source ") + path).ok());
  EXPECT_NE(rig.gdb->console().take().find("[Stopped at WORK entry of filter `pipe']"),
            std::string::npos);
  std::remove(path);
}

TEST(Cli, SourceMissingFileFails) {
  CliRig rig;
  EXPECT_FALSE(rig.gdb->execute("source /nonexistent/script").ok());
}

TEST(Cli, SaveThenSourceReplaysTheSetup) {
  const char* path = "/tmp/dfdbg_saved_session.gdb";
  {
    CliRig rig;
    rig.exec("filter pipe catch work");
    rig.exec("filter red configure splitter");
    rig.exec("iface hwcfg::pipe_MbType_out record");
    rig.exec("break ipred:221");
    rig.exec("run");                 // not replayable
    rig.exec("info breakpoints");    // query, not replayable
    std::string out = rig.exec(std::string("save ") + path);
    EXPECT_NE(out.find("Saved 4 command(s)"), std::string::npos) << out;
  }
  {
    CliRig rig;
    ASSERT_TRUE(rig.gdb->execute(std::string("source ") + path).ok());
    EXPECT_EQ(rig.session->breakpoints().size(), 2u);  // catch work + line bp
    EXPECT_TRUE(rig.session->recorder().enabled("hwcfg::pipe_MbType_out"));
    EXPECT_EQ(rig.session->graph().actor_by_name("red")->behavior,
              dbg::ActorBehavior::kSplitter);
  }
  std::remove(path);
}

TEST(Cli, ExportJsonState) {
  CliRig rig;
  rig.exec("filter pipe catch work");
  rig.exec("run");
  std::string json = rig.exec("export");
  EXPECT_NE(json.find("\"actors\""), std::string::npos);
  EXPECT_NE(json.find("\"links\""), std::string::npos);
  EXPECT_NE(json.find("\"breakpoints\""), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"h264.pred.pipe\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"catch-work\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_str = !in_str;
    if (in_str) continue;
    if (c == '{') braces++;
    if (c == '}') braces--;
    if (c == '[') brackets++;
    if (c == ']') brackets--;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// --- auto-completion (paper Contribution #1's UX) ------------------------------

TEST(CliCompletion, CommandPrefix) {
  CliRig rig;
  auto c = rig.gdb->complete("fi");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], "filter");
}

TEST(CliCompletion, FilterNames) {
  CliRig rig;
  auto c = rig.gdb->complete("filter ip");
  ASSERT_EQ(c.size(), 2u);  // ipf, ipred
  EXPECT_EQ(c[0], "ipf");
  EXPECT_EQ(c[1], "ipred");
}

TEST(CliCompletion, FilterVerbs) {
  CliRig rig;
  auto c = rig.gdb->complete("filter ipred c");
  EXPECT_NE(std::find(c.begin(), c.end(), "catch"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "configure"), c.end());
}

TEST(CliCompletion, CatchSuggestsFilterInputs) {
  CliRig rig;
  auto c = rig.gdb->complete("filter ipred catch ");
  EXPECT_NE(std::find(c.begin(), c.end(), "Pipe_in"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "Hwcfg_in"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "work"), c.end());
}

TEST(CliCompletion, IfaceNames) {
  CliRig rig;
  auto c = rig.gdb->complete("iface hwcfg::");
  EXPECT_NE(std::find(c.begin(), c.end(), "hwcfg::pipe_MbType_out"), c.end());
}

}  // namespace
}  // namespace dfdbg::cli

// Tests of deterministic time travel (reverse-continue by re-execution).
#include <gtest/gtest.h>

#include "dfdbg/dbgcli/timetravel.hpp"
#include "dfdbg/h264/app.hpp"

namespace dfdbg::cli {
namespace {

/// H264App wrapped as a rebuildable instance.
class H264Replay : public ReplayInstance {
 public:
  explicit H264Replay(const h264::H264AppConfig& cfg) {
    auto built = h264::H264App::build(cfg);
    EXPECT_TRUE(built.ok());
    app_ = std::move(*built);
  }
  pedf::Application& app() override { return app_->app(); }
  void start() override { app_->start(); }
  h264::H264App& h264() { return *app_; }

 private:
  std::unique_ptr<h264::H264App> app_;
};

ReplayFactory factory() {
  return [] {
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    return std::unique_ptr<ReplayInstance>(new H264Replay(cfg));
  };
}

TEST(TimeTravel, ReverseContinueReturnsToThePreviousStop) {
  TimeTravelDebugger tt(factory());
  ASSERT_TRUE(tt.execute("filter pipe catch work").ok());
  // Take three stops, remembering the simulated time of each.
  std::vector<sim::SimTime> times;
  for (int i = 0; i < 3; ++i) {
    auto out = tt.cont();
    ASSERT_EQ(out.result, sim::RunResult::kStopped);
    times.push_back(out.stops[0].time);
  }
  EXPECT_EQ(tt.stop_count(), 3u);
  // Travel back: the session is now exactly at stop 2.
  ASSERT_TRUE(tt.reverse_continue().ok());
  EXPECT_EQ(tt.stop_count(), 2u);
  ASSERT_FALSE(tt.session().history().empty());
  EXPECT_EQ(tt.session().history().back().time, times[1]);
  // Forward again: determinism lands on the same third stop.
  auto out = tt.cont();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].time, times[2]);
}

TEST(TimeTravel, TravelToArbitraryStop) {
  TimeTravelDebugger tt(factory());
  ASSERT_TRUE(tt.execute("filter ipred catch work").ok());
  std::vector<sim::SimTime> times;
  for (int i = 0; i < 4; ++i) {
    auto out = tt.cont();
    ASSERT_EQ(out.result, sim::RunResult::kStopped);
    times.push_back(out.stops[0].time);
  }
  ASSERT_TRUE(tt.travel_to(1).ok());
  EXPECT_EQ(tt.stop_count(), 1u);
  EXPECT_EQ(tt.session().history().back().time, times[0]);
  ASSERT_TRUE(tt.travel_to(0).ok());
  EXPECT_EQ(tt.stop_count(), 0u);
}

TEST(TimeTravel, CannotReverseAtTheBeginning) {
  TimeTravelDebugger tt(factory());
  Status s = tt.reverse_continue();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("beginning"), std::string::npos);
}

TEST(TimeTravel, CannotTravelForward) {
  TimeTravelDebugger tt(factory());
  ASSERT_TRUE(tt.execute("filter pipe catch work").ok());
  tt.cont();
  EXPECT_FALSE(tt.travel_to(5).ok());
}

TEST(TimeTravel, MidSessionSetupReplaysAtTheRightPosition) {
  TimeTravelDebugger tt(factory());
  ASSERT_TRUE(tt.execute("filter pipe catch work").ok());
  auto out = tt.cont();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  // A breakpoint added *after* the first stop...
  ASSERT_TRUE(tt.execute("filter ipred catch work").ok());
  out = tt.cont();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  sim::SimTime second = out.stops[0].time;
  // ...must be armed at the same position during the replay, so traveling
  // back to stop 2 reproduces the identical stop.
  ASSERT_TRUE(tt.travel_to(2).ok());
  EXPECT_EQ(tt.session().history().back().time, second);
}

TEST(TimeTravel, StateInspectionAfterTravel) {
  TimeTravelDebugger tt(factory());
  ASSERT_TRUE(tt.execute("filter pipe catch work").ok());
  tt.cont();
  tt.cont();
  ASSERT_TRUE(tt.reverse_continue().ok());
  // The rebuilt world is live: framework state matches one firing of pipe.
  auto v = tt.session().read_variable("vld", "data", "mbs_parsed");
  ASSERT_TRUE(v.ok());
  EXPECT_GE(v->as_u64(), 1u);
  EXPECT_EQ(tt.session().graph().actor_by_name("pipe")->firings, 1u);
}

}  // namespace
}  // namespace dfdbg::cli

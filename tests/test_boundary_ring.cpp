// Tests of the lock-free SPSC BoundaryChannel behind partition-crossing
// links: the deterministic publish/eager-drain round protocol (coordinator
// snapshots bound what the consumer may deliver and what the producer may
// count as freed), ring wraparound far past the physical slot count, uid
// preservation end to end, and the raw acquire/release SPSC surface under a
// genuinely concurrent producer/consumer pair (the TSan gate runs that one
// with -fsanitize=thread; see scripts/check_build.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/pedf/boundary.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::pedf {
namespace {

Link make_link() { return Link(LinkId(0), "t", TypeDesc(ScalarType::kU32), nullptr, nullptr); }

// --- deterministic round protocol -------------------------------------------

// Randomized single-threaded model check, driven through the same protocol
// the kernel uses: producer sends until the snapshot says full, coordinator
// publishes between "rounds", consumer eager-drains below the limit and pops
// from the link. A shadow FIFO carries every (value, uid) pair; thousands of
// cycles over an 8-slot channel force many wraps of the physical ring.
TEST(BoundaryRing, RandomizedModelWraparoundFifoAndUids) {
  sim::Kernel k;
  Link l = make_link();
  l.set_capacity(4);
  BoundaryChannel ch(l, 8);
  EXPECT_EQ(ch.capacity(), 8u);
  EXPECT_EQ(ch.slot_count(), 8u) << "8 is already a power of two";

  Prng rng(0xB0DA);
  std::deque<std::pair<std::uint32_t, std::uint64_t>> shadow;  // in flight
  std::uint32_t next_val = 0;
  std::uint64_t next_uid = 1000;
  std::uint64_t sent = 0, delivered = 0, popped = 0;

  for (int step = 0; step < 20000; ++step) {
    switch (rng.next_below(4)) {
      case 0: {  // producer: send if the snapshot allows it
        if (ch.full()) {
          EXPECT_GE(ch.sent() - delivered + l.occupancy(), 0u);
          break;
        }
        const std::uint32_t v = next_val++;
        const std::uint64_t uid = next_uid++;
        EXPECT_EQ(ch.send(Value::u32(v), uid), sent);
        shadow.emplace_back(v, uid);
        sent++;
        break;
      }
      case 1: {  // coordinator: end-of-round publish
        ch.publish(k);
        break;
      }
      case 2: {  // consumer shard: eager drain below the published limit
        const std::size_t moved = ch.drain_eligible(k);
        delivered += moved;
        EXPECT_EQ(ch.delivered(), delivered);
        break;
      }
      default: {  // consumer process: pop delivered tokens off the link
        if (l.empty()) break;
        ASSERT_FALSE(shadow.empty());
        const auto [v, uid] = shadow.front();
        shadow.pop_front();
        EXPECT_EQ(l.token_uid_at(0), uid);
        EXPECT_EQ(l.pop_raw().as_u64(), v);
        EXPECT_EQ(l.last_popped_uid(), uid);
        popped++;
        break;
      }
    }
    // Conservation: every token is exactly one of queued-in-ring,
    // delivered-into-link, or popped.
    EXPECT_EQ(ch.pending() + l.occupancy() + popped, sent);
    EXPECT_LE(ch.sent() - ch.delivered(), ch.slot_count());
  }
  // Drain the tail: everything still in flight comes out in order.
  ch.drain(k);
  while (!l.empty()) {
    ASSERT_FALSE(shadow.empty());
    const auto [v, uid] = shadow.front();
    shadow.pop_front();
    EXPECT_EQ(l.pop_raw().as_u64(), v);
    EXPECT_EQ(l.last_popped_uid(), uid);
    popped++;
    ch.drain(k);  // link room reopened: deliver the next batch
  }
  EXPECT_TRUE(shadow.empty());
  EXPECT_EQ(popped, sent);
  EXPECT_GT(sent, ch.slot_count() * 100) << "the ring must have wrapped many times";
}

// The determinism contract itself: tokens sent after a publish are invisible
// to the consumer until the next publish (the delivered set is bounded by the
// coordinator's snapshot, not by live producer progress), and slots consumed
// by the consumer are invisible to the producer's full() until a publish
// reclaims them.
TEST(BoundaryRing, SnapshotsBoundVisibilityAndReclaim) {
  sim::Kernel k;
  Link l = make_link();  // unbounded link: only the channel limits flow
  BoundaryChannel ch(l, 4);

  // Sends before any publish: nothing is eligible.
  ch.send(Value::u32(1), 11);
  ch.send(Value::u32(2), 12);
  EXPECT_FALSE(ch.eligible());
  EXPECT_EQ(ch.drain_eligible(k), 0u);
  EXPECT_TRUE(ch.has_unpublished());

  ch.publish(k);
  EXPECT_TRUE(ch.eligible());
  // A send racing in after the publish is not part of this round's set.
  ch.send(Value::u32(3), 13);
  EXPECT_EQ(ch.drain_eligible(k), 2u);
  EXPECT_EQ(l.occupancy(), 2u);
  EXPECT_FALSE(ch.eligible()) << "token 3 must wait for the next publish";

  // Fill to the logical capacity: full() measures against freed_, so the
  // two delivered-but-unreclaimed slots still count.
  ch.send(Value::u32(4), 14);
  EXPECT_TRUE(ch.full());
  ch.publish(k);  // reclaims the two delivered slots, publishes 3 and 4
  EXPECT_FALSE(ch.full());
  EXPECT_EQ(ch.drain_eligible(k), 2u);
  std::vector<std::uint64_t> uids;
  while (!l.empty()) {
    uids.push_back(l.token_uid_at(0));
    l.pop_raw();
  }
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{11, 12, 13, 14}));
  // The last deliveries still await slot reclaim — an "unpublished" effect
  // the coordinator must see (it keeps the round from eliding) until one
  // more publish absorbs it.
  EXPECT_TRUE(ch.has_unpublished());
  ch.publish(k);
  EXPECT_FALSE(ch.has_unpublished());
}

// drain() is the full coordinator drain used at quiescence and debug stops:
// one call makes everything sent so far visible, regardless of snapshots.
TEST(BoundaryRing, FullDrainBypassesStaleSnapshots) {
  sim::Kernel k;
  Link l = make_link();
  BoundaryChannel ch(l, 8);
  for (std::uint32_t i = 0; i < 5; ++i) ch.send(Value::u32(i), 100 + i);
  EXPECT_TRUE(ch.drain(k));
  EXPECT_EQ(l.occupancy(), 5u);
  EXPECT_EQ(ch.pending(), 0u);
  EXPECT_FALSE(ch.has_unpublished());
  EXPECT_FALSE(ch.drain(k)) << "a second drain has nothing to move";
}

// Channel capacity is decoupled from the physical ring: a non-power-of-two
// capacity rounds the slot count up while full() still honors the logical
// bound exactly.
TEST(BoundaryRing, NonPowerOfTwoCapacity) {
  sim::Kernel k;
  Link l = make_link();
  BoundaryChannel ch(l, 5);
  EXPECT_EQ(ch.capacity(), 5u);
  EXPECT_EQ(ch.slot_count(), 8u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(ch.full());
    ch.send(Value::u32(i), i);
  }
  EXPECT_TRUE(ch.full());
  ch.publish(k);
  EXPECT_EQ(ch.drain_eligible(k), 5u);
}

// --- raw SPSC surface --------------------------------------------------------

// Single-threaded edges of the acquire/release surface: full and empty are
// reported (not asserted), and order/uids survive wraparound.
TEST(BoundaryRing, SpscSingleThreadEdges) {
  Link l = make_link();
  BoundaryChannel ch(l, 4);
  Value v;
  std::uint64_t uid = 0;
  EXPECT_FALSE(ch.spsc_take(v, uid)) << "empty ring must refuse";
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (std::uint32_t i = 0; i < 4; ++i)
      EXPECT_TRUE(ch.spsc_send(Value::u32(cycle * 4 + i), 900 + cycle * 4 + i));
    EXPECT_FALSE(ch.spsc_send(Value::u32(0), 0)) << "full ring must refuse";
    for (std::uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(ch.spsc_take(v, uid));
      EXPECT_EQ(v.as_u64(), static_cast<std::uint64_t>(cycle) * 4 + i);
      EXPECT_EQ(uid, 900u + static_cast<std::uint64_t>(cycle) * 4 + i);
    }
    EXPECT_FALSE(ch.spsc_take(v, uid));
  }
}

// Two genuinely concurrent threads hammer the ring through the raw surface —
// the test the TSan suite builds with -fsanitize=thread to prove the
// acquire/release counter protocol has no data race. Functionally it also
// pins lossless in-order delivery under arbitrary interleavings.
TEST(BoundaryRing, SpscTwoThreadStress) {
  Link l = make_link();
  BoundaryChannel ch(l, 16);
  constexpr std::uint32_t kTokens = 200000;
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kTokens;) {
      if (ch.spsc_send(Value::u32(i), 1u + i))
        ++i;
      else
        std::this_thread::yield();
    }
  });
  std::uint64_t mismatches = 0;
  Value v;
  std::uint64_t uid = 0;
  for (std::uint32_t i = 0; i < kTokens;) {
    if (ch.spsc_take(v, uid)) {
      if (v.as_u64() != i || uid != 1u + i) mismatches++;
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(mismatches, 0u);
  EXPECT_FALSE(ch.spsc_take(v, uid)) << "no token may be left behind";
}

}  // namespace
}  // namespace dfdbg::pedf

// Per-filter semantic tests of the PEDF decoder, verified through the
// debugger's own token recording — every stage's token stream is compared
// against the encoder-side ground truth.
#include <gtest/gtest.h>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"

namespace dfdbg::h264 {
namespace {

struct Rig {
  std::unique_ptr<H264App> app;
  std::unique_ptr<dbg::Session> session;

  Rig() {
    H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 2;
    auto built = H264App::build(cfg);
    EXPECT_TRUE(built.ok());
    app = std::move(*built);
    session = std::make_unique<dbg::Session>(app->app());
    session->attach();
  }

  /// Records `iface`, runs to completion, returns the recorded stream.
  const std::deque<dbg::TokenRecorder::Record>& run_recording(const std::string& iface) {
    EXPECT_TRUE(session->record_iface(iface).ok());
    app->start();
    auto out = session->run();
    EXPECT_EQ(out.result, sim::RunResult::kFinished);
    const auto* rec = session->recorder().records(iface);
    EXPECT_NE(rec, nullptr);
    return *rec;
  }
};

TEST(VldFilter, HeaderStreamParsedIntoPerMbSyntax) {
  // vld's MbHdr_t stream must mirror the encoder's per-MB decisions 1:1.
  Rig rig;
  const auto& rec = rig.run_recording("vld::mbhdr_out");
  const auto& syntax = rig.app->syntax();
  ASSERT_EQ(rec.size(), syntax.size());
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const pedf::Value& v = rec[i].value;
    EXPECT_EQ(v.field_u64("Mode"), static_cast<std::uint64_t>(syntax[i].mode)) << "MB " << i;
    EXPECT_EQ(v.field_u64("Addr"), 0x1000u + i * 0x40u) << "MB " << i;
    auto dx = static_cast<std::int32_t>(static_cast<std::uint32_t>(v.field_u64("Dx")));
    auto dy = static_cast<std::int32_t>(static_cast<std::uint32_t>(v.field_u64("Dy")));
    if (syntax[i].mode == MbMode::kInter) {
      EXPECT_EQ(dx, syntax[i].mv.dx) << "MB " << i;
      EXPECT_EQ(dy, syntax[i].mv.dy) << "MB " << i;
    }
  }
}

TEST(VldFilter, CoefficientStreamCarriesTheResiduals) {
  Rig rig;
  const auto& rec = rig.run_recording("vld::coeff_out");
  const auto& syntax = rig.app->syntax();
  ASSERT_EQ(rec.size(), syntax.size() * CodecParams::kBlocksPerMb);
  // Spot-check every 7th block token against the encoder's coefficients.
  for (std::size_t t = 0; t < rec.size(); t += 7) {
    std::size_t mb = t / CodecParams::kBlocksPerMb;
    std::size_t blk = t % CodecParams::kBlocksPerMb;
    const pedf::Value& v = rec[t].value;
    EXPECT_EQ(v.field_u64("BlkIdx"), blk);
    int n = static_cast<int>(v.field_u64("N"));
    const auto& q = rig.app->syntax()[mb].qcoef[blk];
    for (int i = 0; i < n; ++i) {
      auto coef = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(v.field_u64(("C" + std::to_string(i)).c_str())));
      EXPECT_EQ(coef, q[static_cast<std::size_t>(i)]) << "mb " << mb << " blk " << blk;
    }
    for (int i = n; i < 16; ++i)
      EXPECT_EQ(q[static_cast<std::size_t>(i)], 0) << "trailing zero expected";
  }
}

TEST(BhFilter, SummaryEncodesIndexAndMode) {
  Rig rig;
  const auto& rec = rig.run_recording("bh::bh2red_out");
  const auto& syntax = rig.app->syntax();
  ASSERT_EQ(rec.size(), syntax.size());
  for (std::size_t i = 0; i < rec.size(); ++i) {
    std::uint64_t s = rec[i].value.as_u64();
    EXPECT_EQ(s >> 8, i) << "MB index bits";
    EXPECT_EQ(s & 0xff, static_cast<std::uint64_t>(syntax[i].mode)) << "mode bits";
  }
}

TEST(HwcfgFilter, MbTypeCodesFollowTheMode) {
  Rig rig;
  const auto& rec = rig.run_recording("hwcfg::pipe_MbType_out");
  const auto& syntax = rig.app->syntax();
  ASSERT_EQ(rec.size(), syntax.size());
  for (std::size_t i = 0; i < rec.size(); ++i)
    EXPECT_EQ(rec[i].value.as_u64(), mbtype_code(syntax[i].mode)) << "MB " << i;
}

TEST(HwcfgFilter, ConfigTokensOnlyForIntraMbs) {
  Rig rig;
  const auto& rec = rig.run_recording("hwcfg::ipred_cfg_out");
  std::size_t intra = 0;
  for (const MbSyntax& mb : rig.app->syntax())
    if (mb.mode != MbMode::kInter) intra++;
  EXPECT_EQ(rec.size(), intra);
  for (const auto& r : rec)
    EXPECT_EQ(r.value.as_u64(), static_cast<std::uint64_t>(rig.app->config().params.qp));
}

TEST(RedFilter, CbCrTokensCarryRoutingAndChecksum) {
  Rig rig;
  const auto& rec = rig.run_recording("red::Red2PipeCbMB_out");
  const auto& syntax = rig.app->syntax();
  ASSERT_EQ(rec.size(), syntax.size());
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const pedf::Value& v = rec[i].value;
    bool inter = syntax[i].mode == MbMode::kInter;
    EXPECT_EQ(v.field_u64("InterNotIntra"), inter ? 1u : 0u) << "MB " << i;
    EXPECT_EQ(v.field_u64("Addr"), 0x1000u + i * 0x40u);
    // Izz is the documented Fibonacci hash of bh's summary.
    std::uint32_t summary = static_cast<std::uint32_t>((i << 8) |
                                                       static_cast<std::size_t>(syntax[i].mode));
    EXPECT_EQ(v.field_u64("Izz"), (summary * 2654435761u) & 0x0fffffffu);
  }
}

TEST(RedFilter, McOrdersOnlyForInterMbs) {
  Rig rig;
  const auto& rec = rig.run_recording("red::red_mc_out");
  std::size_t inter = 0;
  for (const MbSyntax& mb : rig.app->syntax())
    if (mb.mode == MbMode::kInter) inter++;
  EXPECT_EQ(rec.size(), inter);
}

TEST(PipeFilter, RoutesBlocksByPredictor) {
  Rig rig;
  rig.app->start();
  ASSERT_EQ(rig.session->run().result, sim::RunResult::kFinished);
  std::size_t intra = 0, inter = 0;
  for (const MbSyntax& mb : rig.app->syntax())
    (mb.mode == MbMode::kInter ? inter : intra)++;
  pedf::Link* to_ipred = rig.app->app().link_by_iface("ipred::Pipe_in");
  pedf::Link* to_mc = rig.app->app().link_by_iface("mc::pipe_in");
  EXPECT_EQ(to_ipred->push_index(), intra * CodecParams::kBlocksPerMb);
  EXPECT_EQ(to_mc->push_index(), inter * CodecParams::kBlocksPerMb);
  // Exactly one control token per MB reached ipf.
  EXPECT_EQ(rig.app->app().link_by_iface("ipf::pipe_in")->push_index(), intra + inter);
}

TEST(IpredFilter, DoneTokensReportReconstructionChecksums) {
  Rig rig;
  const auto& rec = rig.run_recording("ipred::Add2Dblock_ipf_out");
  // One MbDone_t per intra MB, with a nonzero Izz whenever residuals exist.
  std::size_t intra = 0;
  for (const MbSyntax& mb : rig.app->syntax())
    if (mb.mode != MbMode::kInter) intra++;
  ASSERT_EQ(rec.size(), intra);
  bool any_nonzero = false;
  for (const auto& r : rec)
    if (r.value.field_u64("Izz") > 0) any_nonzero = true;
  EXPECT_TRUE(any_nonzero) << "no residual energy in any intra MB is implausible";
}

TEST(IpfFilter, ReportsEveryMacroblockOnce) {
  Rig rig;
  const auto& rec = rig.run_recording("ipf::ipf_out");
  ASSERT_EQ(rec.size(), rig.app->syntax().size());
  // Addresses appear in decode order.
  for (std::size_t i = 0; i < rec.size(); ++i)
    EXPECT_EQ(rec[i].value.as_u64(), 0x1000u + i * 0x40u) << i;
}

TEST(IpfFilter, PublishesOneFramePerMbGrid) {
  Rig rig;
  rig.app->start();
  ASSERT_EQ(rig.session->run().result, sim::RunResult::kFinished);
  EXPECT_EQ(rig.app->store().decoded.size(),
            static_cast<std::size_t>(rig.app->config().params.frame_count));
  EXPECT_EQ(rig.app->store().info.done_mbs, rig.app->config().params.total_mbs());
}

}  // namespace
}  // namespace dfdbg::h264

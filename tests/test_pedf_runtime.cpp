// Tests of the PEDF runtime: binding resolution (including hierarchical
// module-port flattening), the controller step protocol, predicates, host
// I/O, blocking semantics, termination, mapping and debugger alteration
// entry points.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dfdbg/pedf/application.hpp"

namespace dfdbg::pedf {
namespace {

/// Doubles every input token.
class DoublerFilter : public Filter {
 public:
  explicit DoublerFilter(std::string name) : Filter(std::move(name)) {
    add_port("in", PortDir::kIn, TypeDesc());
    add_port("out", PortDir::kOut, TypeDesc());
  }
  void work(FilterContext& pedf) override {
    Value v = pedf.in("in").get();
    pedf.compute(5);
    pedf.out("out").put(Value::u32(static_cast<std::uint32_t>(v.as_u64() * 2)));
  }
};

/// Adds +1 to every input token.
class IncFilter : public Filter {
 public:
  explicit IncFilter(std::string name) : Filter(std::move(name)) {
    add_port("in", PortDir::kIn, TypeDesc());
    add_port("out", PortDir::kOut, TypeDesc());
  }
  void work(FilterContext& pedf) override {
    Value v = pedf.in("in").get();
    pedf.out("out").put(Value::u32(static_cast<std::uint32_t>(v.as_u64() + 1)));
  }
};

/// Fires all child filters once per step, `steps` times.
std::unique_ptr<Controller> all_fire_controller(std::string name, int steps) {
  return std::make_unique<FnController>(std::move(name), [steps](ControllerContext& ctx) {
    for (int s = 0; s < steps; ++s) {
      ctx.next_step();
      for (const auto& f : ctx.module().filters()) ctx.actor_start(f->name());
      ctx.wait_for_actor_init();
      for (const auto& f : ctx.module().filters()) ctx.actor_sync(f->name());
      ctx.wait_for_actor_sync();
    }
  });
}

struct Fixture {
  sim::Kernel kernel;
  sim::Platform platform;
  Application app;
  Fixture() : platform(kernel, small()), app(platform, "test") {}
  static sim::PlatformConfig small() {
    sim::PlatformConfig c;
    c.clusters = 2;
    c.pes_per_cluster = 4;
    return c;
  }
};

TEST(PedfRuntime, LinearPipelineComputes) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->add_filter(std::make_unique<IncFilter>("inc"));
  mod->set_controller(all_fire_controller("controller", 3));
  mod->bind("this.in", "dbl.in");
  mod->bind("dbl.out", "inc.in");
  mod->bind("inc.out", "this.out");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.in", {Value::u32(1), Value::u32(2), Value::u32(3)});
  auto& sink = fx.app.add_host_sink("snk", "m.out", 3);
  ASSERT_TRUE(fx.app.elaborate().ok());
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kFinished);
  ASSERT_EQ(sink.received().size(), 3u);
  EXPECT_EQ(sink.received()[0].as_u64(), 3u);  // 1*2+1
  EXPECT_EQ(sink.received()[1].as_u64(), 5u);
  EXPECT_EQ(sink.received()[2].as_u64(), 7u);
}

TEST(PedfRuntime, HierarchicalModulePortsFlatten) {
  Fixture fx;
  auto inner = std::make_unique<Module>("inner");
  inner->add_port("i", PortDir::kIn, TypeDesc());
  inner->add_port("o", PortDir::kOut, TypeDesc());
  inner->add_filter(std::make_unique<DoublerFilter>("dbl"));
  inner->set_controller(all_fire_controller("inner_ctl", 2));
  inner->bind("this.i", "dbl.in");
  inner->bind("dbl.out", "this.o");

  auto outer = std::make_unique<Module>("outer");
  outer->add_port("in", PortDir::kIn, TypeDesc());
  outer->add_port("out", PortDir::kOut, TypeDesc());
  outer->add_module(std::move(inner));
  outer->bind("this.in", "inner.i");
  outer->bind("inner.o", "this.out");

  fx.app.set_root(std::move(outer));
  fx.app.add_host_source("src", "outer.in", {Value::u32(5), Value::u32(6)});
  auto& sink = fx.app.add_host_sink("snk", "outer.out", 2);
  ASSERT_TRUE(fx.app.elaborate().ok());
  // Flattening produced direct filter links despite two boundary crossings.
  Link* l = fx.app.link_by_iface("dbl::in");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->src()->owner().name(), "src");
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kFinished);
  ASSERT_EQ(sink.received().size(), 2u);
  EXPECT_EQ(sink.received()[0].as_u64(), 10u);
  EXPECT_EQ(sink.received()[1].as_u64(), 12u);
}

TEST(PedfRuntime, UnboundInputRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  // dbl.in and dbl.out never bound.
  fx.app.set_root(std::move(mod));
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbound"), std::string::npos);
}

TEST(PedfRuntime, TypeMismatchRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  auto f = std::make_unique<FnFilter>("f", [](FilterContext&) {});
  f->add_port("o", PortDir::kOut, TypeDesc(ScalarType::kU16));
  auto g = std::make_unique<FnFilter>("g", [](FilterContext&) {});
  g->add_port("i", PortDir::kIn, TypeDesc(ScalarType::kU32));
  mod->add_filter(std::move(f));
  mod->add_filter(std::move(g));
  mod->bind("f.o", "g.i");
  fx.app.set_root(std::move(mod));
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("type mismatch"), std::string::npos);
}

TEST(PedfRuntime, DuplicateFilterNamesRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  auto a = std::make_unique<Module>("a");
  a->add_filter(std::make_unique<FnFilter>("same", [](FilterContext&) {}));
  auto b = std::make_unique<Module>("b");
  b->add_filter(std::make_unique<FnFilter>("same", [](FilterContext&) {}));
  mod->add_module(std::move(a));
  mod->add_module(std::move(b));
  fx.app.set_root(std::move(mod));
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate filter name"), std::string::npos);
}

TEST(PedfRuntime, StepProtocolStates) {
  // Observe scheduled/running/done transitions through a controller that
  // pauses between primitives.
  Fixture fx;
  std::vector<StepState> observed;
  auto mod = std::make_unique<Module>("m");
  Filter* f = &mod->add_filter(std::make_unique<FnFilter>("f", [](FilterContext& ctx) {
    ctx.compute(10);
  }));
  mod->set_controller(std::make_unique<FnController>("ctl", [&, f](ControllerContext& ctx) {
    ctx.next_step();
    observed.push_back(f->step_state());  // before start: idle
    ctx.actor_start("f");
    observed.push_back(f->step_state());  // scheduled
    ctx.wait_for_actor_init();
    observed.push_back(f->step_state());  // running (or done if instant)
    ctx.actor_sync("f");
    ctx.wait_for_actor_sync();
    observed.push_back(f->step_state());  // idle again after sync
  }));
  fx.app.set_root(std::move(mod));
  ASSERT_TRUE(fx.app.elaborate().ok());
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kFinished);
  ASSERT_EQ(observed.size(), 4u);
  EXPECT_EQ(observed[0], StepState::kIdle);
  EXPECT_EQ(observed[1], StepState::kScheduled);
  EXPECT_TRUE(observed[2] == StepState::kRunning || observed[2] == StepState::kDone);
  EXPECT_EQ(observed[3], StepState::kIdle);
}

TEST(PedfRuntime, PredicatesEvaluate) {
  Fixture fx;
  int fired = 0;
  auto mod = std::make_unique<Module>("m");
  mod->add_filter(std::make_unique<FnFilter>("f", [&](FilterContext&) { fired++; }));
  mod->define_predicate("keep_going", [](Module& m) { return m.step() < 4; });
  mod->set_controller(std::make_unique<FnController>("ctl", [](ControllerContext& ctx) {
    ctx.next_step();
    while (ctx.predicate("keep_going")) {
      ctx.actor_fire("f");
      ctx.wait_for_actor_sync();
      ctx.next_step();
    }
  }));
  fx.app.set_root(std::move(mod));
  ASSERT_TRUE(fx.app.elaborate().ok());
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kFinished);
  EXPECT_EQ(fired, 3);  // steps 1..3 fire; predicate false at step 4
}

TEST(PedfRuntime, FilterBlocksOnEmptyInput) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->set_controller(all_fire_controller("ctl", 2));
  mod->bind("this.in", "dbl.in");
  mod->bind("dbl.out", "this.out");
  fx.app.set_root(std::move(mod));
  // Source supplies only ONE token but the controller wants two steps.
  fx.app.add_host_source("src", "m.in", {Value::u32(1)});
  fx.app.add_host_sink("snk", "m.out", 2);
  ASSERT_TRUE(fx.app.elaborate().ok());
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kDeadlock);
  Actor* dbl = fx.app.actor_by_name("dbl");
  EXPECT_EQ(dbl->blocked().kind, BlockInfo::Kind::kLinkEmpty);
}

TEST(PedfRuntime, BoundedLinkBlocksProducer) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  // A consumer that never fires: producer must block on the full link.
  auto sinkless = std::make_unique<FnFilter>("lazy", [](FilterContext&) {});
  sinkless->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_filter(std::move(sinkless));
  auto pump = std::make_unique<FnFilter>("pump", [](FilterContext& ctx) {
    for (int i = 0; i < 10; ++i) ctx.out("out").put(Value::u32(static_cast<std::uint32_t>(i)));
  });
  pump->add_port("out", PortDir::kOut, TypeDesc());
  pump->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_filter(std::move(pump));
  mod->set_controller(std::make_unique<FnController>("ctl", [](ControllerContext& ctx) {
    ctx.next_step();
    ctx.actor_fire("pump");
    ctx.wait_for_actor_sync();
  }));
  mod->bind("this.in", "pump.in");
  mod->bind("pump.out", "lazy.in");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.in", {Value::u32(0)});
  ASSERT_TRUE(fx.app.elaborate().ok());
  fx.app.link_by_iface("lazy::in")->set_capacity(4);
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kDeadlock);
  Actor* pump_a = fx.app.actor_by_name("pump");
  EXPECT_EQ(pump_a->blocked().kind, BlockInfo::Kind::kLinkFull);
  EXPECT_EQ(fx.app.link_by_iface("lazy::in")->occupancy(), 4u);
}

TEST(PedfRuntime, FinishIoUnblocksSinks) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->set_controller(all_fire_controller("ctl", 2));
  mod->bind("this.in", "dbl.in");
  mod->bind("dbl.out", "this.out");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.in", {Value::u32(1), Value::u32(2)});
  // Sink expects MORE tokens than the graph will produce.
  auto& sink = fx.app.add_host_sink("snk", "m.out", 100);
  ASSERT_TRUE(fx.app.elaborate().ok());
  fx.app.start();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kDeadlock);
  fx.app.finish_io();
  EXPECT_EQ(fx.kernel.run(), sim::RunResult::kFinished);
  EXPECT_EQ(sink.received().size(), 2u);
}

TEST(PedfRuntime, ExplicitMappingHonored) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->set_controller(all_fire_controller("ctl", 1));
  mod->bind("this.in", "dbl.in");
  mod->bind("dbl.out", "this.out");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.in", {Value::u32(1)});
  fx.app.add_host_sink("snk", "m.out", 1);
  fx.app.map_actor("m.dbl", "c1p3");
  ASSERT_TRUE(fx.app.elaborate().ok());
  EXPECT_EQ(fx.app.actor_by_name("dbl")->pe()->name(), "c1p3");
  // Host I/O maps on host cores.
  EXPECT_EQ(fx.app.actor_by_name("src")->pe()->kind(), sim::PeKind::kHost);
}

TEST(PedfRuntime, LinkTransportFollowsMapping) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("a"));
  mod->add_filter(std::make_unique<IncFilter>("b"));
  mod->set_controller(all_fire_controller("ctl", 1));
  mod->bind("this.in", "a.in");
  mod->bind("a.out", "b.in");
  mod->bind("b.out", "this.out");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.in", {Value::u32(1)});
  fx.app.add_host_sink("snk", "m.out", 1);
  fx.app.map_actor("m.a", "c0p0");
  fx.app.map_actor("m.b", "c1p0");  // cross-cluster
  ASSERT_TRUE(fx.app.elaborate().ok());
  EXPECT_EQ(fx.app.link_by_iface("b::in")->transport(), LinkTransport::kInterCluster);
  EXPECT_EQ(fx.app.link_by_iface("a::in")->transport(), LinkTransport::kHostDma);
}

TEST(PedfRuntime, DebugInjectRemoveReplace) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->set_controller(all_fire_controller("ctl", 1));
  mod->bind("this.in", "dbl.in");
  mod->bind("dbl.out", "this.out");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.in", {Value::u32(1)});
  fx.app.add_host_sink("snk", "m.out", 1);
  ASSERT_TRUE(fx.app.elaborate().ok());
  Link* l = fx.app.link_by_iface("dbl::in");
  ASSERT_NE(l, nullptr);
  fx.app.debug_inject(*l, Value::u32(7));
  fx.app.debug_inject(*l, Value::u32(8));
  EXPECT_EQ(l->occupancy(), 2u);
  fx.app.debug_replace(*l, 1, Value::u32(9));
  EXPECT_EQ(l->peek(1).as_u64(), 9u);
  Value gone = fx.app.debug_remove(*l, 0);
  EXPECT_EQ(gone.as_u64(), 7u);
  EXPECT_EQ(l->occupancy(), 1u);
}

TEST(PedfRuntime, UnresolvableHostBindingRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->set_controller(all_fire_controller("ctl", 1));
  mod->bind("this.in", "dbl.in");
  fx.app.set_root(std::move(mod));
  fx.app.add_host_source("src", "m.nonexistent_port", {Value::u32(1)});
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cannot resolve target"), std::string::npos);
}

TEST(PedfRuntime, MalformedBindingEndpointRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->bind("no_dot_here", "dbl.in");
  fx.app.set_root(std::move(mod));
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("malformed endpoint"), std::string::npos);
}

TEST(PedfRuntime, BindingToUnknownChildRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
  mod->bind("ghost.out", "dbl.in");
  fx.app.set_root(std::move(mod));
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no child 'ghost'"), std::string::npos);
}

TEST(PedfRuntime, FanOutRejected) {
  Fixture fx;
  auto mod = std::make_unique<Module>("m");
  auto a = std::make_unique<FnFilter>("a", [](FilterContext&) {});
  a->add_port("o", PortDir::kOut, TypeDesc());
  auto b = std::make_unique<FnFilter>("b", [](FilterContext&) {});
  b->add_port("i", PortDir::kIn, TypeDesc());
  auto c = std::make_unique<FnFilter>("c", [](FilterContext&) {});
  c->add_port("i", PortDir::kIn, TypeDesc());
  mod->add_filter(std::move(a));
  mod->add_filter(std::move(b));
  mod->add_filter(std::move(c));
  mod->bind("a.o", "b.i");
  mod->bind("a.o", "c.i");  // dataflow arcs are point-to-point
  fx.app.set_root(std::move(mod));
  Status s = fx.app.elaborate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bound twice"), std::string::npos);
}

TEST(PedfRuntime, WorkloadScalesWithSteps) {
  // Property sweep: N steps through the doubler move exactly N tokens.
  for (int steps : {1, 4, 16, 64}) {
    Fixture fx;
    auto mod = std::make_unique<Module>("m");
    mod->add_port("in", PortDir::kIn, TypeDesc());
    mod->add_port("out", PortDir::kOut, TypeDesc());
    mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
    mod->set_controller(all_fire_controller("ctl", steps));
    mod->bind("this.in", "dbl.in");
    mod->bind("dbl.out", "this.out");
    fx.app.set_root(std::move(mod));
    std::vector<Value> stream;
    for (int i = 0; i < steps; ++i) stream.push_back(Value::u32(static_cast<std::uint32_t>(i)));
    fx.app.set_model_latencies(false);
    fx.app.add_host_source("src", "m.in", std::move(stream));
    auto& sink = fx.app.add_host_sink("snk", "m.out", static_cast<std::size_t>(steps));
    ASSERT_TRUE(fx.app.elaborate().ok());
    fx.app.start();
    EXPECT_EQ(fx.kernel.run(), sim::RunResult::kFinished);
    ASSERT_EQ(sink.received().size(), static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i)
      EXPECT_EQ(sink.received()[static_cast<std::size_t>(i)].as_u64(),
                static_cast<std::uint64_t>(2 * i));
  }
}

}  // namespace
}  // namespace dfdbg::pedf

// Tests of the observability layer: the metrics registry (histogram
// bucketing, reset semantics, disabled-mode no-op), the built-in
// instrumentation points, and the Chrome trace-event exporter (golden-file
// and structural nesting checks).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/trace/chrome_trace.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg {
namespace {

/// Forces a known enabled-state for the duration of one test (the CLI
/// interpreter flips the global flag on construction, so tests must not
/// depend on run order).
struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(obs::enabled()) { obs::set_enabled(on); }
  ~EnabledGuard() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketOfLog2Edges) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  EXPECT_EQ(H::bucket_of(UINT64_MAX), 64u);
  // Every bucket i >= 1 holds [2^(i-1), 2^i): its inclusive upper edge.
  EXPECT_EQ(H::bucket_edge(0), 0u);
  EXPECT_EQ(H::bucket_edge(1), 1u);
  EXPECT_EQ(H::bucket_edge(2), 3u);
  EXPECT_EQ(H::bucket_edge(10), 1023u);
  EXPECT_EQ(H::bucket_edge(64), UINT64_MAX);
}

TEST(ObsHistogram, ObserveAndStats) {
  EnabledGuard on(true);
  obs::Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);  // the 0
  EXPECT_EQ(h.bucket(1), 1u);  // the 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(7), 1u);  // 100 in [64,128)
}

TEST(ObsHistogram, PercentileWalksBucketsClampedToMax) {
  EnabledGuard on(true);
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(1);
  h.observe(1000);
  EXPECT_EQ(h.percentile(0.50), 1u);
  EXPECT_EQ(h.percentile(0.99), 1u);
  // The outlier lands in bucket [512,1024) whose edge is 1023; the result
  // is clamped to the observed max.
  EXPECT_EQ(h.percentile(1.0), 1000u);
  obs::Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
}

TEST(ObsHistogram, ResetClearsEverything) {
  EnabledGuard on(true);
  obs::Histogram h;
  h.observe(5);
  h.observe(9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.observe(2);  // usable after reset, min re-seeds
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------------
// Disabled mode
// ---------------------------------------------------------------------------

TEST(ObsDisabled, InstrumentsIgnoreMutations) {
  EnabledGuard off(false);
  obs::Counter c;
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
  obs::Gauge g;
  g.set(5);
  g.add(3);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  obs::Histogram h;
  h.observe(42);
  EXPECT_EQ(h.count(), 0u);
  {
    obs::ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 0u);
  std::uint64_t fake_clock = 0;
  {
    obs::ScopedDelta d(h, [&] { return fake_clock; });
    fake_clock = 100;
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsDisabled, ReenablingResumesCounting) {
  obs::Counter c;
  {
    EnabledGuard off(false);
    c.add();
  }
  {
    EnabledGuard on(true);
    c.add();
    c.add();
  }
  EXPECT_EQ(c.value(), 2u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, InterningIsStableAndIdempotent) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.a");
  // Force deque growth: addresses handed out earlier must stay valid.
  for (int i = 0; i < 1000; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(&a, &reg.counter("x.a"));
  EXPECT_EQ(reg.size(), 1001u);
  // Same name, different kinds: distinct instruments.
  reg.gauge("x.a");
  reg.histogram("x.a");
  EXPECT_EQ(reg.size(), 1003u);
}

TEST(ObsRegistry, ResetZeroesButKeepsNames) {
  EnabledGuard on(true);
  obs::Registry reg;
  obs::Counter& c = reg.counter("n");
  obs::Histogram& h = reg.histogram("hn");
  c.add(3);
  h.observe(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 2u);        // names survive a reset
  EXPECT_EQ(&c, &reg.counter("n"));  // and so do addresses
}

TEST(ObsRegistry, ViewsAreSortedByName) {
  obs::Registry reg;
  reg.counter("zz");
  reg.counter("aa");
  reg.counter("mm");
  auto view = reg.counters();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0].first, "aa");
  EXPECT_EQ(view[1].first, "mm");
  EXPECT_EQ(view[2].first, "zz");
}

// ---------------------------------------------------------------------------
// A minimal JSON syntax validator (for to_json and the Chrome exporter).
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    pos_++;  // {
    skip_ws();
    if (peek() == '}') return pos_++, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      pos_++;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { pos_++; continue; }
      if (peek() == '}') return pos_++, true;
      return false;
    }
  }
  bool array() {
    pos_++;  // [
    skip_ws();
    if (peek() == ']') return pos_++, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { pos_++; continue; }
      if (peek() == ']') return pos_++, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    pos_++;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') pos_++;
      pos_++;
    }
    if (pos_ >= s_.size()) return false;
    pos_++;
    return true;
  }
  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') pos_++;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      pos_++;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) pos_++;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ObsRegistry, ToJsonIsValidJson) {
  EnabledGuard on(true);
  obs::Registry reg;
  reg.counter("a\"b\\c").add(1);  // names needing escaping
  reg.gauge("g").set(-4);
  reg.histogram("h").observe(12);
  std::string json = reg.to_json();
  EXPECT_TRUE(JsonParser(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsRegistry, ToTextShowsEnabledState) {
  obs::Registry reg;
  reg.counter("c");
  {
    EnabledGuard off(false);
    EXPECT_NE(reg.to_text().find("DISABLED"), std::string::npos);
  }
  {
    EnabledGuard on(true);
    EXPECT_NE(reg.to_text().find("enabled"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Built-in instrumentation points
// ---------------------------------------------------------------------------

h264::H264AppConfig small_config() {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  return cfg;
}

TEST(ObsInstrumentation, SchedulerAndLinkCountersMoveDuringARun) {
  EnabledGuard on(true);
  auto& reg = obs::Registry::global();
  reg.reset();
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  (*app)->start();
  EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
  EXPECT_GT(reg.counter("sim.dispatch").value(), 0u);
  EXPECT_GT(reg.counter("sim.context_switch").value(), 0u);
  EXPECT_GT(reg.counter("sim.process_spawn").value(), 0u);
  EXPECT_GT(reg.counter("link.push").value(), 0u);
  EXPECT_EQ(reg.counter("link.push").value(), reg.counter("link.pop").value());
  EXPECT_GT(reg.histogram("sim.ready_depth").count(), 0u);
  EXPECT_GT(reg.gauge("link.occupancy_hwm").max(), 0);
}

TEST(ObsInstrumentation, HookCountersTrackPerSymbolDispatch) {
  EnabledGuard on(true);
  auto& reg = obs::Registry::global();
  reg.reset();
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  // A trace collector attaches hooks on the framework symbols.
  trace::TraceCollector tc((*app)->app(), 1 << 16);
  tc.attach();
  (*app)->start();
  (*app)->kernel().run();
  EXPECT_GT(reg.counter("hook.invocation").value(), 0u);
  EXPECT_GT(reg.counter("hook.enter").value(), 0u);
  EXPECT_GT(reg.histogram("hook.dispatch_ns").count(), 0u);
  EXPECT_GT(reg.counter("hook.sym.pedf__work_enter.enter").value(), 0u);
}

TEST(ObsInstrumentation, DisabledRunLeavesRegistryUntouched) {
  EnabledGuard off(false);
  auto& reg = obs::Registry::global();
  reg.reset();
  auto app = h264::H264App::build(small_config());
  ASSERT_TRUE(app.ok());
  (*app)->start();
  (*app)->kernel().run();
  EXPECT_EQ(reg.counter("sim.dispatch").value(), 0u);
  EXPECT_EQ(reg.counter("link.push").value(), 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace exporter
// ---------------------------------------------------------------------------

/// Doubles every input token (same fixture idiom as test_pedf_runtime).
class DoublerFilter : public pedf::Filter {
 public:
  explicit DoublerFilter(std::string name) : Filter(std::move(name)) {
    add_port("in", pedf::PortDir::kIn, pedf::TypeDesc());
    add_port("out", pedf::PortDir::kOut, pedf::TypeDesc());
  }
  void work(pedf::FilterContext& ctx) override {
    pedf::Value v = ctx.in("in").get();
    ctx.compute(5);
    ctx.out("out").put(pedf::Value::u32(static_cast<std::uint32_t>(v.as_u64() * 2)));
  }
};

class IncFilter : public pedf::Filter {
 public:
  explicit IncFilter(std::string name) : Filter(std::move(name)) {
    add_port("in", pedf::PortDir::kIn, pedf::TypeDesc());
    add_port("out", pedf::PortDir::kOut, pedf::TypeDesc());
  }
  void work(pedf::FilterContext& ctx) override {
    pedf::Value v = ctx.in("in").get();
    ctx.out("out").put(pedf::Value::u32(static_cast<std::uint32_t>(v.as_u64() + 1)));
  }
};

std::unique_ptr<pedf::Controller> all_fire_controller(std::string name, int steps) {
  return std::make_unique<pedf::FnController>(
      std::move(name), [steps](pedf::ControllerContext& ctx) {
        for (int s = 0; s < steps; ++s) {
          ctx.next_step();
          for (const auto& f : ctx.module().filters()) ctx.actor_start(f->name());
          ctx.wait_for_actor_init();
          for (const auto& f : ctx.module().filters()) ctx.actor_sync(f->name());
          ctx.wait_for_actor_sync();
        }
      });
}

/// The golden-file workload: a deterministic two-actor pipeline.
struct TwoActorRig {
  sim::Kernel kernel;
  sim::Platform platform;
  pedf::Application app;

  TwoActorRig() : platform(kernel, small()), app(platform, "two_actor") {
    auto mod = std::make_unique<pedf::Module>("m");
    mod->add_port("in", pedf::PortDir::kIn, pedf::TypeDesc());
    mod->add_port("out", pedf::PortDir::kOut, pedf::TypeDesc());
    mod->add_filter(std::make_unique<DoublerFilter>("dbl"));
    mod->add_filter(std::make_unique<IncFilter>("inc"));
    mod->set_controller(all_fire_controller("controller", 3));
    mod->bind("this.in", "dbl.in");
    mod->bind("dbl.out", "inc.in");
    mod->bind("inc.out", "this.out");
    app.set_root(std::move(mod));
    app.add_host_source("src", "m.in",
                        {pedf::Value::u32(1), pedf::Value::u32(2), pedf::Value::u32(3)});
    app.add_host_sink("snk", "m.out", 3);
    EXPECT_TRUE(app.elaborate().ok());
  }

  static sim::PlatformConfig small() {
    sim::PlatformConfig c;
    c.clusters = 2;
    c.pes_per_cluster = 4;
    return c;
  }
};

std::string export_two_actor_trace() {
  TwoActorRig rig;
  trace::TraceCollector tc(rig.app, 1 << 12);
  tc.attach();
  rig.app.start();
  EXPECT_EQ(rig.kernel.run(), sim::RunResult::kFinished);
  return export_chrome_trace(tc, rig.app);
}

TEST(ChromeTrace, GoldenTwoActorExport) {
  // The golden encodes the sequential schedule's timestamps. A one-worker
  // parallel kernel reproduces it byte-for-byte; with several partitions
  // virtual timings legitimately shift (boundary tokens cross at barriers)
  // while per-link token order stays invariant — see docs/KERNEL.md.
  {
    sim::Kernel probe;
    if (probe.partition_count() > 1)
      GTEST_SKIP() << "trace timestamps diverge across parallel partitions by design";
  }
  std::string json = export_two_actor_trace();
  ASSERT_TRUE(JsonParser(json).valid());

  std::string golden_path = std::string(DFDBG_SOURCE_DIR) + "/tests/golden/chrome_trace_two_actor.json";
  if (std::getenv("DFDBG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << json;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with DFDBG_REGEN_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "exporter output diverged from tests/golden/chrome_trace_two_actor.json; "
         "if intentional, regenerate with DFDBG_REGEN_GOLDEN=1";
}

TEST(ChromeTrace, ExportIsDeterministic) {
  EXPECT_EQ(export_two_actor_trace(), export_two_actor_trace());
}

/// Extracts `"key":<integer>` from a single traceEvents line.
long long field_i64(const std::string& line, const std::string& key, long long fallback) {
  auto pos = line.find("\"" + key + "\":");
  if (pos == std::string::npos) return fallback;
  return std::strtoll(line.c_str() + pos + key.size() + 3, nullptr, 10);
}

std::string field_str(const std::string& line, const std::string& key) {
  auto pos = line.find("\"" + key + "\":\"");
  if (pos == std::string::npos) return "";
  pos += key.size() + 4;
  return line.substr(pos, line.find('"', pos) - pos);
}

TEST(ChromeTrace, DurationEventsNestCorrectly) {
  std::string json = export_two_actor_trace();
  // Per-tid: depth never goes negative, timestamps never regress, and every
  // track ends balanced (each "B" has its "E").
  std::map<long long, int> depth;
  std::map<long long, long long> last_ts;
  int total_b = 0, total_e = 0;
  std::stringstream ss(json);
  std::string line;
  while (std::getline(ss, line)) {
    std::string ph = field_str(line, "ph");
    if (ph != "B" && ph != "E") continue;
    long long tid = field_i64(line, "tid", -1);
    ASSERT_GE(tid, 0) << line;
    long long ts = field_i64(line, "ts", -1);
    EXPECT_GE(ts, last_ts[tid]) << "timestamps regress on tid " << tid;
    last_ts[tid] = ts;
    if (ph == "B") {
      depth[tid]++;
      total_b++;
    } else {
      depth[tid]--;
      total_e++;
      EXPECT_GE(depth[tid], 0) << "orphan E on tid " << tid << ": " << line;
    }
  }
  EXPECT_GT(total_b, 0);
  EXPECT_EQ(total_b, total_e);
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unbalanced tid " << tid;
}

TEST(ChromeTrace, EmitsExpectedTracksAndPhases) {
  std::string json = export_two_actor_trace();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // One named track per actor seen in the window.
  EXPECT_NE(json.find("\"name\":\"m.dbl\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"m.inc\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // ACTOR_START instants
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);   // link occupancy series
  EXPECT_NE(json.find("\"name\":\"WORK\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"STEP\""), std::string::npos);
}

TEST(ChromeTrace, OptionsSuppressInstantsAndCounters) {
  TwoActorRig rig;
  trace::TraceCollector tc(rig.app, 1 << 12);
  tc.attach();
  rig.app.start();
  rig.kernel.run();
  trace::ChromeTraceOptions opts;
  opts.link_counters = false;
  opts.schedule_instants = false;
  std::string json = export_chrome_trace(tc, rig.app, opts);
  EXPECT_TRUE(JsonParser(json).valid());
  EXPECT_EQ(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeTrace, TruncatedWindowStillNests) {
  // A tiny ring keeps only the tail of the run: orphan exits must be
  // dropped, so depth never goes negative and B/E still balance.
  TwoActorRig rig;
  trace::TraceCollector tc(rig.app, 16);
  tc.attach();
  rig.app.start();
  rig.kernel.run();
  EXPECT_GT(tc.dropped(), 0u);
  std::string json = export_chrome_trace(tc, rig.app);
  ASSERT_TRUE(JsonParser(json).valid());
  std::map<long long, int> depth;
  int total_b = 0, total_e = 0;
  std::stringstream ss(json);
  std::string line;
  while (std::getline(ss, line)) {
    std::string ph = field_str(line, "ph");
    if (ph == "B") {
      depth[field_i64(line, "tid", -1)]++;
      total_b++;
    } else if (ph == "E") {
      long long tid = field_i64(line, "tid", -1);
      depth[tid]--;
      total_e++;
      EXPECT_GE(depth[tid], 0);
    }
  }
  EXPECT_EQ(total_b, total_e);
}

// ---------------------------------------------------------------------------
// Trace collector summary (`trace stats`)
// ---------------------------------------------------------------------------

TEST(TraceStats, SummaryReportsKindsAndDrops) {
  TwoActorRig rig;
  trace::TraceCollector tc(rig.app, 16);
  tc.attach();
  rig.app.start();
  rig.kernel.run();
  EXPECT_EQ(tc.dropped(), tc.total_events() - tc.events().size());
  std::string s = tc.summary();
  EXPECT_NE(s.find("capacity=16"), std::string::npos);
  EXPECT_NE(s.find("dropped="), std::string::npos);
  EXPECT_NE(s.find("evicted"), std::string::npos);  // drop warning present
  std::uint64_t kind_total = 0;
  for (const auto& [kind, n] : tc.counts_by_kind()) kind_total += n;
  EXPECT_EQ(kind_total, tc.events().size());
}

// ---------------------------------------------------------------------------
// CLI surface: stats / trace / profile export
// ---------------------------------------------------------------------------

struct CliRig {
  std::unique_ptr<h264::H264App> app;
  std::unique_ptr<dbg::Session> session;
  std::unique_ptr<cli::Interpreter> gdb;

  CliRig() {
    auto built = h264::H264App::build(small_config());
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<dbg::Session>(app->app());
    session->attach();
    app->start();
    gdb = std::make_unique<cli::Interpreter>(*session);
  }

  std::string exec(const std::string& line) {
    gdb->execute(line);
    return gdb->console().take();
  }
};

TEST(CliObs, StatsReportsNonzeroCountersAfterARun) {
  CliRig rig;  // the interpreter enables metrics
  obs::Registry::global().reset();
  rig.exec("trace on");
  rig.exec("run");
  std::string out = rig.exec("stats");
  EXPECT_NE(out.find("metrics: enabled"), std::string::npos);
  EXPECT_NE(out.find("sim.dispatch"), std::string::npos);
  EXPECT_NE(out.find("hook.invocation"), std::string::npos);
  auto& reg = obs::Registry::global();
  EXPECT_GT(reg.counter("sim.dispatch").value(), 0u);
  EXPECT_GT(reg.counter("hook.invocation").value(), 0u);
  EXPECT_GT(reg.counter("cli.cmd").value(), 0u);
  EXPECT_GT(reg.histogram("cli.cmd_ns").count(), 0u);
  EXPECT_GT(reg.counter("dbg.run").value(), 0u);
}

TEST(CliObs, StatsResetZeroes) {
  CliRig rig;
  rig.exec("run");
  std::string out = rig.exec("stats reset");
  EXPECT_NE(out.find("reset"), std::string::npos);
  EXPECT_EQ(obs::Registry::global().counter("sim.dispatch").value(), 0u);
}

TEST(CliObs, StatsJsonIsValid) {
  CliRig rig;
  rig.exec("run");
  std::string out = rig.exec("stats json");
  EXPECT_TRUE(JsonParser(out).valid()) << out;
}

TEST(CliObs, TraceLifecycleAndStats) {
  CliRig rig;
  EXPECT_FALSE(rig.gdb->execute("trace stats").ok());  // nothing attached yet
  rig.gdb->console().take();
  EXPECT_TRUE(rig.gdb->execute("trace on 128").ok());
  EXPECT_NE(rig.gdb->console().take().find("capacity 128"), std::string::npos);
  EXPECT_FALSE(rig.gdb->execute("trace on").ok());  // double attach rejected
  rig.gdb->console().take();
  rig.exec("run");
  std::string stats = rig.exec("trace stats");
  EXPECT_NE(stats.find("attached"), std::string::npos);
  EXPECT_NE(stats.find("capacity=128"), std::string::npos);
  EXPECT_NE(stats.find("work-enter"), std::string::npos);
  EXPECT_TRUE(rig.gdb->execute("trace off").ok());
  rig.gdb->console().take();
  EXPECT_FALSE(rig.gdb->execute("trace off").ok());  // double detach rejected
}

TEST(CliObs, ProfileExportProducesValidChromeJson) {
  CliRig rig;
  EXPECT_FALSE(rig.gdb->execute("profile export /tmp/x.json").ok());  // no collector
  rig.gdb->console().take();
  rig.exec("trace on");
  rig.exec("run");
  std::string path = ::testing::TempDir() + "dfdbg_h264_profile.json";
  EXPECT_TRUE(rig.gdb->execute("profile export " + path).ok());
  EXPECT_NE(rig.gdb->console().take().find("Exported"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  EXPECT_TRUE(JsonParser(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliObs, NewCommandsAreNotReplayable) {
  CliRig rig;
  rig.exec("trace on");
  rig.exec("stats");
  rig.exec("break ipred:221");
  ASSERT_EQ(rig.gdb->replayable().size(), 1u);
  EXPECT_EQ(rig.gdb->replayable()[0], "break ipred:221");
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

TEST(ObsPrometheus, ExpositionCoversAllInstrumentKinds) {
  EnabledGuard on(true);
  obs::Registry reg;
  reg.counter("sim.dispatch").add(7);
  reg.gauge("link.occupancy").set(3);
  reg.gauge("link.occupancy").set(1);  // max stays 3
  reg.histogram("server.request_ns").observe(5);
  std::string prom = reg.to_prometheus();
  // Names sanitized and prefixed; counters typed as counter.
  EXPECT_NE(prom.find("# TYPE dfdbg_sim_dispatch counter\ndfdbg_sim_dispatch 7\n"),
            std::string::npos)
      << prom;
  // Gauges carry a companion high-water series.
  EXPECT_NE(prom.find("dfdbg_link_occupancy 1\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("dfdbg_link_occupancy_max 3\n"), std::string::npos) << prom;
  // Histograms expose as summaries: quantiles + _sum/_count.
  EXPECT_NE(prom.find("# TYPE dfdbg_server_request_ns summary\n"), std::string::npos);
  EXPECT_NE(prom.find("dfdbg_server_request_ns{quantile=\"0.5\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find("dfdbg_server_request_ns{quantile=\"0.99\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find("dfdbg_server_request_ns_sum 5\n"), std::string::npos);
  EXPECT_NE(prom.find("dfdbg_server_request_ns_count 1\n"), std::string::npos);
  // Exposition is plain text, not JSON.
  EXPECT_FALSE(JsonParser(prom).valid());
}

TEST(CliObs, StatsPromRendersExposition) {
  CliRig rig;
  rig.exec("run");
  std::string out = rig.exec("stats prom");
  EXPECT_NE(out.find("# TYPE dfdbg_sim_dispatch counter"), std::string::npos) << out;
  EXPECT_NE(out.find("dfdbg_link_push "), std::string::npos);
}

// ---------------------------------------------------------------------------
// snapshot_delta edges
// ---------------------------------------------------------------------------

TEST(ObsSnapshotDelta, GaugeRevertingToReportedValueIsStillADelta) {
  EnabledGuard on(true);
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("g");
  obs::StatsSnapshot prev;
  std::size_t changed = 0;
  g.set(5);
  reg.snapshot_delta(prev, &changed);
  ASSERT_EQ(changed, 1u);
  g.set(9);
  reg.snapshot_delta(prev, &changed);
  ASSERT_EQ(changed, 1u);
  // Reverting to the previously-reported 5 must be reported again — the
  // reader's last-seen value is 9, and silence would freeze it there.
  g.set(5);
  std::string delta = reg.snapshot_delta(prev, &changed);
  EXPECT_EQ(changed, 1u) << delta;
  EXPECT_NE(delta.find("\"value\":5"), std::string::npos) << delta;
  EXPECT_NE(delta.find("\"max\":9"), std::string::npos) << delta;
  // And once reported, the revert is settled: no further delta.
  reg.snapshot_delta(prev, &changed);
  EXPECT_EQ(changed, 0u);
}

TEST(ObsSnapshotDelta, HistogramPercentileEdges) {
  EnabledGuard on(true);
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("h");
  obs::StatsSnapshot prev;
  std::size_t changed = 0;
  // Empty histogram: reported once (the reader has never seen it), all-zero
  // percentiles; then quiescent.
  std::string delta = reg.snapshot_delta(prev, &changed);
  EXPECT_EQ(changed, 1u);
  EXPECT_NE(delta.find("\"count\":0"), std::string::npos) << delta;
  EXPECT_NE(delta.find("\"p50\":0"), std::string::npos) << delta;
  reg.snapshot_delta(prev, &changed);
  EXPECT_EQ(changed, 0u);
  // Single sample: every percentile collapses to that sample (clamped to
  // the observed max, not the log2 bucket edge).
  h.observe(7);
  delta = reg.snapshot_delta(prev, &changed);
  EXPECT_EQ(changed, 1u);
  EXPECT_NE(delta.find("\"count\":1"), std::string::npos) << delta;
  EXPECT_NE(delta.find("\"p50\":7"), std::string::npos) << delta;
  EXPECT_NE(delta.find("\"p99\":7"), std::string::npos) << delta;
  EXPECT_NE(delta.find("\"min\":7"), std::string::npos) << delta;
  EXPECT_NE(delta.find("\"max\":7"), std::string::npos) << delta;
}

TEST(ObsSnapshotDelta, TwoIndependentReadersInterleaved) {
  EnabledGuard on(true);
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::StatsSnapshot a, b;
  std::size_t changed = 0;
  c.add(1);
  // Reader A catches up at 1; B hasn't read yet.
  std::string da = reg.snapshot_delta(a, &changed);
  EXPECT_EQ(changed, 1u);
  EXPECT_NE(da.find("\"c\":1"), std::string::npos);
  c.add(1);
  // Reader B's first read reports the current value (2), not A's history.
  std::string db = reg.snapshot_delta(b, &changed);
  EXPECT_EQ(changed, 1u);
  EXPECT_NE(db.find("\"c\":2"), std::string::npos);
  // A still owes the 1 -> 2 step; B owes nothing.
  da = reg.snapshot_delta(a, &changed);
  EXPECT_EQ(changed, 1u);
  EXPECT_NE(da.find("\"c\":2"), std::string::npos);
  reg.snapshot_delta(b, &changed);
  EXPECT_EQ(changed, 0u);
  reg.snapshot_delta(a, &changed);
  EXPECT_EQ(changed, 0u);
}

TEST(CliObs, CompletionKnowsNewCommands) {
  CliRig rig;
  auto c = rig.gdb->complete("sta");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], "stats");
  c = rig.gdb->complete("prof");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], "profile");
}

}  // namespace
}  // namespace dfdbg

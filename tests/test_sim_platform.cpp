// Tests of the P2012-like platform model: topology, latencies, DMA, PE
// exclusivity, DOT rendering (FIG1 substrate).
#include <gtest/gtest.h>

#include "dfdbg/sim/platform.hpp"

namespace dfdbg::sim {
namespace {

TEST(Platform, DefaultTopology) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  const PlatformConfig& c = p.config();
  EXPECT_EQ(static_cast<int>(p.fabric().size()), c.clusters);
  EXPECT_EQ(static_cast<int>(p.fabric()[0].pes.size()), c.pes_per_cluster);
  EXPECT_EQ(static_cast<int>(p.fabric()[0].accelerators.size()), c.accel_slots_per_cluster);
  EXPECT_EQ(p.pe_count(),
            static_cast<std::size_t>(c.host_cores +
                                     c.clusters * (c.pes_per_cluster + c.accel_slots_per_cluster)));
}

TEST(Platform, PeNamesResolve) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  EXPECT_NE(p.pe_by_name("host0"), nullptr);
  EXPECT_NE(p.pe_by_name("c0p0"), nullptr);
  EXPECT_NE(p.pe_by_name("c1p15"), nullptr);
  EXPECT_NE(p.pe_by_name("c0a1"), nullptr);
  EXPECT_EQ(p.pe_by_name("c9p0"), nullptr);
  EXPECT_EQ(p.pe_by_name(""), nullptr);
}

TEST(Platform, RoundRobinSpreadsClustersFirst) {
  Kernel k;
  PlatformConfig cfg;
  cfg.clusters = 3;
  cfg.pes_per_cluster = 2;
  Platform p(k, cfg);
  EXPECT_EQ(p.allocate_fabric_pe().name(), "c0p0");
  EXPECT_EQ(p.allocate_fabric_pe().name(), "c1p0");
  EXPECT_EQ(p.allocate_fabric_pe().name(), "c2p0");
  EXPECT_EQ(p.allocate_fabric_pe().name(), "c0p1");
  // Wraps around after exhausting all PEs.
  p.allocate_fabric_pe();
  p.allocate_fabric_pe();
  EXPECT_EQ(p.allocate_fabric_pe().name(), "c0p0");
}

TEST(Platform, MemoryLatencyHierarchy) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  SimTime l1 = 0, l2 = 0, l3 = 0;
  k.spawn("prober", [&] {
    SimTime t0 = k.now();
    p.fabric()[0].l1->access(k, 8);
    l1 = k.now() - t0;
    t0 = k.now();
    p.l2().access(k, 8);
    l2 = k.now() - t0;
    t0 = k.now();
    p.l3().access(k, 8);
    l3 = k.now() - t0;
  });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
}

TEST(Platform, MemoryCountsAccesses) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  k.spawn("prober", [&] {
    for (int i = 0; i < 5; ++i) p.l2().access(k, 16);
  });
  k.run();
  EXPECT_EQ(p.l2().access_count(), 5u);
  EXPECT_EQ(p.l2().bytes_transferred(), 80u);
}

TEST(Platform, LargerAccessesCostMore) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  SimTime small = 0, big = 0;
  k.spawn("prober", [&] {
    SimTime t0 = k.now();
    p.l2().access(k, 8);
    small = k.now() - t0;
    t0 = k.now();
    p.l2().access(k, 1024);
    big = k.now() - t0;
  });
  k.run();
  EXPECT_GT(big, small);
}

TEST(Platform, DmaSerializesUsers) {
  Kernel k;
  // DMA engine exclusivity is modelled unless several partitions share the
  // engine: a multi-worker parallel kernel skips the busy-wait (the engine's
  // free event cannot serve waiters from several partitions; docs/KERNEL.md).
  if (k.partition_count() > 1)
    GTEST_SKIP() << "DMA contention not modelled across parallel partitions";
  Platform p(k, PlatformConfig{});
  SimTime single = 0;
  k.spawn("a", [&] {
    p.dmas()[0]->transfer(k, p.l3(), p.l2(), 1024);
    single = k.now();
  });
  k.spawn("b", [&] { p.dmas()[0]->transfer(k, p.l3(), p.l2(), 1024); });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  // Two serialized transfers end at ~2x the single-transfer time.
  EXPECT_GE(k.now(), 2 * single - 2);
  EXPECT_EQ(p.dmas()[0]->transfer_count(), 2u);
  EXPECT_EQ(p.dmas()[0]->bytes_transferred(), 2048u);
}

TEST(Platform, PeExclusivitySerializes) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  Pe& pe = *p.fabric()[0].pes[0];
  k.spawn("a", [&] { pe.execute(k, 100); });
  k.spawn("b", [&] { pe.execute(k, 100); });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(k.now(), 200u);
  EXPECT_EQ(pe.execution_count(), 2u);
  EXPECT_EQ(pe.busy_cycles(), 200u);
}

TEST(Platform, DistinctPesOverlap) {
  Kernel k;
  Platform p(k, PlatformConfig{});
  k.spawn("a", [&] { p.fabric()[0].pes[0]->execute(k, 100); });
  k.spawn("b", [&] { p.fabric()[0].pes[1]->execute(k, 100); });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(k.now(), 100u);  // parallel in simulated time
}

TEST(Platform, DotContainsTopology) {
  Kernel k;
  PlatformConfig cfg;
  cfg.clusters = 2;
  cfg.pes_per_cluster = 3;
  Platform p(k, cfg);
  std::string dot = p.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("cluster_host"), std::string::npos);
  EXPECT_NE(dot.find("Cluster 1"), std::string::npos);
  EXPECT_NE(dot.find("c1p2"), std::string::npos);
  EXPECT_NE(dot.find("\"L2\""), std::string::npos);
  EXPECT_NE(dot.find("\"L3\""), std::string::npos);
  EXPECT_NE(dot.find("dma0"), std::string::npos);
  EXPECT_EQ(dot.find("c2p0"), std::string::npos);  // only 2 clusters
}

}  // namespace
}  // namespace dfdbg::sim

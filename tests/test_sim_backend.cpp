// Backend equivalence: the fiber and thread process backends must be
// observationally identical — same dispatch/activation sequences, same
// teardown-by-unwind behaviour, byte-identical trace output — so that every
// golden file and replay recording is valid under either. Plus the fiber
// backend's guard-page stack-overflow detection.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/sim/kernel.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg::sim {
namespace {

constexpr ProcessBackend kBoth[] = {ProcessBackend::kThreads, ProcessBackend::kFibers};

/// A seeded workload exercising every scheduling primitive: yields, timed
/// waits, event wait/notify, spawn-from-process and debug_break. Returns a
/// full observational transcript of the run.
std::vector<std::string> run_mixed_workload(ProcessBackend backend, std::uint64_t seed) {
  Kernel k(backend);
  std::vector<std::string> log;
  Event ping("ping");
  Event pong("pong");
  for (int i = 0; i < 6; ++i) {
    k.spawn("w" + std::to_string(i), [&k, &log, &ping, &pong, i, seed] {
      Prng rng(seed + static_cast<std::uint64_t>(i));
      for (int step = 0; step < 20; ++step) {
        log.push_back("w" + std::to_string(i) + ":" + std::to_string(step));
        switch (rng.next_below(5)) {
          case 0: k.advance(0); break;
          case 1: k.advance(1 + rng.next_below(7)); break;
          case 2:
            k.notify(i % 2 == 0 ? ping : pong);
            k.advance(0);
            break;
          case 3:
            if (i % 2 == 0) k.wait(pong);
            else k.wait(ping);
            break;
          case 4:
            if (step == 7) k.debug_break();
            else k.advance(2);
            break;
        }
      }
      if (i == 2) {
        k.spawn("late", [&k, &log] {
          log.push_back("late:run");
          k.advance(3);
          log.push_back("late:done");
        });
      }
      log.push_back("w" + std::to_string(i) + ":end");
    });
  }
  for (int round = 0;; ++round) {
    RunResult r = k.run();
    log.push_back("run:" + std::string(to_string(r)) + "@" + std::to_string(k.now()));
    if (r != RunResult::kStopped) {
      // Untie any event deadlock once, then give up (deterministically).
      if (r == RunResult::kDeadlock && round < 50) {
        k.notify(ping);
        k.notify(pong);
        continue;
      }
      break;
    }
  }
  log.push_back("dispatches:" + std::to_string(k.dispatch_count()));
  log.push_back("live:" + std::to_string(k.live_process_count()));
  for (const auto& p : k.processes())
    log.push_back(p->name() + ":acts=" + std::to_string(p->activation_count()) +
                  ",state=" + to_string(p->state()));
  return log;
}

TEST(BackendEquivalence, MixedWorkloadTranscriptsIdentical) {
  for (std::uint64_t seed : {1u, 42u, 1337u}) {
    auto threads = run_mixed_workload(ProcessBackend::kThreads, seed);
    auto fibers = run_mixed_workload(ProcessBackend::kFibers, seed);
    EXPECT_EQ(threads, fibers) << "seed " << seed;
  }
}

TEST(BackendEquivalence, LifoPolicyIdentical) {
  auto run_once = [](ProcessBackend b) {
    Kernel k(b);
    k.set_ready_policy(ReadyPolicy::kLifo);
    Event ev("e");
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
      k.spawn("w" + std::to_string(i), [&, i] {
        k.wait(ev);
        order.push_back(i);
      });
    }
    k.spawn("n", [&] { k.notify(ev); });
    k.run();
    return order;
  };
  EXPECT_EQ(run_once(ProcessBackend::kThreads), run_once(ProcessBackend::kFibers));
}

/// Teardown-by-unwind: killing suspended processes must run their RAII
/// destructors, in spawn order, on both backends.
TEST(BackendEquivalence, TeardownUnwindRunsDestructorsInOrder) {
  for (ProcessBackend b : kBoth) {
    std::vector<std::string> unwound;
    struct Sentinel {
      std::vector<std::string>* log;
      std::string name;
      ~Sentinel() { log->push_back(name); }
    };
    {
      Kernel k(b);
      Event never("never");
      for (int i = 0; i < 3; ++i) {
        k.spawn("s" + std::to_string(i), [&k, &never, &unwound, i] {
          Sentinel s{&unwound, "s" + std::to_string(i)};
          k.wait(never);
        });
      }
      EXPECT_EQ(k.run(), RunResult::kDeadlock);
      EXPECT_EQ(k.live_process_count(), 3u);
    }
    EXPECT_EQ(unwound, (std::vector<std::string>{"s0", "s1", "s2"})) << to_string(b);
  }
}

/// The full stack: H.264 decode under the offline trace collector must give
/// a byte-identical CSV trace and a bit-exact decode on both backends.
TEST(BackendEquivalence, H264TraceByteIdentical) {
  auto run_traced = [](ProcessBackend b, std::string* csv, std::uint64_t* dispatches) {
    set_default_process_backend(b);
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    auto app = h264::H264App::build(cfg);
    ASSERT_TRUE(app.ok());
    ASSERT_EQ((*app)->kernel().backend(), b);
    trace::TraceCollector tc((*app)->app(), 1 << 16);
    tc.attach();
    (*app)->start();
    EXPECT_EQ((*app)->kernel().run(), sim::RunResult::kFinished);
    EXPECT_TRUE((*app)->decoded_matches_golden());
    *csv = tc.to_csv();
    *dispatches = (*app)->kernel().dispatch_count();
  };
  const auto saved = default_process_backend();
  std::string csv_threads, csv_fibers;
  std::uint64_t disp_threads = 0, disp_fibers = 0;
  run_traced(ProcessBackend::kThreads, &csv_threads, &disp_threads);
  run_traced(ProcessBackend::kFibers, &csv_fibers, &disp_fibers);
  set_default_process_backend(saved);
  EXPECT_GT(disp_threads, 0u);
  EXPECT_EQ(disp_threads, disp_fibers);
  EXPECT_FALSE(csv_threads.empty());
  EXPECT_EQ(csv_threads, csv_fibers);
}

// --- backend selection -------------------------------------------------------

TEST(BackendSelection, ExplicitConstructorArgWins) {
  Kernel threads(ProcessBackend::kThreads);
  Kernel fibers(ProcessBackend::kFibers);
  EXPECT_EQ(threads.backend(), ProcessBackend::kThreads);
  EXPECT_EQ(fibers.backend(), ProcessBackend::kFibers);
}

TEST(BackendSelection, EnvVarSteersDefault) {
  const auto saved = default_process_backend();
  // An explicit override beats the environment...
  set_default_process_backend(ProcessBackend::kThreads);
  ::setenv("DFDBG_PROCESS_BACKEND", "fibers", 1);
  EXPECT_EQ(default_process_backend(), ProcessBackend::kThreads);
  // ...and the override is what kernels pick up by default.
  EXPECT_EQ(Kernel{}.backend(), ProcessBackend::kThreads);
  set_default_process_backend(saved);
  ::unsetenv("DFDBG_PROCESS_BACKEND");
}

// --- fiber stacks ------------------------------------------------------------

TEST(FiberStacks, DefaultStackSizeIsSane) {
  EXPECT_GE(FiberContext::default_stack_bytes(), 64u * 1024);
}

volatile int g_sink = 0;

// Non-tail recursion with a per-frame footprint the optimizer cannot elide.
int deep_recursion(int depth) {  // NOLINT(misc-no-recursion)
  volatile char pad[512];
  pad[0] = static_cast<char>(depth);
  g_sink += pad[0];
  return deep_recursion(depth + 1) + pad[0];
}

/// Blowing a fiber's stack must hit the PROT_NONE guard page and die with a
/// signal — never silently corrupt a neighbouring mapping.
TEST(FiberStacks, GuardPageCatchesOverflowDeathTest) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Kernel k(ProcessBackend::kFibers);
        k.spawn("runaway", [] { g_sink = deep_recursion(0); });
        k.run();
      },
      "");
}

}  // namespace
}  // namespace dfdbg::sim

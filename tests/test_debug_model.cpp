// Unit tests of the debugger's internal representation (GraphModel): graph
// registration, token mirroring, provenance chaining, pruning, resync and
// DOT rendering — all driven by synthetic events, no framework involved.
#include <gtest/gtest.h>

#include "dfdbg/debug/model.hpp"

namespace dfdbg::dbg {
namespace {

class ModelFixture : public ::testing::Test {
 protected:
  // A tiny bh -> red -> pipe chain (the §VI-D provenance example).
  void SetUp() override {
    m.on_register_actor(DActorKind::kModule, "pred", "pred", "", "", 0);
    m.on_register_actor(DActorKind::kFilter, "bh", "front.bh", "c0p0", "front", 1);
    m.on_register_actor(DActorKind::kFilter, "red", "pred.red", "c0p1", "pred", 2);
    m.on_register_actor(DActorKind::kFilter, "pipe", "pred.pipe", "c1p0", "pred", 3);
    m.on_register_port("front.bh", "bh2red_out", false, "U32");
    m.on_register_port("pred.red", "bh_in", true, "U32");
    m.on_register_port("pred.red", "Red2PipeCbMB_out", false, "CbCrMB_t");
    m.on_register_port("pred.pipe", "Red2PipeCbMB_in", true, "CbCrMB_t");
    m.on_register_link(0, "bh::bh2red_out -> red::bh_in", "front.bh", "bh2red_out", "pred.red",
                       "bh_in", "U32", "L2");
    m.on_register_link(1, "red::Red2PipeCbMB_out -> pipe::Red2PipeCbMB_in", "pred.red",
                       "Red2PipeCbMB_out", "pred.pipe", "Red2PipeCbMB_in", "CbCrMB_t", "L1");
    m.on_graph_ready();
  }
  GraphModel m;
};

TEST_F(ModelFixture, GraphRegistered) {
  EXPECT_TRUE(m.ready());
  EXPECT_EQ(m.actors().size(), 4u);
  EXPECT_EQ(m.links().size(), 2u);
  const DActor* red = m.actor_by_name("red");
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->path, "pred.red");
  EXPECT_EQ(red->in_conns.size(), 1u);
  EXPECT_EQ(red->out_conns.size(), 1u);
  EXPECT_EQ(m.actor_by_path("pred.pipe")->name, "pipe");
  EXPECT_EQ(m.actor_by_name("ghost"), nullptr);
}

TEST_F(ModelFixture, ConnectionAndLinkLookup) {
  const DConnection* c = m.connection_by_iface("pipe::Red2PipeCbMB_in");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_input);
  EXPECT_EQ(c->type, "CbCrMB_t");
  const DLink* l = m.link_by_iface("pipe::Red2PipeCbMB_in");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->src_actor, "red");
  EXPECT_EQ(l->dst_actor, "pipe");
  EXPECT_EQ(m.link_by_iface("pipe::nope"), nullptr);
}

TEST_F(ModelFixture, PushPopMirrorsTokens) {
  TokenId t = m.on_push(0, 0, pedf::Value::u32(127), "front.bh", 10);
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(m.link(0)->queue.size(), 1u);
  EXPECT_EQ(m.link(0)->pushes, 1u);
  TokenId popped = m.on_pop(0, "pred.red", 20);
  EXPECT_EQ(popped, t);
  EXPECT_TRUE(m.token(t)->consumed);
  EXPECT_EQ(m.token(t)->popped_at, 20u);
  EXPECT_EQ(m.link(0)->queue.size(), 0u);
  EXPECT_EQ(m.actor_by_name("red")->last_token_in, t);
}

TEST_F(ModelFixture, SplitterProvenanceChains) {
  // bh -> red token, consumed; then red (a splitter) produces to pipe.
  TokenId t1 = m.on_push(0, 0, pedf::Value::u32(127), "front.bh", 1);
  m.on_pop(0, "pred.red", 2);
  m.set_behavior("red", ActorBehavior::kSplitter);
  TokenId t2 = m.on_push(1, 0, pedf::Value::u32(999), "pred.red", 3);
  ASSERT_TRUE(t2.valid());
  EXPECT_EQ(m.token(t2)->produced_from, t1);
  // The paper's `info last_token` walk: pipe consumed t2 <- t1.
  m.on_pop(1, "pred.pipe", 4);
  auto path = m.token_path(m.actor_by_name("pipe")->last_token_in, 8);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0]->id, t2);
  EXPECT_EQ(path[1]->id, t1);
}

TEST_F(ModelFixture, UnknownBehaviorBreaksChain) {
  TokenId t1 = m.on_push(0, 0, pedf::Value::u32(1), "front.bh", 1);
  (void)t1;
  m.on_pop(0, "pred.red", 2);
  TokenId t2 = m.on_push(1, 0, pedf::Value::u32(2), "pred.red", 3);
  EXPECT_FALSE(m.token(t2)->produced_from.valid());  // not configured
}

TEST_F(ModelFixture, PipelineProvenanceIsOneToOne) {
  m.set_behavior("red", ActorBehavior::kPipeline);
  TokenId a = m.on_push(0, 0, pedf::Value::u32(1), "front.bh", 1);
  TokenId b = m.on_push(0, 1, pedf::Value::u32(2), "front.bh", 1);
  m.on_pop(0, "pred.red", 2);
  m.on_pop(0, "pred.red", 2);
  TokenId out1 = m.on_push(1, 0, pedf::Value::u32(10), "pred.red", 3);
  TokenId out2 = m.on_push(1, 1, pedf::Value::u32(20), "pred.red", 3);
  EXPECT_EQ(m.token(out1)->produced_from, a);
  EXPECT_EQ(m.token(out2)->produced_from, b);
}

TEST_F(ModelFixture, SplitterReusesLastConsumed) {
  m.set_behavior("red", ActorBehavior::kSplitter);
  TokenId a = m.on_push(0, 0, pedf::Value::u32(1), "front.bh", 1);
  m.on_pop(0, "pred.red", 2);
  TokenId out1 = m.on_push(1, 0, pedf::Value::u32(10), "pred.red", 3);
  TokenId out2 = m.on_push(1, 1, pedf::Value::u32(20), "pred.red", 3);
  // One consumed token fans out to every produced token.
  EXPECT_EQ(m.token(out1)->produced_from, a);
  EXPECT_EQ(m.token(out2)->produced_from, a);
}

TEST_F(ModelFixture, DescribeTokenTranscriptFormat) {
  TokenId t = m.on_push(0, 0, pedf::Value::u32(127), "front.bh", 1);
  EXPECT_EQ(m.describe_token(t), "bh -> red (U32) 127");
}

TEST_F(ModelFixture, SchedulingStatesTracked) {
  m.on_actor_start("pred.pipe");
  EXPECT_EQ(m.actor_by_name("pipe")->sched, SchedState::kScheduled);
  m.on_work_enter("pred.pipe", 1);
  EXPECT_EQ(m.actor_by_name("pipe")->sched, SchedState::kRunning);
  EXPECT_EQ(m.actor_by_name("pipe")->firings, 1u);
  m.on_work_exit("pred.pipe");
  EXPECT_EQ(m.actor_by_name("pipe")->sched, SchedState::kFinished);
  m.on_step_begin("pred", 3);
  EXPECT_EQ(m.actor_by_name("pred")->step, 3u);
  m.on_step_end("pred");
  EXPECT_EQ(m.actor_by_name("pipe")->sched, SchedState::kNotScheduled);
}

TEST_F(ModelFixture, FilterLineTracked) {
  m.on_filter_line("pred.pipe", 221);
  EXPECT_EQ(m.actor_by_name("pipe")->current_line, 221);
}

TEST_F(ModelFixture, RemoveAndReplaceMirrored) {
  m.on_push(1, 0, pedf::Value::u32(1), "pred.red", 1);
  TokenId b = m.on_push(1, 1, pedf::Value::u32(2), "pred.red", 1);
  m.on_remove(1, 0);
  EXPECT_EQ(m.link(1)->queue.size(), 1u);
  EXPECT_EQ(m.link(1)->queue.front(), b);
  m.on_replace(1, 0, pedf::Value::u32(42));
  EXPECT_EQ(m.token(b)->value.as_u64(), 42u);
}

TEST_F(ModelFixture, StaleModelPopReturnsInvalid) {
  // Hooks were off: the framework pushed unseen; now a pop arrives.
  TokenId t = m.on_pop(1, "pred.pipe", 5);
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(m.link(1)->pops, 1u);  // counter still advances
}

TEST_F(ModelFixture, ResyncRebuildsAnonymousTokens) {
  m.on_push(1, 0, pedf::Value::u32(1), "pred.red", 1);
  m.resync_link(1, 5);
  EXPECT_EQ(m.link(1)->queue.size(), 5u);
  // Anonymous tokens have no meaningful payload but keep occupancy honest.
  for (TokenId id : m.link(1)->queue) EXPECT_NE(m.token(id), nullptr);
}

TEST_F(ModelFixture, HistoryPruning) {
  m.set_token_history_limit(3);
  for (int i = 0; i < 10; ++i) {
    m.on_push(0, static_cast<std::uint64_t>(i), pedf::Value::u32(0), "front.bh", 1);
    m.on_pop(0, "pred.red", 2);
  }
  EXPECT_EQ(m.tokens_observed(), 10u);
  EXPECT_LE(m.token_count(), 3u);
}

TEST_F(ModelFixture, TokenMemoryAccounting) {
  EXPECT_EQ(m.token_memory_bytes(), 0u);
  m.on_push(0, 0, pedf::Value::u32(1), "front.bh", 1);
  EXPECT_GT(m.token_memory_bytes(), 0u);
}

TEST_F(ModelFixture, CompletionNamesIncludeActorsAndIfaces) {
  auto names = m.completion_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "pipe"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pipe::Red2PipeCbMB_in"), names.end());
}

TEST_F(ModelFixture, DotWithTokenCounts) {
  m.on_push(1, 0, pedf::Value::u32(1), "pred.red", 1);
  m.on_push(1, 1, pedf::Value::u32(2), "pred.red", 1);
  std::string dot = m.to_dot(/*with_tokens=*/true);
  EXPECT_NE(dot.find("\"red\" -> \"pipe\""), std::string::npos);
  EXPECT_NE(dot.find("[2]"), std::string::npos);  // occupancy annotation
  std::string plain = m.to_dot(false);
  EXPECT_EQ(plain.find("[2]"), std::string::npos);
}

TEST_F(ModelFixture, InjectedTokensFlagged) {
  TokenId t = m.on_push(1, 0, pedf::Value::u32(1), "", 1, /*injected=*/true);
  EXPECT_TRUE(m.token(t)->injected);
}

TEST(ModelNames, AmbiguousShortNamesNotResolvable) {
  GraphModel m;
  m.on_register_actor(DActorKind::kController, "controller", "a.controller", "", "a", 0);
  m.on_register_actor(DActorKind::kController, "controller", "b.controller", "", "b", 1);
  EXPECT_EQ(m.actor_by_name("controller"), nullptr);
  EXPECT_NE(m.actor_by_path("a.controller"), nullptr);
}

}  // namespace
}  // namespace dfdbg::dbg

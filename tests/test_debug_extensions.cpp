// Tests of the debugger features beyond the paper's proof-of-concept that
// its §III approach calls for: provenance-conditional catchpoints (token
// source conditions), link-occupancy catchpoints, predicate-evaluation
// breakpoints, and PEDF rate control (actor_fire_n).
#include <gtest/gtest.h>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/pedf/application.hpp"

namespace dfdbg {
namespace {

h264::H264AppConfig small_config(h264::FaultPlan::Kind fault = h264::FaultPlan::Kind::kNone) {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  cfg.fault.kind = fault;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = fault == h264::FaultPlan::Kind::kRateMismatch ? 1 : 0;
  return cfg;
}

struct Rig {
  std::unique_ptr<h264::H264App> app;
  std::unique_ptr<dbg::Session> session;
  explicit Rig(const h264::H264AppConfig& cfg) {
    auto built = h264::H264App::build(cfg);
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<dbg::Session>(app->app());
    session->attach();
    app->start();
  }
};

// --- catch_token_from ---------------------------------------------------------

TEST(TokenFrom, StopsOnDerivedToken) {
  Rig rig(small_config());
  ASSERT_TRUE(rig.session->configure_behavior("red", dbg::ActorBehavior::kSplitter).ok());
  // Stop when pipe receives a token derived (via red) from bh.
  auto bp = rig.session->catch_token_from("pipe::Red2PipeCbMB_in", "bh");
  ASSERT_TRUE(bp.ok()) << bp.status().message();
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, dbg::StopKind::kTokenProvenance);
  EXPECT_NE(out.stops[0].message.find("derives from `bh'"), std::string::npos);
}

TEST(TokenFrom, DirectProducerAlsoMatches) {
  Rig rig(small_config());
  auto bp = rig.session->catch_token_from("pipe::Red2PipeCbMB_in", "red");
  ASSERT_TRUE(bp.ok());
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, dbg::StopKind::kTokenProvenance);
}

TEST(TokenFrom, NoStopWithoutBehaviorConfig) {
  // Without the splitter configuration red's tokens carry no provenance, so
  // a transitive source never matches (the paper: the developer must supply
  // the behaviour).
  Rig rig(small_config());
  auto bp = rig.session->catch_token_from("pipe::Red2PipeCbMB_in", "bh");
  ASSERT_TRUE(bp.ok());
  auto out = rig.session->run();
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
}

TEST(TokenFrom, Validation) {
  Rig rig(small_config());
  EXPECT_FALSE(rig.session->catch_token_from("pipe::nope", "bh").ok());
  EXPECT_FALSE(rig.session->catch_token_from("pipe::Red2PipeCbMB_in", "ghost").ok());
  EXPECT_FALSE(rig.session->catch_token_from("red::Red2PipeCbMB_out", "bh").ok());  // output
}

// --- break_on_occupancy ----------------------------------------------------------

TEST(Occupancy, StopsAtThreshold) {
  Rig rig(small_config(h264::FaultPlan::Kind::kRateMismatch));
  auto bp = rig.session->break_on_occupancy("ipf::pipe_in", 20);
  ASSERT_TRUE(bp.ok()) << bp.status().message();
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, dbg::StopKind::kLinkOccupancy);
  EXPECT_EQ(rig.app->app().link_by_iface("ipf::pipe_in")->occupancy(), 20u);
  EXPECT_NE(out.stops[0].message.find("holds 20 token(s)"), std::string::npos);
}

TEST(Occupancy, SilentOnHealthyRun) {
  Rig rig(small_config());
  ASSERT_TRUE(rig.session->break_on_occupancy("ipf::pipe_in", 20).ok());
  auto out = rig.session->run();
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
}

TEST(Occupancy, Validation) {
  Rig rig(small_config());
  EXPECT_FALSE(rig.session->break_on_occupancy("ipf::pipe_in", 0).ok());
  EXPECT_FALSE(rig.session->break_on_occupancy("nope::x", 5).ok());
}

// --- break_on_predicate -------------------------------------------------------------

TEST(PredicateBp, StopsWithResult) {
  Rig rig(small_config());
  auto bp = rig.session->break_on_predicate("pred", "mb_is_intra");
  ASSERT_TRUE(bp.ok()) << bp.status().message();
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, dbg::StopKind::kPredicateEval);
  // Frame 0 is intra-only, so the first evaluation is true.
  EXPECT_NE(out.stops[0].message.find("`mb_is_intra' of module `pred' evaluated to true"),
            std::string::npos);
}

TEST(PredicateBp, FiresPerEvaluation) {
  Rig rig(small_config());
  ASSERT_TRUE(rig.session->break_on_predicate("pred", "mb_is_intra").ok());
  int stops = 0;
  for (;;) {
    auto out = rig.session->run();
    if (out.result != sim::RunResult::kStopped) break;
    stops++;
  }
  EXPECT_EQ(stops, small_config().params.total_mbs());  // one evaluation per MB
}

TEST(PredicateBp, Validation) {
  Rig rig(small_config());
  EXPECT_FALSE(rig.session->break_on_predicate("ipred", "x").ok());  // not a module
  EXPECT_FALSE(rig.session->break_on_predicate("ghost", "x").ok());
}

// --- CLI surface ------------------------------------------------------------------

TEST(ExtCli, OccupancyCatch) {
  Rig rig(small_config(h264::FaultPlan::Kind::kRateMismatch));
  cli::Interpreter gdb(*rig.session);
  ASSERT_TRUE(gdb.execute("iface ipf::pipe_in catch occupancy 20").ok());
  gdb.console().take();
  gdb.execute("run");
  EXPECT_NE(gdb.console().take().find("holds 20 token(s)"), std::string::npos);
}

TEST(ExtCli, FromCatch) {
  Rig rig(small_config());
  cli::Interpreter gdb(*rig.session);
  ASSERT_TRUE(gdb.execute("filter red configure splitter").ok());
  ASSERT_TRUE(gdb.execute("iface pipe::Red2PipeCbMB_in catch from bh").ok());
  gdb.console().take();
  gdb.execute("run");
  EXPECT_NE(gdb.console().take().find("derives from `bh'"), std::string::npos);
}

TEST(ExtCli, ContentConditionOnStructField) {
  // Frame 0 is intra-only: InterNotIntra == 1 fires only with the fault.
  Rig rig(small_config(h264::FaultPlan::Kind::kCorruptSplitter));
  rig.app->store().fault.trigger_mb = 2;
  cli::Interpreter gdb(*rig.session);
  ASSERT_TRUE(gdb.execute("filter pipe catch Red2PipeCbMB_in if InterNotIntra == 1").ok());
  gdb.console().take();
  gdb.execute("run");
  std::string out = gdb.console().take();
  EXPECT_NE(out.find("matched InterNotIntra == 1"), std::string::npos) << out;
}

TEST(ExtCli, ContentConditionOnScalarValue) {
  Rig rig(small_config());
  cli::Interpreter gdb(*rig.session);
  // bh's third summary token is (2 << 8) | mode; value >= 512 selects it.
  ASSERT_TRUE(gdb.execute("iface red::bh_in catch if value >= 512").ok());
  gdb.console().take();
  gdb.execute("run");
  std::string out = gdb.console().take();
  EXPECT_NE(out.find("matched value >= 512"), std::string::npos) << out;
  // The matching token is the last one pipe's upstream red consumed next...
  // verify via the framework: the link's pop index has reached 3 tokens.
  EXPECT_GE(rig.app->app().link_by_iface("red::bh_in")->pop_index(), 2u);
}

TEST(ExtCli, ContentConditionValidation) {
  Rig rig(small_config());
  cli::Interpreter gdb(*rig.session);
  EXPECT_FALSE(gdb.execute("iface red::bh_in catch if NoField == 1").ok());
  EXPECT_FALSE(gdb.execute("iface pipe::Red2PipeCbMB_in catch if value == 1").ok());
  EXPECT_FALSE(gdb.execute("iface red::bh_in catch if value ~= 1").ok());
  EXPECT_FALSE(gdb.execute("iface red::bh_in catch if value ==").ok());
}

TEST(ExtCli, PredicateBreak) {
  Rig rig(small_config());
  cli::Interpreter gdb(*rig.session);
  ASSERT_TRUE(gdb.execute("module pred break predicate more_mbs").ok());
  gdb.console().take();
  gdb.execute("run");
  EXPECT_NE(gdb.console().take().find("predicate `more_mbs'"), std::string::npos);
}

// --- profiling & ignore counts -----------------------------------------------------

TEST(Profile, ReportsPerActorActivity) {
  Rig rig(small_config());
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kFinished);
  std::string prof = cli::render_text(rig.session->profile_snapshot());
  EXPECT_NE(prof.find("scheduler dispatches"), std::string::npos);
  for (const char* a : {"h264.front.vld", "h264.pred.ipf", "h264.pred.pred_controller"})
    EXPECT_NE(prof.find(a), std::string::npos) << a;
  // vld fired once per MB; its row carries that count.
  int mbs = small_config().params.total_mbs();
  EXPECT_NE(prof.find(strformat("%-22s", "h264.front.vld")), std::string::npos);
  EXPECT_EQ(rig.app->app().filter_by_name("vld")->firings(),
            static_cast<std::uint64_t>(mbs));
}

TEST(IgnoreCount, SuppressesTriggersButCountsHits) {
  Rig rig(small_config());
  auto bp = rig.session->catch_work("pipe");
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(rig.session->set_breakpoint_ignore(*bp, 2).ok());
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  // Stopped only on the third firing; the first two were counted silently.
  EXPECT_EQ(rig.session->graph().actor_by_name("pipe")->firings, 3u);
  auto bps = rig.session->breakpoints();
  ASSERT_EQ(bps.size(), 1u);
  EXPECT_EQ(bps[0].hits, 3u);
  EXPECT_FALSE(rig.session->set_breakpoint_ignore(dbg::BpId(99), 1).ok());
}

TEST(IgnoreCount, CliCommand) {
  Rig rig(small_config());
  cli::Interpreter gdb(*rig.session);
  ASSERT_TRUE(gdb.execute("filter pipe catch work").ok());
  ASSERT_TRUE(gdb.execute("ignore 0 3").ok());
  gdb.console().take();
  gdb.execute("run");
  EXPECT_EQ(rig.session->graph().actor_by_name("pipe")->firings, 4u);
}

// --- source-level single step -----------------------------------------------------

TEST(StepLine, StopsAtConsecutiveLines) {
  Rig rig(small_config());
  ASSERT_TRUE(rig.session->break_source_line("ipred", 215).ok());
  auto out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  ASSERT_EQ(out.stops[0].line, 215);
  // step: next marker inside ipred is line 216, then 217.
  ASSERT_TRUE(rig.session->step_line().ok());
  out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].line, 216);
  EXPECT_NE(out.stops[0].message.find("Stepped: filter `ipred' now at line 216"),
            std::string::npos);
  ASSERT_TRUE(rig.session->step_line().ok());
  out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].line, 217);
}

TEST(StepLine, RequiresACurrentStop) {
  Rig rig(small_config());
  EXPECT_FALSE(rig.session->step_line().ok());
}

// --- in-flight token listing --------------------------------------------------------

TEST(LinkTokens, ListsQueuedPayloads) {
  Rig rig(small_config());
  // Stage two tokens on ipred's config link before anything runs.
  ASSERT_TRUE(rig.session->inject_token("ipred::Hwcfg_in", pedf::Value::u32(20)).ok());
  ASSERT_TRUE(rig.session->inject_token("ipred::Hwcfg_in", pedf::Value::u32(21)).ok());
  std::string out = cli::render_or_error(rig.session->link_tokens_view("ipred::Hwcfg_in"));
  EXPECT_NE(out.find("holds 2 token(s)"), std::string::npos);
  EXPECT_NE(out.find("#0 (U32) 20"), std::string::npos);
  EXPECT_NE(out.find("#1 (U32) 21"), std::string::npos);
  EXPECT_NE(out.find("injected by debugger"), std::string::npos);
}

TEST(LinkTokens, EmptyAndUnknown) {
  Rig rig(small_config());
  EXPECT_NE(cli::render_or_error(rig.session->link_tokens_view("ipred::Hwcfg_in")).find("is empty"),
            std::string::npos);
  EXPECT_NE(cli::render_or_error(rig.session->link_tokens_view("nope::x")).find("no link"),
            std::string::npos);
}

TEST(LinkTokens, CliVerb) {
  Rig rig(small_config());
  cli::Interpreter gdb(*rig.session);
  ASSERT_TRUE(gdb.execute("tok insert ipred::Hwcfg_in 20").ok());
  gdb.console().take();
  ASSERT_TRUE(gdb.execute("iface ipred::Hwcfg_in tokens").ok());
  EXPECT_NE(gdb.console().take().find("#0 (U32) 20"), std::string::npos);
}

// --- PEDF rate control ----------------------------------------------------------------

TEST(RateControl, ActorFireNRunsNTimes) {
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "rate");
  auto mod = std::make_unique<pedf::Module>("m");
  mod->add_port("in", pedf::PortDir::kIn, pedf::TypeDesc());
  mod->add_port("out", pedf::PortDir::kOut, pedf::TypeDesc());
  // fast consumes one token per firing; the controller fires it 4x per step
  // to drain the 4-tokens-per-step producer.
  auto fast = std::make_unique<pedf::FnFilter>("fast", [](pedf::FilterContext& ctx) {
    pedf::Value v = ctx.in("in").get();
    ctx.out("out").put(v);
  });
  fast->add_port("in", pedf::PortDir::kIn, pedf::TypeDesc());
  fast->add_port("out", pedf::PortDir::kOut, pedf::TypeDesc());
  mod->add_filter(std::move(fast));
  mod->set_controller(std::make_unique<pedf::FnController>(
      "ctl", [](pedf::ControllerContext& ctx) {
        for (int s = 0; s < 3; ++s) {
          ctx.next_step();
          ctx.actor_fire_n("fast", 4);
        }
      }));
  mod->bind("this.in", "fast.in");
  mod->bind("fast.out", "this.out");
  app.set_root(std::move(mod));
  std::vector<pedf::Value> stream;
  for (int i = 0; i < 12; ++i) stream.push_back(pedf::Value::u32(static_cast<std::uint32_t>(i)));
  app.add_host_source("src", "m.in", std::move(stream));
  auto& sink = app.add_host_sink("snk", "m.out", 12);
  ASSERT_TRUE(app.elaborate().ok());
  app.start();
  EXPECT_EQ(kernel.run(), sim::RunResult::kFinished);
  ASSERT_EQ(sink.received().size(), 12u);
  pedf::Filter* f = app.filter_by_name("fast");
  EXPECT_EQ(f->firings(), 12u);  // 4 firings x 3 steps
}

}  // namespace
}  // namespace dfdbg

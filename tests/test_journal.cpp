// Tests of the token provenance flight recorder (dfdbg/obs/journal): ring
// semantics and drop accounting, token id threading through pedf::Link,
// flow-event export ("s"/"f" arrows in the Chrome trace), the `whence`
// causal-chain query, wraparound under a real H.264 run, and replay
// determinism of token ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/trace/chrome_trace.hpp"

namespace dfdbg {
namespace {

using dbg::ActorBehavior;
using dbg::RunOutcome;
using dbg::Session;
using h264::H264App;
using h264::H264AppConfig;

/// Forces a known enabled-state for the duration of one test (the CLI
/// interpreter flips the global flag on construction, so tests must not
/// depend on run order).
struct EnabledGuard {
  explicit EnabledGuard(bool on) : prev_(obs::enabled()) { obs::set_enabled(on); }
  ~EnabledGuard() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

/// Restores the global journal to its default shape around a test: default
/// capacity (which clears the window), recording on, fresh token sequence.
struct JournalGuard {
  JournalGuard() { restore(); }
  ~JournalGuard() { restore(); }

  static void restore() {
    obs::Journal& j = obs::Journal::global();
    j.set_capacity(obs::Journal::kDefaultCapacity);
    j.set_recording(true);
    j.reset();
  }
};

H264AppConfig cs_config() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  cfg.params.qp = 20;
  return cfg;
}

struct Rig {
  std::unique_ptr<H264App> app;
  std::unique_ptr<Session> session;

  explicit Rig(const H264AppConfig& cfg) {
    auto built = H264App::build(cfg);
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<Session>(app->app());
    session->attach();
    app->start();
  }
};

// ---------------------------------------------------------------------------
// Unit behaviour of the Journal itself
// ---------------------------------------------------------------------------

TEST(Journal, TokenIdsMonotonicAndUngated) {
  EnabledGuard off(false);  // ids are allocated even while observability is off
  obs::Journal j(8);
  EXPECT_EQ(j.last_token(), 0u);
  EXPECT_EQ(j.alloc_token(), 1u);
  EXPECT_EQ(j.alloc_token(), 2u);
  EXPECT_EQ(j.alloc_token(), 3u);
  EXPECT_EQ(j.last_token(), 3u);
  j.reset();
  EXPECT_EQ(j.last_token(), 0u);
  EXPECT_EQ(j.alloc_token(), 1u);
}

TEST(Journal, RecordGatedOnEnabledAndRecording) {
  obs::Journal j(8);
  obs::JournalEvent ev;
  ev.kind = obs::JournalKind::kTokenPush;
  {
    EnabledGuard off(false);
    j.record(ev);
    EXPECT_EQ(j.size(), 0u);  // disabled: no event retained
  }
  EnabledGuard on(true);
  j.set_recording(false);
  j.record(ev);
  EXPECT_EQ(j.size(), 0u);  // recording sub-gate silences the journal
  j.set_recording(true);
  j.record(ev);
  EXPECT_EQ(j.size(), 1u);
}

TEST(Journal, WraparoundOverwritesOldestAndCountsDrops) {
  EnabledGuard on(true);
  obs::Journal j(4);
  for (std::uint64_t t = 1; t <= 10; t++) {
    obs::JournalEvent ev;
    ev.time = t;
    ev.token = t;
    j.record(ev);
  }
  EXPECT_EQ(j.size(), 4u);          // bounded
  EXPECT_EQ(j.total_recorded(), 10u);
  EXPECT_EQ(j.dropped(), 6u);       // 10 recorded - 4 retained
  // Window is the newest 4, oldest first.
  for (std::size_t i = 0; i < j.size(); i++) EXPECT_EQ(j.at(i).time, 7 + i);
}

TEST(Journal, SetCapacityClearsWindowButKeepsNamesAndIds) {
  EnabledGuard on(true);
  obs::Journal j(4);
  std::uint32_t id = j.intern_name("pipe");
  (void)j.alloc_token();
  obs::JournalEvent ev;
  j.record(ev);
  j.set_capacity(16);
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.capacity(), 16u);
  EXPECT_EQ(j.dropped(), 0u);
  EXPECT_EQ(j.intern_name("pipe"), id);  // intern table survives
  EXPECT_EQ(j.last_token(), 1u);         // token sequence survives
}

TEST(Journal, InternIsIdempotentAndNamesResolve) {
  obs::Journal j(4);
  std::uint32_t a = j.intern_name("ipred");
  std::uint32_t b = j.intern_name("ipf");
  EXPECT_NE(a, b);
  EXPECT_EQ(j.intern_name("ipred"), a);
  EXPECT_EQ(j.name(a), "ipred");
  EXPECT_EQ(j.name(b), "ipf");
  EXPECT_EQ(j.name(UINT32_MAX), "?");
}

TEST(Journal, SummaryAndFormatLast) {
  EnabledGuard on(true);
  obs::Journal j(8);
  obs::JournalEvent push;
  push.kind = obs::JournalKind::kTokenPush;
  push.time = 42;
  push.token = 7;
  push.link = 3;
  push.actor = j.intern_name("vld");
  j.record(push);
  obs::JournalEvent fire;
  fire.kind = obs::JournalKind::kFireBegin;
  fire.time = 43;
  fire.actor = j.intern_name("pipe");
  fire.firing = 2;
  j.record(fire);
  std::string sum = j.summary();
  EXPECT_NE(sum.find("journal: "), std::string::npos);
  EXPECT_NE(sum.find("push"), std::string::npos);
  EXPECT_NE(sum.find("fire-begin"), std::string::npos);
  std::string last = j.format_last(10, [](std::uint32_t link) {
    return "link#" + std::to_string(link);
  });
  EXPECT_NE(last.find("tok#7"), std::string::npos);
  EXPECT_NE(last.find("link#3"), std::string::npos);
  EXPECT_NE(last.find("vld"), std::string::npos);
  EXPECT_NE(last.find("firing=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Token id threading through pedf::Link
// ---------------------------------------------------------------------------

TEST(LinkUid, ThreadsThroughPushPopAndErase) {
  pedf::Link l(pedf::LinkId(0), "a::out -> b::in", pedf::TypeDesc(), nullptr, nullptr);
  EXPECT_EQ(l.last_pushed_uid(), 0u);
  EXPECT_EQ(l.last_popped_uid(), 0u);

  l.push_raw(pedf::Value::u32(10));
  std::uint64_t first = l.last_pushed_uid();
  l.push_raw(pedf::Value::u32(11));
  std::uint64_t second = l.last_pushed_uid();
  l.push_raw(pedf::Value::u32(12));
  std::uint64_t third = l.last_pushed_uid();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(second, first + 1);  // global sequence, consecutive for one pusher
  EXPECT_EQ(third, second + 1);

  // Queue slots expose the ids, parallel to the values.
  EXPECT_EQ(l.token_uid_at(0), first);
  EXPECT_EQ(l.token_uid_at(1), second);
  EXPECT_EQ(l.token_uid_at(2), third);

  // Pop travels in FIFO order and remembers the popped id.
  EXPECT_EQ(l.pop_raw().as_u64(), 10u);
  EXPECT_EQ(l.last_popped_uid(), first);

  // Erasing a middle slot keeps the mapping aligned.
  l.erase_at(0);  // removes the token that carried `second`
  EXPECT_EQ(l.token_uid_at(0), third);

  // Poke (replace in place) keeps the token's identity: an altered token is
  // still "the same token" for provenance purposes.
  l.poke(0, pedf::Value::u32(99));
  EXPECT_EQ(l.token_uid_at(0), third);
  EXPECT_EQ(l.pop_raw().as_u64(), 99u);
  EXPECT_EQ(l.last_popped_uid(), third);
}

// ---------------------------------------------------------------------------
// Flow-event export: "s"/"f" arrows tying a push to its pop
// ---------------------------------------------------------------------------

/// Extracts the value of `"key":` at/after `from` in a JSON line-less blob.
std::string json_value_after(const std::string& js, std::size_t from, const std::string& key) {
  std::size_t k = js.find("\"" + key + "\":", from);
  if (k == std::string::npos) return "";
  k += key.size() + 3;
  std::size_t end = js.find_first_of(",}", k);
  return js.substr(k, end - k);
}

TEST(FlowExport, JournalExportContainsMatchedFlowArrows) {
  EnabledGuard on(true);
  JournalGuard jg;
  Rig rig(cs_config());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kFinished);

  obs::Journal& j = obs::Journal::global();
  EXPECT_GT(j.size(), 0u);

  trace::ChromeTraceOptions options;
  options.dispatch_instants = true;
  std::string js = trace::export_journal_chrome_trace(j, rig.app->app(), options);
  // Structure: one JSON object with a traceEvents list and flow metadata.
  EXPECT_EQ(js.front(), '{');
  ASSERT_GE(js.size(), 2u);
  EXPECT_EQ(js.substr(js.size() - 2), "}\n");
  EXPECT_NE(js.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(js.find("\"flow_pairs\":"), std::string::npos);

  // At least one flow start, and its id must have a matching finish.
  std::size_t s = js.find("\"ph\":\"s\"");
  ASSERT_NE(s, std::string::npos) << "no flow-start event in journal export";
  std::string id = json_value_after(js, s, "id");
  ASSERT_FALSE(id.empty());
  bool matched = false;
  for (std::size_t f = js.find("\"ph\":\"f\""); f != std::string::npos;
       f = js.find("\"ph\":\"f\"", f + 1)) {
    if (json_value_after(js, f, "id") == id) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched) << "flow start id=" << id << " has no matching finish";

  // The flow arrows also overlay onto the TraceCollector-window exporter.
  trace::TraceCollector empty_window(rig.app->app(), 16);
  trace::ChromeTraceOptions overlay;
  overlay.journal = &j;
  std::string js2 = trace::export_chrome_trace(empty_window, rig.app->app(), overlay);
  EXPECT_NE(js2.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(js2.find("\"ph\":\"f\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// `whence`: the causal chain query
// ---------------------------------------------------------------------------

/// Runs the decoder to the first stop on `ipf::ipf_out` with full behaviour
/// annotations and returns the `whence` output for the newest queued token.
std::string whence_at_first_ipf_send() {
  Rig rig(cs_config());
  EXPECT_TRUE(rig.session->configure_behavior("red", ActorBehavior::kSplitter).ok());
  EXPECT_TRUE(rig.session->configure_behavior("pipe", ActorBehavior::kMerger).ok());
  EXPECT_TRUE(rig.session->configure_behavior("ipred", ActorBehavior::kMerger).ok());
  EXPECT_TRUE(rig.session->configure_behavior("ipf", ActorBehavior::kMerger).ok());
  EXPECT_TRUE(rig.session->break_on_send("ipf::ipf_out").ok());
  RunOutcome out = rig.session->run();
  EXPECT_EQ(out.result, sim::RunResult::kStopped);
  const dbg::DLink* dl = rig.session->graph().link_by_iface("ipf::ipf_out");
  EXPECT_NE(dl, nullptr);
  EXPECT_FALSE(dl->queue.empty());
  return cli::render_or_error(rig.session->whence_chain("ipf::ipf_out", dl->queue.size() - 1, 8));
}

TEST(Whence, CausalChainReachesAtLeastThreeHops) {
  EnabledGuard on(true);
  JournalGuard jg;
  std::string chain = whence_at_first_ipf_send();
  EXPECT_NE(chain.find("causal chain of slot"), std::string::npos) << chain;
  // Count "#N tok#" hop lines.
  int hops = 0;
  for (std::size_t p = chain.find(" tok#"); p != std::string::npos;
       p = chain.find(" tok#", p + 1))
    hops++;
  EXPECT_GE(hops, 3) << chain;
}

TEST(Whence, ErrorsAreReadable) {
  EnabledGuard on(true);
  JournalGuard jg;
  Rig rig(cs_config());
  EXPECT_NE(cli::render_or_error(rig.session->whence_chain("nosuch::iface", 0, 8)).find("<no link"),
            std::string::npos);
  EXPECT_NE(cli::render_or_error(rig.session->whence_chain("ipf::ipf_out", 99, 8)).find("no slot 99"),
            std::string::npos);
}

TEST(Whence, ReplayedRunYieldsIdenticalChains) {
  // The deterministic kernel plus a reset token sequence must reproduce the
  // exact same provenance ids and therefore byte-identical `whence` output —
  // the property that makes recorded sessions comparable across replays.
  EnabledGuard on(true);
  JournalGuard jg;
  obs::Journal::global().reset();
  std::string first = whence_at_first_ipf_send();
  obs::Journal::global().reset();
  std::string second = whence_at_first_ipf_send();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("tok#"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TokenRecorder provenance
// ---------------------------------------------------------------------------

TEST(Recorder, RecordsCarryTokenIds) {
  EnabledGuard on(true);
  JournalGuard jg;
  Rig rig(cs_config());
  ASSERT_TRUE(rig.session->record_iface("hwcfg::pipe_MbType_out").ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kFinished);
  const auto* records = rig.session->recorder().records("hwcfg::pipe_MbType_out");
  ASSERT_NE(records, nullptr);
  ASSERT_FALSE(records->empty());
  for (const auto& r : *records) EXPECT_NE(r.token, 0u);
}

// ---------------------------------------------------------------------------
// Wraparound under a real decode: bounded memory, honest drop accounting
// ---------------------------------------------------------------------------

TEST(Wraparound, H264RunAtCapacity16SurvivesAndReportsDrops) {
  EnabledGuard on(true);
  JournalGuard jg;
  obs::Registry::global().reset();
  obs::Journal& j = obs::Journal::global();
  j.set_capacity(16);

  Rig rig(cs_config());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kFinished);
  EXPECT_TRUE(rig.app->decoded_matches_golden());

  EXPECT_EQ(j.size(), 16u);   // bounded exactly at the configured capacity
  EXPECT_GT(j.dropped(), 0u);  // an H.264 decode overflows 16 slots many times
  EXPECT_EQ(j.total_recorded(), j.dropped() + j.size());
  // The drop count is also visible in the metrics registry.
  EXPECT_GT(obs::Registry::global().counter("journal.dropped").value(), 0u);
  EXPECT_GT(obs::Registry::global().counter("journal.recorded").value(),
            obs::Registry::global().counter("journal.dropped").value());

  // The retained window stays well-ordered (times nondecreasing) and
  // formattable after heavy wraparound.
  for (std::size_t i = 1; i < j.size(); i++) EXPECT_GE(j.at(i).time, j.at(i - 1).time);
  std::string last = j.format_last(16);
  EXPECT_NE(last.find("t="), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI verbs: journal / whence / info flow
// ---------------------------------------------------------------------------

TEST(Cli, JournalWhenceInfoFlowSmoke) {
  JournalGuard jg;
  Rig rig(cs_config());
  cli::Interpreter interp(*rig.session);  // enables obs for the session
  ASSERT_TRUE(interp.execute("filter red configure splitter").ok());
  ASSERT_TRUE(interp.execute("iface ipf::ipf_out catch").ok());
  ASSERT_TRUE(interp.execute("run").ok());
  interp.console().take();

  ASSERT_TRUE(interp.execute("journal").ok());
  std::string out = interp.console().take();
  EXPECT_NE(out.find("journal: "), std::string::npos);
  EXPECT_NE(out.find("token ids allocated"), std::string::npos);

  ASSERT_TRUE(interp.execute("journal last 5").ok());
  out = interp.console().take();
  EXPECT_NE(out.find("t="), std::string::npos);

  ASSERT_TRUE(interp.execute("whence ipf::ipf_out 0").ok());
  out = interp.console().take();
  EXPECT_NE(out.find("causal chain of slot 0"), std::string::npos) << out;
  EXPECT_NE(out.find("tok#"), std::string::npos) << out;

  ASSERT_TRUE(interp.execute("info flow").ok());
  out = interp.console().take();
  EXPECT_NE(out.find("window pushes"), std::string::npos);
  EXPECT_NE(out.find("ipf_out"), std::string::npos);

  // Dump writes a loadable flow-event JSON file.
  std::string path = ::testing::TempDir() + "journal_dump_test.json";
  ASSERT_TRUE(interp.execute("journal dump " + path).ok());
  out = interp.console().take();
  EXPECT_NE(out.find("Journal exported to"), std::string::npos);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string js;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) js.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(js.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"f\""), std::string::npos);

  // Recording gate round-trip and completion of the new verbs.
  ASSERT_TRUE(interp.execute("journal off").ok());
  EXPECT_FALSE(obs::Journal::global().recording());
  ASSERT_TRUE(interp.execute("journal on").ok());
  EXPECT_TRUE(obs::Journal::global().recording());
  auto comps = interp.complete("jour");
  EXPECT_NE(std::find(comps.begin(), comps.end(), "journal"), comps.end());
  comps = interp.complete("whence ipf::ipf_");
  EXPECT_FALSE(comps.empty());
}

}  // namespace
}  // namespace dfdbg

// Tests of the deterministic cooperative kernel: scheduling, events, time,
// debug_break resumability, deadlock detection, instrumentation port.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::sim {
namespace {

TEST(Kernel, RunsToCompletion) {
  Kernel k;
  int ran = 0;
  k.spawn("p", [&] { ran = 1; });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(k.live_process_count(), 0u);
}

TEST(Kernel, FifoDeterminism) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    k.spawn("p" + std::to_string(i), [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, AdvanceOrdersByTime) {
  Kernel k;
  std::vector<int> order;
  k.spawn("late", [&] {
    k.advance(100);
    order.push_back(2);
  });
  k.spawn("early", [&] {
    k.advance(10);
    order.push_back(1);
  });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(k.now(), 100u);
}

TEST(Kernel, SameTimeWakeupsAreFifo) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    k.spawn("p" + std::to_string(i), [&k, &order, i] {
      k.advance(50);
      order.push_back(i);
    });
  }
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Kernel, WaitNotify) {
  Kernel k;
  Event ev("go");
  std::vector<std::string> order;
  k.spawn("waiter", [&] {
    order.push_back("wait");
    k.wait(ev);
    order.push_back("woken");
  });
  k.spawn("notifier", [&] {
    order.push_back("notify");
    k.notify(ev);
  });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<std::string>{"wait", "notify", "woken"}));
  EXPECT_EQ(ev.notify_count(), 1u);
}

TEST(Kernel, NotifyWakesAllWaitersInOrder) {
  Kernel k;
  Event ev("go");
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    k.spawn("w" + std::to_string(i), [&, i] {
      k.wait(ev);
      order.push_back(i);
    });
  }
  k.spawn("n", [&] { k.notify(ev); });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Kernel, DeadlockDetected) {
  Kernel k;
  Event never("never");
  k.spawn("stuck", [&] { k.wait(never); });
  EXPECT_EQ(k.run(), RunResult::kDeadlock);
  EXPECT_EQ(k.live_process_count(), 1u);
}

TEST(Kernel, NotifyFromOutsideUntiesDeadlock) {
  Kernel k;
  Event ev("ev");
  bool done = false;
  k.spawn("stuck", [&] {
    k.wait(ev);
    done = true;
  });
  EXPECT_EQ(k.run(), RunResult::kDeadlock);
  k.notify(ev);  // the debugger's deadlock-untie path
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_TRUE(done);
}

TEST(Kernel, DebugBreakSuspendsAndResumes) {
  Kernel k;
  std::vector<int> trail;
  k.spawn("p", [&] {
    trail.push_back(1);
    k.debug_break();
    trail.push_back(2);
    k.debug_break();
    trail.push_back(3);
  });
  EXPECT_EQ(k.run(), RunResult::kStopped);
  EXPECT_EQ(trail, (std::vector<int>{1}));
  EXPECT_EQ(k.run(), RunResult::kStopped);
  EXPECT_EQ(trail, (std::vector<int>{1, 2}));
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(trail, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, BrokenProcessResumesFirst) {
  Kernel k;
  std::vector<std::string> trail;
  k.spawn("a", [&] {
    trail.push_back("a1");
    k.debug_break();
    trail.push_back("a2");
  });
  k.spawn("b", [&] {
    k.advance(0);  // yield once so `a` runs first
    trail.push_back("b");
  });
  EXPECT_EQ(k.run(), RunResult::kStopped);
  EXPECT_EQ(k.run(), RunResult::kFinished);
  // After the break, `a` must resume before `b` finishes its turn again.
  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail[0], "a1");
  EXPECT_EQ(trail[1], "a2");
}

TEST(Kernel, TimeLimitIsResumable) {
  Kernel k;
  int steps = 0;
  k.spawn("ticker", [&] {
    for (int i = 0; i < 10; ++i) {
      k.advance(10);
      steps++;
    }
  });
  EXPECT_EQ(k.run(35), RunResult::kTimeLimit);
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(k.now(), 100u);
}

TEST(Kernel, SpawnFromProcess) {
  Kernel k;
  std::vector<int> order;
  k.spawn("parent", [&] {
    order.push_back(1);
    k.spawn("child", [&] { order.push_back(2); });
  });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, ProcessLookup) {
  Kernel k;
  ProcessId id = k.spawn("named", [] {});
  EXPECT_NE(k.process(id), nullptr);
  EXPECT_EQ(k.process(id)->name(), "named");
  EXPECT_EQ(k.process_by_name("named"), k.process(id));
  EXPECT_EQ(k.process_by_name("ghost"), nullptr);
}

TEST(Kernel, ProcessLookupFirstSpawnWinsOnDuplicateName) {
  Kernel k;
  ProcessId first = k.spawn("dup", [] {});
  k.spawn("dup", [] {});
  EXPECT_EQ(k.process_by_name("dup"), k.process(first));
  // string_view lookups hit the same index.
  std::string_view sv("dup");
  EXPECT_EQ(k.process_by_name(sv), k.process(first));
}

TEST(Kernel, LiveCountMaintainedAcrossLifecycle) {
  Kernel k;
  Event ev("ev");
  EXPECT_EQ(k.live_process_count(), 0u);
  k.spawn("a", [&] { k.wait(ev); });
  k.spawn("b", [] {});
  EXPECT_EQ(k.live_process_count(), 2u);
  EXPECT_EQ(k.run(), RunResult::kDeadlock);
  EXPECT_EQ(k.live_process_count(), 1u);  // b terminated, a still blocked
  k.notify(ev);
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(k.live_process_count(), 0u);
}

TEST(Kernel, ConsumedTimeTracked) {
  Kernel k;
  ProcessId id = k.spawn("t", [&] {
    k.advance(30);
    k.advance(12);
  });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(k.process(id)->consumed_time(), 42u);
}

TEST(Kernel, TeardownWithBlockedProcesses) {
  // Destroying a kernel with parked processes must not hang or crash.
  auto k = std::make_unique<Kernel>();
  Event ev("ev");
  k->spawn("stuck1", [&] { k->wait(ev); });
  k->spawn("stuck2", [&] { k->wait(ev); });
  EXPECT_EQ(k->run(), RunResult::kDeadlock);
  k.reset();  // must join cleanly
}

TEST(Kernel, TeardownWithNeverRunProcess) {
  auto k = std::make_unique<Kernel>();
  k->spawn("never-ran", [] {});
  k.reset();
}

TEST(Kernel, LifoPolicyReversesDispatchOfFreshSpawns) {
  Kernel k;
  k.set_ready_policy(ReadyPolicy::kLifo);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    k.spawn("p" + std::to_string(i), [&order, i] { order.push_back(i); });
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Kernel, LifoStillDeterministic) {
  auto run_once = [] {
    Kernel k;
    k.set_ready_policy(ReadyPolicy::kLifo);
    Event ev("e");
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
      k.spawn("w" + std::to_string(i), [&, i] {
        k.wait(ev);
        order.push_back(i);
      });
    }
    k.spawn("n", [&] { k.notify(ev); });
    k.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Kernel, DebugBreakResumesFirstUnderLifo) {
  // debug_break must pin the broken process to the queue front regardless
  // of policy — resuming elsewhere would corrupt the stop semantics.
  Kernel k;
  k.set_ready_policy(ReadyPolicy::kLifo);
  std::vector<std::string> trail;
  k.spawn("a", [&] {
    trail.push_back("a1");
    k.debug_break();
    trail.push_back("a2");
  });
  k.spawn("b", [&] { trail.push_back("b"); });
  EXPECT_EQ(k.run(), RunResult::kStopped);
  EXPECT_EQ(k.run(), RunResult::kFinished);
  ASSERT_GE(trail.size(), 2u);
  // a2 directly follows a1: the broken process resumed first.
  auto it = std::find(trail.begin(), trail.end(), "a1");
  ASSERT_NE(it, trail.end());
  EXPECT_EQ(*(it + 1), "a2");
}

// --- instrumentation port ---------------------------------------------------

TEST(Instrument, DisabledByDefault) {
  Kernel k;
  auto& port = k.instrument();
  SymbolId s = port.intern("fn");
  EXPECT_FALSE(port.armed(s));
  port.add_enter_hook(s, [](Frame&) {});
  EXPECT_FALSE(port.armed(s));  // master switch still off
  port.set_enabled(true);
  EXPECT_TRUE(port.armed(s));
}

TEST(Instrument, InternIsIdempotent) {
  Kernel k;
  auto& port = k.instrument();
  SymbolId a = port.intern("x");
  SymbolId b = port.intern("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(port.symbol_name(a), "x");
  EXPECT_EQ(port.lookup("x"), a);
  EXPECT_FALSE(port.lookup("y").valid());
}

TEST(Instrument, EnterAndExitHooksFire) {
  Kernel k;
  auto& port = k.instrument();
  port.set_enabled(true);
  SymbolId s = port.intern("fn");
  std::vector<std::string> log;
  port.add_enter_hook(s, [&](Frame& f) {
    log.push_back("enter " + std::string(f.symbol_name()));
    EXPECT_EQ(f.arg("x")->i64, 5);
    EXPECT_EQ(f.ret(), nullptr);
  });
  port.add_exit_hook(s, [&](Frame& f) {
    log.push_back("exit");
    ASSERT_NE(f.ret(), nullptr);
    EXPECT_EQ(f.ret()->u64, 99u);
  });
  {
    const ArgValue args[] = {ArgValue::of_i64("x", 5)};
    InstrScope scope(k, s, args);
    scope.set_return(ArgValue::of_u64("r", 99));
  }
  EXPECT_EQ(log, (std::vector<std::string>{"enter fn", "exit"}));
  EXPECT_EQ(port.symbol_hits(s), 2u);
}

TEST(Instrument, RemoveAndDisableHooks) {
  Kernel k;
  auto& port = k.instrument();
  port.set_enabled(true);
  SymbolId s = port.intern("fn");
  int calls = 0;
  HookId h = port.add_enter_hook(s, [&](Frame&) { calls++; });
  port.fire_enter(k, s, {});
  EXPECT_EQ(calls, 1);
  port.set_hook_enabled(h, false);
  port.fire_enter(k, s, {});
  EXPECT_EQ(calls, 1);
  port.set_hook_enabled(h, true);
  port.remove_hook(h);
  EXPECT_FALSE(port.armed(s));
  port.fire_enter(k, s, {});
  EXPECT_EQ(calls, 1);
}

TEST(Instrument, InstanceSymbolsFireIndependently) {
  Kernel k;
  auto& port = k.instrument();
  port.set_enabled(true);
  SymbolId generic = port.intern("push");
  SymbolId inst = port.intern("push@linkA");
  int generic_calls = 0, inst_calls = 0;
  port.add_enter_hook(generic, [&](Frame&) { generic_calls++; });
  port.add_enter_hook(inst, [&](Frame&) { inst_calls++; });
  port.fire_enter(k, generic, {}, inst);
  EXPECT_EQ(generic_calls, 1);
  EXPECT_EQ(inst_calls, 1);
  port.fire_enter(k, generic, {});
  EXPECT_EQ(generic_calls, 2);
  EXPECT_EQ(inst_calls, 1);
}

TEST(Instrument, HookCanDebugBreak) {
  Kernel k;
  auto& port = k.instrument();
  port.set_enabled(true);
  SymbolId s = port.intern("fn");
  port.add_enter_hook(s, [&k](Frame&) { k.debug_break(); });
  int after = 0;
  k.spawn("p", [&] {
    const ArgValue args[] = {ArgValue::of_i64("x", 1)};
    InstrScope scope(k, s, args);
    after = 1;
  });
  EXPECT_EQ(k.run(), RunResult::kStopped);
  EXPECT_EQ(after, 0);  // frozen mid-call
  EXPECT_EQ(k.run(), RunResult::kFinished);
  EXPECT_EQ(after, 1);
}

TEST(Instrument, HookAddedDuringFireDoesNotBreakIteration) {
  Kernel k;
  auto& port = k.instrument();
  port.set_enabled(true);
  SymbolId s = port.intern("fn");
  int calls = 0;
  port.add_enter_hook(s, [&](Frame& f) {
    calls++;
    if (calls == 1) f.kernel().instrument().add_enter_hook(s, [&](Frame&) { calls += 100; });
  });
  port.fire_enter(k, s, {});
  EXPECT_EQ(calls, 1);  // snapshot semantics: new hook not fired this round
  port.fire_enter(k, s, {});
  EXPECT_EQ(calls, 102);
}

}  // namespace
}  // namespace dfdbg::sim

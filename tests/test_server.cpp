// Tests of the multi-client debug server: protocol golden frames, structured
// vs CLI equivalence, concurrent clients, malformed/oversized frame
// rejection, disconnect handling, and the paper-§VI transcript driven over a
// real socket.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "dfdbg/common/json.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/server/protocol.hpp"
#include "dfdbg/server/server.hpp"

namespace dfdbg::server {
namespace {

using h264::H264App;
using h264::H264AppConfig;

H264AppConfig small_config() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  return cfg;
}

/// In-process rig: the whole protocol minus the socket (handle_frame).
struct Rig {
  std::unique_ptr<H264App> app;
  std::unique_ptr<dbg::Session> session;
  std::unique_ptr<DebugServer> server;

  explicit Rig(ServerConfig scfg = {}, H264AppConfig cfg = small_config()) {
    auto built = H264App::build(cfg);
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<dbg::Session>(app->app());
    session->attach();
    app->start();
    server = std::make_unique<DebugServer>(*session, scfg);
  }

  /// Parses a response frame (must be valid JSON).
  JsonValue parse(const std::string& frame) {
    auto v = JsonValue::parse(frame);
    EXPECT_TRUE(v.ok()) << v.status().message() << " in: " << frame;
    return v.ok() ? *v : JsonValue{};
  }

  /// handle_frame + parse; EXPECTs a "result" member and returns a copy.
  JsonValue result(const std::string& frame) {
    JsonValue doc = parse(server->handle_frame(frame));
    const JsonValue* r = doc.find("result");
    EXPECT_NE(r, nullptr) << "not a result frame: " << doc.dump();
    return r != nullptr ? *r : JsonValue{};
  }

  /// handle_frame + parse; EXPECTs an "error" member and returns its code.
  std::int64_t error_code(const std::string& frame) {
    JsonValue doc = parse(server->handle_frame(frame));
    const JsonValue* e = doc.find("error");
    EXPECT_NE(e, nullptr) << "not an error frame: " << doc.dump();
    if (e == nullptr) return 0;
    const JsonValue* code = e->find("code");
    return code != nullptr ? code->as_i64() : 0;
  }
};

// --- protocol basics (in-process) -------------------------------------------

TEST(ServerProtocol, PingAndCapabilities) {
  Rig rig;
  JsonValue pong = rig.result(R"({"jsonrpc":"2.0","id":1,"method":"ping"})");
  EXPECT_TRUE(pong.bool_or("pong"));
  JsonValue caps = rig.result(R"({"jsonrpc":"2.0","id":2,"method":"capabilities"})");
  const JsonValue* methods = caps.find("methods");
  ASSERT_NE(methods, nullptr);
  EXPECT_GE(methods->size(), 20u);
  EXPECT_TRUE(caps.bool_or("exec"));
  // Subscribable streams are advertised so clients need not probe.
  const JsonValue* streams = caps.find("streams");
  ASSERT_NE(streams, nullptr);
  bool has_shard_rounds = false;
  for (std::size_t i = 0; i < streams->size(); ++i)
    if (streams->at(i).as_string() == "shard_rounds") has_shard_rounds = true;
  EXPECT_TRUE(has_shard_rounds) << caps.dump();
}

TEST(ServerProtocol, InfoStatsPromFormat) {
  Rig rig;
  rig.server->handle_frame(R"({"id":1,"method":"run"})");
  JsonValue res =
      rig.result(R"({"id":2,"method":"info_stats","params":{"format":"prom"}})");
  EXPECT_EQ(res.str_or("format"), "prom");
  std::string body = std::string(res.str_or("body"));
  EXPECT_NE(body.find("# TYPE dfdbg_sim_dispatch counter"), std::string::npos) << body;
  EXPECT_NE(body.find("dfdbg_link_push "), std::string::npos);
  // Default (no format) stays the JSON snapshot shape.
  JsonValue js = rig.result(R"({"id":3,"method":"info_stats"})");
  EXPECT_NE(js.find("counters"), nullptr);
}

TEST(ServerProtocol, InfoShardsReportsBackendAndWorkers) {
  Rig rig;
  JsonValue res = rig.result(R"({"id":1,"method":"info_shards"})");
  EXPECT_NE(res.find("backend"), nullptr) << res.dump();
  EXPECT_NE(res.find("workers"), nullptr);
  EXPECT_NE(res.find("shards"), nullptr);
  EXPECT_NE(res.find("rounds"), nullptr);
}

TEST(ServerProtocol, IdIsEchoedVerbatim) {
  Rig rig;
  std::string resp = rig.server->handle_frame(R"({"id":"abc-7","method":"ping"})");
  EXPECT_NE(resp.find("\"id\":\"abc-7\""), std::string::npos);
  resp = rig.server->handle_frame(R"({"id":42,"method":"ping"})");
  EXPECT_NE(resp.find("\"id\":42"), std::string::npos);
  // No id -> null (notifications still get a response on this transport).
  resp = rig.server->handle_frame(R"({"method":"ping"})");
  EXPECT_NE(resp.find("\"id\":null"), std::string::npos);
}

TEST(ServerProtocol, ErrorCodeMapping) {
  Rig rig;
  EXPECT_EQ(rig.error_code("this is not json"), kErrParse);
  EXPECT_EQ(rig.error_code("[1,2,3]"), kErrInvalidRequest);
  EXPECT_EQ(rig.error_code(R"({"id":1})"), kErrInvalidRequest);
  EXPECT_EQ(rig.error_code(R"({"id":1,"method":"no_such_method"})"), kErrMethodNotFound);
  EXPECT_EQ(rig.error_code(R"({"id":1,"method":"info_filter"})"), kErrInvalidParams);
  EXPECT_EQ(rig.error_code(R"({"id":1,"method":"info_filter","params":{"name":"nope"}})"),
            kErrNotFound);
  EXPECT_EQ(rig.error_code(R"({"id":1,"method":"inject","params":{"iface":"x::y","value":"1"}})"),
            kErrNotFound);
}

TEST(ServerProtocol, ErrorFramesCarryStableCodeString) {
  Rig rig;
  std::string resp =
      rig.server->handle_frame(R"({"id":1,"method":"info_filter","params":{"name":"nope"}})");
  EXPECT_NE(resp.find("\"data\":{\"err\":\"not-found\"}"), std::string::npos) << resp;
}

// --- golden protocol transcript ---------------------------------------------

/// Pins the process backend for one test. The golden transcript embeds the
/// live backend/workers fields from `capabilities` and `info_sched`, so it is
/// compared under the fibers backend regardless of DFDBG_PROCESS_BACKEND
/// (the check_build.sh sweep runs this binary under all three).
struct FibersBackendGuard {
  sim::ProcessBackend prev = sim::default_process_backend();
  FibersBackendGuard() { sim::set_default_process_backend(sim::ProcessBackend::kFibers); }
  ~FibersBackendGuard() { sim::set_default_process_backend(prev); }
};

/// Deterministic pre-run request sequence: every verb's framing pinned
/// byte-for-byte. Run with DFDBG_REGEN_GOLDEN=1 to regenerate after an
/// intentional protocol change (document it in docs/PROTOCOL.md!).
TEST(ServerProtocol, GoldenTranscript) {
  FibersBackendGuard backend_guard;
  Rig rig;
  const char* requests[] = {
      R"({"jsonrpc":"2.0","id":1,"method":"ping"})",
      R"({"jsonrpc":"2.0","id":2,"method":"capabilities"})",
      R"(not json at all)",
      R"(["still","not","a","request"])",
      R"({"jsonrpc":"2.0","id":3})",
      R"({"jsonrpc":"2.0","id":4,"method":"bogus"})",
      R"({"jsonrpc":"2.0","id":5,"method":"info_filter"})",
      R"({"jsonrpc":"2.0","id":6,"method":"info_filter","params":{"name":"pipe"}})",
      R"({"jsonrpc":"2.0","id":7,"method":"info_sched","params":{"module":"pred"}})",
      R"({"jsonrpc":"2.0","id":8,"method":"info_links"})",
      R"({"jsonrpc":"2.0","id":9,"method":"whence","params":{"iface":"ipred::Pipe_in"}})",
      R"({"jsonrpc":"2.0","id":10,"method":"catch_work","params":{"filter":"pipe"}})",
      R"({"jsonrpc":"2.0","id":11,"method":"breakpoints"})",
      R"({"jsonrpc":"2.0","id":12,"method":"enable_breakpoint","params":{"id":0,"enabled":false}})",
      R"({"jsonrpc":"2.0","id":13,"method":"delete_breakpoint","params":{"id":0}})",
      R"({"jsonrpc":"2.0","id":14,"method":"delete_breakpoint","params":{"id":0}})",
      R"({"jsonrpc":"2.0","id":15,"method":"link_tokens","params":{"iface":"ipred::Pipe_in"}})",
      R"({"jsonrpc":"2.0","id":16,"method":"info_shards"})",
  };
  std::string transcript;
  for (const char* req : requests) {
    transcript += "--> ";
    transcript += req;
    transcript += "\n<-- ";
    transcript += rig.server->handle_frame(req);
    transcript += "\n";
  }

  std::string golden_path = std::string(DFDBG_SOURCE_DIR) + "/tests/golden/server_protocol.txt";
  if (std::getenv("DFDBG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << transcript;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with DFDBG_REGEN_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(transcript, buf.str())
      << "wire protocol diverged from tests/golden/server_protocol.txt; if "
         "intentional, regenerate with DFDBG_REGEN_GOLDEN=1 and update docs/PROTOCOL.md";
}

// --- structured results vs CLI text: two views over one API -----------------

TEST(ServerEquivalence, StructuredMatchesCliOnH264Session) {
  Rig rig;
  // Drive the session to an interesting paused state (§VI-D).
  ASSERT_TRUE(rig.session->catch_tokens("pipe", {{"MbType_in", 3}}).ok());
  ASSERT_EQ(rig.session->run().result, sim::RunResult::kStopped);

  // info_links: JSON rows == structured view == CLI text, all three aligned.
  JsonValue links = rig.result(R"({"id":1,"method":"info_links"})");
  dbg::LinkView view = rig.session->links_view();
  const JsonValue* rows = links.find("links");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), view.links.size());
  std::string cli_text = cli::render_text(view);
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const JsonValue& row = rows->at(i);
    EXPECT_EQ(row.str_or("name"), view.links[i].name);
    EXPECT_EQ(row.u64_or("occupancy"), view.links[i].occupancy);
    EXPECT_EQ(row.u64_or("pushes"), view.links[i].pushes);
    EXPECT_NE(cli_text.find(view.links[i].name), std::string::npos);
  }

  // filter_view: same fields through JSON and through the deprecated shim.
  JsonValue fv = rig.result(R"({"id":2,"method":"info_filter","params":{"name":"pipe"}})");
  auto filter = rig.session->filter_view("pipe");
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(fv.str_or("name"), filter->name);
  EXPECT_EQ(fv.str_or("state"), filter->state);
  EXPECT_EQ(fv.u64_or("firings"), filter->firings);
  EXPECT_EQ(cli::render_or_error(rig.session->filter_view("pipe")), cli::render_text(*filter));

  // last_token: hop count identical between JSON and text renderings.
  JsonValue tok = rig.result(R"({"id":3,"method":"info_last_token","params":{"filter":"pipe"}})");
  auto tview = rig.session->last_token_view("pipe");
  ASSERT_TRUE(tview.ok()) << tview.status().message();
  const JsonValue* hops = tok.find("hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(hops->size(), tview->hops.size());
  EXPECT_GE(hops->size(), 1u);

  // Errors too: one Status, two renderings.
  auto missing = rig.session->filter_view("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(cli::render_or_error(rig.session->filter_view("nope")),
            "<" + missing.status().message() + ">");
  EXPECT_EQ(rig.error_code(R"({"id":4,"method":"info_filter","params":{"name":"nope"}})"),
            kErrNotFound);
}

TEST(ServerEquivalence, ExecVerbMatchesInterpreterOutput) {
  Rig rig;
  JsonValue r = rig.result(R"({"id":1,"method":"exec","params":{"line":"info links"}})");
  EXPECT_TRUE(r.bool_or("ok"));
  EXPECT_EQ(r.str_or("output"), cli::render_text(rig.session->links_view()));
  // A failing CLI line surfaces ok=false plus the typed error string.
  r = rig.result(R"({"id":2,"method":"exec","params":{"line":"bogus"}})");
  EXPECT_FALSE(r.bool_or("ok"));
  EXPECT_EQ(r.str_or("err"), "invalid-argument");
}

TEST(ServerEquivalence, ExecCanBeDisabled) {
  ServerConfig cfg;
  cfg.allow_exec = false;
  Rig rig(cfg);
  EXPECT_EQ(rig.error_code(R"({"id":1,"method":"exec","params":{"line":"info links"}})"),
            kErrFailedPrecondition);
  // Structured verbs keep working.
  JsonValue pong = rig.result(R"({"id":2,"method":"ping"})");
  EXPECT_TRUE(pong.bool_or("pong"));
}

// --- socket plumbing ---------------------------------------------------------

/// Minimal blocking test client.
struct TestClient {
  int fd = -1;
  std::string spill;

  ~TestClient() {
    if (fd >= 0) close(fd);
  }

  bool connect_tcp(int port) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  bool connect_unix(const std::string& path) {
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  bool send_line(const std::string& frame) {
    std::string wire = frame + "\n";
    std::size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated frame; empty string on EOF/error.
  std::string read_line() {
    for (;;) {
      std::size_t nl = spill.find('\n');
      if (nl != std::string::npos) {
        std::string line = spill.substr(0, nl);
        spill.erase(0, nl + 1);
        return line;
      }
      char buf[65536];
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return "";
      spill.append(buf, static_cast<std::size_t>(n));
    }
  }

  std::string request(const std::string& frame) {
    if (!send_line(frame)) return "";
    return read_line();
  }
};

/// Runs a full rig + server on a dedicated thread (the simulator's fiber
/// backend requires build/run/serve to share one thread) and hands the port
/// back. `setup` runs against the Session before serving starts.
struct ServerThread {
  std::thread thread;
  DebugServer* server = nullptr;  ///< valid until join() returns
  int port = 0;

  explicit ServerThread(std::function<void(dbg::Session&)> setup = nullptr,
                        ServerConfig scfg = {}) {
    std::promise<int> ready;
    thread = std::thread([this, setup = std::move(setup), scfg, &ready] {
      Rig rig(scfg);
      if (setup) setup(*rig.session);
      auto p = rig.server->listen_tcp();
      EXPECT_TRUE(p.ok()) << p.status().message();
      if (!p.ok()) {
        ready.set_value(0);
        return;
      }
      server = rig.server.get();
      ready.set_value(*p);
      EXPECT_TRUE(rig.server->serve().ok());
    });
    port = ready.get_future().get();
    EXPECT_NE(port, 0);
  }

  ~ServerThread() {
    if (thread.joinable()) {
      server->request_shutdown();
      thread.join();
    }
  }
};

TEST(ServerSocket, EightConcurrentClientsSeeConsistentState) {
  // One paused session (§VI catchpoint hit), eight clients hammering it.
  ServerThread st([](dbg::Session& s) {
    ASSERT_TRUE(s.catch_work("pipe").ok());
    ASSERT_EQ(s.run().result, sim::RunResult::kStopped);
  });

  constexpr int kClients = 8;
  constexpr int kRounds = 16;
  std::vector<std::string> links_responses(kClients);
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      TestClient tc;
      if (!tc.connect_tcp(st.port)) {
        failures[c] = 1000;
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        std::string id = std::to_string(c * 1000 + r);
        std::string resp =
            tc.request(R"({"id":)" + id + R"(,"method":"info_filter","params":{"name":"pipe"}})");
        auto doc = JsonValue::parse(resp);
        if (!doc.ok() || !doc->is_object() || doc->find("result") == nullptr ||
            doc->find("id")->as_i64() != c * 1000 + r)
          ++failures[c];
      }
      // Every client must read the same serialized world state.
      links_responses[c] = tc.request(R"({"id":1,"method":"info_links"})");
    });
  }
  for (auto& w : workers) w.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << "client " << c;
  for (int c = 1; c < kClients; ++c) EXPECT_EQ(links_responses[c], links_responses[0]);
  auto doc = JsonValue::parse(links_responses[0]);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->find("result"), nullptr);
}

TEST(ServerSocket, MalformedAndOversizedFramesAreRejected) {
  ServerConfig scfg;
  scfg.max_frame_bytes = 512;
  ServerThread st(nullptr, scfg);

  {
    TestClient tc;
    ASSERT_TRUE(tc.connect_tcp(st.port));
    std::string resp = tc.request("garbage garbage garbage");
    EXPECT_NE(resp.find("-32700"), std::string::npos) << resp;
    resp = tc.request("12345");
    EXPECT_NE(resp.find("-32600"), std::string::npos) << resp;
    // The connection survives malformed frames...
    resp = tc.request(R"({"id":1,"method":"ping"})");
    EXPECT_NE(resp.find("\"pong\":true"), std::string::npos) << resp;
  }
  {
    // ...but an oversized frame gets an error and the socket closed.
    TestClient tc;
    ASSERT_TRUE(tc.connect_tcp(st.port));
    std::string big(2048, 'x');
    std::string resp = tc.request(big);
    EXPECT_NE(resp.find("frame too large"), std::string::npos) << resp;
    EXPECT_EQ(tc.read_line(), "");  // EOF: server closed after flushing
  }
  // The server is still healthy for fresh clients.
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  EXPECT_NE(tc.request(R"({"id":2,"method":"ping"})").find("pong"), std::string::npos);
}

TEST(ServerSocket, CleanDisconnectMidRunKeepsServing) {
  ServerThread st([](dbg::Session& s) { ASSERT_TRUE(s.catch_work("ipf").ok()); });
  {
    // Client A requests a run (which takes real work) and vanishes without
    // reading the response: the server must drop it without disturbing the
    // session or other clients.
    TestClient tc;
    ASSERT_TRUE(tc.connect_tcp(st.port));
    ASSERT_TRUE(tc.send_line(R"({"id":1,"method":"run"})"));
  }
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  // The run executed (the catchpoint was hit) even though nobody read the
  // result frame. No ordering guarantee between the two sockets, so poll
  // briefly until the dropped client's request has been serviced.
  std::uint64_t hits = 0;
  for (int attempt = 0; attempt < 200 && hits == 0; ++attempt) {
    std::string resp = tc.request(R"({"id":2,"method":"breakpoints"})");
    auto doc = JsonValue::parse(resp);
    ASSERT_TRUE(doc.ok()) << resp;
    const JsonValue* result = doc->find("result");
    ASSERT_NE(result, nullptr) << resp;
    const JsonValue* bps = result->find("breakpoints");
    ASSERT_NE(bps, nullptr);
    ASSERT_EQ(bps->size(), 1u);
    hits = bps->at(0).u64_or("hits");
    if (hits == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(hits, 1u);
  EXPECT_NE(tc.request(R"({"id":3,"method":"ping"})").find("pong"), std::string::npos);
}

TEST(ServerSocket, ShutdownVerbStopsTheServer) {
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));
  std::string resp = tc.request(R"({"id":1,"method":"shutdown"})");
  EXPECT_NE(resp.find("\"shutdown\":true"), std::string::npos) << resp;
  st.thread.join();  // serve() returned; dtor sees non-joinable thread
}

TEST(ServerSocket, UnixDomainSocketSmoke) {
  std::string path = testing::TempDir() + "dfdbg_test.sock";
  std::promise<bool> ready;
  DebugServer* server = nullptr;
  std::thread thread([&] {
    Rig rig;
    Status s = rig.server->listen_unix(path);
    ASSERT_TRUE(s.ok()) << s.message();
    server = rig.server.get();
    ready.set_value(true);
    EXPECT_TRUE(rig.server->serve().ok());
  });
  ready.get_future().get();
  TestClient tc;
  ASSERT_TRUE(tc.connect_unix(path));
  EXPECT_NE(tc.request(R"({"id":1,"method":"ping"})").find("pong"), std::string::npos);
  server->request_shutdown();
  thread.join();
}

// --- the paper-§VI transcript over the wire ---------------------------------

TEST(ServerSocket, SectionSixTranscriptOverSocket) {
  ServerThread st;
  TestClient tc;
  ASSERT_TRUE(tc.connect_tcp(st.port));

  // (gdb) filter pipe catch MbType_in=3     [catchpoint]
  std::string resp = tc.request(
      R"({"id":1,"method":"catch_tokens","params":{"filter":"pipe","counts":{"MbType_in":3}}})");
  auto doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok()) << resp;
  const JsonValue* result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  std::uint64_t bp = result->u64_or("breakpoint", 999);
  EXPECT_NE(bp, 999u);

  // (gdb) run                                [stop]
  resp = tc.request(R"({"id":2,"method":"run"})");
  doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok()) << resp;
  result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  EXPECT_EQ(result->str_or("result"), "stopped");
  const JsonValue* stops = result->find("stops");
  ASSERT_NE(stops, nullptr);
  ASSERT_GE(stops->size(), 1u);
  EXPECT_EQ(stops->at(0).str_or("actor"), "pipe");

  // (gdb) filter pipe info last_token        [provenance]
  resp = tc.request(R"({"id":3,"method":"info_last_token","params":{"filter":"pipe"}})");
  doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok()) << resp;
  result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  const JsonValue* hops = result->find("hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_GE(hops->size(), 1u);

  // (gdb) tok insert pipe::MbType_in 7       [alter the execution]
  resp = tc.request(
      R"({"id":4,"method":"inject","params":{"iface":"pipe::MbType_in","value":"7"}})");
  doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok()) << resp;
  result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  EXPECT_TRUE(result->bool_or("ok"));

  // The injected token is visible — and flagged — in the link view.
  resp = tc.request(R"({"id":5,"method":"link_tokens","params":{"iface":"pipe::MbType_in"}})");
  doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.ok()) << resp;
  result = doc->find("result");
  ASSERT_NE(result, nullptr) << resp;
  const JsonValue* tokens = result->find("tokens");
  ASSERT_NE(tokens, nullptr);
  ASSERT_GE(tokens->size(), 1u);
  bool saw_injected = false;
  for (std::size_t i = 0; i < tokens->size(); ++i)
    if (tokens->at(i).bool_or("injected")) saw_injected = true;
  EXPECT_TRUE(saw_injected);
}

}  // namespace
}  // namespace dfdbg::server

// The paper's §VI case study, reproduced as executable tests: debugging the
// PEDF H.264 decoder with the dataflow-aware debugger. Each test mirrors
// one subsection's transcript and asserts the debugger's behaviour.
#include <gtest/gtest.h>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/debuginfo.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"

namespace dfdbg::h264 {
namespace {

using dbg::ActorBehavior;
using dbg::RunOutcome;
using dbg::Session;
using dbg::StopKind;

H264AppConfig cs_config() {
  H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  cfg.params.qp = 20;
  return cfg;
}

struct Rig {
  std::unique_ptr<H264App> app;
  std::unique_ptr<Session> session;

  explicit Rig(const H264AppConfig& cfg) {
    auto built = H264App::build(cfg);
    EXPECT_TRUE(built.ok()) << built.status().message();
    app = std::move(*built);
    session = std::make_unique<Session>(app->app());
    session->attach();  // late attach: registration replay
    app->start();
  }
};

// --- §VI-A: graph-based application architecture -----------------------------

TEST(CaseStudyA, ReconstructedGraphMatchesArchitecture) {
  Rig rig(cs_config());
  const dbg::GraphModel& g = rig.session->graph();
  ASSERT_TRUE(g.ready());
  // Same actor and link population as the framework's own tables.
  EXPECT_EQ(g.actors().size(), rig.app->app().actors().size());
  EXPECT_EQ(g.links().size(), rig.app->app().links().size());
  // Modules front and pred with the Fig. 4 filters inside.
  const dbg::DActor* front = g.actor_by_name("front");
  const dbg::DActor* pred = g.actor_by_name("pred");
  ASSERT_NE(front, nullptr);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(g.actor_by_name("vld")->parent_path, front->path);
  EXPECT_EQ(g.actor_by_name("ipred")->parent_path, pred->path);
  // Control links (controller-attached) are distinguished from data links.
  bool saw_control = false, saw_data = false;
  for (const dbg::DLink& l : g.links()) {
    if (l.is_control) saw_control = true;
    else saw_data = true;
  }
  EXPECT_TRUE(saw_data);
  (void)saw_control;  // our controllers steer via the step protocol, not cmd links
  // DOT rendering contains the module clusters and filters.
  std::string dot = g.to_dot(false);
  EXPECT_NE(dot.find("cluster_h264.front"), std::string::npos);
  EXPECT_NE(dot.find("cluster_h264.pred"), std::string::npos);
  EXPECT_NE(dot.find("\"pipe\""), std::string::npos);
}

TEST(CaseStudyA, CompletionOffersInterfaceNames) {
  Rig rig(cs_config());
  auto names = rig.session->graph().completion_names();
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("ipred"));
  EXPECT_TRUE(has("pipe::Red2PipeCbMB_in"));
  EXPECT_TRUE(has("ipred::Add2Dblock_ipf_out"));
  EXPECT_TRUE(has("hwcfg::pipe_MbType_out"));
}

// --- §VI-B: token-based execution firing --------------------------------------

TEST(CaseStudyB, CatchWorkOnPipe) {
  Rig rig(cs_config());
  // (gdb) filter pipe catch work
  ASSERT_TRUE(rig.session->catch_work("pipe").ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kCatchWork);
  EXPECT_EQ(out.stops[0].actor, "pipe");
  // pipe is indeed in its WORK method right now.
  EXPECT_EQ(rig.session->graph().actor_by_name("pipe")->sched, dbg::SchedState::kRunning);
}

TEST(CaseStudyB, CatchTokensExplicitInterfaces) {
  Rig rig(cs_config());
  // (gdb) filter ipred catch Pipe_in=1, Hwcfg_in=1
  auto bp = rig.session->catch_tokens("ipred", {{"Pipe_in", 1}, {"Hwcfg_in", 1}});
  ASSERT_TRUE(bp.ok()) << bp.status().message();
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kCatchTokens);
  EXPECT_EQ(out.stops[0].actor, "ipred");
  // Both interfaces have indeed delivered at least one token.
  EXPECT_GE(rig.session->graph().link_by_iface("ipred::Pipe_in")->pops, 1u);
  EXPECT_GE(rig.session->graph().link_by_iface("ipred::Hwcfg_in")->pops, 1u);
}

TEST(CaseStudyB, CatchTokensWildcardMatchesExplicit) {
  // (gdb) filter ipred catch *in=1  — same condition on all inbound ifaces.
  Rig rig1(cs_config());
  ASSERT_TRUE(rig1.session->catch_tokens("ipred", {{"Pipe_in", 1}, {"Hwcfg_in", 1}}).ok());
  RunOutcome explicit_out = rig1.session->run();
  ASSERT_EQ(explicit_out.result, sim::RunResult::kStopped);

  Rig rig2(cs_config());
  ASSERT_TRUE(rig2.session->catch_all_inputs("ipred", 1).ok());
  RunOutcome wildcard_out = rig2.session->run();
  ASSERT_EQ(wildcard_out.result, sim::RunResult::kStopped);
  // Determinism: both stop at the same simulated time.
  EXPECT_EQ(explicit_out.stops[0].time, wildcard_out.stops[0].time);
}

// --- §VI-C: non-linear execution (step_both) -----------------------------------

TEST(CaseStudyC, ListShowsTheDataflowAssignment) {
  Rig rig(cs_config());
  // (gdb) list — around the paper's line 221
  std::string listing = rig.session->list_source("ipred", 221, 1);
  EXPECT_NE(listing.find("220\t// push add2dBlock to ipf"), std::string::npos);
  EXPECT_NE(listing.find("221\tpedf.io.Add2Dblock_ipf_out[...] = ...;"), std::string::npos);
}

TEST(CaseStudyC, StepBothStopsAtBothEnds) {
  Rig rig(cs_config());
  // Stop right before the dataflow assignment (line 221 breakpoint).
  ASSERT_TRUE(rig.session->break_source_line("ipred", 221).ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  ASSERT_EQ(out.stops[0].kind, StopKind::kSourceLine);
  // (gdb) step_both
  ASSERT_TRUE(rig.session->step_both_iface("ipred::Add2Dblock_ipf_out").ok());
  auto notes = rig.session->take_notes();
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0],
            "[Temporary breakpoint inserted after input interface `ipf::Add2Dblock_ipred_in']");
  EXPECT_EQ(notes[1],
            "[Temporary breakpoint inserted after output interface `ipred::Add2Dblock_ipf_out']");
  // Disable the line breakpoint so only step_both stops remain.
  ASSERT_TRUE(rig.session->set_breakpoint_enabled(out.stops[0].breakpoint, false).ok());
  // The paper notes the order of the two stops is implementation dependent;
  // in our kernel the send completes first.
  out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].message, "[Stopped after sending token on `ipred::Add2Dblock_ipf_out']");
  out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].message,
            "[Stopped after receiving token from `ipf::Add2Dblock_ipred_in']");
}

// --- §VI-D: token-based application state & information flow --------------------

TEST(CaseStudyD, RateMismatchShowsOnGraph) {
  // Fig. 4: "the link pipe -> ipf currently holds 20 tokens, which may
  // indicate a problem in the sending or receiving rate".
  H264AppConfig cfg = cs_config();
  cfg.fault.kind = FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;
  Rig rig(cfg);
  // Stop when the pipe->ipf backlog reaches exactly 20 tokens.
  ASSERT_TRUE(rig.session->break_on_send("pipe::pipe_ipf_out").ok());
  std::size_t occupancy = 0;
  for (;;) {
    RunOutcome out = rig.session->run();
    ASSERT_EQ(out.result, sim::RunResult::kStopped);
    occupancy = rig.app->app().link_by_iface("ipf::pipe_in")->occupancy();
    if (occupancy >= 20) break;
  }
  EXPECT_EQ(occupancy, 20u);
  // The debugger's own mirror agrees and renders it on the graph.
  EXPECT_EQ(rig.session->graph().link_by_iface("ipf::pipe_in")->queue.size(), 20u);
  std::string dot = rig.session->graph().to_dot(/*with_tokens=*/true);
  EXPECT_NE(dot.find("[20]"), std::string::npos);
}

TEST(CaseStudyD, RecordedMbTypeValuesMatchTranscript) {
  // (gdb) iface hwcfg::pipe_MbType_out record ... print
  //   #1 (U16) 5   #2 (U16) 10   #3 (U16) 15
  H264AppConfig cfg = cs_config();
  cfg.params.frame_count = 1;
  cfg.forced_modes.assign(static_cast<std::size_t>(cfg.params.total_mbs()),
                          MbMode::kIntraDC);
  cfg.forced_modes[0] = MbMode::kIntraDC;
  cfg.forced_modes[1] = MbMode::kIntraH;
  cfg.forced_modes[2] = MbMode::kIntraV;
  Rig rig(cfg);
  ASSERT_TRUE(rig.session->record_iface("hwcfg::pipe_MbType_out").ok());
  // Run until three tokens were recorded.
  ASSERT_TRUE(rig.session->catch_tokens("pipe", {{"MbType_in", 3}}).ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  std::string recorded = rig.session->print_recorded("hwcfg::pipe_MbType_out");
  EXPECT_TRUE(dfdbg::starts_with(recorded, "#1 (U16) 5\n#2 (U16) 10\n#3 (U16) 15\n"))
      << recorded;
}

TEST(CaseStudyD, SplitterProvenanceHuntFindsRed) {
  // The observable error: red (a splitter) corrupts the routing flag of an
  // intra MB. The developer stops on the suspicious token at pipe, then
  // walks the information flow backwards.
  H264AppConfig cfg = cs_config();
  cfg.fault.kind = FaultPlan::Kind::kCorruptSplitter;
  cfg.fault.trigger_mb = 2;
  Rig rig(cfg);

  // (gdb) filter red configure splitter
  ASSERT_TRUE(rig.session->configure_behavior("red", ActorBehavior::kSplitter).ok());
  // Frame 0 must be all-intra, so an InterNotIntra=1 token there is wrong:
  ASSERT_TRUE(rig.session
                  ->catch_token_content(
                      "pipe::Red2PipeCbMB_in",
                      [](const pedf::Value& v) { return v.field_u64("InterNotIntra") == 1; },
                      "InterNotIntra == 1")
                  .ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kTokenContent);

  // (gdb) filter pipe info last_token
  std::string info = cli::render_or_error(rig.session->last_token_view("pipe"));
  // #1: the corrupted CbCrMB_t from red -> pipe.
  EXPECT_NE(info.find("#1 red -> pipe (CbCrMB_t){"), std::string::npos);
  EXPECT_NE(info.find("InterNotIntra=1"), std::string::npos);
  // #2: the U32 bh -> red token it was produced from...
  EXPECT_NE(info.find("#2 bh -> red (U32)"), std::string::npos);
  // ...whose mode bits say INTRA (mode != 3): red corrupted the flag.
  const dbg::DToken* t1 = rig.session->last_token("pipe");
  ASSERT_NE(t1, nullptr);
  const dbg::DToken* t2 = rig.session->graph().token(t1->produced_from);
  ASSERT_NE(t2, nullptr);
  EXPECT_NE(t2->value.as_u64() & 0xff, 3u) << "upstream token says intra: fault is inside red";
}

// --- §VI-E: two-level debugging ---------------------------------------------------

TEST(CaseStudyE, DataflowStopThenSourceLevelInspection) {
  Rig rig(cs_config());
  // (gdb) filter pipe catch Red2PipeCbMB_in
  ASSERT_TRUE(rig.session->break_on_receive("pipe::Red2PipeCbMB_in").ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].message,
            "[Stopped after receiving token from `pipe::Red2PipeCbMB_in']");
  // (gdb) filter print last_token  -> $1 = (CbCrMB_t){Addr=0x1000, ...}
  const dbg::DToken* t = rig.session->last_token("pipe");
  ASSERT_NE(t, nullptr);
  int n = rig.session->store_value(t->value);
  EXPECT_EQ(n, 1);
  // (gdb) print $1 — the C-level struct contents.
  auto v = rig.session->value_history(1);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->type().is_struct());
  EXPECT_EQ(v->type().name(), "CbCrMB_t");
  EXPECT_EQ(v->field_u64("Addr"), 0x1000u);  // first MB
  // Low-level framework state is also directly readable.
  auto parsed = rig.session->read_variable("vld", "data", "mbs_parsed");
  ASSERT_TRUE(parsed.ok());
  EXPECT_GE(parsed->as_u64(), 1u);
}

TEST(CaseStudyE, MangledSymbolsDemangleToActors) {
  // §VI-F: with a plain debugger the user faces IpfFilter_work_function and
  // _component_PredModule_anon_0_work; our symbol table maps them back.
  Rig rig(cs_config());
  auto table = dbg::build_symbol_table(rig.app->app());
  EXPECT_EQ(dbg::entity_for_symbol(table, "IpfFilter_work_function"), "h264.pred.ipf");
  EXPECT_EQ(dbg::entity_for_symbol(table, "_component_PredModule_anon_0_work"),
            "h264.pred.pred_controller");
}

// --- alteration: untying the deadlock ----------------------------------------------

TEST(CaseStudyAlter, DeadlockUntiedByTokenInjection) {
  H264AppConfig cfg = cs_config();
  cfg.fault.kind = FaultPlan::Kind::kDropConfig;
  cfg.fault.trigger_mb = 2;
  Rig rig(cfg);
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kDeadlock);
  EXPECT_EQ(out.stops[0].kind, StopKind::kDeadlock);
  EXPECT_NE(out.stops[0].message.find("ipred waiting for data"), std::string::npos);
  // (gdb) tok insert ipred::Hwcfg_in <qp>
  ASSERT_TRUE(rig.session
                  ->inject_token("ipred::Hwcfg_in",
                                 pedf::Value::u32(static_cast<std::uint32_t>(cfg.params.qp)))
                  .ok());
  out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kFinished);
  EXPECT_TRUE(rig.app->decoded_matches_golden());
  // The injected token is marked as debugger-created in the model history.
  bool saw_injected = false;
  for (const auto& ev : rig.session->history()) (void)ev;
  const dbg::GraphModel& g = rig.session->graph();
  for (std::uint64_t i = 0; i < g.tokens_observed(); ++i) {
    const dbg::DToken* t = g.token(dbg::TokenId(static_cast<std::uint32_t>(i)));
    if (t != nullptr && t->injected) saw_injected = true;
  }
  EXPECT_TRUE(saw_injected);
}

// --- scheduling monitoring (Contribution #2) on the real decoder --------------------

TEST(CaseStudySched, MonitorShowsStepStates) {
  Rig rig(cs_config());
  ASSERT_TRUE(rig.session->break_on_step("pred", /*at_end=*/false).ok());
  RunOutcome out = rig.session->run();  // step 1 of pred
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  out = rig.session->run();  // step 2
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  std::string sched = cli::render_or_error(rig.session->sched_view("pred"));
  EXPECT_NE(sched.find("module `pred' step 2"), std::string::npos);
  for (const char* f : {"pipe", "red", "ipred", "mc", "ipf"})
    EXPECT_NE(sched.find(f), std::string::npos);
}

TEST(CaseStudySched, BreakWhenControllerSchedulesIpred) {
  Rig rig(cs_config());
  ASSERT_TRUE(rig.session->break_on_schedule("ipred").ok());
  RunOutcome out = rig.session->run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kActorScheduled);
  EXPECT_EQ(out.stops[0].actor, "ipred");
  EXPECT_EQ(rig.session->graph().actor_by_name("ipred")->sched, dbg::SchedState::kScheduled);
}

// --- end-to-end sanity: debugging does not alter the decode ---------------------------

TEST(CaseStudy, HeavyDebuggingPreservesBitExactness) {
  // The paper: "the deterministic nature of dataflow communications fades
  // away the intrusiveness brought by debugger breakpoints".
  Rig rig(cs_config());
  ASSERT_TRUE(rig.session->catch_work("ipred").ok());
  ASSERT_TRUE(rig.session->record_iface("hwcfg::pipe_MbType_out").ok());
  ASSERT_TRUE(rig.session->configure_behavior("red", ActorBehavior::kSplitter).ok());
  int stops = 0;
  for (;;) {
    RunOutcome out = rig.session->run();
    if (out.result != sim::RunResult::kStopped) {
      ASSERT_EQ(out.result, sim::RunResult::kFinished);
      break;
    }
    stops++;
  }
  EXPECT_GT(stops, 0);
  EXPECT_TRUE(rig.app->decoded_matches_golden());
}

}  // namespace
}  // namespace dfdbg::h264

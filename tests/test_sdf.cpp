// Tests of the SDF front-end: balance equations, schedule synthesis,
// deadlock/inconsistency detection, PEDF instantiation and debugging SDF
// graphs with the same dataflow-aware Session (model genericity, paper
// §VII-C / §VIII).
#include <gtest/gtest.h>

#include <numeric>

#include "dfdbg/common/prng.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/sdf/sdf.hpp"

namespace dfdbg::sdf {
namespace {

using pedf::PortDir;
using pedf::TypeDesc;
using pedf::Value;

SdfPortSpec in_port(const char* name, std::uint32_t rate) {
  return SdfPortSpec{name, PortDir::kIn, rate, TypeDesc()};
}
SdfPortSpec out_port(const char* name, std::uint32_t rate) {
  return SdfPortSpec{name, PortDir::kOut, rate, TypeDesc()};
}

/// The classic up/down-sampler chain: src(out:1) -> up(in:1,out:2)
/// -> down(in:3,out:1) -> sink(in:1).  Repetition vector: src 3, up 3,
/// down 2, sink 2.
SdfGraph sampler_chain() {
  SdfGraph g;
  EXPECT_TRUE(g.add_actor({"src", {out_port("o", 1)}, nullptr, 0}).ok());
  EXPECT_TRUE(g.add_actor({"up", {in_port("i", 1), out_port("o", 2)}, nullptr, 0}).ok());
  EXPECT_TRUE(g.add_actor({"down", {in_port("i", 3), out_port("o", 1)}, nullptr, 0}).ok());
  EXPECT_TRUE(g.add_actor({"sink", {in_port("i", 1)}, nullptr, 0}).ok());
  EXPECT_TRUE(g.add_edge({"src", "o", "up", "i", 0}).ok());
  EXPECT_TRUE(g.add_edge({"up", "o", "down", "i", 0}).ok());
  EXPECT_TRUE(g.add_edge({"down", "o", "sink", "i", 0}).ok());
  return g;
}

TEST(SdfBalance, SamplerChainVector) {
  SdfGraph g = sampler_chain();
  auto rep = g.repetition_vector();
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  EXPECT_EQ(*rep, (std::vector<std::uint64_t>{3, 3, 2, 2}));
  auto neutral = g.period_is_neutral();
  ASSERT_TRUE(neutral.ok());
  EXPECT_TRUE(*neutral);
}

TEST(SdfBalance, UniformRatesGiveOnes) {
  SdfGraph g;
  ASSERT_TRUE(g.add_actor({"a", {out_port("o", 4)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"b", {in_port("i", 4), out_port("o", 4)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"c", {in_port("i", 4)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_edge({"a", "o", "b", "i", 0}).ok());
  ASSERT_TRUE(g.add_edge({"b", "o", "c", "i", 0}).ok());
  auto rep = g.repetition_vector();
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(SdfBalance, InconsistentRatesRejected) {
  // a fans out to two paths that reconverge with incompatible rates.
  SdfGraph g;
  ASSERT_TRUE(g.add_actor({"a", {out_port("o1", 1), out_port("o2", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"b", {in_port("i", 1), out_port("o", 2)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"c", {in_port("i1", 1), in_port("i2", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_edge({"a", "o1", "b", "i", 0}).ok());
  ASSERT_TRUE(g.add_edge({"b", "o", "c", "i1", 0}).ok());
  ASSERT_TRUE(g.add_edge({"a", "o2", "c", "i2", 0}).ok());
  auto rep = g.repetition_vector();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("inconsistent SDF rates"), std::string::npos);
}

TEST(SdfBalance, DisconnectedRejected) {
  SdfGraph g;
  ASSERT_TRUE(g.add_actor({"a", {out_port("o", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"b", {in_port("i", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"island", {}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_edge({"a", "o", "b", "i", 0}).ok());
  auto rep = g.repetition_vector();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.status().message().find("disconnected"), std::string::npos);
}

TEST(SdfSchedule, SamplerChainScheduleIsValid) {
  SdfGraph g = sampler_chain();
  auto sched = g.schedule();
  ASSERT_TRUE(sched.ok()) << sched.status().message();
  // Replay the schedule and verify no underflow + full repetition counts.
  std::map<std::string, std::uint64_t> fired;
  std::map<std::string, long> occ;  // per edge dst key
  for (const Firing& f : *sched) fired[f.actor] += f.count;
  EXPECT_EQ(fired["src"], 3u);
  EXPECT_EQ(fired["up"], 3u);
  EXPECT_EQ(fired["down"], 2u);
  EXPECT_EQ(fired["sink"], 2u);
}

TEST(SdfSchedule, CycleWithoutDelayDeadlocks) {
  SdfGraph g;
  ASSERT_TRUE(
      g.add_actor({"a", {in_port("i", 1), out_port("o", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(
      g.add_actor({"b", {in_port("i", 1), out_port("o", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_edge({"a", "o", "b", "i", 0}).ok());
  ASSERT_TRUE(g.add_edge({"b", "o", "a", "i", 0}).ok());
  auto sched = g.schedule();
  ASSERT_FALSE(sched.ok());
  EXPECT_NE(sched.status().message().find("deadlock"), std::string::npos);
}

TEST(SdfSchedule, InitialTokensBreakTheCycle) {
  SdfGraph g;
  ASSERT_TRUE(
      g.add_actor({"a", {in_port("i", 1), out_port("o", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(
      g.add_actor({"b", {in_port("i", 1), out_port("o", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_edge({"a", "o", "b", "i", 0}).ok());
  ASSERT_TRUE(g.add_edge({"b", "o", "a", "i", /*initial_tokens=*/1}).ok());
  auto sched = g.schedule();
  ASSERT_TRUE(sched.ok()) << sched.status().message();
}

TEST(SdfValidation, EdgeErrors) {
  SdfGraph g;
  ASSERT_TRUE(g.add_actor({"a", {out_port("o", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"b", {in_port("i", 1)}, nullptr, 0}).ok());
  EXPECT_FALSE(g.add_edge({"a", "nope", "b", "i", 0}).ok());
  EXPECT_FALSE(g.add_edge({"b", "i", "a", "o", 0}).ok());  // wrong directions
  ASSERT_TRUE(g.add_edge({"a", "o", "b", "i", 0}).ok());
  EXPECT_FALSE(g.add_edge({"a", "o", "b", "i", 0}).ok());  // double connect
  EXPECT_FALSE(g.add_actor({"a", {}, nullptr, 0}).ok());   // duplicate name
  SdfActorSpec zero{"z", {in_port("i", 0)}, nullptr, 0};
  EXPECT_FALSE(g.add_actor(zero).ok());                    // zero rate
}

// --- property sweep over random consistent chains ------------------------------

class RandomChains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomChains, BalanceAndScheduleInvariants) {
  dfdbg::Prng prng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    // A chain of 2..6 stages with random rates in [1,4] is always
    // consistent (each edge constrains one new actor).
    int stages = 2 + static_cast<int>(prng.next_below(5));
    SdfGraph g;
    std::vector<std::uint32_t> in_rate(static_cast<std::size_t>(stages)),
        out_rate(static_cast<std::size_t>(stages));
    for (int i = 0; i < stages; ++i) {
      in_rate[static_cast<std::size_t>(i)] = 1 + static_cast<std::uint32_t>(prng.next_below(4));
      out_rate[static_cast<std::size_t>(i)] = 1 + static_cast<std::uint32_t>(prng.next_below(4));
      std::vector<SdfPortSpec> ports;
      if (i > 0) ports.push_back(in_port("i", in_rate[static_cast<std::size_t>(i)]));
      if (i + 1 < stages) ports.push_back(out_port("o", out_rate[static_cast<std::size_t>(i)]));
      ASSERT_TRUE(g.add_actor({"s" + std::to_string(i), std::move(ports), nullptr, 0}).ok());
    }
    for (int i = 0; i + 1 < stages; ++i)
      ASSERT_TRUE(
          g.add_edge({"s" + std::to_string(i), "o", "s" + std::to_string(i + 1), "i", 0}).ok());

    auto rep = g.repetition_vector();
    ASSERT_TRUE(rep.ok()) << rep.status().message();
    // Balance: produced == consumed on every edge over one period.
    auto neutral = g.period_is_neutral();
    ASSERT_TRUE(neutral.ok());
    EXPECT_TRUE(*neutral) << "trial " << trial;
    // Minimality: the gcd of the repetition vector is 1.
    std::uint64_t gcd = 0;
    for (std::uint64_t v : *rep) gcd = std::gcd(gcd, v);
    EXPECT_EQ(gcd, 1u);
    // Schedule: replay it and verify no link ever underflows and every
    // actor fires exactly rep times.
    auto sched = g.schedule();
    ASSERT_TRUE(sched.ok()) << sched.status().message();
    std::vector<long> occ(static_cast<std::size_t>(stages - 1), 0);
    std::vector<std::uint64_t> fired(static_cast<std::size_t>(stages), 0);
    for (const Firing& f : *sched) {
      int idx = std::stoi(f.actor.substr(1));
      for (std::uint32_t k = 0; k < f.count; ++k) {
        if (idx > 0) {
          occ[static_cast<std::size_t>(idx - 1)] -= in_rate[static_cast<std::size_t>(idx)];
          ASSERT_GE(occ[static_cast<std::size_t>(idx - 1)], 0) << "underflow, trial " << trial;
        }
        if (idx + 1 < stages)
          occ[static_cast<std::size_t>(idx)] += out_rate[static_cast<std::size_t>(idx)];
        fired[static_cast<std::size_t>(idx)]++;
      }
    }
    for (int i = 0; i < stages; ++i)
      EXPECT_EQ(fired[static_cast<std::size_t>(i)], (*rep)[static_cast<std::size_t>(i)]);
    // Period neutrality: all link occupancies return to zero.
    for (long o : occ) EXPECT_EQ(o, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChains, ::testing::Values(1u, 2u, 3u, 4u));

// --- running SDF graphs on PEDF + the dataflow debugger -----------------------

struct SdfRig {
  sim::Kernel kernel;
  sim::Platform platform;
  pedf::Application app;
  SdfRig() : platform(kernel, config()), app(platform, "sdfapp") {}
  static sim::PlatformConfig config() {
    sim::PlatformConfig c;
    c.clusters = 1;
    c.pes_per_cluster = 8;
    return c;
  }
};

TEST(SdfRun, SamplerChainExecutesOnPedf) {
  // src produces the sequence 0,1,2,...; up duplicates each sample; down
  // averages windows of three; sink drains through the module boundary.
  SdfGraph g;
  ASSERT_TRUE(g
                  .add_actor({"up",
                              {in_port("i", 1), out_port("o", 2)},
                              [](const std::vector<std::vector<Value>>& in,
                                 std::vector<std::vector<Value>>* out) {
                                (*out)[0] = {in[0][0], in[0][0]};  // duplicate
                              },
                              3})
                  .ok());
  ASSERT_TRUE(g
                  .add_actor({"down",
                              {in_port("i", 3), out_port("o", 1)},
                              [](const std::vector<std::vector<Value>>& in,
                                 std::vector<std::vector<Value>>* out) {
                                std::uint64_t sum = 0;
                                for (const Value& v : in[0]) sum += v.as_u64();
                                (*out)[0] = {Value::u32(static_cast<std::uint32_t>(sum / 3))};
                              },
                              5})
                  .ok());
  ASSERT_TRUE(g.add_edge({"up", "o", "down", "i", 0}).ok());

  constexpr std::uint64_t kIterations = 4;
  SdfRig rig;
  auto mod = g.instantiate("sdf", kIterations);
  ASSERT_TRUE(mod.ok()) << mod.status().message();
  rig.app.set_root(std::move(*mod));
  // Boundary ports: up_i (in), down_o (out). Rep vector {3, 2}: 3 inputs and
  // 2 outputs per period.
  std::vector<Value> stream;
  for (std::uint64_t i = 0; i < 3 * kIterations; ++i)
    stream.push_back(Value::u32(static_cast<std::uint32_t>(i)));
  rig.app.add_host_source("feed", "sdf.up_i", std::move(stream));
  auto& sink = rig.app.add_host_sink("drain", "sdf.down_o", 2 * kIterations);
  ASSERT_TRUE(rig.app.elaborate().ok());
  ASSERT_TRUE(g.apply_initial_tokens(rig.app).ok());
  rig.app.start();
  EXPECT_EQ(rig.kernel.run(), sim::RunResult::kFinished);
  ASSERT_EQ(sink.received().size(), 2 * kIterations);
  // First window: duplicated samples 0,0,1 -> mean 0; second: 1,2,2 -> 1.
  EXPECT_EQ(sink.received()[0].as_u64(), 0u);
  EXPECT_EQ(sink.received()[1].as_u64(), 1u);
}

TEST(SdfRun, DebuggerWorksUnchangedOnSdf) {
  SdfGraph g;
  ASSERT_TRUE(g.add_actor({"up", {in_port("i", 1), out_port("o", 2)}, nullptr, 1}).ok());
  ASSERT_TRUE(g.add_actor({"down", {in_port("i", 2), out_port("o", 1)}, nullptr, 1}).ok());
  ASSERT_TRUE(g.add_edge({"up", "o", "down", "i", 0}).ok());
  SdfRig rig;
  auto mod = g.instantiate("sdf", 3);
  ASSERT_TRUE(mod.ok());
  rig.app.set_root(std::move(*mod));
  std::vector<Value> stream(3, Value::u32(9));
  rig.app.add_host_source("feed", "sdf.up_i", std::move(stream));
  rig.app.add_host_sink("drain", "sdf.down_o", 3);

  dbg::Session session(rig.app);
  session.attach();
  ASSERT_TRUE(rig.app.elaborate().ok());
  // The same Session features work on the synchronous model: graph
  // reconstruction, catchpoints, scheduling monitor, recording.
  EXPECT_NE(session.graph().actor_by_name("up"), nullptr);
  EXPECT_NE(session.graph().actor_by_name("sdf_scheduler"), nullptr);
  ASSERT_TRUE(session.catch_work("down").ok());
  ASSERT_TRUE(session.record_iface("up::o").ok());
  rig.app.start();
  auto out = session.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].actor, "down");
  int stops = 1;
  for (;;) {
    out = session.run();
    if (out.result != sim::RunResult::kStopped) break;
    stops++;
  }
  EXPECT_EQ(stops, 3);  // down fires once per period
  EXPECT_EQ(session.recorder().total_recorded(), 6u);  // 2 tokens x 3 periods
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
}

TEST(SdfRun, StaticRatesVisibleToSchedulingMonitor) {
  SdfGraph g;
  ASSERT_TRUE(g.add_actor({"up", {in_port("i", 1), out_port("o", 3)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_actor({"down", {in_port("i", 1)}, nullptr, 0}).ok());
  ASSERT_TRUE(g.add_edge({"up", "o", "down", "i", 0}).ok());
  SdfRig rig;
  auto mod = g.instantiate("sdf", 2);
  ASSERT_TRUE(mod.ok());
  rig.app.set_root(std::move(*mod));
  rig.app.add_host_source("feed", "sdf.up_i", {Value::u32(1), Value::u32(2)});
  dbg::Session session(rig.app);
  session.attach();
  ASSERT_TRUE(rig.app.elaborate().ok());
  rig.app.start();
  auto out = session.run();
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
  // Repetition vector {1, 3}: down fired 3x per period, 6 in total.
  EXPECT_EQ(session.graph().actor_by_name("down")->firings, 6u);
  EXPECT_EQ(session.graph().actor_by_name("up")->firings, 2u);
}

}  // namespace
}  // namespace dfdbg::sdf

// Integration tests of the debugging Session over a small live PEDF
// application: attach modes, run control, every breakpoint family,
// step_both, recording, alteration, intrusiveness controls, two-level
// debugging.
#include <gtest/gtest.h>

#include <memory>

#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/debuginfo.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/pedf/application.hpp"

namespace dfdbg::dbg {
namespace {

using pedf::FilterContext;
using pedf::PortDir;
using pedf::TypeDesc;
using pedf::Value;

/// Test application: src -> dbl -> inc -> sink, controller fires both each
/// step; dbl has data/attribute and a source listing for two-level tests.
struct TestApp {
  sim::Kernel kernel;
  sim::Platform platform;
  pedf::Application app;
  pedf::HostSink* sink = nullptr;
  int steps;
  int tokens;

  explicit TestApp(int steps_in = 4, int tokens_in = -1)
      : platform(kernel, config()), app(platform, "t"), steps(steps_in),
        tokens(tokens_in < 0 ? steps_in : tokens_in) {
    auto mod = std::make_unique<pedf::Module>("m");
    mod->add_port("in", PortDir::kIn, TypeDesc());
    mod->add_port("out", PortDir::kOut, TypeDesc());

    auto dbl = std::make_unique<pedf::FnFilter>("dbl", [](FilterContext& ctx) {
      ctx.line(10);
      Value v = ctx.in("in").get();
      ctx.line(11);
      Value& count = ctx.data("count");
      count.set_scalar_u64(count.as_u64() + 1);
      ctx.line(12);
      ctx.out("out").put(Value::u32(static_cast<std::uint32_t>(v.as_u64() * 2)));
    });
    dbl->add_port("in", PortDir::kIn, TypeDesc());
    dbl->add_port("out", PortDir::kOut, TypeDesc());
    dbl->declare_data("count", Value::u32(0));
    dbl->declare_attribute("gain", Value::u32(2));
    dbl->set_source("dbl.c", 10,
                    {"v = pedf.io.in[n];", "pedf.data.count++;", "pedf.io.out[n] = v * 2;"});
    mod->add_filter(std::move(dbl));

    auto inc = std::make_unique<pedf::FnFilter>("inc", [](FilterContext& ctx) {
      Value v = ctx.in("in").get();
      ctx.out("out").put(Value::u32(static_cast<std::uint32_t>(v.as_u64() + 1)));
    });
    inc->add_port("in", PortDir::kIn, TypeDesc());
    inc->add_port("out", PortDir::kOut, TypeDesc());
    mod->add_filter(std::move(inc));

    int n = steps;
    mod->set_controller(std::make_unique<pedf::FnController>(
        "ctl", [n](pedf::ControllerContext& ctx) {
          for (int s = 0; s < n; ++s) {
            ctx.next_step();
            ctx.actor_start("dbl");
            ctx.actor_start("inc");
            ctx.wait_for_actor_init();
            ctx.actor_sync("dbl");
            ctx.actor_sync("inc");
            ctx.wait_for_actor_sync();
          }
        }));
    mod->bind("this.in", "dbl.in");
    mod->bind("dbl.out", "inc.in");
    mod->bind("inc.out", "this.out");
    app.set_root(std::move(mod));
    std::vector<Value> stream;
    for (int i = 1; i <= tokens; ++i) stream.push_back(Value::u32(static_cast<std::uint32_t>(i)));
    app.add_host_source("src", "m.in", std::move(stream));
    sink = &app.add_host_sink("snk", "m.out", static_cast<std::size_t>(steps));
  }

  static sim::PlatformConfig config() {
    sim::PlatformConfig c;
    c.clusters = 2;
    c.pes_per_cluster = 4;
    return c;
  }

  void elaborate_and_start() {
    ASSERT_TRUE(app.elaborate().ok());
    app.start();
  }
};

TEST(Session, EarlyAttachSeesRegistration) {
  TestApp t;
  Session s(t.app);
  s.attach();
  EXPECT_FALSE(s.graph().ready());
  ASSERT_TRUE(t.app.elaborate().ok());
  EXPECT_TRUE(s.graph().ready());
  EXPECT_NE(s.graph().actor_by_name("dbl"), nullptr);
}

TEST(Session, LateAttachReplaysRegistration) {
  TestApp t;
  ASSERT_TRUE(t.app.elaborate().ok());
  Session s(t.app);
  s.attach();
  EXPECT_TRUE(s.graph().ready());
  EXPECT_EQ(s.graph().links().size(), t.app.links().size());
}

TEST(Session, RunToCompletion) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  RunOutcome out = s.run();
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
  ASSERT_EQ(out.stops.size(), 1u);
  EXPECT_EQ(out.stops[0].kind, StopKind::kFinished);
  ASSERT_EQ(t.sink->received().size(), 4u);
  EXPECT_EQ(t.sink->received()[0].as_u64(), 3u);
}

TEST(Session, CatchWorkStopsEachFiring) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  auto bp = s.catch_work("dbl");
  ASSERT_TRUE(bp.ok()) << bp.status().message();
  int stops = 0;
  for (;;) {
    RunOutcome out = s.run();
    if (out.result != sim::RunResult::kStopped) break;
    ASSERT_EQ(out.stops[0].kind, StopKind::kCatchWork);
    EXPECT_EQ(out.stops[0].actor, "dbl");
    stops++;
  }
  EXPECT_EQ(stops, 4);  // one per step
}

TEST(Session, CatchWorkUnknownFilterFails) {
  TestApp t;
  Session s(t.app);
  s.attach();
  ASSERT_TRUE(t.app.elaborate().ok());
  EXPECT_FALSE(s.catch_work("ghost").ok());
}

TEST(Session, BreakOnReceiveMessageFormat) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  auto bp = s.break_on_receive("inc::in");
  ASSERT_TRUE(bp.ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kTokenReceived);
  EXPECT_EQ(out.stops[0].message, "[Stopped after receiving token from `inc::in']");
  const DToken* tok = s.graph().token(out.stops[0].token);
  ASSERT_NE(tok, nullptr);
  EXPECT_EQ(tok->value.as_u64(), 2u);  // 1*2 from dbl
}

TEST(Session, BreakOnSend) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.break_on_send("dbl::out").ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kTokenSent);
  EXPECT_EQ(out.stops[0].message, "[Stopped after sending token on `dbl::out']");
}

TEST(Session, CatchTokensCountCondition) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  // Stop once dbl received 2 tokens on `in`.
  auto bp = s.catch_tokens("dbl", {{"in", 2}});
  ASSERT_TRUE(bp.ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kCatchTokens);
  const DLink* l = s.graph().link_by_iface("dbl::in");
  EXPECT_EQ(l->pops, 2u);
  // Re-arms: next stop after 2 more receptions.
  out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(s.graph().link_by_iface("dbl::in")->pops, 4u);
}

TEST(Session, CatchAllInputs) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  auto bp = s.catch_all_inputs("inc", 1);
  ASSERT_TRUE(bp.ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kCatchTokens);
  EXPECT_EQ(out.stops[0].actor, "inc");
}

TEST(Session, ContentConditionalCatchpoint) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  // Stop when dbl sends the value 6 (i.e. input 3).
  auto bp = s.catch_token_content(
      "dbl::out", [](const Value& v) { return v.as_u64() == 6; }, "value == 6");
  ASSERT_TRUE(bp.ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kTokenContent);
  const DToken* tok = s.graph().token(out.stops[0].token);
  EXPECT_EQ(tok->value.as_u64(), 6u);
}

TEST(Session, BreakOnScheduleAndStep) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.break_on_schedule("inc").ok());
  ASSERT_TRUE(s.break_on_step("m", /*at_end=*/false).ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kStepBegin);
  out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kActorScheduled);
  EXPECT_EQ(out.stops[0].actor, "inc");
}

TEST(Session, SourceLineBreakpoint) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.break_source_line("dbl", 12).ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kSourceLine);
  EXPECT_EQ(out.stops[0].line, 12);
  EXPECT_EQ(s.graph().actor_by_name("dbl")->current_line, 12);
}

TEST(Session, WatchpointFiresOnChange) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  auto wp = s.watch_variable("dbl", "data", "count");
  ASSERT_TRUE(wp.ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kWatchpoint);
  EXPECT_NE(out.stops[0].message.find("count"), std::string::npos);
  EXPECT_NE(out.stops[0].message.find("changed from (U32) 0 to (U32) 1"), std::string::npos);
}

TEST(Session, WatchpointRejectsUnknownVariable) {
  TestApp t;
  Session s(t.app);
  s.attach();
  ASSERT_TRUE(t.app.elaborate().ok());
  EXPECT_FALSE(s.watch_variable("dbl", "data", "ghost").ok());
  EXPECT_FALSE(s.watch_variable("dbl", "bogus-kind", "count").ok());
}

TEST(Session, StepBothExplicitIface) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.step_both_iface("dbl::out").ok());
  auto notes = s.take_notes();
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0], "[Temporary breakpoint inserted after input interface `inc::in']");
  EXPECT_EQ(notes[1], "[Temporary breakpoint inserted after output interface `dbl::out']");
  // Our kernel completes the send before the receive.
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].message, "[Stopped after sending token on `dbl::out']");
  out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].message, "[Stopped after receiving token from `inc::in']");
  // Both were temporary: the rest of the run is free.
  out = s.run();
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
}

TEST(Session, StepBothInferredFromCurrentStop) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.catch_work("dbl").ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  ASSERT_TRUE(s.step_both().ok());
  // dbl's next push identifies the link and stops at both ends.
  out = s.run();
  // First stop may be the catch_work of the next step OR the send; scan
  // until the send stop appears.
  while (out.result == sim::RunResult::kStopped &&
         out.stops[0].kind != StopKind::kTokenSent) {
    out = s.run();
  }
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].iface, "dbl::out");
  out = s.run();
  while (out.result == sim::RunResult::kStopped &&
         out.stops[0].kind != StopKind::kTokenReceived) {
    out = s.run();
  }
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].iface, "inc::in");
}

TEST(Session, StepBothWithoutStopFails) {
  TestApp t;
  Session s(t.app);
  s.attach();
  ASSERT_TRUE(t.app.elaborate().ok());
  EXPECT_FALSE(s.step_both().ok());
}

TEST(Session, RecordingAndPrint) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.record_iface("dbl::out", RecordPolicy::kUnbounded).ok());
  s.run();
  EXPECT_EQ(s.print_recorded("dbl::out"), "#1 (U32) 2\n#2 (U32) 4\n#3 (U32) 6\n#4 (U32) 8\n");
}

TEST(Session, BoundedRecordingEvicts) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.record_iface("dbl::out", RecordPolicy::kBounded, 2).ok());
  s.run();
  // Only the last two retained, numbering continues.
  EXPECT_EQ(s.print_recorded("dbl::out"), "#3 (U32) 6\n#4 (U32) 8\n");
  EXPECT_EQ(s.recorder().total_recorded(), 4u);
}

TEST(Session, InfoLastTokenProvenance) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.configure_behavior("dbl", ActorBehavior::kPipeline).ok());
  ASSERT_TRUE(s.break_on_receive("inc::in").ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  std::string info = cli::render_or_error(s.last_token_view("inc"));
  EXPECT_EQ(info, "#1 dbl -> inc (U32) 2\n#2 src -> dbl (U32) 1\n");
}

TEST(Session, InfoFilterShowsBlockedState) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.catch_work("dbl").ok());
  s.run();
  std::string info = cli::render_or_error(s.filter_view("inc"));
  EXPECT_NE(info.find("filter `inc'"), std::string::npos);
  std::string links = cli::render_text(s.links_view());
  EXPECT_NE(links.find("dbl::out -> inc::in"), std::string::npos);
  std::string sched = cli::render_or_error(s.sched_view("m"));
  EXPECT_NE(sched.find("dbl"), std::string::npos);
}

TEST(Session, InjectTokenWhileStopped) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.catch_work("dbl").ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  // Inject an extra token into inc's input: sink receives 5 tokens total...
  // but the sink expects only 4, so it simply finishes earlier. Verify the
  // injected value flows through.
  ASSERT_TRUE(s.inject_token("inc::in", Value::u32(100)).ok());
  ASSERT_TRUE(s.delete_breakpoint(*s.catch_work("dbl")).ok());  // add+delete round trip
  s.set_breakpoint_enabled(out.stops[0].breakpoint, false);
  s.run();
  ASSERT_FALSE(t.sink->received().empty());
  EXPECT_EQ(t.sink->received()[0].as_u64(), 101u);  // injected 100 + 1
}

TEST(Session, InjectRejectsTypeMismatch) {
  TestApp t;
  Session s(t.app);
  s.attach();
  ASSERT_TRUE(t.app.elaborate().ok());
  Status st = s.inject_token("inc::in", Value::u16(1));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("does not match"), std::string::npos);
}

TEST(Session, RemoveAndReplaceTokens) {
  TestApp t;
  Session s(t.app);
  s.attach();
  ASSERT_TRUE(t.app.elaborate().ok());
  ASSERT_TRUE(s.inject_token("dbl::in", Value::u32(7)).ok());
  ASSERT_TRUE(s.inject_token("dbl::in", Value::u32(8)).ok());
  ASSERT_TRUE(s.replace_token("dbl::in", 1, Value::u32(9)).ok());
  ASSERT_TRUE(s.remove_token("dbl::in", 0).ok());
  pedf::Link* l = t.app.link_by_iface("dbl::in");
  ASSERT_EQ(l->occupancy(), 1u);
  EXPECT_EQ(l->peek(0).as_u64(), 9u);
  // Model mirror matches.
  EXPECT_EQ(s.graph().link_by_iface("dbl::in")->queue.size(), 1u);
  EXPECT_FALSE(s.remove_token("dbl::in", 5).ok());  // out of range
}

TEST(Session, DeadlockEventDescribesBlockedActors) {
  TestApp t(/*steps=*/8, /*tokens=*/4);  // more steps than source tokens
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kDeadlock);
  ASSERT_EQ(out.stops.size(), 1u);
  EXPECT_EQ(out.stops[0].kind, StopKind::kDeadlock);
  EXPECT_NE(out.stops[0].message.find("dbl waiting for data"), std::string::npos);
}

TEST(Session, DataExchangeHooksDisableAndResync) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  auto& port = t.kernel.instrument();
  s.set_data_exchange_hooks(false);
  ASSERT_TRUE(s.catch_work("dbl").ok());
  s.run();  // first firing; token traffic unobserved
  std::uint64_t invocations = port.hook_invocations();
  s.run();  // second firing
  // Data hooks off: only work/sched/line hooks fired in between (the data
  // exchanges of a full step would add ~12 more).
  EXPECT_LT(port.hook_invocations() - invocations, 20u);
  // And the token mirror saw none of the traffic.
  EXPECT_EQ(s.graph().link_by_iface("dbl::in")->pushes, 0u);
  s.set_data_exchange_hooks(true);  // resyncs the mirror
  const DLink* l = s.graph().link_by_iface("dbl::in");
  pedf::Link* fl = t.app.link_by_iface("dbl::in");
  EXPECT_EQ(l->queue.size(), fl->occupancy());
}

TEST(Session, SelectiveDataHooksOnlySeeChosenIfaces) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  ASSERT_TRUE(s.use_selective_data_hooks({"inc::in"}).ok());
  ASSERT_TRUE(s.break_on_receive("inc::in").ok());
  RunOutcome out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].kind, StopKind::kTokenReceived);
  // Other links were not observed.
  EXPECT_EQ(s.graph().link_by_iface("dbl::in")->pushes, 0u);
  EXPECT_GE(s.graph().link_by_iface("inc::in")->pops, 1u);
  s.clear_selective_data_hooks();
  EXPECT_TRUE(s.data_exchange_hooks());
}

TEST(Session, BreakpointListing) {
  TestApp t;
  Session s(t.app);
  s.attach();
  ASSERT_TRUE(t.app.elaborate().ok());
  auto a = s.catch_work("dbl");
  auto b = s.break_on_receive("inc::in");
  ASSERT_TRUE(a.ok() && b.ok());
  auto list = s.breakpoints();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].id, *a);
  EXPECT_NE(list[0].description.find("catch work"), std::string::npos);
  ASSERT_TRUE(s.delete_breakpoint(*a).ok());
  EXPECT_EQ(s.breakpoints().size(), 1u);
  EXPECT_FALSE(s.delete_breakpoint(*a).ok());  // already gone
}

TEST(Session, TwoLevelReadVariableAndList) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  s.run();
  auto v = s.read_variable("dbl", "data", "count");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_u64(), 4u);
  auto g = s.read_variable("dbl", "attribute", "gain");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->as_u64(), 2u);
  std::string listing = s.list_source("dbl");
  EXPECT_NE(listing.find("10\tv = pedf.io.in[n];"), std::string::npos);
  EXPECT_NE(listing.find("12\tpedf.io.out[n] = v * 2;"), std::string::npos);
}

TEST(Session, ValueHistory) {
  TestApp t;
  Session s(t.app);
  EXPECT_EQ(s.store_value(Value::u32(5)), 1);
  EXPECT_EQ(s.store_value(Value::u16(6)), 2);
  ASSERT_TRUE(s.value_history(1).ok());
  EXPECT_EQ(s.value_history(2)->as_u64(), 6u);
  EXPECT_FALSE(s.value_history(3).ok());
  EXPECT_FALSE(s.value_history(0).ok());
}

TEST(Session, DetachRemovesHooks) {
  TestApp t;
  {
    Session s(t.app);
    s.attach();
    ASSERT_TRUE(t.app.elaborate().ok());
    s.detach();
    EXPECT_FALSE(t.kernel.instrument().enabled());
  }
  // App still runs fine without the debugger.
  t.app.start();
  EXPECT_EQ(t.kernel.run(), sim::RunResult::kFinished);
}

TEST(Session, DetachAndReattachMidRun) {
  TestApp t;
  Session s(t.app);
  s.attach();
  t.elaborate_and_start();
  auto dbl_bp = s.catch_work("dbl");
  ASSERT_TRUE(dbl_bp.ok());
  auto out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  ASSERT_TRUE(s.delete_breakpoint(*dbl_bp).ok());
  s.detach();
  EXPECT_FALSE(t.kernel.instrument().enabled());
  // Re-attach: registration replays and the session keeps working.
  s.attach();
  EXPECT_TRUE(s.graph().ready());
  ASSERT_TRUE(s.catch_work("inc").ok());
  out = s.run();
  ASSERT_EQ(out.result, sim::RunResult::kStopped);
  EXPECT_EQ(out.stops[0].actor, "inc");
  // Finish cleanly.
  for (;;) {
    out = s.run();
    if (out.result != sim::RunResult::kStopped) break;
  }
  EXPECT_EQ(out.result, sim::RunResult::kFinished);
  ASSERT_EQ(t.sink->received().size(), 4u);
}

TEST(DebugInfo, SymbolTableMatchesPaperMangling) {
  TestApp t;
  ASSERT_TRUE(t.app.elaborate().ok());
  auto table = build_symbol_table(t.app);
  EXPECT_EQ(entity_for_symbol(table, "DblFilter_work_function"), "m.dbl");
  EXPECT_EQ(entity_for_symbol(table, "_component_MModule_anon_0_work"), "m.ctl");
  EXPECT_EQ(entity_for_symbol(table, "NoSuchSymbol"), "");
  // API symbols are listed too.
  bool has_api = false;
  for (const auto& sym : table)
    if (sym.kind == "api" && sym.symbol == "pedf__link_push") has_api = true;
  EXPECT_TRUE(has_api);
}

}  // namespace
}  // namespace dfdbg::dbg

#!/usr/bin/env bash
# Full verification sweep: configure, build, run every test, every benchmark
# and every example. Mirrors what EXPERIMENTS.md was produced with.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== benchmarks =="
for b in build/bench/bench_*; do
  echo "--- $b"
  "$b" --benchmark_min_time=0.02
done

echo "== examples =="
./build/examples/quickstart
./build/examples/h264_debug_session
./build/examples/deadlock_untie
./build/examples/trace_compare
./build/examples/predicated_scheduling
./build/examples/sdf_streamit
./build/examples/time_travel
(cd build && ./examples/graph_export)
printf 'help\nquit\n' | ./build/examples/dfdbg_repl none

echo "== mindc =="
./build/tools/mindc check examples/amodule.adl AModule
./build/tools/mindc run examples/amodule.adl AModule 3

echo "ALL CHECKS PASSED"

#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then gate
# on the observability layer's acceptance checks (the Chrome-trace exporter
# golden test and the metrics/CLI tests). Faster than scripts/check.sh,
# which additionally sweeps every benchmark and example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== observability gate =="
# Re-run the exporter golden-file comparison and the obs unit tests
# explicitly so a skip/filter in the main sweep cannot mask them.
./build/tests/test_obs --gtest_filter='ChromeTrace.*:Obs*:CliObs.*:TraceStats.*'

echo "ALL BUILD CHECKS PASSED"

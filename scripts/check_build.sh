#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite under BOTH
# process backends (fibers + threads must be observationally identical; see
# docs/KERNEL.md), then gate on the observability layer's acceptance checks
# and a benchmark smoke pass (every bench binary must still emit well-formed
# BENCH_JSON lines). Faster than scripts/check.sh, which additionally sweeps
# every benchmark at full length and every example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"

for backend in fibers threads; do
  echo "== ctest under DFDBG_PROCESS_BACKEND=$backend =="
  (cd build && DFDBG_PROCESS_BACKEND=$backend ctest --output-on-failure -j "$(nproc)")
done

echo "== observability gate =="
# Re-run the exporter golden-file comparison and the obs unit tests
# explicitly so a skip/filter in the main sweep cannot mask them.
./build/tests/test_obs --gtest_filter='ChromeTrace.*:Obs*:CliObs.*:TraceStats.*'

have_python=0
command -v python3 >/dev/null 2>&1 && have_python=1

echo "== flight-recorder gate =="
# The journal must behave identically on both process backends (token ids
# come from the deterministic kernel, not from scheduling accidents).
for backend in fibers threads; do
  echo "-- test_journal under DFDBG_PROCESS_BACKEND=$backend"
  DFDBG_PROCESS_BACKEND=$backend ./build/tests/test_journal
done

# End-to-end flow-event export: drive the REPL through a full decode, dump
# the journal and the profile overlay, then validate both files are loadable
# JSON with the required metadata and at least one matched "s"/"f" flow pair.
if [ "$have_python" -eq 1 ]; then
  echo "-- flow-event JSON validation (dfdbg_repl none)"
  printf 'trace on\nrun\njournal dump build/flow_check.json\nprofile export build/profile_check.json\nquit\n' \
    | ./build/examples/dfdbg_repl none >/dev/null
  python3 - build/flow_check.json build/profile_check.json <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc.get("traceEvents"), list), f"{path}: no traceEvents list"
    meta = doc.get("metadata", {})
    for key in ("retained_events", "dropped_events", "flow_pairs"):
        assert key in meta, f"{path}: metadata missing {key}"
    starts = {e["id"] for e in doc["traceEvents"] if e.get("ph") == "s"}
    finishes = {e["id"] for e in doc["traceEvents"] if e.get("ph") == "f"}
    matched = starts & finishes
    assert matched, f"{path}: no matched flow start/finish pair"
    assert meta["flow_pairs"] >= len(matched), f"{path}: flow_pairs undercounts"
    print(f"ok: {path} ({len(doc['traceEvents'])} events, "
          f"{len(matched)} matched flow id(s))")
PYEOF
else
  echo "-- python3 unavailable; skipping flow-event JSON validation"
fi

echo "== bench smoke (BENCH_JSON well-formedness) =="
# A token measurement time per benchmark: enough to prove the binary runs
# and its BENCH_JSON records parse. Validated with python3 when available.
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  out="$("$bench" --benchmark_min_time=0.01 --benchmark_color=false 2>/dev/null)" \
    || { echo "FAIL: $name exited non-zero"; exit 1; }
  lines="$(printf '%s\n' "$out" | grep -c '^BENCH_JSON ' || true)"
  if [ "$lines" -eq 0 ]; then
    echo "FAIL: $name emitted no BENCH_JSON line"
    exit 1
  fi
  if [ "$have_python" -eq 1 ]; then
    printf '%s\n' "$out" | sed -n 's/^BENCH_JSON //p' \
      | python3 -c 'import json,sys
for ln in sys.stdin:
    json.loads(ln)' \
      || { echo "FAIL: $name emitted malformed BENCH_JSON"; exit 1; }
  fi
  echo "ok: $name ($lines BENCH_JSON lines)"
done

echo "ALL BUILD CHECKS PASSED"

#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite under ALL
# process backends (fibers + threads must be observationally identical, and
# the parallel backend must preserve per-link token order and goldens; see
# docs/KERNEL.md), then gate on the observability layer's acceptance checks
# and a benchmark smoke pass (every bench binary must still emit well-formed
# BENCH_JSON lines). Faster than scripts/check.sh, which additionally sweeps
# every benchmark at full length and every example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"

for backend in fibers threads parallel; do
  echo "== ctest under DFDBG_PROCESS_BACKEND=$backend =="
  (cd build && DFDBG_PROCESS_BACKEND=$backend ctest --output-on-failure -j "$(nproc)")
done

echo "== observability gate =="
# Re-run the exporter golden-file comparison and the obs unit tests
# explicitly so a skip/filter in the main sweep cannot mask them.
./build/tests/test_obs --gtest_filter='ChromeTrace.*:Obs*:CliObs.*:TraceStats.*'

have_python=0
command -v python3 >/dev/null 2>&1 && have_python=1

echo "== flight-recorder gate =="
# The journal must behave identically on both process backends (token ids
# come from the deterministic kernel, not from scheduling accidents).
for backend in fibers threads; do
  echo "-- test_journal under DFDBG_PROCESS_BACKEND=$backend"
  DFDBG_PROCESS_BACKEND=$backend ./build/tests/test_journal
done

# End-to-end flow-event export: drive the REPL through a full decode, dump
# the journal and the profile overlay, then validate both files are loadable
# JSON with the required metadata and at least one matched "s"/"f" flow pair.
if [ "$have_python" -eq 1 ]; then
  echo "-- flow-event JSON validation (dfdbg_repl none)"
  printf 'trace on\nrun\njournal dump build/flow_check.json\nprofile export build/profile_check.json\nquit\n' \
    | ./build/examples/dfdbg_repl none >/dev/null
  python3 - build/flow_check.json build/profile_check.json <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc.get("traceEvents"), list), f"{path}: no traceEvents list"
    meta = doc.get("metadata", {})
    for key in ("retained_events", "dropped_events", "flow_pairs"):
        assert key in meta, f"{path}: metadata missing {key}"
    starts = {e["id"] for e in doc["traceEvents"] if e.get("ph") == "s"}
    finishes = {e["id"] for e in doc["traceEvents"] if e.get("ph") == "f"}
    matched = starts & finishes
    assert matched, f"{path}: no matched flow start/finish pair"
    assert meta["flow_pairs"] >= len(matched), f"{path}: flow_pairs undercounts"
    print(f"ok: {path} ({len(doc['traceEvents'])} events, "
          f"{len(matched)} matched flow id(s))")
PYEOF
else
  echo "-- python3 unavailable; skipping flow-event JSON validation"
fi

echo "== debug-server gate =="
# Start dfdbg-serve on a unix socket, drive it end-to-end with dfdbg-client
# (structured verbs + CLI-compat exec), and validate the responses are
# schema-correct JSON-RPC. Run on both process backends: the protocol sits
# on top of the deterministic kernel and must answer identically.
for backend in fibers threads; do
  echo "-- dfdbg-serve/dfdbg-client round trip ($backend backend)"
  sock="build/dfdbg_check_$backend.sock"
  rm -f "$sock"
  DFDBG_PROCESS_BACKEND=$backend ./build/tools/dfdbg-serve --unix "$sock" \
    >"build/serve_$backend.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: dfdbg-serve died"; cat "build/serve_$backend.log"; exit 1; }
    sleep 0.05
  done
  [ -S "$sock" ] || { echo "FAIL: dfdbg-serve never listened"; exit 1; }
  grep -q '^LISTENING unix=' "build/serve_$backend.log" \
    || { echo "FAIL: no LISTENING line"; cat "build/serve_$backend.log"; exit 1; }
  out="build/server_check_$backend.txt"
  printf '%s\n' \
    ':ping' \
    ':capabilities' \
    ':catch_work {"filter":"pipe"}' \
    ':run' \
    'info links' \
    ':whence {"iface":"pipe::coeff_in"}' \
    ':shutdown' \
    | ./build/tools/dfdbg-client --unix "$sock" --raw >"$out" \
    || { echo "FAIL: dfdbg-client exited non-zero"; cat "$out"; exit 1; }
  wait "$serve_pid" || { echo "FAIL: dfdbg-serve exited non-zero"; exit 1; }
  if [ "$have_python" -eq 1 ]; then
    python3 - "$out" <<'PYEOF'
import json, sys
frames = [json.loads(ln) for ln in open(sys.argv[1]) if ln.strip()]
assert len(frames) == 7, f"expected 7 response frames, got {len(frames)}"
for f in frames:
    assert f.get("jsonrpc") == "2.0", f"bad jsonrpc tag: {f}"
    assert ("result" in f) != ("error" in f), f"not exactly one of result/error: {f}"
    assert "error" not in f, f"unexpected error frame: {f}"
ping, caps, bp, run, links, whence, _ = frames
assert ping["result"]["pong"] is True
assert "info_links" in caps["result"]["methods"], "capabilities missing info_links"
assert "breakpoint" in bp["result"], f"catch_work returned no breakpoint id: {bp}"
assert run["result"]["result"] == "stopped", f"run did not stop: {run}"
assert links["result"]["ok"] is True and "pipe::coeff_in" in links["result"]["output"]
assert "pipe::coeff_in" in whence["result"]["link"], f"whence on wrong link: {whence}"
assert isinstance(whence["result"]["hops"], list) and whence["result"]["hops"]
print(f"ok: {len(frames)} schema-valid frames")
PYEOF
  else
    grep -q '"result"' "$out" || { echo "FAIL: no result frames"; exit 1; }
    if grep -q '"error"' "$out"; then echo "FAIL: error frame in transcript"; exit 1; fi
  fi
  rm -f "$sock"
done

echo "== subscription gate =="
# Server push: subscribe to all four streams over a unix socket, run a full
# decode, and validate the pushed notification frames (docs/PROTOCOL.md
# "Subscriptions"). --drain keeps dfdbg-client printing pushed frames after
# stdin closes, until `shutdown` drops the connection. Both backends: the
# journal stream rides the deterministic kernel.
for backend in fibers threads; do
  echo "-- subscribe/notify round trip ($backend backend)"
  sock="build/dfdbg_sub_$backend.sock"
  rm -f "$sock"
  DFDBG_PROCESS_BACKEND=$backend ./build/tools/dfdbg-serve --unix "$sock" \
    >"build/serve_sub_$backend.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: dfdbg-serve died"; cat "build/serve_sub_$backend.log"; exit 1; }
    sleep 0.05
  done
  [ -S "$sock" ] || { echo "FAIL: dfdbg-serve never listened"; exit 1; }
  out="build/subscribe_check_$backend.txt"
  printf '%s\n' \
    ':subscribe {"stream":"journal"}' \
    ':subscribe {"stream":"info_flow"}' \
    ':subscribe {"stream":"stats"}' \
    ':subscribe {"stream":"run_events"}' \
    ':subscribe {"stream":"shard_rounds"}' \
    ':run' \
    ':unsubscribe' \
    ':shutdown' \
    | ./build/tools/dfdbg-client --unix "$sock" --raw --drain >"$out" \
    || { echo "FAIL: dfdbg-client exited non-zero"; cat "$out"; exit 1; }
  wait "$serve_pid" || { echo "FAIL: dfdbg-serve exited non-zero"; exit 1; }
  if [ "$have_python" -eq 1 ]; then
    python3 - "$out" <<'PYEOF'
import json, sys
frames = [json.loads(ln) for ln in open(sys.argv[1]) if ln.strip()]
streams = {"journal.delta", "flow.snapshot", "stats.delta", "run.event",
           "shard.rounds"}
responses = [f for f in frames if "id" in f]
notifs = [f for f in frames if "id" not in f]
assert len(responses) == 8, f"expected 8 responses, got {len(responses)}"
for f in responses:
    assert "error" not in f, f"error frame: {f}"
for n in notifs:
    assert n.get("jsonrpc") == "2.0", f"bad notification: {n}"
    assert n.get("method") in streams, f"unknown stream method: {n}"
    assert isinstance(n.get("params"), dict), f"notification without params: {n}"
deltas = [n for n in notifs if n["method"] == "journal.delta"]
assert deltas, "no journal.delta pushed during the run"
events = 0
cursor = None
for d in deltas:
    p = d["params"]
    for key in ("from", "next", "gap", "events"):
        assert key in p, f"journal.delta missing {key}: {d}"
    if cursor is not None:
        assert p["from"] == cursor, "journal deltas not contiguous"
    cursor = p["next"]
    events += len(p["events"])
    for ev in p["events"]:
        for key in ("t", "kind", "index"):
            assert key in ev, f"journal event missing {key}: {ev}"
assert events >= 1000, f"full decode should push >=1000 journal events, got {events}"
assert any(n["method"] == "run.event" for n in notifs), "no run.event pushed"
print(f"ok: {len(notifs)} notifications ({events} journal events, "
      f"{len(deltas)} deltas)")
PYEOF
  else
    grep -q '"journal.delta"' "$out" || { echo "FAIL: no journal.delta frames"; exit 1; }
  fi
  rm -f "$sock"
done

echo "== shard-profile gate (parallel backend) =="
# The shard_rounds stream only carries data under the parallel backend: one
# notification batch per barrier-round window, one partitions[] entry per
# worker (docs/OBSERVABILITY.md "Shard profile"). info_shards must agree on
# the worker count.
sock="build/dfdbg_shards.sock"
rm -f "$sock"
DFDBG_PROCESS_BACKEND=parallel DFDBG_PARALLEL_WORKERS=2 \
  ./build/tools/dfdbg-serve --unix "$sock" >"build/serve_shards.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: dfdbg-serve died"; cat "build/serve_shards.log"; exit 1; }
  sleep 0.05
done
[ -S "$sock" ] || { echo "FAIL: dfdbg-serve never listened"; exit 1; }
out="build/shards_check.txt"
printf '%s\n' \
  ':subscribe {"stream":"shard_rounds"}' \
  ':run' \
  ':info_shards' \
  ':shutdown' \
  | ./build/tools/dfdbg-client --unix "$sock" --raw --drain >"$out" \
  || { echo "FAIL: dfdbg-client exited non-zero"; cat "$out"; exit 1; }
wait "$serve_pid" || { echo "FAIL: dfdbg-serve exited non-zero"; exit 1; }
if [ "$have_python" -eq 1 ]; then
  python3 - "$out" <<'PYEOF'
import json, sys
frames = [json.loads(ln) for ln in open(sys.argv[1]) if ln.strip()]
for f in frames:
    assert "error" not in f, f"error frame: {f}"
rounds = 0
for n in (f for f in frames if f.get("method") == "shard.rounds"):
    for r in n["params"]["rounds"]:
        assert len(r["partitions"]) == 2, f"expected 2 partitions: {r}"
        for key in ("round", "vtime", "wall_ns", "drain_ns", "boundary_hwm"):
            assert key in r, f"round record missing {key}: {r}"
        rounds += 1
assert rounds > 0, "no shard.rounds pushed during a parallel run"
shards = next(f for f in frames
              if "id" in f and "shards" in f.get("result", {}))["result"]
assert shards["backend"] == "parallel", f"wrong backend: {shards}"
assert shards["workers"] == 2 and len(shards["shards"]) == 2, f"bad workers: {shards}"
print(f"ok: {rounds} barrier round(s) streamed, info_shards agrees")
PYEOF
else
  grep -q '"shard.rounds"' "$out" || { echo "FAIL: no shard.rounds frames"; exit 1; }
fi
rm -f "$sock"

echo "== determinism sweep (relaxed-synchrony parallel backend) =="
# The hard gate behind the relaxed-synchrony fast paths: at every worker
# count, two runs of the same seeded wide graph must produce byte-identical
# merged journal transcripts. Eager drains, elided barriers and sparse wakes
# all claim to be schedule-neutral — this is where that claim is checked.
for k in 2 4 8; do
  ./build/tools/dfdbg-transcript "$k" 7 > "build/transcript_a.$k" \
    || { echo "FAIL: dfdbg-transcript run 1 (K=$k)"; exit 1; }
  ./build/tools/dfdbg-transcript "$k" 7 > "build/transcript_b.$k" \
    || { echo "FAIL: dfdbg-transcript run 2 (K=$k)"; exit 1; }
  cmp -s "build/transcript_a.$k" "build/transcript_b.$k" \
    || { echo "FAIL: transcript diverged between runs at K=$k"; exit 1; }
  [ -s "build/transcript_a.$k" ] || { echo "FAIL: empty transcript at K=$k"; exit 1; }
  echo "ok: K=$k byte-identical ($(wc -l < "build/transcript_a.$k") transcript lines)"
done

echo "== dashboard smoke (dfdbg-top) =="
# dfdbg-top subscribes to every stream and renders from pushed frames alone;
# --no-ansi --run --max-frames bounds it for CI.
sock="build/dfdbg_top.sock"
rm -f "$sock"
./build/tools/dfdbg-serve --unix "$sock" >"build/serve_top.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: dfdbg-serve died"; cat "build/serve_top.log"; exit 1; }
  sleep 0.05
done
./build/tools/dfdbg-top --unix "$sock" --no-ansi --run --max-frames 200 \
  >"build/top_check.txt" 2>&1 \
  || { echo "FAIL: dfdbg-top exited non-zero"; cat "build/top_check.txt"; exit 1; }
grep -q 'dfdbg-top  sim t=' "build/top_check.txt" || { echo "FAIL: dfdbg-top rendered nothing"; cat "build/top_check.txt"; exit 1; }
grep -q '^links' "build/top_check.txt" || { echo "FAIL: dfdbg-top rendered no link table"; cat "build/top_check.txt"; exit 1; }
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
rm -f "$sock"
echo "ok: dfdbg-top rendered from pushed frames"

echo "== fleet gate (protocol v2, 8 sessions / 2 shards) =="
# Multi-session host: create 8 wide-graph sessions pinned alternately to two
# shards, run each to completion, and validate isolation (each session's
# journal/token counts are its own; the default session records nothing),
# the --session client flag, the v1 default-session alias, and clean idle
# eviction (docs/PROTOCOL.md "Sessions").
sock="build/dfdbg_fleet.sock"
rm -f "$sock"
./build/tools/dfdbg-serve --unix "$sock" --shards 2 --max-sessions 32 \
  --idle-evict-ms 200 >"build/serve_fleet.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "FAIL: dfdbg-serve died"; cat "build/serve_fleet.log"; exit 1; }
  sleep 0.05
done
[ -S "$sock" ] || { echo "FAIL: dfdbg-serve never listened"; exit 1; }
out="build/fleet_check.txt"
{
  printf ':capabilities\n'
  for i in $(seq 0 7); do
    printf ':session_create {"rig":"wide","name":"w%d","shard":%d,"pipelines":1,"stages":1,"tokens":%d,"spin":1}\n' \
      "$i" $((i % 2)) $((4 + i))
    printf ':run\n'
    printf ':session_detach\n'
  done
  printf ':session_list\n'
} | ./build/tools/dfdbg-client --unix "$sock" --raw >"$out" \
  || { echo "FAIL: fleet dfdbg-client exited non-zero"; cat "$out"; exit 1; }
if [ "$have_python" -eq 1 ]; then
  python3 - "$out" <<'PYEOF'
import json, sys
frames = [json.loads(ln) for ln in open(sys.argv[1]) if ln.strip()]
responses = [f for f in frames if "id" in f]
for f in responses:
    assert "error" not in f, f"error frame: {f}"
caps = responses[0]["result"]
assert caps["protocol"] == 2, f"expected protocol 2: {caps}"
assert caps["shards"] == 2, f"expected 2 shards: {caps}"
assert caps["session_create"] is True, f"session_create not advertised: {caps}"
listing = responses[-1]["result"]
assert listing["count"] == 9, f"expected 8 sessions + default: {listing}"
by_name = {s["name"]: s for s in listing["sessions"]}
for i in range(8):
    s = by_name[f"w{i}"]
    assert s["shard"] == i % 2, f"w{i} pinned to wrong shard: {s}"
    # Isolation: each session recorded its own run into its private journal,
    # and bigger graphs recorded strictly more token uids.
    assert s["journal_events"] > 0, f"w{i} recorded nothing: {s}"
    assert s["last_token"] > 0, f"w{i} allocated no token uids: {s}"
    if i > 0:
        assert s["last_token"] > by_name[f"w{i-1}"]["last_token"], \
            f"w{i} token count not isolated from w{i-1}: {s}"
default = next(s for s in listing["sessions"] if s["default"])
assert default["journal_events"] == 0, \
    f"wide-session runs leaked into the default session journal: {default}"
print(f"ok: 8 sessions across 2 shards, isolation holds")
PYEOF
else
  grep -q '"count":9' "$out" || { echo "FAIL: fleet session_list wrong"; cat "$out"; exit 1; }
fi
# --session attaches before the first command; the attached session answers.
printf ':info_links\n' \
  | ./build/tools/dfdbg-client --unix "$sock" --raw --session w3 >"build/fleet_session_flag.txt" \
  || { echo "FAIL: dfdbg-client --session exited non-zero"; cat "build/fleet_session_flag.txt"; exit 1; }
grep -q '"links"' "build/fleet_session_flag.txt" \
  || { echo "FAIL: --session w3 got no links"; cat "build/fleet_session_flag.txt"; exit 1; }
# v1 alias: a client that never mentions sessions is served by the default
# H.264 session exactly as the single-session server answered.
printf '%s\n' ':ping' ':info_links' \
  | ./build/tools/dfdbg-client --unix "$sock" --raw >"build/fleet_v1.txt" \
  || { echo "FAIL: v1-compat client exited non-zero"; cat "build/fleet_v1.txt"; exit 1; }
grep -q '"pong":true' "build/fleet_v1.txt" || { echo "FAIL: v1 ping"; exit 1; }
grep -q 'coeff_in' "build/fleet_v1.txt" \
  || { echo "FAIL: v1 info_links did not serve the default decoder session"; cat "build/fleet_v1.txt"; exit 1; }
if grep -q '"error"' "build/fleet_v1.txt"; then echo "FAIL: v1 transcript has errors"; exit 1; fi
# Clean eviction: with every client gone, the 200ms idle timeout reaps all 8
# wide sessions; the default session is exempt.
sleep 0.8
printf ':session_list\n:shutdown\n' \
  | ./build/tools/dfdbg-client --unix "$sock" --raw >"build/fleet_evict.txt" \
  || { echo "FAIL: evict-check client exited non-zero"; cat "build/fleet_evict.txt"; exit 1; }
wait "$serve_pid" || { echo "FAIL: dfdbg-serve exited non-zero"; exit 1; }
grep -q '"count":1' "build/fleet_evict.txt" \
  || { echo "FAIL: idle sessions not evicted"; cat "build/fleet_evict.txt"; exit 1; }
rm -f "$sock"
echo "ok: fleet gate (isolation, --session, v1 alias, idle eviction)"

echo "== sanitizer gate (ASan+UBSan) =="
# The token hot path (SBO Value, ring-buffer Link, batched push_n/pop_n) is
# manual-lifetime code: build it under AddressSanitizer + UBSan and run the
# tests that hammer it hardest. Threads backend only — the fibers backend
# swaps ucontext stacks, which ASan's stack bookkeeping cannot follow.
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-asan -j "$(nproc)" --target test_journal test_link_ring
for t in test_link_ring test_journal; do
  echo "-- $t under ASan+UBSan (threads backend)"
  DFDBG_PROCESS_BACKEND=threads ASAN_OPTIONS=detect_leaks=0 \
    ./build-asan/tests/$t >/dev/null \
    || { echo "FAIL: $t under sanitizers"; exit 1; }
done

echo "== sanitizer gate (TSan, parallel backend) =="
# The parallel backend's worker threads, boundary rings and barrier protocol
# are the only genuinely concurrent code in the tree: build the parallel test
# suite under ThreadSanitizer and run the multi-worker tests. The thread
# substrate replaces fibers (TSan cannot follow raw swapcontext stacks), so
# the two fibers-comparison tests are excluded — everything the workers do
# concurrently is still exercised.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build build-tsan -j "$(nproc)" --target test_parallel_backend test_fleet test_boundary_ring
# The lock-free boundary ring's raw SPSC surface, driven by two real threads:
# the acquire/release counter protocol is exactly what TSan exists to check.
echo "-- test_boundary_ring under TSan (two-thread SPSC stress)"
./build-tsan/tests/test_boundary_ring >/dev/null \
  || { echo "FAIL: test_boundary_ring under TSan"; exit 1; }
echo "-- test_parallel_backend under TSan (threads substrate)"
DFDBG_PARALLEL_SUBSTRATE=threads ./build-tsan/tests/test_parallel_backend \
  --gtest_filter='ParallelWide.*:RelaxedSync.*:ParallelH264.TraceCsvRunToRunDeterministic:ParallelH264.WhenceRunToRunDeterministic:ParallelH264.Catchpoint*' \
  >/dev/null \
  || { echo "FAIL: test_parallel_backend under TSan"; exit 1; }
# The sharded fleet host is the other concurrent subsystem: cross-shard
# session lookups (shared_ptr pins vs. owning-shard destroy), racing
# session_create on two shards, client migration and cross-shard detach all
# run under TSan here. Threads backend/substrate for the same fiber reason.
echo "-- test_fleet under TSan (threads backend)"
DFDBG_PROCESS_BACKEND=threads DFDBG_PARALLEL_SUBSTRATE=threads \
  ./build-tsan/tests/test_fleet >/dev/null \
  || { echo "FAIL: test_fleet under TSan"; exit 1; }

echo "== bench smoke (BENCH_JSON well-formedness) =="
# A token measurement time per benchmark: enough to prove the binary runs
# and its BENCH_JSON records parse. Validated with python3 when available.
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  out="$("$bench" --benchmark_min_time=0.01 --benchmark_color=false 2>/dev/null)" \
    || { echo "FAIL: $name exited non-zero"; exit 1; }
  lines="$(printf '%s\n' "$out" | grep -c '^BENCH_JSON ' || true)"
  if [ "$lines" -eq 0 ]; then
    echo "FAIL: $name emitted no BENCH_JSON line"
    exit 1
  fi
  if [ "$have_python" -eq 1 ]; then
    printf '%s\n' "$out" | sed -n 's/^BENCH_JSON //p' \
      | python3 -c 'import json,sys
for ln in sys.stdin:
    json.loads(ln)' \
      || { echo "FAIL: $name emitted malformed BENCH_JSON"; exit 1; }
  fi
  echo "ok: $name ($lines BENCH_JSON lines)"
done

echo "== bench regression report (non-fatal) =="
# Diff the newest two committed BENCH_*.json aggregates and surface any
# >20% ns_per_op growth in the build log. Informational only: benchmark
# noise on shared CI hardware would make a hard gate flaky.
if [ "$have_python" -eq 1 ]; then
  python3 scripts/bench_compare.py \
    || echo "note: throughput regressions flagged above (non-fatal)"
else
  echo "-- python3 unavailable; skipping bench comparison"
fi

echo "ALL BUILD CHECKS PASSED"

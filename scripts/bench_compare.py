#!/usr/bin/env python3
"""Diff the newest two BENCH_*.json aggregates and flag throughput regressions.

Each PR commits its measured numbers as BENCH_PRn.json (scripts/
collect_bench.py). This script pairs the two most recent aggregates, matches
records by (binary, benchmark name, backend), and reports every benchmark
whose ns_per_op grew — or whose tokens_per_sec shrank — by more than the
threshold (default 20%). The throughput check is what covers the parallel
backend: BM_ParallelScaling / BM_ParallelAttribution amortize a whole
simulation per iteration, so ns_per_op tracks setup as much as steady state,
while their tokens_per_sec counter is the number the scaling acceptance
bars are written against.

Exit status: 0 when no regression crosses the threshold (or there is nothing
to compare), 1 otherwise. The check_build.sh step that runs this is
non-fatal — benchmark noise on shared hardware is real — but the report makes
a slowdown visible in the build log instead of buried in a JSON diff.

Standard library only; no third-party dependencies.

Usage:
    scripts/bench_compare.py                  # newest two BENCH_*.json
    scripts/bench_compare.py --threshold 0.5  # only flag >50% slowdowns
    scripts/bench_compare.py old.json new.json
"""

import argparse
import glob
import json
import os
import sys


def load_aggregate(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for binary, recs in doc.get("benchmarks", {}).items():
        for r in recs:
            key = (binary, r.get("name", "?"), r.get("backend", "?"))
            records[key] = r
    return records


def newest_two(repo):
    paths = glob.glob(os.path.join(repo, "BENCH_*.json"))
    paths.sort(key=lambda p: (os.path.getmtime(p), p))
    return paths[-2:] if len(paths) >= 2 else []


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="explicit [old new] aggregates; default: newest two "
                         "BENCH_*.json at the repository root by mtime")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="flag when ns_per_op grows by more than this "
                         "fraction (default: 0.20)")
    args = ap.parse_args()

    if args.files and len(args.files) != 2:
        print("error: pass exactly two files (old new) or none", file=sys.stderr)
        return 2
    pair = args.files if args.files else newest_two(repo)
    if len(pair) < 2:
        print("bench_compare: fewer than two BENCH_*.json aggregates; "
              "nothing to compare")
        return 0
    old_path, new_path = pair
    old = load_aggregate(old_path)
    new = load_aggregate(new_path)
    print(f"bench_compare: {os.path.basename(old_path)} -> "
          f"{os.path.basename(new_path)} (threshold +{args.threshold:.0%})")

    common = sorted(set(old) & set(new))
    if not common:
        print("bench_compare: no overlapping benchmarks; nothing to compare")
        return 0
    regressions = []
    for key in common:
        before = old[key].get("ns_per_op", 0)
        after = new[key].get("ns_per_op", 0)
        if before > 0 and after > 0:
            ratio = after / before
            if ratio > 1.0 + args.threshold:
                regressions.append((key, "ns_per_op", before, after, ratio))
        # Throughput counters regress downward; same threshold, inverted.
        tps_before = old[key].get("tokens_per_sec", 0)
        tps_after = new[key].get("tokens_per_sec", 0)
        if tps_before > 0 and tps_after > 0:
            ratio = tps_before / tps_after
            if ratio > 1.0 + args.threshold:
                regressions.append(
                    (key, "tokens_per_sec", tps_before, tps_after, ratio))

    for (binary, name, backend), metric, before, after, ratio in regressions:
        if metric == "ns_per_op":
            print(f"  REGRESSION {binary} {name} [{backend}]: "
                  f"{before / 1e6:.3f} -> {after / 1e6:.3f} ms/op "
                  f"({ratio - 1.0:+.0%})")
        else:
            print(f"  REGRESSION {binary} {name} [{backend}]: "
                  f"{before / 1e6:.3f} -> {after / 1e6:.3f} Mtokens/s "
                  f"(-{1.0 - after / before:.0%})")
    flagged = len(regressions)
    print(f"bench_compare: {len(common)} benchmark(s) compared, "
          f"{flagged} regression(s) over threshold")
    return 1 if flagged else 0


if __name__ == "__main__":
    sys.exit(main())

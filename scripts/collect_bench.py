#!/usr/bin/env python3
"""Run the benchmark binaries and aggregate their BENCH_JSON lines.

Every bench binary (bench/bench_*.cpp) prints one machine-readable line per
measurement through the shared JsonLineReporter:

    BENCH_JSON {"name":"BM_JournalOverhead/1","backend":"fibers",...}

This script sweeps the built binaries, scrapes those lines, and writes one
aggregate document (default: BENCH_PR10.json at the repository root) so a PR
can commit its measured numbers alongside the code that produced them.

Standard library only; no third-party dependencies.

Usage:
    scripts/collect_bench.py                       # all benches, quick pass
    scripts/collect_bench.py --min-time 0.5        # steadier numbers
    scripts/collect_bench.py --only ov1 --out /tmp/ov1.json
"""

import argparse
import glob
import json
import os
import subprocess
import sys


def scrape_bench_json(stdout):
    """Parses every `BENCH_JSON {...}` line.

    A malformed record is an error, not a skip: silently dropping it would
    let a broken reporter pass the sweep with a truncated aggregate.
    """
    records = []
    for lineno, line in enumerate(stdout.splitlines(), start=1):
        if not line.startswith("BENCH_JSON "):
            continue
        payload = line[len("BENCH_JSON "):]
        try:
            records.append(json.loads(payload))
        except json.JSONDecodeError as e:
            raise RuntimeError(
                f"malformed BENCH_JSON record on stdout line {lineno}: "
                f"{e} in: {payload[:200]}") from e
    return records


def run_bench(path, min_time, bench_filter, timeout):
    argv = [path, f"--benchmark_min_time={min_time}", "--benchmark_color=false"]
    if bench_filter:
        argv.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(argv, capture_output=True, text=True, timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"{os.path.basename(path)} exited {proc.returncode}:\n{proc.stderr[-2000:]}")
    return scrape_bench_json(proc.stdout)


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(repo, "build"),
                    help="CMake build tree holding bench/bench_* (default: build)")
    ap.add_argument("--out", default=os.path.join(repo, "BENCH_PR10.json"),
                    help="aggregate output path (default: BENCH_PR10.json)")
    ap.add_argument("--min-time", type=float, default=0.05,
                    help="google-benchmark --benchmark_min_time per bench (s)")
    ap.add_argument("--only", default=None,
                    help="only run binaries whose name contains this substring")
    ap.add_argument("--filter", default=None,
                    help="forwarded as --benchmark_filter to every binary")
    ap.add_argument("--timeout", type=float, default=600.0,
                    help="per-binary timeout (s)")
    args = ap.parse_args()

    benches = sorted(glob.glob(os.path.join(args.build_dir, "bench", "bench_*")))
    benches = [b for b in benches if os.path.isfile(b) and os.access(b, os.X_OK)]
    if args.only:
        benches = [b for b in benches if args.only in os.path.basename(b)]
    if not benches:
        print(f"error: no bench binaries under {args.build_dir}/bench "
              "(build first: cmake --build build -j)", file=sys.stderr)
        return 1

    aggregate = {
        "generated_by": "scripts/collect_bench.py",
        "min_time_s": args.min_time,
        "benchmarks": {},
    }
    failures = 0
    for bench in benches:
        name = os.path.basename(bench)
        print(f"== {name} ==", flush=True)
        try:
            records = run_bench(bench, args.min_time, args.filter, args.timeout)
        except Exception as e:  # noqa: BLE001 - report and keep sweeping
            print(f"   FAIL: {e}", file=sys.stderr)
            failures += 1
            continue
        if not records and not args.filter:
            print(f"   FAIL: no BENCH_JSON lines", file=sys.stderr)
            failures += 1
            continue
        for r in records:
            print(f"   {r.get('name', '?')}: {r.get('ns_per_op', 0) / 1e6:.3f} ms/op")
        aggregate["benchmarks"][name] = records

    total = sum(len(v) for v in aggregate["benchmarks"].values())
    with open(args.out, "w") as f:
        json.dump(aggregate, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}: {total} record(s) from "
          f"{len(aggregate['benchmarks'])} binarie(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

// dfdbg-transcript: runs a seeded wide synthetic graph under the parallel
// backend and prints the merged journal transcript to stdout.
//
// The point is the determinism sweep in scripts/check_build.sh: two runs at
// the same (workers, seed) must produce byte-identical output, at every
// worker count. The transcript covers every journal event the debugger
// replays — dispatch records, token pushes/pops with provenance ids, in
// barrier merge order — so a byte diff is the strongest cheap witness that
// the relaxed-synchrony fast paths (eager drains, elided barriers, sparse
// wakes) did not perturb the schedule.
//
// Usage: dfdbg-transcript <workers> [seed] [tokens]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "../bench/wide_graph.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <workers> [seed] [tokens]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfdbg;
  if (argc < 2 || argc > 4) return usage(argv[0]);
  const int workers = std::atoi(argv[1]);
  if (workers < 1) return usage(argv[0]);
  const std::uint32_t seed = argc > 2 ? static_cast<std::uint32_t>(std::atoll(argv[2])) : 1u;
  const std::size_t tokens = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 32;

  obs::set_enabled(true);
  obs::Journal& j = obs::Journal::global();
  j.set_capacity(1 << 18);
  j.reset();

  benchutil::WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = tokens;
  cfg.spin = 16;
  cfg.seed = seed;
  cfg.fixed_partitions = true;
  auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
  benchutil::run_wide_world(*w);

  const std::uint64_t checksum = benchutil::sink_checksum(*w);
  if (checksum != w->expected_checksum) {
    std::fprintf(stderr, "FAIL: sink checksum %llu != expected %llu\n",
                 static_cast<unsigned long long>(checksum),
                 static_cast<unsigned long long>(w->expected_checksum));
    return 1;
  }
  std::fputs(j.format_last(j.size()).c_str(), stdout);
  return 0;
}

// dfdbg-client: line-oriented client for the debug server (docs/PROTOCOL.md).
//
//   dfdbg-client [--host H] --port N   connect over TCP
//   dfdbg-client --unix PATH           connect over a Unix-domain socket
//   dfdbg-client ... --raw             print raw response frames (for tooling)
//   dfdbg-client ... --drain           after stdin EOF, keep printing pushed
//                                      frames until the server disconnects
//   dfdbg-client ... --session NAME    session_attach to NAME (or numeric id)
//                                      right after connecting; every later
//                                      request then targets that session
//
// Server-push notifications (frames without an `id`, from `subscribe`) are
// printed as raw NDJSON whenever they arrive, in both modes.
//
// Reads commands from stdin, one per line, until EOF:
//
//   info links                 a plain line is wrapped as the `exec` verb
//   :whence {"iface":"x::y"}   a `:method {params}` line is sent structured
//   :ping                      params may be omitted
//
// Per response, the default mode prints an exec result's transcript output
// verbatim, any other result as its JSON, and errors as `error[CODE] ...` on
// stderr. Exit status: 0 = all requests succeeded, 1 = at least one error
// response, 2 = connection or protocol failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dfdbg/common/json.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] --port N | --unix PATH  [--raw] [--drain]"
               " [--session NAME]\n",
               argv0);
  return 2;
}

int connect_tcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Reads one '\n'-terminated frame. Returns false on socket failure/EOF.
bool read_frame(int fd, std::string& spill, std::string& frame) {
  for (;;) {
    std::size_t nl = spill.find('\n');
    if (nl != std::string::npos) {
      frame = spill.substr(0, nl);
      spill.erase(0, nl + 1);
      return true;
    }
    char buf[65536];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    spill.append(buf, static_cast<std::size_t>(n));
  }
}

/// A frame without an `id` is a server-push notification, not a response
/// (docs/PROTOCOL.md "Subscriptions").
bool is_notification(const std::string& frame) {
  auto parsed = dfdbg::JsonValue::parse(frame);
  return parsed.ok() && parsed->is_object() && parsed->find("id") == nullptr;
}

/// Sends `frame` + '\n' and reads frames until the response arrives;
/// interleaved notifications are printed as raw NDJSON on the way. Returns
/// false on socket failure.
bool round_trip(int fd, const std::string& frame, std::string& spill, std::string& response) {
  std::string wire = frame + "\n";
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    if (!read_frame(fd, spill, response)) return false;
    if (!is_notification(response)) return true;
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using dfdbg::JsonValue;
  using dfdbg::json_quote;

  std::string host = "127.0.0.1";
  std::string unix_path;
  std::string session;
  int port = 0;
  bool raw = false;
  bool drain = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--host") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      host = v;
    } else if (a == "--port") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      port = std::atoi(v);
    } else if (a == "--unix") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      unix_path = v;
    } else if (a == "--session") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      session = v;
    } else if (a == "--raw") {
      raw = true;
    } else if (a == "--drain") {
      drain = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (unix_path.empty() && port == 0) return usage(argv[0]);

  int fd = unix_path.empty() ? connect_tcp(host, port) : connect_unix(unix_path);
  if (fd < 0) {
    std::fprintf(stderr, "connect failed: %s\n", std::strerror(errno));
    return 2;
  }

  int rc = 0;
  int next_id = 1;
  std::string spill;
  if (!session.empty()) {
    // Attach before anything else: a numeric spelling is a session id, any
    // other string a session name (protocol v2, docs/PROTOCOL.md).
    bool numeric = session.find_first_not_of("0123456789") == std::string::npos;
    std::string sid = numeric ? session : json_quote(session);
    std::string frame = "{\"jsonrpc\":\"2.0\",\"id\":" + std::to_string(next_id++) +
                        ",\"method\":\"session_attach\",\"params\":{\"session\":" + sid + "}}";
    std::string response;
    if (!round_trip(fd, frame, spill, response)) {
      std::fprintf(stderr, "connection lost during session_attach\n");
      close(fd);
      return 2;
    }
    auto parsed = JsonValue::parse(response);
    if (!parsed.ok() || !parsed->is_object() || parsed->find("error") != nullptr) {
      std::fprintf(stderr, "session_attach failed: %s\n", response.c_str());
      close(fd);
      return 2;
    }
  }
  char linebuf[1 << 16];
  while (std::fgets(linebuf, sizeof(linebuf), stdin) != nullptr) {
    std::string line = linebuf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    std::string frame;
    if (line[0] == ':') {
      std::size_t sp = line.find(' ');
      std::string method = line.substr(1, sp == std::string::npos ? sp : sp - 1);
      std::string params = sp == std::string::npos ? "" : line.substr(sp + 1);
      frame = "{\"jsonrpc\":\"2.0\",\"id\":" + std::to_string(next_id++) +
              ",\"method\":" + json_quote(method);
      if (!params.empty()) frame += ",\"params\":" + params;
      frame += "}";
    } else {
      frame = "{\"jsonrpc\":\"2.0\",\"id\":" + std::to_string(next_id++) +
              ",\"method\":\"exec\",\"params\":{\"line\":" + json_quote(line) + "}}";
    }

    std::string response;
    if (!round_trip(fd, frame, spill, response)) {
      std::fprintf(stderr, "connection lost\n");
      close(fd);
      return 2;
    }
    if (raw) {
      std::printf("%s\n", response.c_str());
      std::fflush(stdout);
      continue;
    }
    auto parsed = JsonValue::parse(response);
    if (!parsed.ok() || !parsed->is_object()) {
      std::fprintf(stderr, "bad response frame: %s\n", response.c_str());
      close(fd);
      return 2;
    }
    if (const JsonValue* err = parsed->find("error"); err != nullptr) {
      const JsonValue* code = err->find("code");
      std::fprintf(stderr, "error[%lld] %s\n",
                   static_cast<long long>(code != nullptr ? code->as_i64() : 0),
                   err->str_or("message").c_str());
      rc = 1;
      continue;
    }
    const JsonValue* result = parsed->find("result");
    if (result == nullptr) {
      std::fprintf(stderr, "bad response frame: %s\n", response.c_str());
      close(fd);
      return 2;
    }
    // exec results carry the CLI transcript; print it as the CLI would.
    if (const JsonValue* output = result->find("output"); output != nullptr) {
      std::fputs(output->as_string().c_str(), stdout);
      if (!result->bool_or("ok", true)) {
        std::fprintf(stderr, "error %s\n", result->str_or("error").c_str());
        rc = 1;
      }
    } else {
      std::printf("%s\n", result->dump().c_str());
    }
    std::fflush(stdout);
  }
  // --drain: stdin is exhausted, but subscriptions may still be streaming;
  // keep printing pushed frames until the server closes the connection.
  if (drain) {
    std::string frame;
    while (read_frame(fd, spill, frame)) {
      std::printf("%s\n", frame.c_str());
      std::fflush(stdout);
    }
  }
  close(fd);
  return rc;
}

// dfdbg-top: live terminal dashboard over the debug server's push streams
// (docs/PROTOCOL.md "Subscriptions"). Connects, subscribes to every stream,
// and repaints a single screen — per-link occupancy bars with push/pop
// rates, the busiest filters by consumed cycles, and the journal tail —
// from notifications alone: after the initial subscribe handshake the tool
// never polls.
//
//   dfdbg-top [--host H] --port N | --unix PATH
//             [--session NAME]  session_attach first: dashboard a specific
//                               hosted session instead of the default
//             [--interval MS]   minimum repaint spacing (default 100)
//             [--journal N]     journal-tail lines to keep (default 8)
//             [--no-ansi]       append screens instead of in-place repaint
//             [--run]           send `run` once subscribed; exit on its
//                               response (scripted/CI mode)
//             [--max-frames N]  exit after N received frames (scripted mode)
//
// Rendering is plain ANSI (home + clear per repaint), no curses: the tool
// must run anywhere the tests do.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/strings.hpp"

namespace {

using dfdbg::JsonValue;
using dfdbg::strformat;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] --port N | --unix PATH [--session NAME]\n"
               "          [--interval MS] [--journal N] [--no-ansi] [--run] [--max-frames N]\n",
               argv0);
  return 2;
}

int connect_tcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    ssize_t n = send(fd, s.data() + off, s.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_frame(int fd, std::string& spill, std::string& frame) {
  for (;;) {
    std::size_t nl = spill.find('\n');
    if (nl != std::string::npos) {
      frame = spill.substr(0, nl);
      spill.erase(0, nl + 1);
      return true;
    }
    char buf[65536];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    spill.append(buf, static_cast<std::size_t>(n));
  }
}

/// Dashboard model: everything the last notifications said.
struct LinkState {
  std::uint64_t occupancy = 0;
  std::uint64_t d_pushes = 0;
  std::uint64_t d_pops = 0;
  std::uint64_t peak = 1;  ///< max occupancy seen; scales the bar
};

struct FilterState {
  std::uint64_t firings = 0;
  std::uint64_t cycles = 0;
};

/// Per-worker attribution accumulated from `shard.rounds` notifications
/// (parallel backend only; stays empty elsewhere).
struct WorkerState {
  std::uint64_t dispatches = 0;
  std::uint64_t work_ns = 0;
  std::uint64_t wait_ns = 0;
  std::uint64_t stalls = 0;
  std::uint64_t skips = 0;  ///< rounds this worker slept through (sparse wakes)
  std::uint64_t eager = 0;  ///< tokens it pulled across boundaries mid-round
};

struct Model {
  std::uint64_t sim_time = 0;
  std::map<std::string, LinkState> links;       // ordered: stable screen rows
  std::map<std::string, FilterState> filters;
  std::deque<std::string> journal_tail;
  std::size_t journal_keep = 8;
  std::uint64_t frames = 0;        ///< notifications received
  std::uint64_t journal_events = 0;
  std::uint64_t gap_total = 0;     ///< journal events lost to ring laps
  std::string last_run_event;
  std::string backend;             ///< from capabilities: active process backend
  std::uint64_t workers = 0;       ///< from capabilities: partition count
  std::vector<WorkerState> shard;  ///< indexed by partition; grown on demand
  std::uint64_t barrier_rounds = 0;  ///< shard.rounds records consumed
  std::uint64_t elided_rounds = 0;   ///< of those, rounds with no barrier merge
};

/// One journal event object -> one compact tail line.
std::string journal_line(const JsonValue& ev) {
  std::string line = strformat("t=%-8llu %-10s",
                               static_cast<unsigned long long>(ev.u64_or("t", 0)),
                               ev.str_or("kind", "?").c_str());
  if (const JsonValue* tok = ev.find("token"); tok != nullptr)
    line += strformat(" tok#%llu", static_cast<unsigned long long>(tok->as_u64()));
  if (const JsonValue* actor = ev.find("actor"); actor != nullptr)
    line += " " + actor->as_string();
  if (const JsonValue* link = ev.find("link"); link != nullptr)
    line += " [" + link->as_string() + "]";
  return line;
}

void apply_notification(Model& m, const JsonValue& frame) {
  m.frames++;
  std::string method = frame.str_or("method");
  const JsonValue* p = frame.find("params");
  if (p == nullptr) return;
  if (method == "flow.snapshot") {
    m.sim_time = p->u64_or("time", m.sim_time);
    if (const JsonValue* links = p->find("links"); links != nullptr && links->is_array()) {
      for (std::size_t i = 0; i < links->size(); ++i) {
        const JsonValue& l = links->at(i);
        LinkState& ls = m.links[l.str_or("name", "?")];
        ls.occupancy = l.u64_or("occupancy", 0);
        ls.d_pushes = l.u64_or("d_pushes", 0);
        ls.d_pops = l.u64_or("d_pops", 0);
        ls.peak = std::max(ls.peak, ls.occupancy);
      }
    }
    if (const JsonValue* fs = p->find("filters"); fs != nullptr && fs->is_array()) {
      for (std::size_t i = 0; i < fs->size(); ++i) {
        const JsonValue& f = fs->at(i);
        FilterState& st = m.filters[f.str_or("path", "?")];
        st.firings = f.u64_or("firings", 0);
        st.cycles = f.u64_or("cycles", 0);
      }
    }
  } else if (method == "journal.delta") {
    m.gap_total += p->u64_or("gap", 0);
    if (const JsonValue* evs = p->find("events"); evs != nullptr && evs->is_array()) {
      m.journal_events += evs->size();
      for (std::size_t i = 0; i < evs->size(); ++i) {
        m.journal_tail.push_back(journal_line(evs->at(i)));
        while (m.journal_tail.size() > m.journal_keep) m.journal_tail.pop_front();
      }
    }
  } else if (method == "run.event") {
    std::string msg = p->str_or("message");
    m.last_run_event = msg.empty() ? p->str_or("kind") : msg;
  } else if (method == "shard.rounds") {
    if (const JsonValue* rounds = p->find("rounds"); rounds != nullptr && rounds->is_array()) {
      m.barrier_rounds += rounds->size();
      for (std::size_t i = 0; i < rounds->size(); ++i) {
        if (rounds->at(i).bool_or("elided", false)) m.elided_rounds++;
        const JsonValue* parts = rounds->at(i).find("partitions");
        if (parts == nullptr || !parts->is_array()) continue;
        if (m.shard.size() < parts->size()) m.shard.resize(parts->size());
        for (std::size_t k = 0; k < parts->size(); ++k) {
          const JsonValue& d = parts->at(k);
          WorkerState& w = m.shard[k];
          w.dispatches += d.u64_or("dispatches", 0);
          w.work_ns += d.u64_or("work_ns", 0);
          w.wait_ns += d.u64_or("wait_ns", 0);
          w.eager += d.u64_or("eager", 0);
          if (d.bool_or("stalled", false)) w.stalls++;
          if (d.bool_or("skipped", false)) w.skips++;
        }
      }
    }
  }
  // stats.delta is accepted but not rendered row-by-row; the header counts
  // already summarize what a dashboard needs.
}

void render(const Model& m, bool ansi) {
  std::string scr;
  if (ansi) scr += "\x1b[H\x1b[2J";
  scr += strformat("dfdbg-top  sim t=%llu  frames=%llu  journal ev=%llu  gaps=%llu\n",
                   static_cast<unsigned long long>(m.sim_time),
                   static_cast<unsigned long long>(m.frames),
                   static_cast<unsigned long long>(m.journal_events),
                   static_cast<unsigned long long>(m.gap_total));
  if (!m.backend.empty())
    scr += strformat("backend: %s  workers=%llu\n", m.backend.c_str(),
                     static_cast<unsigned long long>(m.workers));
  if (!m.last_run_event.empty()) scr += strformat("last stop: %s\n", m.last_run_event.c_str());
  scr += "\nlinks                                  occupancy  d_push  d_pop\n";
  for (const auto& [name, l] : m.links) {
    std::string bar(static_cast<std::size_t>(
                        l.peak == 0 ? 0 : (16 * l.occupancy + l.peak - 1) / l.peak),
                    '#');
    bar.resize(16, '.');
    scr += strformat("  %-28s [%s] %5llu %7llu %6llu\n", name.c_str(), bar.c_str(),
                     static_cast<unsigned long long>(l.occupancy),
                     static_cast<unsigned long long>(l.d_pushes),
                     static_cast<unsigned long long>(l.d_pops));
  }
  // Busiest filters first (by simulated cycles consumed), top 8.
  std::vector<std::pair<std::string, FilterState>> busy(m.filters.begin(), m.filters.end());
  std::sort(busy.begin(), busy.end(),
            [](const auto& a, const auto& b) { return a.second.cycles > b.second.cycles; });
  if (busy.size() > 8) busy.resize(8);
  scr += "\ntop filters                              firings      cycles\n";
  for (const auto& [path, f] : busy)
    scr += strformat("  %-36s %8llu %11llu\n", path.c_str(),
                     static_cast<unsigned long long>(f.firings),
                     static_cast<unsigned long long>(f.cycles));
  // Worker utilization (parallel backend): share of work vs barrier-wait
  // accumulated from shard.rounds, as a bar per worker.
  if (!m.shard.empty()) {
    scr += strformat(
        "\nworkers (%llu rounds, %llu elided)     util  dispatches  stalls  skips  eager\n",
        static_cast<unsigned long long>(m.barrier_rounds),
        static_cast<unsigned long long>(m.elided_rounds));
    for (std::size_t i = 0; i < m.shard.size(); ++i) {
      const WorkerState& w = m.shard[i];
      const std::uint64_t denom = w.work_ns + w.wait_ns;
      const double util = denom == 0 ? 0.0 : static_cast<double>(w.work_ns) / denom;
      std::string bar(static_cast<std::size_t>(util * 16.0 + 0.5), '#');
      bar.resize(16, '.');
      scr += strformat("  worker %-2zu [%s] %5.1f%% %11llu %7llu %6llu %6llu\n", i, bar.c_str(),
                       util * 100.0, static_cast<unsigned long long>(w.dispatches),
                       static_cast<unsigned long long>(w.stalls),
                       static_cast<unsigned long long>(w.skips),
                       static_cast<unsigned long long>(w.eager));
    }
  }
  scr += "\njournal tail\n";
  for (const std::string& line : m.journal_tail) scr += "  " + line + "\n";
  std::fputs(scr.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string unix_path;
  std::string session;
  int port = 0;
  int interval_ms = 100;
  bool ansi = true;
  bool do_run = false;
  std::uint64_t max_frames = 0;
  Model model;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (a == "--host" && (v = next()) != nullptr) {
      host = v;
    } else if (a == "--port" && (v = next()) != nullptr) {
      port = std::atoi(v);
    } else if (a == "--unix" && (v = next()) != nullptr) {
      unix_path = v;
    } else if (a == "--session" && (v = next()) != nullptr) {
      session = v;
    } else if (a == "--interval" && (v = next()) != nullptr) {
      interval_ms = std::atoi(v);
    } else if (a == "--journal" && (v = next()) != nullptr) {
      model.journal_keep = static_cast<std::size_t>(std::strtoull(v, nullptr, 0));
    } else if (a == "--no-ansi") {
      ansi = false;
    } else if (a == "--run") {
      do_run = true;
    } else if (a == "--max-frames" && (v = next()) != nullptr) {
      max_frames = std::strtoull(v, nullptr, 0);
    } else {
      return usage(argv[0]);
    }
  }
  if (unix_path.empty() && port == 0) return usage(argv[0]);

  int fd = unix_path.empty() ? connect_tcp(host, port) : connect_unix(unix_path);
  if (fd < 0) {
    std::fprintf(stderr, "connect failed: %s\n", std::strerror(errno));
    return 2;
  }

  // Subscribe to every stream, then (optionally) start the run. Responses
  // and notifications interleave; we route on the presence of `id`.
  std::string handshake;
  int next_id = 1;
  if (!session.empty()) {
    // Attach first so capabilities and every subscribe bind to that session.
    bool numeric = session.find_first_not_of("0123456789") == std::string::npos;
    std::string sid = numeric ? session : dfdbg::json_quote(session);
    handshake += strformat(
        "{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"session_attach\",\"params\":{\"session\":%s}}\n",
        next_id++, sid.c_str());
  }
  const int cap_id = next_id;
  handshake += strformat("{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"capabilities\"}\n", next_id++);
  for (const char* stream : {"journal", "info_flow", "stats", "run_events", "shard_rounds"})
    handshake += strformat(
        "{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"subscribe\",\"params\":{\"stream\":\"%s\"}}\n",
        next_id++, stream);
  const int run_id = next_id;
  if (do_run) handshake += strformat("{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"run\"}\n", next_id++);
  if (!send_all(fd, handshake)) {
    std::fprintf(stderr, "send failed\n");
    close(fd);
    return 2;
  }

  std::string spill;
  std::string frame;
  auto last_paint = std::chrono::steady_clock::now() - std::chrono::hours(1);
  int rc = 0;
  while (read_frame(fd, spill, frame)) {
    auto parsed = JsonValue::parse(frame);
    if (!parsed.ok() || !parsed->is_object()) continue;
    const JsonValue* id = parsed->find("id");
    bool done = false;
    if (id == nullptr) {
      apply_notification(model, *parsed);
    } else {
      if (parsed->find("error") != nullptr) {
        std::fprintf(stderr, "error response: %s\n", frame.c_str());
        rc = 1;
      }
      if (id->as_i64() == cap_id) {
        if (const JsonValue* r = parsed->find("result"); r != nullptr) {
          model.backend = r->str_or("backend");
          model.workers = r->u64_or("workers", 0);
        }
      }
      // The `run` response means the simulation ended: final paint + exit.
      if (do_run && id->as_i64() == run_id) done = true;
    }
    if (max_frames != 0 && model.frames >= max_frames) done = true;
    auto now = std::chrono::steady_clock::now();
    if (done || now - last_paint >= std::chrono::milliseconds(interval_ms)) {
      render(model, ansi);
      last_paint = now;
    }
    if (done) break;
  }
  close(fd);
  return rc;
}

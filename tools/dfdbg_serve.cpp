// dfdbg-serve: stand up the H.264 decoder rig with an attached debug
// Session and serve it over the JSON-RPC debug protocol (docs/PROTOCOL.md).
//
//   dfdbg-serve [--port N]          TCP on 127.0.0.1 (0/default = ephemeral)
//               [--unix PATH]       Unix-domain socket instead of TCP
//               [--width N] [--height N] [--frames N]
//               [--fault none|rate-mismatch|corrupt-splitter|drop-config|skip-ipf]
//               [--trigger-mb N]    fault trigger macroblock (default 5)
//               [--no-exec]         disable the raw-CLI `exec` verb
//               [--shards N]        poll loops; sessions pin to one (default 1)
//               [--max-sessions N]  hosted-session ceiling (default 4096)
//               [--idle-evict-ms N] default idle-eviction timeout for created
//                                   sessions (0 = never, the default)
//               [--no-create]       disable the `session_create` verb
//
// The H.264 decoder rig above is the *default session* — v1 clients that
// never mention sessions keep talking to it unchanged. The server also
// carries a session factory (rigs: wide, adl, h264), so v2 clients can
// `session_create` fleets of independent worlds next to it.
//
// Prints exactly one "LISTENING ..." line on stdout once ready (scripts
// scrape it for the ephemeral port), then blocks serving until a client
// sends the `shutdown` verb.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/debug/session_host.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/h264/session_rig.hpp"
#include "dfdbg/server/server.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N | --unix PATH] [--width N] [--height N] [--frames N]\n"
               "          [--fault KIND] [--trigger-mb N] [--no-exec] [--shards N]\n"
               "          [--max-sessions N] [--idle-evict-ms N] [--no-create]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfdbg;

  int port = 0;
  std::string unix_path;
  bool no_exec = false;
  bool no_create = false;
  int shards = 1;
  std::size_t max_sessions = 4096;
  std::uint64_t idle_evict_ms = 0;
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  cfg.fault.trigger_mb = 5;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--port") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      port = std::atoi(v);
    } else if (a == "--unix") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      unix_path = v;
    } else if (a == "--width" || a == "--height" || a == "--frames" || a == "--trigger-mb") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      int n = std::atoi(v);
      if (a == "--width") cfg.params.width = n;
      else if (a == "--height") cfg.params.height = n;
      else if (a == "--frames") cfg.params.frame_count = n;
      else cfg.fault.trigger_mb = static_cast<std::size_t>(n);
    } else if (a == "--fault") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      std::string k = v;
      if (k == "none") cfg.fault.kind = h264::FaultPlan::Kind::kNone;
      else if (k == "rate-mismatch") cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
      else if (k == "corrupt-splitter") cfg.fault.kind = h264::FaultPlan::Kind::kCorruptSplitter;
      else if (k == "drop-config") cfg.fault.kind = h264::FaultPlan::Kind::kDropConfig;
      else if (k == "skip-ipf") cfg.fault.kind = h264::FaultPlan::Kind::kSkipIpf;
      else return usage(argv[0]);
    } else if (a == "--no-exec") {
      no_exec = true;
    } else if (a == "--no-create") {
      no_create = true;
    } else if (a == "--shards" || a == "--max-sessions" || a == "--idle-evict-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (a == "--shards") shards = std::atoi(v);
      else if (a == "--max-sessions") max_sessions = static_cast<std::size_t>(std::atoll(v));
      else idle_evict_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      return usage(argv[0]);
    }
  }

  auto built = h264::H264App::build(cfg);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().message().c_str());
    return 1;
  }
  h264::H264App& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();

  server::ServerConfig scfg;
  scfg.allow_exec = !no_exec;
  scfg.allow_session_create = !no_create;
  scfg.shards = shards;
  scfg.max_sessions = max_sessions;
  scfg.default_quota.idle_timeout_ms = idle_evict_ms;
  server::DebugServer server(session, scfg);
  // The fleet factory: wide + adl are built in; the h264 decoder rig comes
  // from its own library so the server stays free of codec dependencies.
  dbg::SessionFactory factory;
  h264::register_session_rig(factory);
  server.set_factory(&factory);
  if (!unix_path.empty()) {
    Status s = server.listen_unix(unix_path);
    if (!s.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", s.message().c_str());
      return 1;
    }
    std::printf("LISTENING unix=%s\n", unix_path.c_str());
  } else {
    auto p = server.listen_tcp("127.0.0.1", port);
    if (!p.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", p.status().message().c_str());
      return 1;
    }
    std::printf("LISTENING port=%d\n", *p);
  }
  std::fflush(stdout);

  // The kernel's fibers and the verb handlers all run on this one thread:
  // serving IS the simulation driver.
  Status s = server.serve();
  if (!s.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}

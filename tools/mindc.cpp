// mindc — standalone MIND architecture compiler.
//
// Usage:
//   mindc check  <file.adl> <top>          parse + semantic analysis
//   mindc fmt    <file.adl>                canonical pretty-print to stdout
//   mindc dot    <file.adl> <top>          Graphviz DOT of the graph
//   mindc run    <file.adl> <top> [steps]  instantiate with generic behaviour
//                                          and execute on the simulated MPSoC
//
// Exit code 0 on success, 1 on a diagnosed error, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/dot.hpp"
#include "dfdbg/mind/emit.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/platform.hpp"

using namespace dfdbg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mindc check|fmt|dot|run <file.adl> [<top>] [steps]\n"
               "  check <file> <top>   parse and analyze\n"
               "  fmt   <file>         canonical formatting to stdout\n"
               "  dot   <file> <top>   Graphviz DOT to stdout\n"
               "  run   <file> <top> [steps=4]  execute with generic filters\n");
  return 2;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<mind::AstDocument> load(const std::string& path) {
  auto text = read_file(path);
  if (!text.ok()) return text.status();
  return mind::parse(*text);
}

int cmd_check(const std::string& path, const std::string& top) {
  auto doc = load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), doc.status().message().c_str());
    return 1;
  }
  auto rep = mind::analyze(*doc, top);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), rep.status().message().c_str());
    return 1;
  }
  for (const std::string& w : rep->warnings)
    std::fprintf(stderr, "%s: warning: %s\n", path.c_str(), w.c_str());
  std::printf("%s: OK (%zu composites, %zu primitives, %zu structs, %zu warnings)\n",
              path.c_str(), doc->composites.size(), doc->primitives.size(),
              doc->structs.size(), rep->warnings.size());
  return 0;
}

int cmd_fmt(const std::string& path) {
  auto doc = load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), doc.status().message().c_str());
    return 1;
  }
  std::fputs(mind::emit_adl(*doc).c_str(), stdout);
  return 0;
}

int cmd_dot(const std::string& path, const std::string& top) {
  auto doc = load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), doc.status().message().c_str());
    return 1;
  }
  if (doc->composite(top) == nullptr) {
    std::fprintf(stderr, "no composite named '%s'\n", top.c_str());
    return 1;
  }
  std::fputs(mind::to_dot(*doc, top).c_str(), stdout);
  return 0;
}

int cmd_run(const std::string& path, const std::string& top, int steps) {
  auto doc = load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), doc.status().message().c_str());
    return 1;
  }
  auto rep = mind::analyze(*doc, top);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), rep.status().message().c_str());
    return 1;
  }
  sim::Kernel kernel;
  sim::Platform platform(kernel, sim::PlatformConfig{});
  pedf::Application app(platform, "mindc-run");
  mind::FilterRegistry registry;
  registry.set_default_steps(static_cast<std::uint64_t>(steps));
  auto root = mind::instantiate(*doc, top, "main", app.types(), registry);
  if (!root.ok()) {
    std::fprintf(stderr, "instantiate: %s\n", root.status().message().c_str());
    return 1;
  }
  pedf::Module& mod = app.set_root(std::move(*root));
  // Attach generic host I/O to the top-level boundary ports.
  int sources = 0, sinks = 0;
  for (const auto& port : mod.ports()) {
    if (port->dir() == pedf::PortDir::kIn) {
      std::vector<pedf::Value> stream(static_cast<std::size_t>(steps),
                                      pedf::Value::zero_of(port->type()));
      app.add_host_source("src_" + port->name(), "main." + port->name(), std::move(stream));
      sources++;
    } else {
      app.add_host_sink("snk_" + port->name(), "main." + port->name(),
                        static_cast<std::size_t>(steps));
      sinks++;
    }
  }
  if (Status s = app.elaborate(); !s.ok()) {
    std::fprintf(stderr, "elaborate: %s\n", s.message().c_str());
    return 1;
  }
  app.start();
  sim::RunResult r = kernel.run();
  std::printf("run: %s after %llu cycles (%llu dispatches, %d sources, %d sinks)\n",
              to_string(r), static_cast<unsigned long long>(kernel.now()),
              static_cast<unsigned long long>(kernel.dispatch_count()), sources, sinks);
  for (const pedf::Actor* a : app.actors()) {
    if (a->kind() != pedf::ActorKind::kFilter) continue;
    std::printf("  %-24s %llu firing(s)\n", a->path().c_str(),
                static_cast<unsigned long long>(static_cast<const pedf::Filter*>(a)->firings()));
  }
  return r == sim::RunResult::kFinished ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string cmd = argv[1];
  std::string path = argv[2];
  if (cmd == "fmt") return cmd_fmt(path);
  if (argc < 4) return usage();
  std::string top = argv[3];
  if (cmd == "check") return cmd_check(path, top);
  if (cmd == "dot") return cmd_dot(path, top);
  if (cmd == "run") return cmd_run(path, top, argc >= 5 ? std::atoi(argv[4]) : 4);
  return usage();
}

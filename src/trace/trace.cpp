#include "dfdbg/trace/trace.hpp"

#include <algorithm>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::trace {

using sim::Frame;

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kPush: return "push";
    case TraceKind::kPop: return "pop";
    case TraceKind::kWorkEnter: return "work-enter";
    case TraceKind::kWorkExit: return "work-exit";
    case TraceKind::kActorStart: return "actor-start";
    case TraceKind::kStepBegin: return "step-begin";
    case TraceKind::kStepEnd: return "step-end";
  }
  return "?";
}

TraceCollector::TraceCollector(pedf::Application& app, std::size_t capacity, bool record_payloads)
    : app_(app), events_(capacity), record_payloads_(record_payloads) {}

TraceCollector::~TraceCollector() {
  if (attached_) detach();
}

void TraceCollector::attach() {
  DFDBG_CHECK(!attached_);
  auto& port = app_.kernel().instrument();
  port.set_enabled(true);
  const auto& syms = app_.syms();
  auto now = [this] { return app_.kernel().now(); };

  hooks_.push_back(port.add_exit_hook(syms.link_push, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kPush;
    ev.actor = f.arg("actor")->str;
    ev.link = static_cast<std::uint32_t>(f.arg("link")->u64);
    ev.index = f.ret() != nullptr ? f.ret()->u64 : f.arg("index")->u64;
    if (record_payloads_) {
      const auto* v = static_cast<const pedf::Value*>(f.arg("value")->ptr);
      ev.payload = v->to_string();
    }
    LinkStats& st = stats_[ev.link];
    st.pushes++;
    std::size_t occ = static_cast<std::size_t>(st.pushes - st.pops);
    if (occ > st.max_occupancy) st.max_occupancy = occ;
    push_event(std::move(ev));
  }));
  hooks_.push_back(port.add_exit_hook(syms.link_pop, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kPop;
    ev.actor = f.arg("actor")->str;
    ev.link = static_cast<std::uint32_t>(f.arg("link")->u64);
    ev.index = f.arg("index")->u64;
    stats_[ev.link].pops++;
    push_event(std::move(ev));
  }));
  hooks_.push_back(port.add_enter_hook(syms.work_enter, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kWorkEnter;
    ev.actor = f.arg("actor")->str;
    ev.index = f.arg("firing")->u64;
    firings_[ev.actor]++;
    push_event(std::move(ev));
  }));
  hooks_.push_back(port.add_enter_hook(syms.work_exit, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kWorkExit;
    ev.actor = f.arg("actor")->str;
    push_event(std::move(ev));
  }));
  hooks_.push_back(port.add_enter_hook(syms.actor_start, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kActorStart;
    ev.actor = f.arg("filter")->str;
    ev.index = f.arg("step")->u64;
    push_event(std::move(ev));
  }));
  hooks_.push_back(port.add_enter_hook(syms.step_begin, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kStepBegin;
    ev.actor = f.arg("module")->str;
    ev.index = f.arg("step")->u64;
    push_event(std::move(ev));
  }));
  hooks_.push_back(port.add_enter_hook(syms.step_end, [this, now](Frame& f) {
    TraceEvent ev;
    ev.time = now();
    ev.kind = TraceKind::kStepEnd;
    ev.actor = f.arg("module")->str;
    ev.index = f.arg("step")->u64;
    push_event(std::move(ev));
  }));
  attached_ = true;
}

void TraceCollector::push_event(TraceEvent ev) {
  ev.shard = app_.kernel().current_partition();
  ev.seq = shard_seq_[ev.shard]++;
  events_.push(std::move(ev));
}

void TraceCollector::detach() {
  if (!attached_) return;
  auto& port = app_.kernel().instrument();
  for (sim::HookId h : hooks_) port.remove_hook(h);
  hooks_.clear();
  attached_ = false;
}

std::map<TraceKind, std::uint64_t> TraceCollector::counts_by_kind() const {
  std::map<TraceKind, std::uint64_t> counts;
  for (std::size_t i = 0; i < events_.size(); ++i) counts[events_.at(i).kind]++;
  return counts;
}

std::string TraceCollector::summary() const {
  std::string out;
  out += strformat("trace: %s, capacity=%zu, retained=%zu, total=%llu, dropped=%llu\n",
                   attached_ ? "attached" : "detached", events_.capacity(), events_.size(),
                   static_cast<unsigned long long>(total_events()),
                   static_cast<unsigned long long>(dropped()));
  for (const auto& [kind, count] : counts_by_kind())
    out += strformat("  %-12s %10llu\n", to_string(kind),
                     static_cast<unsigned long long>(count));
  if (dropped() > 0)
    out += strformat("  (%llu oldest record(s) evicted — raise the capacity to keep them)\n",
                     static_cast<unsigned long long>(dropped()));
  return out;
}

std::uint64_t TraceCollector::firings(const std::string& actor_path) const {
  auto it = firings_.find(actor_path);
  return it == firings_.end() ? 0 : it->second;
}

std::string TraceCollector::to_csv() const {
  // Recover a run-stable total order: (time, shard, seq). On the sequential
  // backends every event carries shard -1 and a globally monotonic seq, so
  // the sort is the identity permutation and existing goldens are unchanged.
  // Under the parallel backend each shard's (time, seq) stream is
  // deterministic for a fixed partition map; only the ring interleaving is
  // wall-clock dependent, and the sort removes exactly that.
  std::vector<const TraceEvent*> order;
  order.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) order.push_back(&events_.at(i));
  std::stable_sort(order.begin(), order.end(), [](const TraceEvent* a, const TraceEvent* b) {
    if (a->time != b->time) return a->time < b->time;
    if (a->shard != b->shard) return a->shard < b->shard;
    return a->seq < b->seq;
  });
  std::string out = "time,kind,actor,link,index,payload\n";
  for (const TraceEvent* e : order) {
    out += strformat("%llu,%s,%s,%u,%llu,%s\n", static_cast<unsigned long long>(e->time),
                     to_string(e->kind), e->actor.c_str(), e->link,
                     static_cast<unsigned long long>(e->index), e->payload.c_str());
  }
  return out;
}

std::uint32_t TraceCollector::busiest_link() const {
  std::uint32_t best = UINT32_MAX;
  std::size_t best_occ = 0;
  for (const auto& [link, st] : stats_) {
    if (st.max_occupancy >= best_occ) {
      best_occ = st.max_occupancy;
      best = link;
    }
  }
  return best;
}

}  // namespace dfdbg::trace

#include "dfdbg/trace/chrome_trace.hpp"

#include <cstdio>
#include <map>
#include <vector>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strformat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

/// Deterministic actor-path -> thread-id assignment, in first-seen order.
class TidTable {
 public:
  int tid_of(const std::string& track) {
    auto it = tids_.find(track);
    if (it != tids_.end()) return it->second;
    int tid = next_++;
    tids_.emplace(track, tid);
    order_.push_back(track);
    return tid;
  }
  [[nodiscard]] const std::vector<std::string>& tracks() const { return order_; }
  [[nodiscard]] int lookup(const std::string& track) const { return tids_.at(track); }

 private:
  std::map<std::string, int> tids_;
  std::vector<std::string> order_;
  int next_ = 1;  // tid 0 is reserved for process metadata
};

struct EventWriter {
  std::string& out;
  bool first = true;

  void emit(const std::string& json) {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
    out += json;
  }
};

}  // namespace

std::string export_chrome_trace(const TraceCollector& trace, pedf::Application& app,
                                const ChromeTraceOptions& options) {
  const auto& events = trace.events();
  TidTable tids;
  // Pass 1: discover every track so thread metadata leads the event stream
  // (Perfetto applies thread names only to already-declared tracks).
  for (std::size_t i = 0; i < events.size(); ++i) tids.tid_of(events.at(i).actor);

  std::string out = "{\n\"traceEvents\": [\n";
  EventWriter w{out};

  w.emit(strformat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                   "\"args\":{\"name\":\"%s\"}}",
                   json_escape(options.process_name).c_str()));
  for (const std::string& track : tids.tracks()) {
    w.emit(strformat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"args\":{\"name\":\"%s\"}}",
                     tids.lookup(track), json_escape(track).c_str()));
  }

  // Per-track open-slice depth: orphan "E"s (begin evicted from the ring)
  // are dropped, dangling "B"s are closed at the end of the window.
  std::map<int, std::vector<std::pair<const char*, sim::SimTime>>> open_slices;
  std::map<std::uint32_t, std::int64_t> occupancy;  // link id -> tokens (window-relative)
  sim::SimTime last_ts = 0;

  auto link_label = [&app](std::uint32_t link_id) {
    pedf::Link* l = app.link_by_id(pedf::LinkId(link_id));
    return l != nullptr ? l->name() : strformat("link#%u", link_id);
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events.at(i);
    int tid = tids.lookup(ev.actor);
    if (ev.time > last_ts) last_ts = ev.time;
    auto ts = static_cast<unsigned long long>(ev.time);
    switch (ev.kind) {
      case TraceKind::kWorkEnter:
        w.emit(strformat("{\"name\":\"WORK\",\"cat\":\"work\",\"ph\":\"B\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"args\":{\"firing\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        open_slices[tid].emplace_back("WORK", ev.time);
        break;
      case TraceKind::kWorkExit:
        if (open_slices[tid].empty()) break;  // begin fell out of the window
        open_slices[tid].pop_back();
        w.emit(strformat(
            "{\"name\":\"WORK\",\"cat\":\"work\",\"ph\":\"E\",\"ts\":%llu,\"pid\":1,"
            "\"tid\":%d}",
            ts, tid));
        break;
      case TraceKind::kStepBegin:
        w.emit(strformat("{\"name\":\"STEP\",\"cat\":\"step\",\"ph\":\"B\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"args\":{\"step\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        open_slices[tid].emplace_back("STEP", ev.time);
        break;
      case TraceKind::kStepEnd:
        if (open_slices[tid].empty()) break;
        open_slices[tid].pop_back();
        w.emit(strformat(
            "{\"name\":\"STEP\",\"cat\":\"step\",\"ph\":\"E\",\"ts\":%llu,\"pid\":1,"
            "\"tid\":%d}",
            ts, tid));
        break;
      case TraceKind::kActorStart:
        if (!options.schedule_instants) break;
        w.emit(strformat("{\"name\":\"ACTOR_START\",\"cat\":\"sched\",\"ph\":\"i\","
                         "\"ts\":%llu,\"pid\":1,\"tid\":%d,\"s\":\"t\","
                         "\"args\":{\"step\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        break;
      case TraceKind::kPush:
      case TraceKind::kPop: {
        if (!options.link_counters || ev.link == UINT32_MAX) break;
        std::int64_t& occ = occupancy[ev.link];
        occ += ev.kind == TraceKind::kPush ? 1 : -1;
        // A window that opens mid-stream can see pops of tokens pushed
        // before the window; clamp the *displayed* level at zero.
        std::int64_t shown = occ < 0 ? 0 : occ;
        w.emit(strformat("{\"name\":\"occ:%s\",\"cat\":\"link\",\"ph\":\"C\",\"ts\":%llu,"
                         "\"pid\":1,\"args\":{\"tokens\":%lld}}",
                         json_escape(link_label(ev.link)).c_str(), ts,
                         static_cast<long long>(shown)));
        break;
      }
    }
  }

  // Close dangling begins (simulation stopped mid-WORK / mid-step) so every
  // "B" has an "E" and viewers do not warn about unterminated slices.
  for (auto& [tid, stack] : open_slices) {
    while (!stack.empty()) {
      const auto& [name, began] = stack.back();
      w.emit(strformat("{\"name\":\"%s\",\"cat\":\"truncated\",\"ph\":\"E\",\"ts\":%llu,"
                       "\"pid\":1,\"tid\":%d}",
                       name, static_cast<unsigned long long>(last_ts < began ? began : last_ts),
                       tid));
      stack.pop_back();
    }
  }

  out += strformat(
      "\n],\n\"metadata\": {\"app\":\"%s\",\"clock\":\"simulated-cycles\","
      "\"retained_events\":%llu,\"dropped_events\":%llu}\n}\n",
      json_escape(app.name()).c_str(), static_cast<unsigned long long>(events.size()),
      static_cast<unsigned long long>(trace.dropped()));
  return out;
}

Status write_chrome_trace(const std::string& path, const TraceCollector& trace,
                          pedf::Application& app, const ChromeTraceOptions& options) {
  std::string json = export_chrome_trace(trace, app, options);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::error("cannot write trace: " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return Status{};
}

}  // namespace dfdbg::trace

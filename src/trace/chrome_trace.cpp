#include "dfdbg/trace/chrome_trace.hpp"

#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strformat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

/// Deterministic actor-path -> thread-id assignment, in first-seen order.
class TidTable {
 public:
  int tid_of(const std::string& track) {
    auto it = tids_.find(track);
    if (it != tids_.end()) return it->second;
    int tid = next_++;
    tids_.emplace(track, tid);
    order_.push_back(track);
    return tid;
  }
  [[nodiscard]] const std::vector<std::string>& tracks() const { return order_; }
  [[nodiscard]] int lookup(const std::string& track) const { return tids_.at(track); }

 private:
  std::map<std::string, int> tids_;
  std::vector<std::string> order_;
  int next_ = 1;  // tid 0 is reserved for process metadata
};

struct EventWriter {
  std::string& out;
  bool first = true;

  void emit(const std::string& json) {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
    out += json;
  }
};

/// One push/pop pair matched by provenance id across the journal window.
struct FlowPair {
  std::uint64_t uid = 0;
  std::uint64_t push_ts = 0;
  std::uint64_t pop_ts = 0;
  std::uint32_t src_actor = UINT32_MAX;  ///< journal name ids
  std::uint32_t dst_actor = UINT32_MAX;
  std::uint32_t link = UINT32_MAX;
};

/// Matches every retained push (or debugger injection) to its retained pop.
/// A bounded ring can evict the push of a retained pop — such pops emit no
/// arrow, which is exactly what the viewer can render anyway.
std::vector<FlowPair> collect_flow_pairs(const obs::Journal& j) {
  std::vector<FlowPair> pairs;
  std::unordered_map<std::uint64_t, std::size_t> pending;  // uid -> journal index
  for (std::size_t i = 0; i < j.size(); ++i) {
    const obs::JournalEvent& ev = j.at(i);
    if (ev.kind == obs::JournalKind::kTokenPush || ev.kind == obs::JournalKind::kTokenInject) {
      if (ev.token != 0) pending[ev.token] = i;
    } else if (ev.kind == obs::JournalKind::kTokenPop) {
      auto it = pending.find(ev.token);
      if (it == pending.end()) continue;
      const obs::JournalEvent& push = j.at(it->second);
      pairs.push_back(FlowPair{ev.token, push.time, ev.time, push.actor, ev.actor, ev.link});
      pending.erase(it);
    }
  }
  return pairs;
}

/// Emits one "s"/"f" arrow per pair; binding is (cat, name, id), so the
/// provenance id alone ties the two halves together.
void emit_flow_pairs(const std::vector<FlowPair>& pairs, const obs::Journal& j, TidTable& tids,
                     EventWriter& w) {
  for (const FlowPair& p : pairs) {
    int src_tid = tids.tid_of(j.name(p.src_actor));
    int dst_tid = tids.tid_of(j.name(p.dst_actor));
    w.emit(strformat("{\"name\":\"token\",\"cat\":\"dataflow\",\"ph\":\"s\",\"id\":%llu,"
                     "\"ts\":%llu,\"pid\":1,\"tid\":%d}",
                     static_cast<unsigned long long>(p.uid),
                     static_cast<unsigned long long>(p.push_ts), src_tid));
    w.emit(strformat("{\"name\":\"token\",\"cat\":\"dataflow\",\"ph\":\"f\",\"bp\":\"e\","
                     "\"id\":%llu,\"ts\":%llu,\"pid\":1,\"tid\":%d}",
                     static_cast<unsigned long long>(p.uid),
                     static_cast<unsigned long long>(p.pop_ts), dst_tid));
  }
}

}  // namespace

std::string export_chrome_trace(const TraceCollector& trace, pedf::Application& app,
                                const ChromeTraceOptions& options) {
  const auto& events = trace.events();
  const obs::Journal* journal = options.flow_events ? options.journal : nullptr;
  std::vector<FlowPair> pairs;
  if (journal != nullptr) pairs = collect_flow_pairs(*journal);

  TidTable tids;
  // Pass 1: discover every track so thread metadata leads the event stream
  // (Perfetto applies thread names only to already-declared tracks).
  for (std::size_t i = 0; i < events.size(); ++i) tids.tid_of(events.at(i).actor);
  for (const FlowPair& p : pairs) {
    tids.tid_of(journal->name(p.src_actor));
    tids.tid_of(journal->name(p.dst_actor));
  }

  std::string out = "{\n\"traceEvents\": [\n";
  EventWriter w{out};

  w.emit(strformat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                   "\"args\":{\"name\":\"%s\"}}",
                   json_escape(options.process_name).c_str()));
  for (const std::string& track : tids.tracks()) {
    w.emit(strformat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"args\":{\"name\":\"%s\"}}",
                     tids.lookup(track), json_escape(track).c_str()));
  }

  // Per-track open-slice depth: orphan "E"s (begin evicted from the ring)
  // are dropped, dangling "B"s are closed at the end of the window.
  std::map<int, std::vector<std::pair<const char*, sim::SimTime>>> open_slices;
  std::map<std::uint32_t, std::int64_t> occupancy;  // link id -> tokens (window-relative)
  sim::SimTime last_ts = 0;

  auto link_label = [&app](std::uint32_t link_id) {
    pedf::Link* l = app.link_by_id(pedf::LinkId(link_id));
    return l != nullptr ? l->name() : strformat("link#%u", link_id);
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events.at(i);
    int tid = tids.lookup(ev.actor);
    if (ev.time > last_ts) last_ts = ev.time;
    auto ts = static_cast<unsigned long long>(ev.time);
    switch (ev.kind) {
      case TraceKind::kWorkEnter:
        w.emit(strformat("{\"name\":\"WORK\",\"cat\":\"work\",\"ph\":\"B\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"args\":{\"firing\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        open_slices[tid].emplace_back("WORK", ev.time);
        break;
      case TraceKind::kWorkExit:
        if (open_slices[tid].empty()) break;  // begin fell out of the window
        open_slices[tid].pop_back();
        w.emit(strformat(
            "{\"name\":\"WORK\",\"cat\":\"work\",\"ph\":\"E\",\"ts\":%llu,\"pid\":1,"
            "\"tid\":%d}",
            ts, tid));
        break;
      case TraceKind::kStepBegin:
        w.emit(strformat("{\"name\":\"STEP\",\"cat\":\"step\",\"ph\":\"B\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"args\":{\"step\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        open_slices[tid].emplace_back("STEP", ev.time);
        break;
      case TraceKind::kStepEnd:
        if (open_slices[tid].empty()) break;
        open_slices[tid].pop_back();
        w.emit(strformat(
            "{\"name\":\"STEP\",\"cat\":\"step\",\"ph\":\"E\",\"ts\":%llu,\"pid\":1,"
            "\"tid\":%d}",
            ts, tid));
        break;
      case TraceKind::kActorStart:
        if (!options.schedule_instants) break;
        w.emit(strformat("{\"name\":\"ACTOR_START\",\"cat\":\"sched\",\"ph\":\"i\","
                         "\"ts\":%llu,\"pid\":1,\"tid\":%d,\"s\":\"t\","
                         "\"args\":{\"step\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        break;
      case TraceKind::kPush:
      case TraceKind::kPop: {
        if (!options.link_counters || ev.link == UINT32_MAX) break;
        std::int64_t& occ = occupancy[ev.link];
        occ += ev.kind == TraceKind::kPush ? 1 : -1;
        // A window that opens mid-stream can see pops of tokens pushed
        // before the window; clamp the *displayed* level at zero.
        std::int64_t shown = occ < 0 ? 0 : occ;
        w.emit(strformat("{\"name\":\"occ:%s\",\"cat\":\"link\",\"ph\":\"C\",\"ts\":%llu,"
                         "\"pid\":1,\"args\":{\"tokens\":%lld}}",
                         json_escape(link_label(ev.link)).c_str(), ts,
                         static_cast<long long>(shown)));
        break;
      }
    }
  }

  // Close dangling begins (simulation stopped mid-WORK / mid-step) so every
  // "B" has an "E" and viewers do not warn about unterminated slices.
  for (auto& [tid, stack] : open_slices) {
    while (!stack.empty()) {
      const auto& [name, began] = stack.back();
      w.emit(strformat("{\"name\":\"%s\",\"cat\":\"truncated\",\"ph\":\"E\",\"ts\":%llu,"
                       "\"pid\":1,\"tid\":%d}",
                       name, static_cast<unsigned long long>(last_ts < began ? began : last_ts),
                       tid));
      stack.pop_back();
    }
  }

  if (journal != nullptr) emit_flow_pairs(pairs, *journal, tids, w);

  out += strformat(
      "\n],\n\"metadata\": {\"app\":\"%s\",\"clock\":\"simulated-cycles\","
      "\"retained_events\":%llu,\"dropped_events\":%llu,\"flow_pairs\":%llu}\n}\n",
      json_escape(app.name()).c_str(), static_cast<unsigned long long>(events.size()),
      static_cast<unsigned long long>(trace.dropped()),
      static_cast<unsigned long long>(pairs.size()));
  return out;
}

std::string export_journal_chrome_trace(const obs::Journal& journal, pedf::Application& app,
                                        const ChromeTraceOptions& options) {
  std::vector<FlowPair> pairs;
  if (options.flow_events) pairs = collect_flow_pairs(journal);

  TidTable tids;
  // Pass 1: tracks in first-seen order, flow endpoints included.
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const obs::JournalEvent& ev = journal.at(i);
    if (ev.actor != UINT32_MAX) tids.tid_of(journal.name(ev.actor));
  }
  for (const FlowPair& p : pairs) {
    tids.tid_of(journal.name(p.src_actor));
    tids.tid_of(journal.name(p.dst_actor));
  }

  std::string out = "{\n\"traceEvents\": [\n";
  EventWriter w{out};

  w.emit(strformat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                   "\"args\":{\"name\":\"%s\"}}",
                   json_escape(options.process_name).c_str()));
  for (const std::string& track : tids.tracks()) {
    w.emit(strformat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"args\":{\"name\":\"%s\"}}",
                     tids.lookup(track), json_escape(track).c_str()));
  }

  auto link_label = [&app](std::uint32_t link_id) {
    pedf::Link* l = app.link_by_id(pedf::LinkId(link_id));
    return l != nullptr ? l->name() : strformat("link#%u", link_id);
  };

  std::map<int, std::vector<std::pair<const char*, std::uint64_t>>> open_slices;
  std::map<std::uint32_t, std::int64_t> occupancy;
  std::uint64_t last_ts = 0;

  for (std::size_t i = 0; i < journal.size(); ++i) {
    const obs::JournalEvent& ev = journal.at(i);
    int tid = ev.actor != UINT32_MAX ? tids.lookup(journal.name(ev.actor)) : 0;
    if (ev.time > last_ts) last_ts = ev.time;
    auto ts = static_cast<unsigned long long>(ev.time);
    switch (ev.kind) {
      case obs::JournalKind::kFireBegin:
        w.emit(strformat("{\"name\":\"WORK\",\"cat\":\"work\",\"ph\":\"B\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"args\":{\"firing\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.firing)));
        open_slices[tid].emplace_back("WORK", ev.time);
        break;
      case obs::JournalKind::kFireEnd:
        if (open_slices[tid].empty()) break;  // begin fell out of the ring
        open_slices[tid].pop_back();
        w.emit(strformat(
            "{\"name\":\"WORK\",\"cat\":\"work\",\"ph\":\"E\",\"ts\":%llu,\"pid\":1,"
            "\"tid\":%d}",
            ts, tid));
        break;
      case obs::JournalKind::kTokenPush:
      case obs::JournalKind::kTokenInject:
      case obs::JournalKind::kTokenPop: {
        if (!options.link_counters || ev.link == UINT32_MAX) break;
        std::int64_t& occ = occupancy[ev.link];
        occ += ev.kind == obs::JournalKind::kTokenPop ? -1 : 1;
        std::int64_t shown = occ < 0 ? 0 : occ;  // ring may open mid-stream
        w.emit(strformat("{\"name\":\"occ:%s\",\"cat\":\"link\",\"ph\":\"C\",\"ts\":%llu,"
                         "\"pid\":1,\"args\":{\"tokens\":%lld}}",
                         json_escape(link_label(ev.link)).c_str(), ts,
                         static_cast<long long>(shown)));
        break;
      }
      case obs::JournalKind::kDispatch:
        if (!options.dispatch_instants) break;
        w.emit(strformat("{\"name\":\"DISPATCH\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"activation\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        break;
      case obs::JournalKind::kCatchpoint:
        w.emit(strformat("{\"name\":\"CATCHPOINT\",\"cat\":\"debug\",\"ph\":\"i\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"s\":\"p\",\"args\":{\"bp\":%llu}}",
                         ts, tid, static_cast<unsigned long long>(ev.index)));
        break;
      case obs::JournalKind::kTokenRemove:
      case obs::JournalKind::kTokenReplace:
        w.emit(strformat("{\"name\":\"%s\",\"cat\":\"alter\",\"ph\":\"i\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"token\":%llu}}",
                         ev.kind == obs::JournalKind::kTokenRemove ? "REMOVE" : "REPLACE", ts,
                         tid, static_cast<unsigned long long>(ev.token)));
        break;
    }
  }

  for (auto& [tid, stack] : open_slices) {
    while (!stack.empty()) {
      const auto& [name, began] = stack.back();
      w.emit(strformat("{\"name\":\"%s\",\"cat\":\"truncated\",\"ph\":\"E\",\"ts\":%llu,"
                       "\"pid\":1,\"tid\":%d}",
                       name, static_cast<unsigned long long>(last_ts < began ? began : last_ts),
                       tid));
      stack.pop_back();
    }
  }

  emit_flow_pairs(pairs, journal, tids, w);

  out += strformat(
      "\n],\n\"metadata\": {\"app\":\"%s\",\"clock\":\"simulated-cycles\","
      "\"retained_events\":%llu,\"dropped_events\":%llu,\"flow_pairs\":%llu}\n}\n",
      json_escape(app.name()).c_str(), static_cast<unsigned long long>(journal.size()),
      static_cast<unsigned long long>(journal.dropped()),
      static_cast<unsigned long long>(pairs.size()));
  return out;
}

std::string export_shard_chrome_trace(const sim::Kernel& kernel,
                                      const ChromeTraceOptions& options) {
  const std::deque<sim::BarrierRoundRecord>& rounds = kernel.round_records();
  const int workers =
      rounds.empty() ? kernel.partition_count() : static_cast<int>(rounds.front().partitions.size());

  std::string out = "{\n\"traceEvents\": [\n";
  EventWriter w{out};
  w.emit(strformat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                   "\"args\":{\"name\":\"%s\"}}",
                   json_escape(options.process_name).c_str()));
  // One named track per worker (tid i+1), plus the coordinator's barrier
  // track after them — fixed ids, so the layout is stable run to run.
  for (int i = 0; i < workers; ++i) {
    w.emit(strformat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"args\":{\"name\":\"worker %d\"}}",
                     i + 1, i));
  }
  const int barrier_tid = workers + 1;
  w.emit(strformat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                   "\"args\":{\"name\":\"barrier\"}}",
                   barrier_tid));

  // Synthetic timeline: rounds laid end-to-end by measured wall time (idle
  // gaps elided). Nanoseconds go straight into the format's microsecond
  // field; durations read as measured ns.
  std::uint64_t t = 0;
  for (const sim::BarrierRoundRecord& r : rounds) {
    const std::uint64_t span = r.wall_ns - r.drain_ns;  // workers' portion
    for (std::size_t i = 0; i < r.partitions.size(); ++i) {
      const auto& p = r.partitions[i];
      const int tid = static_cast<int>(i) + 1;
      w.emit(strformat("{\"name\":\"ROUND\",\"cat\":\"shard\",\"ph\":\"B\",\"ts\":%llu,"
                       "\"pid\":1,\"tid\":%d,\"args\":{\"round\":%llu,\"dispatches\":%llu,"
                       "\"wait_ns\":%llu}}",
                       static_cast<unsigned long long>(t), tid,
                       static_cast<unsigned long long>(r.round),
                       static_cast<unsigned long long>(p.dispatches),
                       static_cast<unsigned long long>(p.wait_ns)));
      w.emit(strformat("{\"name\":\"ROUND\",\"cat\":\"shard\",\"ph\":\"E\",\"ts\":%llu,"
                       "\"pid\":1,\"tid\":%d}",
                       static_cast<unsigned long long>(t + p.work_ns), tid));
      if (p.stalled) {
        w.emit(strformat("{\"name\":\"STALL\",\"cat\":\"shard\",\"ph\":\"i\",\"ts\":%llu,"
                         "\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"round\":%llu}}",
                         static_cast<unsigned long long>(t), tid,
                         static_cast<unsigned long long>(r.round)));
      }
    }
    w.emit(strformat("{\"name\":\"BARRIER\",\"cat\":\"shard\",\"ph\":\"B\",\"ts\":%llu,"
                     "\"pid\":1,\"tid\":%d,\"args\":{\"round\":%llu,\"vtime\":%llu,"
                     "\"boundary_hwm\":%llu}}",
                     static_cast<unsigned long long>(t + span), barrier_tid,
                     static_cast<unsigned long long>(r.round),
                     static_cast<unsigned long long>(r.vtime),
                     static_cast<unsigned long long>(r.boundary_hwm)));
    w.emit(strformat("{\"name\":\"BARRIER\",\"cat\":\"shard\",\"ph\":\"E\",\"ts\":%llu,"
                     "\"pid\":1,\"tid\":%d}",
                     static_cast<unsigned long long>(t + r.wall_ns), barrier_tid));
    t += r.wall_ns;
  }

  out += strformat(
      "\n],\n\"metadata\": {\"clock\":\"wall-ns\",\"workers\":%d,\"rounds\":%llu}\n}\n",
      workers, static_cast<unsigned long long>(rounds.size()));
  return out;
}

Status write_shard_chrome_trace(const std::string& path, const sim::Kernel& kernel,
                                const ChromeTraceOptions& options) {
  std::string json = export_shard_chrome_trace(kernel, options);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::error("cannot write trace: " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return Status{};
}

Status write_journal_chrome_trace(const std::string& path, const obs::Journal& journal,
                                  pedf::Application& app, const ChromeTraceOptions& options) {
  std::string json = export_journal_chrome_trace(journal, app, options);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::error("cannot write trace: " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return Status{};
}

Status write_chrome_trace(const std::string& path, const TraceCollector& trace,
                          pedf::Application& app, const ChromeTraceOptions& options) {
  std::string json = export_chrome_trace(trace, app, options);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::error("cannot write trace: " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return Status{};
}

}  // namespace dfdbg::trace

// Chrome trace-event JSON export of a TraceCollector window.
//
// The bespoke ring buffer + SVG renderer keep the trace trapped in this
// repository; exporting the same window in the Trace Event Format makes it
// loadable by Perfetto (https://ui.perfetto.dev) and chrome://tracing — the
// mature offline tools the paper's §VI-F contrasts interactive debugging
// with. Mapping:
//
//   WORK enter/exit  -> "B"/"E" duration slices, one thread track per actor
//   step begin/end   -> "B"/"E" slices on the owning module's track
//   ACTOR_START      -> "i" instant events on the scheduled filter's track
//   push/pop         -> "C" counter series per link (occupancy over time)
//   journal pairs    -> "s"/"f" flow arrows from a token's push (producer
//                       track) to its pop (consumer track), bound by the
//                       token's provenance id
//
// Timestamps are simulated cycles emitted in the format's microsecond field:
// 1 cycle renders as 1 us. Durations therefore read directly in cycles.
//
// Robustness: a bounded ring may have evicted the "B" matching a retained
// "E" (or retain a "B" whose "E" never happened because the simulation
// stopped mid-WORK). Orphan exits are dropped and dangling begins are closed
// at the window's end, so the emitted JSON always nests correctly.
#pragma once

#include <string>

#include "dfdbg/common/status.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg::obs {
class Journal;
}

namespace dfdbg::sim {
class Kernel;
}

namespace dfdbg::trace {

/// Export options.
struct ChromeTraceOptions {
  bool link_counters = true;    ///< emit per-link occupancy "C" series
  bool schedule_instants = true;  ///< emit ACTOR_START instant events
  bool flow_events = true;      ///< emit "s"/"f" token flow arrows (needs journal)
  bool dispatch_instants = false;  ///< emit scheduler-dispatch instants (journal export)
  std::string process_name = "dataflow-dbg";
  /// Flight recorder supplying push/pop provenance pairs for flow arrows
  /// (and the event stream of export_journal_chrome_trace). Not owned.
  const obs::Journal* journal = nullptr;
};

/// Renders the retained trace window as one Trace Event Format JSON object:
/// {"traceEvents":[...],"metadata":{...}}. If `options.journal` is set,
/// matched push/pop pairs become flow arrows overlaid on the actor tracks.
[[nodiscard]] std::string export_chrome_trace(const TraceCollector& trace,
                                              pedf::Application& app,
                                              const ChromeTraceOptions& options = {});

/// export_chrome_trace + write to `path`.
Status write_chrome_trace(const std::string& path, const TraceCollector& trace,
                          pedf::Application& app, const ChromeTraceOptions& options = {});

/// Renders the flight recorder alone (no TraceCollector needed): fire
/// begin/end become WORK slices, push/pop become occupancy counters plus
/// flow arrows, catchpoints and debugger alterations become instants.
[[nodiscard]] std::string export_journal_chrome_trace(const obs::Journal& journal,
                                                      pedf::Application& app,
                                                      const ChromeTraceOptions& options = {});

/// export_journal_chrome_trace + write to `path`.
Status write_journal_chrome_trace(const std::string& path, const obs::Journal& journal,
                                  pedf::Application& app,
                                  const ChromeTraceOptions& options = {});

/// Renders the parallel backend's shard time-attribution ring
/// (Kernel::round_records()) as one named track per worker — barrier-round
/// "B"/"E" slices sized by each worker's measured work, "STALL" instants on
/// rounds a worker woke with nothing to run — plus a "barrier" track carrying
/// the coordinator's drain slices. The timeline is synthetic (rounds laid
/// end-to-end by wall time; idle gaps elided): slice *structure* is
/// deterministic, timestamps are measurement. Empty ring -> metadata-only
/// trace.
[[nodiscard]] std::string export_shard_chrome_trace(const sim::Kernel& kernel,
                                                    const ChromeTraceOptions& options = {});

/// export_shard_chrome_trace + write to `path`.
Status write_shard_chrome_trace(const std::string& path, const sim::Kernel& kernel,
                                const ChromeTraceOptions& options = {});

}  // namespace dfdbg::trace

// Offline tracing: the non-interactive alternative the paper contrasts
// interactive debugging with ("trace tools", §I and §VI-F).
//
// A TraceCollector hooks the same framework API symbols as the debugger but
// only appends records to a bounded buffer; analysis happens after the run.
// It doubles as the measurement substrate for the bug-localization
// comparison (QL1): with traces, finding a fault means scanning events.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dfdbg/common/ring_buffer.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::trace {

/// Kind of one trace record.
enum class TraceKind : std::uint8_t {
  kPush,
  kPop,
  kWorkEnter,
  kWorkExit,
  kActorStart,
  kStepBegin,
  kStepEnd,
};

const char* to_string(TraceKind k);

/// One trace record.
struct TraceEvent {
  sim::SimTime time = 0;
  TraceKind kind = TraceKind::kPush;
  std::string actor;      ///< actor path
  std::uint32_t link = UINT32_MAX;
  std::uint64_t index = 0;  ///< push/pop index or step number
  std::string payload;      ///< rendered value (pushes only)
  // Parallel-backend provenance: the partition that recorded the event and
  // its per-partition sequence number. Each worker's stream is deterministic
  // for a fixed partition map; only the interleaving in the ring is not.
  // to_csv() sorts by (time, shard, seq) to recover a run-stable order —
  // the identity permutation on sequential backends (shard -1, seq global).
  int shard = -1;
  std::uint64_t seq = 0;
};

/// Aggregated per-link statistics computed while tracing.
struct LinkStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::size_t max_occupancy = 0;
};

/// Event collector over the framework instrumentation port.
class TraceCollector {
 public:
  /// `capacity` bounds the retained event window (oldest evicted).
  /// `record_payloads` controls whether push values are rendered (costly).
  TraceCollector(pedf::Application& app, std::size_t capacity, bool record_payloads = false);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Installs the hooks (enables the port).
  void attach();
  /// Removes the hooks.
  void detach();
  [[nodiscard]] bool attached() const { return attached_; }

  [[nodiscard]] const RingBuffer<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t total_events() const { return events_.total_pushed(); }
  /// Records silently evicted from the bounded ring (oldest-first).
  [[nodiscard]] std::uint64_t dropped() const { return events_.total_pushed() - events_.size(); }
  /// Event counts by TraceKind over the *retained* window.
  [[nodiscard]] std::map<TraceKind, std::uint64_t> counts_by_kind() const;
  /// Human-readable summary (the CLI `trace stats` command): per-kind counts,
  /// capacity, and the dropped-record count that a bounded ring otherwise
  /// hides.
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] const std::map<std::uint32_t, LinkStats>& link_stats() const { return stats_; }
  [[nodiscard]] std::uint64_t firings(const std::string& actor_path) const;

  /// CSV dump of the retained window: time,kind,actor,link,index,payload.
  [[nodiscard]] std::string to_csv() const;

  /// Offline analysis: link with the highest observed occupancy (stall
  /// suspect), or UINT32_MAX when no data.
  [[nodiscard]] std::uint32_t busiest_link() const;

 private:
  /// Stamps shard + per-shard sequence onto `ev` and appends it. Safe under
  /// the parallel backend: hooks run holding the port's dispatch mutex.
  void push_event(TraceEvent ev);

  pedf::Application& app_;
  RingBuffer<TraceEvent> events_;
  bool record_payloads_;
  bool attached_ = false;
  std::vector<sim::HookId> hooks_;
  std::map<std::uint32_t, LinkStats> stats_;
  std::map<std::string, std::uint64_t> firings_;
  std::map<int, std::uint64_t> shard_seq_;  ///< next seq per recording shard
};

}  // namespace dfdbg::trace

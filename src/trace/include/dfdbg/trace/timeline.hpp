// Execution-timeline visualization (paper §VIII future work: "how
// visualization can help developers to better understand the details of the
// execution").
//
// Renders a self-contained SVG from a TraceCollector: one Gantt row per
// actor (WORK activity rectangles over simulated time, colored per module)
// plus occupancy step-curves for the busiest links — the picture that makes
// rate mismatches and stalls obvious at a glance.
#pragma once

#include <string>

#include "dfdbg/trace/trace.hpp"

namespace dfdbg::trace {

/// Rendering options.
struct TimelineOptions {
  int width_px = 1000;        ///< drawing width for the time axis
  int row_height_px = 18;     ///< per actor row
  int occupancy_rows = 3;     ///< how many busiest links get a curve (0 = none)
  bool include_host_io = false;
};

/// Renders the trace as an SVG document. `app` provides actor metadata
/// (kind, module) for labelling and coloring. Events outside the retained
/// trace window are simply absent from the picture.
std::string render_timeline_svg(const TraceCollector& trace, pedf::Application& app,
                                const TimelineOptions& options = {});

}  // namespace dfdbg::trace

#include "dfdbg/trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::trace {

namespace {

/// A WORK activity interval of one actor.
struct Interval {
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
};

/// Deterministic pastel color per module name.
std::string module_color(const std::string& module) {
  static const char* kPalette[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
                                   "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};
  std::size_t h = std::hash<std::string>{}(module);
  return kPalette[h % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '<') out += "&lt;";
    else if (c == '>') out += "&gt;";
    else if (c == '&') out += "&amp;";
    else out += c;
  }
  return out;
}

}  // namespace

std::string render_timeline_svg(const TraceCollector& trace, pedf::Application& app,
                                const TimelineOptions& options) {
  // Collect WORK intervals per actor path and occupancy curves per link.
  std::map<std::string, std::vector<Interval>> intervals;
  std::map<std::string, sim::SimTime> open;
  std::map<std::uint32_t, std::vector<std::pair<sim::SimTime, long>>> occ_delta;
  sim::SimTime t_min = UINT64_MAX, t_max = 0;

  const auto& events = trace.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events.at(i);
    t_min = std::min(t_min, e.time);
    t_max = std::max(t_max, e.time);
    switch (e.kind) {
      case TraceKind::kWorkEnter:
        open[e.actor] = e.time;
        break;
      case TraceKind::kWorkExit: {
        auto it = open.find(e.actor);
        sim::SimTime begin = it != open.end() ? it->second : e.time;
        if (it != open.end()) open.erase(it);
        intervals[e.actor].push_back(Interval{begin, e.time});
        break;
      }
      case TraceKind::kPush:
        occ_delta[e.link].push_back({e.time, +1});
        break;
      case TraceKind::kPop:
        occ_delta[e.link].push_back({e.time, -1});
        break;
      default:
        break;
    }
  }
  // Close still-open intervals at the end of the window.
  for (auto& [actor, begin] : open) intervals[actor].push_back(Interval{begin, t_max});
  if (t_min == UINT64_MAX) {
    t_min = 0;
    t_max = 1;
  }
  if (t_max == t_min) t_max = t_min + 1;

  // Row order: application actor order (stable & grouped by module).
  std::vector<const pedf::Actor*> rows;
  for (const pedf::Actor* a : app.actors()) {
    if (a->kind() == pedf::ActorKind::kModule) continue;
    if (!options.include_host_io && a->kind() == pedf::ActorKind::kHostIo) continue;
    rows.push_back(a);
  }

  // Busiest links for occupancy curves.
  std::vector<std::pair<std::size_t, std::uint32_t>> busiest;  // (max occ, link)
  for (auto& [link, deltas] : occ_delta) {
    std::sort(deltas.begin(), deltas.end());
    long cur = 0;
    std::size_t peak = 0;
    for (auto& [t, d] : deltas) {
      cur += d;
      peak = std::max<std::size_t>(peak, static_cast<std::size_t>(std::max(cur, 0L)));
    }
    busiest.push_back({peak, link});
  }
  std::sort(busiest.rbegin(), busiest.rend());
  if (static_cast<int>(busiest.size()) > options.occupancy_rows)
    busiest.resize(static_cast<std::size_t>(options.occupancy_rows));

  const int label_w = 170;
  const int rh = options.row_height_px;
  const int occ_h = 48;
  const int axis_h = 24;
  int height = axis_h + static_cast<int>(rows.size()) * rh +
               static_cast<int>(busiest.size()) * occ_h + 8;
  int width = label_w + options.width_px + 10;
  auto x_of = [&](sim::SimTime t) {
    return label_w + static_cast<double>(t - t_min) / static_cast<double>(t_max - t_min) *
                         options.width_px;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
      << height << "\" font-family=\"monospace\" font-size=\"11\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Time axis with 8 ticks.
  svg << "<g fill=\"#444\">\n";
  for (int k = 0; k <= 8; ++k) {
    sim::SimTime t = t_min + (t_max - t_min) * static_cast<sim::SimTime>(k) / 8;
    double x = x_of(t);
    svg << strformat("<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ccc\"/>\n",
                     x, axis_h, x, height - 4);
    svg << strformat("<text x=\"%.1f\" y=\"14\">%llu</text>\n", x,
                     static_cast<unsigned long long>(t));
  }
  svg << "</g>\n";

  // Actor rows.
  int y = axis_h;
  for (const pedf::Actor* a : rows) {
    std::string module = a->parent() != nullptr ? a->parent()->name() : "host";
    svg << strformat("<text x=\"4\" y=\"%d\" fill=\"#222\">%s</text>\n", y + rh - 5,
                     escape(a->name()).c_str());
    auto it = intervals.find(a->path());
    if (it != intervals.end()) {
      for (const Interval& iv : it->second) {
        double x0 = x_of(iv.begin);
        double x1 = std::max(x_of(iv.end), x0 + 1.0);
        svg << strformat(
            "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" "
            "stroke=\"#666\" stroke-width=\"0.4\"/>\n",
            x0, y + 2, x1 - x0, rh - 4, module_color(module).c_str());
      }
    }
    y += rh;
  }

  // Occupancy curves of the busiest links.
  for (auto& [peak, link] : busiest) {
    pedf::Link* l = app.link_by_id(pedf::LinkId(link));
    std::string name = l != nullptr ? l->name() : strformat("link %u", link);
    svg << strformat("<text x=\"4\" y=\"%d\" fill=\"#222\">occ: %s</text>\n", y + 12,
                     escape(name.substr(0, 24)).c_str());
    const auto& deltas = occ_delta[link];
    long cur = 0;
    std::ostringstream path;
    double last_x = x_of(t_min);
    double base = y + occ_h - 6;
    double scale = peak > 0 ? (occ_h - 14.0) / static_cast<double>(peak) : 1.0;
    path << strformat("M %.1f %.1f ", last_x, base);
    for (auto& [t, d] : deltas) {
      double x = x_of(t);
      path << strformat("L %.1f %.1f ", x, base - static_cast<double>(cur) * scale);
      cur += d;
      path << strformat("L %.1f %.1f ", x, base - static_cast<double>(cur) * scale);
    }
    path << strformat("L %.1f %.1f", x_of(t_max), base - static_cast<double>(cur) * scale);
    svg << "<path d=\"" << path.str()
        << "\" fill=\"none\" stroke=\"#d62728\" stroke-width=\"1.2\"/>\n";
    svg << strformat("<text x=\"%d\" y=\"%d\" fill=\"#d62728\">peak %zu</text>\n",
                     width - 70, y + 12, peak);
    y += occ_h;
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace dfdbg::trace

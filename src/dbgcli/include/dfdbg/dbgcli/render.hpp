// Transcript-text renderers for the structured inspection views
// (dfdbg/debug/views.hpp). Each render_text() emits exactly the bytes the
// old string-returning Session queries produced — the CLI golden tests pin
// that — so the CLI is now a thin presentation layer over the typed API,
// parallel to the JSON layer (views.hpp to_json) the debug server speaks.
#pragma once

#include <string>

#include "dfdbg/common/status.hpp"
#include "dfdbg/debug/views.hpp"

namespace dfdbg::cli {

[[nodiscard]] std::string render_text(const dbg::LinkView& v);
[[nodiscard]] std::string render_text(const dbg::FilterView& v);
[[nodiscard]] std::string render_text(const dbg::SchedView& v);
[[nodiscard]] std::string render_text(const dbg::TokenView& v);
[[nodiscard]] std::string render_text(const dbg::WhenceChain& v);
[[nodiscard]] std::string render_text(const dbg::LinkTokensView& v);
[[nodiscard]] std::string render_text(const dbg::ProfileSnapshot& v);
[[nodiscard]] std::string render_text(const dbg::ShardProfileView& v);

/// The legacy inline-error body of a failed query: "<" + message + ">".
[[nodiscard]] std::string render_error(const Status& s);

/// render_text(*r) on success, render_error(status) on failure — the exact
/// byte contract of the retired string-query Session methods.
template <typename V>
[[nodiscard]] std::string render_or_error(const Result<V>& r) {
  return r.ok() ? render_text(*r) : render_error(r.status());
}

}  // namespace dfdbg::cli

// GDB-style command-line front end over the dataflow debugging Session.
//
// Implements the command surface used in the paper's transcripts:
//
//   (gdb) filter pipe catch work
//   (gdb) filter ipred catch Pipe_in=1, Hwcfg_in=1
//   (gdb) filter ipred catch *in=1
//   (gdb) step_both
//   (gdb) iface hwcfg::pipe_MbType_out record
//   (gdb) iface hwcfg::pipe_MbType_out print
//   (gdb) filter red configure splitter
//   (gdb) filter pipe info last_token
//   (gdb) filter print last_token
//   (gdb) print $1
//   (gdb) list / break / watch / continue / graph / info ...
//
// Entity names (filters, interfaces) auto-complete from the reconstructed
// graph (paper Contribution #1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::trace {
class TraceCollector;
}

namespace dfdbg::cli {

/// Output sink. The default implementation buffers everything (tests read it
/// back); set `echo` to also write to stdout for interactive use.
class Console {
 public:
  explicit Console(bool echo = false) : echo_(echo) {}

  /// Prints one line (newline appended).
  void println(const std::string& line);
  /// Prints a possibly multi-line blob verbatim.
  void print(const std::string& text);

  /// Returns and clears everything printed since the last take().
  std::string take();
  [[nodiscard]] const std::string& buffered() const { return buf_; }

 private:
  bool echo_;
  std::string buf_;
};

/// The command interpreter.
class Interpreter {
 public:
  /// Constructing an interpreter also enables the process-wide metrics
  /// registry (dfdbg/obs): an interactive session is exactly the situation
  /// where `stats` / `profile export` self-profiling pays for itself.
  explicit Interpreter(dbg::Session& session, bool echo = false);
  ~Interpreter();

  /// Executes one command line. Errors are printed to the console and also
  /// returned. Empty lines and `#` comments are no-ops.
  Status execute(const std::string& line);

  /// Executes lines in order; continues past errors (like a .gdbinit).
  /// Returns the number of failed commands.
  int run_script(const std::vector<std::string>& lines);

  /// Completion candidates for the final word of `partial` (commands,
  /// filters, interfaces — the paper's auto-completion contribution).
  [[nodiscard]] std::vector<std::string> complete(const std::string& partial) const;

  [[nodiscard]] Console& console() { return console_; }
  [[nodiscard]] dbg::Session& session() { return session_; }

  /// Successful state-creating commands so far (what `save` writes); used
  /// by the time-travel harness to replay a session deterministically.
  [[nodiscard]] const std::vector<std::string>& replayable() const { return replayable_; }

  /// Parses a token value for link type `type`: "5", "0x1f", or
  /// "Field=1,Other=0x2" for structs. Public and static: the debug server's
  /// structured inject/replace verbs parse values the same way the CLI does.
  static Result<pedf::Value> parse_value(const pedf::TypeDesc& type, const std::string& text);
  /// Parses a content condition over tokens of `type`: three words
  /// `<lhs> <op> <rhs>` where lhs is `value` (scalars) or a field name,
  /// op is ==, !=, <, <=, >, >= and rhs a number. Returns the predicate
  /// plus its normalized description.
  static Result<std::pair<std::function<bool(const pedf::Value&)>, std::string>> parse_condition(
      const pedf::TypeDesc& type, const std::vector<std::string>& words);

 private:
  Status cmd_run(const std::vector<std::string>& args, bool is_continue);
  Status cmd_filter(const std::vector<std::string>& args);
  Status cmd_iface(const std::vector<std::string>& args);
  Status cmd_step_both(const std::vector<std::string>& args);
  Status cmd_break(const std::vector<std::string>& args);
  Status cmd_watch(const std::vector<std::string>& args);
  Status cmd_list(const std::vector<std::string>& args);
  Status cmd_print(const std::vector<std::string>& args);
  Status cmd_graph(const std::vector<std::string>& args);
  Status cmd_info(const std::vector<std::string>& args);
  Status cmd_module(const std::vector<std::string>& args);
  Status cmd_tok(const std::vector<std::string>& args);
  Status cmd_delete(const std::vector<std::string>& args);
  Status cmd_enable(const std::vector<std::string>& args, bool enable);
  Status cmd_focus(const std::vector<std::string>& args);
  Status cmd_source(const std::vector<std::string>& args);
  Status cmd_save(const std::vector<std::string>& args);
  Status cmd_export(const std::vector<std::string>& args);
  Status cmd_stats(const std::vector<std::string>& args);
  Status cmd_trace(const std::vector<std::string>& args);
  Status cmd_profile(const std::vector<std::string>& args);
  Status cmd_journal(const std::vector<std::string>& args);
  Status cmd_whence(const std::vector<std::string>& args);
  static std::string help_text();

  void report_outcome(const dbg::RunOutcome& outcome);
  void flush_notes();
  /// Evaluates a print expression; stores the value in history ($N).
  Result<pedf::Value> eval(const std::string& expr) const;

  dbg::Session& session_;
  Console console_;
  /// Successful state-creating commands, replayable via `save`/`source`.
  std::vector<std::string> replayable_;
  /// Event collector behind `trace on/off/stats` and `profile export`.
  std::unique_ptr<trace::TraceCollector> trace_;
  /// `stats delta` baseline: registry values as of the previous delta.
  obs::StatsSnapshot stats_prev_;
  /// `journal tail` resume point (valid once journal_tailing_).
  std::uint64_t journal_cursor_ = 0;
  bool journal_tailing_ = false;
};

}  // namespace dfdbg::cli

// Deterministic time travel ("reverse-continue") by re-execution.
//
// The paper demands "total and precise control over the application
// execution" (§II); because our cooperative kernel is fully deterministic,
// a debugging session can be *replayed exactly*: rebuild the application,
// re-apply the recorded debugger setup, and run to the (k-1)-th stop — a
// reverse-continue without any checkpointing machinery. GDB needs hardware
// or record/replay support for this; a deterministic simulator gets it for
// free, which is itself a finding about the paper's platform.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"

namespace dfdbg::cli {

/// One rebuildable application instance. Wrap your application type (e.g.
/// h264::H264App) so the harness can recreate it from scratch.
class ReplayInstance {
 public:
  virtual ~ReplayInstance() = default;
  /// The PEDF application (must be elaborated, not yet started).
  virtual pedf::Application& app() = 0;
  /// Spawns the simulated processes (called once after the debugger attached).
  virtual void start() = 0;
};

/// Factory producing identical instances (same config/seed every call).
using ReplayFactory = std::function<std::unique_ptr<ReplayInstance>()>;

/// A debugging session with reverse execution.
class TimeTravelDebugger {
 public:
  explicit TimeTravelDebugger(ReplayFactory factory);
  ~TimeTravelDebugger();

  /// Current forward-execution session / interpreter.
  [[nodiscard]] dbg::Session& session() { return *session_; }
  [[nodiscard]] Interpreter& cli() { return *cli_; }

  /// Executes one CLI command (setup commands are recorded for replays).
  Status execute(const std::string& command);

  /// Continues to the next stop; returns it (or the terminal event).
  dbg::RunOutcome cont();

  /// Reverse-continue: travel back to the previous stop by deterministic
  /// re-execution. Errors when already at (or before) the first stop.
  Status reverse_continue();

  /// Travel to the n-th stop of the session (1-based).
  Status travel_to(std::size_t stop_index);

  /// Stops taken on the current timeline position.
  [[nodiscard]] std::size_t stop_count() const { return stops_taken_; }

 private:
  /// Rebuilds the world and replays the setup + `stops` continues.
  Status rebuild_and_run(std::size_t stops);

  ReplayFactory factory_;
  std::unique_ptr<ReplayInstance> instance_;
  std::unique_ptr<dbg::Session> session_;
  std::unique_ptr<Interpreter> cli_;
  std::vector<std::string> setup_;  ///< replayable command log
  std::size_t stops_taken_ = 0;
};

}  // namespace dfdbg::cli

// Text renderers over the structured views, plus the deprecated
// string-returning Session query shims. The shims are member functions of
// dbg::Session declared in dfdbg/debug/session.hpp but defined HERE, in the
// CLI library: rendering is a presentation concern, and placing the
// definitions in dfdbg::cli means a target calling a deprecated query
// without linking the CLI gets a link error nudging it to the *_view API.
// Every in-tree consumer already links dfdbg::cli.
#include "dfdbg/dbgcli/render.hpp"

#include "dfdbg/common/strings.hpp"
#include "dfdbg/debug/session.hpp"

namespace dfdbg::cli {

using ull = unsigned long long;

std::string render_text(const dbg::LinkView& v) {
  std::string out;
  for (const dbg::LinkRow& l : v.links) {
    out += strformat("%-60s %6zu token(s)  pushes=%llu pops=%llu hwm=%zu [%s]\n", l.name.c_str(),
                     l.occupancy, static_cast<ull>(l.pushes), static_cast<ull>(l.pops),
                     l.high_watermark, l.transport.c_str());
  }
  return out;
}

std::string render_text(const dbg::FilterView& v) {
  std::string out = "filter `" + v.name + "' (" + v.path + ")\n";
  out += "  state:    " + v.state + "\n";
  out += strformat("  firings:  %llu\n", static_cast<ull>(v.firings));
  if (v.line > 0) out += strformat("  line:     %d\n", v.line);
  out += "  pe:       " + v.pe + "\n";
  out += "  behavior: " + v.behavior + "\n";
  if (v.has_blocked) {
    switch (v.blocked) {
      case dbg::FilterView::Blocked::kNone:
        out += "  blocked:  no\n";
        break;
      case dbg::FilterView::Blocked::kLinkEmpty:
        out += "  blocked:  waiting for data on `" + v.blocked_link + "'\n";
        break;
      case dbg::FilterView::Blocked::kLinkFull:
        out += "  blocked:  waiting for space on `" + v.blocked_link + "'\n";
        break;
      case dbg::FilterView::Blocked::kStart:
        out += "  blocked:  waiting to be scheduled\n";
        break;
      case dbg::FilterView::Blocked::kStep:
        out += "  blocked:  waiting for step completion\n";
        break;
    }
  }
  return out;
}

std::string render_text(const dbg::SchedView& v) {
  std::string out = strformat("module `%s' step %llu  [backend=%s workers=%d]\n",
                              v.module.c_str(), static_cast<ull>(v.step), v.backend.c_str(),
                              v.workers);
  for (const dbg::SchedRow& r : v.rows) {
    out += strformat("  %-16s %-14s firings=%llu\n", r.name.c_str(), r.state.c_str(),
                     static_cast<ull>(r.firings));
  }
  return out;
}

std::string render_text(const dbg::TokenView& v) {
  std::string out;
  int n = 1;
  for (const dbg::TokenHop& h : v.hops) {
    out += strformat("#%d %s", n++, h.desc.c_str());
    if (h.injected) out += "  (injected by debugger)";
    out += "\n";
  }
  return out;
}

std::string render_text(const dbg::WhenceChain& v) {
  std::string out =
      strformat("causal chain of slot %zu of `%s' (newest first):\n", v.slot, v.link.c_str());
  int n = 1;
  for (const dbg::TokenHop& h : v.hops) {
    out += strformat("#%d tok#%llu %s", n++, static_cast<ull>(h.uid), h.desc.c_str());
    if (h.injected) out += "  (injected by debugger)";
    out += strformat("  [pushed@t=%llu]", static_cast<ull>(h.pushed_at));
    out += "\n";
  }
  if (v.truncated) out += strformat("... (chain truncated at %zu hops)\n", v.depth);
  if (v.has_source) {
    out += "source: " + v.source_actor;
    if (v.source_injected) out += " (debugger injection)";
    out += "\n";
  }
  return out;
}

std::string render_text(const dbg::LinkTokensView& v) {
  if (v.tokens.empty()) return "link `" + v.link + "' is empty\n";
  std::string out = strformat("link `%s' holds %zu token(s):\n", v.link.c_str(), v.tokens.size());
  for (const dbg::LinkTokenRow& t : v.tokens) {
    if (t.pruned) {
      out += strformat("  #%zu <pruned>\n", t.slot);
    } else {
      out += strformat("  #%zu %s  (pushed at t=%llu%s)\n", t.slot, t.value.c_str(),
                       static_cast<ull>(t.pushed_at),
                       t.injected ? ", injected by debugger" : "");
    }
  }
  return out;
}

std::string render_text(const dbg::ProfileSnapshot& v) {
  std::string out = strformat("t=%llu cycles, %llu scheduler dispatches\n",
                              static_cast<ull>(v.now), static_cast<ull>(v.dispatches));
  out += strformat("%-22s %-10s %9s %14s %13s\n", "actor", "pe", "firings", "sim cycles",
                   "activations");
  for (const dbg::ProfileRow& r : v.rows) {
    out += strformat("%-22s %-10s %9llu %14llu %13llu\n", r.path.c_str(), r.pe.c_str(),
                     static_cast<ull>(r.firings), static_cast<ull>(r.cycles),
                     static_cast<ull>(r.activations));
  }
  return out;
}

std::string render_text(const dbg::ShardProfileView& v) {
  std::string out =
      strformat("backend=%s workers=%d rounds=%llu elided=%llu records=%llu hwm=%llu\n",
                v.backend.c_str(), v.workers, static_cast<ull>(v.rounds),
                static_cast<ull>(v.elided_rounds), static_cast<ull>(v.records),
                static_cast<ull>(v.boundary_hwm));
  if (v.rows.empty()) {
    out += "  (no shard attribution: parallel backend only)\n";
    return out;
  }
  out += strformat("%-8s %12s %8s %8s %8s %13s %13s %13s %13s %6s\n", "worker", "dispatches",
                   "stalls", "skips", "eager", "work ns", "wait ns", "drain ns", "idle ns",
                   "util");
  for (const dbg::ShardRow& r : v.rows) {
    out += strformat("%-8d %12llu %8llu %8llu %8llu %13llu %13llu %13llu %13llu %5.1f%%\n",
                     r.partition, static_cast<ull>(r.dispatches),
                     static_cast<ull>(r.stalled_rounds), static_cast<ull>(r.skipped_wakes),
                     static_cast<ull>(r.eager_drained), static_cast<ull>(r.work_ns),
                     static_cast<ull>(r.barrier_wait_ns), static_cast<ull>(r.drain_ns),
                     static_cast<ull>(r.idle_ns), r.utilization * 100.0);
  }
  return out;
}

std::string render_error(const Status& s) { return "<" + s.message() + ">"; }

}  // namespace dfdbg::cli

#include "dfdbg/dbgcli/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/export.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/trace/chrome_trace.hpp"
#include "dfdbg/trace/trace.hpp"

namespace dfdbg::cli {

using dbg::ActorBehavior;
using dbg::BpId;
using dbg::RecordPolicy;
using pedf::TypeDesc;
using pedf::Value;

void Console::println(const std::string& line) {
  buf_ += line;
  buf_ += '\n';
  if (echo_) std::fputs((line + "\n").c_str(), stdout);
}

void Console::print(const std::string& text) {
  buf_ += text;
  if (echo_) std::fputs(text.c_str(), stdout);
}

std::string Console::take() {
  std::string out = std::move(buf_);
  buf_.clear();
  return out;
}

Interpreter::Interpreter(dbg::Session& session, bool echo)
    : session_(session), console_(echo) {
  obs::set_enabled(true);
}

Interpreter::~Interpreter() = default;

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

Status Interpreter::execute(const std::string& line) {
  std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return Status{};
  // Normalize "a=1, b=2" comma-space lists before whitespace splitting.
  std::string norm(trimmed);
  for (std::size_t i = 0; i + 1 < norm.size(); ++i) {
    if (norm[i] == ',' && norm[i + 1] == ' ') norm.erase(i + 1, 1);
  }
  std::vector<std::string> words = split_ws(norm);
  const std::string& cmd = words[0];
  std::vector<std::string> args(words.begin() + 1, words.end());

  // Debugger self-profiling: per-command latency and per-command counts.
  auto& reg = obs::Registry::global();
  static obs::Histogram& cmd_ns = reg.histogram("cli.cmd_ns");
  static obs::Counter& cmd_count = reg.counter("cli.cmd");
  obs::ScopedTimer cmd_timer(cmd_ns);
  if (obs::enabled()) {
    cmd_count.add();
    reg.counter("cli.cmd." + cmd).add();
  }

  Status s;
  if (cmd == "run" || cmd == "r") s = cmd_run(args, /*is_continue=*/false);
  else if (cmd == "continue" || cmd == "c") s = cmd_run(args, /*is_continue=*/true);
  else if (cmd == "filter") s = cmd_filter(args);
  else if (cmd == "iface") s = cmd_iface(args);
  else if (cmd == "step_both") s = cmd_step_both(args);
  else if (cmd == "step" || cmd == "s") {
    s = session_.step_line();
    if (s.ok()) s = cmd_run({}, /*is_continue=*/true);
  }
  else if (cmd == "break" || cmd == "b") s = cmd_break(args);
  else if (cmd == "watch") s = cmd_watch(args);
  else if (cmd == "list" || cmd == "l") s = cmd_list(args);
  else if (cmd == "print" || cmd == "p") s = cmd_print(args);
  else if (cmd == "graph") s = cmd_graph(args);
  else if (cmd == "info") s = cmd_info(args);
  else if (cmd == "module") s = cmd_module(args);
  else if (cmd == "tok") s = cmd_tok(args);
  else if (cmd == "delete") s = cmd_delete(args);
  else if (cmd == "ignore") {
    if (args.size() < 2) s = Status::error(ErrCode::kInvalidArgument, "usage: ignore <bp-id> <count>");
    else s = session_.set_breakpoint_ignore(
             dbg::BpId(static_cast<std::uint32_t>(std::strtoul(args[0].c_str(), nullptr, 0))),
             std::strtoull(args[1].c_str(), nullptr, 0));
  }
  else if (cmd == "enable") s = cmd_enable(args, true);
  else if (cmd == "disable") s = cmd_enable(args, false);
  else if (cmd == "focus") s = cmd_focus(args);
  else if (cmd == "help" || cmd == "h") {
    console_.print(help_text());
  } else if (cmd == "source") {
    s = cmd_source(args);
  } else if (cmd == "save") {
    s = cmd_save(args);
  } else if (cmd == "export") {
    s = cmd_export(args);
  } else if (cmd == "stats") {
    s = cmd_stats(args);
  } else if (cmd == "trace") {
    s = cmd_trace(args);
  } else if (cmd == "profile") {
    s = cmd_profile(args);
  } else if (cmd == "journal") {
    s = cmd_journal(args);
  } else if (cmd == "whence") {
    s = cmd_whence(args);
  } else if (cmd == "unfocus") {
    session_.clear_selective_data_hooks();
    console_.println("[Data-exchange breakpoints restored on every interface]");
  } else {
    s = Status::error(ErrCode::kInvalidArgument, "unknown command: " + cmd);
  }
  if (!s.ok()) console_.println("error: " + s.message());
  // Remember successful commands that create replayable debugger state, so
  // `save` can write a .gdbinit-style script.
  if (s.ok()) {
    static const char* kReplayable[] = {"filter", "iface", "break", "watch", "module"};
    bool creates_state = false;
    for (const char* c : kReplayable)
      if (cmd == c) creates_state = true;
    // Pure queries do not belong in the script.
    if (creates_state && norm.find(" info") == std::string::npos &&
        norm.find(" print") == std::string::npos && !starts_with(norm, "filter print"))
      replayable_.push_back(norm);
  }
  return s;
}

int Interpreter::run_script(const std::vector<std::string>& lines) {
  int failures = 0;
  for (const std::string& line : lines) {
    if (!execute(line).ok()) failures++;
  }
  return failures;
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

void Interpreter::flush_notes() {
  for (const std::string& n : session_.take_notes()) console_.println(n);
}

void Interpreter::report_outcome(const dbg::RunOutcome& outcome) {
  flush_notes();
  for (const dbg::StopEvent& ev : outcome.stops) console_.println(ev.message);
}

Status Interpreter::cmd_run(const std::vector<std::string>& args, bool is_continue) {
  (void)is_continue;  // run and continue share semantics on a live kernel
  sim::SimTime until = sim::kMaxSimTime;
  if (!args.empty()) until = std::strtoull(args[0].c_str(), nullptr, 0);
  report_outcome(session_.run(until));
  return Status{};
}

Status Interpreter::cmd_filter(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: filter <name|print> ...");
  // `filter print last_token` — applies to the filter of the current stop.
  if (args[0] == "print") {
    if (args.size() < 2 || args[1] != "last_token")
      return Status::error(ErrCode::kInvalidArgument, "usage: filter print last_token");
    const std::string& cur = session_.current_actor();
    if (cur.empty()) return Status::error(ErrCode::kFailedPrecondition, "no current filter (execution never stopped)");
    const dbg::DToken* t = session_.last_token(cur);
    if (t == nullptr) return Status::error(ErrCode::kFailedPrecondition, "filter " + cur + " has no last token");
    int n = session_.store_value(t->value);
    console_.println(strformat("$%d = %s", n, t->value.to_string().c_str()));
    return Status{};
  }

  if (args.size() < 2) return Status::error(ErrCode::kInvalidArgument, "usage: filter <name> <catch|configure|info> ...");
  const std::string& name = args[0];
  const std::string& verb = args[1];

  if (verb == "catch") {
    if (args.size() < 3) return Status::error(ErrCode::kInvalidArgument, "usage: filter <name> catch <spec>");
    if (args[2] == "work") {
      auto id = session_.catch_work(name);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop when WORK of filter `%s' is triggered",
                                 id->value(), name.c_str()));
      return Status{};
    }
    if (args[2] == "schedule") {
      auto id = session_.break_on_schedule(name);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop when a controller schedules `%s'",
                                 id->value(), name.c_str()));
      return Status{};
    }
    // Content condition: `filter pipe catch <port> if <lhs> <op> <rhs>`.
    if (args.size() >= 4 && args[3] == "if") {
      std::string iface = name + "::" + args[2];
      const dbg::DLink* dl = session_.graph().link_by_iface(iface);
      if (dl == nullptr) return Status::error(ErrCode::kNotFound, "no link on interface: " + iface);
      pedf::Link* fl = session_.app().link_by_id(pedf::LinkId(dl->id));
      auto cond = parse_condition(fl->type(),
                                  std::vector<std::string>(args.begin() + 4, args.end()));
      if (!cond.ok()) return cond.status();
      auto id = session_.catch_token_content(iface, cond->first, cond->second);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop when a token on `%s' matches %s",
                                 id->value(), iface.c_str(), cond->second.c_str()));
      return Status{};
    }
    // Token-count spec: "Pipe_in=1,Hwcfg_in=1" or "*in=1", or a bare
    // interface name meaning stop on every reception.
    std::string spec;
    for (std::size_t i = 2; i < args.size(); ++i) spec += args[i];
    if (spec.find('=') == std::string::npos) {
      auto id = session_.break_on_receive(name + "::" + spec);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop after receiving on `%s::%s'",
                                 id->value(), name.c_str(), spec.c_str()));
      return Status{};
    }
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    bool all_inputs = false;
    std::uint64_t all_count = 0;
    for (const std::string& part : split(spec, ',')) {
      if (part.empty()) continue;
      auto eq = part.find('=');
      if (eq == std::string::npos) return Status::error(ErrCode::kInvalidArgument, "malformed catch condition: " + part);
      std::string port = part.substr(0, eq);
      std::uint64_t n = std::strtoull(part.c_str() + eq + 1, nullptr, 0);
      if (port == "*in") {
        all_inputs = true;
        all_count = n;
      } else {
        counts.emplace_back(port, n);
      }
    }
    Result<BpId> id = all_inputs ? session_.catch_all_inputs(name, all_count)
                                 : session_.catch_tokens(name, std::move(counts));
    if (!id.ok()) return id.status();
    console_.println(strformat("Catchpoint %u: filter `%s' catch %s", id->value(), name.c_str(),
                               spec.c_str()));
    return Status{};
  }

  if (verb == "configure") {
    if (args.size() < 3) return Status::error(ErrCode::kInvalidArgument, "usage: filter <name> configure <behavior>");
    ActorBehavior b;
    if (args[2] == "splitter") b = ActorBehavior::kSplitter;
    else if (args[2] == "pipeline") b = ActorBehavior::kPipeline;
    else if (args[2] == "merger") b = ActorBehavior::kMerger;
    else return Status::error(ErrCode::kInvalidArgument, "unknown behavior: " + args[2]);
    if (Status s = session_.configure_behavior(name, b); !s.ok()) return s;
    console_.println("Filter `" + name + "' configured as " + args[2]);
    return Status{};
  }

  if (verb == "info") {
    if (args.size() >= 3 && args[2] == "last_token") {
      auto v = session_.last_token_view(name);
      console_.print(v.ok() ? render_text(*v) : render_error(v.status()));
      return Status{};
    }
    auto v = session_.filter_view(name);
    console_.print(v.ok() ? render_text(*v) : render_error(v.status()));
    return Status{};
  }

  return Status::error(ErrCode::kInvalidArgument, "unknown filter verb: " + verb);
}

Status Interpreter::cmd_iface(const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::error(ErrCode::kInvalidArgument, "usage: iface <actor::port> <record|print|catch>");
  const std::string& iface = args[0];
  const std::string& verb = args[1];
  if (verb == "record") {
    RecordPolicy policy = RecordPolicy::kUnbounded;
    std::size_t bound = 256;
    if (args.size() >= 3 && args[2] == "bounded") {
      policy = RecordPolicy::kBounded;
      if (args.size() >= 4) bound = std::strtoull(args[3].c_str(), nullptr, 0);
    }
    if (Status s = session_.record_iface(iface, policy, bound); !s.ok()) return s;
    console_.println("Recording tokens on `" + iface + "'");
    return Status{};
  }
  if (verb == "print") {
    console_.print(session_.print_recorded(iface));
    return Status{};
  }
  if (verb == "tokens") {
    auto v = session_.link_tokens_view(iface);
    console_.print(v.ok() ? render_text(*v) : render_error(v.status()));
    return Status{};
  }
  if (verb == "catch") {
    if (args.size() >= 4 && args[2] == "occupancy") {
      std::size_t threshold = std::strtoull(args[3].c_str(), nullptr, 0);
      auto id = session_.break_on_occupancy(iface, threshold);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop when `%s' holds >= %zu tokens",
                                 id->value(), iface.c_str(), threshold));
      return Status{};
    }
    if (args.size() >= 4 && args[2] == "from") {
      auto id = session_.catch_token_from(iface, args[3]);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop when `%s' receives a token derived "
                                 "from `%s'",
                                 id->value(), iface.c_str(), args[3].c_str()));
      return Status{};
    }
    if (args.size() >= 3 && args[2] == "if") {
      const dbg::DLink* dl = session_.graph().link_by_iface(iface);
      if (dl == nullptr) return Status::error(ErrCode::kNotFound, "no link on interface: " + iface);
      pedf::Link* fl = session_.app().link_by_id(pedf::LinkId(dl->id));
      auto cond = parse_condition(fl->type(),
                                  std::vector<std::string>(args.begin() + 3, args.end()));
      if (!cond.ok()) return cond.status();
      auto id = session_.catch_token_content(iface, cond->first, cond->second);
      if (!id.ok()) return id.status();
      console_.println(strformat("Catchpoint %u: stop when a token on `%s' matches %s",
                                 id->value(), iface.c_str(), cond->second.c_str()));
      return Status{};
    }
    const dbg::DConnection* c = session_.graph().connection_by_iface(iface);
    if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
    auto id = c->is_input ? session_.break_on_receive(iface) : session_.break_on_send(iface);
    if (!id.ok()) return id.status();
    console_.println(strformat("Catchpoint %u on interface `%s'", id->value(), iface.c_str()));
    return Status{};
  }
  return Status::error(ErrCode::kInvalidArgument, "unknown iface verb: " + verb);
}

Status Interpreter::cmd_step_both(const std::vector<std::string>& args) {
  Status s = args.empty() ? session_.step_both() : session_.step_both_iface(args[0]);
  if (!s.ok()) return s;
  flush_notes();
  return Status{};
}

Status Interpreter::cmd_break(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: break <filter>:<line>");
  auto colon = args[0].find(':');
  if (colon == std::string::npos) return Status::error(ErrCode::kInvalidArgument, "usage: break <filter>:<line>");
  std::string filter = args[0].substr(0, colon);
  int line = std::atoi(args[0].c_str() + colon + 1);
  auto id = session_.break_source_line(filter, line);
  if (!id.ok()) return id.status();
  console_.println(strformat("Breakpoint %u at %s:%d", id->value(), filter.c_str(), line));
  return Status{};
}

Status Interpreter::cmd_watch(const std::vector<std::string>& args) {
  if (args.size() < 3) return Status::error(ErrCode::kInvalidArgument, "usage: watch <filter> <data|attribute> <name>");
  auto id = session_.watch_variable(args[0], args[1], args[2]);
  if (!id.ok()) return id.status();
  console_.println(strformat("Watchpoint %u: %s.%s.%s", id->value(), args[0].c_str(),
                             args[1].c_str(), args[2].c_str()));
  return Status{};
}

Status Interpreter::cmd_list(const std::vector<std::string>& args) {
  if (args.empty()) {
    const std::string& cur = session_.current_actor();
    if (cur.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: list <filter> [line]");
    console_.print(session_.list_source(cur));
    return Status{};
  }
  int line = args.size() >= 2 ? std::atoi(args[1].c_str()) : 0;
  console_.print(session_.list_source(args[0], line));
  return Status{};
}

Status Interpreter::cmd_print(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: print <expr>");
  std::string expr = join(args, " ");
  auto v = eval(expr);
  if (!v.ok()) return v.status();
  int n = session_.store_value(*v);
  console_.println(strformat("$%d = %s", n, v->to_string().c_str()));
  return Status{};
}

Status Interpreter::cmd_graph(const std::vector<std::string>& args) {
  bool with_tokens = std::find(args.begin(), args.end(), "tokens") != args.end();
  std::string dot = session_.graph().to_dot(with_tokens);
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == ">") {
      FILE* f = std::fopen(args[i + 1].c_str(), "w");
      if (f == nullptr) return Status::error(ErrCode::kIo, "cannot open " + args[i + 1]);
      std::fputs(dot.c_str(), f);
      std::fclose(f);
      console_.println("Graph written to " + args[i + 1]);
      return Status{};
    }
  }
  console_.print(dot);
  return Status{};
}

Status Interpreter::cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: info <links|breakpoints|sched|actors|tokens|profile|shards|flow>");
  if (args[0] == "links") {
    console_.print(render_text(session_.links_view()));
    return Status{};
  }
  if (args[0] == "breakpoints") {
    for (const auto& bp : session_.breakpoints()) {
      console_.println(strformat("%-4u %-8s %-5s hits=%llu  %s", bp.id.value(),
                                 bp.temporary ? "temp" : "keep", bp.enabled ? "y" : "n",
                                 static_cast<unsigned long long>(bp.hits),
                                 bp.description.c_str()));
    }
    return Status{};
  }
  if (args[0] == "sched") {
    if (args.size() < 2) return Status::error(ErrCode::kInvalidArgument, "usage: info sched <module>");
    auto v = session_.sched_view(args[1]);
    console_.print(v.ok() ? render_text(*v) : render_error(v.status()));
    return Status{};
  }
  if (args[0] == "actors") {
    for (const dbg::DActor& a : session_.graph().actors()) {
      console_.println(strformat("%-20s %-12s pe=%-8s %s", a.path.c_str(),
                                 dbg::to_string(a.kind), a.pe.c_str(), to_string(a.sched)));
    }
    return Status{};
  }
  if (args[0] == "profile") {
    console_.print(render_text(session_.profile_snapshot()));
    return Status{};
  }
  if (args[0] == "shards") {
    console_.print(render_text(session_.shard_profile()));
    return Status{};
  }
  if (args[0] == "tokens") {
    console_.println(strformat(
        "tokens: retained=%zu observed=%llu memory=%zu bytes",
        session_.graph().token_count(),
        static_cast<unsigned long long>(session_.graph().tokens_observed()),
        session_.graph().token_memory_bytes()));
    return Status{};
  }
  if (args[0] == "flow") {
    // Per-link token-flow view: live occupancy from the framework, plus the
    // push/pop traffic the flight recorder still retains for that link.
    const obs::Journal& j = obs::Journal::global();
    std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> window;  // pushes, pops
    for (std::size_t i = 0; i < j.size(); ++i) {
      const obs::JournalEvent& ev = j.at(i);
      if (ev.kind == obs::JournalKind::kTokenPush ||
          ev.kind == obs::JournalKind::kTokenInject)
        window[ev.link].first++;
      else if (ev.kind == obs::JournalKind::kTokenPop)
        window[ev.link].second++;
    }
    console_.println(strformat("%-60s %8s %14s %12s", "link", "tokens", "window pushes",
                               "window pops"));
    for (const auto& l : session_.app().links()) {
      auto it = window.find(l->id().value());
      std::uint64_t wp = it != window.end() ? it->second.first : 0;
      std::uint64_t wo = it != window.end() ? it->second.second : 0;
      console_.println(strformat("%-60s %8zu %14llu %12llu", l->name().c_str(), l->occupancy(),
                                 static_cast<unsigned long long>(wp),
                                 static_cast<unsigned long long>(wo)));
    }
    console_.print(j.summary());
    return Status{};
  }
  return Status::error(ErrCode::kInvalidArgument, "unknown info topic: " + args[0]);
}

Status Interpreter::cmd_module(const std::vector<std::string>& args) {
  if (args.size() < 3 || args[1] != "break")
    return Status::error(ErrCode::kInvalidArgument, "usage: module <name> break <step_begin|step_end|predicate <p>>");
  if (args[2] == "predicate") {
    if (args.size() < 4) return Status::error(ErrCode::kInvalidArgument, "usage: module <name> break predicate <name>");
    auto id = session_.break_on_predicate(args[0], args[3]);
    if (!id.ok()) return id.status();
    console_.println(strformat("Breakpoint %u on predicate `%s' of module `%s'", id->value(),
                               args[3].c_str(), args[0].c_str()));
    return Status{};
  }
  bool at_end = args[2] == "step_end";
  if (!at_end && args[2] != "step_begin")
    return Status::error(ErrCode::kInvalidArgument, "usage: module <name> break <step_begin|step_end|predicate <p>>");
  auto id = session_.break_on_step(args[0], at_end);
  if (!id.ok()) return id.status();
  console_.println(strformat("Breakpoint %u at %s of module `%s'", id->value(), args[2].c_str(),
                             args[0].c_str()));
  return Status{};
}

Status Interpreter::cmd_tok(const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::error(ErrCode::kInvalidArgument, "usage: tok <insert|del|set> <iface> ...");
  const std::string& verb = args[0];
  const std::string& iface = args[1];
  const dbg::DLink* dl = session_.graph().link_by_iface(iface);
  if (dl == nullptr) return Status::error(ErrCode::kNotFound, "no link on interface: " + iface);
  pedf::Link* fl = session_.app().link_by_id(pedf::LinkId(dl->id));

  if (verb == "insert") {
    if (args.size() < 3) return Status::error(ErrCode::kInvalidArgument, "usage: tok insert <iface> <value>");
    auto v = parse_value(fl->type(), args[2]);
    if (!v.ok()) return v.status();
    if (Status s = session_.inject_token(iface, std::move(*v)); !s.ok()) return s;
    console_.println("Token inserted on `" + iface + "'");
    return Status{};
  }
  if (verb == "del") {
    if (args.size() < 3) return Status::error(ErrCode::kInvalidArgument, "usage: tok del <iface> <idx>");
    std::size_t idx = std::strtoull(args[2].c_str(), nullptr, 0);
    if (Status s = session_.remove_token(iface, idx); !s.ok()) return s;
    console_.println(strformat("Token %zu deleted from `%s'", idx, iface.c_str()));
    return Status{};
  }
  if (verb == "set") {
    if (args.size() < 4) return Status::error(ErrCode::kInvalidArgument, "usage: tok set <iface> <idx> <value>");
    std::size_t idx = std::strtoull(args[2].c_str(), nullptr, 0);
    auto v = parse_value(fl->type(), args[3]);
    if (!v.ok()) return v.status();
    if (Status s = session_.replace_token(iface, idx, std::move(*v)); !s.ok()) return s;
    console_.println(strformat("Token %zu of `%s' modified", idx, iface.c_str()));
    return Status{};
  }
  return Status::error(ErrCode::kInvalidArgument, "unknown tok verb: " + verb);
}

Status Interpreter::cmd_delete(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: delete <bp-id>");
  return session_.delete_breakpoint(
      BpId(static_cast<std::uint32_t>(std::strtoul(args[0].c_str(), nullptr, 0))));
}

Status Interpreter::cmd_enable(const std::vector<std::string>& args, bool enable) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: enable|disable <bp-id|data-exchange>");
  if (args[0] == "data-exchange") {
    session_.set_data_exchange_hooks(enable);
    console_.println(std::string("[Data-exchange breakpoints ") +
                     (enable ? "enabled]" : "disabled]"));
    return Status{};
  }
  return session_.set_breakpoint_enabled(
      BpId(static_cast<std::uint32_t>(std::strtoul(args[0].c_str(), nullptr, 0))), enable);
}

Status Interpreter::cmd_focus(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: focus <iface> [iface...]");
  if (Status s = session_.use_selective_data_hooks(args); !s.ok()) return s;
  console_.println(strformat(
      "[Framework cooperation: data-exchange breakpoints restricted to %zu interface(s)]",
      args.size()));
  return Status{};
}

Status Interpreter::cmd_source(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: source <script-file>");
  FILE* f = std::fopen(args[0].c_str(), "r");
  if (f == nullptr) return Status::error(ErrCode::kIo, "cannot open script: " + args[0]);
  std::vector<std::string> lines;
  char buf[1024];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
    lines.push_back(std::move(line));
  }
  std::fclose(f);
  int failures = run_script(lines);
  if (failures > 0)
    return Status::error(strformat("%d command(s) in %s failed", failures, args[0].c_str()));
  return Status{};
}

Status Interpreter::cmd_save(const std::vector<std::string>& args) {
  if (args.empty()) return Status::error(ErrCode::kInvalidArgument, "usage: save <script-file>");
  FILE* f = std::fopen(args[0].c_str(), "w");
  if (f == nullptr) return Status::error(ErrCode::kIo, "cannot write script: " + args[0]);
  std::fputs("# dataflow-dbg session script (replay with `source`)\n", f);
  for (const std::string& line : replayable_) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  console_.println(strformat("Saved %zu command(s) to %s", replayable_.size(),
                             args[0].c_str()));
  return Status{};
}

Status Interpreter::cmd_export(const std::vector<std::string>& args) {
  std::string json = dbg::export_state_json(session_);
  if (args.empty()) {
    console_.print(json);
    return Status{};
  }
  FILE* f = std::fopen(args[0].c_str(), "w");
  if (f == nullptr) return Status::error(ErrCode::kIo, "cannot write: " + args[0]);
  std::fputs(json.c_str(), f);
  std::fclose(f);
  console_.println(strformat("State exported to %s (%zu bytes)", args[0].c_str(), json.size()));
  return Status{};
}

Status Interpreter::cmd_stats(const std::vector<std::string>& args) {
  auto& reg = obs::Registry::global();
  if (args.empty()) {
    console_.print(reg.to_text());
    return Status{};
  }
  if (args[0] == "reset") {
    reg.reset();
    console_.println("[All metric instruments reset to zero]");
    return Status{};
  }
  if (args[0] == "json") {
    console_.print(reg.to_json());
    console_.print("\n");
    return Status{};
  }
  if (args[0] == "delta") {
    // Changed keys since the previous `stats delta` (the first call prints
    // the whole registry) — the CLI's view of the server's stats.delta push
    // stream, backed by the same snapshot API.
    std::size_t changed = 0;
    console_.print(reg.snapshot_delta(stats_prev_, &changed));
    console_.print("\n");
    console_.println(strformat("[%zu instrument(s) changed]", changed));
    return Status{};
  }
  if (args[0] == "prom") {
    console_.print(reg.to_prometheus());
    return Status{};
  }
  return Status::error(ErrCode::kInvalidArgument, "usage: stats [reset|json|delta|prom]");
}

Status Interpreter::cmd_trace(const std::vector<std::string>& args) {
  if (args.empty())
    return Status::error(ErrCode::kInvalidArgument,
                         "usage: trace on [capacity] | off | stats | shards <file>");
  if (args[0] == "on") {
    if (trace_ != nullptr && trace_->attached())
      return Status::error(ErrCode::kFailedPrecondition, "trace collector already attached");
    std::size_t capacity = 65536;
    if (args.size() > 1) {
      capacity = std::strtoull(args[1].c_str(), nullptr, 0);
      if (capacity == 0) return Status::error(ErrCode::kInvalidArgument, "malformed capacity: " + args[1]);
    }
    // `trace on` after `trace off` starts a fresh window: the old collector
    // (still readable via `trace stats` / `profile export`) is replaced.
    trace_ = std::make_unique<trace::TraceCollector>(session_.app(), capacity);
    trace_->attach();
    console_.println(strformat("[Trace collector attached, window capacity %zu]", capacity));
    return Status{};
  }
  if (args[0] == "off") {
    if (trace_ == nullptr || !trace_->attached())
      return Status::error(ErrCode::kFailedPrecondition, "no trace collector attached");
    trace_->detach();
    console_.println(strformat(
        "[Trace collector detached; %zu event(s) retained — `profile export` to save]",
        trace_->events().size()));
    return Status{};
  }
  if (args[0] == "stats") {
    if (trace_ == nullptr) return Status::error(ErrCode::kFailedPrecondition, "no trace collector — `trace on` first");
    console_.print(trace_->summary());
    return Status{};
  }
  if (args[0] == "shards") {
    // Shard time-attribution export reads the kernel's round ring directly;
    // no TraceCollector needed (it only fills under the parallel backend
    // with metrics enabled — see docs/OBSERVABILITY.md "Shard profile").
    if (args.size() != 2)
      return Status::error(ErrCode::kInvalidArgument, "usage: trace shards <file>");
    const sim::Kernel& k = session_.app().kernel();
    Status s = trace::write_shard_chrome_trace(args[1], k);
    if (!s.ok()) return s;
    console_.println(strformat("[Shard trace written to %s: %d worker track(s), %zu round(s)]",
                               args[1].c_str(), k.partition_count(),
                               k.round_records().size()));
    return Status{};
  }
  return Status::error(ErrCode::kInvalidArgument,
                       "usage: trace on [capacity] | off | stats | shards <file>");
}

Status Interpreter::cmd_profile(const std::vector<std::string>& args) {
  if (args.size() < 2 || args[0] != "export")
    return Status::error(ErrCode::kInvalidArgument, "usage: profile export <file.json>");
  if (trace_ == nullptr)
    return Status::error(ErrCode::kFailedPrecondition, "no trace collector — `trace on`, run, then export");
  trace::ChromeTraceOptions options;
  options.journal = &obs::Journal::global();  // overlay token flow arrows
  Status s = trace::write_chrome_trace(args[1], *trace_, session_.app(), options);
  if (!s.ok()) return s;
  console_.println(strformat(
      "Exported %zu event(s) to %s (load in https://ui.perfetto.dev or chrome://tracing)",
      trace_->events().size(), args[1].c_str()));
  return Status{};
}

Status Interpreter::cmd_journal(const std::vector<std::string>& args) {
  obs::Journal& j = obs::Journal::global();
  if (args.empty()) {
    console_.print(j.summary());
    return Status{};
  }
  if (args[0] == "last") {
    std::size_t n = 20;
    if (args.size() > 1) {
      n = std::strtoull(args[1].c_str(), nullptr, 0);
      if (n == 0) return Status::error(ErrCode::kInvalidArgument, "malformed count: " + args[1]);
    }
    console_.print(j.format_last(n, [this](std::uint32_t link) {
      pedf::Link* l = session_.app().link_by_id(pedf::LinkId(link));
      return l != nullptr ? l->name() : strformat("link#%u", link);
    }));
    return Status{};
  }
  if (args[0] == "dump") {
    if (args.size() < 2) return Status::error(ErrCode::kInvalidArgument, "usage: journal dump <file.json> [--json]");
    // `--json` writes the raw event window through the shared encoder
    // instead of the Chrome-trace flow-event projection.
    bool raw_json = std::find(args.begin() + 2, args.end(), "--json") != args.end();
    if (raw_json) {
      JsonWriter w;
      j.write_json(w, [this](std::uint32_t link) {
        pedf::Link* l = session_.app().link_by_id(pedf::LinkId(link));
        return l != nullptr ? l->name() : strformat("link#%u", link);
      });
      FILE* f = std::fopen(args[1].c_str(), "w");
      if (f == nullptr) return Status::error(ErrCode::kIo, "cannot write: " + args[1]);
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      console_.println(strformat("Journal exported to %s: %zu raw event(s), %llu dropped",
                                 args[1].c_str(), j.size(),
                                 static_cast<unsigned long long>(j.dropped())));
      return Status{};
    }
    trace::ChromeTraceOptions options;
    options.dispatch_instants = true;
    Status s = trace::write_journal_chrome_trace(args[1], j, session_.app(), options);
    if (!s.ok()) return s;
    console_.println(strformat(
        "Journal exported to %s: %zu event(s), %llu dropped (Perfetto flow arrows included)",
        args[1].c_str(), j.size(), static_cast<unsigned long long>(j.dropped())));
    return Status{};
  }
  if (args[0] == "capacity") {
    if (args.size() < 2) return Status::error(ErrCode::kInvalidArgument, "usage: journal capacity <events>");
    std::size_t cap = std::strtoull(args[1].c_str(), nullptr, 0);
    if (cap == 0) return Status::error(ErrCode::kInvalidArgument, "malformed capacity: " + args[1]);
    j.set_capacity(cap);
    console_.println(strformat("[Journal capacity set to %zu event(s); window cleared]", cap));
    return Status{};
  }
  if (args[0] == "on" || args[0] == "off") {
    j.set_recording(args[0] == "on");
    console_.println(std::string("[Journal recording ") +
                     (j.recording() ? "enabled]" : "disabled]"));
    return Status{};
  }
  if (args[0] == "clear") {
    j.clear();
    console_.println("[Journal cleared]");
    return Status{};
  }
  if (args[0] == "tail") {
    // Cursor-based resumable read: `journal tail` continues from the last
    // tail (from "now" on first use); `journal tail <cursor>` resumes an
    // explicit position (0 = oldest retained, reporting what was lost).
    if (args.size() > 1) {
      char* end = nullptr;
      journal_cursor_ = std::strtoull(args[1].c_str(), &end, 0);
      if (end == args[1].c_str())
        return Status::error(ErrCode::kInvalidArgument, "malformed cursor: " + args[1]);
    } else if (!journal_tailing_) {
      journal_cursor_ = j.cursor();
    }
    journal_tailing_ = true;
    auto namer = [this](std::uint32_t link) {
      pedf::Link* l = session_.app().link_by_id(pedf::LinkId(link));
      return l != nullptr ? l->name() : strformat("link#%u", link);
    };
    obs::Journal::Slice s =
        j.read_from(journal_cursor_, SIZE_MAX,
                    [&](const obs::JournalEvent& ev) { console_.println(j.format_event(ev, namer)); });
    if (s.gap > 0)
      console_.println(strformat("[gap: %llu event(s) evicted before the cursor]",
                                 static_cast<unsigned long long>(s.gap)));
    journal_cursor_ = s.next;
    console_.println(strformat("[%zu event(s); next cursor %llu]", s.count,
                               static_cast<unsigned long long>(s.next)));
    return Status{};
  }
  return Status::error(ErrCode::kInvalidArgument,
                       "usage: journal [last N | tail [cursor] | dump <file> | capacity N | on | off | clear]");
}

Status Interpreter::cmd_whence(const std::vector<std::string>& args_in) {
  // `--json` switches to the wire encoding (the same serializer the debug
  // server uses); it may appear anywhere on the line.
  std::vector<std::string> args;
  bool json = false;
  for (const std::string& a : args_in) {
    if (a == "--json") json = true;
    else args.push_back(a);
  }
  if (args.empty())
    return Status::error(ErrCode::kInvalidArgument, "usage: whence <actor::port> <slot> [depth] [--json]");
  std::size_t slot = args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 0) : 0;
  std::size_t depth = args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 0) : 8;
  if (depth == 0) return Status::error(ErrCode::kInvalidArgument, "depth must be >= 1");
  auto v = session_.whence_chain(args[0], slot, depth);
  if (json) {
    if (!v.ok()) return v.status();
    JsonWriter w;
    dbg::to_json(w, *v);
    console_.println(w.take());
    return Status{};
  }
  console_.print(v.ok() ? render_text(*v) : render_error(v.status()));
  return Status{};
}

std::string Interpreter::help_text() {
  return
      "Dataflow debugging commands (paper syntax):\n"
      "  run / continue [until]            start or resume the execution\n"
      "  filter <f> catch work             stop when <f>'s WORK method fires\n"
      "  filter <f> catch A=1,B=2          stop after the given token counts\n"
      "  filter <f> catch *in=N            same condition on every input\n"
      "  filter <f> catch <port>           stop on every reception on <port>\n"
      "  filter <f> catch schedule         stop when a controller schedules <f>\n"
      "  filter <f> configure splitter|pipeline|merger   provenance behaviour\n"
      "  filter <f> info [last_token]      actor state / token provenance chain\n"
      "  filter print last_token           $N = payload of the last token\n"
      "  iface <a::p> record [bounded N]   record token contents\n"
      "  iface <a::p> print                dump the recording\n"
      "  iface <a::p> tokens               tokens currently in flight\n"
      "  step                              stop at the next source line\n"
      "  iface <a::p> catch [occupancy N | from <actor> | if <f> <op> <n>]\n"
      "  filter <f> catch <port> if <field|value> <op> <n>   content condition\n"
      "  step_both [out-iface]             temp breakpoints at both link ends\n"
      "  module <m> break step_begin|step_end|predicate <p>\n"
      "  break <f>:<line> / watch <f> data|attribute <name>   two-level debugging\n"
      "  list [<f> [line]] / print <expr>  source listing, $N / <f>.data.<x> eval\n"
      "  tok insert|del|set <iface> ...    alter the token flow (while stopped)\n"
      "  graph [tokens] [> file]           reconstructed graph as DOT\n"
      "  info links|breakpoints|sched <m>|actors|tokens|profile|shards\n"
      "  ignore <bp> <count>               skip the next <count> triggers\n"
      "  enable|disable <bp|data-exchange> breakpoint control (option 1)\n"
      "  focus <iface...> / unfocus        framework cooperation (option 2)\n"
      "  save <file> / source <script>     persist & replay the session setup\n"
      "  export [file]                     session state as JSON (for UIs)\n"
      "  stats [reset|json|delta|prom]     debugger self-metrics (obs registry)\n"
      "  trace on [capacity] | off | stats offline event collection window\n"
      "  trace shards <file>               shard attribution as Perfetto JSON\n"
      "  profile export <file.json>        trace window as Chrome/Perfetto JSON\n"
      "  journal [last N|tail [cur]|dump <f> [--json]|capacity N|on|off|clear]  flight recorder\n"
      "  whence <a::p> <slot> [depth] [--json]   causal chain of a queued token\n"
      "  info flow                         live occupancy + journal window per link\n"
      "  delete <bp> / help\n";
}

// ---------------------------------------------------------------------------
// Values & expressions
// ---------------------------------------------------------------------------

Result<Value> Interpreter::parse_value(const TypeDesc& type, const std::string& text) {
  if (!type.is_struct()) {
    char* end = nullptr;
    std::uint64_t bits = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str()) return Status::error(ErrCode::kInvalidArgument, "malformed scalar value: " + text);
    Value v = Value::zero_of(type);
    v.set_scalar_u64(bits);
    return v;
  }
  Value v = Value::make_struct(type.struct_type());
  for (const std::string& part : split(text, ',')) {
    if (part.empty()) continue;
    auto eq = part.find('=');
    if (eq == std::string::npos)
      return Status::error(ErrCode::kInvalidArgument, "malformed struct field assignment: " + part);
    std::string field = part.substr(0, eq);
    if (type.struct_type()->field_index(field) < 0)
      return Status::error(ErrCode::kNotFound, "struct " + type.name() + " has no field '" + field + "'");
    v.set_field(field, std::strtoull(part.c_str() + eq + 1, nullptr, 0));
  }
  return v;
}

Result<std::pair<std::function<bool(const Value&)>, std::string>> Interpreter::parse_condition(
    const TypeDesc& type, const std::vector<std::string>& words) {
  if (words.size() != 3)
    return Status::error(ErrCode::kInvalidArgument, "condition must be `<value|field> <op> <number>`");
  const std::string& lhs = words[0];
  const std::string& op = words[1];
  char* end = nullptr;
  std::uint64_t rhs = std::strtoull(words[2].c_str(), &end, 0);
  if (end == words[2].c_str()) return Status::error(ErrCode::kInvalidArgument, "malformed number: " + words[2]);

  int field_index = -1;
  if (lhs == "value") {
    if (type.is_struct())
      return Status::error(ErrCode::kInvalidArgument, "tokens of type " + type.name() + " need a field name, not `value`");
  } else {
    if (!type.is_struct())
      return Status::error(ErrCode::kInvalidArgument, "scalar tokens are addressed as `value`, not `" + lhs + "`");
    field_index = type.struct_type()->field_index(lhs);
    if (field_index < 0)
      return Status::error(ErrCode::kNotFound, "struct " + type.name() + " has no field '" + lhs + "'");
  }

  std::function<bool(std::uint64_t, std::uint64_t)> cmp;
  if (op == "==") cmp = [](std::uint64_t a, std::uint64_t b) { return a == b; };
  else if (op == "!=") cmp = [](std::uint64_t a, std::uint64_t b) { return a != b; };
  else if (op == "<") cmp = [](std::uint64_t a, std::uint64_t b) { return a < b; };
  else if (op == "<=") cmp = [](std::uint64_t a, std::uint64_t b) { return a <= b; };
  else if (op == ">") cmp = [](std::uint64_t a, std::uint64_t b) { return a > b; };
  else if (op == ">=") cmp = [](std::uint64_t a, std::uint64_t b) { return a >= b; };
  else return Status::error(ErrCode::kInvalidArgument, "unknown comparison operator: " + op);

  auto pred = [field_index, cmp, rhs](const Value& v) {
    std::uint64_t actual = field_index < 0
                               ? v.as_u64()
                               : v.field_u64_at(static_cast<std::size_t>(field_index));
    return cmp(actual, rhs);
  };
  std::string desc = lhs + " " + op + " " + words[2];
  return std::make_pair(std::function<bool(const Value&)>(pred), desc);
}

Result<Value> Interpreter::eval(const std::string& expr_in) const {
  std::string expr(trim(expr_in));
  // $N or $N.field
  if (!expr.empty() && expr[0] == '$') {
    auto dot = expr.find('.');
    int n = std::atoi(expr.c_str() + 1);
    auto v = session_.value_history(n);
    if (!v.ok()) return v.status();
    if (dot == std::string::npos) return *v;
    std::string field = expr.substr(dot + 1);
    if (!v->type().is_struct()) return Status::error(ErrCode::kInvalidArgument, "$" + std::to_string(n) + " is not a struct");
    if (v->type().struct_type()->field_index(field) < 0)
      return Status::error(ErrCode::kNotFound, "no field '" + field + "' in " + v->type().name());
    return Value::u32(static_cast<std::uint32_t>(v->field_u64(field)));
  }
  // last_token[.field] — of the current stop's filter
  if (starts_with(expr, "last_token")) {
    const std::string& cur = session_.current_actor();
    if (cur.empty()) return Status::error(ErrCode::kFailedPrecondition, "no current filter");
    const dbg::DToken* t = session_.last_token(cur);
    if (t == nullptr) return Status::error(ErrCode::kFailedPrecondition, "filter " + cur + " has no last token");
    if (expr == "last_token") return t->value;
    if (expr.size() > 11 && expr[10] == '.') {
      std::string field = expr.substr(11);
      if (!t->value.type().is_struct()) return Status::error(ErrCode::kInvalidArgument, "last_token is not a struct");
      if (t->value.type().struct_type()->field_index(field) < 0)
        return Status::error(ErrCode::kNotFound, "no field '" + field + "' in " + t->value.type().name());
      return Value::u32(static_cast<std::uint32_t>(t->value.field_u64(field)));
    }
    return Status::error(ErrCode::kInvalidArgument, "malformed expression: " + expr);
  }
  // <filter>.data.<name> / <filter>.attribute.<name>
  std::vector<std::string> parts = split(expr, '.');
  if (parts.size() == 3 && (parts[1] == "data" || parts[1] == "attribute"))
    return session_.read_variable(parts[0], parts[1], parts[2]);
  return Status::error(ErrCode::kInvalidArgument, "cannot evaluate expression: " + expr);
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

std::vector<std::string> Interpreter::complete(const std::string& partial) const {
  static const std::vector<std::string> kCommands = {
      "run",    "continue", "filter", "iface",  "step_both", "break",   "watch",
      "list",   "print",    "graph",  "info",   "module",    "tok",     "delete",
      "enable", "disable",  "focus",  "unfocus", "stats",    "trace",   "profile",
      "journal", "whence"};
  static const std::vector<std::string> kFilterVerbs = {"catch", "configure", "info", "print"};
  static const std::vector<std::string> kIfaceVerbs = {"record", "print", "catch"};

  std::vector<std::string> words = split_ws(partial);
  bool fresh_word = partial.empty() || std::isspace(static_cast<unsigned char>(partial.back()));
  std::string stem = fresh_word || words.empty() ? "" : words.back();
  std::size_t done = words.size() - (fresh_word ? 0 : 1);

  std::vector<std::string> pool;
  if (done == 0) {
    pool = kCommands;
  } else if (words[0] == "filter" && done == 1) {
    for (const dbg::DActor& a : session_.graph().actors())
      if (a.kind == dbg::DActorKind::kFilter) pool.push_back(a.name);
    pool.push_back("print");
  } else if (words[0] == "filter" && done == 2) {
    pool = kFilterVerbs;
  } else if (words[0] == "filter" && done == 3 && words[2] == "catch") {
    // interface names of that filter, plus work/schedule/*in
    const dbg::DActor* a = session_.graph().actor_by_name(words[1]);
    if (a != nullptr) {
      for (std::uint32_t ci : a->in_conns)
        pool.push_back(session_.graph().connections()[ci].port);
    }
    pool.push_back("work");
    pool.push_back("schedule");
    pool.push_back("*in=1");
  } else if (words[0] == "iface" && done == 1) {
    for (const dbg::DConnection& c : session_.graph().connections()) pool.push_back(c.iface());
  } else if (words[0] == "iface" && done == 2) {
    pool = kIfaceVerbs;
  } else if ((words[0] == "step_both" || words[0] == "tok" || words[0] == "focus" ||
              words[0] == "whence") &&
             done >= 1) {
    for (const dbg::DConnection& c : session_.graph().connections()) pool.push_back(c.iface());
  } else {
    pool = session_.graph().completion_names();
  }

  std::vector<std::string> out;
  for (const std::string& cand : pool)
    if (starts_with(cand, stem)) out.push_back(cand);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dfdbg::cli

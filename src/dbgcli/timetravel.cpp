#include "dfdbg/dbgcli/timetravel.hpp"

#include <cstdlib>

#include "dfdbg/common/assert.hpp"

namespace dfdbg::cli {

TimeTravelDebugger::TimeTravelDebugger(ReplayFactory factory) : factory_(std::move(factory)) {
  DFDBG_CHECK(rebuild_and_run(0).ok());
}

TimeTravelDebugger::~TimeTravelDebugger() {
  // Destruction order matters: the session detaches from the instance's
  // kernel, so it must die first.
  cli_.reset();
  session_.reset();
  instance_.reset();
}

Status TimeTravelDebugger::execute(const std::string& command) {
  std::size_t before = cli_->replayable().size();
  Status s = cli_->execute(command);
  if (s.ok() && cli_->replayable().size() > before) {
    // Remember at which timeline position this state-creating command was
    // issued so replays interleave it at exactly the same point.
    setup_.push_back(std::to_string(stops_taken_) + "\x1f" + cli_->replayable().back());
  }
  return s;
}

dbg::RunOutcome TimeTravelDebugger::cont() {
  dbg::RunOutcome out = session_->run();
  if (out.result == sim::RunResult::kStopped) stops_taken_++;
  return out;
}

Status TimeTravelDebugger::reverse_continue() {
  if (stops_taken_ == 0) return Status::error("already at the beginning of the execution");
  return travel_to(stops_taken_ - 1);
}

Status TimeTravelDebugger::travel_to(std::size_t stop_index) {
  if (stop_index > stops_taken_)
    return Status::error("cannot travel forward past the current stop; use cont()");
  return rebuild_and_run(stop_index);
}

Status TimeTravelDebugger::rebuild_and_run(std::size_t stops) {
  // Tear down the old world (session first: it references the kernel).
  cli_.reset();
  session_.reset();
  instance_.reset();

  instance_ = factory_();
  DFDBG_CHECK_MSG(instance_ != nullptr, "replay factory returned null");
  session_ = std::make_unique<dbg::Session>(instance_->app());
  session_->attach();
  cli_ = std::make_unique<Interpreter>(*session_);
  instance_->start();

  // Replay the recorded setup interleaved at the right timeline positions.
  std::size_t cursor = 0;
  auto apply_pending = [&](std::size_t position) -> Status {
    while (cursor < setup_.size()) {
      const std::string& entry = setup_[cursor];
      auto sep = entry.find('\x1f');
      std::size_t at = std::strtoull(entry.substr(0, sep).c_str(), nullptr, 10);
      if (at > position) break;
      if (Status s = cli_->execute(entry.substr(sep + 1)); !s.ok()) return s;
      cli_->console().take();  // replayed output is not user-facing
      cursor++;
    }
    return Status{};
  };

  stops_taken_ = 0;
  for (std::size_t k = 0; k < stops; ++k) {
    if (Status s = apply_pending(k); !s.ok()) return s;
    dbg::RunOutcome out = session_->run();
    if (out.result != sim::RunResult::kStopped)
      return Status::error(
          "replay diverged: execution finished before reaching the target stop");
    stops_taken_++;
  }
  return apply_pending(stops);
}

}  // namespace dfdbg::cli

// Symbol-table emulation (the DWARF stand-in of paper §V).
//
// The paper's §VI-F illustrates why raw symbols are useless to developers:
// filter `ipf`'s WORK method is the mangled `IpfFilter_work_function`, the
// pred module controller is `_component_PredModule_anon_0_work`. We build
// the same table so the bug-localization baseline (plain source-level
// debugger) can be modelled realistically, and so tests can check the
// mangled<->entity mapping the dataflow debugger hides from the user.
#pragma once

#include <string>
#include <vector>

#include "dfdbg/pedf/application.hpp"

namespace dfdbg::dbg {

/// One symbol the hypothetical ELF would expose.
struct SymbolInfo {
  std::string symbol;       ///< mangled name ("IpfFilter_work_function")
  std::string entity_path;  ///< framework entity ("pred.ipf")
  std::string kind;         ///< "filter-work" | "controller-work" | "api"
};

/// Builds the full symbol table of an elaborated application: one mangled
/// work symbol per filter, one anonymous component symbol per controller,
/// plus the framework API symbols.
std::vector<SymbolInfo> build_symbol_table(pedf::Application& app);

/// Demangles a symbol back to its entity path; empty if unknown.
std::string entity_for_symbol(const std::vector<SymbolInfo>& table, const std::string& symbol);

}  // namespace dfdbg::dbg

// Token content recording (paper §VI-D).
//
// Recording the payload of every token "may require a significant quantity
// of memory, thus it has to be explicitly enabled" per interface. Policies:
// unbounded (keep everything) or bounded (ring of the most recent N).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::dbg {

/// Retention policy of one interface recording.
enum class RecordPolicy : std::uint8_t { kOff, kBounded, kUnbounded };

const char* to_string(RecordPolicy p);

/// Per-interface token content recorder.
class TokenRecorder {
 public:
  /// One recorded token.
  struct Record {
    std::uint64_t index;  ///< link push index
    pedf::Value value;
    sim::SimTime time;
    std::uint64_t token = 0;  ///< provenance id (journal token id, 0 = unknown)
  };

  /// Enables recording on `iface` ("actor::port"). `bound` applies to
  /// kBounded only.
  void enable(const std::string& iface, RecordPolicy policy, std::size_t bound = 256);
  /// Stops recording on `iface` and drops its records.
  void disable(const std::string& iface);
  [[nodiscard]] bool enabled(const std::string& iface) const;

  /// Feed: called by the session's data-exchange hooks.
  void on_token(const std::string& iface, std::uint64_t index, const pedf::Value& value,
                sim::SimTime time, std::uint64_t token = 0);

  /// Records of `iface` (nullptr if not recording).
  [[nodiscard]] const std::deque<Record>* records(const std::string& iface) const;

  /// Transcript-style dump: "#1 (U16) 5\n#2 (U16) 10\n...".
  [[nodiscard]] std::string format(const std::string& iface) const;

  /// Total tokens recorded (including evicted).
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Approximate bytes held by all recordings.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Stream {
    RecordPolicy policy = RecordPolicy::kOff;
    std::size_t bound = 0;
    std::uint64_t first_seq = 1;  ///< ordinal of records.front()
    std::deque<Record> records;
  };
  std::map<std::string, Stream> streams_;
  std::uint64_t total_ = 0;
};

}  // namespace dfdbg::dbg

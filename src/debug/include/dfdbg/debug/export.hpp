// Machine-readable state export. The paper notes a graphical debugger
// front-end "could provide a more interactive view where the graph elements
// can be directly used to interact with the debugger" — this JSON dump of
// the session's internal representation (actors, connections, links,
// in-flight tokens, breakpoints, stop history) is the interface such a UI
// would consume.
#pragma once

#include <string>

#include "dfdbg/debug/session.hpp"

namespace dfdbg::dbg {

/// Serializes the session's model and debugging state as a JSON document.
/// Stable key order; strings are escaped; no external dependencies.
std::string export_state_json(const Session& session);

}  // namespace dfdbg::dbg

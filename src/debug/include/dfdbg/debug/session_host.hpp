// Session factory and lifecycle for the multi-session fleet host.
//
// The fleet server (src/server) owns N independent debug sessions per
// process. Each session is a complete, isolated debug world: its own
// simulation kernel, PEDF application, flight-recorder journal and
// dbg::Session, built from a *rig* — a named recipe such as the H.264
// decoder, the seeded wide-graph generator, or an arbitrary MIND ADL file.
//
// Isolation hinges on the journal: obs::Journal::global() resolves through a
// thread-local override (set_thread_journal) before falling back to the
// process-wide ring. The factory installs the session's private journal as
// that override while the rig is built, the Session attaches and the app
// starts — so the kernel captures it as its shard-journal base — and the
// server re-installs it around every verb it dispatches for the session.
// Since each deterministic kernel is single-threaded and the fleet pins
// every session to exactly one shard thread, the override is always correct.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::dbg {

/// Per-session resource limits, enforced by the fleet host.
struct SessionQuota {
  /// Flight-recorder ring capacity (events). Sessions get small private
  /// rings by default — the process-wide 128Ki ring times 1024 sessions
  /// would be most of a GB.
  std::size_t journal_capacity = 1u << 12;
  /// Concurrent clients attached to the session (0 = unlimited).
  int max_clients = 4;
  /// Max token uids the session may record before run/step/inject verbs are
  /// refused (0 = unlimited). A cheap, deterministic work ceiling.
  std::uint64_t token_budget = 0;
  /// Evict the session after this long with no attached client and no
  /// request activity (0 = never). Checked by the owning shard's poll loop.
  std::uint64_t idle_timeout_ms = 0;
};

/// What to build: a rig name plus its knobs. Unused knobs are ignored by
/// rigs that do not consume them.
struct SessionSpec {
  std::string rig = "wide";
  std::string name;  ///< fleet-unique session name; "" = auto ("s<id>")

  std::string backend;  ///< "fibers" | "threads" | "parallel"; "" = process default
  int workers = 0;      ///< parallel backend worker count; 0 = default

  // "wide" rig (bench/wide_graph.hpp).
  int pipelines = 2;
  int stages = 2;
  int tokens = 32;
  std::uint32_t spin = 16;
  std::uint32_t seed = 1;

  // "h264" rig (src/h264).
  int width = 32;
  int height = 32;
  int frames = 1;
  std::string fault;   ///< "" | "rate-mismatch" | "corrupt-splitter" | ...
  int trigger_mb = 2;

  // "adl" rig: instantiate a MIND ADL file with generic behaviours.
  std::string path;  ///< .adl file on the server's filesystem
  std::string top;   ///< top-level definition; "" = sole definition
  int steps = 4;     ///< generic source/sink stream length

  SessionQuota quota;
};

/// RAII: installs `j` as this thread's obs::Journal::global() override and
/// restores the previous override on exit. Pass nullptr for a no-op scope
/// (the default/external session records to the process-wide ring).
class ThreadJournalScope {
 public:
  explicit ThreadJournalScope(obs::Journal* j) {
    if (j == nullptr) return;
    obs::Journal& cur = obs::Journal::global();
    prev_ = (&cur == &obs::Journal::global_base()) ? nullptr : &cur;
    obs::Journal::set_thread_journal(j);
    active_ = true;
  }
  ~ThreadJournalScope() {
    if (active_) obs::Journal::set_thread_journal(prev_);
  }
  ThreadJournalScope(const ThreadJournalScope&) = delete;
  ThreadJournalScope& operator=(const ThreadJournalScope&) = delete;

 private:
  bool active_ = false;
  obs::Journal* prev_ = nullptr;
};

/// One hosted debug world. Owns everything the session needs to live;
/// destruction re-installs the session journal so teardown recording (link
/// drains, fiber unwinds) stays confined to the session.
struct SessionWorld {
  std::unique_ptr<obs::Journal> journal;  ///< destroyed last (declared first)
  std::shared_ptr<void> rig;              ///< keeps kernel/platform/app alive
  pedf::Application* app = nullptr;
  sim::Kernel* kernel = nullptr;
  std::unique_ptr<Session> session;

  SessionWorld() = default;
  ~SessionWorld();
  SessionWorld(const SessionWorld&) = delete;
  SessionWorld& operator=(const SessionWorld&) = delete;
};

/// Maps "fibers"/"threads"/"parallel" to the enum; "" = process default.
Result<sim::ProcessBackend> parse_backend(const std::string& name);

/// Builds hosted debug worlds from named rigs. "wide" and "adl" are
/// registered by the constructor; the H.264 rig lives in src/h264
/// (h264::register_session_rig) because the decoder links *against* the
/// debug layer, not under it.
class SessionFactory {
 public:
  /// A rig builder returns the elaborated-but-not-started world: a holder
  /// keeping kernel/platform/app alive plus raw pointers into it. It runs
  /// under the session's ThreadJournalScope.
  struct RigParts {
    std::shared_ptr<void> holder;
    pedf::Application* app = nullptr;
    sim::Kernel* kernel = nullptr;
  };
  using Builder = std::function<Result<RigParts>(const SessionSpec&)>;

  SessionFactory();

  /// Registers (or replaces) a rig recipe under `name`.
  void register_rig(const std::string& name, Builder builder);
  [[nodiscard]] std::vector<std::string> rigs() const;

  /// Builds the world: journal sized by the quota, rig built and Session
  /// attached under the journal scope, app started. Builds are serialized
  /// process-wide (rigs that honour spec.backend flip the process default
  /// backend around kernel construction).
  Result<std::unique_ptr<SessionWorld>> build(const SessionSpec& spec) const;

 private:
  std::map<std::string, Builder> rigs_;
};

}  // namespace dfdbg::dbg

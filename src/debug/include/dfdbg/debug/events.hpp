// Stop events: the debugger-visible reasons the simulation halted, formatted
// like the paper's transcripts ("[Stopped after receiving token from
// `pipe::Red2PipeCbMB_in']").
#pragma once

#include <cstdint>
#include <string>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::dbg {

struct TokenIdTag {};
/// Id of a debugger-side token object.
using TokenId = dfdbg::Id<TokenIdTag>;

struct BpIdTag {};
/// Id of a breakpoint/catchpoint/watchpoint registered with the session.
using BpId = dfdbg::Id<BpIdTag>;

/// Why the execution stopped.
enum class StopKind : std::uint8_t {
  kCatchWork,      ///< filter X catch work
  kTokenReceived,  ///< stop after a pop on a watched interface
  kTokenSent,      ///< stop after a push on a watched interface
  kCatchTokens,    ///< token-count condition satisfied (catch in=1,...)
  kTokenContent,   ///< content-conditional catchpoint matched
  kStepBegin,      ///< module step started
  kStepEnd,        ///< module step ended
  kActorScheduled, ///< controller issued ACTOR_START for a watched filter
  kSourceLine,     ///< source-level line breakpoint
  kWatchpoint,     ///< watched data/attribute changed
  kTokenProvenance,///< token derived from the watched source actor arrived
  kLinkOccupancy,  ///< a link reached the watched occupancy threshold
  kPredicateEval,  ///< a controller evaluated a watched predicate
  kDeadlock,       ///< kernel reported a deadlock (no runnable process)
  kFinished,       ///< application ran to completion
  kTimeLimit,      ///< simulated-time bound reached
};

/// Short name of a StopKind.
const char* to_string(StopKind k);

/// One stop notification.
struct StopEvent {
  StopKind kind = StopKind::kFinished;
  std::string message;    ///< transcript-style text
  std::string actor;      ///< short name of the actor concerned (if any)
  std::string iface;      ///< "actor::port" (if any)
  TokenId token;          ///< token concerned (if any)
  BpId breakpoint;        ///< the breakpoint that fired (if any)
  int line = 0;           ///< source line (kSourceLine)
  sim::SimTime time = 0;  ///< simulated time of the stop
};

}  // namespace dfdbg::dbg

// The dataflow debugging session: the paper's contribution, assembled.
//
// A Session attaches to a running (or about-to-run) PEDF application through
// the simulator's instrumentation port — function breakpoints at framework
// API entry and finish breakpoints at exit — and maintains the internal
// model of model.hpp. On top of that it implements the approach of §III:
//
//   * Stopping the execution: catchpoints on actor firing (`filter X catch
//     work`), on token-count conditions (`catch Pipe_in=1,Hwcfg_in=1`,
//     `catch *in=1`), on interface send/receive events and on token content;
//     breakpoints on controller scheduling decisions and step boundaries.
//   * Step-by-step execution: step_both plants temporary breakpoints at
//     both ends of a data dependency.
//   * Inspecting the application state: reconstructed graph with live token
//     counts (to_dot), per-actor scheduling states, blocked/running status,
//     token recording and provenance (info last_token).
//   * Altering the normal execution: inject / remove / replace tokens,
//     enough to untie deadlocks or test corner cases.
//   * Two-level debugging: source-line breakpoints, data watchpoints and
//     direct variable/struct inspection remain available.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/debug/events.hpp"
#include "dfdbg/debug/model.hpp"
#include "dfdbg/debug/recording.hpp"
#include "dfdbg/debug/views.hpp"
#include "dfdbg/pedf/application.hpp"

namespace dfdbg::dbg {

/// Result of one run/continue command.
struct RunOutcome {
  sim::RunResult result = sim::RunResult::kFinished;
  std::vector<StopEvent> stops;

  /// Convenience: first stop, or a synthesized one for non-kStopped results.
  [[nodiscard]] const StopEvent* first() const { return stops.empty() ? nullptr : &stops[0]; }
};

/// Descriptive view of one registered breakpoint-like object.
struct BreakpointInfo {
  BpId id;
  std::string description;
  bool enabled = true;
  bool temporary = false;
  std::uint64_t hits = 0;
};

/// The dataflow-aware debugger.
class Session {
 public:
  /// Creates a session over `app`. The application may be elaborated already
  /// (late attach) or not (the session then observes the init phase live).
  explicit Session(pedf::Application& app);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Installs the hooks (enables the instrumentation port). If the app is
  /// already elaborated, replays registration to rebuild the graph.
  void attach();
  /// Removes every hook and disables the port.
  void detach();
  [[nodiscard]] bool attached() const { return attached_; }

  [[nodiscard]] GraphModel& graph() { return model_; }
  [[nodiscard]] const GraphModel& graph() const { return model_; }
  [[nodiscard]] TokenRecorder& recorder() { return recorder_; }
  [[nodiscard]] pedf::Application& app() { return app_; }

  // --- run control -----------------------------------------------------------

  /// Runs/continues the simulation until a stop condition, completion,
  /// deadlock or `until` (simulated time).
  RunOutcome run(sim::SimTime until = sim::kMaxSimTime);

  /// All stop events seen so far, oldest first.
  [[nodiscard]] const std::vector<StopEvent>& history() const { return history_; }

  /// Observer called once per stop event as it is produced — catchpoints
  /// and breakpoints fire from inside the simulation (before run() returns);
  /// deadlock/finished/time-limit stops fire as run() synthesizes them. The
  /// debug server uses this to push `run.event` notifications while the
  /// `run` response is still pending. One observer; set empty to clear.
  void set_stop_observer(std::function<void(const StopEvent&)> fn) {
    stop_observer_ = std::move(fn);
  }
  /// Insertion notes and other async messages since the last take_notes().
  std::vector<std::string> take_notes();

  // --- stopping the execution (catchpoints & breakpoints) --------------------

  /// `filter <f> catch work`: stop when the WORK method of `filter` fires.
  Result<BpId> catch_work(const std::string& filter);

  /// `filter <f> catch A=1,B=2`: stop once the filter has received the given
  /// number of tokens on each listed interface (counted from arming;
  /// re-arms after triggering).
  Result<BpId> catch_tokens(const std::string& filter,
                            std::vector<std::pair<std::string, std::uint64_t>> port_counts);

  /// `filter <f> catch *in=N`: the same condition applied to every inbound
  /// interface of the filter.
  Result<BpId> catch_all_inputs(const std::string& filter, std::uint64_t count);

  /// `filter <f> catch <port>`: stop after each token received on one
  /// interface ("actor::port" also accepted via iface forms below).
  Result<BpId> break_on_receive(const std::string& iface);
  /// Stop after each token sent on an interface.
  Result<BpId> break_on_send(const std::string& iface);
  /// Content-conditional catchpoint: stop when a token pushed on `iface`
  /// satisfies `pred`.
  Result<BpId> catch_token_content(const std::string& iface,
                                   std::function<bool(const pedf::Value&)> pred,
                                   std::string description);

  /// Conditional catchpoint on token *provenance* (paper §III: conditions
  /// on a token's source/destination): stop when a token received on
  /// `iface` derives — through the configured actor behaviours — from a
  /// token sent by `src_actor`, within `depth` hops.
  Result<BpId> catch_token_from(const std::string& iface, const std::string& src_actor,
                                std::size_t depth = 8);

  /// Stop when the link of `iface` reaches an occupancy of `threshold`
  /// tokens (rate-mismatch/stall detection; makes the Fig. 4 "20 tokens"
  /// state a single command).
  Result<BpId> break_on_occupancy(const std::string& iface, std::size_t threshold);

  /// Stop when a controller schedules `filter` (ACTOR_START).
  Result<BpId> break_on_schedule(const std::string& filter);
  /// Stop at the beginning (or end) of each step of `module`.
  Result<BpId> break_on_step(const std::string& module, bool at_end);
  /// Stop after the controller of `module` evaluates predicate `name`
  /// (predicated-execution visibility; the stop reports the result).
  Result<BpId> break_on_predicate(const std::string& module, const std::string& predicate);

  /// Source-level line breakpoint inside a filter's WORK code.
  Result<BpId> break_source_line(const std::string& filter, int line);
  /// Watchpoint on a filter datum: `kind` is "data" or "attribute". Sampled
  /// at WORK entry/exit and at source-line markers (software watchpoint
  /// granularity).
  Result<BpId> watch_variable(const std::string& filter, const std::string& kind,
                              const std::string& name);

  Status delete_breakpoint(BpId id);
  Status set_breakpoint_enabled(BpId id, bool enabled);
  /// GDB-style ignore count: the next `count` triggers of `id` do not stop.
  Status set_breakpoint_ignore(BpId id, std::uint64_t count);
  [[nodiscard]] std::vector<BreakpointInfo> breakpoints() const;

  // --- step-by-step over data dependencies ------------------------------------

  /// `step_both` with an explicit output interface: plants temporary
  /// breakpoints after the send on `out_iface` and after the receive at the
  /// other end of its link; both are announced via take_notes().
  Status step_both_iface(const std::string& out_iface);

  /// `step_both` at the current stop: arms the next push of the currently
  /// stopped filter, then behaves like step_both_iface on the link it hits.
  Status step_both();

  /// Source-level single step: one-shot stop at the next source-line marker
  /// executed by the currently stopped filter (the classic `step` of the
  /// lower debugging level).
  Status step_line();

  // --- inspecting the application state ---------------------------------------

  /// Most recent token consumed by `filter` (nullptr if none/pruned).
  [[nodiscard]] const DToken* last_token(const std::string& filter) const;

  // Structured views (dfdbg/debug/views.hpp): the typed query API. The CLI
  // renders these to transcript text (dfdbg/dbgcli/render.hpp) and the debug
  // server serializes them with the to_json() overloads — two thin
  // presentation layers over the same data.

  /// Occupancy of every link.
  [[nodiscard]] LinkView links_view() const;
  /// Per-filter state: scheduling state, current source line, blocked-on.
  [[nodiscard]] Result<FilterView> filter_view(const std::string& filter) const;
  /// Scheduling monitor view of one module (Contribution #2).
  [[nodiscard]] Result<SchedView> sched_view(const std::string& module) const;
  /// `filter <f> info last_token`: provenance chain of the most recent token
  /// consumed by `filter`, newest first.
  [[nodiscard]] Result<TokenView> last_token_view(const std::string& filter,
                                                  std::size_t depth = 8) const;
  /// `whence <iface> <slot>`: causal chain of a token still queued on the
  /// link of `iface` (slot 0 = oldest), newest first, back to its source
  /// filter — each hop stamped with its provenance id and push time.
  [[nodiscard]] Result<WhenceChain> whence_chain(const std::string& iface, std::size_t slot,
                                                 std::size_t depth = 8) const;
  /// Payloads of the tokens currently in flight on the link of `iface`
  /// (§III: "an overview of the tokens currently available in the data
  /// links"), from the debugger's own token mirror.
  [[nodiscard]] Result<LinkTokensView> link_tokens_view(const std::string& iface) const;
  /// Profiling view (paper §I: debuggers "monitor and profile applications
  /// ... real-time feedback about the actual application execution"):
  /// per actor firings, mapped PE, simulated cycles consumed and scheduler
  /// activations, straight from the live kernel/platform state.
  [[nodiscard]] ProfileSnapshot profile_snapshot() const;
  /// `info shards`: the parallel backend's per-worker time attribution
  /// (work / barrier-wait / drain / idle buckets, stall counts, boundary
  /// occupancy high-water). Valid on any backend; rows are empty unless the
  /// kernel is parallel.
  [[nodiscard]] ShardProfileView shard_profile() const;

  // --- information flow --------------------------------------------------------

  /// `filter <f> configure splitter|pipeline|merger`.
  Status configure_behavior(const std::string& filter, ActorBehavior behavior);

  /// `iface <a::p> record`: start recording token contents.
  Status record_iface(const std::string& iface, RecordPolicy policy = RecordPolicy::kUnbounded,
                      std::size_t bound = 256);
  /// `iface <a::p> print`.
  [[nodiscard]] std::string print_recorded(const std::string& iface) const;

  // --- altering the normal execution -------------------------------------------

  /// Inserts a token into the link feeding `iface` (input) or fed by it
  /// (output). Only valid while the simulation is stopped.
  Status inject_token(const std::string& iface, pedf::Value v);
  /// Deletes queued token `idx` (0 = oldest) from the link of `iface`.
  Status remove_token(const std::string& iface, std::size_t idx);
  /// Overwrites queued token `idx` of the link of `iface`.
  Status replace_token(const std::string& iface, std::size_t idx, pedf::Value v);

  // --- intrusiveness controls (paper §V) ----------------------------------------

  /// Option 1: disable/enable the data-exchange breakpoints wholesale. On
  /// re-enable, the token mirror is resynchronized from framework state.
  void set_data_exchange_hooks(bool enabled);
  [[nodiscard]] bool data_exchange_hooks() const { return data_hooks_enabled_; }

  /// Option 2 (framework cooperation): keep data-exchange breakpoints only
  /// on the listed interfaces; everything else runs at native speed.
  Status use_selective_data_hooks(const std::vector<std::string>& ifaces);
  /// Back to global data-exchange hooks.
  void clear_selective_data_hooks();

  // --- two-level debugging -------------------------------------------------------

  /// `list`: source listing of a filter around `line` (0 = all).
  [[nodiscard]] std::string list_source(const std::string& filter, int line = 0,
                                        int context = 5) const;
  /// Reads a filter variable ("data"/"attribute") directly from framework
  /// memory — the lower debugging level.
  [[nodiscard]] Result<pedf::Value> read_variable(const std::string& filter,
                                                  const std::string& kind,
                                                  const std::string& name) const;

  /// GDB-style value history: stores `v`, returns its $N number.
  int store_value(pedf::Value v);
  [[nodiscard]] Result<pedf::Value> value_history(int n) const;

  /// Actor the last stop concerned (empty if none).
  [[nodiscard]] const std::string& current_actor() const { return current_actor_; }

  /// Total stop events delivered.
  [[nodiscard]] std::uint64_t stop_count() const { return history_.size(); }

 private:
  struct Rule;

  void install_core_hooks();
  void install_data_hooks();
  /// Installs the per-statement source-line hook on first use (line
  /// breakpoints / watchpoints); unused sessions never pay for it.
  void ensure_line_hook();
  /// Visits enabled rules by id snapshot: safe against rules being added,
  /// removed or disabled while a visit stops the simulation.
  template <typename F>
  void scan_rules(F&& fn);
  void remove_data_hooks();
  void resync_all_links();
  void trigger_stop(StopEvent ev, Rule* rule);
  void handle_push(const sim::Frame& frame);
  void handle_pop_exit(const sim::Frame& frame);
  void sample_watchpoints(const std::string& filter_path);
  Rule* find_rule(BpId id);
  Result<const DLink*> resolve_link(const std::string& iface) const;
  pedf::Link* framework_link(const DLink& dl) const;

  pedf::Application& app_;
  GraphModel model_;
  TokenRecorder recorder_;
  bool attached_ = false;
  bool data_hooks_enabled_ = true;
  bool selective_ = false;

  std::vector<sim::HookId> core_hooks_;
  sim::HookId line_hook_;
  sim::HookId push_hook_;
  sim::HookId pop_hook_;
  std::vector<sim::HookId> selective_hooks_;

  std::vector<std::unique_ptr<Rule>> rules_;
  std::uint32_t next_bp_ = 0;

  std::vector<StopEvent> pending_;
  std::vector<StopEvent> history_;
  std::function<void(const StopEvent&)> stop_observer_;
  std::vector<std::string> notes_;
  std::string current_actor_;
  std::vector<pedf::Value> value_history_;
};

}  // namespace dfdbg::dbg

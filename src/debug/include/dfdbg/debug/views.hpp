// Structured results of the Session inspection queries.
//
// Historically every `info *` query returned a pre-rendered std::string, so
// the interactive CLI was the only possible consumer. These view types are
// the typed API underneath: Session fills them from the live model, and two
// thin presentation layers sit on top —
//
//   * dfdbg/dbgcli/render.hpp renders the classic transcript text
//     (byte-identical to the old string-returning queries), and
//   * the to_json() overloads below emit the wire representation used by the
//     debug server (dfdbg/server) and the CLI `--json` flags.
//
// Keep views plain data: no methods beyond construction, no back-pointers
// into the model (strings and integers are snapshotted), so a view stays
// valid after the simulation moves on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfdbg/common/json.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::sim {
struct BarrierRoundRecord;
}

namespace dfdbg::dbg {

struct BreakpointInfo;
struct StopEvent;
struct RunOutcome;

/// One row of `info links`: live framework-link state.
struct LinkRow {
  std::string name;
  std::size_t occupancy = 0;
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::size_t high_watermark = 0;
  std::string transport;  ///< "L1" / "L2" / "DMA"
};

/// `info links` — every link of the application, registration order.
struct LinkView {
  std::vector<LinkRow> links;
};

/// `filter <f> info` — scheduling/blocking state of one filter.
struct FilterView {
  /// What the filter is blocked on (mirrors pedf::BlockInfo::Kind).
  enum class Blocked : std::uint8_t { kNone, kLinkEmpty, kLinkFull, kStart, kStep };

  std::string name;
  std::string path;
  std::string state;     ///< SchedState spelling
  std::uint64_t firings = 0;
  int line = 0;          ///< current source line; 0 = unknown (omitted)
  std::string pe;
  std::string behavior;  ///< ActorBehavior spelling
  bool has_blocked = false;  ///< framework actor found, blocked info valid
  Blocked blocked = Blocked::kNone;
  std::string blocked_link;  ///< set for kLinkEmpty / kLinkFull
};

/// One filter row of the scheduling monitor.
struct SchedRow {
  std::string name;
  std::string state;  ///< SchedState spelling
  std::uint64_t firings = 0;
};

/// `info sched <module>` — Contribution #2's scheduling monitor.
struct SchedView {
  std::string module;
  std::uint64_t step = 0;
  std::string backend;  ///< active process backend ("fibers"/"threads"/"parallel")
  int workers = 1;      ///< partition count (1 on sequential backends)
  std::vector<SchedRow> rows;
};

/// One hop of a provenance chain (newest first).
struct TokenHop {
  std::uint64_t uid = 0;   ///< framework provenance id (journal token id)
  std::string desc;        ///< transcript form: "src -> dst (Type) payload"
  sim::SimTime pushed_at = 0;
  bool injected = false;   ///< created by the debugger, not the app
};

/// `filter <f> info last_token` — provenance of the last consumed token.
struct TokenView {
  std::string filter;
  std::vector<TokenHop> hops;
};

/// `whence <iface> <slot>` — causal chain of a token still queued on a link.
struct WhenceChain {
  std::string link;           ///< link display name
  std::size_t slot = 0;
  std::size_t depth = 0;      ///< hop limit the query ran with
  std::vector<TokenHop> hops;
  bool truncated = false;     ///< chain hit `depth` with provenance left
  bool has_source = false;    ///< root token has no producer: a true source
  std::string source_actor;   ///< producing actor of the root ("?" if unknown)
  bool source_injected = false;
};

/// One queued token of `iface tokens`.
struct LinkTokenRow {
  std::size_t slot = 0;   ///< 0 = oldest
  bool pruned = false;    ///< mirror was pruned; payload unknown
  std::string value;      ///< payload to_string() (valid unless pruned)
  sim::SimTime pushed_at = 0;
  bool injected = false;
};

/// `iface <a::p> tokens` — payloads currently in flight on one link.
struct LinkTokensView {
  std::string link;  ///< link display name
  std::vector<LinkTokenRow> tokens;
};

/// One actor row of `info profile`.
struct ProfileRow {
  std::string path;
  std::string pe;  ///< "-" if unmapped
  std::uint64_t firings = 0;
  std::uint64_t cycles = 0;       ///< simulated cycles consumed
  std::uint64_t activations = 0;  ///< scheduler activations
};

/// `info profile` — live kernel/platform profiling snapshot.
struct ProfileSnapshot {
  std::uint64_t now = 0;         ///< simulated time
  std::uint64_t dispatches = 0;  ///< scheduler dispatch count
  std::vector<ProfileRow> rows;
};

/// One worker row of `info shards`: the cumulative attribution buckets of
/// sim::Kernel::shard_totals.
struct ShardRow {
  int partition = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t stalled_rounds = 0;
  std::uint64_t work_ns = 0;
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t drain_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t skipped_wakes = 0;  ///< rounds this worker slept through
  std::uint64_t eager_drained = 0;  ///< tokens delivered by eager drains
  /// work / (work + barrier-wait + drain + idle); 0 when nothing recorded.
  double utilization = 0.0;
};

/// `info shards` — parallel-backend shard time attribution. On sequential
/// backends `workers` is 1 and `rows` is empty.
struct ShardProfileView {
  std::string backend;  ///< active process backend spelling
  int workers = 1;
  std::uint64_t rounds = 0;        ///< barrier rounds completed
  std::uint64_t elided_rounds = 0; ///< rounds that skipped the coordinator merge
  std::uint64_t records = 0;       ///< retained BarrierRoundRecords
  std::uint64_t boundary_hwm = 0;  ///< max boundary occupancy over records
  std::vector<ShardRow> rows;
};

// --- wire encoding ----------------------------------------------------------
// One serializer for every consumer (server verbs, CLI --json): each view
// becomes one JSON value written into `w`. Schemas in docs/PROTOCOL.md.

void to_json(JsonWriter& w, const LinkView& v);
void to_json(JsonWriter& w, const FilterView& v);
void to_json(JsonWriter& w, const SchedView& v);
void to_json(JsonWriter& w, const TokenView& v);
void to_json(JsonWriter& w, const WhenceChain& v);
void to_json(JsonWriter& w, const LinkTokensView& v);
void to_json(JsonWriter& w, const ProfileSnapshot& v);
void to_json(JsonWriter& w, const ShardProfileView& v);
/// Wire form of one attribution round (the `shard_rounds` stream payload and
/// dfdbg-top's worker panel input).
void to_json(JsonWriter& w, const sim::BarrierRoundRecord& r);
void to_json(JsonWriter& w, const BreakpointInfo& v);
void to_json(JsonWriter& w, const StopEvent& v);
void to_json(JsonWriter& w, const RunOutcome& v);

/// Spelling of a FilterView::Blocked ("none", "link-empty", ...).
const char* to_string(FilterView::Blocked b);

}  // namespace dfdbg::dbg

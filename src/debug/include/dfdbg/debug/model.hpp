// The debugger's internal representation of a dataflow application
// (paper §V, top of Fig. 3):
//
//   - ACTOR objects represent filters, controllers and modules, with their
//     execution context and in/outbound connections;
//   - TOKEN objects are debugger-side entities whose state corresponds only
//     to the logical implications of runtime events;
//   - CONNECTION objects are the data-dependency endpoints of an actor;
//   - LINK objects bind an outgoing and an incoming connection and hold the
//     TOKENs in flight.
//
// The model is built exclusively from instrumentation events (graph
// registration during framework init, then push/pop/firing events), never by
// modifying the framework.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfdbg/debug/events.hpp"
#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::dbg {

/// Kind of a model actor (mirrors the framework's registration strings).
enum class DActorKind : std::uint8_t { kFilter, kController, kModule, kHostIo, kUnknown };

const char* to_string(DActorKind k);
DActorKind parse_actor_kind(std::string_view s);

/// Communication behaviour of a filter, used to chain token provenance
/// across actors. The paper: "as this behaviour depends on the filter
/// implementation, the debugger cannot automatically figure it out; the
/// developer has to provide it" (filter X configure splitter).
enum class ActorBehavior : std::uint8_t {
  kUnknown,   ///< no provenance chaining through this actor
  kSplitter,  ///< consumes one token, sends derived data on all outputs
  kPipeline,  ///< i-th output token derives from i-th token of first input
  kMerger,    ///< output derives from the most recent token of any input
};

const char* to_string(ActorBehavior b);

/// Scheduling state tracked by the debugger (Contribution #2): which filters
/// are ready to be executed, not scheduled, or have already finished the step.
enum class SchedState : std::uint8_t { kNotScheduled, kScheduled, kRunning, kFinished };

const char* to_string(SchedState s);

/// A debugger-side token.
struct DToken {
  TokenId id;
  pedf::Value value;            ///< payload snapshot at send time
  std::uint64_t uid = 0;        ///< framework provenance id (journal token id)
  std::uint32_t link = UINT32_MAX;
  std::uint64_t push_index = 0;
  sim::SimTime pushed_at = 0;
  sim::SimTime popped_at = 0;
  bool consumed = false;
  TokenId produced_from;        ///< provenance (invalid if unknown)
  bool injected = false;        ///< created by the debugger, not the app
};

/// One data-dependency endpoint of an actor.
struct DConnection {
  std::string actor;  ///< short name
  std::string port;
  bool is_input = false;
  std::string type;
  std::uint32_t link = UINT32_MAX;
  std::uint64_t tokens_seen = 0;  ///< sent (output) or received (input)

  [[nodiscard]] std::string iface() const { return actor + "::" + port; }
};

/// One graph arc, holding the tokens currently in flight.
struct DLink {
  std::uint32_t id = UINT32_MAX;
  std::string name;
  std::string type;
  std::string transport;
  std::string src_actor, src_port, dst_actor, dst_port;
  bool is_control = false;  ///< one end is a controller (Fig. 4 dotted arcs)
  std::deque<TokenId> queue;
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;

  [[nodiscard]] std::string src_iface() const { return src_actor + "::" + src_port; }
  [[nodiscard]] std::string dst_iface() const { return dst_actor + "::" + dst_port; }
};

/// One model actor.
struct DActor {
  std::uint32_t id = UINT32_MAX;
  DActorKind kind = DActorKind::kUnknown;
  std::string name;
  std::string path;
  std::string pe;
  std::string parent_path;
  std::vector<std::uint32_t> in_conns;   ///< indexes into connections()
  std::vector<std::uint32_t> out_conns;
  // scheduling (Contribution #2)
  SchedState sched = SchedState::kNotScheduled;
  std::uint64_t firings = 0;
  std::uint64_t step = 0;          ///< modules: current step number
  int current_line = 0;
  // information flow (Contribution #3)
  ActorBehavior behavior = ActorBehavior::kUnknown;
  TokenId last_token_in;           ///< most recent token consumed
  TokenId last_token_out;          ///< most recent token produced
  std::deque<TokenId> recent_consumed;  ///< bounded provenance window
};

/// The reconstructed application graph plus live token state.
class GraphModel {
 public:
  GraphModel() = default;

  // --- construction from registration events (Contribution #1) -------------

  void on_register_actor(DActorKind kind, std::string name, std::string path, std::string pe,
                         std::string parent, std::uint32_t id);
  void on_register_port(const std::string& actor_path, std::string port, bool is_input,
                        std::string type);
  void on_register_link(std::uint32_t id, std::string name, const std::string& src_actor_path,
                        std::string src_port, const std::string& dst_actor_path,
                        std::string dst_port, std::string type, std::string transport);
  void on_graph_ready();
  [[nodiscard]] bool ready() const { return ready_; }

  // --- updates from runtime events ------------------------------------------

  /// A push completed: creates the token, applies provenance chaining.
  /// Returns the new token's id.
  TokenId on_push(std::uint32_t link, std::uint64_t index, const pedf::Value& value,
                  const std::string& actor_path, sim::SimTime now, bool injected = false,
                  std::uint64_t uid = 0);
  /// A pop completed: marks the head token consumed. Returns its id (invalid
  /// if the model had no token to match, e.g. data hooks were disabled).
  TokenId on_pop(std::uint32_t link, const std::string& actor_path, sim::SimTime now);
  /// The debugger removed queued slot `idx` from `link`.
  void on_remove(std::uint32_t link, std::size_t idx);
  /// The debugger replaced queued slot `idx` of `link`.
  void on_replace(std::uint32_t link, std::size_t idx, const pedf::Value& value);

  void on_work_enter(const std::string& actor_path, std::uint64_t firing);
  void on_work_exit(const std::string& actor_path);
  void on_actor_start(const std::string& filter_path);
  void on_step_begin(const std::string& module_path, std::uint64_t step);
  void on_step_end(const std::string& module_path);
  void on_wait_sync_done(const std::string& module_path);
  void on_filter_line(const std::string& actor_path, int line);

  /// Drops in-flight token mirrors of every link and recreates anonymous
  /// tokens of size `occupancy(link)` — used after data-exchange hooks were
  /// re-enabled (the model may have gone stale while they were off).
  void resync_link(std::uint32_t link, std::size_t occupancy);

  // --- queries ---------------------------------------------------------------

  [[nodiscard]] const std::vector<DActor>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<DConnection>& connections() const { return connections_; }
  [[nodiscard]] const std::vector<DLink>& links() const { return links_; }

  [[nodiscard]] const DActor* actor_by_name(std::string_view name) const;
  [[nodiscard]] const DActor* actor_by_path(std::string_view path) const;
  [[nodiscard]] DActor* actor_by_name_mut(std::string_view name);
  [[nodiscard]] const DLink* link(std::uint32_t id) const;
  /// Connection by "actor::port" (nullptr if unknown).
  [[nodiscard]] const DConnection* connection_by_iface(std::string_view iface) const;
  /// Link whose destination (or source) interface is `iface`.
  [[nodiscard]] const DLink* link_by_iface(std::string_view iface) const;

  [[nodiscard]] const DToken* token(TokenId id) const;
  /// Number of token objects currently retained.
  [[nodiscard]] std::size_t token_count() const { return tokens_.size(); }
  /// Total tokens ever observed (including pruned ones).
  [[nodiscard]] std::uint64_t tokens_observed() const { return tokens_observed_; }
  /// Approximate bytes used by retained token objects.
  [[nodiscard]] std::size_t token_memory_bytes() const;

  /// Provenance chain of `start`, newest first, up to `depth` hops (the
  /// paper's `filter X info last_token` output).
  [[nodiscard]] std::vector<const DToken*> token_path(TokenId start, std::size_t depth) const;

  /// Sets a filter's communication behaviour (CLI `configure splitter`).
  void set_behavior(std::string_view actor_name, ActorBehavior b);

  /// Cap on retained consumed tokens; oldest are pruned beyond it.
  void set_token_history_limit(std::size_t limit) { token_history_limit_ = limit; }
  [[nodiscard]] std::size_t token_history_limit() const { return token_history_limit_; }

  /// Candidate names for CLI auto-completion (actors, interfaces).
  [[nodiscard]] std::vector<std::string> completion_names() const;

  /// Graphviz DOT of the reconstructed graph; if `with_tokens`, arcs are
  /// annotated with their current token counts (the paper's Fig. 4 view).
  [[nodiscard]] std::string to_dot(bool with_tokens) const;

  /// Renders "src -> dst (Type) payload" for a token (transcript format).
  [[nodiscard]] std::string describe_token(TokenId id) const;

 private:
  DActor* actor_by_path_mut(std::string_view path);
  DToken* token_mut(TokenId id);
  void prune_history();

  std::vector<DActor> actors_;
  std::vector<DConnection> connections_;
  std::vector<DLink> links_;
  std::unordered_map<TokenId::value_type, DToken> tokens_;
  std::uint64_t next_token_ = 0;
  std::uint64_t tokens_observed_ = 0;
  std::deque<TokenId> consumed_order_;  ///< pruning order
  std::size_t token_history_limit_ = 1u << 20;
  std::unordered_map<std::string, std::uint32_t> by_name_;
  std::unordered_map<std::string, std::uint32_t> by_path_;
  std::unordered_map<std::string, std::uint32_t> conn_by_iface_;
  bool ready_ = false;
};

}  // namespace dfdbg::dbg

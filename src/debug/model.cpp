#include "dfdbg/debug/model.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg::dbg {

namespace {
constexpr std::size_t kRecentConsumedWindow = 64;
}

const char* to_string(DActorKind k) {
  switch (k) {
    case DActorKind::kFilter: return "filter";
    case DActorKind::kController: return "controller";
    case DActorKind::kModule: return "module";
    case DActorKind::kHostIo: return "host-io";
    case DActorKind::kUnknown: return "?";
  }
  return "?";
}

DActorKind parse_actor_kind(std::string_view s) {
  if (s == "filter") return DActorKind::kFilter;
  if (s == "controller") return DActorKind::kController;
  if (s == "module") return DActorKind::kModule;
  if (s == "host-io") return DActorKind::kHostIo;
  return DActorKind::kUnknown;
}

const char* to_string(ActorBehavior b) {
  switch (b) {
    case ActorBehavior::kUnknown: return "unknown";
    case ActorBehavior::kSplitter: return "splitter";
    case ActorBehavior::kPipeline: return "pipeline";
    case ActorBehavior::kMerger: return "merger";
  }
  return "?";
}

const char* to_string(SchedState s) {
  switch (s) {
    case SchedState::kNotScheduled: return "not-scheduled";
    case SchedState::kScheduled: return "scheduled";
    case SchedState::kRunning: return "running";
    case SchedState::kFinished: return "finished";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Registration (Contribution #1)
// ---------------------------------------------------------------------------

void GraphModel::on_register_actor(DActorKind kind, std::string name, std::string path,
                                   std::string pe, std::string parent, std::uint32_t id) {
  DActor a;
  a.id = id;
  a.kind = kind;
  a.name = std::move(name);
  a.path = std::move(path);
  a.pe = std::move(pe);
  a.parent_path = std::move(parent);
  auto idx = static_cast<std::uint32_t>(actors_.size());
  by_path_[a.path] = idx;
  // Short-name aliases only when unambiguous (mirrors the framework rule).
  auto it = by_name_.find(a.name);
  if (it == by_name_.end())
    by_name_[a.name] = idx;
  else
    it->second = UINT32_MAX;  // ambiguous
  actors_.push_back(std::move(a));
}

void GraphModel::on_register_port(const std::string& actor_path, std::string port, bool is_input,
                                  std::string type) {
  DActor* a = actor_by_path_mut(actor_path);
  if (a == nullptr) return;
  DConnection c;
  c.actor = a->name;
  c.port = std::move(port);
  c.is_input = is_input;
  c.type = std::move(type);
  auto idx = static_cast<std::uint32_t>(connections_.size());
  conn_by_iface_[c.iface()] = idx;
  (is_input ? a->in_conns : a->out_conns).push_back(idx);
  connections_.push_back(std::move(c));
}

void GraphModel::on_register_link(std::uint32_t id, std::string name,
                                  const std::string& src_actor_path, std::string src_port,
                                  const std::string& dst_actor_path, std::string dst_port,
                                  std::string type, std::string transport) {
  DLink l;
  l.id = id;
  l.name = std::move(name);
  l.type = std::move(type);
  l.transport = std::move(transport);
  const DActor* src = actor_by_path(src_actor_path);
  const DActor* dst = actor_by_path(dst_actor_path);
  l.src_actor = src != nullptr ? src->name : src_actor_path;
  l.dst_actor = dst != nullptr ? dst->name : dst_actor_path;
  l.src_port = std::move(src_port);
  l.dst_port = std::move(dst_port);
  l.is_control = (src != nullptr && src->kind == DActorKind::kController) ||
                 (dst != nullptr && dst->kind == DActorKind::kController);
  if (links_.size() <= id) links_.resize(id + 1);
  // Attach the link to its two connections.
  if (auto it = conn_by_iface_.find(l.src_iface()); it != conn_by_iface_.end())
    connections_[it->second].link = id;
  if (auto it = conn_by_iface_.find(l.dst_iface()); it != conn_by_iface_.end())
    connections_[it->second].link = id;
  links_[id] = std::move(l);
}

void GraphModel::on_graph_ready() { ready_ = true; }

// ---------------------------------------------------------------------------
// Runtime updates (Contributions #2 and #3)
// ---------------------------------------------------------------------------

TokenId GraphModel::on_push(std::uint32_t link, std::uint64_t index, const pedf::Value& value,
                            const std::string& actor_path, sim::SimTime now, bool injected,
                            std::uint64_t uid) {
  if (link >= links_.size()) return TokenId{};
  DLink& l = links_[link];
  TokenId id(static_cast<std::uint32_t>(next_token_++));
  DToken t;
  t.id = id;
  t.value = value;
  t.uid = uid;
  t.link = link;
  t.push_index = index;
  t.pushed_at = now;
  t.injected = injected;
  tokens_observed_++;

  // Provenance chaining through the producing actor's declared behaviour.
  DActor* producer = actor_by_path_mut(actor_path);
  if (producer != nullptr) {
    switch (producer->behavior) {
      case ActorBehavior::kSplitter:
      case ActorBehavior::kMerger:
        t.produced_from = producer->last_token_in;
        break;
      case ActorBehavior::kPipeline:
        if (!producer->recent_consumed.empty()) {
          t.produced_from = producer->recent_consumed.front();
          producer->recent_consumed.pop_front();
        }
        break;
      case ActorBehavior::kUnknown:
        break;
    }
    producer->last_token_out = id;
  }

  l.queue.push_back(id);
  l.pushes++;
  if (auto it = conn_by_iface_.find(l.src_iface()); it != conn_by_iface_.end())
    connections_[it->second].tokens_seen++;
  tokens_.emplace(id.value(), std::move(t));
  return id;
}

TokenId GraphModel::on_pop(std::uint32_t link, const std::string& actor_path, sim::SimTime now) {
  if (link >= links_.size()) return TokenId{};
  DLink& l = links_[link];
  l.pops++;
  if (auto it = conn_by_iface_.find(l.dst_iface()); it != conn_by_iface_.end())
    connections_[it->second].tokens_seen++;
  if (l.queue.empty()) return TokenId{};  // stale model (hooks were off)
  TokenId id = l.queue.front();
  l.queue.pop_front();
  if (DToken* t = token_mut(id); t != nullptr) {
    t->consumed = true;
    t->popped_at = now;
  }
  if (DActor* consumer = actor_by_path_mut(actor_path); consumer != nullptr) {
    consumer->last_token_in = id;
    consumer->recent_consumed.push_back(id);
    if (consumer->recent_consumed.size() > kRecentConsumedWindow)
      consumer->recent_consumed.pop_front();
  }
  consumed_order_.push_back(id);
  prune_history();
  return id;
}

void GraphModel::on_remove(std::uint32_t link, std::size_t idx) {
  if (link >= links_.size()) return;
  DLink& l = links_[link];
  if (idx >= l.queue.size()) return;
  TokenId id = l.queue[idx];
  l.queue.erase(l.queue.begin() + static_cast<std::ptrdiff_t>(idx));
  tokens_.erase(id.value());
}

void GraphModel::on_replace(std::uint32_t link, std::size_t idx, const pedf::Value& value) {
  if (link >= links_.size()) return;
  DLink& l = links_[link];
  if (idx >= l.queue.size()) return;
  if (DToken* t = token_mut(l.queue[idx]); t != nullptr) t->value = value;
}

void GraphModel::on_work_enter(const std::string& actor_path, std::uint64_t firing) {
  if (DActor* a = actor_by_path_mut(actor_path); a != nullptr) {
    a->sched = SchedState::kRunning;
    a->firings = firing;
  }
}

void GraphModel::on_work_exit(const std::string& actor_path) {
  if (DActor* a = actor_by_path_mut(actor_path); a != nullptr) a->sched = SchedState::kFinished;
}

void GraphModel::on_actor_start(const std::string& filter_path) {
  if (DActor* a = actor_by_path_mut(filter_path); a != nullptr) a->sched = SchedState::kScheduled;
}

void GraphModel::on_step_begin(const std::string& module_path, std::uint64_t step) {
  if (DActor* a = actor_by_path_mut(module_path); a != nullptr) a->step = step;
}

void GraphModel::on_step_end(const std::string& module_path) {
  DActor* m = actor_by_path_mut(module_path);
  if (m == nullptr) return;
  // A new step starts from a clean scheduling slate.
  for (DActor& a : actors_) {
    if (a.parent_path == m->path && a.kind == DActorKind::kFilter)
      a.sched = SchedState::kNotScheduled;
  }
}

void GraphModel::on_wait_sync_done(const std::string& module_path) { on_step_end(module_path); }

void GraphModel::on_filter_line(const std::string& actor_path, int line) {
  if (DActor* a = actor_by_path_mut(actor_path); a != nullptr) a->current_line = line;
}

void GraphModel::resync_link(std::uint32_t link, std::size_t occupancy) {
  if (link >= links_.size()) return;
  DLink& l = links_[link];
  for (TokenId id : l.queue) tokens_.erase(id.value());
  l.queue.clear();
  for (std::size_t i = 0; i < occupancy; ++i) {
    TokenId id(static_cast<std::uint32_t>(next_token_++));
    DToken t;
    t.id = id;
    t.link = link;
    t.value = pedf::Value{};  // payload unknown: model was stale
    tokens_.emplace(id.value(), std::move(t));
    l.queue.push_back(id);
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

const DActor* GraphModel::actor_by_name(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second == UINT32_MAX) return nullptr;
  return &actors_[it->second];
}

DActor* GraphModel::actor_by_name_mut(std::string_view name) {
  return const_cast<DActor*>(actor_by_name(name));
}

const DActor* GraphModel::actor_by_path(std::string_view path) const {
  auto it = by_path_.find(std::string(path));
  return it == by_path_.end() ? nullptr : &actors_[it->second];
}

DActor* GraphModel::actor_by_path_mut(std::string_view path) {
  return const_cast<DActor*>(actor_by_path(path));
}

const DLink* GraphModel::link(std::uint32_t id) const {
  return id < links_.size() ? &links_[id] : nullptr;
}

const DConnection* GraphModel::connection_by_iface(std::string_view iface) const {
  auto it = conn_by_iface_.find(std::string(iface));
  return it == conn_by_iface_.end() ? nullptr : &connections_[it->second];
}

const DLink* GraphModel::link_by_iface(std::string_view iface) const {
  const DConnection* c = connection_by_iface(iface);
  if (c == nullptr || c->link == UINT32_MAX) return nullptr;
  return link(c->link);
}

const DToken* GraphModel::token(TokenId id) const {
  if (!id.valid()) return nullptr;
  auto it = tokens_.find(id.value());
  return it == tokens_.end() ? nullptr : &it->second;
}

DToken* GraphModel::token_mut(TokenId id) { return const_cast<DToken*>(token(id)); }

std::size_t GraphModel::token_memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, t] : tokens_) bytes += sizeof(DToken) + t.value.type().byte_size();
  return bytes;
}

std::vector<const DToken*> GraphModel::token_path(TokenId start, std::size_t depth) const {
  std::vector<const DToken*> out;
  TokenId cur = start;
  while (cur.valid() && out.size() < depth) {
    const DToken* t = token(cur);
    if (t == nullptr) break;
    out.push_back(t);
    cur = t->produced_from;
  }
  return out;
}

void GraphModel::set_behavior(std::string_view actor_name, ActorBehavior b) {
  DActor* a = actor_by_name_mut(actor_name);
  DFDBG_CHECK_MSG(a != nullptr, "unknown actor: " + std::string(actor_name));
  a->behavior = b;
}

void GraphModel::prune_history() {
  while (consumed_order_.size() > token_history_limit_) {
    TokenId victim = consumed_order_.front();
    consumed_order_.pop_front();
    tokens_.erase(victim.value());
  }
}

std::vector<std::string> GraphModel::completion_names() const {
  std::vector<std::string> out;
  for (const DActor& a : actors_) out.push_back(a.name);
  for (const DConnection& c : connections_) out.push_back(c.iface());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string GraphModel::describe_token(TokenId id) const {
  const DToken* t = token(id);
  if (t == nullptr) return "<pruned token>";
  const DLink* l = link(t->link);
  std::string arrow =
      l != nullptr ? l->src_actor + " -> " + l->dst_actor : std::string("? -> ?");
  return arrow + " " + t->value.to_string();
}

// ---------------------------------------------------------------------------
// DOT rendering (Figs. 2 and 4)
// ---------------------------------------------------------------------------

std::string GraphModel::to_dot(bool with_tokens) const {
  std::ostringstream os;
  os << "digraph app {\n  rankdir=LR;\n  compound=true;\n";
  // Group actors by enclosing module.
  std::map<std::string, std::vector<const DActor*>> by_parent;
  for (const DActor& a : actors_) by_parent[a.parent_path].push_back(&a);

  // Emit module clusters (depth-first over module actors).
  std::function<void(const DActor&, int)> emit_module = [&](const DActor& mod, int depth) {
    std::string ind(static_cast<std::size_t>(depth) * 2, ' ');
    os << ind << "subgraph \"cluster_" << mod.path << "\" {\n";
    os << ind << "  label=\"" << mod.name << "\"; style=dashed;\n";
    auto it = by_parent.find(mod.path);
    if (it != by_parent.end()) {
      for (const DActor* a : it->second) {
        if (a->kind == DActorKind::kModule) {
          emit_module(*a, depth + 1);
        } else if (a->kind == DActorKind::kController) {
          os << ind << "  \"" << a->name
             << "\" [shape=box, style=filled, fillcolor=palegreen];\n";
        } else {
          os << ind << "  \"" << a->name << "\" [shape=ellipse];\n";
        }
      }
    }
    os << ind << "}\n";
  };
  for (const DActor& a : actors_) {
    if (a.kind == DActorKind::kModule && a.parent_path.empty()) emit_module(a, 1);
    if (a.kind == DActorKind::kHostIo) os << "  \"" << a.name << "\" [shape=diamond];\n";
  }
  for (const DLink& l : links_) {
    if (l.id == UINT32_MAX) continue;
    os << "  \"" << l.src_actor << "\" -> \"" << l.dst_actor << "\"";
    std::vector<std::string> attrs;
    if (l.is_control)
      attrs.push_back(l.transport == "DMA" ? "style=dashed" : "style=dotted");
    std::string label = l.src_port;
    if (with_tokens) label += strformat(" [%zu]", l.queue.size());
    attrs.push_back("label=\"" + label + "\"");
    os << " [" << join(attrs, ", ") << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dfdbg::dbg

#include "dfdbg/debug/recording.hpp"

#include "dfdbg/common/strings.hpp"

namespace dfdbg::dbg {

const char* to_string(RecordPolicy p) {
  switch (p) {
    case RecordPolicy::kOff: return "off";
    case RecordPolicy::kBounded: return "bounded";
    case RecordPolicy::kUnbounded: return "unbounded";
  }
  return "?";
}

void TokenRecorder::enable(const std::string& iface, RecordPolicy policy, std::size_t bound) {
  Stream& s = streams_[iface];
  s.policy = policy;
  s.bound = bound;
  if (policy == RecordPolicy::kOff) disable(iface);
}

void TokenRecorder::disable(const std::string& iface) { streams_.erase(iface); }

bool TokenRecorder::enabled(const std::string& iface) const {
  auto it = streams_.find(iface);
  return it != streams_.end() && it->second.policy != RecordPolicy::kOff;
}

void TokenRecorder::on_token(const std::string& iface, std::uint64_t index,
                             const pedf::Value& value, sim::SimTime time, std::uint64_t token) {
  auto it = streams_.find(iface);
  if (it == streams_.end() || it->second.policy == RecordPolicy::kOff) return;
  Stream& s = it->second;
  s.records.push_back(Record{index, value, time, token});
  total_++;
  if (s.policy == RecordPolicy::kBounded && s.records.size() > s.bound) {
    s.records.pop_front();
    s.first_seq++;
  }
}

const std::deque<TokenRecorder::Record>* TokenRecorder::records(const std::string& iface) const {
  auto it = streams_.find(iface);
  return it == streams_.end() ? nullptr : &it->second.records;
}

std::string TokenRecorder::format(const std::string& iface) const {
  auto it = streams_.find(iface);
  if (it == streams_.end()) return "<interface not recorded: " + iface + ">";
  std::string out;
  std::uint64_t seq = it->second.first_seq;
  for (const Record& r : it->second.records) {
    out += strformat("#%llu ", static_cast<unsigned long long>(seq++));
    out += r.value.to_string();
    out += "\n";
  }
  return out;
}

std::size_t TokenRecorder::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [iface, s] : streams_) {
    for (const Record& r : s.records) bytes += sizeof(Record) + r.value.type().byte_size();
  }
  return bytes;
}

}  // namespace dfdbg::dbg

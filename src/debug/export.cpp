#include "dfdbg/debug/export.hpp"

#include <sstream>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::dbg {

namespace {

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strformat("\\u%04x", c);
        else
          out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::string export_state_json(const Session& session) {
  const GraphModel& g = session.graph();
  std::ostringstream js;
  js << "{\n";

  js << "  \"actors\": [\n";
  for (std::size_t i = 0; i < g.actors().size(); ++i) {
    const DActor& a = g.actors()[i];
    js << "    {\"name\": " << jstr(a.name) << ", \"path\": " << jstr(a.path)
       << ", \"kind\": " << jstr(to_string(a.kind)) << ", \"pe\": " << jstr(a.pe)
       << ", \"parent\": " << jstr(a.parent_path)
       << ", \"sched\": " << jstr(to_string(a.sched)) << ", \"firings\": " << a.firings
       << ", \"line\": " << a.current_line
       << ", \"behavior\": " << jstr(to_string(a.behavior)) << "}"
       << (i + 1 < g.actors().size() ? "," : "") << "\n";
  }
  js << "  ],\n";

  js << "  \"connections\": [\n";
  for (std::size_t i = 0; i < g.connections().size(); ++i) {
    const DConnection& c = g.connections()[i];
    js << "    {\"iface\": " << jstr(c.iface()) << ", \"dir\": "
       << (c.is_input ? "\"in\"" : "\"out\"") << ", \"type\": " << jstr(c.type)
       << ", \"link\": " << (c.link == UINT32_MAX ? -1 : static_cast<long>(c.link))
       << ", \"tokens_seen\": " << c.tokens_seen << "}"
       << (i + 1 < g.connections().size() ? "," : "") << "\n";
  }
  js << "  ],\n";

  js << "  \"links\": [\n";
  for (std::size_t i = 0; i < g.links().size(); ++i) {
    const DLink& l = g.links()[i];
    js << "    {\"id\": " << l.id << ", \"src\": " << jstr(l.src_iface())
       << ", \"dst\": " << jstr(l.dst_iface()) << ", \"type\": " << jstr(l.type)
       << ", \"transport\": " << jstr(l.transport)
       << ", \"control\": " << (l.is_control ? "true" : "false")
       << ", \"occupancy\": " << l.queue.size() << ", \"pushes\": " << l.pushes
       << ", \"pops\": " << l.pops << ", \"tokens\": [";
    for (std::size_t t = 0; t < l.queue.size(); ++t) {
      const DToken* tok = g.token(l.queue[t]);
      js << (t ? ", " : "")
         << (tok != nullptr ? jstr(tok->value.to_string()) : jstr("<pruned>"));
    }
    js << "]}" << (i + 1 < g.links().size() ? "," : "") << "\n";
  }
  js << "  ],\n";

  auto bps = session.breakpoints();
  js << "  \"breakpoints\": [\n";
  for (std::size_t i = 0; i < bps.size(); ++i) {
    js << "    {\"id\": " << bps[i].id.value() << ", \"description\": "
       << jstr(bps[i].description) << ", \"enabled\": " << (bps[i].enabled ? "true" : "false")
       << ", \"temporary\": " << (bps[i].temporary ? "true" : "false")
       << ", \"hits\": " << bps[i].hits << "}" << (i + 1 < bps.size() ? "," : "") << "\n";
  }
  js << "  ],\n";

  const auto& hist = session.history();
  js << "  \"stops\": [\n";
  for (std::size_t i = 0; i < hist.size(); ++i) {
    js << "    {\"kind\": " << jstr(to_string(hist[i].kind)) << ", \"time\": " << hist[i].time
       << ", \"actor\": " << jstr(hist[i].actor) << ", \"message\": " << jstr(hist[i].message)
       << "}" << (i + 1 < hist.size() ? "," : "") << "\n";
  }
  js << "  ],\n";

  js << "  \"tokens_observed\": " << g.tokens_observed() << ",\n";
  js << "  \"tokens_retained\": " << g.token_count() << "\n";
  js << "}\n";
  return js.str();
}

}  // namespace dfdbg::dbg

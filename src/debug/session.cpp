#include "dfdbg/debug/session.hpp"

#include <algorithm>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/pedf/symbols.hpp"

namespace dfdbg::dbg {

using sim::ArgValue;
using sim::Frame;

const char* to_string(StopKind k) {
  switch (k) {
    case StopKind::kCatchWork: return "catch-work";
    case StopKind::kTokenReceived: return "token-received";
    case StopKind::kTokenSent: return "token-sent";
    case StopKind::kCatchTokens: return "catch-tokens";
    case StopKind::kTokenContent: return "token-content";
    case StopKind::kStepBegin: return "step-begin";
    case StopKind::kStepEnd: return "step-end";
    case StopKind::kActorScheduled: return "actor-scheduled";
    case StopKind::kSourceLine: return "source-line";
    case StopKind::kWatchpoint: return "watchpoint";
    case StopKind::kTokenProvenance: return "token-provenance";
    case StopKind::kLinkOccupancy: return "link-occupancy";
    case StopKind::kPredicateEval: return "predicate-eval";
    case StopKind::kDeadlock: return "deadlock";
    case StopKind::kFinished: return "finished";
    case StopKind::kTimeLimit: return "time-limit";
  }
  return "?";
}

/// One registered breakpoint-like rule.
struct Session::Rule {
  enum class Type {
    kWork,
    kTokenCounts,
    kReceive,
    kSend,
    kContent,
    kSchedule,
    kStepBegin,
    kStepEnd,
    kLine,
    kWatch,
    kStepBothSend,
    kStepBothRecv,
    kStepBothArm,
    kTokenFrom,
    kOccupancy,
    kPredicate,
    kStepLine,
  };

  BpId id;
  Type type = Type::kWork;
  bool enabled = true;
  bool temporary = false;
  std::uint64_t hits = 0;
  std::string actor;       ///< short name
  std::string actor_path;  ///< resolved hierarchical path
  std::string iface;
  std::uint32_t link = UINT32_MAX;
  bool match_src = false;
  int line = 0;
  struct CountCond {
    std::uint32_t link;
    std::string iface;
    std::uint64_t needed;
    std::uint64_t cur = 0;
  };
  std::vector<CountCond> counts;
  std::function<bool(const pedf::Value&)> pred;
  std::string desc;
  std::string var_kind, var_name;
  pedf::Value last_value;
  bool has_last = false;
  std::string from_actor;        ///< kTokenFrom: provenance source
  std::size_t depth = 8;         ///< kTokenFrom: hop limit
  std::size_t threshold = 0;     ///< kOccupancy
  std::string predicate_name;    ///< kPredicate
  std::uint64_t ignore = 0;      ///< suppress this many further triggers
};

namespace {
std::string bracket(const std::string& body) { return "[" + body + "]"; }
}  // namespace

template <typename F>
void Session::scan_rules(F&& fn) {
  std::vector<BpId> ids;
  ids.reserve(rules_.size());
  for (const auto& r : rules_) ids.push_back(r->id);
  for (BpId id : ids) {
    Rule* r = find_rule(id);
    if (r != nullptr && r->enabled) fn(*r);
  }
}

Session::Session(pedf::Application& app) : app_(app) {}

Session::~Session() {
  if (attached_) detach();
}

// ---------------------------------------------------------------------------
// Attach / detach
// ---------------------------------------------------------------------------

void Session::attach() {
  DFDBG_CHECK_MSG(!attached_, "session already attached");
  auto& port = app_.kernel().instrument();
  port.set_enabled(true);
  install_core_hooks();
  install_data_hooks();
  attached_ = true;
  if (app_.elaborated() && !model_.ready()) app_.replay_registration();
}

void Session::detach() {
  if (!attached_) return;
  auto& port = app_.kernel().instrument();
  for (sim::HookId h : core_hooks_) port.remove_hook(h);
  core_hooks_.clear();
  line_hook_ = sim::HookId{};
  port.remove_hook(push_hook_);
  port.remove_hook(pop_hook_);
  for (sim::HookId h : selective_hooks_) port.remove_hook(h);
  selective_hooks_.clear();
  port.set_enabled(false);
  attached_ = false;
}

void Session::install_core_hooks() {
  auto& port = app_.kernel().instrument();
  const auto& syms = app_.syms();
  auto add = [&](sim::SymbolId sym, sim::Hook hook) {
    core_hooks_.push_back(port.add_enter_hook(sym, std::move(hook)));
  };

  // Contribution #1: graph reconstruction during framework initialization.
  add(syms.register_actor, [this](Frame& f) {
    model_.on_register_actor(parse_actor_kind(f.arg("kind")->str), f.arg("name")->str,
                             f.arg("path")->str, f.arg("pe")->str, f.arg("parent")->str,
                             static_cast<std::uint32_t>(f.arg("id")->u64));
  });
  add(syms.register_port, [this](Frame& f) {
    model_.on_register_port(f.arg("actor")->str, f.arg("port")->str,
                            std::string_view(f.arg("dir")->str) == "in", f.arg("type")->str);
  });
  add(syms.register_link, [this](Frame& f) {
    model_.on_register_link(static_cast<std::uint32_t>(f.arg("link")->u64), f.arg("name")->str,
                            f.arg("src_actor")->str, f.arg("src_port")->str,
                            f.arg("dst_actor")->str, f.arg("dst_port")->str, f.arg("type")->str,
                            f.arg("transport")->str);
  });
  add(syms.graph_ready, [this](Frame&) { model_.on_graph_ready(); });

  // Contribution #2: scheduling monitoring.
  add(syms.work_enter, [this](Frame& f) {
    std::string path = f.arg("actor")->str;
    model_.on_work_enter(path, f.arg("firing")->u64);
    const DActor* a = model_.actor_by_path(path);
    std::string name = a != nullptr ? a->name : path;
    scan_rules([&](Rule& r) {
      if (r.type == Rule::Type::kWork && r.actor_path == path) {
        StopEvent ev;
        ev.kind = StopKind::kCatchWork;
        ev.actor = name;
        ev.message = bracket("Stopped at WORK entry of filter `" + name + "'");
        trigger_stop(std::move(ev), &r);
      }
    });
    sample_watchpoints(path);
  });
  add(syms.work_exit, [this](Frame& f) {
    std::string path = f.arg("actor")->str;
    model_.on_work_exit(path);
    sample_watchpoints(path);
  });
  add(syms.actor_start, [this](Frame& f) {
    std::string path = f.arg("filter")->str;
    model_.on_actor_start(path);
    scan_rules([&](Rule& r) {
      if (r.type == Rule::Type::kSchedule && r.actor_path == path) {
        StopEvent ev;
        ev.kind = StopKind::kActorScheduled;
        ev.actor = f.arg("name")->str;
        ev.message = bracket("Stopped: controller scheduled filter `" + ev.actor +
                             "' for execution (step " +
                             std::to_string(f.arg("step")->u64) + ")");
        trigger_stop(std::move(ev), &r);
      }
    });
  });
  add(syms.step_begin, [this](Frame& f) {
    std::string path = f.arg("module")->str;
    std::uint64_t step = f.arg("step")->u64;
    model_.on_step_begin(path, step);
    scan_rules([&](Rule& r) {
      if (r.type == Rule::Type::kStepBegin && r.actor_path == path) {
        StopEvent ev;
        ev.kind = StopKind::kStepBegin;
        ev.actor = r.actor;
        ev.message = bracket("Stopped at beginning of step " + std::to_string(step) +
                             " of module `" + r.actor + "'");
        trigger_stop(std::move(ev), &r);
      }
    });
  });
  add(syms.step_end, [this](Frame& f) {
    std::string path = f.arg("module")->str;
    std::uint64_t step = f.arg("step")->u64;
    model_.on_step_end(path);
    scan_rules([&](Rule& r) {
      if (r.type == Rule::Type::kStepEnd && r.actor_path == path) {
        StopEvent ev;
        ev.kind = StopKind::kStepEnd;
        ev.actor = r.actor;
        ev.message = bracket("Stopped at end of step " + std::to_string(step) + " of module `" +
                             r.actor + "'");
        trigger_stop(std::move(ev), &r);
      }
    });
  });
  core_hooks_.push_back(port.add_exit_hook(syms.wait_actor_sync, [this](Frame& f) {
    model_.on_wait_sync_done(f.arg("module")->str);
  }));
  core_hooks_.push_back(port.add_exit_hook(syms.predicate_eval, [this](Frame& f) {
    std::string module_path = f.arg("module")->str;
    std::string name = f.arg("name")->str;
    bool result = f.ret() != nullptr && f.ret()->i64 != 0;
    scan_rules([&](Rule& r) {
      if (r.type == Rule::Type::kPredicate && r.actor_path == module_path &&
          r.predicate_name == name) {
        StopEvent ev;
        ev.kind = StopKind::kPredicateEval;
        ev.actor = r.actor;
        ev.message = bracket("Stopped: predicate `" + name + "' of module `" + r.actor +
                             "' evaluated to " + (result ? "true" : "false"));
        trigger_stop(std::move(ev), &r);
      }
    });
  }));

  // Two-level debugging: the source-line hook is installed lazily by
  // ensure_line_hook() — tracking every executed line is exactly the kind
  // of per-statement trap a real debugger only pays for when a line
  // breakpoint or watchpoint exists.
  (void)0;

  // Debugger-initiated alterations are observable events too.
  add(syms.debug_inject, [this](Frame& f) {
    auto link = static_cast<std::uint32_t>(f.arg("link")->u64);
    auto* v = static_cast<const pedf::Value*>(f.arg("value")->ptr);
    pedf::Link* fl = app_.link_by_id(pedf::LinkId(link));
    model_.on_push(link, f.arg("index")->u64, *v, "", app_.kernel().now(), /*injected=*/true,
                   fl != nullptr ? fl->last_pushed_uid() : 0);
  });
  add(syms.debug_remove, [this](Frame& f) {
    model_.on_remove(static_cast<std::uint32_t>(f.arg("link")->u64),
                     static_cast<std::size_t>(f.arg("slot")->u64));
  });
  add(syms.debug_replace, [this](Frame& f) {
    auto* v = static_cast<const pedf::Value*>(f.arg("value")->ptr);
    model_.on_replace(static_cast<std::uint32_t>(f.arg("link")->u64),
                      static_cast<std::size_t>(f.arg("slot")->u64), *v);
  });
}

void Session::ensure_line_hook() {
  if (line_hook_.valid()) return;
  auto& port = app_.kernel().instrument();
  line_hook_ = port.add_enter_hook(app_.syms().filter_line, [this](Frame& f) {
    std::string path = f.arg("actor")->str;
    int line = static_cast<int>(f.arg("line")->i64);
    model_.on_filter_line(path, line);
    scan_rules([&](Rule& r) {
      if (r.type == Rule::Type::kLine && r.actor_path == path && r.line == line) {
        StopEvent ev;
        ev.kind = StopKind::kSourceLine;
        ev.actor = r.actor;
        ev.line = line;
        ev.message = bracket("Breakpoint: filter `" + r.actor + "' at line " +
                             std::to_string(line));
        trigger_stop(std::move(ev), &r);
      } else if (r.type == Rule::Type::kStepLine && r.actor_path == path) {
        StopEvent ev;
        ev.kind = StopKind::kSourceLine;
        ev.actor = r.actor;
        ev.line = line;
        ev.message = bracket("Stepped: filter `" + r.actor + "' now at line " +
                             std::to_string(line));
        trigger_stop(std::move(ev), &r);
      }
    });
    sample_watchpoints(path);
  });
  core_hooks_.push_back(line_hook_);
}

void Session::install_data_hooks() {
  auto& port = app_.kernel().instrument();
  push_hook_ = port.add_exit_hook(app_.syms().link_push,
                                  [this](Frame& f) { handle_push(f); });
  pop_hook_ = port.add_exit_hook(app_.syms().link_pop,
                                 [this](Frame& f) { handle_pop_exit(f); });
}

// ---------------------------------------------------------------------------
// Data-exchange event handling (Contribution #3)
// ---------------------------------------------------------------------------

void Session::handle_push(const Frame& frame) {
  auto link = static_cast<std::uint32_t>(frame.arg("link")->u64);
  const auto* value = static_cast<const pedf::Value*>(frame.arg("value")->ptr);
  std::uint64_t index = frame.ret() != nullptr ? frame.ret()->u64 : frame.arg("index")->u64;
  std::string actor_path = frame.arg("actor")->str;
  sim::SimTime now = app_.kernel().now();

  // The exit hook runs synchronously in the pushing process, before any
  // context switch: the link's last-pushed provenance id still belongs to
  // this very event.
  pedf::Link* fl = app_.link_by_id(pedf::LinkId(link));
  std::uint64_t uid = fl != nullptr ? fl->last_pushed_uid() : 0;
  TokenId tok = model_.on_push(link, index, *value, actor_path, now, /*injected=*/false, uid);
  const DLink* dl = model_.link(link);
  if (dl == nullptr) return;
  recorder_.on_token(dl->src_iface(), index, *value, now, uid);

  scan_rules([&](Rule& r) {
    switch (r.type) {
      case Rule::Type::kSend:
      case Rule::Type::kStepBothSend: {
        if (r.link != link) break;
        StopEvent ev;
        ev.kind = StopKind::kTokenSent;
        ev.actor = dl->src_actor;
        ev.iface = dl->src_iface();
        ev.token = tok;
        ev.message = bracket("Stopped after sending token on `" + dl->src_iface() + "'");
        trigger_stop(std::move(ev), &r);
        break;
      }
      case Rule::Type::kContent: {
        if (r.link != link || !r.match_src) break;
        if (r.pred && r.pred(*value)) {
          StopEvent ev;
          ev.kind = StopKind::kTokenContent;
          ev.actor = dl->src_actor;
          ev.iface = dl->src_iface();
          ev.token = tok;
          ev.message = bracket("Stopped: token on `" + dl->src_iface() + "' matched " + r.desc);
          trigger_stop(std::move(ev), &r);
        }
        break;
      }
      case Rule::Type::kOccupancy: {
        if (r.link != link) break;
        pedf::Link* fl = app_.link_by_id(pedf::LinkId(link));
        if (fl == nullptr || fl->occupancy() < r.threshold) break;
        StopEvent ev;
        ev.kind = StopKind::kLinkOccupancy;
        ev.actor = dl->dst_actor;
        ev.iface = dl->dst_iface();
        ev.token = tok;
        ev.message = bracket(strformat("Stopped: link `%s' holds %zu token(s) (threshold %zu)",
                                       dl->name.c_str(), fl->occupancy(), r.threshold));
        trigger_stop(std::move(ev), &r);
        break;
      }
      case Rule::Type::kStepBothArm: {
        if (r.actor_path != actor_path) break;
        // The armed filter just pushed: this identifies the link. Disable
        // the arm rule, plant the receive end, and report the send stop.
        r.enabled = false;
        auto recv = std::make_unique<Rule>();
        recv->id = BpId(next_bp_++);
        recv->type = Rule::Type::kStepBothRecv;
        recv->temporary = true;
        recv->link = link;
        recv->iface = dl->dst_iface();
        recv->desc = "step_both (receive end) on " + dl->dst_iface();
        rules_.push_back(std::move(recv));
        notes_.push_back(bracket("Temporary breakpoint inserted after input interface `" +
                                 dl->dst_iface() + "'"));
        StopEvent ev;
        ev.kind = StopKind::kTokenSent;
        ev.actor = dl->src_actor;
        ev.iface = dl->src_iface();
        ev.token = tok;
        ev.message = bracket("Stopped after sending token on `" + dl->src_iface() + "'");
        trigger_stop(std::move(ev), &r);
        break;
      }
      default:
        break;
    }
  });
}

void Session::handle_pop_exit(const Frame& frame) {
  auto link = static_cast<std::uint32_t>(frame.arg("link")->u64);
  std::string actor_path = frame.arg("actor")->str;
  sim::SimTime now = app_.kernel().now();
  const auto* value = frame.ret() != nullptr
                          ? static_cast<const pedf::Value*>(frame.ret()->ptr)
                          : nullptr;

  TokenId tok = model_.on_pop(link, actor_path, now);
  const DLink* dl = model_.link(link);
  if (dl == nullptr) return;
  if (value != nullptr) {
    pedf::Link* fl = app_.link_by_id(pedf::LinkId(link));
    recorder_.on_token(dl->dst_iface(), frame.arg("index")->u64, *value, now,
                       fl != nullptr ? fl->last_popped_uid() : 0);
  }

  scan_rules([&](Rule& r) {
    switch (r.type) {
      case Rule::Type::kReceive:
      case Rule::Type::kStepBothRecv: {
        if (r.link != link) break;
        StopEvent ev;
        ev.kind = StopKind::kTokenReceived;
        ev.actor = dl->dst_actor;
        ev.iface = dl->dst_iface();
        ev.token = tok;
        ev.message = bracket("Stopped after receiving token from `" + dl->dst_iface() + "'");
        trigger_stop(std::move(ev), &r);
        break;
      }
      case Rule::Type::kContent: {
        if (r.link != link || r.match_src) break;
        if (value != nullptr && r.pred && r.pred(*value)) {
          StopEvent ev;
          ev.kind = StopKind::kTokenContent;
          ev.actor = dl->dst_actor;
          ev.iface = dl->dst_iface();
          ev.token = tok;
          ev.message =
              bracket("Stopped: token from `" + dl->dst_iface() + "' matched " + r.desc);
          trigger_stop(std::move(ev), &r);
        }
        break;
      }
      case Rule::Type::kTokenFrom: {
        if (r.link != link || !tok.valid()) break;
        // Walk the provenance chain; stop if any ancestor was sent by the
        // watched actor. Skips hop 0 (the received token itself counts too
        // when its own producer matches).
        bool matched = false;
        for (const DToken* t : model_.token_path(tok, r.depth)) {
          const DLink* hop = model_.link(t->link);
          if (hop != nullptr && hop->src_actor == r.from_actor) {
            matched = true;
            break;
          }
        }
        if (!matched) break;
        StopEvent ev;
        ev.kind = StopKind::kTokenProvenance;
        ev.actor = dl->dst_actor;
        ev.iface = dl->dst_iface();
        ev.token = tok;
        ev.message = bracket("Stopped: token received on `" + dl->dst_iface() +
                             "' derives from `" + r.from_actor + "'");
        trigger_stop(std::move(ev), &r);
        break;
      }
      case Rule::Type::kTokenCounts: {
        bool relevant = false;
        for (auto& c : r.counts) {
          if (c.link == link) {
            c.cur++;
            relevant = true;
          }
        }
        if (!relevant) break;
        bool all = std::all_of(r.counts.begin(), r.counts.end(),
                               [](const Rule::CountCond& c) { return c.cur >= c.needed; });
        if (all) {
          std::vector<std::string> parts;
          for (auto& c : r.counts) {
            parts.push_back(c.iface + "=" + std::to_string(c.needed));
            c.cur = 0;  // re-arm
          }
          StopEvent ev;
          ev.kind = StopKind::kCatchTokens;
          ev.actor = r.actor;
          ev.token = tok;
          ev.message = bracket("Stopped: filter `" + r.actor + "' received required tokens (" +
                               join(parts, ", ") + ")");
          trigger_stop(std::move(ev), &r);
        }
        break;
      }
      default:
        break;
    }
  });
}

void Session::sample_watchpoints(const std::string& filter_path) {
  scan_rules([&](Rule& r) {
    if (r.type != Rule::Type::kWatch || r.actor_path != filter_path) return;
    pedf::Filter* f = app_.filter_by_name(r.actor);
    if (f == nullptr) return;
    pedf::Value* v = r.var_kind == "attribute" ? f->attribute(r.var_name) : f->data(r.var_name);
    if (v == nullptr) return;
    if (r.has_last && !(*v == r.last_value)) {
      StopEvent ev;
      ev.kind = StopKind::kWatchpoint;
      ev.actor = r.actor;
      ev.message = bracket("Watchpoint: " + r.actor + "." + r.var_kind + "." + r.var_name +
                           " changed from " + r.last_value.to_string() + " to " +
                           v->to_string());
      r.last_value = *v;
      trigger_stop(std::move(ev), &r);
    } else if (!r.has_last) {
      r.has_last = true;
      r.last_value = *v;
    } else {
      r.last_value = *v;
    }
  });
}

// ---------------------------------------------------------------------------
// Stop machinery
// ---------------------------------------------------------------------------

void Session::trigger_stop(StopEvent ev, Rule* rule) {
  if (rule != nullptr) {
    rule->hits++;
    ev.breakpoint = rule->id;
    if (rule->ignore > 0) {
      rule->ignore--;  // GDB ignore count: counted but not stopped on
      return;
    }
    if (rule->temporary) rule->enabled = false;
  }
  ev.time = app_.kernel().now();
  current_actor_ = ev.actor;
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    if (j.recording()) {
      obs::JournalEvent jev;
      jev.time = ev.time;
      jev.kind = obs::JournalKind::kCatchpoint;
      jev.actor = j.intern_name(ev.actor);
      jev.index = ev.breakpoint.valid() ? ev.breakpoint.value() : 0;
      j.record(jev);
    }
  }
  if (stop_observer_) stop_observer_(ev);
  pending_.push_back(std::move(ev));
  if (app_.kernel().current() != nullptr) app_.kernel().debug_break();
}

RunOutcome Session::run(sim::SimTime until) {
  pending_.clear();
  // Self-profiling: the latency of one run/continue command in host
  // wall-clock nanoseconds and in consumed simulated cycles.
  auto& reg = obs::Registry::global();
  static obs::Histogram& run_wall_ns = reg.histogram("dbg.run_wall_ns");
  static obs::Histogram& run_cycles = reg.histogram("dbg.run_cycles");
  static obs::Counter& runs = reg.counter("dbg.run");
  static obs::Counter& stops = reg.counter("dbg.stop");
  runs.add();
  obs::ScopedTimer wall(run_wall_ns);
  obs::ScopedDelta cycles(run_cycles, [this] { return app_.kernel().now(); });
  sim::RunResult r = app_.kernel().run(until);
  stops.add(pending_.size());
  RunOutcome out;
  out.result = r;
  switch (r) {
    case sim::RunResult::kStopped:
      out.stops = std::move(pending_);
      pending_.clear();
      break;
    case sim::RunResult::kDeadlock: {
      StopEvent ev;
      ev.kind = StopKind::kDeadlock;
      ev.time = app_.kernel().now();
      std::vector<std::string> blocked;
      for (const pedf::Actor* a : app_.actors()) {
        const pedf::BlockInfo& b = a->blocked();
        if (b.kind == pedf::BlockInfo::Kind::kLinkEmpty && b.link != nullptr)
          blocked.push_back(a->name() + " waiting for data on `" + b.link->name() + "'");
        else if (b.kind == pedf::BlockInfo::Kind::kLinkFull && b.link != nullptr)
          blocked.push_back(a->name() + " waiting for space on `" + b.link->name() + "'");
        else if (b.kind == pedf::BlockInfo::Kind::kStep)
          blocked.push_back(a->name() + " waiting for step completion");
      }
      ev.message = bracket("Deadlock detected: " +
                           (blocked.empty() ? std::string("no runnable process")
                                            : join(blocked, "; ")));
      out.stops.push_back(std::move(ev));
      break;
    }
    case sim::RunResult::kFinished: {
      StopEvent ev;
      ev.kind = StopKind::kFinished;
      ev.time = app_.kernel().now();
      ev.message = bracket("Application finished");
      out.stops.push_back(std::move(ev));
      break;
    }
    case sim::RunResult::kTimeLimit: {
      StopEvent ev;
      ev.kind = StopKind::kTimeLimit;
      ev.time = app_.kernel().now();
      ev.message = bracket("Simulated time limit reached");
      out.stops.push_back(std::move(ev));
      break;
    }
  }
  // Catchpoint/breakpoint stops were observed from trigger_stop() as they
  // fired; the synthesized terminal stops are observed here.
  if (r != sim::RunResult::kStopped && stop_observer_)
    for (const StopEvent& ev : out.stops) stop_observer_(ev);
  history_.insert(history_.end(), out.stops.begin(), out.stops.end());
  return out;
}

std::vector<std::string> Session::take_notes() {
  std::vector<std::string> out = std::move(notes_);
  notes_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Breakpoint registration
// ---------------------------------------------------------------------------

namespace {
Status unknown_filter(const std::string& name) {
  return Status::error(ErrCode::kNotFound, "no such filter: " + name);
}
}  // namespace

Result<BpId> Session::catch_work(const std::string& filter) {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return unknown_filter(filter);
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kWork;
  r->actor = filter;
  r->actor_path = a->path;
  r->desc = "filter " + filter + " catch work";
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::catch_tokens(
    const std::string& filter, std::vector<std::pair<std::string, std::uint64_t>> port_counts) {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return unknown_filter(filter);
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kTokenCounts;
  r->actor = filter;
  r->actor_path = a->path;
  std::vector<std::string> parts;
  for (auto& [port, count] : port_counts) {
    std::string iface = filter + "::" + port;
    const DConnection* c = model_.connection_by_iface(iface);
    if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
    if (!c->is_input) return Status::error(ErrCode::kInvalidArgument, iface + " is not an inbound interface");
    if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, iface + " is not bound to a link");
    // Stop messages use the bare port name, matching the command syntax.
    r->counts.push_back(Rule::CountCond{c->link, port, count});
    parts.push_back(port + "=" + std::to_string(count));
  }
  if (r->counts.empty()) return Status::error(ErrCode::kInvalidArgument, "catch condition lists no interfaces");
  r->desc = "filter " + filter + " catch " + join(parts, ",");
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::catch_all_inputs(const std::string& filter, std::uint64_t count) {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return unknown_filter(filter);
  std::vector<std::pair<std::string, std::uint64_t>> ports;
  for (std::uint32_t ci : a->in_conns) {
    const DConnection& c = model_.connections()[ci];
    if (c.link == UINT32_MAX) continue;
    ports.emplace_back(c.port, count);
  }
  if (ports.empty()) return Status::error(ErrCode::kFailedPrecondition, "filter " + filter + " has no bound inputs");
  return catch_tokens(filter, std::move(ports));
}

Result<BpId> Session::break_on_receive(const std::string& iface) {
  const DConnection* c = model_.connection_by_iface(iface);
  if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
  if (!c->is_input) return Status::error(ErrCode::kInvalidArgument, iface + " is not an inbound interface");
  if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, iface + " is not bound to a link");
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kReceive;
  r->actor = c->actor;
  r->iface = iface;
  r->link = c->link;
  r->desc = "stop after receive on " + iface;
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::break_on_send(const std::string& iface) {
  const DConnection* c = model_.connection_by_iface(iface);
  if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
  if (c->is_input) return Status::error(ErrCode::kInvalidArgument, iface + " is not an outbound interface");
  if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, iface + " is not bound to a link");
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kSend;
  r->actor = c->actor;
  r->iface = iface;
  r->link = c->link;
  r->desc = "stop after send on " + iface;
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::catch_token_content(const std::string& iface,
                                          std::function<bool(const pedf::Value&)> pred,
                                          std::string description) {
  const DConnection* c = model_.connection_by_iface(iface);
  if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
  if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, iface + " is not bound to a link");
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kContent;
  r->actor = c->actor;
  r->iface = iface;
  r->link = c->link;
  r->match_src = !c->is_input;
  r->pred = std::move(pred);
  r->desc = std::move(description);
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::catch_token_from(const std::string& iface, const std::string& src_actor,
                                       std::size_t depth) {
  const DConnection* c = model_.connection_by_iface(iface);
  if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
  if (!c->is_input) return Status::error(ErrCode::kInvalidArgument, iface + " is not an inbound interface");
  if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, iface + " is not bound to a link");
  if (model_.actor_by_name(src_actor) == nullptr)
    return Status::error(ErrCode::kNotFound, "no such actor: " + src_actor);
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kTokenFrom;
  r->actor = c->actor;
  r->iface = iface;
  r->link = c->link;
  r->from_actor = src_actor;
  r->depth = depth;
  r->desc = "stop when " + iface + " receives a token derived from " + src_actor;
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::break_on_occupancy(const std::string& iface, std::size_t threshold) {
  const DLink* dl = model_.link_by_iface(iface);
  if (dl == nullptr) return Status::error(ErrCode::kNotFound, "no link on interface: " + iface);
  if (threshold == 0) return Status::error(ErrCode::kInvalidArgument, "occupancy threshold must be >= 1");
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kOccupancy;
  r->actor = dl->dst_actor;
  r->iface = iface;
  r->link = dl->id;
  r->threshold = threshold;
  r->desc = strformat("stop when `%s' holds >= %zu tokens", dl->name.c_str(), threshold);
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::break_on_predicate(const std::string& module,
                                         const std::string& predicate) {
  const DActor* a = model_.actor_by_name(module);
  if (a == nullptr) a = model_.actor_by_path(module);
  if (a == nullptr || a->kind != DActorKind::kModule)
    return Status::error(ErrCode::kNotFound, "no such module: " + module);
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kPredicate;
  r->actor = a->name;
  r->actor_path = a->path;
  r->predicate_name = predicate;
  r->desc = "stop when predicate " + module + "::" + predicate + " is evaluated";
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::break_on_schedule(const std::string& filter) {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return unknown_filter(filter);
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kSchedule;
  r->actor = filter;
  r->actor_path = a->path;
  r->desc = "stop when controller schedules " + filter;
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::break_on_step(const std::string& module, bool at_end) {
  const DActor* a = model_.actor_by_name(module);
  if (a == nullptr) a = model_.actor_by_path(module);
  if (a == nullptr || a->kind != DActorKind::kModule)
    return Status::error(ErrCode::kNotFound, "no such module: " + module);
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = at_end ? Rule::Type::kStepEnd : Rule::Type::kStepBegin;
  r->actor = a->name;
  r->actor_path = a->path;
  r->desc = std::string("stop at step ") + (at_end ? "end" : "begin") + " of " + a->name;
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::break_source_line(const std::string& filter, int line) {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return unknown_filter(filter);
  ensure_line_hook();
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kLine;
  r->actor = filter;
  r->actor_path = a->path;
  r->line = line;
  r->desc = "breakpoint at " + filter + ":" + std::to_string(line);
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Result<BpId> Session::watch_variable(const std::string& filter, const std::string& kind,
                                     const std::string& name) {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return unknown_filter(filter);
  if (kind != "data" && kind != "attribute")
    return Status::error(ErrCode::kInvalidArgument, "watch kind must be 'data' or 'attribute'");
  pedf::Filter* f = app_.filter_by_name(filter);
  if (f == nullptr) return unknown_filter(filter);
  pedf::Value* v = kind == "attribute" ? f->attribute(name) : f->data(name);
  if (v == nullptr) return Status::error(ErrCode::kNotFound, filter + " has no " + kind + " '" + name + "'");
  ensure_line_hook();  // watchpoints sample at line markers too
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kWatch;
  r->actor = filter;
  r->actor_path = a->path;
  r->var_kind = kind;
  r->var_name = name;
  r->has_last = true;
  r->last_value = *v;
  r->desc = "watch " + filter + "." + kind + "." + name;
  BpId id = r->id;
  rules_.push_back(std::move(r));
  return id;
}

Session::Rule* Session::find_rule(BpId id) {
  for (auto& r : rules_)
    if (r->id == id) return r.get();
  return nullptr;
}

Status Session::delete_breakpoint(BpId id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->id == id) {
      rules_.erase(it);
      return Status{};
    }
  }
  return Status::error(ErrCode::kNotFound, "no such breakpoint: " + std::to_string(id.value()));
}

Status Session::set_breakpoint_enabled(BpId id, bool enabled) {
  Rule* r = find_rule(id);
  if (r == nullptr) return Status::error(ErrCode::kNotFound, "no such breakpoint: " + std::to_string(id.value()));
  r->enabled = enabled;
  return Status{};
}

Status Session::set_breakpoint_ignore(BpId id, std::uint64_t count) {
  Rule* r = find_rule(id);
  if (r == nullptr) return Status::error(ErrCode::kNotFound, "no such breakpoint: " + std::to_string(id.value()));
  r->ignore = count;
  return Status{};
}

std::vector<BreakpointInfo> Session::breakpoints() const {
  std::vector<BreakpointInfo> out;
  for (const auto& r : rules_) {
    BreakpointInfo info;
    info.id = r->id;
    info.description = r->desc;
    info.enabled = r->enabled;
    info.temporary = r->temporary;
    info.hits = r->hits;
    out.push_back(std::move(info));
  }
  return out;
}

// ---------------------------------------------------------------------------
// step_both
// ---------------------------------------------------------------------------

Status Session::step_both_iface(const std::string& out_iface) {
  const DConnection* c = model_.connection_by_iface(out_iface);
  if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + out_iface);
  if (c->is_input) return Status::error(ErrCode::kInvalidArgument, out_iface + " is not an outbound interface");
  if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, out_iface + " is not bound to a link");
  const DLink* dl = model_.link(c->link);
  DFDBG_CHECK(dl != nullptr);

  auto recv = std::make_unique<Rule>();
  recv->id = BpId(next_bp_++);
  recv->type = Rule::Type::kStepBothRecv;
  recv->temporary = true;
  recv->link = c->link;
  recv->iface = dl->dst_iface();
  recv->desc = "step_both (receive end) on " + dl->dst_iface();
  rules_.push_back(std::move(recv));
  notes_.push_back(
      bracket("Temporary breakpoint inserted after input interface `" + dl->dst_iface() + "'"));

  auto send = std::make_unique<Rule>();
  send->id = BpId(next_bp_++);
  send->type = Rule::Type::kStepBothSend;
  send->temporary = true;
  send->link = c->link;
  send->iface = out_iface;
  send->desc = "step_both (send end) on " + out_iface;
  rules_.push_back(std::move(send));
  notes_.push_back(
      bracket("Temporary breakpoint inserted after output interface `" + out_iface + "'"));
  return Status{};
}

Status Session::step_both() {
  if (current_actor_.empty())
    return Status::error(ErrCode::kFailedPrecondition, "step_both: no current filter (execution never stopped)");
  const DActor* a = model_.actor_by_name(current_actor_);
  if (a == nullptr) return Status::error(ErrCode::kNotFound, "step_both: unknown current actor " + current_actor_);
  auto arm = std::make_unique<Rule>();
  arm->id = BpId(next_bp_++);
  arm->type = Rule::Type::kStepBothArm;
  arm->temporary = true;
  arm->actor = a->name;
  arm->actor_path = a->path;
  arm->desc = "step_both (arming next send of " + a->name + ")";
  rules_.push_back(std::move(arm));
  notes_.push_back(bracket("step_both armed on next dataflow assignment of `" + a->name + "'"));
  return Status{};
}

Status Session::step_line() {
  if (current_actor_.empty())
    return Status::error(ErrCode::kFailedPrecondition, "step: no current filter (execution never stopped)");
  const DActor* a = model_.actor_by_name(current_actor_);
  if (a == nullptr) return Status::error(ErrCode::kNotFound, "step: unknown current actor " + current_actor_);
  ensure_line_hook();
  auto r = std::make_unique<Rule>();
  r->id = BpId(next_bp_++);
  r->type = Rule::Type::kStepLine;
  r->temporary = true;
  r->actor = a->name;
  r->actor_path = a->path;
  r->desc = "single step in " + a->name;
  rules_.push_back(std::move(r));
  return Status{};
}

// ---------------------------------------------------------------------------
// State inspection
// ---------------------------------------------------------------------------

const DToken* Session::last_token(const std::string& filter) const {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return nullptr;
  return model_.token(a->last_token_in);
}

// The structured view builders (links_view, filter_view, whence_chain, ...)
// live in views.cpp; the deprecated string-rendered shims (info_links,
// whence, ...) are defined with the text renderers in src/dbgcli/render.cpp.

Status Session::configure_behavior(const std::string& filter, ActorBehavior behavior) {
  DActor* a = model_.actor_by_name_mut(filter);
  if (a == nullptr) return unknown_filter(filter);
  a->behavior = behavior;
  return Status{};
}

Status Session::record_iface(const std::string& iface, RecordPolicy policy, std::size_t bound) {
  const DConnection* c = model_.connection_by_iface(iface);
  if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
  recorder_.enable(iface, policy, bound);
  return Status{};
}

std::string Session::print_recorded(const std::string& iface) const {
  return recorder_.format(iface);
}

// ---------------------------------------------------------------------------
// Alteration
// ---------------------------------------------------------------------------

Result<const DLink*> Session::resolve_link(const std::string& iface) const {
  const DLink* dl = model_.link_by_iface(iface);
  if (dl == nullptr) return Status::error(ErrCode::kNotFound, "no link on interface: " + iface);
  return dl;
}

pedf::Link* Session::framework_link(const DLink& dl) const {
  return app_.link_by_id(pedf::LinkId(dl.id));
}

Status Session::inject_token(const std::string& iface, pedf::Value v) {
  if (app_.kernel().current() != nullptr)
    return Status::error(ErrCode::kFailedPrecondition, "inject_token only while the execution is stopped");
  auto dl = resolve_link(iface);
  if (!dl.ok()) return dl.status();
  pedf::Link* fl = framework_link(**dl);
  DFDBG_CHECK(fl != nullptr);
  if (!(v.type() == fl->type()))
    return Status::error(ErrCode::kFailedPrecondition, "token type " + v.type().name() + " does not match link type " +
                         fl->type().name());
  if (fl->full()) return Status::error(ErrCode::kFailedPrecondition, "link is full: " + fl->name());
  app_.debug_inject(*fl, std::move(v));
  return Status{};
}

Status Session::remove_token(const std::string& iface, std::size_t idx) {
  if (app_.kernel().current() != nullptr)
    return Status::error(ErrCode::kFailedPrecondition, "remove_token only while the execution is stopped");
  auto dl = resolve_link(iface);
  if (!dl.ok()) return dl.status();
  pedf::Link* fl = framework_link(**dl);
  DFDBG_CHECK(fl != nullptr);
  if (idx >= fl->occupancy())
    return Status::error(ErrCode::kOutOfRange, strformat("link holds %zu token(s), cannot remove slot %zu",
                                   fl->occupancy(), idx));
  app_.debug_remove(*fl, idx);
  return Status{};
}

Status Session::replace_token(const std::string& iface, std::size_t idx, pedf::Value v) {
  if (app_.kernel().current() != nullptr)
    return Status::error(ErrCode::kFailedPrecondition, "replace_token only while the execution is stopped");
  auto dl = resolve_link(iface);
  if (!dl.ok()) return dl.status();
  pedf::Link* fl = framework_link(**dl);
  DFDBG_CHECK(fl != nullptr);
  if (idx >= fl->occupancy())
    return Status::error(ErrCode::kOutOfRange, strformat("link holds %zu token(s), cannot replace slot %zu",
                                   fl->occupancy(), idx));
  if (!(v.type() == fl->type()))
    return Status::error(ErrCode::kFailedPrecondition, "token type " + v.type().name() + " does not match link type " +
                         fl->type().name());
  app_.debug_replace(*fl, idx, std::move(v));
  return Status{};
}

// ---------------------------------------------------------------------------
// Intrusiveness controls
// ---------------------------------------------------------------------------

void Session::resync_all_links() {
  for (const auto& l : app_.links()) model_.resync_link(l->id().value(), l->occupancy());
}

void Session::set_data_exchange_hooks(bool enabled) {
  if (enabled == data_hooks_enabled_) return;
  auto& port = app_.kernel().instrument();
  if (enabled) {
    install_data_hooks();
    data_hooks_enabled_ = true;
    resync_all_links();  // the mirror went stale while off
  } else {
    // Like GDB removing the trap instruction: the framework's fast path
    // sees the symbol as unarmed and pays a single branch per exchange.
    port.remove_hook(push_hook_);
    port.remove_hook(pop_hook_);
    push_hook_ = sim::HookId{};
    pop_hook_ = sim::HookId{};
    data_hooks_enabled_ = false;
  }
}

Status Session::use_selective_data_hooks(const std::vector<std::string>& ifaces) {
  auto& port = app_.kernel().instrument();
  clear_selective_data_hooks();
  for (const std::string& iface : ifaces) {
    const DConnection* c = model_.connection_by_iface(iface);
    if (c == nullptr) return Status::error(ErrCode::kNotFound, "no such interface: " + iface);
    if (c->link == UINT32_MAX) return Status::error(ErrCode::kInvalidArgument, iface + " is not bound to a link");
    const pedf::LinkSymbols& ls = app_.link_syms(pedf::LinkId(c->link));
    if (c->is_input) {
      selective_hooks_.push_back(
          port.add_exit_hook(ls.pop_iface, [this](Frame& f) { handle_pop_exit(f); }));
    } else {
      selective_hooks_.push_back(
          port.add_exit_hook(ls.push_iface, [this](Frame& f) { handle_push(f); }));
    }
  }
  // Remove the global data-exchange breakpoints; the framework starts
  // reporting per-interface instance symbols instead, and only the chosen
  // interfaces are armed.
  if (data_hooks_enabled_) {
    port.remove_hook(push_hook_);
    port.remove_hook(pop_hook_);
    push_hook_ = sim::HookId{};
    pop_hook_ = sim::HookId{};
    data_hooks_enabled_ = false;
  }
  selective_ = true;
  app_.set_cooperation(true);
  return Status{};
}

void Session::clear_selective_data_hooks() {
  if (!selective_) return;
  auto& port = app_.kernel().instrument();
  for (sim::HookId h : selective_hooks_) port.remove_hook(h);
  selective_hooks_.clear();
  app_.set_cooperation(false);
  selective_ = false;
  install_data_hooks();
  data_hooks_enabled_ = true;
  resync_all_links();
}

// ---------------------------------------------------------------------------
// Two-level debugging
// ---------------------------------------------------------------------------

std::string Session::list_source(const std::string& filter, int line, int context) const {
  pedf::Filter* f = app_.filter_by_name(filter);
  if (f == nullptr) return "<no such filter: " + filter + ">";
  const auto& lines = f->source_lines();
  if (lines.empty()) return "<no source registered for filter " + filter + ">";
  int first = f->source_first_line();
  int lo = line == 0 ? first : std::max(first, line - context);
  int hi = line == 0 ? first + static_cast<int>(lines.size()) - 1
                     : std::min(first + static_cast<int>(lines.size()) - 1, line + context);
  std::string out;
  for (int n = lo; n <= hi; ++n) {
    out += strformat("%d\t%s\n", n, lines[static_cast<std::size_t>(n - first)].c_str());
  }
  return out;
}

Result<pedf::Value> Session::read_variable(const std::string& filter, const std::string& kind,
                                           const std::string& name) const {
  pedf::Filter* f = app_.filter_by_name(filter);
  if (f == nullptr) return Status::error(ErrCode::kNotFound, "no such filter: " + filter);
  pedf::Value* v = kind == "attribute" ? f->attribute(name) : f->data(name);
  if (v == nullptr) return Status::error(ErrCode::kNotFound, filter + " has no " + kind + " '" + name + "'");
  return *v;
}

int Session::store_value(pedf::Value v) {
  value_history_.push_back(std::move(v));
  return static_cast<int>(value_history_.size());
}

Result<pedf::Value> Session::value_history(int n) const {
  if (n < 1 || static_cast<std::size_t>(n) > value_history_.size())
    return Status::error(ErrCode::kNotFound, "no value history entry $" + std::to_string(n));
  return value_history_[static_cast<std::size_t>(n - 1)];
}

}  // namespace dfdbg::dbg

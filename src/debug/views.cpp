// Builders for the structured inspection views (dfdbg/debug/views.hpp) and
// their one JSON serialization. The legacy string-returning Session queries
// are thin wrappers over these builders, defined with the text renderers in
// src/dbgcli/render.cpp.
#include "dfdbg/debug/views.hpp"

#include "dfdbg/common/strings.hpp"
#include "dfdbg/debug/session.hpp"

namespace dfdbg::dbg {

namespace {

Status no_such_filter(const std::string& filter) {
  return Status::error(ErrCode::kNotFound, "no such filter: " + filter);
}

Status no_link_on_iface(const std::string& iface) {
  return Status::error(ErrCode::kNotFound, "no link on interface: " + iface);
}

TokenHop make_hop(const GraphModel& model, const DToken& t) {
  TokenHop hop;
  hop.uid = t.uid;
  hop.desc = model.describe_token(t.id);
  hop.pushed_at = t.pushed_at;
  hop.injected = t.injected;
  return hop;
}

}  // namespace

const char* to_string(FilterView::Blocked b) {
  switch (b) {
    case FilterView::Blocked::kNone: return "none";
    case FilterView::Blocked::kLinkEmpty: return "link-empty";
    case FilterView::Blocked::kLinkFull: return "link-full";
    case FilterView::Blocked::kStart: return "start";
    case FilterView::Blocked::kStep: return "step";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Session view builders
// ---------------------------------------------------------------------------

LinkView Session::links_view() const {
  LinkView v;
  v.links.reserve(app_.links().size());
  for (const auto& l : app_.links()) {
    LinkRow row;
    row.name = l->name();
    row.occupancy = l->occupancy();
    row.pushes = l->push_index();
    row.pops = l->pop_index();
    row.high_watermark = l->high_watermark();
    row.transport = to_string(l->transport());
    v.links.push_back(std::move(row));
  }
  return v;
}

Result<FilterView> Session::filter_view(const std::string& filter) const {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return no_such_filter(filter);
  FilterView v;
  v.name = a->name;
  v.path = a->path;
  v.state = to_string(a->sched);
  v.firings = a->firings;
  v.line = a->current_line;
  v.pe = a->pe;
  v.behavior = to_string(a->behavior);
  const pedf::Actor* fa = app_.actor_by_name(filter);
  if (fa != nullptr) {
    v.has_blocked = true;
    const pedf::BlockInfo& b = fa->blocked();
    switch (b.kind) {
      case pedf::BlockInfo::Kind::kNone: v.blocked = FilterView::Blocked::kNone; break;
      case pedf::BlockInfo::Kind::kLinkEmpty:
        v.blocked = FilterView::Blocked::kLinkEmpty;
        v.blocked_link = b.link->name();
        break;
      case pedf::BlockInfo::Kind::kLinkFull:
        v.blocked = FilterView::Blocked::kLinkFull;
        v.blocked_link = b.link->name();
        break;
      case pedf::BlockInfo::Kind::kStart: v.blocked = FilterView::Blocked::kStart; break;
      case pedf::BlockInfo::Kind::kStep: v.blocked = FilterView::Blocked::kStep; break;
    }
  }
  return v;
}

Result<SchedView> Session::sched_view(const std::string& module) const {
  const DActor* m = model_.actor_by_name(module);
  if (m == nullptr) m = model_.actor_by_path(module);
  if (m == nullptr || m->kind != DActorKind::kModule)
    return Status::error(ErrCode::kNotFound, "no such module: " + module);
  SchedView v;
  v.module = m->name;
  v.step = m->step;
  v.backend = sim::to_string(app_.kernel().backend());
  v.workers = app_.kernel().partition_count();
  for (const DActor& a : model_.actors()) {
    if (a.parent_path != m->path || a.kind != DActorKind::kFilter) continue;
    v.rows.push_back(SchedRow{a.name, to_string(a.sched), a.firings});
  }
  return v;
}

Result<TokenView> Session::last_token_view(const std::string& filter, std::size_t depth) const {
  const DActor* a = model_.actor_by_name(filter);
  if (a == nullptr) return no_such_filter(filter);
  if (!a->last_token_in.valid())
    return Status::error(ErrCode::kFailedPrecondition,
                         "filter " + filter + " has not received any token");
  TokenView v;
  v.filter = filter;
  for (const DToken* t : model_.token_path(a->last_token_in, depth))
    v.hops.push_back(make_hop(model_, *t));
  return v;
}

Result<WhenceChain> Session::whence_chain(const std::string& iface, std::size_t slot,
                                          std::size_t depth) const {
  const DLink* dl = model_.link_by_iface(iface);
  if (dl == nullptr) return no_link_on_iface(iface);
  if (slot >= dl->queue.size())
    return Status::error(ErrCode::kOutOfRange,
                         strformat("link `%s' holds %zu token(s), no slot %zu", dl->name.c_str(),
                                   dl->queue.size(), slot));
  auto path = model_.token_path(dl->queue[slot], depth);
  if (path.empty())
    return Status::error(ErrCode::kNotFound,
                         "token in slot " + std::to_string(slot) + " was pruned");
  WhenceChain v;
  v.link = dl->name;
  v.slot = slot;
  v.depth = depth;
  for (const DToken* t : path) v.hops.push_back(make_hop(model_, *t));
  v.truncated = path.size() == depth && path.back()->produced_from.valid();
  const DToken* root = path.back();
  if (!root->produced_from.valid()) {
    v.has_source = true;
    const DLink* rl = model_.link(root->link);
    v.source_actor = rl != nullptr ? rl->src_actor : std::string("?");
    v.source_injected = root->injected;
  }
  return v;
}

Result<LinkTokensView> Session::link_tokens_view(const std::string& iface) const {
  const DLink* dl = model_.link_by_iface(iface);
  if (dl == nullptr) return no_link_on_iface(iface);
  LinkTokensView v;
  v.link = dl->name;
  std::size_t slot = 0;
  for (TokenId id : dl->queue) {
    LinkTokenRow row;
    row.slot = slot++;
    const DToken* t = model_.token(id);
    if (t != nullptr) {
      row.value = t->value.to_string();
      row.pushed_at = t->pushed_at;
      row.injected = t->injected;
    } else {
      row.pruned = true;
    }
    v.tokens.push_back(std::move(row));
  }
  return v;
}

ProfileSnapshot Session::profile_snapshot() const {
  ProfileSnapshot v;
  v.now = app_.kernel().now();
  v.dispatches = app_.kernel().dispatch_count();
  for (const pedf::Actor* a : app_.actors()) {
    if (a->kind() == pedf::ActorKind::kModule) continue;
    const sim::Process* proc = app_.kernel().process_by_name(a->path());
    ProfileRow row;
    row.path = a->path();
    row.pe = a->pe() != nullptr ? a->pe()->name() : std::string("-");
    if (a->kind() == pedf::ActorKind::kFilter || a->kind() == pedf::ActorKind::kHostIo)
      row.firings = static_cast<const pedf::Filter*>(a)->firings();
    row.cycles = proc != nullptr ? proc->consumed_time() : 0;
    row.activations = proc != nullptr ? proc->activation_count() : 0;
    v.rows.push_back(std::move(row));
  }
  return v;
}

ShardProfileView Session::shard_profile() const {
  const sim::Kernel& k = app_.kernel();
  ShardProfileView v;
  v.backend = sim::to_string(k.backend());
  v.workers = k.partition_count();
  v.rounds = k.round_count();
  v.elided_rounds = k.elided_round_count();
  v.records = k.round_records().size();
  for (const sim::BarrierRoundRecord& r : k.round_records())
    if (r.boundary_hwm > v.boundary_hwm) v.boundary_hwm = r.boundary_hwm;
  if (!k.parallel()) return v;
  for (int p = 0; p < v.workers; ++p) {
    sim::Kernel::ShardTotals t = k.shard_totals(p);
    ShardRow row;
    row.partition = p;
    row.dispatches = t.dispatches;
    row.stalled_rounds = t.stalled_rounds;
    row.work_ns = t.work_ns;
    row.barrier_wait_ns = t.barrier_wait_ns;
    row.drain_ns = t.drain_ns;
    row.idle_ns = t.idle_ns;
    row.skipped_wakes = t.skipped_wakes;
    row.eager_drained = t.eager_drained;
    const std::uint64_t total = t.work_ns + t.barrier_wait_ns + t.drain_ns + t.idle_ns;
    if (total > 0)
      row.utilization = static_cast<double>(t.work_ns) / static_cast<double>(total);
    v.rows.push_back(row);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Wire encoding (the one serializer; schemas in docs/PROTOCOL.md)
// ---------------------------------------------------------------------------

namespace {

void hops_to_json(JsonWriter& w, const std::vector<TokenHop>& hops) {
  w.key("hops").begin_array();
  for (const TokenHop& h : hops) {
    w.begin_object()
        .kv("uid", h.uid)
        .kv("desc", h.desc)
        .kv("pushed_at", static_cast<std::uint64_t>(h.pushed_at))
        .kv("injected", h.injected)
        .end_object();
  }
  w.end_array();
}

}  // namespace

void to_json(JsonWriter& w, const LinkView& v) {
  w.begin_object().key("links").begin_array();
  for (const LinkRow& l : v.links) {
    w.begin_object()
        .kv("name", l.name)
        .kv("occupancy", static_cast<std::uint64_t>(l.occupancy))
        .kv("pushes", l.pushes)
        .kv("pops", l.pops)
        .kv("hwm", static_cast<std::uint64_t>(l.high_watermark))
        .kv("transport", l.transport)
        .end_object();
  }
  w.end_array().end_object();
}

void to_json(JsonWriter& w, const FilterView& v) {
  w.begin_object()
      .kv("name", v.name)
      .kv("path", v.path)
      .kv("state", v.state)
      .kv("firings", v.firings);
  if (v.line > 0) w.kv("line", v.line);
  w.kv("pe", v.pe).kv("behavior", v.behavior);
  if (v.has_blocked) {
    w.kv("blocked", to_string(v.blocked));
    if (!v.blocked_link.empty()) w.kv("blocked_link", v.blocked_link);
  }
  w.end_object();
}

void to_json(JsonWriter& w, const SchedView& v) {
  w.begin_object().kv("module", v.module).kv("step", v.step);
  w.kv("backend", v.backend).kv("workers", static_cast<std::uint64_t>(v.workers));
  w.key("filters").begin_array();
  for (const SchedRow& r : v.rows) {
    w.begin_object().kv("name", r.name).kv("state", r.state).kv("firings", r.firings).end_object();
  }
  w.end_array().end_object();
}

void to_json(JsonWriter& w, const TokenView& v) {
  w.begin_object().kv("filter", v.filter);
  hops_to_json(w, v.hops);
  w.end_object();
}

void to_json(JsonWriter& w, const WhenceChain& v) {
  w.begin_object()
      .kv("link", v.link)
      .kv("slot", static_cast<std::uint64_t>(v.slot))
      .kv("depth", static_cast<std::uint64_t>(v.depth));
  hops_to_json(w, v.hops);
  w.kv("truncated", v.truncated);
  if (v.has_source) {
    w.key("source")
        .begin_object()
        .kv("actor", v.source_actor)
        .kv("injected", v.source_injected)
        .end_object();
  }
  w.end_object();
}

void to_json(JsonWriter& w, const LinkTokensView& v) {
  w.begin_object().kv("link", v.link).key("tokens").begin_array();
  for (const LinkTokenRow& t : v.tokens) {
    w.begin_object().kv("slot", static_cast<std::uint64_t>(t.slot));
    if (t.pruned) {
      w.kv("pruned", true);
    } else {
      w.kv("value", t.value)
          .kv("pushed_at", static_cast<std::uint64_t>(t.pushed_at))
          .kv("injected", t.injected);
    }
    w.end_object();
  }
  w.end_array().end_object();
}

void to_json(JsonWriter& w, const ProfileSnapshot& v) {
  w.begin_object().kv("t", v.now).kv("dispatches", v.dispatches).key("actors").begin_array();
  for (const ProfileRow& r : v.rows) {
    w.begin_object()
        .kv("actor", r.path)
        .kv("pe", r.pe)
        .kv("firings", r.firings)
        .kv("cycles", r.cycles)
        .kv("activations", r.activations)
        .end_object();
  }
  w.end_array().end_object();
}

void to_json(JsonWriter& w, const ShardProfileView& v) {
  w.begin_object()
      .kv("backend", v.backend)
      .kv("workers", static_cast<std::uint64_t>(v.workers))
      .kv("rounds", v.rounds)
      .kv("elided_rounds", v.elided_rounds)
      .kv("records", v.records)
      .kv("boundary_hwm", v.boundary_hwm)
      .key("shards")
      .begin_array();
  for (const ShardRow& r : v.rows) {
    w.begin_object()
        .kv("partition", static_cast<std::uint64_t>(r.partition))
        .kv("dispatches", r.dispatches)
        .kv("stalled_rounds", r.stalled_rounds)
        .kv("work_ns", r.work_ns)
        .kv("barrier_wait_ns", r.barrier_wait_ns)
        .kv("drain_ns", r.drain_ns)
        .kv("idle_ns", r.idle_ns)
        .kv("skipped_wakes", r.skipped_wakes)
        .kv("eager_drained", r.eager_drained)
        .kv("utilization", r.utilization)
        .end_object();
  }
  w.end_array().end_object();
}

void to_json(JsonWriter& w, const sim::BarrierRoundRecord& r) {
  w.begin_object()
      .kv("round", r.round)
      .kv("vtime", static_cast<std::uint64_t>(r.vtime))
      .kv("wall_ns", r.wall_ns)
      .kv("drain_ns", r.drain_ns)
      .kv("boundary_hwm", r.boundary_hwm)
      .kv("elided", r.elided)
      .key("partitions")
      .begin_array();
  for (const auto& p : r.partitions) {
    w.begin_object()
        .kv("dispatches", p.dispatches)
        .kv("eager", p.eager)
        .kv("work_ns", p.work_ns)
        .kv("wait_ns", p.wait_ns)
        .kv("stalled", p.stalled)
        .kv("skipped", p.skipped)
        .end_object();
  }
  w.end_array().end_object();
}

void to_json(JsonWriter& w, const BreakpointInfo& v) {
  w.begin_object()
      .kv("id", static_cast<std::uint64_t>(v.id.value()))
      .kv("description", v.description)
      .kv("enabled", v.enabled)
      .kv("temporary", v.temporary)
      .kv("hits", v.hits)
      .end_object();
}

void to_json(JsonWriter& w, const StopEvent& v) {
  w.begin_object().kv("kind", to_string(v.kind)).kv("message", v.message);
  if (!v.actor.empty()) w.kv("actor", v.actor);
  if (!v.iface.empty()) w.kv("iface", v.iface);
  if (v.token.valid()) w.kv("token", static_cast<std::uint64_t>(v.token.value()));
  if (v.breakpoint.valid()) w.kv("breakpoint", static_cast<std::uint64_t>(v.breakpoint.value()));
  if (v.line > 0) w.kv("line", v.line);
  w.kv("time", static_cast<std::uint64_t>(v.time)).end_object();
}

void to_json(JsonWriter& w, const RunOutcome& v) {
  w.begin_object().kv("result", sim::to_string(v.result)).key("stops").begin_array();
  for (const StopEvent& s : v.stops) to_json(w, s);
  w.end_array().end_object();
}

}  // namespace dfdbg::dbg

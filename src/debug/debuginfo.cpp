#include "dfdbg/debug/debuginfo.hpp"

#include <map>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::dbg {

std::vector<SymbolInfo> build_symbol_table(pedf::Application& app) {
  std::vector<SymbolInfo> out;
  std::map<std::string, int> anon_counters;  // per-module anonymous index
  for (const pedf::Actor* a : app.actors()) {
    switch (a->kind()) {
      case pedf::ActorKind::kFilter:
        out.push_back(SymbolInfo{mangle_filter_work(a->name()), a->path(), "filter-work"});
        break;
      case pedf::ActorKind::kController: {
        const pedf::Module* m = a->parent();
        std::string module_name = m != nullptr ? m->name() : "root";
        int idx = anon_counters[module_name]++;
        out.push_back(
            SymbolInfo{mangle_controller_work(module_name, idx), a->path(), "controller-work"});
        break;
      }
      case pedf::ActorKind::kHostIo:
        out.push_back(SymbolInfo{mangle_filter_work(a->name()), a->path(), "host-io-work"});
        break;
      case pedf::ActorKind::kModule:
        break;
    }
  }
  for (const std::string& s : app.platform().kernel().instrument().all_symbols())
    out.push_back(SymbolInfo{s, "", "api"});
  return out;
}

std::string entity_for_symbol(const std::vector<SymbolInfo>& table, const std::string& symbol) {
  for (const SymbolInfo& s : table)
    if (s.symbol == symbol) return s.entity_path;
  return "";
}

}  // namespace dfdbg::dbg

#include "dfdbg/debug/session_host.hpp"

#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/sim/platform.hpp"
#include "wide_graph.hpp"

namespace dfdbg::dbg {
namespace {

/// Rigs that honour SessionSpec::backend flip the process-default backend
/// around kernel construction (the H.264 builder constructs its own kernel);
/// SessionFactory::build serializes on this mutex so concurrent creates on
/// different shard threads never observe each other's override.
std::mutex& build_mutex() {
  static std::mutex mu;
  return mu;
}

struct AdlRig {
  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<pedf::Application> app;
};

Result<SessionFactory::RigParts> build_wide(const SessionSpec& spec) {
  if (spec.pipelines < 1 || spec.stages < 1 || spec.tokens < 1)
    return Status::error(ErrCode::kInvalidArgument, "wide rig needs pipelines/stages/tokens >= 1");
  auto backend = parse_backend(spec.backend);
  if (!backend.ok()) return backend.status();
  benchutil::WideGraphConfig cfg;
  cfg.pipelines = spec.pipelines;
  cfg.stages = spec.stages;
  cfg.tokens = static_cast<std::size_t>(spec.tokens);
  cfg.spin = spec.spin;
  cfg.seed = spec.seed;
  auto world = benchutil::build_wide_world(cfg, *backend, spec.workers);
  SessionFactory::RigParts parts;
  parts.app = world->app.get();
  parts.kernel = world->kernel.get();
  parts.holder = std::shared_ptr<void>(world.release(), [](void* p) {
    delete static_cast<benchutil::WideWorld*>(p);
  });
  return parts;
}

Result<SessionFactory::RigParts> build_adl(const SessionSpec& spec) {
  if (spec.path.empty()) return Status::error(ErrCode::kInvalidArgument, "adl rig needs a path");
  if (spec.top.empty()) return Status::error(ErrCode::kInvalidArgument, "adl rig needs a top definition");
  if (spec.steps < 1) return Status::error(ErrCode::kInvalidArgument, "adl rig needs steps >= 1");
  std::ifstream in(spec.path);
  if (!in) return Status::error("cannot open " + spec.path);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto doc = mind::parse(ss.str());
  if (!doc.ok()) return doc.status();
  auto rep = mind::analyze(*doc, spec.top);
  if (!rep.ok()) return rep.status();

  auto backend = parse_backend(spec.backend);
  if (!backend.ok()) return backend.status();
  auto rig = std::make_shared<AdlRig>();
  rig->kernel = std::make_unique<sim::Kernel>(*backend, spec.workers);
  rig->platform = std::make_unique<sim::Platform>(*rig->kernel, sim::PlatformConfig{});
  rig->app = std::make_unique<pedf::Application>(*rig->platform, spec.top);
  mind::FilterRegistry registry;
  registry.set_default_steps(static_cast<std::uint64_t>(spec.steps));
  auto root = mind::instantiate(*doc, spec.top, "main", rig->app->types(), registry);
  if (!root.ok()) return root.status();
  pedf::Module& mod = rig->app->set_root(std::move(*root));
  // Generic host I/O on the top-level boundary ports (mindc's `run` recipe).
  for (const auto& port : mod.ports()) {
    if (port->dir() == pedf::PortDir::kIn) {
      std::vector<pedf::Value> stream(static_cast<std::size_t>(spec.steps),
                                      pedf::Value::zero_of(port->type()));
      rig->app->add_host_source("src_" + port->name(), "main." + port->name(),
                                std::move(stream));
    } else {
      rig->app->add_host_sink("snk_" + port->name(), "main." + port->name(),
                              static_cast<std::size_t>(spec.steps));
    }
  }
  if (Status s = rig->app->elaborate(); !s.ok()) return s;
  SessionFactory::RigParts parts;
  parts.app = rig->app.get();
  parts.kernel = rig->kernel.get();
  parts.holder = std::move(rig);
  return parts;
}

}  // namespace

SessionWorld::~SessionWorld() {
  // Teardown records too (link drains, fiber unwinds): keep it in-session.
  ThreadJournalScope scope(journal.get());
  session.reset();
  rig.reset();
}

Result<sim::ProcessBackend> parse_backend(const std::string& name) {
  if (name.empty()) return sim::default_process_backend();
  if (name == "fibers") return sim::ProcessBackend::kFibers;
  if (name == "threads") return sim::ProcessBackend::kThreads;
  if (name == "parallel") return sim::ProcessBackend::kParallel;
  return Status::error(ErrCode::kInvalidArgument, "unknown backend '" + name +
                                  "' (fibers|threads|parallel)");
}

SessionFactory::SessionFactory() {
  register_rig("wide", build_wide);
  register_rig("adl", build_adl);
}

void SessionFactory::register_rig(const std::string& name, Builder builder) {
  rigs_[name] = std::move(builder);
}

std::vector<std::string> SessionFactory::rigs() const {
  std::vector<std::string> out;
  out.reserve(rigs_.size());
  for (const auto& [name, b] : rigs_) out.push_back(name);
  return out;
}

Result<std::unique_ptr<SessionWorld>> SessionFactory::build(const SessionSpec& spec) const {
  auto it = rigs_.find(spec.rig);
  if (it == rigs_.end()) return Status::error(ErrCode::kNotFound, "unknown rig '" + spec.rig + "'");
  if (spec.quota.journal_capacity < 2)
    return Status::error(ErrCode::kInvalidArgument, "journal_capacity must be >= 2");

  std::lock_guard<std::mutex> lock(build_mutex());
  auto world = std::make_unique<SessionWorld>();
  world->journal = std::make_unique<obs::Journal>(spec.quota.journal_capacity);
  // Everything from rig construction through start() runs under the session
  // journal: kernels capture it as their shard base, and any event recorded
  // while wiring up lands in the session's private ring.
  ThreadJournalScope scope(world->journal.get());
  auto parts = it->second(spec);
  if (!parts.ok()) return parts.status();
  world->rig = std::move(parts->holder);
  world->app = parts->app;
  world->kernel = parts->kernel;
  world->session = std::make_unique<Session>(*world->app);
  world->session->attach();
  world->app->start();
  return world;
}

}  // namespace dfdbg::dbg

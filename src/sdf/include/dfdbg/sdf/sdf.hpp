// Synchronous dataflow (SDF) on top of PEDF.
//
// The paper contrasts its *dynamic* dataflow debugger with StreamIt's
// environment (§VII-C), whose synchronous model fixes token rates at
// compile time, and lists "encompassing new models, thanks to a generic
// code base" as future work (§VIII). This library delivers that: an SDF
// front-end — static rates, balance-equation analysis, periodic schedule
// synthesis — whose graphs compile onto the same PEDF runtime and are
// debugged by the same dataflow-aware Session with zero changes.
//
// Pipeline:  SdfGraph  ──repetition_vector()──►  consistency check
//                      ──schedule()───────────►  deadlock-free firing list
//                      ──instantiate()────────►  pedf::Module (filters +
//                                                a controller replaying the
//                                                static schedule)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/pedf/application.hpp"

namespace dfdbg::sdf {

/// One SDF port: a fixed token rate per firing.
struct SdfPortSpec {
  std::string name;
  pedf::PortDir dir = pedf::PortDir::kIn;
  std::uint32_t rate = 1;  ///< tokens consumed/produced per firing (>= 1)
  pedf::TypeDesc type;
};

/// The computation of one SDF actor firing: receives `rate` tokens per
/// input port (in declaration order) and must fill `rate` tokens per output
/// port (in declaration order).
using SdfKernel = std::function<void(const std::vector<std::vector<pedf::Value>>& inputs,
                                     std::vector<std::vector<pedf::Value>>* outputs)>;

/// One SDF actor.
struct SdfActorSpec {
  std::string name;
  std::vector<SdfPortSpec> ports;
  SdfKernel kernel;             ///< null = copy/zero-fill default
  sim::SimTime compute = 0;     ///< modeled cycles per firing
};

/// One SDF edge, with optional initial (delay) tokens.
struct SdfEdgeSpec {
  std::string src_actor, src_port;
  std::string dst_actor, dst_port;
  std::uint32_t initial_tokens = 0;
};

/// A firing entry of the flat periodic schedule.
struct Firing {
  std::string actor;
  std::uint32_t count = 1;  ///< consecutive firings of this actor
};

/// An SDF graph under construction and analysis.
class SdfGraph {
 public:
  /// Adds an actor; names must be unique, rates >= 1.
  Status add_actor(SdfActorSpec spec);
  /// Adds an edge between declared ports (directions must match).
  Status add_edge(SdfEdgeSpec spec);

  [[nodiscard]] const std::vector<SdfActorSpec>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<SdfEdgeSpec>& edges() const { return edges_; }

  /// Solves the balance equations rep[src]*prod = rep[dst]*cons for every
  /// edge. Returns the minimal integer repetition vector (indexed like
  /// actors()), or an error naming the inconsistent edge. The graph must be
  /// connected.
  [[nodiscard]] Result<std::vector<std::uint64_t>> repetition_vector() const;

  /// Synthesizes a flat periodic schedule executing each actor rep[i] times
  /// such that no firing ever underflows a link (honouring initial tokens).
  /// Errors if the graph is rate-inconsistent or deadlocks (insufficient
  /// initial tokens on a cycle).
  [[nodiscard]] Result<std::vector<Firing>> schedule() const;

  /// Tokens on each edge after one full schedule period equal the initial
  /// tokens (the SDF invariant); exposed for property tests.
  [[nodiscard]] Result<bool> period_is_neutral() const;

  /// Builds a PEDF module executing `iterations` periods of the schedule.
  /// Unconnected SDF ports become module boundary ports (attach host I/O).
  /// After pedf elaboration, call apply_initial_tokens() to place delays.
  [[nodiscard]] Result<std::unique_ptr<pedf::Module>> instantiate(
      const std::string& module_name, std::uint64_t iterations) const;

  /// Pre-loads the initial (delay) tokens onto the elaborated links.
  /// `module_name` must be the instantiate() name; zero-valued tokens of
  /// the link type are used.
  Status apply_initial_tokens(pedf::Application& app) const;

 private:
  [[nodiscard]] int actor_index(const std::string& name) const;
  [[nodiscard]] const SdfPortSpec* find_port(const std::string& actor,
                                             const std::string& port) const;

  std::vector<SdfActorSpec> actors_;
  std::vector<SdfEdgeSpec> edges_;
};

}  // namespace dfdbg::sdf

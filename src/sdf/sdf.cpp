#include "dfdbg/sdf/sdf.hpp"

#include <map>
#include <numeric>
#include <queue>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg::sdf {

using pedf::PortDir;
using pedf::Value;

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

int SdfGraph::actor_index(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i)
    if (actors_[i].name == name) return static_cast<int>(i);
  return -1;
}

const SdfPortSpec* SdfGraph::find_port(const std::string& actor,
                                       const std::string& port) const {
  int idx = actor_index(actor);
  if (idx < 0) return nullptr;
  for (const SdfPortSpec& p : actors_[static_cast<std::size_t>(idx)].ports)
    if (p.name == port) return &p;
  return nullptr;
}

Status SdfGraph::add_actor(SdfActorSpec spec) {
  if (actor_index(spec.name) >= 0) return Status::error("duplicate SDF actor: " + spec.name);
  for (const SdfPortSpec& p : spec.ports) {
    if (p.rate == 0)
      return Status::error(spec.name + "." + p.name + ": SDF rates must be >= 1");
    int seen = 0;
    for (const SdfPortSpec& q : spec.ports)
      if (q.name == p.name) seen++;
    if (seen != 1) return Status::error(spec.name + ": duplicate port " + p.name);
  }
  actors_.push_back(std::move(spec));
  return Status{};
}

Status SdfGraph::add_edge(SdfEdgeSpec spec) {
  const SdfPortSpec* src = find_port(spec.src_actor, spec.src_port);
  const SdfPortSpec* dst = find_port(spec.dst_actor, spec.dst_port);
  if (src == nullptr)
    return Status::error("unknown SDF endpoint " + spec.src_actor + "." + spec.src_port);
  if (dst == nullptr)
    return Status::error("unknown SDF endpoint " + spec.dst_actor + "." + spec.dst_port);
  if (src->dir != PortDir::kOut)
    return Status::error(spec.src_actor + "." + spec.src_port + " is not an output");
  if (dst->dir != PortDir::kIn)
    return Status::error(spec.dst_actor + "." + spec.dst_port + " is not an input");
  if (!(src->type == dst->type))
    return Status::error("SDF edge type mismatch: " + spec.src_actor + "." + spec.src_port +
                         " vs " + spec.dst_actor + "." + spec.dst_port);
  for (const SdfEdgeSpec& e : edges_) {
    if (e.src_actor == spec.src_actor && e.src_port == spec.src_port)
      return Status::error(spec.src_actor + "." + spec.src_port + " already connected");
    if (e.dst_actor == spec.dst_actor && e.dst_port == spec.dst_port)
      return Status::error(spec.dst_actor + "." + spec.dst_port + " already connected");
  }
  edges_.push_back(std::move(spec));
  return Status{};
}

// ---------------------------------------------------------------------------
// Balance equations
// ---------------------------------------------------------------------------

namespace {
/// Rational number with canonical form (for rate propagation).
struct Frac {
  std::uint64_t num = 0, den = 1;
  static Frac make(std::uint64_t n, std::uint64_t d) {
    std::uint64_t g = std::gcd(n, d);
    return Frac{n / g, d / g};
  }
  Frac mul(std::uint64_t n, std::uint64_t d) const {
    // (num/den) * (n/d) with intermediate reduction.
    std::uint64_t g1 = std::gcd(num, d);
    std::uint64_t g2 = std::gcd(n, den);
    return Frac::make((num / g1) * (n / g2), (den / g2) * (d / g1));
  }
  bool operator==(const Frac& o) const { return num == o.num && den == o.den; }
};
}  // namespace

Result<std::vector<std::uint64_t>> SdfGraph::repetition_vector() const {
  if (actors_.empty()) return Status::error("empty SDF graph");
  std::vector<Frac> rep(actors_.size());
  std::vector<bool> visited(actors_.size(), false);

  // BFS from actor 0 propagating rate ratios along edges (either direction).
  rep[0] = Frac{1, 1};
  visited[0] = true;
  std::queue<int> work;
  work.push(0);
  while (!work.empty()) {
    int a = work.front();
    work.pop();
    for (const SdfEdgeSpec& e : edges_) {
      int s = actor_index(e.src_actor);
      int d = actor_index(e.dst_actor);
      const SdfPortSpec* sp = find_port(e.src_actor, e.src_port);
      const SdfPortSpec* dp = find_port(e.dst_actor, e.dst_port);
      DFDBG_CHECK(s >= 0 && d >= 0 && sp != nullptr && dp != nullptr);
      // rep[s] * prod == rep[d] * cons
      if (s == a) {
        Frac expect = rep[static_cast<std::size_t>(s)].mul(sp->rate, dp->rate);
        if (!visited[static_cast<std::size_t>(d)]) {
          rep[static_cast<std::size_t>(d)] = expect;
          visited[static_cast<std::size_t>(d)] = true;
          work.push(d);
        } else if (!(rep[static_cast<std::size_t>(d)] == expect)) {
          return Status::error("inconsistent SDF rates on edge " + e.src_actor + "." +
                               e.src_port + " -> " + e.dst_actor + "." + e.dst_port);
        }
      } else if (d == a) {
        Frac expect = rep[static_cast<std::size_t>(d)].mul(dp->rate, sp->rate);
        if (!visited[static_cast<std::size_t>(s)]) {
          rep[static_cast<std::size_t>(s)] = expect;
          visited[static_cast<std::size_t>(s)] = true;
          work.push(s);
        } else if (!(rep[static_cast<std::size_t>(s)] == expect)) {
          return Status::error("inconsistent SDF rates on edge " + e.src_actor + "." +
                               e.src_port + " -> " + e.dst_actor + "." + e.dst_port);
        }
      }
    }
  }
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (!visited[i])
      return Status::error("SDF graph is disconnected at actor " + actors_[i].name);
  }
  // Scale to the minimal integer vector: multiply by lcm of denominators,
  // then divide by the gcd of numerators.
  std::uint64_t lcm = 1;
  for (const Frac& f : rep) lcm = std::lcm(lcm, f.den);
  std::vector<std::uint64_t> out(actors_.size());
  for (std::size_t i = 0; i < rep.size(); ++i) out[i] = rep[i].num * (lcm / rep[i].den);
  std::uint64_t g = 0;
  for (std::uint64_t v : out) g = std::gcd(g, v);
  DFDBG_CHECK(g > 0);
  for (std::uint64_t& v : out) v /= g;
  return out;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

Result<std::vector<Firing>> SdfGraph::schedule() const {
  auto rep = repetition_vector();
  if (!rep.ok()) return rep.status();

  std::vector<std::uint64_t> remaining = *rep;
  std::vector<std::uint64_t> occupancy(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) occupancy[e] = edges_[e].initial_tokens;

  auto can_fire = [&](std::size_t a) {
    if (remaining[a] == 0) return false;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (actor_index(edges_[e].dst_actor) != static_cast<int>(a)) continue;
      const SdfPortSpec* dp = find_port(edges_[e].dst_actor, edges_[e].dst_port);
      if (occupancy[e] < dp->rate) return false;
    }
    return true;
  };
  auto fire = [&](std::size_t a) {
    remaining[a]--;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (actor_index(edges_[e].dst_actor) == static_cast<int>(a))
        occupancy[e] -= find_port(edges_[e].dst_actor, edges_[e].dst_port)->rate;
      if (actor_index(edges_[e].src_actor) == static_cast<int>(a))
        occupancy[e] += find_port(edges_[e].src_actor, edges_[e].src_port)->rate;
    }
  };

  std::vector<Firing> out;
  std::uint64_t left = std::accumulate(remaining.begin(), remaining.end(), std::uint64_t{0});
  while (left > 0) {
    bool progressed = false;
    for (std::size_t a = 0; a < actors_.size(); ++a) {
      std::uint32_t burst = 0;
      while (can_fire(a)) {
        fire(a);
        burst++;
        left--;
      }
      if (burst > 0) {
        progressed = true;
        if (!out.empty() && out.back().actor == actors_[a].name)
          out.back().count += burst;
        else
          out.push_back(Firing{actors_[a].name, burst});
      }
    }
    if (!progressed)
      return Status::error("SDF graph deadlocks: insufficient initial tokens on a cycle");
  }
  return out;
}

Result<bool> SdfGraph::period_is_neutral() const {
  auto rep = repetition_vector();
  if (!rep.ok()) return rep.status();
  for (const SdfEdgeSpec& e : edges_) {
    std::uint64_t produced =
        (*rep)[static_cast<std::size_t>(actor_index(e.src_actor))] *
        find_port(e.src_actor, e.src_port)->rate;
    std::uint64_t consumed =
        (*rep)[static_cast<std::size_t>(actor_index(e.dst_actor))] *
        find_port(e.dst_actor, e.dst_port)->rate;
    if (produced != consumed) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// PEDF instantiation
// ---------------------------------------------------------------------------

namespace {

/// PEDF filter executing one SDF firing per WORK step.
class SdfFilter : public pedf::Filter {
 public:
  SdfFilter(const SdfActorSpec& spec) : Filter(spec.name), spec_(spec) {
    for (const SdfPortSpec& p : spec.ports) add_port(p.name, p.dir, p.type);
  }

  void work(pedf::FilterContext& pedf) override {
    std::vector<std::vector<Value>> inputs;
    std::vector<const SdfPortSpec*> out_ports;
    for (const SdfPortSpec& p : spec_.ports) {
      if (p.dir == PortDir::kIn) {
        std::vector<Value> tokens;
        tokens.reserve(p.rate);
        for (std::uint32_t i = 0; i < p.rate; ++i) tokens.push_back(pedf.in(p.name).get());
        inputs.push_back(std::move(tokens));
      } else {
        out_ports.push_back(&p);
      }
    }
    if (spec_.compute > 0) pedf.compute(spec_.compute);
    std::vector<std::vector<Value>> outputs(out_ports.size());
    if (spec_.kernel) {
      spec_.kernel(inputs, &outputs);
    } else {
      // Default kernel: resample the concatenated inputs onto each output
      // (copy-through when rates match, repeat/drop otherwise).
      std::vector<Value> flat;
      for (const auto& in : inputs) flat.insert(flat.end(), in.begin(), in.end());
      for (std::size_t o = 0; o < out_ports.size(); ++o) {
        for (std::uint32_t i = 0; i < out_ports[o]->rate; ++i) {
          outputs[o].push_back(flat.empty() ? Value::zero_of(out_ports[o]->type)
                                            : flat[i % flat.size()]);
        }
      }
    }
    for (std::size_t o = 0; o < out_ports.size(); ++o) {
      DFDBG_CHECK_MSG(outputs[o].size() == out_ports[o]->rate,
                      name() + "." + out_ports[o]->name + ": kernel produced " +
                          std::to_string(outputs[o].size()) + " tokens, rate is " +
                          std::to_string(out_ports[o]->rate));
      for (const Value& v : outputs[o]) pedf.out(out_ports[o]->name).put(v);
    }
  }

 private:
  SdfActorSpec spec_;
};

/// PEDF controller replaying the static schedule.
class SdfController : public pedf::Controller {
 public:
  SdfController(std::vector<Firing> schedule, std::uint64_t iterations)
      : Controller("sdf_scheduler"), schedule_(std::move(schedule)), iterations_(iterations) {}

  void control(pedf::ControllerContext& ctx) override {
    for (std::uint64_t it = 0; it < iterations_; ++it) {
      ctx.next_step();  // one schedule period per PEDF step
      for (const Firing& f : schedule_) ctx.actor_fire_n(f.actor, f.count);
    }
  }

 private:
  std::vector<Firing> schedule_;
  std::uint64_t iterations_;
};

}  // namespace

Result<std::unique_ptr<pedf::Module>> SdfGraph::instantiate(const std::string& module_name,
                                                            std::uint64_t iterations) const {
  auto sched = schedule();
  if (!sched.ok()) return sched.status();

  auto mod = std::make_unique<pedf::Module>(module_name);
  for (const SdfActorSpec& a : actors_) mod->add_filter(std::make_unique<SdfFilter>(a));
  mod->set_controller(std::make_unique<SdfController>(std::move(*sched), iterations));

  // Internal edges become bindings; unconnected SDF ports surface as module
  // boundary ports named "<actor>_<port>".
  for (const SdfEdgeSpec& e : edges_)
    mod->bind(e.src_actor + "." + e.src_port, e.dst_actor + "." + e.dst_port);
  for (const SdfActorSpec& a : actors_) {
    for (const SdfPortSpec& p : a.ports) {
      bool connected = false;
      for (const SdfEdgeSpec& e : edges_) {
        if ((e.src_actor == a.name && e.src_port == p.name) ||
            (e.dst_actor == a.name && e.dst_port == p.name))
          connected = true;
      }
      if (connected) continue;
      std::string boundary = a.name + "_" + p.name;
      mod->add_port(boundary, p.dir, p.type);
      if (p.dir == PortDir::kIn)
        mod->bind("this." + boundary, a.name + "." + p.name);
      else
        mod->bind(a.name + "." + p.name, "this." + boundary);
    }
  }
  return mod;
}

Status SdfGraph::apply_initial_tokens(pedf::Application& app) const {
  if (!app.elaborated()) return Status::error("apply_initial_tokens before elaborate");
  for (const SdfEdgeSpec& e : edges_) {
    if (e.initial_tokens == 0) continue;
    pedf::Link* link = app.link_by_iface(e.dst_actor + "::" + e.dst_port);
    if (link == nullptr)
      return Status::error("cannot locate elaborated link for SDF edge into " + e.dst_actor +
                           "." + e.dst_port);
    for (std::uint32_t i = 0; i < e.initial_tokens; ++i)
      link->push_raw(Value::zero_of(link->type()));
  }
  return Status{};
}

}  // namespace dfdbg::sdf

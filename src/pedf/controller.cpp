#include "dfdbg/pedf/controller.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/pedf/module.hpp"
#include "dfdbg/sim/platform.hpp"

namespace dfdbg::pedf {

namespace {
Filter& child_filter(Module& m, std::string_view name) {
  Filter* f = m.filter(name);
  DFDBG_CHECK_MSG(f != nullptr, m.path() + ": no child filter '" + std::string(name) + "'");
  return *f;
}
}  // namespace

void ControllerContext::actor_start(std::string_view filter) {
  app_.rt_actor_start(self_, child_filter(module_, filter));
}

void ControllerContext::actor_sync(std::string_view filter) {
  app_.rt_actor_sync(self_, child_filter(module_, filter));
}

void ControllerContext::actor_fire(std::string_view filter) {
  Filter& f = child_filter(module_, filter);
  app_.rt_actor_start(self_, f);
  app_.rt_actor_sync(self_, f);
}

void ControllerContext::actor_fire_n(std::string_view filter, std::uint64_t n) {
  Filter& f = child_filter(module_, filter);
  for (std::uint64_t i = 0; i < n; ++i) {
    app_.rt_actor_start(self_, f);
    app_.rt_actor_sync(self_, f);
    app_.rt_wait_actor_sync(self_, module_);
  }
}

void ControllerContext::wait_for_actor_init() { app_.rt_wait_actor_init(self_, module_); }

void ControllerContext::wait_for_actor_sync() { app_.rt_wait_actor_sync(self_, module_); }

void ControllerContext::next_step() {
  if (module_.step_ > 0) app_.rt_step_end(self_, module_);
  app_.rt_step_begin(self_, module_);
}

bool ControllerContext::predicate(std::string_view name) {
  return app_.rt_predicate_eval(self_, module_, name);
}

void ControllerContext::send(std::string_view port, const Value& v) {
  Port* p = self_.port(port);
  DFDBG_CHECK_MSG(p != nullptr, self_.path() + ": no port '" + std::string(port) + "'");
  DFDBG_CHECK_MSG(p->dir() == PortDir::kOut, std::string(port) + " is not an output");
  app_.rt_link_push(self_, *p, v);
}

Value ControllerContext::receive(std::string_view port) {
  Port* p = self_.port(port);
  DFDBG_CHECK_MSG(p != nullptr, self_.path() + ": no port '" + std::string(port) + "'");
  DFDBG_CHECK_MSG(p->dir() == PortDir::kIn, std::string(port) + " is not an input");
  auto v = app_.rt_link_pop(self_, *p);
  DFDBG_CHECK_MSG(v.has_value(), "controller receive interrupted");
  return std::move(*v);
}

std::size_t ControllerContext::tokens_available(std::string_view filter,
                                                std::string_view port) const {
  Filter& f = child_filter(module_, filter);
  Port* p = f.port(port);
  DFDBG_CHECK_MSG(p != nullptr, f.path() + ": no port '" + std::string(port) + "'");
  return p->link() == nullptr ? 0 : p->link()->occupancy();
}

void ControllerContext::compute(sim::SimTime cycles) {
  DFDBG_CHECK_MSG(self_.pe() != nullptr, self_.path() + " has no PE mapping");
  self_.pe()->execute(app_.kernel(), cycles);
}

std::uint64_t ControllerContext::step() const { return module_.step_; }

}  // namespace dfdbg::pedf

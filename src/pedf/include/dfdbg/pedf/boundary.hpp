// Cross-partition token transport for the parallel simulation backend.
//
// A Link whose producer and consumer live in different partitions cannot be
// mutated from both sides: all link state (ring, indexes, events) belongs to
// the *consumer's* partition. Instead the producer enqueues {value, uid}
// pairs into a BoundaryChannel — a lock-free single-producer/single-consumer
// ring. Two monotonic counters index it: `sent_` (advanced by the producing
// worker with a release store) and `delivered_` (advanced by the consuming
// worker as it moves tokens into the link). On top of the SPSC ring sits the
// deterministic round protocol:
//
//   publish (coordinator, between rounds): snapshots `sent_` into `limit_`
//     and `delivered_` into `freed_`. Both snapshots are plain fields — only
//     the coordinator writes them, and the round handshake's mutex orders
//     them against both workers.
//   eager drain (consumer shard, during a round): delivers tokens strictly
//     below `limit_` into the link, in channel order, waking local
//     data_avail waiters immediately. Because eligibility is bounded by the
//     coordinator's snapshot — not by the live `sent_` — the delivered set
//     is a pure function of the round number, independent of worker timing:
//     run-to-run determinism survives the missing barrier.
//   producer flow control: full() compares `sent_` against the snapshot
//     `freed_`, not the live `delivered_`, for the same reason; a producer
//     blocks on space_avail() and the coordinator wakes it at publish when
//     slots were reclaimed.
//
// Tokens therefore traverse a boundary with one round of latency (publish)
// instead of parking until the coordinator serially drained every ring, and
// per-link FIFO order — the Kahn-network property every determinism argument
// rests on — is preserved by construction. drain() remains the coordinator's
// full drain, used at quiescence and on debug stops.
//
// Slot safety: the consumer reads slots in [delivered_, limit_) while the
// producer writes slots in [sent_, freed_ + capacity); limit_ <= sent_ and
// freed_ <= delivered_, and the physical ring holds >= capacity slots, so
// the two ranges never alias modulo the ring size. The raw spsc_send /
// spsc_take surface (used by the TSan stress test) instead synchronizes
// purely through the acquire/release counters, classic SPSC style.
//
// Provenance: the producer allocates the token uid from its own shard
// journal (disjoint per-partition id ranges) and records the kTokenPush
// journal event at send time, in its own shard; delivery adds no journal
// traffic. The producer-side send index equals the link's eventual push
// index (every push to a boundary link goes through its channel), so
// journal streams stay per-link identical to a sequential run.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/event.hpp"

namespace dfdbg::sim {
class Kernel;
}  // namespace dfdbg::sim

namespace dfdbg::pedf {

class Link;

/// The producer-side ring of one partition-crossing link. Owned by the
/// Application; wired into the link via Link::set_outbox at start().
class BoundaryChannel {
 public:
  /// Channel capacity used when the link itself is unbounded.
  static constexpr std::size_t kDefaultSlots = 1024;

  BoundaryChannel(Link& link, std::size_t capacity);

  BoundaryChannel(const BoundaryChannel&) = delete;
  BoundaryChannel& operator=(const BoundaryChannel&) = delete;

  [[nodiscard]] Link& link() const { return *link_; }
  /// Logical bound on in-flight tokens (the link's capacity when it has one,
  /// kDefaultSlots otherwise).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Physical ring slots (next power of two >= capacity; for tests).
  [[nodiscard]] std::size_t slot_count() const { return ring_.size(); }
  /// Tokens enqueued and not yet delivered. Coordinator/debugger context.
  [[nodiscard]] std::size_t pending() const {
    return static_cast<std::size_t>(sent_.load(std::memory_order_acquire) -
                                    delivered_.load(std::memory_order_acquire));
  }
  /// Producer-side: full against the coordinator's `freed_` snapshot (not
  /// the live consumer index — see the determinism note above).
  [[nodiscard]] bool full() const {
    return sent_.load(std::memory_order_relaxed) - freed_ >= capacity_;
  }
  /// Tokens ever accepted == the producer-side push index sequence.
  [[nodiscard]] std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  /// Tokens delivered into the link so far.
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Producer worker: enqueues one token. Precondition: !full().
  /// Returns the token's producer-side index (== its eventual push index).
  std::uint64_t send(Value v, std::uint64_t uid);

  /// Producers blocked on a full channel wait here; the coordinator
  /// notifies at publish after reclaiming slots. Bound to the producer's
  /// partition.
  [[nodiscard]] sim::Event& space_avail() { return space_event_; }

  // --- deterministic round protocol (see file comment) ----------------------

  /// Coordinator, between rounds: makes every token sent so far eligible for
  /// the consumer's eager drain, reclaims consumed slots for the producer,
  /// and wakes a producer blocked on space. Returns true when a blocked
  /// producer was woken (progress for the run loop).
  bool publish(sim::Kernel& kernel);

  /// Consumer shard (or coordinator): delivers eligible tokens — strictly
  /// below the published limit — into the link while it has room, then wakes
  /// local data_avail waiters. Returns tokens delivered.
  std::size_t drain_eligible(sim::Kernel& kernel);

  /// Coordinator: does the channel hold movement the last publish has not
  /// seen (unpublished sends, or consumed slots not yet reclaimed)?
  [[nodiscard]] bool has_unpublished() const {
    return sent_.load(std::memory_order_relaxed) != limit_ ||
           delivered_.load(std::memory_order_relaxed) != freed_;
  }

  /// Coordinator: can the consumer's eager drain deliver at least one token
  /// right now (published backlog and link room)?
  [[nodiscard]] bool eligible() const {
    return delivered_.load(std::memory_order_relaxed) != limit_ && link_has_room();
  }

  /// Coordinator: full drain — publish + deliver everything possible + wake
  /// both sides. Used at quiescence and on debug stops so the debugger sees
  /// no token parked invisibly behind a stale snapshot. Returns true when
  /// any token moved or a blocked producer was woken.
  bool drain(sim::Kernel& kernel);

  // --- raw SPSC surface (two-thread stress tests; not used by the kernel) ---
  // Synchronizes purely through the acquire/release counters; must not be
  // mixed with the snapshot protocol above on the same channel instance.

  /// Producer thread: enqueue, bounded by the live consumer index.
  /// Returns false when full.
  bool spsc_send(Value v, std::uint64_t uid);
  /// Consumer thread: dequeue the oldest token. Returns false when empty.
  bool spsc_take(Value& v, std::uint64_t& uid);

 private:
  struct Slot {
    Value value;
    std::uint64_t uid = 0;
  };

  [[nodiscard]] bool link_has_room() const;

  Link* link_;
  std::size_t capacity_;
  std::uint64_t mask_;
  std::vector<Slot> ring_;
  /// Producer-owned (release store per send); read by the coordinator
  /// between rounds and by the raw-SPSC consumer.
  std::atomic<std::uint64_t> sent_{0};
  /// Consumer-owned (release store per delivery); read by the coordinator
  /// between rounds and by the raw-SPSC producer.
  std::atomic<std::uint64_t> delivered_{0};
  /// Coordinator-written snapshots (round-handshake ordered): the consumer
  /// drains below limit_; the producer's full() measures against freed_.
  std::uint64_t limit_ = 0;
  std::uint64_t freed_ = 0;
  sim::Event space_event_;
};

}  // namespace dfdbg::pedf

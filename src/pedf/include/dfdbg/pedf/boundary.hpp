// Cross-partition token transport for the parallel simulation backend.
//
// A Link whose producer and consumer live in different partitions cannot be
// mutated from both sides: all link state (ring, indexes, events) belongs to
// the *consumer's* partition. Instead the producer enqueues {value, uid}
// pairs into a BoundaryChannel — a single-producer ring the producing
// worker alone writes during a round — and the coordinator drains every
// channel at the barrier, delivering tokens into the link in channel order
// and waking the consumer. The conservative barrier gives the
// happens-before edge between the two sides, so the channel needs no
// atomics of its own.
//
// Flow control is conservative: the channel is bounded (the link's capacity
// when it has one, a fixed default otherwise) and a producer blocks on
// space_avail() while it is full; the coordinator notifies after freeing
// slots. Tokens therefore traverse a boundary with at least one barrier of
// latency, but per-link FIFO order — the Kahn-network property every
// determinism argument rests on — is preserved by construction.
//
// Provenance: the producer allocates the token uid from its own shard
// journal (disjoint per-partition id ranges) and records the kTokenPush
// journal event at send time, in its own shard; delivery adds no journal
// traffic. The producer-side send index equals the link's eventual push
// index (every push to a boundary link goes through its channel), so
// journal streams stay per-link identical to a sequential run.
#pragma once

#include <cstdint>
#include <vector>

#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/event.hpp"

namespace dfdbg::sim {
class Kernel;
}  // namespace dfdbg::sim

namespace dfdbg::pedf {

class Link;

/// The producer-side ring of one partition-crossing link. Owned by the
/// Application; wired into the link via Link::set_outbox at start().
class BoundaryChannel {
 public:
  /// Channel slots used when the link itself is unbounded.
  static constexpr std::size_t kDefaultSlots = 1024;

  BoundaryChannel(Link& link, std::size_t capacity);

  BoundaryChannel(const BoundaryChannel&) = delete;
  BoundaryChannel& operator=(const BoundaryChannel&) = delete;

  [[nodiscard]] Link& link() const { return *link_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Tokens enqueued and not yet delivered.
  [[nodiscard]] std::size_t pending() const { return size_; }
  [[nodiscard]] bool full() const { return size_ == ring_.size(); }
  /// Tokens ever accepted == the producer-side push index sequence.
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  /// Tokens delivered into the link so far.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

  /// Producer worker: enqueues one token. Precondition: !full().
  /// Returns the token's producer-side index (== its eventual push index).
  std::uint64_t send(Value v, std::uint64_t uid);

  /// Producers blocked on a full channel wait here; the coordinator
  /// notifies after draining. Bound to the producer's partition.
  [[nodiscard]] sim::Event& space_avail() { return space_event_; }

  /// Coordinator, at a barrier: delivers queued tokens into the link while
  /// it has room, wakes the consumer (data became available) and the
  /// producer (space became available). Returns true when any token moved.
  bool drain(sim::Kernel& kernel);

 private:
  struct Slot {
    Value value;
    std::uint64_t uid = 0;
  };

  Link* link_;
  std::vector<Slot> ring_;
  std::size_t head_ = 0;  ///< oldest undelivered slot
  std::size_t size_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  sim::Event space_event_;
};

}  // namespace dfdbg::pedf

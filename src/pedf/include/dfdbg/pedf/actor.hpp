// Base class of the three PEDF entity kinds (paper §IV): Filter (computing
// actor), Controller (per-module scheduler) and Module (hierarchical
// composite), plus host I/O endpoints feeding/draining the root graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/pedf/value.hpp"

namespace dfdbg::sim {
class Pe;
}

namespace dfdbg::pedf {

class Link;
class Actor;
class Module;

struct ActorIdTag {};
/// Dense id of an actor within one application.
using ActorId = dfdbg::Id<ActorIdTag>;

/// Entity kind.
enum class ActorKind : std::uint8_t { kFilter, kController, kModule, kHostIo };

/// Short name for an ActorKind ("filter", ...).
const char* to_string(ActorKind k);

/// Direction of a port (data dependency end).
enum class PortDir : std::uint8_t { kIn, kOut };

/// A realized data-dependency endpoint on an actor instance. After binding
/// resolution every connected port references its Link.
class Port {
 public:
  Port(Actor* owner, std::string name, PortDir dir, TypeDesc type)
      : owner_(owner), name_(std::move(name)), dir_(dir), type_(type) {}

  [[nodiscard]] Actor& owner() const { return *owner_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] PortDir dir() const { return dir_; }
  [[nodiscard]] const TypeDesc& type() const { return type_; }

  /// The link this port is bound to (nullptr before resolution / if unbound).
  [[nodiscard]] Link* link() const { return link_; }
  void set_link(Link* link) { link_ = link; }

 private:
  Actor* owner_;
  std::string name_;
  PortDir dir_;
  TypeDesc type_;
  Link* link_ = nullptr;
};

/// What an actor is currently blocked on, if anything (exposed so the
/// debugger can answer "is this filter waiting for more data?").
struct BlockInfo {
  enum class Kind : std::uint8_t { kNone, kLinkEmpty, kLinkFull, kStart, kStep } kind = Kind::kNone;
  const Link* link = nullptr;
};

/// Common state of every PEDF entity.
class Actor {
 public:
  Actor(ActorKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] ActorKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Hierarchical path, e.g. "pred.ipred" (assigned at elaboration).
  [[nodiscard]] const std::string& path() const { return path_; }
  void set_path(std::string path) { path_ = std::move(path); }

  [[nodiscard]] ActorId id() const { return id_; }
  void set_id(ActorId id) { id_ = id; }

  /// Declares a port. Name must be unique on this actor.
  Port& add_port(std::string name, PortDir dir, TypeDesc type);

  /// Port by name (nullptr if absent).
  [[nodiscard]] Port* port(std::string_view name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Port>>& ports() const { return ports_; }
  /// All ports of one direction.
  [[nodiscard]] std::vector<Port*> ports_of(PortDir dir) const;

  /// Processing element this actor is mapped to (nullptr until mapping).
  [[nodiscard]] sim::Pe* pe() const { return pe_; }
  void set_pe(sim::Pe* pe) { pe_ = pe; }

  /// Current blocking state (maintained by the runtime shims).
  [[nodiscard]] const BlockInfo& blocked() const { return blocked_; }
  void set_blocked(BlockInfo b) { blocked_ = b; }

  /// Enclosing module (nullptr for the root module and host I/O actors).
  [[nodiscard]] Module* parent() const { return parent_; }
  void set_parent(Module* m) { parent_ = m; }

 private:
  ActorKind kind_;
  std::string name_;
  std::string path_;
  ActorId id_;
  std::vector<std::unique_ptr<Port>> ports_;
  sim::Pe* pe_ = nullptr;
  BlockInfo blocked_;
  Module* parent_ = nullptr;
};

}  // namespace dfdbg::pedf

// Modules: hierarchical composites of filters plus one controller
// (paper §IV). Module ports correspond to the unconnected arcs of the inner
// graph, so modules interconnect hierarchically; binding resolution flattens
// boundary ports into direct filter-to-filter links.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/pedf/actor.hpp"
#include "dfdbg/pedf/controller.hpp"
#include "dfdbg/pedf/filter.hpp"
#include "dfdbg/sim/event.hpp"

namespace dfdbg::pedf {

/// One `binds A.p to B.q` declaration. Endpoints are "<child>.<port>" or
/// "this.<port>" for the module's own boundary ports.
struct BindingDecl {
  std::string src;
  std::string dst;
};

/// A named runtime predicate usable by the module's controller.
struct PredicateDecl {
  std::string name;
  std::function<bool(Module&)> fn;
};

/// A hierarchical composite of actors.
class Module : public Actor {
 public:
  explicit Module(std::string name)
      : Actor(ActorKind::kModule, std::move(name)),
        init_done_("init-done:" + this->name()),
        sync_done_("sync-done:" + this->name()) {}

  /// Adds a child filter; returns a reference to it.
  Filter& add_filter(std::unique_ptr<Filter> f);
  /// Adds a child sub-module; returns a reference to it.
  Module& add_module(std::unique_ptr<Module> m);
  /// Installs the module controller (at most one).
  Controller& set_controller(std::unique_ptr<Controller> c);

  /// Declares `binds src to dst` (resolved at elaboration).
  void bind(std::string src, std::string dst);

  /// Defines a named predicate for the controller.
  void define_predicate(std::string name, std::function<bool(Module&)> fn);
  /// Looks a predicate up (nullptr if absent).
  [[nodiscard]] const PredicateDecl* predicate(std::string_view name) const;

  [[nodiscard]] Controller* controller() const { return controller_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Filter>>& filters() const { return filters_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& modules() const { return modules_; }
  [[nodiscard]] const std::vector<BindingDecl>& bindings() const { return bindings_; }

  /// Child filter/module/controller by name (nullptr if absent). The
  /// controller is addressable by its name like any child.
  [[nodiscard]] Actor* child(std::string_view name) const;
  /// Child filter by name (nullptr if absent or not a filter).
  [[nodiscard]] Filter* filter(std::string_view name) const;

  /// Current step number of this module's controller (0 before the first).
  [[nodiscard]] std::uint64_t step() const { return step_; }

  /// Filters scheduled (ACTOR_START) in the current step.
  [[nodiscard]] std::uint64_t scheduled_count() const { return sched_count_; }
  /// Of those, filters whose WORK actually began.
  [[nodiscard]] std::uint64_t started_count() const { return started_count_; }
  /// Of those, filters whose WORK finished.
  [[nodiscard]] std::uint64_t done_count() const { return done_count_; }

 private:
  friend class Application;
  friend class ControllerContext;

  std::unique_ptr<Controller> controller_;
  std::vector<std::unique_ptr<Filter>> filters_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<BindingDecl> bindings_;
  std::vector<PredicateDecl> predicates_;
  std::uint64_t step_ = 0;
  std::uint64_t sched_count_ = 0;
  std::uint64_t started_count_ = 0;
  std::uint64_t done_count_ = 0;
  sim::Event init_done_;
  sim::Event sync_done_;
};

}  // namespace dfdbg::pedf

// Module controllers (paper §IV-B).
//
// One controller per module schedules the module's filters in *steps* using
// the five PEDF primitives:
//   1. ACTOR_START(name)        — schedule a filter's WORK for this step
//   2. (WORK methods start)
//   3. WAIT_FOR_ACTOR_INIT()    — wait for actual start of execution
//   4. ACTOR_SYNC(name)         — request end-of-step
//   5. WAIT_FOR_ACTOR_SYNC()    — wait for actual end of the step
// plus the merged ACTOR_FIRE. Controllers may evaluate named predicates to
// change the graph behaviour at run time (the "Predicated Execution" part
// of PEDF) and may fire parts of the graph at different rates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dfdbg/pedf/actor.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::pedf {

class Application;
class Controller;
class Module;

/// The view a controller program gets of its module and the runtime.
class ControllerContext {
 public:
  ControllerContext(Application& app, Controller& self, Module& module)
      : app_(app), self_(self), module_(module) {}

  // --- the PEDF scheduling primitives --------------------------------------

  /// ACTOR_START: schedules `filter` (a direct child of this module) to run
  /// its WORK method in the current step.
  void actor_start(std::string_view filter);
  /// ACTOR_SYNC: requests `filter` to stop at the end of this step.
  void actor_sync(std::string_view filter);
  /// ACTOR_FIRE: START and SYNC merged (paper NB).
  void actor_fire(std::string_view filter);
  /// Rate control (PEDF runs "some parts of the graph at different rates"):
  /// fires `filter` exactly `n` times within the current step, waiting for
  /// each firing to complete. Must not be interleaved with other in-flight
  /// ACTOR_STARTs of the same step (each firing runs a full mini sync).
  void actor_fire_n(std::string_view filter, std::uint64_t n);
  /// WAIT_FOR_ACTOR_INIT: blocks until every filter scheduled this step has
  /// actually begun executing its WORK method.
  void wait_for_actor_init();
  /// WAIT_FOR_ACTOR_SYNC: blocks until every filter scheduled this step has
  /// finished; filters then return to idle.
  void wait_for_actor_sync();

  /// Closes the current step and opens the next (fires the step boundary
  /// events the debugger's scheduling monitor catches).
  void next_step();

  /// Evaluates the module predicate `name` (fires pedf__predicate_eval).
  bool predicate(std::string_view name);

  // --- controller data links -------------------------------------------------

  /// Pushes a command token on one of the controller's own output ports
  /// (Fig. 2's cmd_out links).
  void send(std::string_view port, const Value& v);
  /// Blocking pop from one of the controller's own input ports.
  Value receive(std::string_view port);

  // --- conveniences ---------------------------------------------------------

  /// Tokens currently waiting on child port "filter.port".
  [[nodiscard]] std::size_t tokens_available(std::string_view filter,
                                             std::string_view port) const;

  /// Models controller computation on its PE.
  void compute(sim::SimTime cycles);

  /// Current step number (starts at 1 inside the first step).
  [[nodiscard]] std::uint64_t step() const;

  [[nodiscard]] Module& module() { return module_; }
  [[nodiscard]] Controller& self() { return self_; }
  [[nodiscard]] Application& app() { return app_; }

 private:
  Application& app_;
  Controller& self_;
  Module& module_;
};

/// The per-module scheduler. Subclass and implement control() — it is the
/// whole controller program and typically loops over steps itself.
class Controller : public Actor {
 public:
  explicit Controller(std::string name) : Actor(ActorKind::kController, std::move(name)) {}

  /// The controller program. Runs once; schedule steps with the context.
  virtual void control(ControllerContext& ctx) = 0;

  /// Module this controller belongs to (set when attached).
  [[nodiscard]] Module* module() const { return module_; }

 private:
  friend class Module;
  Module* module_ = nullptr;
};

/// Controller whose program is a std::function (tests and small examples).
class FnController : public Controller {
 public:
  FnController(std::string name, std::function<void(ControllerContext&)> fn)
      : Controller(std::move(name)), fn_(std::move(fn)) {}

  void control(ControllerContext& ctx) override { fn_(ctx); }

 private:
  std::function<void(ControllerContext&)> fn_;
};

}  // namespace dfdbg::pedf

// Names of the framework API functions the debugger sets function/finish
// breakpoints on. These are the "programming-model related functions
// exported by the dataflow framework" of paper §V.
//
// Instance symbols ("<base>@<entity>") implement the framework-cooperation
// extension (paper §V option 2): the framework additionally reports a
// per-link / per-actor symbol so the debugger can arm only the instances of
// interest.
#pragma once

#include <string>
#include <string_view>

namespace dfdbg::pedf::symbols {

// Elaboration / graph registration (debugger Contribution #1 listens here).
inline constexpr const char* kRegisterActor = "pedf__register_actor";
inline constexpr const char* kRegisterPort = "pedf__register_port";
inline constexpr const char* kRegisterLink = "pedf__register_link";
inline constexpr const char* kGraphReady = "pedf__graph_ready";

// Data exchanges (Contribution #3; the hot breakpoints of §V).
inline constexpr const char* kLinkPush = "pedf__link_push";
inline constexpr const char* kLinkPop = "pedf__link_pop";

// Filter execution (token-based firing).
inline constexpr const char* kWorkEnter = "pedf__work_enter";
inline constexpr const char* kWorkExit = "pedf__work_exit";
inline constexpr const char* kFilterLine = "pedf__filter_line";

// Controller scheduling (Contribution #2).
inline constexpr const char* kActorStart = "pedf__actor_start";
inline constexpr const char* kActorSync = "pedf__actor_sync";
inline constexpr const char* kWaitActorInit = "pedf__wait_actor_init";
inline constexpr const char* kWaitActorSync = "pedf__wait_actor_sync";
inline constexpr const char* kStepBegin = "pedf__step_begin";
inline constexpr const char* kStepEnd = "pedf__step_end";
inline constexpr const char* kPredicateEval = "pedf__predicate_eval";

// Debugger-initiated alterations (observable like any other event).
inline constexpr const char* kDebugInject = "pedf__debug_inject";
inline constexpr const char* kDebugRemove = "pedf__debug_remove";
inline constexpr const char* kDebugReplace = "pedf__debug_replace";

/// Builds an instance symbol: "pedf__link_push@front.vld::coeff_out".
inline std::string instance(std::string_view base, std::string_view entity) {
  std::string s(base);
  s += '@';
  s += entity;
  return s;
}

}  // namespace dfdbg::pedf::symbols

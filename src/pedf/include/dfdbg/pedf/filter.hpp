// Filters: the computing actors of PEDF (paper §IV-C).
//
// A filter implements one *step* of processing in its WORK method, written
// against a restricted interface (`pedf.io.*`, `pedf.data.*`,
// `pedf.attribute.*`) so it can be synthesized into a hardware accelerator.
// Here WORK is a virtual method receiving a FilterContext that exposes the
// same three namespaces plus explicit compute-latency and source-line
// markers (our stand-in for the DWARF line table of the synthesized code).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dfdbg/pedf/actor.hpp"
#include "dfdbg/sim/event.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::pedf {

class Application;
class Filter;

/// Per-step execution state of a filter, as the module controller and the
/// debugger's scheduling monitor see it (paper Contribution #2).
enum class StepState : std::uint8_t {
  kIdle,       ///< not scheduled for the current step
  kScheduled,  ///< ACTOR_START issued, WORK not yet running
  kRunning,    ///< WORK executing
  kDone,       ///< WORK returned for this step
};

/// Short name for a StepState ("idle", ...).
const char* to_string(StepState s);

/// The view WORK methods get of the framework ("pedf." in filter sources).
class FilterContext {
 public:
  FilterContext(Application& app, Filter& self) : app_(app), self_(self) {}

  /// Read side of an inbound interface.
  class In {
   public:
    /// Blocking read of the next token (paper: pedf.io.an_input[n]).
    Value get();
    /// Blocking read that returns nullopt if the application is shutting
    /// down I/O instead of ever producing data again.
    std::optional<Value> get_opt();
    /// Batched blocking read of up to `n` tokens into `out` (the batched
    /// firing fast path: one framework-API call for the whole burst).
    /// Returns the number read — short only when I/O is shutting down.
    std::size_t get_n(Value* out, std::size_t n);
    /// Tokens currently waiting on this interface.
    [[nodiscard]] std::size_t available() const;

   private:
    friend class FilterContext;
    In(FilterContext* ctx, Port* port) : ctx_(ctx), port_(port) {}
    FilterContext* ctx_;
    Port* port_;
  };

  /// Write side of an outbound interface.
  class Out {
   public:
    /// Blocking write of one token (paper: pedf.io.an_output[n] = d).
    void put(const Value& v);
    /// Batched blocking write of `n` tokens (the batched firing fast path).
    void put_n(const Value* vs, std::size_t n);

   private:
    friend class FilterContext;
    Out(FilterContext* ctx, Port* port) : ctx_(ctx), port_(port) {}
    FilterContext* ctx_;
    Port* port_;
  };

  /// Inbound interface accessor; checks the port exists and is inbound.
  In in(std::string_view port);
  /// Outbound interface accessor; checks the port exists and is outbound.
  Out out(std::string_view port);

  /// Private datum declared in the architecture description.
  Value& data(std::string_view name);
  /// Attribute declared in the architecture description.
  Value& attr(std::string_view name);

  /// Marks execution of source line `line` (drives source-level breakpoints
  /// and watchpoint sampling — the "two-level debugging" lower level).
  void line(int line);

  /// Models `cycles` of computation on the filter's mapped PE.
  void compute(sim::SimTime cycles);

  /// True once the module controller issued ACTOR_SYNC for this step; WORK
  /// should finish its current step promptly.
  [[nodiscard]] bool sync_requested() const;

  /// For free-running (host I/O) filters: requests loop termination.
  void stop();

  /// The filter's configured firing batch size (Filter::set_fire_batch);
  /// batch-aware WORK methods use it to size their get_n/put_n bursts.
  [[nodiscard]] std::size_t fire_batch() const;

  [[nodiscard]] Filter& self() { return self_; }
  [[nodiscard]] Application& app() { return app_; }

 private:
  Application& app_;
  Filter& self_;
};

/// A computing actor. Subclass and implement work(); or use FnFilter.
class Filter : public Actor {
 public:
  explicit Filter(std::string name, ActorKind kind = ActorKind::kFilter)
      : Actor(kind, std::move(name)), start_event_("start:" + this->name()) {}

  /// One step of processing.
  virtual void work(FilterContext& pedf) = 0;

  // --- architecture-declared state -----------------------------------------

  /// Declares private data `name` initialized to `init`.
  Value& declare_data(std::string name, Value init);
  /// Declares attribute `name` initialized to `init`.
  Value& declare_attribute(std::string name, Value init);

  [[nodiscard]] Value* data(std::string_view name);
  [[nodiscard]] Value* attribute(std::string_view name);
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& all_data() const {
    return data_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& all_attributes() const {
    return attrs_;
  }

  // --- source-level debug info ---------------------------------------------

  /// Registers the filter's source listing (file name, number of the first
  /// line, text lines). This is what `list` shows and what line breakpoints
  /// resolve against.
  void set_source(std::string file, int first_line, std::vector<std::string> lines);
  [[nodiscard]] const std::string& source_file() const { return src_file_; }
  [[nodiscard]] int source_first_line() const { return src_first_line_; }
  [[nodiscard]] const std::vector<std::string>& source_lines() const { return src_lines_; }

  // --- scheduling state (managed by the runtime/controller) -----------------

  [[nodiscard]] StepState step_state() const { return step_state_; }
  [[nodiscard]] bool sync_requested() const { return sync_requested_; }
  [[nodiscard]] bool terminate_requested() const { return terminate_; }
  [[nodiscard]] std::uint64_t firings() const { return firings_; }
  /// Line most recently marked via FilterContext::line.
  [[nodiscard]] int current_line() const { return current_line_; }

  /// Free-running filters have no controller; WORK is called in a loop until
  /// FilterContext::stop() (host I/O endpoints use this).
  [[nodiscard]] bool free_running() const { return free_running_; }
  void set_free_running(bool fr) { free_running_ = fr; }

  /// Firing batch size: how many tokens a batch-aware WORK moves per
  /// framework-API call (FilterContext get_n/put_n). Default 1 — the
  /// paper-faithful token-at-a-time hook stream; opting in trades hook
  /// granularity (one pedf__link_push/pop scope per burst instead of per
  /// token) for throughput. Journal provenance stays per-token either way.
  [[nodiscard]] std::size_t fire_batch() const { return fire_batch_; }
  void set_fire_batch(std::size_t n) { fire_batch_ = n == 0 ? 1 : n; }

 private:
  friend class Application;
  friend class ControllerContext;
  friend class FilterContext;

  std::vector<std::pair<std::string, Value>> data_;
  std::vector<std::pair<std::string, Value>> attrs_;
  std::string src_file_;
  int src_first_line_ = 1;
  std::vector<std::string> src_lines_;

  StepState step_state_ = StepState::kIdle;
  bool sync_requested_ = false;
  bool terminate_ = false;
  bool free_running_ = false;
  std::size_t fire_batch_ = 1;
  std::uint64_t firings_ = 0;
  int current_line_ = 0;
  sim::Event start_event_;
};

/// Filter whose WORK is a std::function (for tests and small examples).
class FnFilter : public Filter {
 public:
  FnFilter(std::string name, std::function<void(FilterContext&)> fn)
      : Filter(std::move(name)), fn_(std::move(fn)) {}

  void work(FilterContext& pedf) override { fn_(pedf); }

 private:
  std::function<void(FilterContext&)> fn_;
};

}  // namespace dfdbg::pedf

// The PEDF runtime: owns a dataflow application (root module hierarchy plus
// host I/O endpoints), elaborates it onto the platform, spawns its simulated
// processes, and exposes the framework API functions (`pedf__*`) that the
// debugger sets function/finish breakpoints on.
//
// The runtime contains NO debugger knowledge: every observation travels
// through the simulator's instrumentation port (paper §V: "we decided not to
// alter the dataflow framework"). Conversely, the debugger may alter the
// execution while it is stopped through the debug_* entry points, which fire
// their own observable events (pedf__debug_inject/...).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/pedf/controller.hpp"
#include "dfdbg/pedf/filter.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/pedf/module.hpp"
#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/instrument.hpp"
#include "dfdbg/sim/platform.hpp"

namespace dfdbg::pedf {

class BoundaryChannel;
class HostSource;
class HostSink;

/// Interned SymbolIds of the framework API functions (see symbols.hpp).
struct ApiSymbols {
  sim::SymbolId register_actor, register_port, register_link, graph_ready;
  sim::SymbolId link_push, link_pop;
  sim::SymbolId work_enter, work_exit, filter_line;
  sim::SymbolId actor_start, actor_sync, wait_actor_init, wait_actor_sync;
  sim::SymbolId step_begin, step_end, predicate_eval;
  sim::SymbolId debug_inject, debug_remove, debug_replace;
};

/// Per-link instance symbols (framework-cooperation extension): push is
/// keyed by the producing interface, pop by the consuming interface.
struct LinkSymbols {
  sim::SymbolId push_iface;  ///< "pedf__link_push@<src>::<port>"
  sim::SymbolId pop_iface;   ///< "pedf__link_pop@<dst>::<port>"
};

/// A complete dataflow application instance.
class Application {
 public:
  /// `platform` must outlive the application.
  Application(sim::Platform& platform, std::string name);
  ~Application();

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Platform& platform() { return platform_; }
  [[nodiscard]] sim::Kernel& kernel() { return platform_.kernel(); }
  [[nodiscard]] TypeRegistry& types() { return types_; }

  // --- construction ---------------------------------------------------------

  /// Installs the root module; returns a reference to it.
  Module& set_root(std::unique_ptr<Module> root);
  [[nodiscard]] Module& root() { return *root_; }
  [[nodiscard]] bool has_root() const { return root_ != nullptr; }

  /// Adds a host-side source feeding tokens into the unbound input port
  /// `target` ("front.module_in"). `period` models inter-token host work.
  HostSource& add_host_source(std::string name, const std::string& target,
                              std::vector<Value> stream, sim::SimTime period = 0);

  /// Adds a host-side sink draining the unbound output port `target`. Stops
  /// after `expected` tokens (or at finish_io()).
  HostSink& add_host_sink(std::string name, const std::string& target,
                          std::size_t expected = SIZE_MAX);

  /// Pins an actor (by hierarchical path) to a named PE; otherwise actors
  /// are mapped round-robin on fabric PEs (host I/O on host cores).
  void map_actor(std::string path, std::string pe_name);

  // --- partitioning (parallel kernel backend) --------------------------------
  // With a kParallel kernel, start() splits the graph's processes across the
  // kernel's partitions. The default map follows the platform: an actor's
  // partition is its PE's cluster index modulo the worker count (host-mapped
  // actors land in partition 0), mirroring how a P2012 functional simulator
  // would parallelize per cluster. Constraints (validated at start, fatal on
  // violation): a controller and the filters of its module form one
  // indivisible unit (controllers mutate their filters' scheduling state
  // directly), and actors sharing a PE must share a partition (the PE's
  // exclusivity event can only serve one partition). Links whose endpoints
  // end up in different partitions get a BoundaryChannel (see boundary.hpp).

  /// Overrides the partition of the actor at `path` (hierarchical path or
  /// unique short name; a module applies to its controller and filters).
  /// Ignored by sequential kernels. Call before start().
  void set_partition(const std::string& path, int partition);

  /// How start() computes the default partition map (explicit set_partition
  /// overrides always win on top of either policy).
  enum class PartitionPolicy {
    kClusterModulo,  ///< default: PE cluster index modulo worker count
    /// Rebalances from a recorded dispatch profile: atomic units — module
    /// controller+filters merged with PE co-residents — are weighted by
    /// observed load and placed greedily, heaviest first, onto the
    /// least-loaded partition (LPT). A time profile
    /// (set_partition_time_profile, typically dispatch_time_profile() of an
    /// observed previous run) takes precedence; otherwise the activation
    /// profile (set_partition_profile) is used. Deterministic for a given
    /// profile; with no profile installed it degrades to kClusterModulo.
    kAdaptive,
  };
  void set_partition_policy(PartitionPolicy p) {
    DFDBG_CHECK_MSG(!started_, "set_partition_policy after start");
    partition_policy_ = p;
  }
  [[nodiscard]] PartitionPolicy partition_policy() const { return partition_policy_; }

  /// Observed per-actor load of this run: path -> process activation count.
  /// Deterministic (activations are part of the schedule, not wall time);
  /// feed it to set_partition_profile() on a fresh instance to rebalance.
  [[nodiscard]] std::map<std::string, std::uint64_t> dispatch_profile() const;

  /// Installs the load profile the kAdaptive policy partitions against.
  /// Call before start(); actors absent from the map weigh 1.
  void set_partition_profile(std::map<std::string, std::uint64_t> profile) {
    DFDBG_CHECK_MSG(!started_, "set_partition_profile after start");
    partition_profile_ = std::move(profile);
  }

  /// Observed per-actor fire time of this run: path -> wall nanoseconds the
  /// actor's process spent inside its dispatches. Accumulated only on the
  /// parallel backend while obs::enabled() (empty otherwise); a measurement,
  /// not part of the schedule — feed it to set_partition_time_profile() on a
  /// fresh instance to rebalance by time instead of activation count.
  [[nodiscard]] std::map<std::string, std::uint64_t> dispatch_time_profile() const;

  /// Installs the time profile the kAdaptive policy prefers over the
  /// activation profile (time-weighted LPT: sim.worker.N.work_ns closes the
  /// loop instead of activation counts). Call before start(); actors absent
  /// from the map weigh 1. The placement is a pure function of (graph,
  /// profile, worker count) — but a *measured* profile varies run to run, so
  /// pin the profile itself when byte-stable schedules matter.
  void set_partition_time_profile(std::map<std::string, std::uint64_t> profile) {
    DFDBG_CHECK_MSG(!started_, "set_partition_time_profile after start");
    partition_time_profile_ = std::move(profile);
  }

  /// Partition the actor's process runs in (0 on sequential backends).
  [[nodiscard]] int actor_partition(const Actor& a) const {
    return a.id().value() < partition_of_.size() ? partition_of_[a.id().value()] : 0;
  }

  /// Channels of the links that cross partitions (empty on sequential
  /// backends), in link-id order — also the barrier drain order.
  [[nodiscard]] const std::vector<std::unique_ptr<BoundaryChannel>>& boundaries() const {
    return boundaries_;
  }

  // --- elaboration & execution ----------------------------------------------

  /// Resolves bindings into links, assigns paths/ids, maps actors to PEs,
  /// interns the API symbols and replays the whole graph through the
  /// registration instrumentation (the init phase the debugger's graph
  /// reconstruction listens to). Idempotent on failure; call once.
  Status elaborate();
  [[nodiscard]] bool elaborated() const { return elaborated_; }

  /// Re-fires the graph registration events (a debugger attaching after
  /// elaboration uses this to rebuild its model, the way GDB reads static
  /// debug info when attaching to a running process).
  void replay_registration();

  /// Spawns the simulated processes (filters, controllers, host I/O).
  /// Requires elaborate(); the caller then drives kernel().run().
  void start();
  [[nodiscard]] bool started() const { return started_; }

  /// Requests termination of host I/O actors blocked on empty links (used
  /// when the graph has naturally drained). Safe while stopped.
  void finish_io();

  // --- queries ----------------------------------------------------------------

  /// All actors in elaboration order (modules, controllers, filters, host I/O).
  [[nodiscard]] const std::vector<Actor*>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// Actor by full path ("pred.ipred"); nullptr if unknown.
  [[nodiscard]] Actor* actor_by_path(std::string_view path) const;
  /// Actor by unique short name ("ipred" — the paper's CLI addressing);
  /// nullptr if unknown. Short names are verified unique at elaboration.
  [[nodiscard]] Actor* actor_by_name(std::string_view name) const;
  /// Filter by unique short name; nullptr if unknown or not a filter.
  [[nodiscard]] Filter* filter_by_name(std::string_view name) const;
  [[nodiscard]] Link* link_by_id(LinkId id) const;
  /// The link attached to interface "<actor short name>::<port>" (paper's
  /// iface syntax); nullptr if unknown.
  [[nodiscard]] Link* link_by_iface(std::string_view iface) const;
  /// Port by (actor short name, port name); nullptr if unknown.
  [[nodiscard]] Port* find_port(std::string_view actor, std::string_view port) const;

  [[nodiscard]] const ApiSymbols& syms() const { return syms_; }
  [[nodiscard]] const LinkSymbols& link_syms(LinkId id) const;

  /// Framework cooperation (paper §V option 2): also fire per-interface
  /// instance symbols on data exchanges. Off by default.
  void set_cooperation(bool on) { cooperation_ = on; }
  [[nodiscard]] bool cooperation() const { return cooperation_; }

  /// Toggles latency modelling of data exchanges (memory/DMA costs). On by
  /// default; benchmarks can disable it to isolate debugger overhead.
  void set_model_latencies(bool on) { model_latencies_ = on; }
  [[nodiscard]] bool model_latencies() const { return model_latencies_; }

  // --- debugger-initiated alteration (call only while stopped) ---------------

  /// Inserts a token at the tail of `link`; returns its push index.
  std::uint64_t debug_inject(Link& link, Value v);
  /// Removes queued token `idx` (0 = oldest) from `link`; returns it.
  Value debug_remove(Link& link, std::size_t idx);
  /// Overwrites queued token `idx` of `link`.
  void debug_replace(Link& link, std::size_t idx, Value v);

 private:
  friend class FilterContext;
  friend class ControllerContext;

  // Runtime shims: the framework API functions. Each wraps its body in an
  // InstrScope so entry/exit hooks ("function"/"finish" breakpoints) fire.
  void rt_link_push(Actor& actor, Port& port, const Value& v);
  /// Producer side of a partition-crossing link: same API surface (scope,
  /// blocking, journal provenance), but the token goes to the link's
  /// BoundaryChannel and is delivered by the coordinator at the barrier.
  void rt_link_push_boundary(Actor& actor, Port& port, Link& link, const Value& v);
  std::optional<Value> rt_link_pop(Actor& actor, Port& port);
  // Batch fast paths (the batched-fire option): one instrumentation scope,
  // one blocking check and one coalesced notify per chunk instead of per
  // token. Journal provenance is still recorded per token. Only reachable
  // through FilterContext::{put_n,get_n}, so filters that never opt in see
  // the token-at-a-time hook stream unchanged.
  void rt_link_push_n(Actor& actor, Port& port, const Value* vs, std::size_t n);
  std::size_t rt_link_pop_n(Actor& actor, Port& port, Value* out, std::size_t n);
  void rt_work_enter(Filter& f);
  void rt_work_exit(Filter& f);
  void rt_filter_line(Filter& f, int line);
  void rt_actor_start(Controller& c, Filter& f);
  void rt_actor_sync(Controller& c, Filter& f);
  void rt_wait_actor_init(Controller& c, Module& m);
  void rt_wait_actor_sync(Controller& c, Module& m);
  void rt_step_begin(Controller& c, Module& m);
  void rt_step_end(Controller& c, Module& m);
  bool rt_predicate_eval(Controller& c, Module& m, std::string_view name);

  /// Models the platform cost of moving `n` tokens across `link` (memory +
  /// DMA); a batch is one access of n*byte_size bytes, like a burst DMA.
  void model_transfer_cost(Link& link, std::size_t n = 1);

  void collect_actors(Module& m);
  Status resolve_bindings();
  void assign_mapping();
  void intern_symbols();
  void intern_link_symbols();
  /// Parallel backend, called from start(): computes the partition map
  /// (defaults + overrides), validates the atomicity constraints, pre-binds
  /// every runtime event to its waiting partition, builds the boundary
  /// channels and registers the barrier drain.
  void prepare_partitions();
  /// kAdaptive: overwrites the cluster-modulo defaults in partition_of_ with
  /// the LPT placement computed from partition_time_profile_ (preferred)
  /// or partition_profile_.
  void rebalance_partitions_adaptive(int workers);
  /// The kernel *full-barrier* task (quiescence fallback and debug stops):
  /// fully drains every boundary channel in link order. Ordinary rounds move
  /// boundary tokens through the relaxed-synchrony hooks instead
  /// (eager_drain_boundaries / publish_boundaries; see boundary.hpp).
  bool drain_boundaries();
  /// Consumer-shard eager drain: delivers published tokens on `partition`'s
  /// inbound channels, in link order. Returns tokens delivered.
  std::size_t eager_drain_boundaries(int partition);
  /// Coordinator publish: snapshots every channel, reclaims slots, wakes
  /// blocked producers. Returns true when a producer was woken.
  bool publish_boundaries();
  void spawn_filter_process(Filter* f);
  void spawn_controller_process(Controller* c, Module* m);

  sim::Platform& platform_;
  std::string name_;
  TypeRegistry types_;
  std::unique_ptr<Module> root_;
  std::vector<std::unique_ptr<Filter>> host_io_;  // sources & sinks
  struct HostBinding {
    Filter* host_actor;
    std::string target;  // "front.module_in"
    bool is_source;
  };
  std::vector<HostBinding> host_bindings_;
  std::vector<Actor*> actors_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<LinkSymbols> link_syms_;
  std::unordered_map<std::string, Actor*> by_path_;
  std::unordered_map<std::string, Actor*> by_name_;
  std::unordered_map<std::string, std::string> pinned_;  // path -> pe name
  // Partitioning state (parallel backend; empty otherwise). The override
  // map is ordered so conflicting-override diagnostics are deterministic.
  std::map<std::string, int> partition_override_;  // path/name -> partition
  std::vector<int> partition_of_;                  // by ActorId value
  PartitionPolicy partition_policy_ = PartitionPolicy::kClusterModulo;
  std::map<std::string, std::uint64_t> partition_profile_;       // path -> activations
  std::map<std::string, std::uint64_t> partition_time_profile_;  // path -> fire ns
  std::vector<std::unique_ptr<BoundaryChannel>> boundaries_;
  /// boundaries_ grouped by consumer partition, each group in link-id order
  /// (the eager-drain order; built in prepare_partitions).
  std::vector<std::vector<BoundaryChannel*>> inbound_by_shard_;
  ApiSymbols syms_;
  bool elaborated_ = false;
  bool started_ = false;
  bool cooperation_ = false;
  bool model_latencies_ = true;
  bool io_finishing_ = false;
};

/// Free-running host-side producer: feeds a prepared token stream into the
/// graph (models the host application pushing data through L3/DMA).
class HostSource : public Filter {
 public:
  HostSource(std::string name, TypeDesc type, std::vector<Value> stream, sim::SimTime period);

  void work(FilterContext& pedf) override;

  /// Tokens pushed so far.
  [[nodiscard]] std::size_t produced() const { return produced_; }

 private:
  std::vector<Value> stream_;
  sim::SimTime period_;
  std::size_t produced_ = 0;
};

/// Free-running host-side consumer: drains a graph output and keeps the
/// received tokens for verification.
class HostSink : public Filter {
 public:
  HostSink(std::string name, TypeDesc type, std::size_t expected);

  void work(FilterContext& pedf) override;

  [[nodiscard]] const std::vector<Value>& received() const { return received_; }

 private:
  std::size_t expected_;
  std::vector<Value> received_;
};

}  // namespace dfdbg::pedf

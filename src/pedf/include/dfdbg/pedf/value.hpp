// Token payload values and their types.
//
// PEDF filters are written in a restricted C subset destined for hardware
// synthesis, so the type system is small: fixed-width scalars (the paper's
// stddefs.h U8/U16/U32, plus signed/float variants) and flat structs of
// scalars (e.g. the H.264 decoder's CbCrMB_t{Addr, InterNotIntra, Izz}).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg::pedf {

/// Scalar types available to filter code.
enum class ScalarType : std::uint8_t { kU8, kU16, kU32, kI32, kF32 };

/// Name as written in filter sources ("U8", "U16", ...).
const char* to_string(ScalarType t);
/// Parses "U8"/"U16"/"U32"/"I32"/"F32"; returns false on unknown names.
bool parse_scalar_type(const std::string& name, ScalarType* out);

/// One field of a struct type.
struct FieldDesc {
  std::string name;
  ScalarType type = ScalarType::kU32;
  bool print_hex = false;  ///< render as 0x… (addresses, like CbCrMB_t.Addr)
};

/// A flat struct-of-scalars type (token payload of a coarse-grain link).
class StructType {
 public:
  StructType(std::string name, std::vector<FieldDesc> fields);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<FieldDesc>& fields() const { return fields_; }

  /// Index of `field`, or -1 if absent. O(1): served from a precomputed
  /// name->index map with heterogeneous lookup (no temporary std::string).
  [[nodiscard]] int field_index(std::string_view field) const {
    auto it = index_.find(field);
    return it == index_.end() ? -1 : static_cast<int>(it->second);
  }

 private:
  std::string name_;
  std::vector<FieldDesc> fields_;
  std::unordered_map<std::string, std::uint32_t, TransparentStringHash, std::equal_to<>>
      index_;
};

/// A value type: either a scalar or a registered struct.
class TypeDesc {
 public:
  /// Default: U32 (the paper's ubiquitous link type).
  TypeDesc() = default;
  explicit TypeDesc(ScalarType s) : scalar_(s) {}
  explicit TypeDesc(const StructType* st) : struct_(st) {}

  [[nodiscard]] bool is_struct() const { return struct_ != nullptr; }
  [[nodiscard]] ScalarType scalar() const { return scalar_; }
  [[nodiscard]] const StructType* struct_type() const { return struct_; }

  /// "U32", "CbCrMB_t", ...
  [[nodiscard]] std::string name() const;

  /// Approximate payload footprint in bytes (drives memory/DMA latencies).
  [[nodiscard]] std::uint64_t byte_size() const;

  friend bool operator==(const TypeDesc& a, const TypeDesc& b) {
    return a.struct_ == b.struct_ && (a.struct_ != nullptr || a.scalar_ == b.scalar_);
  }

 private:
  ScalarType scalar_ = ScalarType::kU32;
  const StructType* struct_ = nullptr;
};

/// Owns struct type definitions; one per application.
class TypeRegistry {
 public:
  /// Registers a struct type; name must be unique.
  const StructType* define_struct(std::string name, std::vector<FieldDesc> fields);
  /// Finds a struct by name (nullptr if unknown).
  [[nodiscard]] const StructType* find_struct(const std::string& name) const;
  /// Resolves a type name: scalar names first, then registered structs.
  [[nodiscard]] bool resolve(const std::string& name, TypeDesc* out) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<StructType>> structs_;
};

/// A token payload. Small-buffer optimized: scalars and structs of up to
/// kInlineFields fields store their 64-bit slots inline (copying a token is
/// a 32-byte memcpy, no heap traffic — the steady-state H.264 types
/// CbCrMB_t/MbHdr_t/MbDone_t all fit); wider structs (Blk_t's 23 coefficient
/// fields) spill their slots to one heap array.
class Value {
 public:
  /// Struct payloads of up to this many fields live inline.
  static constexpr std::size_t kInlineFields = 4;

  /// Default: U32 zero.
  Value() = default;
  Value(const Value& o) { copy_from(o); }
  Value(Value&& o) noexcept { steal_from(o); }
  Value& operator=(const Value& o) {
    if (this != &o) {
      release();
      copy_from(o);
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      release();
      steal_from(o);
    }
    return *this;
  }
  ~Value() { release(); }

  static Value u8(std::uint8_t v);
  static Value u16(std::uint16_t v);
  static Value u32(std::uint32_t v);
  static Value i32(std::int32_t v);
  static Value f32(float v);
  /// Zero-initialized struct value of type `st`.
  static Value make_struct(const StructType* st);
  /// Zero value of an arbitrary type.
  static Value zero_of(const TypeDesc& type);

  [[nodiscard]] const TypeDesc& type() const { return type_; }

  /// True when the payload lives on the heap (struct wider than
  /// kInlineFields). Exposed so tests and benchmarks can pin down the
  /// SBO/spill boundary.
  [[nodiscard]] bool spilled() const { return spilled_; }

  // --- scalar access (preconditions: !is_struct) ---------------------------
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] float as_f32() const;
  void set_scalar_u64(std::uint64_t bits);

  // --- struct access (preconditions: is_struct) ----------------------------
  [[nodiscard]] std::uint64_t field_u64(std::string_view field) const;
  [[nodiscard]] std::uint64_t field_u64_at(std::size_t idx) const;
  void set_field(std::string_view field, std::uint64_t bits);
  void set_field_at(std::size_t idx, std::uint64_t bits);

  /// Renders like the paper's transcripts: "(U16) 5" for scalars and
  /// "(CbCrMB_t){Addr=0x145D, InterNotIntra=1, Izz=168460492}" for structs.
  [[nodiscard]] std::string to_string() const;
  /// Struct body only ("{Addr=0x145D, ...}"); scalar value text for scalars.
  [[nodiscard]] std::string payload_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (!(a.type_ == b.type_)) return false;
    const std::size_t n = a.word_count();
    const std::uint64_t* wa = a.words();
    const std::uint64_t* wb = b.words();
    for (std::size_t i = 0; i < n; ++i)
      if (wa[i] != wb[i]) return false;
    return true;
  }

 private:
  /// 64-bit payload slots: scalar bits in words()[0], struct fields in
  /// declaration order.
  [[nodiscard]] const std::uint64_t* words() const { return spilled_ ? heap_ : inl_; }
  [[nodiscard]] std::uint64_t* words() { return spilled_ ? heap_ : inl_; }
  /// Slots in use: 1 for scalars, the field count for structs.
  [[nodiscard]] std::size_t word_count() const {
    return type_.is_struct() ? type_.struct_type()->fields().size() : 1;
  }
  [[nodiscard]] std::size_t field_count() const {
    DFDBG_DCHECK(type_.is_struct());
    return type_.struct_type()->fields().size();
  }

  void release() {
    if (spilled_) delete[] heap_;
  }
  void copy_from(const Value& o);
  /// Takes o's payload (a pointer steal when spilled); o becomes U32 zero.
  void steal_from(Value& o) noexcept {
    type_ = o.type_;
    spilled_ = o.spilled_;
    if (spilled_) {
      heap_ = o.heap_;
      o.type_ = TypeDesc();
      o.spilled_ = false;
      o.inl_[0] = 0;
    } else {
      for (std::size_t i = 0; i < kInlineFields; ++i) inl_[i] = o.inl_[i];
    }
  }

  TypeDesc type_;
  bool spilled_ = false;
  union {
    std::uint64_t inl_[kInlineFields] = {0, 0, 0, 0};
    std::uint64_t* heap_;
  };
};

}  // namespace dfdbg::pedf

// A data-dependency link: the FIFO arc materializing one graph edge.
//
// Dynamic dataflow: rates are unconstrained, so links are unbounded by
// default; a capacity can be set to study over/underflow (the paper's §VI-D
// stall scenario). Push and pop indexes are monotonic counters — the paper's
// Contribution #3 intercepts exactly these indexes to follow tokens.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/event.hpp"

namespace dfdbg::pedf {

class Port;

struct LinkIdTag {};
/// Dense id of a link within one application.
using LinkId = dfdbg::Id<LinkIdTag>;

/// How a link is physically carried on the platform (paper Fig. 4 legend:
/// plain data links, control links, DMA-assisted control links).
enum class LinkTransport : std::uint8_t { kLocal, kInterCluster, kHostDma };

/// Short name for a LinkTransport ("L1", "L2", "DMA").
const char* to_string(LinkTransport t);

/// FIFO arc between one producer port and one consumer port.
/// Raw container only: blocking, latency modelling and instrumentation live
/// in the Application shims (pedf__link_push / pedf__link_pop) so the
/// framework API surface matches what the paper's debugger breakpoints.
class Link {
 public:
  Link(LinkId id, std::string name, TypeDesc type, Port* src, Port* dst)
      : id_(id), name_(std::move(name)), type_(type), src_(src), dst_(dst),
        data_avail_("link-data:" + name_), space_avail_("link-space:" + name_) {}

  [[nodiscard]] LinkId id() const { return id_; }
  /// "ipred::Add2Dblock_ipf_out -> ipf::Add2Dblock_ipred_in"
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const TypeDesc& type() const { return type_; }
  [[nodiscard]] Port* src() const { return src_; }
  [[nodiscard]] Port* dst() const { return dst_; }

  /// Tokens currently held (push_index - pop_index).
  [[nodiscard]] std::size_t occupancy() const { return q_.size(); }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] bool full() const { return q_.size() >= capacity_; }

  /// Monotonic counter of tokens ever pushed.
  [[nodiscard]] std::uint64_t push_index() const { return push_index_; }
  /// Monotonic counter of tokens ever popped.
  [[nodiscard]] std::uint64_t pop_index() const { return pop_index_; }

  /// Maximum occupancy ever reached (stall diagnosis).
  [[nodiscard]] std::size_t high_watermark() const { return high_watermark_; }

  /// Bounded capacity; defaults to "unbounded" (SIZE_MAX).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  [[nodiscard]] LinkTransport transport() const { return transport_; }
  void set_transport(LinkTransport t) { transport_ = t; }

  // Token provenance ids: every pushed token is assigned the next id from
  // the process-wide sequence (obs::Journal::alloc_token) and carries it
  // through the queue — including across debugger erase/replace, where the
  // monotonic push/pop indexes alone lose the slot<->token mapping. The
  // always-on cost is one counter increment plus one u64 deque op per
  // token; ids are deterministic because the kernel is.

  /// Provenance id assigned by the most recent push (0 before any push).
  [[nodiscard]] std::uint64_t last_pushed_uid() const { return last_pushed_uid_; }
  /// Provenance id of the most recently popped token (0 before any pop).
  [[nodiscard]] std::uint64_t last_popped_uid() const { return last_popped_uid_; }
  /// Provenance id of queued token `i` (0 = oldest).
  [[nodiscard]] std::uint64_t token_uid_at(std::size_t i) const;

  /// Appends a value; returns its push index. Precondition: !full().
  std::uint64_t push_raw(Value v);
  /// Removes the oldest value; returns it. Precondition: !empty().
  Value pop_raw();
  /// Reads queued value `i` (0 = oldest) without consuming it.
  [[nodiscard]] const Value& peek(std::size_t i) const;
  /// Overwrites queued value `i` (debugger alteration).
  void poke(std::size_t i, Value v);
  /// Removes queued value `i` (debugger alteration); returns it.
  Value erase_at(std::size_t i);

  /// Wakeup channel for consumers blocked on empty.
  [[nodiscard]] sim::Event& data_avail() { return data_avail_; }
  /// Wakeup channel for producers blocked on full.
  [[nodiscard]] sim::Event& space_avail() { return space_avail_; }

 private:
  LinkId id_;
  std::string name_;
  TypeDesc type_;
  Port* src_;
  Port* dst_;
  std::deque<Value> q_;
  std::deque<std::uint64_t> uids_;  ///< provenance ids, parallel to q_
  std::uint64_t last_pushed_uid_ = 0;
  std::uint64_t last_popped_uid_ = 0;
  std::uint64_t push_index_ = 0;
  std::uint64_t pop_index_ = 0;
  std::size_t high_watermark_ = 0;
  std::size_t capacity_ = SIZE_MAX;
  LinkTransport transport_ = LinkTransport::kLocal;
  sim::Event data_avail_;
  sim::Event space_avail_;
};

}  // namespace dfdbg::pedf

// A data-dependency link: the FIFO arc materializing one graph edge.
//
// Dynamic dataflow: rates are unconstrained, so links are unbounded by
// default; a capacity can be set to study over/underflow (the paper's §VI-D
// stall scenario). Push and pop indexes are monotonic counters — the paper's
// Contribution #3 intercepts exactly these indexes to follow tokens.
//
// Storage is a single contiguous power-of-two ring of {Value, uid} slots: a
// token and its provenance id share one slot (and, for inline payloads, one
// cache line), so the value/uid desync hazard of the former parallel deques
// is gone by construction, peek/token_uid_at are O(1) pointer math, and the
// steady state allocates nothing (the ring grows amortized-doubling, only
// while a link's high watermark is still rising).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/pedf/value.hpp"
#include "dfdbg/sim/event.hpp"

namespace dfdbg::pedf {

class BoundaryChannel;
class Port;

struct LinkIdTag {};
/// Dense id of a link within one application.
using LinkId = dfdbg::Id<LinkIdTag>;

/// How a link is physically carried on the platform (paper Fig. 4 legend:
/// plain data links, control links, DMA-assisted control links).
enum class LinkTransport : std::uint8_t { kLocal, kInterCluster, kHostDma };

/// Short name for a LinkTransport ("L1", "L2", "DMA").
const char* to_string(LinkTransport t);

/// FIFO arc between one producer port and one consumer port.
/// Raw container only: blocking, latency modelling and instrumentation live
/// in the Application shims (pedf__link_push / pedf__link_pop) so the
/// framework API surface matches what the paper's debugger breakpoints.
class Link {
 public:
  Link(LinkId id, std::string name, TypeDesc type, Port* src, Port* dst)
      : id_(id), name_(std::move(name)), type_(type), src_(src), dst_(dst),
        data_avail_("link-data:" + name_), space_avail_("link-space:" + name_) {}

  [[nodiscard]] LinkId id() const { return id_; }
  /// "ipred::Add2Dblock_ipf_out -> ipf::Add2Dblock_ipred_in"
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const TypeDesc& type() const { return type_; }
  [[nodiscard]] Port* src() const { return src_; }
  [[nodiscard]] Port* dst() const { return dst_; }

  /// Tokens currently held (push_index - pop_index).
  [[nodiscard]] std::size_t occupancy() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ >= capacity_; }

  /// Monotonic counter of tokens ever pushed.
  [[nodiscard]] std::uint64_t push_index() const { return push_index_; }
  /// Monotonic counter of tokens ever popped.
  [[nodiscard]] std::uint64_t pop_index() const { return pop_index_; }

  /// Maximum occupancy ever reached (stall diagnosis).
  [[nodiscard]] std::size_t high_watermark() const { return high_watermark_; }

  /// Bounded capacity; defaults to "unbounded" (SIZE_MAX).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  /// Physical ring slots currently allocated (power of two; for tests).
  [[nodiscard]] std::size_t slot_count() const { return ring_.size(); }

  [[nodiscard]] LinkTransport transport() const { return transport_; }
  void set_transport(LinkTransport t) { transport_ = t; }

  // Token provenance ids: every pushed token is assigned the next id from
  // the process-wide sequence (obs::Journal::alloc_token) and carries it
  // through its ring slot — including across debugger erase/replace, where
  // the monotonic push/pop indexes alone lose the slot<->token mapping. The
  // always-on cost is one counter increment plus one u64 store per token;
  // ids are deterministic because the kernel is.

  /// Provenance id assigned by the most recent push (0 before any push).
  [[nodiscard]] std::uint64_t last_pushed_uid() const { return last_pushed_uid_; }
  /// Provenance id of the most recently popped token (0 before any pop).
  [[nodiscard]] std::uint64_t last_popped_uid() const { return last_popped_uid_; }
  /// Provenance id of queued token `i` (0 = oldest).
  [[nodiscard]] std::uint64_t token_uid_at(std::size_t i) const {
    DFDBG_CHECK(i < count_);
    return ring_[(head_ + i) & mask_].uid;
  }

  /// Parallel backend: the producer-side transport when this link crosses a
  /// partition boundary (nullptr otherwise — including on every sequential
  /// backend). Owned by the Application; see boundary.hpp.
  [[nodiscard]] BoundaryChannel* outbox() const { return outbox_; }
  void set_outbox(BoundaryChannel* ch) { outbox_ = ch; }

  /// Appends a token that already carries a provenance id (the boundary
  /// delivery path: the producing partition allocated the uid at send time).
  /// Identical bookkeeping to push_raw except no id is allocated.
  /// Precondition: !full().
  void push_delivered(Value v, std::uint64_t uid);

  /// Appends a value; returns its push index. Precondition: !full().
  std::uint64_t push_raw(Value v);
  /// Appends `n` values (batch fast path: one capacity check, one uid-range
  /// allocation, one metrics update). Returns the push index of `vs[0]`.
  /// Precondition: occupancy() + n <= capacity().
  std::uint64_t push_raw_n(const Value* vs, std::size_t n);
  /// Removes the oldest value; returns it. Precondition: !empty().
  Value pop_raw();
  /// Removes the `n` oldest values into `out[0..n)` (batch fast path).
  /// Precondition: n <= occupancy().
  void pop_raw_n(Value* out, std::size_t n);
  /// Reads queued value `i` (0 = oldest) without consuming it.
  [[nodiscard]] const Value& peek(std::size_t i) const {
    DFDBG_CHECK(i < count_);
    return ring_[(head_ + i) & mask_].value;
  }
  /// Overwrites queued value `i` (debugger alteration). The slot keeps its
  /// token uid: an altered token keeps its identity.
  void poke(std::size_t i, Value v);
  /// Removes queued value `i` (debugger alteration); returns it.
  Value erase_at(std::size_t i);

  /// Wakeup channel for consumers blocked on empty.
  [[nodiscard]] sim::Event& data_avail() { return data_avail_; }
  /// Wakeup channel for producers blocked on full.
  [[nodiscard]] sim::Event& space_avail() { return space_avail_; }

 private:
  /// One queued token: payload and provenance id, adjacent in memory.
  struct Slot {
    Value value;
    std::uint64_t uid = 0;
  };

  /// Debug-build invariant check, the ring-era successor of the old "values
  /// and uids deques agree in size" assert: the logical count must fit the
  /// physical slots and the head index must be on the ring.
  void dcheck_slots() const {
    DFDBG_DCHECK(count_ <= ring_.size());
    DFDBG_DCHECK(ring_.empty() ? head_ == 0 : head_ < ring_.size());
    DFDBG_DCHECK((ring_.size() & mask_) == 0);  // size is 0 or a power of two
  }

  /// Ensures at least `needed` free physical slots, re-linearizing into a
  /// doubled ring when out of room.
  void reserve_slots(std::size_t needed);

  [[nodiscard]] Slot& slot(std::size_t i) { return ring_[(head_ + i) & mask_]; }

  LinkId id_;
  std::string name_;
  TypeDesc type_;
  Port* src_;
  Port* dst_;
  std::vector<Slot> ring_;  ///< power-of-two physical storage
  std::size_t mask_ = 0;    ///< ring_.size() - 1 (0 while unallocated)
  std::size_t head_ = 0;    ///< physical index of the oldest token
  std::size_t count_ = 0;   ///< tokens queued
  std::uint64_t last_pushed_uid_ = 0;
  std::uint64_t last_popped_uid_ = 0;
  std::uint64_t push_index_ = 0;
  std::uint64_t pop_index_ = 0;
  std::size_t high_watermark_ = 0;
  std::size_t capacity_ = SIZE_MAX;
  LinkTransport transport_ = LinkTransport::kLocal;
  BoundaryChannel* outbox_ = nullptr;
  sim::Event data_avail_;
  sim::Event space_avail_;
};

}  // namespace dfdbg::pedf

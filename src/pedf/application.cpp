#include "dfdbg/pedf/application.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/pedf/boundary.hpp"
#include "dfdbg/pedf/symbols.hpp"

namespace dfdbg::pedf {

using sim::ArgValue;

namespace {
/// Firing sequence number of an actor, for journal provenance stamps
/// (controllers and modules do not fire; they journal as firing 0).
std::uint64_t firing_of(const Actor& actor) {
  if (actor.kind() == ActorKind::kFilter || actor.kind() == ActorKind::kHostIo)
    return static_cast<const Filter&>(actor).firings();
  return 0;
}
}  // namespace

Application::Application(sim::Platform& platform, std::string name)
    : platform_(platform), name_(std::move(name)) {
  // The framework API symbols exist as soon as the framework is loaded
  // (a debugger can set breakpoints on them before any graph exists).
  intern_symbols();
}

Application::~Application() = default;

Module& Application::set_root(std::unique_ptr<Module> root) {
  DFDBG_CHECK(root != nullptr && root_ == nullptr);
  root_ = std::move(root);
  return *root_;
}

HostSource& Application::add_host_source(std::string name, const std::string& target,
                                         std::vector<Value> stream, sim::SimTime period) {
  DFDBG_CHECK_MSG(!elaborated_, "add_host_source after elaborate");
  DFDBG_CHECK_MSG(!stream.empty(), "empty host source stream");
  TypeDesc type = stream.front().type();
  auto src = std::make_unique<HostSource>(std::move(name), type, std::move(stream), period);
  HostSource* raw = src.get();
  host_io_.push_back(std::move(src));
  host_bindings_.push_back(HostBinding{raw, target, /*is_source=*/true});
  return *raw;
}

HostSink& Application::add_host_sink(std::string name, const std::string& target,
                                     std::size_t expected) {
  DFDBG_CHECK_MSG(!elaborated_, "add_host_sink after elaborate");
  // The sink port type is resolved against the target port at elaboration;
  // start permissive with U32 and fix it up in resolve_bindings().
  auto sink = std::make_unique<HostSink>(std::move(name), TypeDesc(), expected);
  HostSink* raw = sink.get();
  host_io_.push_back(std::move(sink));
  host_bindings_.push_back(HostBinding{raw, target, /*is_source=*/false});
  return *raw;
}

void Application::map_actor(std::string path, std::string pe_name) {
  DFDBG_CHECK_MSG(!elaborated_, "map_actor after elaborate");
  pinned_[std::move(path)] = std::move(pe_name);
}

// ---------------------------------------------------------------------------
// Elaboration
// ---------------------------------------------------------------------------

void Application::collect_actors(Module& m) {
  actors_.push_back(&m);
  if (m.controller() != nullptr) {
    m.controller()->set_path(m.path() + "." + m.controller()->name());
    actors_.push_back(m.controller());
  }
  for (const auto& f : m.filters()) {
    f->set_path(m.path() + "." + f->name());
    actors_.push_back(f.get());
  }
  for (const auto& sub : m.modules()) {
    sub->set_path(m.path() + "." + sub->name());
    collect_actors(*sub);
  }
}

Status Application::resolve_bindings() {
  // Endpoint = a concrete Port*. Edges follow the `binds src to dst`
  // declarations; module boundary ports are pass-through nodes that the
  // flattening walks straight through.
  std::map<Port*, Port*> edge;       // data flows key -> value
  std::set<Port*> edge_targets;

  auto add_edge = [&](Port* a, Port* b) -> Status {
    if (edge.count(a) != 0)
      return Status::error("port bound twice as source: " + a->owner().path() + "." + a->name());
    if (edge_targets.count(b) != 0)
      return Status::error("port bound twice as target: " + b->owner().path() + "." + b->name());
    edge[a] = b;
    edge_targets.insert(b);
    return Status{};
  };

  // Resolve one "child.port" / "this.port" endpoint within module `m`.
  auto resolve_endpoint = [&](Module& m, const std::string& text) -> Result<Port*> {
    auto dot = text.find('.');
    if (dot == std::string::npos)
      return Status::error(m.path() + ": malformed endpoint '" + text + "'");
    std::string who = text.substr(0, dot);
    std::string pname = text.substr(dot + 1);
    Actor* owner = nullptr;
    if (who == "this") {
      owner = &m;
    } else {
      owner = m.child(who);
      if (owner == nullptr)
        return Status::error(m.path() + ": no child '" + who + "' in binding '" + text + "'");
    }
    Port* p = owner->port(pname);
    if (p == nullptr)
      return Status::error(m.path() + ": no port '" + pname + "' on '" + who + "'");
    return p;
  };

  // Gather edges from the whole hierarchy.
  std::vector<Module*> mods;
  std::function<void(Module&)> walk = [&](Module& m) {
    mods.push_back(&m);
    for (const auto& sub : m.modules()) walk(*sub);
  };
  walk(*root_);
  for (Module* m : mods) {
    for (const BindingDecl& b : m->bindings()) {
      auto src = resolve_endpoint(*m, b.src);
      if (!src.ok()) return src.status();
      auto dst = resolve_endpoint(*m, b.dst);
      if (!dst.ok()) return dst.status();
      if (Status s = add_edge(*src, *dst); !s.ok()) return s;
    }
  }

  // Host I/O edges.
  for (HostBinding& hb : host_bindings_) {
    // target format: "<module path relative to root, no root prefix>.<port>"
    // or "<root>.<...>.<port>". Resolve by longest actor-path prefix match.
    Actor* owner = nullptr;
    Port* p = nullptr;
    for (Actor* a : actors_) {
      const std::string& path = a->path();
      if (hb.target.size() > path.size() + 1 && starts_with(hb.target, path) &&
          hb.target[path.size()] == '.') {
        std::string pname = hb.target.substr(path.size() + 1);
        if (Port* cand = a->port(pname); cand != nullptr) {
          if (owner == nullptr || path.size() > owner->path().size()) {
            owner = a;
            p = cand;
          }
        }
      }
    }
    if (p == nullptr) return Status::error("host binding: cannot resolve target '" + hb.target + "'");
    if (hb.is_source) {
      if (Status s = add_edge(hb.host_actor->port("out"), p); !s.ok()) return s;
    } else {
      // Fix up the sink's port type to match the graph output it drains.
      auto* sink_port = hb.host_actor->port("in");
      *sink_port = Port(hb.host_actor, "in", PortDir::kIn, p->type());
      if (Status s = add_edge(p, hb.host_actor->port("in")); !s.ok()) return s;
    }
  }

  // Flatten chains from every real producer port.
  auto is_real = [](Port* p) { return p->owner().kind() != ActorKind::kModule; };

  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    for (const auto& pp : a->ports()) {
      Port* out = pp.get();
      if (out->dir() != PortDir::kOut) continue;
      Port* cur = out;
      std::size_t hops = 0;
      while (true) {
        auto it = edge.find(cur);
        if (it == edge.end())
          return Status::error("unbound output port: " + cur->owner().path() + "." + cur->name() +
                               (cur == out ? "" : " (reached from " + out->owner().path() + "." +
                                                      out->name() + ")"));
        Port* nxt = it->second;
        if (!(nxt->type() == out->type()))
          return Status::error("type mismatch on binding into " + nxt->owner().path() + "." +
                               nxt->name() + ": " + out->type().name() + " vs " +
                               nxt->type().name());
        if (is_real(nxt)) {
          if (nxt->dir() != PortDir::kIn)
            return Status::error("binding targets an output port: " + nxt->owner().path() + "." +
                                 nxt->name());
          auto id = LinkId(static_cast<std::uint32_t>(links_.size()));
          std::string lname = out->owner().name() + "::" + out->name() + " -> " +
                              nxt->owner().name() + "::" + nxt->name();
          links_.push_back(std::make_unique<Link>(id, lname, out->type(), out, nxt));
          out->set_link(links_.back().get());
          nxt->set_link(links_.back().get());
          break;
        }
        cur = nxt;  // module boundary port: pass through
        if (++hops > 1000)
          return Status::error("binding cycle through module ports at " + cur->owner().path() +
                               "." + cur->name());
      }
    }
  }

  // Every real input port must have ended up on a link.
  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    for (const auto& pp : a->ports()) {
      if (pp->dir() == PortDir::kIn && pp->link() == nullptr)
        return Status::error("unbound input port: " + a->path() + "." + pp->name());
    }
  }
  return Status{};
}

void Application::assign_mapping() {
  std::size_t host_rr = 0;
  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    auto it = pinned_.find(a->path());
    if (it != pinned_.end()) {
      sim::Pe* pe = platform_.pe_by_name(it->second);
      DFDBG_CHECK_MSG(pe != nullptr, "unknown PE '" + it->second + "' for " + a->path());
      a->set_pe(pe);
      continue;
    }
    if (a->kind() == ActorKind::kHostIo) {
      const auto& hosts = platform_.host_pes();
      a->set_pe(hosts[host_rr++ % hosts.size()].get());
    } else {
      a->set_pe(&platform_.allocate_fabric_pe());
    }
  }
  // Link transports follow the mapping.
  for (auto& l : links_) {
    sim::Pe* s = l->src()->owner().pe();
    sim::Pe* d = l->dst()->owner().pe();
    if (s->kind() == sim::PeKind::kHost || d->kind() == sim::PeKind::kHost)
      l->set_transport(LinkTransport::kHostDma);
    else if (s->cluster_index() == d->cluster_index())
      l->set_transport(LinkTransport::kLocal);
    else
      l->set_transport(LinkTransport::kInterCluster);
  }
}

void Application::intern_symbols() {
  auto& port = platform_.kernel().instrument();
  syms_.register_actor = port.intern(symbols::kRegisterActor);
  syms_.register_port = port.intern(symbols::kRegisterPort);
  syms_.register_link = port.intern(symbols::kRegisterLink);
  syms_.graph_ready = port.intern(symbols::kGraphReady);
  syms_.link_push = port.intern(symbols::kLinkPush);
  syms_.link_pop = port.intern(symbols::kLinkPop);
  syms_.work_enter = port.intern(symbols::kWorkEnter);
  syms_.work_exit = port.intern(symbols::kWorkExit);
  syms_.filter_line = port.intern(symbols::kFilterLine);
  syms_.actor_start = port.intern(symbols::kActorStart);
  syms_.actor_sync = port.intern(symbols::kActorSync);
  syms_.wait_actor_init = port.intern(symbols::kWaitActorInit);
  syms_.wait_actor_sync = port.intern(symbols::kWaitActorSync);
  syms_.step_begin = port.intern(symbols::kStepBegin);
  syms_.step_end = port.intern(symbols::kStepEnd);
  syms_.predicate_eval = port.intern(symbols::kPredicateEval);
  syms_.debug_inject = port.intern(symbols::kDebugInject);
  syms_.debug_remove = port.intern(symbols::kDebugRemove);
  syms_.debug_replace = port.intern(symbols::kDebugReplace);
}

void Application::intern_link_symbols() {
  auto& port = platform_.kernel().instrument();
  link_syms_.clear();
  link_syms_.reserve(links_.size());
  for (const auto& l : links_) {
    LinkSymbols ls;
    ls.push_iface = port.intern(symbols::instance(
        symbols::kLinkPush, l->src()->owner().name() + "::" + l->src()->name()));
    ls.pop_iface = port.intern(symbols::instance(
        symbols::kLinkPop, l->dst()->owner().name() + "::" + l->dst()->name()));
    link_syms_.push_back(ls);
  }
}

void Application::replay_registration() {
  auto& port = platform_.kernel().instrument();
  sim::Kernel& k = platform_.kernel();
  for (Actor* a : actors_) {
    const char* pe_name = a->pe() != nullptr ? a->pe()->name().c_str() : "";
    const char* parent = a->parent() != nullptr ? a->parent()->path().c_str() : "";
    const ArgValue args[] = {
        ArgValue::of_str("kind", to_string(a->kind())),
        ArgValue::of_str("name", a->name().c_str()),
        ArgValue::of_str("path", a->path().c_str()),
        ArgValue::of_str("pe", pe_name),
        ArgValue::of_str("parent", parent),
        ArgValue::of_u64("id", a->id().value()),
    };
    port.fire_enter(k, syms_.register_actor, args);
    for (const auto& p : a->ports()) {
      std::string tname = p->type().name();
      const ArgValue pargs[] = {
          ArgValue::of_str("actor", a->path().c_str()),
          ArgValue::of_str("port", p->name().c_str()),
          ArgValue::of_str("dir", p->dir() == PortDir::kIn ? "in" : "out"),
          ArgValue::of_str("type", tname.c_str()),
      };
      port.fire_enter(k, syms_.register_port, pargs);
    }
  }
  for (const auto& l : links_) {
    std::string tname = l->type().name();
    const ArgValue largs[] = {
        ArgValue::of_u64("link", l->id().value()),
        ArgValue::of_str("name", l->name().c_str()),
        ArgValue::of_str("src_actor", l->src()->owner().path().c_str()),
        ArgValue::of_str("src_port", l->src()->name().c_str()),
        ArgValue::of_str("dst_actor", l->dst()->owner().path().c_str()),
        ArgValue::of_str("dst_port", l->dst()->name().c_str()),
        ArgValue::of_str("type", tname.c_str()),
        ArgValue::of_str("transport", to_string(l->transport())),
    };
    port.fire_enter(k, syms_.register_link, largs);
  }
  const ArgValue gargs[] = {ArgValue::of_str("app", name_.c_str()),
                            ArgValue::of_u64("actors", actors_.size()),
                            ArgValue::of_u64("links", links_.size())};
  port.fire_enter(k, syms_.graph_ready, gargs);
}

Status Application::elaborate() {
  DFDBG_CHECK_MSG(root_ != nullptr, "no root module");
  DFDBG_CHECK_MSG(!elaborated_, "elaborate called twice");

  actors_.clear();
  root_->set_path(root_->name());
  collect_actors(*root_);
  for (const auto& h : host_io_) {
    h->set_path("host." + h->name());
    actors_.push_back(h.get());
  }

  // Ids, path map, and short-name map (unique names only).
  by_path_.clear();
  by_name_.clear();
  std::set<std::string> ambiguous;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    Actor* a = actors_[i];
    a->set_id(ActorId(static_cast<std::uint32_t>(i)));
    if (by_path_.count(a->path()) != 0)
      return Status::error("duplicate actor path: " + a->path());
    by_path_[a->path()] = a;
    if (ambiguous.count(a->name()) != 0) continue;
    auto [it, inserted] = by_name_.emplace(a->name(), a);
    if (!inserted) {
      // Two filters with the same short name would make the paper's CLI
      // addressing ambiguous; reject that. Other kinds just lose the alias.
      if (it->second->kind() == ActorKind::kFilter && a->kind() == ActorKind::kFilter)
        return Status::error("duplicate filter name: " + a->name());
      by_name_.erase(it);
      ambiguous.insert(a->name());
    }
  }

  if (Status s = resolve_bindings(); !s.ok()) return s;
  assign_mapping();
  intern_link_symbols();
  replay_registration();
  elaborated_ = true;
  return Status{};
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Actor* Application::actor_by_path(std::string_view path) const {
  auto it = by_path_.find(std::string(path));
  return it == by_path_.end() ? nullptr : it->second;
}

Actor* Application::actor_by_name(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : it->second;
}

Filter* Application::filter_by_name(std::string_view name) const {
  Actor* a = actor_by_name(name);
  if (a == nullptr) return nullptr;
  if (a->kind() != ActorKind::kFilter && a->kind() != ActorKind::kHostIo) return nullptr;
  return static_cast<Filter*>(a);
}

Link* Application::link_by_id(LinkId id) const {
  if (!id.valid() || id.value() >= links_.size()) return nullptr;
  return links_[id.value()].get();
}

Link* Application::link_by_iface(std::string_view iface) const {
  auto pos = iface.find("::");
  if (pos == std::string_view::npos) return nullptr;
  Port* p = find_port(iface.substr(0, pos), iface.substr(pos + 2));
  return p == nullptr ? nullptr : p->link();
}

Port* Application::find_port(std::string_view actor, std::string_view port) const {
  Actor* a = actor_by_name(actor);
  if (a == nullptr) a = actor_by_path(actor);
  if (a == nullptr) return nullptr;
  return a->port(port);
}

const LinkSymbols& Application::link_syms(LinkId id) const {
  DFDBG_CHECK(id.valid() && id.value() < link_syms_.size());
  return link_syms_[id.value()];
}

// ---------------------------------------------------------------------------
// Process spawning
// ---------------------------------------------------------------------------

void Application::set_partition(const std::string& path, int partition) {
  DFDBG_CHECK_MSG(!started_, "set_partition after start");
  partition_override_[path] = partition;
}

void Application::prepare_partitions() {
  sim::Kernel& k = kernel();
  const int K = k.partition_count();
  partition_of_.assign(actors_.size(), 0);

  // (1) Platform-derived defaults: one partition per cluster, folded onto
  // the available workers. Host-mapped actors (no cluster) go to 0.
  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    int c = a->pe() != nullptr ? a->pe()->cluster_index() : -1;
    partition_of_[a->id().value()] = c < 0 ? 0 : c % K;
  }

  // (1b) Adaptive policy: rewrite the defaults from the recorded load
  // profile. Runs before the overrides so explicit set_partition still wins.
  if (partition_policy_ == PartitionPolicy::kAdaptive) rebalance_partitions_adaptive(K);

  // (2) Explicit overrides. A module path stands for its controller and its
  // filters. `forced` remembers user intent so step 3 can tell a genuine
  // conflict from a default it is allowed to rewrite.
  std::vector<char> forced(actors_.size(), 0);
  for (const auto& [path, p] : partition_override_) {
    Actor* a = actor_by_path(path);
    if (a == nullptr) a = actor_by_name(path);
    DFDBG_CHECK_MSG(a != nullptr, "set_partition: unknown actor '" + path + "'");
    DFDBG_CHECK_MSG(p >= 0 && p < K, "set_partition('" + path + "'): partition " +
                                         std::to_string(p) + " outside [0, " +
                                         std::to_string(K) + ")");
    std::vector<Actor*> members;
    if (a->kind() == ActorKind::kModule) {
      auto* m = static_cast<Module*>(a);
      if (m->controller() != nullptr) members.push_back(m->controller());
      for (const auto& f : m->filters()) members.push_back(f.get());
    } else {
      members.push_back(a);
    }
    for (Actor* mem : members) {
      partition_of_[mem->id().value()] = p;
      forced[mem->id().value()] = 1;
    }
  }

  // (3) Atomicity: a controller and the filters it schedules are one unit —
  // the controller mutates their step state and start events directly, which
  // only stays race-free when they share a partition. Overrides on members
  // of one unit must agree; absent an override the controller's slot wins.
  for (Actor* a : actors_) {
    if (a->kind() != ActorKind::kModule) continue;
    auto* m = static_cast<Module*>(a);
    Controller* c = m->controller();
    if (c == nullptr) continue;
    std::vector<Actor*> unit{c};
    for (const auto& f : m->filters()) unit.push_back(f.get());
    int want = -1;
    const Actor* first = nullptr;
    for (Actor* mem : unit) {
      if (forced[mem->id().value()] == 0) continue;
      int p = partition_of_[mem->id().value()];
      if (want < 0) {
        want = p;
        first = mem;
        continue;
      }
      DFDBG_CHECK_MSG(p == want,
                      "set_partition: " + mem->path() + " (partition " + std::to_string(p) +
                          ") and " + first->path() + " (partition " + std::to_string(want) +
                          ") belong to module " + m->path() +
                          ", whose controller and filters must share a partition "
                          "(controllers drive filter scheduling state directly; "
                          "see docs/KERNEL.md)");
    }
    if (want < 0) want = partition_of_[c->id().value()];
    for (Actor* mem : unit) partition_of_[mem->id().value()] = want;
  }

  // (4) Actors sharing a PE must share a partition: the PE's exclusivity
  // event (busy/free) can only serve waiters from one partition.
  std::map<sim::Pe*, Actor*> pe_owner;
  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule || a->pe() == nullptr) continue;
    auto [it, fresh] = pe_owner.emplace(a->pe(), a);
    if (!fresh) {
      DFDBG_CHECK_MSG(
          partition_of_[it->second->id().value()] == partition_of_[a->id().value()],
          "set_partition: " + a->path() + " and " + it->second->path() + " share PE " +
              a->pe()->name() +
              " but landed in different partitions; co-mapped actors must be "
              "co-partitioned (see docs/KERNEL.md)");
    }
  }

  // (5) Pre-bind every runtime event to its (single) waiting partition, and
  // give each partition-crossing link a boundary channel. data_avail is
  // waited by the consumer, space_avail by the producer; module step events
  // by the controller; start events by the filter itself.
  for (Actor* a : actors_) {
    switch (a->kind()) {
      case ActorKind::kFilter:
      case ActorKind::kHostIo:
        static_cast<Filter*>(a)->start_event_.bind_partition(actor_partition(*a));
        break;
      case ActorKind::kController: {
        auto* c = static_cast<Controller*>(a);
        c->module()->init_done_.bind_partition(actor_partition(*a));
        c->module()->sync_done_.bind_partition(actor_partition(*a));
        break;
      }
      case ActorKind::kModule:
        break;
    }
  }
  inbound_by_shard_.assign(static_cast<std::size_t>(K), {});
  for (const auto& l : links_) {
    const int ps = actor_partition(l->src()->owner());
    const int pd = actor_partition(l->dst()->owner());
    l->data_avail().bind_partition(pd);
    if (ps == pd) {
      l->space_avail().bind_partition(ps);
      continue;
    }
    // A boundary link's space_avail is only ever *notified* — by the
    // consumer's pops — never waited on (the producer blocks on the
    // channel's own space event instead). Binding it to the consumer lets
    // those notifies coalesce locally instead of deferring a useless
    // cross-partition wake every pop, which would force a barrier on every
    // otherwise-elidable round.
    l->space_avail().bind_partition(pd);
    std::size_t cap = l->capacity() == SIZE_MAX
                          ? BoundaryChannel::kDefaultSlots
                          : std::min(l->capacity(), BoundaryChannel::kDefaultSlots);
    boundaries_.push_back(std::make_unique<BoundaryChannel>(*l, cap));
    boundaries_.back()->space_avail().bind_partition(ps);
    l->set_outbox(boundaries_.back().get());
    inbound_by_shard_[static_cast<std::size_t>(pd)].push_back(boundaries_.back().get());
  }
  k.add_barrier_task([this] { return drain_boundaries(); });
  if (!boundaries_.empty()) {
    // Relaxed-synchrony integration (see boundary.hpp and docs/KERNEL.md):
    // consumer shards drain published tokens during the round; the
    // coordinator publishes/reclaims only on rounds with cross-partition
    // effects and wakes only shards whose channels can deliver.
    sim::Kernel::BoundaryHooks hooks;
    hooks.eager_drain = [this](int p) { return eager_drain_boundaries(p); };
    hooks.activity = [this] {
      for (const auto& ch : boundaries_)
        if (ch->has_unpublished()) return true;
      return false;
    };
    hooks.publish = [this] { return publish_boundaries(); };
    hooks.pending = [this](std::vector<std::uint8_t>& mask) {
      for (std::size_t p = 0; p < inbound_by_shard_.size() && p < mask.size(); ++p) {
        for (const BoundaryChannel* ch : inbound_by_shard_[p]) {
          if (ch->eligible()) {
            mask[p] = 1;
            break;
          }
        }
      }
    };
    k.set_boundary_hooks(std::move(hooks));
  }
  // Shard time attribution: the coordinator samples this every round —
  // elided ones included — for the round record's boundary occupancy
  // high-water mark.
  k.set_boundary_probe([this] {
    std::uint64_t hwm = 0;
    for (const auto& ch : boundaries_)
      hwm = std::max(hwm, static_cast<std::uint64_t>(ch->pending()));
    return hwm;
  });
}

std::map<std::string, std::uint64_t> Application::dispatch_profile() const {
  std::map<std::string, std::uint64_t> out;
  for (const Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    const sim::Process* p = platform_.kernel().process_by_name(a->path());
    if (p != nullptr) out[a->path()] = p->activation_count();
  }
  return out;
}

std::map<std::string, std::uint64_t> Application::dispatch_time_profile() const {
  std::map<std::string, std::uint64_t> out;
  for (const Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    const sim::Process* p = platform_.kernel().process_by_name(a->path());
    // Zero entries are omitted so an unobserved run yields an empty profile
    // and kAdaptive falls back to the activation profile.
    if (p != nullptr && p->consumed_wall_ns() != 0) out[a->path()] = p->consumed_wall_ns();
  }
  return out;
}

void Application::rebalance_partitions_adaptive(int workers) {
  if (workers <= 1) return;
  // Time-weighted LPT when a time profile is installed (observed fire
  // nanoseconds close the loop better than activation counts when firings
  // have uneven cost); activation-weighted otherwise.
  const std::map<std::string, std::uint64_t>& profile =
      partition_time_profile_.empty() ? partition_profile_ : partition_time_profile_;
  if (profile.empty()) return;
  // Atomic placement units mirror the constraints steps 3–4 validate: a
  // module's controller and filters move together, and PE co-residents move
  // together. Union-find over actor ids.
  const std::size_t n = actors_.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };
  for (Actor* a : actors_) {
    if (a->kind() != ActorKind::kModule) continue;
    auto* m = static_cast<Module*>(a);
    Controller* c = m->controller();
    if (c == nullptr) continue;
    for (const auto& f : m->filters()) unite(f->id().value(), c->id().value());
  }
  std::map<sim::Pe*, std::size_t> pe_first;
  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule || a->pe() == nullptr) continue;
    auto [it, fresh] = pe_first.emplace(a->pe(), a->id().value());
    if (!fresh) unite(a->id().value(), it->second);
  }
  // Weigh each unit by its recorded load — fire nanoseconds or activations
  // (actors missing from the profile weigh 1, so a stale profile still
  // spreads them) — and place
  // heaviest-first onto the least-loaded partition (LPT). Units enumerate in
  // root-id order and every tie breaks on lowest id / lowest partition: the
  // resulting map is a pure function of (graph, profile, worker count).
  struct Unit {
    std::uint64_t weight = 0;
    std::vector<Actor*> members;  // actor-id order
  };
  std::map<std::size_t, Unit> units;  // root id -> unit
  for (Actor* a : actors_) {
    if (a->kind() == ActorKind::kModule) continue;
    Unit& u = units[find(a->id().value())];
    auto it = profile.find(a->path());
    u.weight += it != profile.end() ? std::max<std::uint64_t>(it->second, 1) : 1;
    u.members.push_back(a);
  }
  std::vector<const Unit*> order;
  order.reserve(units.size());
  for (const auto& [root, u] : units) order.push_back(&u);
  std::stable_sort(order.begin(), order.end(),
                   [](const Unit* a, const Unit* b) { return a->weight > b->weight; });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(workers), 0);
  for (const Unit* u : order) {
    int best = 0;
    for (int p = 1; p < workers; ++p)
      if (load[p] < load[best]) best = p;
    load[best] += u->weight;
    for (Actor* mem : u->members) partition_of_[mem->id().value()] = best;
  }
}

bool Application::drain_boundaries() {
  bool progress = false;
  for (auto& ch : boundaries_) progress |= ch->drain(kernel());
  return progress;
}

std::size_t Application::eager_drain_boundaries(int partition) {
  std::size_t moved = 0;
  for (BoundaryChannel* ch : inbound_by_shard_[static_cast<std::size_t>(partition)])
    moved += ch->drain_eligible(kernel());
  return moved;
}

bool Application::publish_boundaries() {
  bool woke = false;
  for (auto& ch : boundaries_) woke |= ch->publish(kernel());
  return woke;
}

void Application::spawn_filter_process(Filter* f) {
  kernel().spawn_in(actor_partition(*f), f->path(), [this, f] {
    FilterContext ctx(*this, *f);
    for (;;) {
      if (!f->free_running_) {
        while (f->step_state_ != StepState::kScheduled && !f->terminate_) {
          f->set_blocked(BlockInfo{BlockInfo::Kind::kStart, nullptr});
          kernel().wait(f->start_event_);
        }
        f->set_blocked(BlockInfo{});
        if (f->terminate_) break;
      } else if (f->terminate_) {
        break;
      }
      rt_work_enter(*f);
      f->work(ctx);
      rt_work_exit(*f);
    }
  });
}

void Application::spawn_controller_process(Controller* c, Module* m) {
  kernel().spawn_in(actor_partition(*c), c->path(), [this, c, m] {
    ControllerContext ctx(*this, *c, *m);
    c->control(ctx);
    if (m->step_ > 0) rt_step_end(*c, *m);
    // Module done: release its filters.
    for (const auto& f : m->filters()) {
      f->terminate_ = true;
      kernel().notify(f->start_event_);
    }
  });
}

void Application::start() {
  DFDBG_CHECK_MSG(elaborated_, "start before elaborate");
  DFDBG_CHECK_MSG(!started_, "start called twice");
  if (kernel().parallel()) prepare_partitions();
  for (Actor* a : actors_) {
    switch (a->kind()) {
      case ActorKind::kFilter:
      case ActorKind::kHostIo:
        spawn_filter_process(static_cast<Filter*>(a));
        break;
      case ActorKind::kController: {
        auto* c = static_cast<Controller*>(a);
        spawn_controller_process(c, c->module());
        break;
      }
      case ActorKind::kModule:
        break;
    }
  }
  started_ = true;
}

void Application::finish_io() {
  io_finishing_ = true;
  for (const auto& h : host_io_) h->terminate_ = true;
  for (const auto& l : links_) kernel().notify(l->data_avail());
}

// ---------------------------------------------------------------------------
// Runtime shims (the framework API the debugger breakpoints)
// ---------------------------------------------------------------------------

void Application::model_transfer_cost(Link& link, std::size_t n) {
  sim::Kernel& k = kernel();
  if (k.current() == nullptr) return;  // debugger-context access: free
  std::uint64_t bytes = link.type().byte_size() * n;
  switch (link.transport()) {
    case LinkTransport::kLocal: {
      int c = link.src()->owner().pe()->cluster_index();
      if (c < 0) c = link.dst()->owner().pe()->cluster_index();
      if (c >= 0)
        platform_.fabric()[static_cast<std::size_t>(c)].l1->access(k, bytes);
      break;
    }
    case LinkTransport::kInterCluster:
      platform_.l2().access(k, bytes);
      break;
    case LinkTransport::kHostDma: {
      auto& dmas = platform_.dmas();
      DFDBG_CHECK(!dmas.empty());
      dmas[link.id().value() % dmas.size()]->transfer(k, platform_.l2(), platform_.l3(), bytes);
      break;
    }
  }
}

void Application::rt_link_push(Actor& actor, Port& port, const Value& v) {
  Link* link = port.link();
  DFDBG_CHECK_MSG(link != nullptr, actor.path() + "." + port.name() + " is not bound");
  DFDBG_CHECK_MSG(v.type() == link->type(),
                  "type mismatch pushing " + v.type().name() + " on " + link->name());
  if (link->outbox() != nullptr) {
    rt_link_push_boundary(actor, port, *link, v);
    return;
  }
  const ArgValue args[] = {
      ArgValue::of_u64("link", link->id().value()),
      ArgValue::of_u64("index", link->push_index()),
      ArgValue::of_ptr("value", const_cast<Value*>(&v)),
      ArgValue::of_str("actor", actor.path().c_str()),
      ArgValue::of_str("port", port.name().c_str()),
  };
  sim::SymbolId inst;
  if (cooperation_) inst = link_syms_[link->id().value()].push_iface;
  sim::InstrScope scope(kernel(), syms_.link_push, args, inst);
  while (link->full()) {
    actor.set_blocked(BlockInfo{BlockInfo::Kind::kLinkFull, link});
    kernel().wait(link->space_avail());
  }
  actor.set_blocked(BlockInfo{});
  if (model_latencies_) model_transfer_cost(*link);
  std::uint64_t idx = link->push_raw(v);
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kTokenPush;
    ev.link = link->id().value();
    ev.actor = j.intern_name(actor.path());
    ev.token = link->last_pushed_uid();
    ev.index = idx;
    ev.firing = firing_of(actor);
    j.record(ev);
  }
  scope.set_return(ArgValue::of_u64("index", idx));
  // Coalesced wakeup: a consumer only ever blocks on the empty->non-empty
  // edge, so when nobody is waiting the notify would wake nobody — skip it
  // (scheduling-identical, and the hot path saves the call per token).
  kernel().notify_if_waiting(link->data_avail());
}

void Application::rt_link_push_boundary(Actor& actor, Port& port, Link& link, const Value& v) {
  BoundaryChannel& ob = *link.outbox();
  // Same observable surface as the direct path: identical symbol, identical
  // args — the channel's send index *is* the link's eventual push index.
  const ArgValue args[] = {
      ArgValue::of_u64("link", link.id().value()),
      ArgValue::of_u64("index", ob.sent()),
      ArgValue::of_ptr("value", const_cast<Value*>(&v)),
      ArgValue::of_str("actor", actor.path().c_str()),
      ArgValue::of_str("port", port.name().c_str()),
  };
  sim::SymbolId inst;
  if (cooperation_) inst = link_syms_[link.id().value()].push_iface;
  sim::InstrScope scope(kernel(), syms_.link_push, args, inst);
  while (ob.full()) {
    actor.set_blocked(BlockInfo{BlockInfo::Kind::kLinkFull, &link});
    kernel().wait(ob.space_avail());
  }
  actor.set_blocked(BlockInfo{});
  if (model_latencies_) model_transfer_cost(link);
  // The producer's shard allocates the uid (disjoint per-partition ranges)
  // and journals the push at send time in its own shard; delivery into the
  // link at the barrier adds no further journal traffic.
  const std::uint64_t uid = obs::Journal::global().alloc_token();
  const std::uint64_t idx = ob.send(Value(v), uid);
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kTokenPush;
    ev.link = link.id().value();
    ev.actor = j.intern_name(actor.path());
    ev.token = uid;
    ev.index = idx;
    ev.firing = firing_of(actor);
    j.record(ev);
  }
  scope.set_return(ArgValue::of_u64("index", idx));
  // No data_avail notify here: the token is not in the link yet. The
  // coordinator wakes the consumer when it drains the channel.
}

void Application::rt_link_push_n(Actor& actor, Port& port, const Value* vs, std::size_t n) {
  if (n == 0) return;
  if (n == 1) {  // the batch API degenerates to the paper-faithful shim
    rt_link_push(actor, port, vs[0]);
    return;
  }
  Link* link = port.link();
  DFDBG_CHECK_MSG(link != nullptr, actor.path() + "." + port.name() + " is not bound");
  for (std::size_t i = 0; i < n; ++i)
    DFDBG_CHECK_MSG(vs[i].type() == link->type(),
                    "type mismatch pushing " + vs[i].type().name() + " on " + link->name());
  if (link->outbox() != nullptr) {
    // Partition-crossing link: degrade to token-at-a-time sends so the
    // channel's journal/provenance stream is exactly n single pushes (the
    // batch API is a fast path, never a semantic change).
    for (std::size_t i = 0; i < n; ++i) rt_link_push_boundary(actor, port, *link, vs[i]);
    return;
  }
  const ArgValue args[] = {
      ArgValue::of_u64("link", link->id().value()),
      ArgValue::of_u64("index", link->push_index()),
      ArgValue::of_u64("count", n),
      ArgValue::of_str("actor", actor.path().c_str()),
      ArgValue::of_str("port", port.name().c_str()),
  };
  sim::SymbolId inst;
  if (cooperation_) inst = link_syms_[link->id().value()].push_iface;
  sim::InstrScope scope(kernel(), syms_.link_push, args, inst);
  std::size_t done = 0;
  while (done < n) {
    while (link->full()) {
      actor.set_blocked(BlockInfo{BlockInfo::Kind::kLinkFull, link});
      kernel().wait(link->space_avail());
    }
    actor.set_blocked(BlockInfo{});
    const std::size_t chunk = std::min(n - done, link->capacity() - link->occupancy());
    if (model_latencies_) model_transfer_cost(*link, chunk);
    const std::uint64_t idx0 = link->push_raw_n(vs + done, chunk);
    if (obs::enabled()) {
      obs::Journal& j = obs::Journal::global();
      obs::JournalEvent ev;
      ev.time = kernel().now();
      ev.kind = obs::JournalKind::kTokenPush;
      ev.link = link->id().value();
      ev.actor = j.intern_name(actor.path());
      ev.firing = firing_of(actor);
      const std::uint64_t uid0 = link->last_pushed_uid() - chunk + 1;
      for (std::size_t i = 0; i < chunk; ++i) {
        ev.token = uid0 + i;
        ev.index = idx0 + i;
        j.record(ev);
      }
    }
    done += chunk;
    kernel().notify_if_waiting(link->data_avail());
  }
  scope.set_return(ArgValue::of_u64("index", link->push_index() - 1));
}

std::optional<Value> Application::rt_link_pop(Actor& actor, Port& port) {
  Link* link = port.link();
  DFDBG_CHECK_MSG(link != nullptr, actor.path() + "." + port.name() + " is not bound");
  std::optional<Value> result;
  {
    const ArgValue args[] = {
        ArgValue::of_u64("link", link->id().value()),
        ArgValue::of_u64("index", link->pop_index()),
        ArgValue::of_str("actor", actor.path().c_str()),
        ArgValue::of_str("port", port.name().c_str()),
    };
    sim::SymbolId inst;
    if (cooperation_) inst = link_syms_[link->id().value()].pop_iface;
    sim::InstrScope scope(kernel(), syms_.link_pop, args, inst);
    auto* as_filter =
        (actor.kind() == ActorKind::kFilter || actor.kind() == ActorKind::kHostIo)
            ? static_cast<Filter*>(&actor)
            : nullptr;
    while (link->empty()) {
      if (as_filter != nullptr && as_filter->terminate_requested()) return std::nullopt;
      actor.set_blocked(BlockInfo{BlockInfo::Kind::kLinkEmpty, link});
      kernel().wait(link->data_avail());
    }
    actor.set_blocked(BlockInfo{});
    if (model_latencies_) model_transfer_cost(*link);
    std::uint64_t idx = link->pop_index();
    result = link->pop_raw();
    if (obs::enabled()) {
      obs::Journal& j = obs::Journal::global();
      obs::JournalEvent ev;
      ev.time = kernel().now();
      ev.kind = obs::JournalKind::kTokenPop;
      ev.link = link->id().value();
      ev.actor = j.intern_name(actor.path());
      ev.token = link->last_popped_uid();
      ev.index = idx;
      ev.firing = firing_of(actor);
      j.record(ev);
    }
    scope.set_return(ArgValue::of_ptr("value", &*result));
    // Producers only block on the full->non-full edge (see rt_link_push).
    kernel().notify_if_waiting(link->space_avail());
  }
  return result;
}

std::size_t Application::rt_link_pop_n(Actor& actor, Port& port, Value* out, std::size_t n) {
  if (n == 0) return 0;
  if (n == 1) {
    std::optional<Value> v = rt_link_pop(actor, port);
    if (!v.has_value()) return 0;
    out[0] = std::move(*v);
    return 1;
  }
  Link* link = port.link();
  DFDBG_CHECK_MSG(link != nullptr, actor.path() + "." + port.name() + " is not bound");
  const ArgValue args[] = {
      ArgValue::of_u64("link", link->id().value()),
      ArgValue::of_u64("index", link->pop_index()),
      ArgValue::of_u64("count", n),
      ArgValue::of_str("actor", actor.path().c_str()),
      ArgValue::of_str("port", port.name().c_str()),
  };
  sim::SymbolId inst;
  if (cooperation_) inst = link_syms_[link->id().value()].pop_iface;
  sim::InstrScope scope(kernel(), syms_.link_pop, args, inst);
  auto* as_filter =
      (actor.kind() == ActorKind::kFilter || actor.kind() == ActorKind::kHostIo)
          ? static_cast<Filter*>(&actor)
          : nullptr;
  std::size_t done = 0;
  while (done < n) {
    while (link->empty()) {
      if (as_filter != nullptr && as_filter->terminate_requested()) return done;
      actor.set_blocked(BlockInfo{BlockInfo::Kind::kLinkEmpty, link});
      kernel().wait(link->data_avail());
    }
    actor.set_blocked(BlockInfo{});
    const std::size_t chunk = std::min(n - done, link->occupancy());
    if (model_latencies_) model_transfer_cost(*link, chunk);
    const std::uint64_t idx0 = link->pop_index();
    if (obs::enabled()) {
      // With observers attached take the token-at-a-time pops so journal
      // records are identical in content and order to `chunk` single pops.
      obs::Journal& j = obs::Journal::global();
      obs::JournalEvent ev;
      ev.time = kernel().now();
      ev.kind = obs::JournalKind::kTokenPop;
      ev.link = link->id().value();
      ev.actor = j.intern_name(actor.path());
      ev.firing = firing_of(actor);
      for (std::size_t i = 0; i < chunk; ++i) {
        out[done + i] = link->pop_raw();
        ev.token = link->last_popped_uid();
        ev.index = idx0 + i;
        j.record(ev);
      }
    } else {
      link->pop_raw_n(out + done, chunk);
    }
    done += chunk;
    kernel().notify_if_waiting(link->space_avail());
  }
  scope.set_return(ArgValue::of_u64("count", done));
  return done;
}

void Application::rt_work_enter(Filter& f) {
  Module* m = f.parent();
  std::uint64_t step = m != nullptr ? m->step() : f.firings() + 1;
  f.step_state_ = StepState::kRunning;
  f.firings_++;
  const ArgValue args[] = {
      ArgValue::of_str("actor", f.path().c_str()),
      ArgValue::of_u64("step", step),
      ArgValue::of_u64("firing", f.firings()),
  };
  kernel().instrument().fire_enter(kernel(), syms_.work_enter, args);
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kFireBegin;
    ev.actor = j.intern_name(f.path());
    ev.index = step;
    ev.firing = f.firings();
    j.record(ev);
  }
  if (m != nullptr && !f.free_running_) {
    m->started_count_++;
    kernel().notify(m->init_done_);
  }
}

void Application::rt_work_exit(Filter& f) {
  Module* m = f.parent();
  f.step_state_ = f.free_running_ ? StepState::kIdle : StepState::kDone;
  const ArgValue args[] = {
      ArgValue::of_str("actor", f.path().c_str()),
      ArgValue::of_u64("step", m != nullptr ? m->step() : f.firings()),
      ArgValue::of_u64("firing", f.firings()),
  };
  kernel().instrument().fire_enter(kernel(), syms_.work_exit, args);
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kFireEnd;
    ev.actor = j.intern_name(f.path());
    ev.index = m != nullptr ? m->step() : f.firings();
    ev.firing = f.firings();
    j.record(ev);
  }
  if (m != nullptr && !f.free_running_) {
    m->done_count_++;
    kernel().notify(m->sync_done_);
  }
}

void Application::rt_filter_line(Filter& f, int line) {
  f.current_line_ = line;
  if (!kernel().instrument().armed(syms_.filter_line)) return;
  const ArgValue args[] = {
      ArgValue::of_str("actor", f.path().c_str()),
      ArgValue::of_i64("line", line),
  };
  kernel().instrument().fire_enter(kernel(), syms_.filter_line, args);
}

void Application::rt_actor_start(Controller& c, Filter& f) {
  DFDBG_CHECK_MSG(f.step_state_ == StepState::kIdle,
                  "ACTOR_START on non-idle filter " + f.path());
  Module& m = *c.module();
  const ArgValue args[] = {
      ArgValue::of_str("controller", c.path().c_str()),
      ArgValue::of_str("filter", f.path().c_str()),
      ArgValue::of_str("name", f.name().c_str()),
      ArgValue::of_u64("step", m.step()),
  };
  kernel().instrument().fire_enter(kernel(), syms_.actor_start, args);
  f.step_state_ = StepState::kScheduled;
  f.sync_requested_ = false;
  m.sched_count_++;
  kernel().notify(f.start_event_);
}

void Application::rt_actor_sync(Controller& c, Filter& f) {
  Module& m = *c.module();
  const ArgValue args[] = {
      ArgValue::of_str("controller", c.path().c_str()),
      ArgValue::of_str("filter", f.path().c_str()),
      ArgValue::of_str("name", f.name().c_str()),
      ArgValue::of_u64("step", m.step()),
  };
  kernel().instrument().fire_enter(kernel(), syms_.actor_sync, args);
  f.sync_requested_ = true;
}

void Application::rt_wait_actor_init(Controller& c, Module& m) {
  const ArgValue args[] = {ArgValue::of_str("module", m.path().c_str()),
                           ArgValue::of_u64("step", m.step())};
  sim::InstrScope scope(kernel(), syms_.wait_actor_init, args);
  while (m.started_count_ < m.sched_count_) {
    c.set_blocked(BlockInfo{BlockInfo::Kind::kStep, nullptr});
    kernel().wait(m.init_done_);
  }
  c.set_blocked(BlockInfo{});
}

void Application::rt_wait_actor_sync(Controller& c, Module& m) {
  const ArgValue args[] = {ArgValue::of_str("module", m.path().c_str()),
                           ArgValue::of_u64("step", m.step())};
  sim::InstrScope scope(kernel(), syms_.wait_actor_sync, args);
  while (m.done_count_ < m.sched_count_) {
    c.set_blocked(BlockInfo{BlockInfo::Kind::kStep, nullptr});
    kernel().wait(m.sync_done_);
  }
  c.set_blocked(BlockInfo{});
  for (const auto& f : m.filters()) {
    if (f->step_state_ == StepState::kDone) f->step_state_ = StepState::kIdle;
  }
  m.sched_count_ = 0;
  m.started_count_ = 0;
  m.done_count_ = 0;
}

void Application::rt_step_begin(Controller& c, Module& m) {
  m.step_++;
  const ArgValue args[] = {
      ArgValue::of_str("module", m.path().c_str()),
      ArgValue::of_str("controller", c.path().c_str()),
      ArgValue::of_u64("step", m.step()),
  };
  kernel().instrument().fire_enter(kernel(), syms_.step_begin, args);
}

void Application::rt_step_end(Controller& c, Module& m) {
  const ArgValue args[] = {
      ArgValue::of_str("module", m.path().c_str()),
      ArgValue::of_str("controller", c.path().c_str()),
      ArgValue::of_u64("step", m.step()),
  };
  kernel().instrument().fire_enter(kernel(), syms_.step_end, args);
}

bool Application::rt_predicate_eval(Controller& c, Module& m, std::string_view name) {
  const PredicateDecl* p = m.predicate(name);
  DFDBG_CHECK_MSG(p != nullptr, m.path() + ": no predicate '" + std::string(name) + "'");
  std::string nm(name);
  const ArgValue args[] = {
      ArgValue::of_str("module", m.path().c_str()),
      ArgValue::of_str("controller", c.path().c_str()),
      ArgValue::of_str("name", nm.c_str()),
  };
  sim::InstrScope scope(kernel(), syms_.predicate_eval, args);
  bool r = p->fn(m);
  scope.set_return(ArgValue::of_i64("result", r ? 1 : 0));
  return r;
}

// ---------------------------------------------------------------------------
// Debugger-initiated alteration
// ---------------------------------------------------------------------------

std::uint64_t Application::debug_inject(Link& link, Value v) {
  DFDBG_CHECK_MSG(v.type() == link.type(),
                  "inject type mismatch on " + link.name() + ": " + v.type().name());
  DFDBG_CHECK_MSG(!link.full(), "inject on full link " + link.name());
  std::uint64_t idx = link.push_raw(std::move(v));
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kTokenInject;
    ev.link = link.id().value();
    ev.actor = j.intern_name("<debugger>");
    ev.token = link.last_pushed_uid();
    ev.index = idx;
    j.record(ev);
  }
  const ArgValue args[] = {
      ArgValue::of_u64("link", link.id().value()),
      ArgValue::of_u64("index", idx),
      ArgValue::of_ptr("value", const_cast<Value*>(&link.peek(link.occupancy() - 1))),
  };
  kernel().instrument().fire_enter(kernel(), syms_.debug_inject, args);
  kernel().notify(link.data_avail());
  return idx;
}

Value Application::debug_remove(Link& link, std::size_t idx) {
  std::uint64_t uid = link.token_uid_at(idx);
  Value v = link.erase_at(idx);
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kTokenRemove;
    ev.link = link.id().value();
    ev.actor = j.intern_name("<debugger>");
    ev.token = uid;
    ev.index = idx;
    j.record(ev);
  }
  const ArgValue args[] = {
      ArgValue::of_u64("link", link.id().value()),
      ArgValue::of_u64("slot", idx),
      ArgValue::of_ptr("value", &v),
  };
  kernel().instrument().fire_enter(kernel(), syms_.debug_remove, args);
  kernel().notify(link.space_avail());
  return v;
}

void Application::debug_replace(Link& link, std::size_t idx, Value v) {
  DFDBG_CHECK_MSG(v.type() == link.type(), "replace type mismatch on " + link.name());
  // poke keeps the slot's token uid: an altered token keeps its identity
  // (and thereby its provenance chain) — only its payload changes.
  link.poke(idx, std::move(v));
  if (obs::enabled()) {
    obs::Journal& j = obs::Journal::global();
    obs::JournalEvent ev;
    ev.time = kernel().now();
    ev.kind = obs::JournalKind::kTokenReplace;
    ev.link = link.id().value();
    ev.actor = j.intern_name("<debugger>");
    ev.token = link.token_uid_at(idx);
    ev.index = idx;
    j.record(ev);
  }
  const ArgValue args[] = {
      ArgValue::of_u64("link", link.id().value()),
      ArgValue::of_u64("slot", idx),
      ArgValue::of_ptr("value", const_cast<Value*>(&link.peek(idx))),
  };
  kernel().instrument().fire_enter(kernel(), syms_.debug_replace, args);
}

// ---------------------------------------------------------------------------
// Host I/O actors
// ---------------------------------------------------------------------------

HostSource::HostSource(std::string name, TypeDesc type, std::vector<Value> stream,
                       sim::SimTime period)
    : Filter(std::move(name), ActorKind::kHostIo), stream_(std::move(stream)), period_(period) {
  add_port("out", PortDir::kOut, type);
  set_free_running(true);
}

void HostSource::work(FilterContext& pedf) {
  const std::size_t batch = pedf.fire_batch();
  while (produced_ < stream_.size() && !terminate_requested()) {
    if (period_ > 0) pedf.compute(period_);
    if (batch > 1) {
      const std::size_t n = std::min(batch, stream_.size() - produced_);
      pedf.out("out").put_n(stream_.data() + produced_, n);
      produced_ += n;
    } else {
      pedf.out("out").put(stream_[produced_]);
      produced_++;
    }
  }
  pedf.stop();
}

HostSink::HostSink(std::string name, TypeDesc type, std::size_t expected)
    : Filter(std::move(name), ActorKind::kHostIo), expected_(expected) {
  add_port("in", PortDir::kIn, type);
  set_free_running(true);
}

void HostSink::work(FilterContext& pedf) {
  if (expected_ != SIZE_MAX) received_.reserve(expected_);
  const std::size_t batch = pedf.fire_batch();
  if (batch > 1) {
    std::vector<Value> buf(batch);
    while (received_.size() < expected_) {
      const std::size_t want =
          expected_ == SIZE_MAX ? batch : std::min(batch, expected_ - received_.size());
      const std::size_t got = pedf.in("in").get_n(buf.data(), want);
      for (std::size_t i = 0; i < got; ++i) received_.push_back(std::move(buf[i]));
      if (got < want) break;  // I/O shutdown
    }
  } else {
    while (received_.size() < expected_) {
      auto v = pedf.in("in").get_opt();
      if (!v.has_value()) break;
      received_.push_back(std::move(*v));
    }
  }
  pedf.stop();
}

}  // namespace dfdbg::pedf

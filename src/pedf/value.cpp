#include "dfdbg/pedf/value.hpp"

#include <cstring>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::pedf {

const char* to_string(ScalarType t) {
  switch (t) {
    case ScalarType::kU8: return "U8";
    case ScalarType::kU16: return "U16";
    case ScalarType::kU32: return "U32";
    case ScalarType::kI32: return "I32";
    case ScalarType::kF32: return "F32";
  }
  return "?";
}

bool parse_scalar_type(const std::string& name, ScalarType* out) {
  if (name == "U8") *out = ScalarType::kU8;
  else if (name == "U16") *out = ScalarType::kU16;
  else if (name == "U32") *out = ScalarType::kU32;
  else if (name == "I32") *out = ScalarType::kI32;
  else if (name == "F32") *out = ScalarType::kF32;
  else return false;
  return true;
}

StructType::StructType(std::string name, std::vector<FieldDesc> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  index_.reserve(fields_.size());
  for (std::size_t i = 0; i < fields_.size(); ++i)
    index_.emplace(fields_[i].name, static_cast<std::uint32_t>(i));
}

std::string TypeDesc::name() const {
  return struct_ != nullptr ? struct_->name() : to_string(scalar_);
}

std::uint64_t TypeDesc::byte_size() const {
  if (struct_ != nullptr) return 8 * struct_->fields().size();
  switch (scalar_) {
    case ScalarType::kU8: return 1;
    case ScalarType::kU16: return 2;
    case ScalarType::kU32:
    case ScalarType::kI32:
    case ScalarType::kF32: return 4;
  }
  return 4;
}

const StructType* TypeRegistry::define_struct(std::string name, std::vector<FieldDesc> fields) {
  DFDBG_CHECK_MSG(structs_.find(name) == structs_.end(), "duplicate struct type: " + name);
  auto st = std::make_unique<StructType>(name, std::move(fields));
  const StructType* raw = st.get();
  structs_.emplace(std::move(name), std::move(st));
  return raw;
}

const StructType* TypeRegistry::find_struct(const std::string& name) const {
  auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : it->second.get();
}

bool TypeRegistry::resolve(const std::string& name, TypeDesc* out) const {
  ScalarType s;
  if (parse_scalar_type(name, &s)) {
    *out = TypeDesc(s);
    return true;
  }
  const StructType* st = find_struct(name);
  if (st != nullptr) {
    *out = TypeDesc(st);
    return true;
  }
  return false;
}

void Value::copy_from(const Value& o) {
  type_ = o.type_;
  spilled_ = o.spilled_;
  if (spilled_) {
    const std::size_t n = field_count();
    heap_ = new std::uint64_t[n];
    std::memcpy(heap_, o.heap_, n * sizeof(std::uint64_t));
  } else {
    for (std::size_t i = 0; i < kInlineFields; ++i) inl_[i] = o.inl_[i];
  }
}

Value Value::u8(std::uint8_t v) {
  Value x;
  x.type_ = TypeDesc(ScalarType::kU8);
  x.inl_[0] = v;
  return x;
}
Value Value::u16(std::uint16_t v) {
  Value x;
  x.type_ = TypeDesc(ScalarType::kU16);
  x.inl_[0] = v;
  return x;
}
Value Value::u32(std::uint32_t v) {
  Value x;
  x.type_ = TypeDesc(ScalarType::kU32);
  x.inl_[0] = v;
  return x;
}
Value Value::i32(std::int32_t v) {
  Value x;
  x.type_ = TypeDesc(ScalarType::kI32);
  x.inl_[0] = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  return x;
}
Value Value::f32(float v) {
  Value x;
  x.type_ = TypeDesc(ScalarType::kF32);
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  x.inl_[0] = bits;
  return x;
}

Value Value::make_struct(const StructType* st) {
  DFDBG_CHECK(st != nullptr);
  Value x;
  x.type_ = TypeDesc(st);
  const std::size_t n = st->fields().size();
  if (n > kInlineFields) {
    x.heap_ = new std::uint64_t[n]();  // value-initialized: all zero
    x.spilled_ = true;
  }
  // n <= kInlineFields: inl_ is already zeroed by the default initializer.
  return x;
}

Value Value::zero_of(const TypeDesc& type) {
  if (type.is_struct()) return make_struct(type.struct_type());
  Value x;
  x.type_ = type;
  return x;
}

std::uint64_t Value::as_u64() const {
  DFDBG_CHECK(!type_.is_struct());
  return inl_[0];
}

std::int64_t Value::as_i64() const {
  DFDBG_CHECK(!type_.is_struct());
  if (type_.scalar() == ScalarType::kI32)
    return static_cast<std::int64_t>(static_cast<std::int32_t>(inl_[0]));
  return static_cast<std::int64_t>(inl_[0]);
}

float Value::as_f32() const {
  DFDBG_CHECK(!type_.is_struct());
  std::uint32_t b = static_cast<std::uint32_t>(inl_[0]);
  float f;
  std::memcpy(&f, &b, sizeof f);
  return f;
}

void Value::set_scalar_u64(std::uint64_t bits) {
  DFDBG_CHECK(!type_.is_struct());
  switch (type_.scalar()) {
    case ScalarType::kU8: inl_[0] = bits & 0xffu; break;
    case ScalarType::kU16: inl_[0] = bits & 0xffffu; break;
    case ScalarType::kU32:
    case ScalarType::kI32:
    case ScalarType::kF32: inl_[0] = bits & 0xffffffffu; break;
  }
}

std::uint64_t Value::field_u64(std::string_view field) const {
  DFDBG_CHECK(type_.is_struct());
  int idx = type_.struct_type()->field_index(field);
  DFDBG_CHECK_MSG(idx >= 0, "no such field: " + std::string(field));
  return words()[static_cast<std::size_t>(idx)];
}

std::uint64_t Value::field_u64_at(std::size_t idx) const {
  DFDBG_CHECK(type_.is_struct() && idx < field_count());
  return words()[idx];
}

void Value::set_field(std::string_view field, std::uint64_t bits) {
  DFDBG_CHECK(type_.is_struct());
  int idx = type_.struct_type()->field_index(field);
  DFDBG_CHECK_MSG(idx >= 0, "no such field: " + std::string(field));
  words()[static_cast<std::size_t>(idx)] = bits;
}

void Value::set_field_at(std::size_t idx, std::uint64_t bits) {
  DFDBG_CHECK(type_.is_struct() && idx < field_count());
  words()[idx] = bits;
}

std::string Value::payload_string() const {
  if (!type_.is_struct()) {
    if (type_.scalar() == ScalarType::kF32) return strformat("%g", static_cast<double>(as_f32()));
    if (type_.scalar() == ScalarType::kI32) return strformat("%lld", static_cast<long long>(as_i64()));
    return strformat("%llu", static_cast<unsigned long long>(inl_[0]));
  }
  std::string out = "{";
  const auto& fs = type_.struct_type()->fields();
  const std::uint64_t* w = words();
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (i) out += ", ";
    out += fs[i].name;
    out += "=";
    out += fs[i].print_hex
               ? strformat("0x%llX", static_cast<unsigned long long>(w[i]))
               : strformat("%llu", static_cast<unsigned long long>(w[i]));
  }
  out += "}";
  return out;
}

std::string Value::to_string() const {
  if (type_.is_struct()) return "(" + type_.name() + ")" + payload_string();
  return "(" + type_.name() + ") " + payload_string();
}

}  // namespace dfdbg::pedf

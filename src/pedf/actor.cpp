#include "dfdbg/pedf/actor.hpp"

#include "dfdbg/common/assert.hpp"

namespace dfdbg::pedf {

const char* to_string(ActorKind k) {
  switch (k) {
    case ActorKind::kFilter: return "filter";
    case ActorKind::kController: return "controller";
    case ActorKind::kModule: return "module";
    case ActorKind::kHostIo: return "host-io";
  }
  return "?";
}

Port& Actor::add_port(std::string name, PortDir dir, TypeDesc type) {
  DFDBG_CHECK_MSG(port(name) == nullptr, "duplicate port '" + name + "' on actor " + name_);
  ports_.push_back(std::make_unique<Port>(this, std::move(name), dir, type));
  return *ports_.back();
}

Port* Actor::port(std::string_view name) const {
  for (const auto& p : ports_)
    if (p->name() == name) return p.get();
  return nullptr;
}

std::vector<Port*> Actor::ports_of(PortDir dir) const {
  std::vector<Port*> out;
  for (const auto& p : ports_)
    if (p->dir() == dir) out.push_back(p.get());
  return out;
}

}  // namespace dfdbg::pedf

#include "dfdbg/pedf/boundary.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::pedf {

BoundaryChannel::BoundaryChannel(Link& link, std::size_t capacity)
    : link_(&link), ring_(capacity < 1 ? 1 : capacity),
      space_event_("boundary-space:" + link.name()) {}

std::uint64_t BoundaryChannel::send(Value v, std::uint64_t uid) {
  DFDBG_CHECK_MSG(size_ < ring_.size(), "send on full boundary channel of " + link_->name());
  Slot& s = ring_[(head_ + size_) % ring_.size()];
  s.value = std::move(v);
  s.uid = uid;
  ++size_;
  return sent_++;
}

bool BoundaryChannel::drain(sim::Kernel& kernel) {
  bool progress = false;
  while (size_ != 0 && !link_->full()) {
    Slot& s = ring_[head_];
    link_->push_delivered(std::move(s.value), s.uid);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    ++delivered_;
    progress = true;
  }
  if (progress) {
    // Coordinator context: both wakeups deliver straight into the waiters'
    // partitions' ready queues for the next round.
    kernel.notify_if_waiting(link_->data_avail());
    kernel.notify_if_waiting(space_event_);
  }
  return progress;
}

}  // namespace dfdbg::pedf

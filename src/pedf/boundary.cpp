#include "dfdbg/pedf/boundary.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/pedf/link.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::pedf {

namespace {
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

BoundaryChannel::BoundaryChannel(Link& link, std::size_t capacity)
    : link_(&link), capacity_(capacity < 1 ? 1 : capacity),
      mask_(next_pow2(capacity_) - 1), ring_(next_pow2(capacity_)),
      space_event_("boundary-space:" + link.name()) {}

bool BoundaryChannel::link_has_room() const { return !link_->full(); }

std::uint64_t BoundaryChannel::send(Value v, std::uint64_t uid) {
  const std::uint64_t s = sent_.load(std::memory_order_relaxed);
  DFDBG_CHECK_MSG(s - freed_ < capacity_,
                  "send on full boundary channel of " + link_->name());
  Slot& slot = ring_[s & mask_];
  slot.value = std::move(v);
  slot.uid = uid;
  sent_.store(s + 1, std::memory_order_release);
  return s;
}

std::size_t BoundaryChannel::drain_eligible(sim::Kernel& kernel) {
  std::uint64_t d = delivered_.load(std::memory_order_relaxed);
  std::size_t moved = 0;
  while (d != limit_ && !link_->full()) {
    Slot& slot = ring_[d & mask_];
    link_->push_delivered(std::move(slot.value), slot.uid);
    delivered_.store(++d, std::memory_order_release);
    ++moved;
  }
  // Consumer-shard (or coordinator) context: the wake delivers straight into
  // the consumer's own ready queue, same-round.
  if (moved != 0) kernel.notify_if_waiting(link_->data_avail());
  return moved;
}

bool BoundaryChannel::publish(sim::Kernel& kernel) {
  limit_ = sent_.load(std::memory_order_relaxed);
  const std::uint64_t d = delivered_.load(std::memory_order_relaxed);
  if (d == freed_) return false;
  freed_ = d;
  return kernel.notify_if_waiting(space_event_);
}

bool BoundaryChannel::drain(sim::Kernel& kernel) {
  limit_ = sent_.load(std::memory_order_relaxed);
  const bool moved = drain_eligible(kernel) != 0;
  const std::uint64_t d = delivered_.load(std::memory_order_relaxed);
  bool woke = false;
  if (d != freed_) {
    freed_ = d;
    woke = kernel.notify_if_waiting(space_event_);
  }
  return moved || woke;
}

bool BoundaryChannel::spsc_send(Value v, std::uint64_t uid) {
  const std::uint64_t s = sent_.load(std::memory_order_relaxed);
  if (s - delivered_.load(std::memory_order_acquire) >= capacity_) return false;
  Slot& slot = ring_[s & mask_];
  slot.value = std::move(v);
  slot.uid = uid;
  sent_.store(s + 1, std::memory_order_release);
  return true;
}

bool BoundaryChannel::spsc_take(Value& v, std::uint64_t& uid) {
  const std::uint64_t d = delivered_.load(std::memory_order_relaxed);
  if (d == sent_.load(std::memory_order_acquire)) return false;
  Slot& slot = ring_[d & mask_];
  v = std::move(slot.value);
  uid = slot.uid;
  delivered_.store(d + 1, std::memory_order_release);
  return true;
}

}  // namespace dfdbg::pedf

#include "dfdbg/pedf/link.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::pedf {

namespace {
/// FIFO instruments, aggregated across every link of every application.
/// Per-link high watermarks stay on the Link itself (high_watermark()).
struct LinkMetrics {
  obs::Counter& pushes;
  obs::Counter& pops;
  obs::Histogram& occupancy;
  obs::Gauge& occupancy_hwm;
  static LinkMetrics& get() {
    auto& r = obs::Registry::global();
    static LinkMetrics m{r.counter("link.push"), r.counter("link.pop"),
                         r.histogram("link.occupancy"), r.gauge("link.occupancy_hwm")};
    return m;
  }
};
}  // namespace

const char* to_string(LinkTransport t) {
  switch (t) {
    case LinkTransport::kLocal: return "L1";
    case LinkTransport::kInterCluster: return "L2";
    case LinkTransport::kHostDma: return "DMA";
  }
  return "?";
}

std::uint64_t Link::push_raw(Value v) {
  DFDBG_CHECK_MSG(!full(), "push on full link " + name_);
  q_.push_back(std::move(v));
  last_pushed_uid_ = obs::Journal::global().alloc_token();
  uids_.push_back(last_pushed_uid_);
  if (q_.size() > high_watermark_) high_watermark_ = q_.size();
  if (obs::enabled()) {
    LinkMetrics& m = LinkMetrics::get();
    m.pushes.add();
    m.occupancy.observe(q_.size());
    m.occupancy_hwm.set(static_cast<std::int64_t>(q_.size()));
  }
  return push_index_++;
}

Value Link::pop_raw() {
  DFDBG_CHECK_MSG(!q_.empty(), "pop on empty link " + name_);
  Value v = std::move(q_.front());
  q_.pop_front();
  last_popped_uid_ = uids_.front();
  uids_.pop_front();
  pop_index_++;
  LinkMetrics::get().pops.add();
  return v;
}

const Value& Link::peek(std::size_t i) const {
  DFDBG_CHECK(i < q_.size());
  return q_[i];
}

void Link::poke(std::size_t i, Value v) {
  DFDBG_CHECK(i < q_.size());
  q_[i] = std::move(v);
}

Value Link::erase_at(std::size_t i) {
  DFDBG_CHECK(i < q_.size());
  Value v = std::move(q_[i]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
  uids_.erase(uids_.begin() + static_cast<std::ptrdiff_t>(i));
  // Removing a token does not rewind the monotonic indexes; it simply never
  // reaches the consumer. pop_index_ stays, push_index_ stays.
  return v;
}

std::uint64_t Link::token_uid_at(std::size_t i) const {
  DFDBG_CHECK(i < uids_.size());
  return uids_[i];
}

}  // namespace dfdbg::pedf

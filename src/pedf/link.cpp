#include "dfdbg/pedf/link.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::pedf {

namespace {
/// FIFO instruments, aggregated across every link of every application.
/// Per-link high watermarks stay on the Link itself (high_watermark()).
struct LinkMetrics {
  obs::Counter& pushes;
  obs::Counter& pops;
  obs::Histogram& occupancy;
  obs::Gauge& occupancy_hwm;
  static LinkMetrics& get() {
    auto& r = obs::Registry::global();
    static LinkMetrics m{r.counter("link.push"), r.counter("link.pop"),
                         r.histogram("link.occupancy"), r.gauge("link.occupancy_hwm")};
    return m;
  }
};

constexpr std::size_t kInitialSlots = 8;
}  // namespace

const char* to_string(LinkTransport t) {
  switch (t) {
    case LinkTransport::kLocal: return "L1";
    case LinkTransport::kInterCluster: return "L2";
    case LinkTransport::kHostDma: return "DMA";
  }
  return "?";
}

void Link::reserve_slots(std::size_t needed) {
  if (ring_.size() - count_ >= needed) return;
  std::size_t want = count_ + needed;
  std::size_t nsize = ring_.empty() ? kInitialSlots : ring_.size();
  while (nsize < want) nsize *= 2;
  std::vector<Slot> next(nsize);
  for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(ring_[(head_ + i) & mask_]);
  ring_ = std::move(next);
  mask_ = nsize - 1;
  head_ = 0;
  dcheck_slots();
}

void Link::push_delivered(Value v, std::uint64_t uid) {
  DFDBG_CHECK_MSG(!full(), "delivery on full link " + name_);
  reserve_slots(1);
  Slot& s = ring_[(head_ + count_) & mask_];
  s.value = std::move(v);
  s.uid = uid;
  last_pushed_uid_ = uid;
  ++count_;
  dcheck_slots();
  if (count_ > high_watermark_) high_watermark_ = count_;
  if (obs::enabled()) {
    LinkMetrics& m = LinkMetrics::get();
    m.pushes.add();
    m.occupancy.observe(count_);
    m.occupancy_hwm.set(static_cast<std::int64_t>(count_));
  }
  push_index_++;
}

std::uint64_t Link::push_raw(Value v) {
  DFDBG_CHECK_MSG(!full(), "push on full link " + name_);
  reserve_slots(1);
  Slot& s = ring_[(head_ + count_) & mask_];
  s.value = std::move(v);
  last_pushed_uid_ = obs::Journal::global().alloc_token();
  s.uid = last_pushed_uid_;
  ++count_;
  dcheck_slots();
  if (count_ > high_watermark_) high_watermark_ = count_;
  if (obs::enabled()) {
    LinkMetrics& m = LinkMetrics::get();
    m.pushes.add();
    m.occupancy.observe(count_);
    m.occupancy_hwm.set(static_cast<std::int64_t>(count_));
  }
  return push_index_++;
}

std::uint64_t Link::push_raw_n(const Value* vs, std::size_t n) {
  if (n == 1) return push_raw(Value(vs[0]));
  DFDBG_CHECK_MSG(capacity_ - count_ >= n, "batch push overflows link " + name_);
  reserve_slots(n);
  // One range allocation gives the same ids as n sequential alloc_token
  // calls, so batch and token-at-a-time runs stay provenance-identical.
  std::uint64_t uid = obs::Journal::global().alloc_tokens(n);
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = ring_[(head_ + count_ + i) & mask_];
    s.value = vs[i];
    s.uid = uid + i;
  }
  last_pushed_uid_ = uid + n - 1;
  count_ += n;
  dcheck_slots();
  if (count_ > high_watermark_) high_watermark_ = count_;
  if (obs::enabled()) {
    LinkMetrics& m = LinkMetrics::get();
    m.pushes.add(n);
    m.occupancy.observe(count_);
    m.occupancy_hwm.set(static_cast<std::int64_t>(count_));
  }
  std::uint64_t first = push_index_;
  push_index_ += n;
  return first;
}

Value Link::pop_raw() {
  DFDBG_CHECK_MSG(count_ != 0, "pop on empty link " + name_);
  Slot& s = ring_[head_];
  Value v = std::move(s.value);
  last_popped_uid_ = s.uid;
  head_ = (head_ + 1) & mask_;
  --count_;
  dcheck_slots();
  pop_index_++;
  if (obs::enabled()) LinkMetrics::get().pops.add();
  return v;
}

void Link::pop_raw_n(Value* out, std::size_t n) {
  DFDBG_CHECK_MSG(n <= count_, "batch pop underflows link " + name_);
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = ring_[(head_ + i) & mask_];
    out[i] = std::move(s.value);
  }
  if (n != 0) last_popped_uid_ = ring_[(head_ + n - 1) & mask_].uid;
  head_ = (head_ + n) & mask_;
  count_ -= n;
  dcheck_slots();
  pop_index_ += n;
  if (obs::enabled()) LinkMetrics::get().pops.add(n);
}

void Link::poke(std::size_t i, Value v) {
  DFDBG_CHECK(i < count_);
  ring_[(head_ + i) & mask_].value = std::move(v);
}

Value Link::erase_at(std::size_t i) {
  DFDBG_CHECK(i < count_);
  Value v = std::move(ring_[(head_ + i) & mask_].value);
  // Close the gap by shifting the shorter side; both directions preserve
  // FIFO order of the surviving slots (and their uids, which ride along).
  if (i < count_ - i - 1) {
    for (std::size_t j = i; j > 0; --j)
      ring_[(head_ + j) & mask_] = std::move(ring_[(head_ + j - 1) & mask_]);
    head_ = (head_ + 1) & mask_;
  } else {
    for (std::size_t j = i; j + 1 < count_; ++j)
      ring_[(head_ + j) & mask_] = std::move(ring_[(head_ + j + 1) & mask_]);
  }
  --count_;
  dcheck_slots();
  // Removing a token does not rewind the monotonic indexes; it simply never
  // reaches the consumer. pop_index_ stays, push_index_ stays.
  return v;
}

}  // namespace dfdbg::pedf

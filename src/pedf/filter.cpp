#include "dfdbg/pedf/filter.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/platform.hpp"

namespace dfdbg::pedf {

const char* to_string(StepState s) {
  switch (s) {
    case StepState::kIdle: return "idle";
    case StepState::kScheduled: return "scheduled";
    case StepState::kRunning: return "running";
    case StepState::kDone: return "done";
  }
  return "?";
}

Value& Filter::declare_data(std::string name, Value init) {
  DFDBG_CHECK_MSG(data(name) == nullptr, "duplicate data '" + name + "'");
  data_.emplace_back(std::move(name), std::move(init));
  return data_.back().second;
}

Value& Filter::declare_attribute(std::string name, Value init) {
  DFDBG_CHECK_MSG(attribute(name) == nullptr, "duplicate attribute '" + name + "'");
  attrs_.emplace_back(std::move(name), std::move(init));
  return attrs_.back().second;
}

Value* Filter::data(std::string_view name) {
  for (auto& [n, v] : data_)
    if (n == name) return &v;
  return nullptr;
}

Value* Filter::attribute(std::string_view name) {
  for (auto& [n, v] : attrs_)
    if (n == name) return &v;
  return nullptr;
}

void Filter::set_source(std::string file, int first_line, std::vector<std::string> lines) {
  src_file_ = std::move(file);
  src_first_line_ = first_line;
  src_lines_ = std::move(lines);
}

// ---------------------------------------------------------------------------
// FilterContext
// ---------------------------------------------------------------------------

FilterContext::In FilterContext::in(std::string_view port) {
  Port* p = self_.port(port);
  DFDBG_CHECK_MSG(p != nullptr, self_.path() + ": no port '" + std::string(port) + "'");
  DFDBG_CHECK_MSG(p->dir() == PortDir::kIn, std::string(port) + " is not an input");
  return In(this, p);
}

FilterContext::Out FilterContext::out(std::string_view port) {
  Port* p = self_.port(port);
  DFDBG_CHECK_MSG(p != nullptr, self_.path() + ": no port '" + std::string(port) + "'");
  DFDBG_CHECK_MSG(p->dir() == PortDir::kOut, std::string(port) + " is not an output");
  return Out(this, p);
}

Value FilterContext::In::get() {
  auto v = ctx_->app_.rt_link_pop(ctx_->self_, *port_);
  DFDBG_CHECK_MSG(v.has_value(), "link_pop interrupted by I/O shutdown on " + port_->name());
  return std::move(*v);
}

std::optional<Value> FilterContext::In::get_opt() {
  return ctx_->app_.rt_link_pop(ctx_->self_, *port_);
}

std::size_t FilterContext::In::get_n(Value* out, std::size_t n) {
  return ctx_->app_.rt_link_pop_n(ctx_->self_, *port_, out, n);
}

std::size_t FilterContext::In::available() const {
  Link* l = port_->link();
  return l == nullptr ? 0 : l->occupancy();
}

void FilterContext::Out::put(const Value& v) { ctx_->app_.rt_link_push(ctx_->self_, *port_, v); }

void FilterContext::Out::put_n(const Value* vs, std::size_t n) {
  ctx_->app_.rt_link_push_n(ctx_->self_, *port_, vs, n);
}

Value& FilterContext::data(std::string_view name) {
  Value* v = self_.data(name);
  DFDBG_CHECK_MSG(v != nullptr, self_.path() + ": no data '" + std::string(name) + "'");
  return *v;
}

Value& FilterContext::attr(std::string_view name) {
  Value* v = self_.attribute(name);
  DFDBG_CHECK_MSG(v != nullptr, self_.path() + ": no attribute '" + std::string(name) + "'");
  return *v;
}

void FilterContext::line(int line) { app_.rt_filter_line(self_, line); }

void FilterContext::compute(sim::SimTime cycles) {
  DFDBG_CHECK_MSG(self_.pe() != nullptr, self_.path() + " has no PE mapping");
  self_.pe()->execute(app_.kernel(), cycles);
}

bool FilterContext::sync_requested() const { return self_.sync_requested_; }

void FilterContext::stop() { self_.terminate_ = true; }

std::size_t FilterContext::fire_batch() const { return self_.fire_batch_; }

}  // namespace dfdbg::pedf

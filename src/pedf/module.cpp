#include "dfdbg/pedf/module.hpp"

#include "dfdbg/common/assert.hpp"

namespace dfdbg::pedf {

Filter& Module::add_filter(std::unique_ptr<Filter> f) {
  DFDBG_CHECK(f != nullptr);
  DFDBG_CHECK_MSG(child(f->name()) == nullptr, "duplicate child '" + f->name() + "'");
  f->set_parent(this);
  filters_.push_back(std::move(f));
  return *filters_.back();
}

Module& Module::add_module(std::unique_ptr<Module> m) {
  DFDBG_CHECK(m != nullptr);
  DFDBG_CHECK_MSG(child(m->name()) == nullptr, "duplicate child '" + m->name() + "'");
  m->set_parent(this);
  modules_.push_back(std::move(m));
  return *modules_.back();
}

Controller& Module::set_controller(std::unique_ptr<Controller> c) {
  DFDBG_CHECK(c != nullptr);
  DFDBG_CHECK_MSG(controller_ == nullptr, "module " + name() + " already has a controller");
  c->set_parent(this);
  c->module_ = this;
  controller_ = std::move(c);
  return *controller_;
}

void Module::bind(std::string src, std::string dst) {
  bindings_.push_back(BindingDecl{std::move(src), std::move(dst)});
}

void Module::define_predicate(std::string name, std::function<bool(Module&)> fn) {
  DFDBG_CHECK_MSG(predicate(name) == nullptr, "duplicate predicate '" + name + "'");
  predicates_.push_back(PredicateDecl{std::move(name), std::move(fn)});
}

const PredicateDecl* Module::predicate(std::string_view name) const {
  for (const auto& p : predicates_)
    if (p.name == name) return &p;
  return nullptr;
}

Actor* Module::child(std::string_view name) const {
  for (const auto& f : filters_)
    if (f->name() == name) return f.get();
  for (const auto& m : modules_)
    if (m->name() == name) return m.get();
  if (controller_ != nullptr && controller_->name() == name) return controller_.get();
  return nullptr;
}

Filter* Module::filter(std::string_view name) const {
  for (const auto& f : filters_)
    if (f->name() == name) return f.get();
  return nullptr;
}

}  // namespace dfdbg::pedf

#include "dfdbg/obs/journal.hpp"

namespace dfdbg::obs {

namespace {
/// Journal instruments, interned once (stable addresses by construction).
struct JournalMetrics {
  Counter& recorded;
  Counter& dropped;
  static JournalMetrics& get() {
    auto& r = Registry::global();
    static JournalMetrics m{r.counter("journal.recorded"), r.counter("journal.dropped")};
    return m;
  }
};

const std::string kUnknownName = "?";
}  // namespace

const char* to_string(JournalKind k) {
  switch (k) {
    case JournalKind::kTokenPush: return "push";
    case JournalKind::kTokenPop: return "pop";
    case JournalKind::kFireBegin: return "fire-begin";
    case JournalKind::kFireEnd: return "fire-end";
    case JournalKind::kDispatch: return "dispatch";
    case JournalKind::kCatchpoint: return "catchpoint";
    case JournalKind::kTokenInject: return "inject";
    case JournalKind::kTokenRemove: return "remove";
    case JournalKind::kTokenReplace: return "replace";
  }
  return "?";
}

namespace {
/// Parallel-backend workers install their shard here (see set_thread_journal).
thread_local Journal* t_journal = nullptr;
}  // namespace

Journal& Journal::global() {
  if (t_journal != nullptr) return *t_journal;
  return global_base();
}

Journal& Journal::global_base() {
  static Journal j;
  return j;
}

void Journal::set_thread_journal(Journal* j) { t_journal = j; }

void Journal::merge_from(Journal& shard) {
  std::size_t n = shard.ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Raw append: the shard already fed the registry counters at record
    // time; only eviction from *this* window counts as a drop here.
    if (ring_.push(shard.ring_.at(i))) {
      dropped_++;
      if (enabled()) JournalMetrics::get().dropped.add();
    }
  }
  dropped_ += shard.dropped_;
  shard.dropped_ = 0;
  shard.ring_.clear();  // keeps the allocation; total_pushed is unused on shards
  // Fold the shard's token-allocation count into this journal's counter so
  // `last_token()` — and the token-budget quota built on it — sees tokens
  // allocated from disjoint shard uid ranges. Delta-tracked: the shard's own
  // counter is never reset (its uids must stay unique), and our low-range
  // allocator only skips ahead, never reuses ids. Single-partition shards
  // (uid_base 0) delegate allocation here directly and report nothing.
  if (shard.uid_base_ != 0) {
    const std::uint64_t cur = shard.last_token_.load(std::memory_order_relaxed);
    last_token_.fetch_add(cur - shard.tokens_reported_, std::memory_order_relaxed);
    shard.tokens_reported_ = cur;
  }
}

void Journal::set_capacity(std::size_t cap) {
  ring_ = RingBuffer<JournalEvent>(cap < 1 ? 1 : cap);
  dropped_ = 0;
}

void Journal::clear() {
  ring_ = RingBuffer<JournalEvent>(ring_.capacity());
  dropped_ = 0;
}

void Journal::reset() {
  clear();
  last_token_.store(0, std::memory_order_relaxed);
}

void Journal::record(const JournalEvent& ev) {
  if (!enabled() || !recording()) return;
  JournalMetrics& m = JournalMetrics::get();
  m.recorded.add();
  if (ring_.push(ev)) {
    dropped_++;
    m.dropped.add();
  }
}

std::uint32_t Journal::intern_name(std::string_view name) {
  if (parent_ != nullptr) return parent_->intern_name(name);  // one id space
  std::lock_guard<std::mutex> lk(names_mu_);
  auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), id);
  return id;
}

const std::string& Journal::name(std::uint32_t id) const {
  if (parent_ != nullptr) return parent_->name(id);
  std::lock_guard<std::mutex> lk(names_mu_);
  if (id >= names_.size()) return kUnknownName;
  return names_[id];
}

std::string Journal::summary() const {
  std::uint64_t by_kind[9] = {};
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    auto k = static_cast<std::size_t>(ring_.at(i).kind);
    if (k < 9) by_kind[k]++;
  }
  std::string out = strformat(
      "journal: %s, capacity %zu, retained %zu, recorded %llu, dropped %llu\n"
      "token ids allocated: %llu\n",
      recording() ? (enabled() ? "recording" : "idle (obs disabled)") : "off",
      ring_.capacity(), ring_.size(), static_cast<unsigned long long>(ring_.total_pushed()),
      static_cast<unsigned long long>(dropped_),
      static_cast<unsigned long long>(last_token()));
  for (std::size_t k = 0; k < 9; ++k) {
    if (by_kind[k] == 0) continue;
    out += strformat("  %-10s %llu\n", to_string(static_cast<JournalKind>(k)),
                     static_cast<unsigned long long>(by_kind[k]));
  }
  return out;
}

std::string Journal::format_event(const JournalEvent& ev, const LinkNamer& link_name) const {
  auto link_label = [&](std::uint32_t id) {
    if (id == UINT32_MAX) return std::string("-");
    if (link_name) return link_name(id);
    return strformat("link#%u", id);
  };
  std::string out = strformat("t=%-8llu %-10s", static_cast<unsigned long long>(ev.time),
                              to_string(ev.kind));
  switch (ev.kind) {
    case JournalKind::kTokenPush:
    case JournalKind::kTokenInject:
      out += strformat(" tok#%llu %s -> [%s] idx=%llu firing=%llu",
                       static_cast<unsigned long long>(ev.token), name(ev.actor).c_str(),
                       link_label(ev.link).c_str(),
                       static_cast<unsigned long long>(ev.index),
                       static_cast<unsigned long long>(ev.firing));
      break;
    case JournalKind::kTokenPop:
      out += strformat(" tok#%llu [%s] -> %s idx=%llu firing=%llu",
                       static_cast<unsigned long long>(ev.token),
                       link_label(ev.link).c_str(), name(ev.actor).c_str(),
                       static_cast<unsigned long long>(ev.index),
                       static_cast<unsigned long long>(ev.firing));
      break;
    case JournalKind::kFireBegin:
    case JournalKind::kFireEnd:
      out += strformat(" %s firing=%llu", name(ev.actor).c_str(),
                       static_cast<unsigned long long>(ev.firing));
      break;
    case JournalKind::kDispatch:
      out += strformat(" %s activation=%llu", name(ev.actor).c_str(),
                       static_cast<unsigned long long>(ev.index));
      break;
    case JournalKind::kCatchpoint:
      out += strformat(" bp=%llu actor=%s", static_cast<unsigned long long>(ev.index),
                       name(ev.actor).c_str());
      break;
    case JournalKind::kTokenRemove:
    case JournalKind::kTokenReplace:
      out += strformat(" tok#%llu [%s] slot=%llu",
                       static_cast<unsigned long long>(ev.token),
                       link_label(ev.link).c_str(),
                       static_cast<unsigned long long>(ev.index));
      break;
  }
  return out;
}

std::string Journal::format_last(std::size_t n, const LinkNamer& link_name) const {
  std::size_t count = n < ring_.size() ? n : ring_.size();
  std::size_t start = ring_.size() - count;
  std::string out;
  for (std::size_t i = start; i < ring_.size(); ++i) {
    out += format_event(ring_.at(i), link_name);
    out += "\n";
  }
  return out;
}

Journal::Slice Journal::read_from(std::uint64_t from, std::size_t max_n,
                                  const std::function<void(const JournalEvent&)>& fn) const {
  Slice s;
  std::uint64_t total = ring_.total_pushed();
  std::uint64_t oldest = total - ring_.size();
  if (from > total) from = total;  // a cursor from a cleared window restarts
  std::uint64_t start = from < oldest ? oldest : from;
  s.gap = start - from;
  std::uint64_t avail = total - start;
  s.count = static_cast<std::size_t>(avail < max_n ? avail : max_n);
  for (std::size_t i = 0; i < s.count; ++i)
    fn(ring_.at(static_cast<std::size_t>(start - oldest) + i));
  s.next = start + s.count;
  return s;
}

void Journal::write_json(JsonWriter& w, const LinkNamer& link_name) const {
  w.begin_object()
      .kv("capacity", static_cast<std::uint64_t>(ring_.capacity()))
      .kv("recorded", total_recorded())
      .kv("retained", static_cast<std::uint64_t>(ring_.size()))
      .kv("dropped", dropped_)
      .kv("token_ids", last_token())
      .key("events")
      .begin_array();
  for (std::size_t i = 0; i < ring_.size(); ++i) write_event_json(w, ring_.at(i), link_name);
  w.end_array().end_object();
}

void Journal::write_event_json(JsonWriter& w, const JournalEvent& ev,
                               const LinkNamer& link_name) const {
  w.begin_object().kv("t", ev.time).kv("kind", to_string(ev.kind));
  if (ev.token != 0) w.kv("token", ev.token);
  if (ev.link != UINT32_MAX)
    w.kv("link", link_name ? link_name(ev.link) : strformat("link#%u", ev.link));
  if (ev.actor != UINT32_MAX) w.kv("actor", name(ev.actor));
  w.kv("index", ev.index);
  if (ev.firing != 0) w.kv("firing", ev.firing);
  w.end_object();
}

Journal::Slice Journal::write_delta_json(JsonWriter& w, std::uint64_t from, std::size_t max_n,
                                         const LinkNamer& link_name) const {
  // Two passes would re-walk the ring; instead record where `events` starts
  // and let read_from stream straight into the writer.
  std::uint64_t total = ring_.total_pushed();
  std::uint64_t oldest = total - ring_.size();
  std::uint64_t effective = from > total ? total : (from < oldest ? oldest : from);
  w.begin_object().kv("from", effective);
  // `next`/`gap` are known before the events are emitted (read_from computes
  // them from the same window bounds), so emit them up front — streaming
  // parsers see the cursor before the payload.
  Slice probe;
  probe.gap = effective - (from > total ? total : from);
  std::uint64_t avail = total - effective;
  probe.count = static_cast<std::size_t>(avail < max_n ? avail : max_n);
  probe.next = effective + probe.count;
  w.kv("next", probe.next).kv("gap", probe.gap);
  w.key("events").begin_array();
  read_from(from, max_n, [&](const JournalEvent& ev) { write_event_json(w, ev, link_name); });
  w.end_array().end_object();
  return probe;
}

}  // namespace dfdbg::obs

// Unified observability layer: a process-wide metrics registry.
//
// The debugger, the simulation kernel and the PEDF runtime all want the same
// three primitives — monotonic counters, gauges with a high-water mark, and
// log2-bucketed histograms — without paying for them when nobody is looking.
// Instruments are named and lazily interned (the same idiom as
// `sim::InstrumentPort::intern`): the first `counter("sim.dispatch")` call
// creates the instrument, later calls return the same object, and the
// returned reference stays valid for the lifetime of the registry, so hot
// paths intern once and keep the pointer.
//
// Cost model: every mutation is gated on a single process-wide flag
// (`obs::enabled()`), false by default. With metrics disabled a call site is
// one predictable branch; no allocation, no clock read, no hashing. The
// flag is flipped by the CLI / trace collector / benchmarks, never by the
// framework itself, so the framework stays observer-agnostic exactly like
// it stays debugger-agnostic.
//
// Threading: instruments use relaxed atomics so the parallel simulation
// backend's worker threads can mutate them concurrently (counts stay exact;
// gauge/histogram high-water marks are maintained with CAS raises). Interning
// takes a registry mutex — hot paths intern once and keep the reference, so
// the lock never sits on a per-token path. Reporting reads are racy-by-design
// while workers run; the debugger only reports from a stopped simulation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::obs {

namespace detail {
inline bool g_enabled = false;
}  // namespace detail

/// Process-wide master switch. Instruments ignore mutations while disabled.
[[nodiscard]] inline bool enabled() { return detail::g_enabled; }
inline void set_enabled(bool on) { detail::g_enabled = on; }

namespace detail {
/// Lock-free high-water raise (relaxed: marks are monotonic per instrument).
template <typename T>
inline void raise_max(std::atomic<T>& slot, T v) {
  T cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
/// Lock-free low-water lower.
template <typename T>
inline void lower_min(std::atomic<T>& slot, T v) {
  T cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level with a high-water mark (e.g. queue occupancy).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    detail::raise_max(max_, v);
  }
  void add(std::int64_t d) {
    if (!enabled()) return;
    std::int64_t nv = v_.fetch_add(d, std::memory_order_relaxed) + d;
    detail::raise_max(max_, nv);
  }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Histogram over fixed log2 buckets: bucket 0 holds the value 0, bucket i
/// (i >= 1) holds values in [2^(i-1), 2^i). 65 buckets cover all of uint64,
/// so `observe` is branch-light and allocation-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) {
    if (!enabled()) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    detail::raise_max(max_, v);
    detail::lower_min(min_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const {
    std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper edge of the smallest bucket whose cumulative count reaches
  /// `p * count` (p in [0,1]). An approximation by construction: exact to
  /// within the 2x bucket resolution.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  void reset();

  /// Index of the bucket holding `v`.
  static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  /// Largest value the bucket can hold (its inclusive upper edge).
  static std::uint64_t bucket_edge(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return UINT64_MAX;
    return (1ull << i) - 1;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// A reader-side snapshot of registry values, used to compute deltas: one
/// snapshot per subscriber, so several observers (debug-server push streams,
/// the CLI `stats delta` verb) each see their own changed-keys view without
/// the registry keeping any per-reader state.
struct StatsSnapshot {
  std::unordered_map<std::string, std::uint64_t> counters;
  /// value, high-water.
  std::unordered_map<std::string, std::pair<std::int64_t, std::int64_t>> gauges;
  /// count, sum — enough to detect any observation (count moves) and most
  /// distribution shifts (sum moves) without storing all 65 buckets.
  std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>> histograms;
};

/// The registry: named instruments, lazily interned, stable addresses.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation point uses.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every instrument (names stay interned).
  void reset();

  /// Number of interned instruments (all kinds).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Sorted (name, instrument) views for reporting.
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  /// Human-readable dump (the CLI `stats` command).
  [[nodiscard]] std::string to_text() const;
  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histogram entries carry count/sum/min/max plus p50/p90/p99 estimates
  /// from the log2 buckets — not the raw bucket array.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (version 0.0.4). Instrument names are
  /// sanitized (non-[a-zA-Z0-9_] -> '_') and prefixed `dfdbg_`: counters as
  /// `counter`, gauges as `gauge` (high-water as a second `<name>_max`
  /// series), histograms as `summary` with p50/p90/p99 quantile labels plus
  /// `_sum`/`_count` series, matching to_json()'s estimates.
  [[nodiscard]] std::string to_prometheus() const;

  /// Changed-keys delta against `prev`, in to_json()'s shape but holding
  /// only instruments whose value moved since the snapshot (counters by
  /// value, gauges by value/high-water, histograms by count/sum — emitted
  /// with the same percentile estimates as to_json()). Updates `prev` to
  /// the current values and stores the changed-key count in `*changed`
  /// (optional). An unchanged registry yields {"counters":{},"gauges":{},
  /// "histograms":{}} and *changed == 0.
  std::string snapshot_delta(StatsSnapshot& prev, std::size_t* changed = nullptr) const;

 private:
  // Transparent hash/equal: interning an already-known name from a
  // string_view never allocates (same idiom as sim::InstrumentPort).
  using NameIndex =
      std::unordered_map<std::string, std::size_t, TransparentStringHash, std::equal_to<>>;

  template <typename T>
  T& intern(std::deque<std::pair<std::string, T>>& store, NameIndex& index,
            std::string_view name);

  // Guards the intern tables (parallel-backend workers may intern a cold
  // name concurrently). Instrument mutation itself is lock-free.
  mutable std::mutex mu_;
  // std::deque: references returned by intern() must survive growth.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  NameIndex counter_index_;
  NameIndex gauge_index_;
  NameIndex histogram_index_;
};

/// RAII wall-clock timer: observes elapsed nanoseconds into a histogram.
/// Reads the clock only while metrics are enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h) {
    if (enabled()) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!enabled()) return;
    auto dt = std::chrono::steady_clock::now() - t0_;
    h_.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point t0_{};
};

/// RAII delta sampler over an arbitrary monotonic clock — used with
/// `sim::Kernel::now()` to key timers to *simulated* time:
///   obs::ScopedDelta cycles(hist, [&] { return kernel.now(); });
template <typename NowFn>
class ScopedDelta {
 public:
  ScopedDelta(Histogram& h, NowFn now) : h_(h), now_(now) {
    if (enabled()) t0_ = now_();
  }
  ~ScopedDelta() {
    if (enabled()) h_.observe(now_() - t0_);
  }
  ScopedDelta(const ScopedDelta&) = delete;
  ScopedDelta& operator=(const ScopedDelta&) = delete;

 private:
  Histogram& h_;
  NowFn now_;
  std::uint64_t t0_ = 0;
};

}  // namespace dfdbg::obs

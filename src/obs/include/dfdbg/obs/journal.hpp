// Token provenance flight recorder: an always-on causal event journal.
//
// A fixed-capacity ring of typed events — token push/pop, actor fire
// begin/end, scheduler dispatch, catchpoint hit, debugger alterations —
// each stamped with simulated time, link, actor/process and a monotonically
// assigned *token id* threaded through `pedf::Link::push_raw/pop_raw`. The
// journal closes the gap between the aggregate metrics registry (how many
// tokens?) and the offline TraceCollector window (what happened when?): it
// records *which token* moved where, so the debugger can answer causal
// questions (`whence`, flow-event arrows in the Chrome-trace export)
// without retaining unbounded history.
//
// Cost model, same contract as the metrics registry:
//   - `obs::enabled()` off (the default): `record()` is one predictable
//     branch; call sites additionally gate their event construction, so the
//     framework pays nothing.
//   - memory is bounded always: the ring overwrites its oldest event and
//     counts the drops (`journal.dropped` in the metrics registry), the
//     paper's recording caveat ("may require a significant quantity of
//     memory") answered the same way as `iface ... record bounded`.
//   - token ids are allocated even while disabled — a single counter
//     increment — so provenance stays stable across observers attaching
//     mid-run, and a `reset()` restarts the sequence for replay-identical
//     executions.
//
// Actor/process names are interned into the journal (stable u32 ids), so an
// event is a fixed-size POD and recording never allocates after the first
// sighting of a name (interning takes a mutex; hot call sites cache the id).
//
// Parallel backend: each worker thread owns a journal *shard* — a private
// buffer it records into race-free — installed as that thread's
// `Journal::global()` via set_thread_journal(). Shards allocate token ids
// from a disjoint per-partition uid space (single-partition kernels delegate
// to the parent so ids stay byte-identical to the sequential backends), and
// the kernel merges every shard into the process-wide journal at each
// barrier in partition order, which makes the merged stream deterministic
// for a fixed partition map.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/ring_buffer.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::obs {

/// Event type of one journal record.
enum class JournalKind : std::uint8_t {
  kTokenPush,    ///< a producer pushed a token on a link
  kTokenPop,     ///< a consumer popped a token from a link
  kFireBegin,    ///< an actor entered its WORK method
  kFireEnd,      ///< an actor left its WORK method
  kDispatch,     ///< the scheduler resumed a process
  kCatchpoint,   ///< a debugger stop event triggered
  kTokenInject,  ///< debugger alteration: token inserted
  kTokenRemove,  ///< debugger alteration: queued token deleted
  kTokenReplace, ///< debugger alteration: queued token overwritten
};

const char* to_string(JournalKind k);

/// One fixed-size journal record. Field use by kind:
///   kTokenPush/kTokenInject: link, actor (producer), token, index (push
///     index), firing (producer firing sequence number)
///   kTokenPop: link, actor (consumer), token, index (pop index), firing
///   kFireBegin/kFireEnd: actor, firing, index (controller step)
///   kDispatch: actor (process name), index (activation count)
///   kCatchpoint: actor (stop's actor), index (breakpoint id)
///   kTokenRemove/kTokenReplace: link, token, index (queue slot)
struct JournalEvent {
  std::uint64_t time = 0;             ///< simulated cycles
  std::uint64_t token = 0;            ///< token id (0 = none)
  std::uint64_t index = 0;            ///< kind-specific ordinal
  std::uint64_t firing = 0;           ///< actor firing sequence (0 = n/a)
  std::uint32_t link = UINT32_MAX;    ///< link id (UINT32_MAX = none)
  std::uint32_t actor = UINT32_MAX;   ///< interned name id (UINT32_MAX = none)
  JournalKind kind = JournalKind::kTokenPush;
};

/// The process-wide flight recorder.
class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 17;

  /// The journal the calling thread records into: the thread's installed
  /// shard (parallel-backend workers) or the process-wide journal.
  static Journal& global();

  /// The process-wide journal, ignoring any thread-local shard override —
  /// what readers (CLI, server, debugger) consume after shard merges.
  static Journal& global_base();

  /// Installs `j` as the calling thread's Journal::global() (nullptr
  /// restores the process-wide journal). The kernel's parallel workers
  /// install their shard at thread start.
  static void set_thread_journal(Journal* j);

  explicit Journal(std::size_t capacity = kDefaultCapacity) : ring_(capacity) {}

  /// Turns this journal into a shard of `parent`: intern ids come from the
  /// parent (so merged events resolve names identically), the recording gate
  /// follows the parent, and token ids are drawn from the disjoint range
  /// starting at `uid_base` — except uid_base 0, which delegates allocation
  /// to the parent (single-partition kernels: ids match sequential runs).
  void configure_shard(Journal* parent, std::uint64_t uid_base) {
    parent_ = parent;
    uid_base_ = uid_base;
  }

  /// Moves every retained event of `shard` into this journal, oldest first,
  /// preserving record order and accumulating the shard's drop count; the
  /// shard buffer is left empty. Registry counters are not re-counted (the
  /// shard counted them at record time).
  void merge_from(Journal& shard);

  /// Recording gate below the process-wide `obs::enabled()` flag: lets an
  /// observer keep metrics on while silencing the journal (the overhead
  /// benchmark measures exactly this split). Default on. Shards follow
  /// their parent's gate.
  [[nodiscard]] bool recording() const {
    const Journal* j = parent_ != nullptr ? parent_ : this;
    return j->recording_.load(std::memory_order_relaxed);
  }
  void set_recording(bool on) { recording_.store(on, std::memory_order_relaxed); }

  /// Replaces the ring with an empty one of `cap` events (>= 1). Retained
  /// events and the drop count are discarded; interned names and the token
  /// id sequence survive.
  void set_capacity(std::size_t cap);

  /// Drops retained events and the drop count; names and token ids survive.
  void clear();

  /// clear() plus a restart of the token id sequence — two runs separated
  /// by reset() assign identical token ids (deterministic kernel), which is
  /// what makes `whence` output replay-comparable.
  void reset();

  /// Allocates the next token id (1-based; 0 means "no token"). NOT gated
  /// on obs::enabled(): ids must stay monotonic across observer attach/
  /// detach so every token carries provenance from birth. Shards with a
  /// non-zero uid base allocate from their own range; shards with base 0
  /// delegate to the parent.
  std::uint64_t alloc_token() {
    if (parent_ != nullptr && uid_base_ == 0) return parent_->alloc_token();
    return uid_base_ + last_token_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Allocates `n` consecutive token ids, returning the first. Identical to
  /// n alloc_token() calls — the batch link fast path uses this so batched
  /// and token-at-a-time runs assign the same provenance ids.
  std::uint64_t alloc_tokens(std::uint64_t n) {
    if (parent_ != nullptr && uid_base_ == 0) return parent_->alloc_tokens(n);
    return uid_base_ + last_token_.fetch_add(n, std::memory_order_relaxed) + 1;
  }
  [[nodiscard]] std::uint64_t last_token() const {
    return last_token_.load(std::memory_order_relaxed);
  }

  /// Appends one event; overwrites the oldest when full. No-op unless
  /// `obs::enabled()` and `recording()`. Also feeds the
  /// `journal.recorded` / `journal.dropped` registry counters.
  void record(const JournalEvent& ev);

  // --- window access (oldest first) ----------------------------------------

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
  [[nodiscard]] const JournalEvent& at(std::size_t i) const { return ring_.at(i); }
  /// Events ever recorded into the current window (including evicted).
  [[nodiscard]] std::uint64_t total_recorded() const { return ring_.total_pushed(); }
  /// Events evicted from the current window.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  // --- cursors: resumable tailing over the ring ------------------------------
  // Every event carries an implicit absolute sequence number: the i-th event
  // ever recorded into the current window has sequence i (clear()/
  // set_capacity() restart the sequence with the window). A *cursor* is the
  // sequence number of the next unread event, so `cursor() - reader_cursor`
  // is the reader's lag and readers resume across reads without the journal
  // keeping any per-reader state. When the ring laps a slow reader, the
  // lapped events are unrecoverable; reads report that as a `gap`.

  /// One read from a cursor: how far the cursor advanced and what was lost.
  struct Slice {
    std::uint64_t next = 0;   ///< cursor to resume from
    std::uint64_t gap = 0;    ///< events lost between the cursor and the window
    std::size_t count = 0;    ///< events delivered by this read
  };

  /// The cursor one past the newest recorded event (== total_recorded()).
  [[nodiscard]] std::uint64_t cursor() const { return ring_.total_pushed(); }

  /// Visits up to `max_n` retained events starting at absolute sequence
  /// `from`, oldest first. If the ring has already evicted part of that
  /// range, the visit starts at the oldest retained event and the skipped
  /// span is returned as `gap`.
  Slice read_from(std::uint64_t from, std::size_t max_n,
                  const std::function<void(const JournalEvent&)>& fn) const;

  // --- name interning --------------------------------------------------------

  /// Interns `name`, returning its stable id. Re-interning a known name
  /// never allocates (heterogeneous lookup).
  std::uint32_t intern_name(std::string_view name);
  /// Name for an interned id ("?" for UINT32_MAX / unknown ids).
  [[nodiscard]] const std::string& name(std::uint32_t id) const;

  // --- reporting -------------------------------------------------------------

  /// Resolves a link id to a display name (the journal itself only knows
  /// numeric link ids; the CLI supplies the application's names).
  using LinkNamer = std::function<std::string(std::uint32_t)>;

  /// Human-readable status: capacity, recorded/retained/dropped, per-kind
  /// tallies, token ids allocated.
  [[nodiscard]] std::string summary() const;

  /// One event as one transcript line (no trailing newline).
  [[nodiscard]] std::string format_event(const JournalEvent& ev,
                                         const LinkNamer& link_name = nullptr) const;

  /// The newest `n` retained events, oldest first, one line each.
  [[nodiscard]] std::string format_last(std::size_t n,
                                        const LinkNamer& link_name = nullptr) const;

  /// The retained window as one JSON document through the shared encoder
  /// (dfdbg/common/json.hpp): window counters plus an `events` array, oldest
  /// first. The raw-event twin of the Chrome-trace export — used by the CLI
  /// `journal dump <file> --json` and the debug server's `journal` verb.
  void write_json(JsonWriter& w, const LinkNamer& link_name = nullptr) const;

  /// One event as one JSON object (the element schema of write_json's
  /// `events` array and of the server's `journal.delta` notifications).
  void write_event_json(JsonWriter& w, const JournalEvent& ev,
                        const LinkNamer& link_name = nullptr) const;

  /// A cursor read as one JSON object:
  ///   {"from":F,"next":N,"gap":G,"events":[...]}
  /// where F is the effective start (the request clamped into the window),
  /// G counts the events the ring already evicted between the requested
  /// cursor and F, and `events` holds at most `max_n` objects in
  /// write_event_json schema. This is the NDJSON delta payload the debug
  /// server pushes to `subscribe journal` clients and the CLI `journal tail`
  /// prints; both resume from the returned Slice::next.
  Slice write_delta_json(JsonWriter& w, std::uint64_t from, std::size_t max_n,
                         const LinkNamer& link_name = nullptr) const;

 private:
  RingBuffer<JournalEvent> ring_;
  std::atomic<bool> recording_{true};
  std::atomic<std::uint64_t> last_token_{0};
  std::uint64_t dropped_ = 0;
  Journal* parent_ = nullptr;     ///< set on shards: intern/gate delegate here
  std::uint64_t uid_base_ = 0;    ///< shard token-id range start (0 = delegate)
  std::uint64_t tokens_reported_ = 0;  ///< shard allocs already merged to base
  // Guards the intern table: parallel workers intern concurrently through
  // their shard (which forwards here). std::deque: name() returns stable
  // references across growth, so the returned ref outlives the lock.
  mutable std::mutex names_mu_;
  std::deque<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, TransparentStringHash, std::equal_to<>>
      name_index_;
};

}  // namespace dfdbg::obs

// Token provenance flight recorder: an always-on causal event journal.
//
// A fixed-capacity ring of typed events — token push/pop, actor fire
// begin/end, scheduler dispatch, catchpoint hit, debugger alterations —
// each stamped with simulated time, link, actor/process and a monotonically
// assigned *token id* threaded through `pedf::Link::push_raw/pop_raw`. The
// journal closes the gap between the aggregate metrics registry (how many
// tokens?) and the offline TraceCollector window (what happened when?): it
// records *which token* moved where, so the debugger can answer causal
// questions (`whence`, flow-event arrows in the Chrome-trace export)
// without retaining unbounded history.
//
// Cost model, same contract as the metrics registry:
//   - `obs::enabled()` off (the default): `record()` is one predictable
//     branch; call sites additionally gate their event construction, so the
//     framework pays nothing.
//   - memory is bounded always: the ring overwrites its oldest event and
//     counts the drops (`journal.dropped` in the metrics registry), the
//     paper's recording caveat ("may require a significant quantity of
//     memory") answered the same way as `iface ... record bounded`.
//   - token ids are allocated even while disabled — a single counter
//     increment — so provenance stays stable across observers attaching
//     mid-run, and a `reset()` restarts the sequence for replay-identical
//     executions.
//
// Actor/process names are interned into the journal (stable u32 ids), so an
// event is a fixed-size POD and recording never allocates after the first
// sighting of a name. The cooperative kernel runs one process at a time, so
// plain fields suffice ("lock-free-friendly": a single writer, readers only
// between runs).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/ring_buffer.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::obs {

/// Event type of one journal record.
enum class JournalKind : std::uint8_t {
  kTokenPush,    ///< a producer pushed a token on a link
  kTokenPop,     ///< a consumer popped a token from a link
  kFireBegin,    ///< an actor entered its WORK method
  kFireEnd,      ///< an actor left its WORK method
  kDispatch,     ///< the scheduler resumed a process
  kCatchpoint,   ///< a debugger stop event triggered
  kTokenInject,  ///< debugger alteration: token inserted
  kTokenRemove,  ///< debugger alteration: queued token deleted
  kTokenReplace, ///< debugger alteration: queued token overwritten
};

const char* to_string(JournalKind k);

/// One fixed-size journal record. Field use by kind:
///   kTokenPush/kTokenInject: link, actor (producer), token, index (push
///     index), firing (producer firing sequence number)
///   kTokenPop: link, actor (consumer), token, index (pop index), firing
///   kFireBegin/kFireEnd: actor, firing, index (controller step)
///   kDispatch: actor (process name), index (activation count)
///   kCatchpoint: actor (stop's actor), index (breakpoint id)
///   kTokenRemove/kTokenReplace: link, token, index (queue slot)
struct JournalEvent {
  std::uint64_t time = 0;             ///< simulated cycles
  std::uint64_t token = 0;            ///< token id (0 = none)
  std::uint64_t index = 0;            ///< kind-specific ordinal
  std::uint64_t firing = 0;           ///< actor firing sequence (0 = n/a)
  std::uint32_t link = UINT32_MAX;    ///< link id (UINT32_MAX = none)
  std::uint32_t actor = UINT32_MAX;   ///< interned name id (UINT32_MAX = none)
  JournalKind kind = JournalKind::kTokenPush;
};

/// The process-wide flight recorder.
class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 17;

  /// The journal every built-in instrumentation point records into.
  static Journal& global();

  explicit Journal(std::size_t capacity = kDefaultCapacity) : ring_(capacity) {}

  /// Recording gate below the process-wide `obs::enabled()` flag: lets an
  /// observer keep metrics on while silencing the journal (the overhead
  /// benchmark measures exactly this split). Default on.
  [[nodiscard]] bool recording() const { return recording_; }
  void set_recording(bool on) { recording_ = on; }

  /// Replaces the ring with an empty one of `cap` events (>= 1). Retained
  /// events and the drop count are discarded; interned names and the token
  /// id sequence survive.
  void set_capacity(std::size_t cap);

  /// Drops retained events and the drop count; names and token ids survive.
  void clear();

  /// clear() plus a restart of the token id sequence — two runs separated
  /// by reset() assign identical token ids (deterministic kernel), which is
  /// what makes `whence` output replay-comparable.
  void reset();

  /// Allocates the next token id (1-based; 0 means "no token"). NOT gated
  /// on obs::enabled(): ids must stay monotonic across observer attach/
  /// detach so every token carries provenance from birth.
  std::uint64_t alloc_token() { return ++last_token_; }
  /// Allocates `n` consecutive token ids, returning the first. Identical to
  /// n alloc_token() calls — the batch link fast path uses this so batched
  /// and token-at-a-time runs assign the same provenance ids.
  std::uint64_t alloc_tokens(std::uint64_t n) {
    std::uint64_t first = last_token_ + 1;
    last_token_ += n;
    return first;
  }
  [[nodiscard]] std::uint64_t last_token() const { return last_token_; }

  /// Appends one event; overwrites the oldest when full. No-op unless
  /// `obs::enabled()` and `recording()`. Also feeds the
  /// `journal.recorded` / `journal.dropped` registry counters.
  void record(const JournalEvent& ev);

  // --- window access (oldest first) ----------------------------------------

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
  [[nodiscard]] const JournalEvent& at(std::size_t i) const { return ring_.at(i); }
  /// Events ever recorded into the current window (including evicted).
  [[nodiscard]] std::uint64_t total_recorded() const { return ring_.total_pushed(); }
  /// Events evicted from the current window.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  // --- name interning --------------------------------------------------------

  /// Interns `name`, returning its stable id. Re-interning a known name
  /// never allocates (heterogeneous lookup).
  std::uint32_t intern_name(std::string_view name);
  /// Name for an interned id ("?" for UINT32_MAX / unknown ids).
  [[nodiscard]] const std::string& name(std::uint32_t id) const;

  // --- reporting -------------------------------------------------------------

  /// Resolves a link id to a display name (the journal itself only knows
  /// numeric link ids; the CLI supplies the application's names).
  using LinkNamer = std::function<std::string(std::uint32_t)>;

  /// Human-readable status: capacity, recorded/retained/dropped, per-kind
  /// tallies, token ids allocated.
  [[nodiscard]] std::string summary() const;

  /// The newest `n` retained events, oldest first, one line each.
  [[nodiscard]] std::string format_last(std::size_t n,
                                        const LinkNamer& link_name = nullptr) const;

  /// The retained window as one JSON document through the shared encoder
  /// (dfdbg/common/json.hpp): window counters plus an `events` array, oldest
  /// first. The raw-event twin of the Chrome-trace export — used by the CLI
  /// `journal dump <file> --json` and the debug server's `journal` verb.
  void write_json(JsonWriter& w, const LinkNamer& link_name = nullptr) const;

 private:
  RingBuffer<JournalEvent> ring_;
  bool recording_ = true;
  std::uint64_t last_token_ = 0;
  std::uint64_t dropped_ = 0;
  // std::deque: name() returns stable references across growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, TransparentStringHash, std::equal_to<>>
      name_index_;
};

}  // namespace dfdbg::obs

#include "dfdbg/obs/metrics.hpp"

#include <algorithm>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::obs {

std::uint64_t Histogram::percentile(double p) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  auto target = static_cast<std::uint64_t>(p * static_cast<double>(total));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += bucket(i);
    if (cum >= target) return std::min(bucket_edge(i), max());
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

template <typename T>
T& Registry::intern(std::deque<std::pair<std::string, T>>& store, NameIndex& index,
                    std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index.find(name);  // heterogeneous: hot-path hit allocates nothing
  if (it != index.end()) return store[it->second].second;
  index.emplace(std::string(name), store.size());
  // std::deque: emplace never moves existing (atomic, non-movable) entries.
  store.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                     std::forward_as_tuple());
  return store.back().second;
}

Counter& Registry::counter(std::string_view name) {
  return intern(counters_, counter_index_, name);
}

Gauge& Registry::gauge(std::string_view name) { return intern(gauges_, gauge_index_, name); }

Histogram& Registry::histogram(std::string_view name) {
  return intern(histograms_, histogram_index_, name);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

namespace {
template <typename T>
std::vector<std::pair<std::string, const T*>> sorted_view(
    const std::deque<std::pair<std::string, T>>& store) {
  std::vector<std::pair<std::string, const T*>> out;
  out.reserve(store.size());
  for (const auto& [name, inst] : store) out.emplace_back(name, &inst);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

/// Escapes a metric name for embedding in a JSON string literal.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strformat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}
}  // namespace

std::vector<std::pair<std::string, const Counter*>> Registry::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sorted_view(counters_);
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sorted_view(gauges_);
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sorted_view(histograms_);
}

std::string Registry::to_text() const {
  std::string out;
  out += strformat("metrics: %s (%zu instruments)\n", enabled() ? "enabled" : "DISABLED",
                   size());
  auto cs = counters();
  if (!cs.empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : cs)
      out += strformat("  %-32s %20llu\n", name.c_str(),
                       static_cast<unsigned long long>(c->value()));
  }
  auto gs = gauges();
  if (!gs.empty()) {
    out += "gauges:                                     value            high-water\n";
    for (const auto& [name, g] : gs)
      out += strformat("  %-32s %12lld %21lld\n", name.c_str(),
                       static_cast<long long>(g->value()), static_cast<long long>(g->max()));
  }
  auto hs = histograms();
  if (!hs.empty()) {
    out += "histograms:                          count       mean        p50        p90"
           "        p99        max\n";
    for (const auto& [name, h] : hs) {
      out += strformat("  %-32s %7llu %10.1f %10llu %10llu %10llu %10llu\n", name.c_str(),
                       static_cast<unsigned long long>(h->count()), h->mean(),
                       static_cast<unsigned long long>(h->percentile(0.50)),
                       static_cast<unsigned long long>(h->percentile(0.90)),
                       static_cast<unsigned long long>(h->percentile(0.99)),
                       static_cast<unsigned long long>(h->max()));
    }
  }
  return out;
}

namespace {
/// The shared JSON spelling of one instrument's value — to_json() and
/// snapshot_delta() must stay byte-compatible per entry.
std::string counter_json(const std::string& name, const Counter& c) {
  return strformat("\"%s\":%llu", json_escape(name).c_str(),
                   static_cast<unsigned long long>(c.value()));
}

std::string gauge_json(const std::string& name, const Gauge& g) {
  return strformat("\"%s\":{\"value\":%lld,\"max\":%lld}", json_escape(name).c_str(),
                   static_cast<long long>(g.value()), static_cast<long long>(g.max()));
}

std::string histogram_json(const std::string& name, const Histogram& h) {
  return strformat(
      "\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
      "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu}",
      json_escape(name).c_str(), static_cast<unsigned long long>(h.count()),
      static_cast<unsigned long long>(h.sum()), static_cast<unsigned long long>(h.min()),
      static_cast<unsigned long long>(h.max()),
      static_cast<unsigned long long>(h.percentile(0.50)),
      static_cast<unsigned long long>(h.percentile(0.90)),
      static_cast<unsigned long long>(h.percentile(0.99)));
}
}  // namespace

namespace {
/// Prometheus metric-name sanitizer: `sim.worker.0.dispatch` ->
/// `dfdbg_sim_worker_0_dispatch`.
std::string prom_name(const std::string& s) {
  std::string out = "dfdbg_";
  out.reserve(out.size() + s.size());
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_';
    out += ok ? c : '_';
  }
  return out;
}
}  // namespace

std::string Registry::to_prometheus() const {
  std::string out;
  for (const auto& [name, c] : counters()) {
    std::string n = prom_name(name);
    out += strformat("# TYPE %s counter\n%s %llu\n", n.c_str(), n.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges()) {
    std::string n = prom_name(name);
    out += strformat("# TYPE %s gauge\n%s %lld\n", n.c_str(), n.c_str(),
                     static_cast<long long>(g->value()));
    out += strformat("# TYPE %s_max gauge\n%s_max %lld\n", n.c_str(), n.c_str(),
                     static_cast<long long>(g->max()));
  }
  for (const auto& [name, h] : histograms()) {
    std::string n = prom_name(name);
    out += strformat("# TYPE %s summary\n", n.c_str());
    out += strformat("%s{quantile=\"0.5\"} %llu\n", n.c_str(),
                     static_cast<unsigned long long>(h->percentile(0.50)));
    out += strformat("%s{quantile=\"0.9\"} %llu\n", n.c_str(),
                     static_cast<unsigned long long>(h->percentile(0.90)));
    out += strformat("%s{quantile=\"0.99\"} %llu\n", n.c_str(),
                     static_cast<unsigned long long>(h->percentile(0.99)));
    out += strformat("%s_sum %llu\n%s_count %llu\n", n.c_str(),
                     static_cast<unsigned long long>(h->sum()), n.c_str(),
                     static_cast<unsigned long long>(h->count()));
  }
  return out;
}

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters()) {
    if (!first) out += ',';
    first = false;
    out += counter_json(name, *c);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges()) {
    if (!first) out += ',';
    first = false;
    out += gauge_json(name, *g);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms()) {
    if (!first) out += ',';
    first = false;
    out += histogram_json(name, *h);
  }
  out += "}}";
  return out;
}

std::string Registry::snapshot_delta(StatsSnapshot& prev, std::size_t* changed) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    auto it = prev.counters.find(name);
    if (it != prev.counters.end() && it->second == c.value()) continue;
    prev.counters[name] = c.value();
    if (!first) out += ',';
    first = false;
    out += counter_json(name, c);
    ++n;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    std::pair<std::int64_t, std::int64_t> cur{g.value(), g.max()};
    auto it = prev.gauges.find(name);
    if (it != prev.gauges.end() && it->second == cur) continue;
    prev.gauges[name] = cur;
    if (!first) out += ',';
    first = false;
    out += gauge_json(name, g);
    ++n;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::pair<std::uint64_t, std::uint64_t> cur{h.count(), h.sum()};
    auto it = prev.histograms.find(name);
    if (it != prev.histograms.end() && it->second == cur) continue;
    prev.histograms[name] = cur;
    if (!first) out += ',';
    first = false;
    out += histogram_json(name, h);
    ++n;
  }
  out += "}}";
  if (changed != nullptr) *changed = n;
  return out;
}

}  // namespace dfdbg::obs

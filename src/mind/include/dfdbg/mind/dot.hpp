// Graphviz DOT rendering of an ADL composite — the ground-truth version of
// the paper's Fig. 2 graph (the debugger's reconstructed view is rendered by
// dfdbg::dbg::GraphModel::to_dot and must agree with this one).
#pragma once

#include <string>

#include "dfdbg/mind/ast.hpp"

namespace dfdbg::mind {

/// Renders composite `top` (recursively) in DOT. Filters are round boxes,
/// controllers green rectangles, module boundaries dashed clusters.
std::string to_dot(const AstDocument& doc, const std::string& top);

}  // namespace dfdbg::mind

// ADL pretty-printer: serializes an AST back to MIND source text. Useful as
// an architecture formatter and as the inverse of parse() — emit(parse(x))
// parses back to a structurally identical document (round-trip property).
#pragma once

#include <string>

#include "dfdbg/mind/ast.hpp"

namespace dfdbg::mind {

/// Renders the whole document in canonical formatting.
std::string emit_adl(const AstDocument& doc);

/// Structural equality of two documents (ignores source locations).
bool documents_equal(const AstDocument& a, const AstDocument& b);

}  // namespace dfdbg::mind

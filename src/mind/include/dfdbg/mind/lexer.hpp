// Tokenizer for the MIND ADL. Identifiers may contain dots (file names like
// `ctrl_source.c` and header-qualified types like `stddefs.h:U32` appear in
// the grammar); `//` and `/* */` comments are skipped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dfdbg/mind/ast.hpp"

namespace dfdbg::mind {

enum class TokKind : std::uint8_t {
  kIdent,      ///< identifiers, keywords, file names
  kAnnotation, ///< @Module, @Filter, @Type
  kLBrace,
  kRBrace,
  kSemi,
  kColon,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  SrcLoc loc;
};

/// Splits `src` into tokens. On lexical error returns a single kEnd token and
/// sets `*error` (never throws).
std::vector<Token> lex(std::string_view src, std::string* error);

}  // namespace dfdbg::mind

// Semantic analysis of parsed ADL documents: name resolution, direction and
// type checking of bindings, completeness diagnostics. This is the checking
// the MIND compiler performs before generating the PEDF C++.
#pragma once

#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/mind/ast.hpp"

namespace dfdbg::mind {

/// Non-fatal findings (e.g. unbound filter port that elaboration will later
/// reject if still unbound).
struct AnalysisReport {
  std::vector<std::string> warnings;
};

/// Validates `doc`. `top` is the composite to treat as the application root
/// (its own ports may legitimately stay unbound — they become host I/O).
Result<AnalysisReport> analyze(const AstDocument& doc, const std::string& top);

}  // namespace dfdbg::mind

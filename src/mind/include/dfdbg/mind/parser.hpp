// Recursive-descent parser for the MIND ADL (grammar in ast.hpp).
#pragma once

#include <string_view>

#include "dfdbg/common/status.hpp"
#include "dfdbg/mind/ast.hpp"

namespace dfdbg::mind {

/// Parses one ADL document. Errors carry line:col positions.
Result<AstDocument> parse(std::string_view source);

}  // namespace dfdbg::mind

// Instantiation: turning a checked ADL document into a live PEDF module
// hierarchy — the role of the MIND compiler's C++ generation phase
// ("its compiler generates a C++ version of the architecture, based on PEDF
// and platform-specific templates", paper §IV-A).
//
// Behaviour is attached through a FilterRegistry: each primitive type name
// maps to a filter factory and each composite name may map to a controller
// factory. Unregistered primitives get a GenericFilter (consume one token
// per input, produce one per output) and composites with an inline
// controller get a DefaultController that fires all child filters every
// step — enough to execute any parsed architecture out of the box.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "dfdbg/common/status.hpp"
#include "dfdbg/mind/ast.hpp"
#include "dfdbg/pedf/controller.hpp"
#include "dfdbg/pedf/filter.hpp"
#include "dfdbg/pedf/module.hpp"
#include "dfdbg/pedf/value.hpp"

namespace dfdbg::mind {

/// Builds the Filter implementing primitive `ast`, named `instance_name`.
/// The factory must NOT add ports, data or attributes that the architecture
/// declares — the instantiator adds those afterwards from the AST.
using FilterFactory = std::function<std::unique_ptr<pedf::Filter>(
    const AstPrimitive& ast, const std::string& instance_name)>;

/// Builds the Controller of composite `ast` (named per application
/// convention, e.g. "pred_controller").
using ControllerFactory = std::function<std::unique_ptr<pedf::Controller>(
    const AstComposite& ast, const std::string& module_instance)>;

/// Behaviour bindings for instantiation.
class FilterRegistry {
 public:
  /// Registers the implementation of primitive type `type_name`.
  void register_filter(std::string type_name, FilterFactory factory);
  /// Registers the controller of composite `composite_name`.
  void register_controller(std::string composite_name, ControllerFactory factory);

  /// Steps the DefaultController runs before terminating its module.
  void set_default_steps(std::uint64_t steps) { default_steps_ = steps; }
  [[nodiscard]] std::uint64_t default_steps() const { return default_steps_; }

  [[nodiscard]] const FilterFactory* filter_factory(const std::string& type) const;
  [[nodiscard]] const ControllerFactory* controller_factory(const std::string& comp) const;

 private:
  std::map<std::string, FilterFactory> filters_;
  std::map<std::string, ControllerFactory> controllers_;
  std::uint64_t default_steps_ = 1;
};

/// Instantiates composite `top` of `doc` as a PEDF module named
/// `instance_name`. Declared struct types are registered into `types`.
/// `doc` must have passed analyze().
Result<std::unique_ptr<pedf::Module>> instantiate(const AstDocument& doc,
                                                  const std::string& top,
                                                  const std::string& instance_name,
                                                  pedf::TypeRegistry& types,
                                                  const FilterRegistry& registry);

/// Fallback filter used for primitives without a registered implementation:
/// one step = pop one token from every input, push one zero token on every
/// output (rate-1 SDF-like behaviour).
class GenericFilter : public pedf::Filter {
 public:
  explicit GenericFilter(std::string name) : pedf::Filter(std::move(name)) {}
  void work(pedf::FilterContext& pedf) override;
};

/// Fallback controller: N steps of "fire every child filter once".
class DefaultController : public pedf::Controller {
 public:
  DefaultController(std::string name, std::uint64_t steps)
      : pedf::Controller(std::move(name)), steps_(steps) {}
  void control(pedf::ControllerContext& ctx) override;

 private:
  std::uint64_t steps_;
};

}  // namespace dfdbg::mind

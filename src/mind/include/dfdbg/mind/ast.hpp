// AST of the MIND architecture description language (+PEDF annotations), as
// used in paper §IV-A. The grammar is taken from the paper's two excerpts:
//
//   @Module
//   composite AModule {
//     contains as controller { output U32 as cmd_out_1; source ctrl.c; }
//     input  U32 as module_in;
//     output U32 as module_out;
//     contains AFilter as filter_1;
//     binds controller.cmd_out_1 to filter_1.cmd_in;
//   }
//
//   @Filter
//   primitive AFilter {
//     data      stddefs.h:U32 a_private_data;
//     attribute stddefs.h:U32 an_attribute;
//     source    the_source.c;
//     input  stddefs.h:U32 as an_input;
//     output stddefs.h:U32 as an_output;
//   }
//
// One extension beyond the paper (needed to declare token struct types like
// CbCrMB_t, which the paper defines in C headers we do not have):
//
//   @Type
//   struct CbCrMB_t { U32 Addr hex; U32 InterNotIntra; U32 Izz; }
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace dfdbg::mind {

/// Location of a construct in the ADL source (for diagnostics).
struct SrcLoc {
  int line = 0;
  int col = 0;
};

/// "stddefs.h:U32" or bare "U32".
struct AstTypeRef {
  std::string header;  ///< may be empty
  std::string type;
  SrcLoc loc;
};

/// `input U32 as name;` / `output U32 as name;`
struct AstPort {
  bool is_input = true;
  AstTypeRef type;
  std::string name;
  SrcLoc loc;
};

/// Inline controller of a composite: `contains as controller { ... }`.
struct AstController {
  std::vector<AstPort> ports;
  std::string source;  ///< e.g. "ctrl_source.c"
  SrcLoc loc;
};

/// `contains AFilter as filter_1;`
struct AstInstance {
  std::string type_name;
  std::string name;
  SrcLoc loc;
};

/// `binds a.b to c.d;`
struct AstBinding {
  std::string src;
  std::string dst;
  SrcLoc loc;
};

/// `data stddefs.h:U32 name;` or `attribute ... name;`
struct AstDatum {
  bool is_attribute = false;
  AstTypeRef type;
  std::string name;
  SrcLoc loc;
};

/// `@Module composite Name { ... }`
struct AstComposite {
  std::string name;
  std::optional<AstController> controller;
  std::vector<AstPort> ports;
  std::vector<AstInstance> instances;
  std::vector<AstBinding> bindings;
  SrcLoc loc;
};

/// `@Filter primitive Name { ... }`
struct AstPrimitive {
  std::string name;
  std::vector<AstDatum> data;
  std::string source;
  std::vector<AstPort> ports;
  SrcLoc loc;
};

/// `@Type struct Name { U32 field [hex]; ... }`
struct AstStructDecl {
  struct Field {
    std::string type;
    std::string name;
    bool hex = false;
  };
  std::string name;
  std::vector<Field> fields;
  SrcLoc loc;
};

/// One parsed ADL document.
struct AstDocument {
  std::vector<AstComposite> composites;
  std::vector<AstPrimitive> primitives;
  std::vector<AstStructDecl> structs;

  /// Lookup helpers (nullptr if absent).
  [[nodiscard]] const AstComposite* composite(const std::string& name) const;
  [[nodiscard]] const AstPrimitive* primitive(const std::string& name) const;
  [[nodiscard]] const AstStructDecl* struct_decl(const std::string& name) const;
};

}  // namespace dfdbg::mind

#include "dfdbg/mind/dot.hpp"

#include <set>
#include <sstream>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::mind {

namespace {

/// Node id for "<instance path>/<child>" ("pred/ipred").
std::string node_id(const std::string& path, const std::string& child) {
  return path.empty() ? child : path + "/" + child;
}

void emit_composite(const AstDocument& doc, const AstComposite& c, const std::string& path,
                    std::ostringstream& os, int depth) {
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << "subgraph \"cluster_" << (path.empty() ? c.name : path) << "\" {\n";
  os << indent << "  label=\"" << (path.empty() ? c.name : path) << "\"; style=dashed;\n";
  if (c.controller.has_value()) {
    os << indent << "  \"" << node_id(path, "controller")
       << "\" [shape=box, style=filled, fillcolor=palegreen, label=\"controller\"];\n";
  }
  for (const AstInstance& inst : c.instances) {
    if (const AstPrimitive* p = doc.primitive(inst.type_name); p != nullptr) {
      (void)p;
      os << indent << "  \"" << node_id(path, inst.name)
         << "\" [shape=ellipse, label=\"" << inst.name << "\"];\n";
    } else if (const AstComposite* sub = doc.composite(inst.type_name); sub != nullptr) {
      emit_composite(doc, *sub, node_id(path, inst.name), os, depth + 1);
    }
  }
  // Boundary ports as small points so hierarchical arcs have anchors.
  for (const AstPort& port : c.ports) {
    os << indent << "  \"" << node_id(path, "this." + port.name)
       << "\" [shape=point, xlabel=\"" << port.name << "\"];\n";
  }
  os << indent << "}\n";
  for (const AstBinding& b : c.bindings) {
    auto ep_node = [&](const std::string& ep) {
      auto dot = ep.find('.');
      std::string who = ep.substr(0, dot);
      if (who == "this") return node_id(path, ep);
      // Child endpoint: if the child is a composite, anchor on its boundary
      // port node; otherwise on the child node itself.
      for (const AstInstance& inst : c.instances) {
        if (inst.name == who && doc.composite(inst.type_name) != nullptr)
          return node_id(node_id(path, who), "this." + ep.substr(dot + 1));
      }
      return node_id(path, who);
    };
    os << indent << "\"" << ep_node(b.src) << "\" -> \"" << ep_node(b.dst)
       << "\" [label=\"" << b.src.substr(b.src.find('.') + 1) << "\"];\n";
  }
}

}  // namespace

std::string to_dot(const AstDocument& doc, const std::string& top) {
  std::ostringstream os;
  os << "digraph \"" << top << "\" {\n  rankdir=LR;\n  compound=true;\n";
  const AstComposite* c = doc.composite(top);
  if (c != nullptr) emit_composite(doc, *c, "", os, 1);
  os << "}\n";
  return os.str();
}

}  // namespace dfdbg::mind
